/**
 * @file
 * Core microarchitecture tests: the four-mask hierarchical wavefront
 * scheduler, the scoreboard, barrier tables (local and global), the IPDOM
 * stack capacity, and pipeline-level behaviours exercised through small
 * programs (fence draining, wspawn scheduling, barrier stalls).
 */

#include <gtest/gtest.h>

#include "core/barrier.h"
#include "core/processor.h"
#include "core/scheduler.h"
#include "core/scoreboard.h"
#include "isa/assembler.h"
#include "isa/csr.h"

using namespace vortex;
using namespace vortex::core;

//
// WarpScheduler.
//

TEST(Scheduler, SelectsOnlyActive)
{
    WarpScheduler sched(4);
    EXPECT_FALSE(sched.select(~0ull).has_value());
    sched.setActive(1, true);
    auto sel = sched.select(~0ull);
    ASSERT_TRUE(sel.has_value());
    EXPECT_EQ(*sel, 1u);
}

TEST(Scheduler, HierarchicalRoundRobin)
{
    WarpScheduler sched(4);
    for (WarpId w = 0; w < 4; ++w)
        sched.setActive(w, true);
    // One refill of the visible mask serves each wavefront exactly once.
    std::set<WarpId> seen;
    for (int i = 0; i < 4; ++i) {
        auto sel = sched.select(~0ull);
        ASSERT_TRUE(sel.has_value());
        seen.insert(*sel);
    }
    EXPECT_EQ(seen.size(), 4u);
    // Next round refills.
    EXPECT_TRUE(sched.select(~0ull).has_value());
}

TEST(Scheduler, StallAndBarrierMasksExclude)
{
    WarpScheduler sched(4);
    sched.setActive(0, true);
    sched.setActive(1, true);
    sched.setStalled(0, true);
    sched.setBarrier(1, true);
    EXPECT_FALSE(sched.select(~0ull).has_value());
    sched.setStalled(0, false);
    auto sel = sched.select(~0ull);
    ASSERT_TRUE(sel.has_value());
    EXPECT_EQ(*sel, 0u);
}

TEST(Scheduler, EligibilityMaskKeepsVisibleSlot)
{
    WarpScheduler sched(2);
    sched.setActive(0, true);
    sched.setActive(1, true);
    // Wavefront 0 ineligible (e.g. full ibuffer): 1 is picked, 0 retains
    // its visible slot and is picked next.
    auto sel = sched.select(~1ull);
    ASSERT_TRUE(sel.has_value());
    EXPECT_EQ(*sel, 1u);
    sel = sched.select(~0ull);
    ASSERT_TRUE(sel.has_value());
    EXPECT_EQ(*sel, 0u);
}

TEST(Scheduler, DeactivationClearsAllMasks)
{
    WarpScheduler sched(4);
    sched.setActive(2, true);
    sched.setStalled(2, true);
    sched.setBarrier(2, true);
    sched.setActive(2, false);
    EXPECT_FALSE(sched.isStalled(2));
    EXPECT_FALSE(sched.isBarrier(2));
    EXPECT_EQ(sched.activeMask(), 0u);
}

//
// Scoreboard.
//

TEST(Scoreboard, TracksIntAndFpSeparately)
{
    Scoreboard sb(2);
    isa::RegRef xi{isa::RegFile::Int, 5};
    isa::RegRef fi{isa::RegFile::Fp, 5};
    sb.setBusy(0, xi);
    EXPECT_TRUE(sb.busy(0, xi));
    EXPECT_FALSE(sb.busy(0, fi));
    EXPECT_FALSE(sb.busy(1, xi)); // other wavefront unaffected
    sb.setBusy(0, fi);
    sb.clearBusy(0, xi);
    EXPECT_FALSE(sb.busy(0, xi));
    EXPECT_TRUE(sb.busy(0, fi));
}

TEST(Scoreboard, X0NeverBusy)
{
    Scoreboard sb(1);
    isa::RegRef x0{isa::RegFile::Int, 0};
    sb.setBusy(0, x0);
    EXPECT_FALSE(sb.busy(0, x0));
    EXPECT_FALSE(sb.anyBusy(0));
}

TEST(Scoreboard, InstructionReadiness)
{
    Scoreboard sb(1);
    isa::Instr add;
    add.kind = isa::InstrKind::ADD;
    add.rd = 3;
    add.rs1 = 1;
    add.rs2 = 2;
    EXPECT_TRUE(sb.ready(0, add));
    sb.setBusy(0, {isa::RegFile::Int, 1}); // RAW on rs1
    EXPECT_FALSE(sb.ready(0, add));
    sb.clearBusy(0, {isa::RegFile::Int, 1});
    sb.setBusy(0, {isa::RegFile::Int, 3}); // WAW on rd
    EXPECT_FALSE(sb.ready(0, add));
}

//
// Barrier tables.
//

TEST(BarrierTable, ReleasesAtCount)
{
    BarrierTable bt;
    EXPECT_EQ(bt.arrive(0, 3, 0), 0u);
    EXPECT_EQ(bt.arrive(0, 3, 1), 0u);
    EXPECT_EQ(bt.arrive(0, 3, 2), 0b111u);
    EXPECT_FALSE(bt.anyWaiting());
    // Reusable after firing.
    EXPECT_EQ(bt.arrive(0, 2, 0), 0u);
    EXPECT_EQ(bt.arrive(0, 2, 3), 0b1001u);
}

TEST(BarrierTable, IndependentIds)
{
    BarrierTable bt;
    EXPECT_EQ(bt.arrive(1, 2, 0), 0u);
    EXPECT_EQ(bt.arrive(2, 2, 1), 0u);
    EXPECT_EQ(bt.arrive(1, 2, 2), 0b101u);
    EXPECT_TRUE(bt.anyWaiting()); // id 2 still waiting
}

TEST(GlobalBarrierTable, CountsAcrossCores)
{
    GlobalBarrierTable gt;
    EXPECT_TRUE(gt.arrive(9, 3, 0, 0).empty());
    EXPECT_TRUE(gt.arrive(9, 3, 1, 0).empty());
    auto rel = gt.arrive(9, 3, 2, 0);
    ASSERT_EQ(rel.size(), 3u);
    EXPECT_EQ(rel[0].core, 0u);
    EXPECT_EQ(rel[2].core, 2u);
}

//
// IPDOM capacity.
//

TEST(Ipdom, OverflowIsFatal)
{
    IpdomStack st(2);
    st.push({1, 0, true});
    st.push({2, 0, false});
    EXPECT_THROW(st.push({3, 0, true}), FatalError);
}

//
// Pipeline-level programs.
//

namespace {

Processor
makeProc(uint32_t warps = 4, uint32_t threads = 4, uint32_t cores = 1)
{
    ArchConfig cfg;
    cfg.numWarps = warps;
    cfg.numThreads = threads;
    cfg.numCores = cores;
    return Processor(cfg);
}

void
load(Processor& proc, const std::string& src)
{
    isa::Assembler as(proc.config().startPC);
    isa::Program p = as.assemble(src);
    proc.ram().writeBlock(p.base, p.image.data(), p.image.size());
}

} // namespace

TEST(Pipeline, FenceDrainsStores)
{
    Processor proc = makeProc();
    load(proc, R"(
        li t0, 0x20000
        li t1, 1
        sw t1, 0(t0)
        fence
        sw t1, 4(t0)
        li t2, 0
        vx_tmc t2
    )");
    proc.start();
    ASSERT_TRUE(proc.run(100000));
    EXPECT_EQ(proc.ram().read32(0x20000), 1u);
    EXPECT_EQ(proc.ram().read32(0x20004), 1u);
}

TEST(Pipeline, WspawnRunsAllWarps)
{
    // Each spawned wavefront stores its warp id then halts.
    Processor proc = makeProc(4, 4);
    load(proc, R"(
        # wavefront 0 spawns 1..3 then does the same work
        li t0, 4
        la t1, work
        vx_wspawn t0, t1
    work:
        csrr t2, 0xCC1      # warp id
        li t3, 0x20000
        slli t4, t2, 2
        add t3, t3, t4
        addi t5, t2, 100
        sw t5, 0(t3)
        li t6, 0
        vx_tmc t6
    )");
    proc.start();
    ASSERT_TRUE(proc.run(100000));
    for (uint32_t w = 0; w < 4; ++w)
        EXPECT_EQ(proc.ram().read32(0x20000 + 4 * w), 100 + w);
}

TEST(Pipeline, LocalBarrierOrdersPhases)
{
    // Wavefront 1 writes, both hit a barrier, wavefront 0 reads after.
    Processor proc = makeProc(2, 1);
    load(proc, R"(
        li t0, 2
        la t1, waiter
        vx_wspawn t0, t1
        # wavefront 0: spin some cycles, then write, then barrier
        li t2, 40
    spin:
        addi t2, t2, -1
        bnez t2, spin
        li t3, 0x20000
        li t4, 77
        sw t4, 0(t3)
        li t5, 0
        li t6, 2
        vx_bar t5, t6
        li t2, 0
        vx_tmc t2
    waiter:
        li t5, 0
        li t6, 2
        vx_bar t5, t6
        # after the barrier the write must be visible
        li t3, 0x20000
        lw t4, 0(t3)
        sw t4, 4(t3)
        li t2, 0
        vx_tmc t2
    )");
    proc.start();
    ASSERT_TRUE(proc.run(100000));
    EXPECT_EQ(proc.ram().read32(0x20004), 77u);
}

TEST(Pipeline, GlobalBarrierAcrossCores)
{
    // Every core increments a per-core slot, crosses a global barrier,
    // then core 0 sums all slots.
    Processor proc = makeProc(2, 2, 4);
    load(proc, R"(
        csrr t0, 0xCC2       # core id
        li t1, 0x20000
        slli t2, t0, 2
        add t2, t2, t1
        addi t3, t0, 1
        sw t3, 0(t2)         # slot[core] = core+1
        # global barrier: one wavefront per core
        li t4, 1
        slli t4, t4, 31
        csrr t5, 0xFC2       # NC
        vx_bar t4, t5
        # core 0 sums
        bnez t0, done
        li t6, 0
        lw t2, 0(t1)
        add t6, t6, t2
        lw t2, 4(t1)
        add t6, t6, t2
        lw t2, 8(t1)
        add t6, t6, t2
        lw t2, 12(t1)
        add t6, t6, t2
        sw t6, 16(t1)
    done:
        li t2, 0
        vx_tmc t2
    )");
    proc.start();
    ASSERT_TRUE(proc.run(200000));
    EXPECT_EQ(proc.ram().read32(0x20010), 1u + 2 + 3 + 4);
}

TEST(Pipeline, CyclesAdvanceAndIpcPositive)
{
    Processor proc = makeProc();
    load(proc, R"(
        li t0, 100
    loop:
        addi t0, t0, -1
        bnez t0, loop
        li t1, 0
        vx_tmc t1
    )");
    proc.start();
    ASSERT_TRUE(proc.run(100000));
    EXPECT_GT(proc.cycles(), 200u);
    EXPECT_GT(proc.threadInstrs(), 200u);
    EXPECT_GT(proc.ipc(), 0.0);
    EXPECT_FALSE(proc.busy());
}

TEST(Pipeline, TimeoutReturnsFalse)
{
    Processor proc = makeProc();
    load(proc, R"(
    forever:
        j forever
    )");
    proc.start();
    EXPECT_FALSE(proc.run(5000));
}

TEST(Pipeline, SchedulerCsrVisibility)
{
    // CSR_WARP_MASK reflects active wavefronts from inside the kernel.
    Processor proc = makeProc(4, 1);
    load(proc, R"(
        li t0, 3
        la t1, child
        vx_wspawn t0, t1
        # give children time to start
        li t2, 60
    spin:
        addi t2, t2, -1
        bnez t2, spin
        csrr t3, 0xCC3       # active wavefront mask
        li t4, 0x20000
        sw t3, 0(t4)
        li t5, 0
        vx_tmc t5
    child:
    hold:
        j hold
    )");
    proc.start();
    proc.run(3000); // children never halt; bounded run
    uint32_t mask = proc.ram().read32(0x20000);
    EXPECT_EQ(mask & 0b110u, 0b110u) << "children not visible in mask";
}

TEST(Scheduler, RoundRobinRotatesFairly)
{
    WarpScheduler sched(4, SchedPolicy::RoundRobin);
    for (WarpId w = 0; w < 4; ++w)
        sched.setActive(w, true);
    std::vector<WarpId> order;
    for (int i = 0; i < 8; ++i) {
        auto sel = sched.select(~0ull);
        ASSERT_TRUE(sel.has_value());
        order.push_back(*sel);
    }
    // Strict rotation: every wavefront appears exactly twice, evenly.
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(order[i], order[i + 4]);
    std::set<WarpId> first4(order.begin(), order.begin() + 4);
    EXPECT_EQ(first4.size(), 4u);
}

TEST(Scheduler, RoundRobinSkipsIneligible)
{
    WarpScheduler sched(4, SchedPolicy::RoundRobin);
    sched.setActive(1, true);
    sched.setActive(3, true);
    sched.setStalled(3, true);
    auto sel = sched.select(~0ull);
    ASSERT_TRUE(sel.has_value());
    EXPECT_EQ(*sel, 1u);
    sel = sched.select(~0ull);
    ASSERT_TRUE(sel.has_value());
    EXPECT_EQ(*sel, 1u); // only eligible wavefront
}

TEST(Pipeline, RoundRobinPolicyRunsKernels)
{
    ArchConfig cfg;
    cfg.schedPolicy = SchedPolicy::RoundRobin;
    Processor proc(cfg);
    load(proc, R"(
        li t0, 4
        la t1, work
        vx_wspawn t0, t1
    work:
        csrr t2, 0xCC1
        li t3, 0x20000
        slli t4, t2, 2
        add t3, t3, t4
        sw t2, 0(t3)
        li t5, 0
        vx_tmc t5
    )");
    proc.start();
    ASSERT_TRUE(proc.run(100000));
    for (uint32_t w = 1; w < 4; ++w)
        EXPECT_EQ(proc.ram().read32(0x20000 + 4 * w), w);
}

//
// Decoded-instruction cache: hit behavior + checked invalidation.
//

TEST(DecodeCache, CachesAndChecksInvalidation)
{
    mem::Ram ram;
    DecodeCache dc(16);
    const Addr pc = 0x80000000;
    const uint32_t add = 0x00A50533;  // add a0, a0, a0
    const uint32_t sub = 0x40A50533;  // sub a0, a0, a0
    ram.write32(pc, add);

    EXPECT_EQ(dc.lookup(ram, pc).raw, add);
    // A store to an unrelated (non-code) page must not disturb the
    // cached entry or bump the epoch.
    uint64_t epoch = ram.codeWriteEpoch();
    ram.write32(0x10000000, 0xDEADBEEF);
    EXPECT_EQ(ram.codeWriteEpoch(), epoch);
    EXPECT_EQ(dc.lookup(ram, pc).raw, add);

    // Overwriting the fetched instruction (a code page) bumps the epoch
    // and the next lookup re-decodes — the self-modifying-code check.
    ram.write32(pc, sub);
    EXPECT_GT(ram.codeWriteEpoch(), epoch);
    EXPECT_EQ(dc.lookup(ram, pc).raw, sub);
    EXPECT_EQ(dc.lookup(ram, pc).kind, isa::InstrKind::SUB);

    // Bulk program reloads (the driver path) are caught too.
    uint32_t word = add;
    ram.writeBlock(pc, &word, 4);
    EXPECT_EQ(dc.lookup(ram, pc).raw, add);

    // Direct-mapped conflicts just re-decode (16 entries => pc and
    // pc + 16*4 collide).
    ram.write32(pc + 64, sub);
    EXPECT_EQ(dc.lookup(ram, pc + 64).raw, sub);
    EXPECT_EQ(dc.lookup(ram, pc).raw, add);
}
