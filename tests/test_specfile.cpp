/**
 * @file
 * Tests for the sweep-spec file subsystem (src/sweep/specfile.h) and the
 * campaign's LPT scheduling:
 *
 *  - round trip: every built-in sweep preset serializes to TOML and
 *    parses back to a spec whose expanded run matrix is content-hash
 *    identical — the property that lets checked-in spec files stand in
 *    for registry presets;
 *  - the shipped examples/specs/ files ARE those dumps, byte for byte,
 *    and parse back hash-identical (the same drift gate CI's `specs`
 *    job enforces);
 *  - malformed input fails with file:line:col diagnostics;
 *  - JSON specs parse to the same matrix as their TOML equivalent;
 *  - LPT claim ordering never changes emitted CSV bytes, for any job
 *    count and any cache warmth, and the cost estimate / cached
 *    host-seconds probes behave.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/log.h"
#include "sweep/cache.h"
#include "sweep/campaign.h"
#include "sweep/presets.h"
#include "sweep/specfile.h"

using namespace vortex;
using namespace vortex::sweep;

namespace {

/** Names of every registry preset that is a sweep (not an area table). */
std::vector<std::string>
sweepPresetNames()
{
    std::vector<std::string> names;
    for (const Preset& p : presets())
        if (p.sweep)
            names.push_back(p.name);
    return names;
}

/** Content hashes of the expanded matrix, in matrix order. */
std::vector<std::string>
matrixHashes(const SweepSpec& spec)
{
    std::vector<std::string> hashes;
    for (const RunSpec& r : spec.expand())
        hashes.push_back(r.contentHash());
    return hashes;
}

/** A fast two-axis campaign used by the scheduling tests. */
SweepSpec
tinySpec()
{
    SweepSpec s;
    s.name = "tiny";
    s.base = baselineConfig(1);
    s.axes = {Axis::sweep("kernel", {"vecadd", "saxpy"}),
              Axis::sweepU32("numWarps", {2, 4})};
    return s;
}

std::string
freshTempDir(const char* tag)
{
    static int serial = 0;
    std::string dir =
        (std::filesystem::temp_directory_path() /
         (std::string("vortex_specfile_test_") + tag + "_" +
          std::to_string(::getpid()) + "_" + std::to_string(serial++)))
            .string();
    std::filesystem::remove_all(dir);
    return dir;
}

/** EXPECT that parsing @p text throws a SpecParseError at the given
 *  position whose message contains @p fragment. */
void
expectParseError(const std::string& text, size_t line, size_t col,
                 const std::string& fragment)
{
    try {
        parseSpecText(text, "t.toml");
        FAIL() << "expected SpecParseError containing '" << fragment
               << "'";
    } catch (const SpecParseError& e) {
        EXPECT_EQ(e.line(), line) << e.what();
        EXPECT_EQ(e.column(), col) << e.what();
        EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
            << e.what();
        // The position is part of the rendered diagnostic too.
        std::string pos = "t.toml:" + std::to_string(line) + ":" +
                          std::to_string(col) + ":";
        EXPECT_NE(std::string(e.what()).find(pos), std::string::npos)
            << e.what();
    }
}

} // namespace

TEST(SpecFile, RoundTripsEveryPresetHashIdentical)
{
    for (const std::string& name : sweepPresetNames()) {
        SweepSpec original = findPreset(name)->sweep({});
        SweepSpec reparsed =
            parseSpecText(specToToml(original), name + ".toml");

        EXPECT_EQ(reparsed.name, original.name);
        EXPECT_EQ(reparsed.description, original.description);
        ASSERT_EQ(reparsed.runCount(), original.runCount()) << name;
        EXPECT_EQ(matrixHashes(reparsed), matrixHashes(original)) << name;

        // Ids (axis labels) survive too — reports index by them.
        std::vector<RunSpec> a = original.expand(), b = reparsed.expand();
        for (size_t i = 0; i < a.size(); ++i)
            EXPECT_EQ(a[i].id(), b[i].id()) << name;
    }
}

TEST(SpecFile, SerializationIsAFixpoint)
{
    for (const std::string& name : sweepPresetNames()) {
        std::string once = specToToml(findPreset(name)->sweep({}));
        std::string twice =
            specToToml(parseSpecText(once, name + ".toml"));
        EXPECT_EQ(once, twice) << name;
    }
}

TEST(SpecFile, ShippedSpecsMatchTheRegistryByteForByte)
{
#ifndef VORTEX_SPECS_DIR
    GTEST_SKIP() << "VORTEX_SPECS_DIR not configured";
#else
    for (const std::string& name : sweepPresetNames()) {
        std::string path =
            std::string(VORTEX_SPECS_DIR) + "/" + name + ".toml";
        std::ifstream in(path, std::ios::binary);
        ASSERT_TRUE(in) << "missing shipped spec " << path
                        << " (regenerate: vortex_sweep --preset " << name
                        << " --dump-spec " << path << ")";
        std::ostringstream buf;
        buf << in.rdbuf();

        SweepSpec preset = findPreset(name)->sweep({});
        // The shipped file is exactly the canonical dump...
        EXPECT_EQ(buf.str(), specToToml(preset))
            << path << " drifted from the registry preset; regenerate "
            << "it with --dump-spec";
        // ...and parses back to the same campaign.
        SweepSpec parsed = parseSpecFile(path);
        EXPECT_EQ(parsed.name, name);
        EXPECT_EQ(matrixHashes(parsed), matrixHashes(preset)) << path;
    }
#endif
}

TEST(SpecFile, JsonAndTomlSpecsExpandIdentically)
{
    const char* toml = "name = \"mini\"\n"
                       "[base]\n"
                       "numWarps = 8\n"
                       "[workload]\n"
                       "kernel = \"saxpy\"\n"
                       "[[axes]]\n"
                       "name = \"cores\"\n"
                       "[[axes.points]]\n"
                       "label = \"1\"\n"
                       "set.cores = 1\n"
                       "[[axes.points]]\n"
                       "label = \"2\"\n"
                       "set.cores = 2\n";
    const char* json = R"({
      "name": "mini",
      "base": {"numWarps": 8},
      "workload": {"kernel": "saxpy"},
      "axes": [
        {"name": "cores", "points": [
          {"label": "1", "set": {"cores": 1}},
          {"label": "2", "set": {"cores": 2}}
        ]}
      ]
    })";
    SweepSpec t = parseSpecText(toml, "m.toml");
    SweepSpec j = parseSpecText(json, "m.json");
    EXPECT_EQ(t.name, "mini");
    EXPECT_EQ(j.name, "mini");
    ASSERT_EQ(t.runCount(), 2u);
    EXPECT_EQ(matrixHashes(t), matrixHashes(j));
    EXPECT_EQ(t.expand()[1].config.numCores, 2u);
    EXPECT_EQ(t.expand()[0].config.numWarps, 8u);
    EXPECT_EQ(t.expand()[0].workload.kernel, "saxpy");
}

TEST(SpecFile, MalformedInputReportsLineAndColumn)
{
    // Bad value for a known field: position of the value.
    expectParseError("name = \"x\"\n[base]\nnumWarps = \"banana\"\n", 3,
                     12, "cannot parse 'banana'");
    // Unknown field name: position of the value node it was given.
    expectParseError("[base]\nnoSuchField = 3\n", 2, 15,
                     "unknown sweep field 'noSuchField'");
    // Unknown top-level key: position of the key.
    expectParseError("bogus = 1\n", 1, 1, "unknown top-level key");
    // Unterminated string.
    expectParseError("name = \"oops\n", 1, 8, "unterminated string");
    // Floats are rejected with a hint.
    expectParseError("[base]\nnumWarps = 4.5\n", 2, 12,
                     "floating-point");
    // Duplicate keys.
    expectParseError("name = \"a\"\nname = \"b\"\n", 2, 1, "set twice");
    // A point without a label (position: the `points` component of the
    // [[axes.points]] header that opened the point).
    expectParseError("[[axes]]\nname = \"kernel\"\n[[axes.points]]\n"
                     "set.kernel = \"saxpy\"\n",
                     3, 8, "needs a label");
    // An axis with no points at all.
    expectParseError("[[axes]]\nname = \"kernel\"\n", 1, 3, "no points");
    // Unterminated table header.
    expectParseError("[base\nnumWarps = 2\n", 1, 1,
                     "unterminated table header");
    // JSON: trailing garbage and duplicate keys carry positions too.
    expectParseError("{\"name\": \"x\"} xxx", 1, 15, "trailing content");
    expectParseError("{\"name\": \"x\", \"name\": \"y\"}", 1, 15,
                     "set twice");
    // JSON: null rejected with schema guidance.
    expectParseError("{\"name\": null}", 1, 10, "null is not used");
}

TEST(SpecFile, CrlfLineEndingsParseLikeLf)
{
    // A spec checked out with Windows line endings (git autocrlf) must
    // parse identically to the LF original.
    std::string lf = specToToml(findPreset("fig19")->sweep({}));
    std::string crlf;
    for (char c : lf) {
        if (c == '\n')
            crlf += '\r';
        crlf += c;
    }
    SweepSpec a = parseSpecText(lf, "lf.toml");
    SweepSpec b = parseSpecText(crlf, "crlf.toml");
    EXPECT_EQ(matrixHashes(a), matrixHashes(b));
}

TEST(SpecFile, StrayTokensInKeysAndHeadersAreErrorsNotDropped)
{
    // 'name extra = ...' must not silently parse as 'name = ...'.
    expectParseError("name extra = \"x\"\n", 1, 6,
                     "unexpected text after key");
    // Junk inside a table header must not silently become [base].
    expectParseError("[base junk]\nnumWarps = 2\n", 1, 7,
                     "unexpected text after key");
}

TEST(SpecFile, DumpCoversEveryRegistryField)
{
    // Guard against the serializer drifting behind the field registry:
    // every sweepable field must appear in the dump of a rodinia or a
    // texture spec (each workload family emits its own block), except
    // the derived "cores" whose concrete expansion is emitted instead.
    SweepSpec rodinia;
    SweepSpec texture;
    texture.baseWorkload.kind = WorkloadSpec::Kind::Texture;
    SweepSpec withProgram;
    // Set the fields directly (applyField would read the file):
    // "program" and "check" are only serialized when present, like the
    // texture block.
    withProgram.baseWorkload.program = "examples/kernels/vecadd.s";
    withProgram.baseWorkload.check = "selfcheck";
    std::string dumps = specToToml(rodinia) + specToToml(texture) +
                        specToToml(withProgram);
    for (const FieldInfo& f : sweepableFields()) {
        if (std::string(f.name) == "cores")
            continue;
        // "faults.*" fields serialize as bare keys inside a [faults]
        // section (only when set) — covered by FaultsSectionRoundTrips.
        if (std::string(f.name).rfind("faults.", 0) == 0)
            continue;
        EXPECT_NE(dumps.find("\n" + std::string(f.name) + " = "),
                  std::string::npos)
            << "registry field '" << f.name
            << "' is missing from writeSpecToml output — add it to "
               "configAssignments/workloadAssignments in specfile.cpp";
    }
}

TEST(SpecFile, FaultsSectionRoundTrips)
{
    // A [faults] section populates the workload FaultSpec, enters the
    // canonical serialization (distinct content hash), and survives a
    // dump/parse round trip byte-identically.
    SweepSpec spec = parseSpecText("name = \"f\"\n"
                                   "[faults]\n"
                                   "seed = 7\n"
                                   "count = 3\n"
                                   "window = 5000\n"
                                   "watchdog = 200000\n",
                                   "f.toml");
    EXPECT_EQ(spec.baseWorkload.faults.seed, 7u);
    EXPECT_EQ(spec.baseWorkload.faults.count, 3u);
    EXPECT_EQ(spec.baseWorkload.faults.window, 5000u);
    EXPECT_EQ(spec.baseWorkload.faults.watchdog, 200000u);

    SweepSpec clean = parseSpecText("name = \"f\"\n", "f.toml");
    EXPECT_NE(spec.expand()[0].contentHash(),
              clean.expand()[0].contentHash());

    std::string dump = specToToml(spec);
    EXPECT_NE(dump.find("[faults]"), std::string::npos);
    SweepSpec reparsed = parseSpecText(dump, "f2.toml");
    EXPECT_EQ(specToToml(reparsed), dump);
    EXPECT_EQ(reparsed.expand()[0].contentHash(),
              spec.expand()[0].contentHash());

    // Unknown keys inside [faults] are positioned errors.
    expectParseError("name = \"f\"\n[faults]\nbogus = 1\n", 3, 1,
                     "unknown faults key");
}

TEST(SpecFile, SchemaIdIsValidatedWhenPresent)
{
    EXPECT_NO_THROW(
        parseSpecText("spec = \"vortex-sweep/v1\"\nname = \"a\"\n"));
    expectParseError("spec = \"vortex-sweep/v9\"\n", 1, 8,
                     "unsupported schema");
}

TEST(SpecFile, SampleIntervalAndOverridesSurviveTheFile)
{
    const char* toml = "name = \"sampled\"\n"
                       "[base]\n"
                       "sampleInterval = 5000\n"
                       "dcachePorts = 2\n"
                       "[workload]\n"
                       "workload = \"texture\"\n"
                       "texFilter = \"trilinear\"\n"
                       "texHw = false\n"
                       "texSize = 32\n";
    SweepSpec s = parseSpecText(toml, "s.toml");
    EXPECT_EQ(s.base.sampleInterval, 5000u);
    EXPECT_EQ(s.base.dcachePorts, 2u);
    EXPECT_EQ(s.baseWorkload.kind, WorkloadSpec::Kind::Texture);
    EXPECT_EQ(s.baseWorkload.texFilter, runtime::TexFilterMode::Trilinear);
    EXPECT_FALSE(s.baseWorkload.texHw);
    EXPECT_EQ(s.baseWorkload.texSize, 32u);
    // And they round-trip through the serializer.
    SweepSpec again = parseSpecText(specToToml(s), "s2.toml");
    EXPECT_EQ(matrixHashes(again), matrixHashes(s));
}

TEST(SpecFile, CheckFieldRoundTripsAndDifferentiatesTheHash)
{
    const char* toml = "name = \"zoo1\"\n"
                       "[workload]\n"
                       "kernel = \"bitonic\"\n"
                       "program = \"examples/kernels/bitonic.s\"\n"
                       "check = \"selfcheck\"\n";
    SweepSpec s = parseSpecText(toml, "z.toml");
    EXPECT_EQ(s.baseWorkload.check, "selfcheck");

    // Serializes, reparses, and is a fixpoint.
    std::string once = specToToml(s);
    EXPECT_NE(once.find("check = \"selfcheck\""), std::string::npos);
    SweepSpec again = parseSpecText(once, "z2.toml");
    EXPECT_EQ(again.baseWorkload.check, "selfcheck");
    EXPECT_EQ(once, specToToml(again));
    EXPECT_EQ(matrixHashes(again), matrixHashes(s));

    // The check is part of the run's identity: flipping it must change
    // the content hash — a memcmp'd run never aliases a selfcheck'd
    // one, and neither aliases an unchecked run.
    ASSERT_EQ(s.runCount(), 1u);
    RunSpec checked = s.expand()[0];
    RunSpec memcmpd = checked;
    memcmpd.workload.check = "memcmp:0x10000000:100:deadbeef";
    RunSpec unchecked = checked;
    unchecked.workload.check.clear();
    EXPECT_NE(checked.contentHash(), memcmpd.contentHash());
    EXPECT_NE(checked.contentHash(), unchecked.contentHash());
    EXPECT_NE(checked.canonical().find("check = selfcheck"),
              std::string::npos);
}

TEST(SpecFile, MalformedCheckValuesReportLineAndColumn)
{
    // Bad value of a known field: position of the value.
    expectParseError("[workload]\ncheck = \"bogus\"\n", 2, 9,
                     "unknown check 'bogus'");
    expectParseError("[workload]\ncheck = \"memcmp:zz:4:0\"\n", 2, 9,
                     "cannot parse 'zz' as a hex number");
    expectParseError("[workload]\ncheck = \"memcmp:0:4\"\n", 2, 9,
                     "not of the form memcmp:ADDR:LEN:FNV");
}

TEST(Lpt, EstimateRanksObviouslyLongerRunsHigher)
{
    SweepSpec s;
    s.base = baselineConfig(1);
    RunSpec small = s.expand()[0]; // vecadd x1 on the 1-core baseline

    RunSpec bigKernel = small;
    bigKernel.workload.kernel = "sgemm";
    bigKernel.workload.scale = 2;
    EXPECT_GT(estimateRunCost(bigKernel), estimateRunCost(small));

    RunSpec bigMachine = small;
    bigMachine.config.numCores = 16;
    EXPECT_GT(estimateRunCost(bigMachine), estimateRunCost(small));

    // Deterministic: same spec, same estimate.
    EXPECT_DOUBLE_EQ(estimateRunCost(small), estimateRunCost(small));
}

TEST(Lpt, CsvBytesAreIdenticalAcrossJobsAndCacheWarmthUnderLpt)
{
    SweepSpec spec = tinySpec();

    auto csvOf = [&](const CampaignOptions& o) {
        std::ostringstream os;
        Campaign(o).run(spec).writeCsv(os);
        return os.str();
    };

    CampaignOptions lpt1;
    lpt1.jobs = 1;
    lpt1.lpt = true;
    CampaignOptions lpt4 = lpt1;
    lpt4.jobs = 4;
    CampaignOptions matrix4 = lpt4;
    matrix4.lpt = false;

    std::string base = csvOf(lpt1);
    EXPECT_EQ(base, csvOf(lpt4));
    EXPECT_EQ(base, csvOf(matrix4));

    // Half-warm cache: run a sub-matrix first, then the full campaign
    // with LPT at --jobs 4. Hits are claimed last, misses by estimate —
    // bytes still identical.
    std::string dir = freshTempDir("lpt");
    SweepSpec half = tinySpec();
    half.axes[0] = Axis::sweep("kernel", {"vecadd"});
    CampaignOptions warm;
    warm.jobs = 2;
    warm.cacheDir = dir;
    Campaign(warm).run(half);

    CampaignOptions cached4 = lpt4;
    cached4.cacheDir = dir;
    CampaignResult r = Campaign(cached4).run(spec);
    EXPECT_EQ(r.cacheHits, 2u);
    EXPECT_EQ(r.cacheMisses, 2u);
    std::ostringstream os;
    r.writeCsv(os);
    EXPECT_EQ(base, os.str());
    std::filesystem::remove_all(dir);
}

TEST(Lpt, CachedHostSecondsRoundTripsThroughTheCache)
{
    std::string dir = freshTempDir("hs");
    CampaignOptions opts;
    opts.cacheDir = dir;
    SweepSpec spec = tinySpec();
    CampaignResult cold = Campaign(opts).run(spec);

    for (const RunRecord& rec : cold.records) {
        double s = CacheStore(dir).recordedHostSeconds(rec.spec.contentHash());
        EXPECT_GE(s, 0.0);
        // What the cache replays is what the run cost this host.
        EXPECT_DOUBLE_EQ(s, rec.hostSeconds);
    }
    EXPECT_LT(CacheStore(dir).recordedHostSeconds("0123456789abcdef"), 0.0);
    EXPECT_LT(CacheStore(dir + "/nope").recordedHostSeconds("0123456789abcdef"),
              0.0);

    // An entry written before the host_seconds provenance line existed
    // is still a hit: the probe reports 0 (unknown cost), not absent —
    // otherwise LPT would price warm pre-upgrade caches as full work.
    const std::string hash = cold.records[0].spec.contentHash();
    const std::string path = dir + "/" + hash + ".run";
    std::ifstream in(path);
    std::ostringstream stripped;
    std::string line;
    while (std::getline(in, line))
        if (line.rfind("host_seconds ", 0) != 0)
            stripped << line << "\n";
    in.close();
    std::ofstream(path, std::ios::trunc) << stripped.str();
    EXPECT_DOUBLE_EQ(CacheStore(dir).recordedHostSeconds(hash), 0.0);
    std::filesystem::remove_all(dir);
}
