/**
 * @file
 * End-to-end smoke tests: tiny assembly programs through the full
 * assembler -> processor pipeline, then a complete vecadd kernel through
 * the driver stack.
 */

#include <gtest/gtest.h>

#include "core/processor.h"
#include "isa/assembler.h"
#include "kernels/kernels.h"
#include "runtime/device.h"
#include "runtime/kargs.h"

using namespace vortex;

namespace {

core::ArchConfig
smallConfig()
{
    core::ArchConfig cfg;
    cfg.numThreads = 4;
    cfg.numWarps = 4;
    cfg.numCores = 1;
    return cfg;
}

} // namespace

TEST(Smoke, StoreAndHalt)
{
    core::ArchConfig cfg = smallConfig();
    core::Processor proc(cfg);

    isa::Assembler as(cfg.startPC);
    isa::Program prog = as.assemble(R"(
        li t0, 0x20000
        li t1, 42
        sw t1, 0(t0)
        li t2, 0
        vx_tmc t2
    )");
    proc.ram().writeBlock(prog.base, prog.image.data(), prog.image.size());
    proc.start();
    ASSERT_TRUE(proc.run(100000));
    EXPECT_EQ(proc.ram().read32(0x20000), 42u);
    EXPECT_GT(proc.cycles(), 0u);
}

TEST(Smoke, LoopSum)
{
    core::ArchConfig cfg = smallConfig();
    core::Processor proc(cfg);

    // Sum 1..10 into memory.
    isa::Assembler as(cfg.startPC);
    isa::Program prog = as.assemble(R"(
        li t0, 0
        li t1, 10
        li t2, 0
    loop:
        add t2, t2, t1
        addi t1, t1, -1
        bnez t1, loop
        li t3, 0x20000
        sw t2, 0(t3)
        li t4, 0
        vx_tmc t4
    )");
    proc.ram().writeBlock(prog.base, prog.image.data(), prog.image.size());
    proc.start();
    ASSERT_TRUE(proc.run(100000));
    EXPECT_EQ(proc.ram().read32(0x20000), 55u);
}

TEST(Smoke, VecAddKernel)
{
    runtime::Device dev(smallConfig());
    const uint32_t n = 64;

    std::vector<int32_t> a(n), b(n), c(n, 0);
    for (uint32_t i = 0; i < n; ++i) {
        a[i] = static_cast<int32_t>(i);
        b[i] = static_cast<int32_t>(1000 + i);
    }
    Addr da = dev.memAlloc(n * 4);
    Addr db = dev.memAlloc(n * 4);
    Addr dc = dev.memAlloc(n * 4);
    dev.copyToDev(da, a.data(), n * 4);
    dev.copyToDev(db, b.data(), n * 4);

    dev.uploadKernel(kernels::vecadd());
    runtime::VecAddArgs args{n, da, db, dc};
    dev.setKernelArg(args);
    dev.runKernel(5000000);

    dev.copyFromDev(c.data(), dc, n * 4);
    for (uint32_t i = 0; i < n; ++i)
        EXPECT_EQ(c[i], a[i] + b[i]) << "at " << i;
    EXPECT_GT(dev.ipc(), 0.0);
}

TEST(Smoke, VecAddOddSizeAndMultiCore)
{
    core::ArchConfig cfg = smallConfig();
    cfg.numCores = 2;
    runtime::Device dev(cfg);
    const uint32_t n = 77; // not a multiple of the thread count

    std::vector<int32_t> a(n), b(n), c(n, 0);
    for (uint32_t i = 0; i < n; ++i) {
        a[i] = static_cast<int32_t>(3 * i);
        b[i] = static_cast<int32_t>(-i);
    }
    Addr da = dev.memAlloc(n * 4);
    Addr db = dev.memAlloc(n * 4);
    Addr dc = dev.memAlloc(n * 4);
    dev.copyToDev(da, a.data(), n * 4);
    dev.copyToDev(db, b.data(), n * 4);

    dev.uploadKernel(kernels::vecadd());
    runtime::VecAddArgs args{n, da, db, dc};
    dev.setKernelArg(args);
    dev.runKernel(5000000);

    dev.copyFromDev(c.data(), dc, n * 4);
    for (uint32_t i = 0; i < n; ++i)
        EXPECT_EQ(c[i], a[i] + b[i]) << "at " << i;
}
