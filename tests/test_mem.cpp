/**
 * @file
 * Memory-subsystem tests: RAM paging, the memory simulator's latency and
 * bandwidth behaviour, the non-blocking banked cache (hits, misses, MSHR
 * merging, virtual-port coalescing, bank conflicts, write-through traffic,
 * flush), the scratchpad, and a randomized completeness property: every
 * request receives exactly one response, under any mix, with no deadlock.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.h"
#include "mem/cache.h"
#include "mem/memsim.h"
#include "mem/ram.h"
#include "mem/router.h"
#include "mem/sharedmem.h"

using namespace vortex;
using namespace vortex::mem;

//
// RAM.
//

TEST(Ram, ReadWriteWidths)
{
    Ram ram;
    ram.write32(0x100, 0x11223344);
    EXPECT_EQ(ram.read8(0x100), 0x44u);
    EXPECT_EQ(ram.read8(0x103), 0x11u);
    EXPECT_EQ(ram.read16(0x100), 0x3344u);
    EXPECT_EQ(ram.read16(0x102), 0x1122u);
    EXPECT_EQ(ram.read32(0x100), 0x11223344u);
    ram.write8(0x101, 0xAA);
    EXPECT_EQ(ram.read32(0x100), 0x1122AA44u);
    ram.writeFloat(0x200, 2.5f);
    EXPECT_EQ(ram.readFloat(0x200), 2.5f);
}

TEST(Ram, PageBoundaryCrossing)
{
    Ram ram;
    Addr edge = Ram::kPageSize - 2;
    ram.write32(edge, 0xCAFEBABE);
    EXPECT_EQ(ram.read32(edge), 0xCAFEBABEu);
    EXPECT_EQ(ram.numPages(), 2u);

    std::vector<uint8_t> blob(300);
    for (size_t i = 0; i < blob.size(); ++i)
        blob[i] = static_cast<uint8_t>(i);
    ram.writeBlock(Ram::kPageSize - 100, blob.data(), blob.size());
    std::vector<uint8_t> back(300);
    ram.readBlock(Ram::kPageSize - 100, back.data(), back.size());
    EXPECT_EQ(blob, back);
}

TEST(Ram, UntouchedReadsZero)
{
    Ram ram;
    EXPECT_EQ(ram.read32(0xDEAD0000), 0u);
    EXPECT_EQ(ram.numPages(), 0u);
}

//
// MemSim.
//

namespace {

struct RspCollector
{
    std::vector<MemRsp> rsps;
    void operator()(const MemRsp& r) { rsps.push_back(r); }
};

} // namespace

TEST(MemSim, ReadLatency)
{
    MemSimConfig cfg;
    cfg.latency = 10;
    cfg.lineSize = 64;
    cfg.busWidth = 16; // 4-cycle transfer
    MemSim mem(cfg);
    std::vector<std::pair<uint64_t, Cycle>> done;
    mem.setRspCallback([&](const MemRsp& r) { done.push_back({r.reqId, 0}); });

    mem.reqPush(MemReq{0x1000, false, 1, {}});
    Cycle now = 0;
    Cycle rsp_cycle = 0;
    while (done.empty() && now < 100) {
        ++now;
        mem.tick(now);
        if (!done.empty())
            rsp_cycle = now;
    }
    ASSERT_EQ(done.size(), 1u);
    // Accepted at cycle 1, responds at 1 + latency + lineCycles = 15.
    EXPECT_EQ(rsp_cycle, 15u);
    EXPECT_TRUE(mem.idle());
}

TEST(MemSim, WritesConsumeBandwidthNoResponse)
{
    MemSimConfig cfg;
    MemSim mem(cfg);
    int rsps = 0;
    mem.setRspCallback([&](const MemRsp&) { ++rsps; });
    mem.reqPush(MemReq{0x0, true, 1, {}});
    mem.reqPush(MemReq{0x40, true, 2, {}});
    for (Cycle now = 1; now < 50; ++now)
        mem.tick(now);
    EXPECT_EQ(rsps, 0);
    EXPECT_TRUE(mem.idle());
    EXPECT_EQ(mem.stats().get("writes"), 2u);
}

TEST(MemSim, ChannelParallelism)
{
    // Two requests on different channels start the same cycle; on the same
    // channel they serialize by the transfer occupancy.
    MemSimConfig cfg;
    cfg.latency = 5;
    cfg.lineSize = 64;
    cfg.busWidth = 16;
    cfg.numChannels = 2;
    MemSim mem(cfg);
    std::vector<Cycle> times;
    Cycle now = 0;
    mem.setRspCallback([&](const MemRsp&) { times.push_back(now); });
    // Same channel: lines 0 and 2 (interleaved by line index).
    mem.reqPush(MemReq{0 * 64, false, 1, {}});
    mem.reqPush(MemReq{2 * 64, false, 2, {}});
    for (now = 1; now < 50; ++now)
        mem.tick(now);
    ASSERT_EQ(times.size(), 2u);
    Cycle same_gap = times[1] - times[0];
    EXPECT_EQ(same_gap, 4u); // serialized by the 4-cycle transfer

    times.clear();
    MemSim mem2(cfg);
    mem2.setRspCallback([&](const MemRsp&) { times.push_back(now); });
    mem2.reqPush(MemReq{0 * 64, false, 1, {}});
    mem2.reqPush(MemReq{1 * 64, false, 2, {}}); // different channel
    for (now = 1; now < 50; ++now)
        mem2.tick(now);
    ASSERT_EQ(times.size(), 2u);
    EXPECT_EQ(times[1] - times[0], 0u); // parallel channels
}

//
// Cache.
//

namespace {

struct CacheHarness
{
    explicit CacheHarness(CacheConfig ccfg = {}, MemSimConfig mcfg = {})
        : cache(ccfg), mem(mcfg)
    {
        cache.connectMem(&mem);
        mem.setRspCallback([this](const MemRsp& r) { cache.memRsp(r); });
        cache.setRspCallback(
            [this](const CoreRsp& r) { rsps.push_back(r); });
    }

    void
    tick()
    {
        ++now;
        mem.tick(now);
        cache.tick(now);
    }

    /** Run until idle; panics (via test failure) on stall-out. */
    void
    drain(uint32_t limit = 10000)
    {
        uint32_t n = 0;
        while (!cache.idle() || !mem.idle()) {
            tick();
            ASSERT_LT(++n, limit) << "cache did not drain";
        }
    }

    void
    push(uint32_t lane, Addr addr, bool write, uint64_t id)
    {
        while (!cache.laneReady(lane))
            tick();
        CoreReq req;
        req.addr = addr;
        req.write = write;
        req.reqId = id;
        req.lane = lane;
        cache.lanePush(lane, req);
    }

    Cache cache;
    MemSim mem;
    std::vector<CoreRsp> rsps;
    Cycle now = 0;
};

} // namespace

TEST(Cache, MissThenHitLatency)
{
    CacheHarness h;
    h.push(0, 0x1000, false, 1);
    h.drain();
    ASSERT_EQ(h.rsps.size(), 1u);
    EXPECT_EQ(h.cache.stats().get("read_misses"), 1u);
    Cycle miss_time = h.now;

    // Same line again: a hit, much faster.
    Cycle start = h.now;
    h.push(0, 0x1004, false, 2);
    h.drain();
    EXPECT_EQ(h.cache.stats().get("read_hits"), 1u);
    EXPECT_LT(h.now - start, miss_time / 2);
}

TEST(Cache, MshrMergesSameLine)
{
    CacheHarness h;
    // Four lanes read the same line in consecutive cycles: one memory
    // fill, the rest merge.
    h.push(0, 0x2000, false, 1);
    h.tick();
    h.push(1, 0x2004, false, 2);
    h.tick();
    h.push(2, 0x2008, false, 3);
    h.tick();
    h.push(3, 0x200C, false, 4);
    h.drain();
    EXPECT_EQ(h.rsps.size(), 4u);
    EXPECT_EQ(h.mem.stats().get("reads"), 1u);
    EXPECT_GE(h.cache.stats().get("mshr_merges"), 1u);
}

TEST(Cache, VirtualPortCoalescing)
{
    // With 4 virtual ports, 4 same-cycle same-line requests coalesce into
    // one bank access; with 1 port they serialize as bank conflicts.
    for (uint32_t ports : {1u, 4u}) {
        CacheConfig ccfg;
        ccfg.numPorts = ports;
        ccfg.numLanes = 4;
        CacheHarness h(ccfg);
        for (uint32_t lane = 0; lane < 4; ++lane)
            h.push(lane, 0x3000 + 4 * lane, false, lane + 1);
        h.drain();
        EXPECT_EQ(h.rsps.size(), 4u);
        if (ports == 4) {
            EXPECT_EQ(h.cache.stats().get("sel_conflicts"), 0u);
            EXPECT_EQ(h.cache.bankUtilization(), 1.0);
        } else {
            EXPECT_GE(h.cache.stats().get("sel_conflicts"), 3u);
            EXPECT_LT(h.cache.bankUtilization(), 1.0);
        }
    }
}

TEST(Cache, DifferentBanksNoConflict)
{
    CacheConfig ccfg;
    ccfg.numPorts = 1;
    CacheHarness h(ccfg);
    // Four different lines mapping to the four banks.
    for (uint32_t lane = 0; lane < 4; ++lane)
        h.push(lane, 0x4000 + 64 * lane, false, lane + 1);
    h.drain();
    EXPECT_EQ(h.rsps.size(), 4u);
    EXPECT_EQ(h.cache.stats().get("sel_conflicts"), 0u);
}

TEST(Cache, WriteThroughTraffic)
{
    CacheHarness h;
    h.push(0, 0x5000, true, 1);
    h.drain();
    ASSERT_EQ(h.rsps.size(), 1u);
    EXPECT_TRUE(h.rsps[0].write);
    EXPECT_EQ(h.mem.stats().get("writes"), 1u);
    EXPECT_EQ(h.mem.stats().get("reads"), 0u);

    // A read of that line still misses (no write-allocate).
    h.push(0, 0x5000, false, 2);
    h.drain();
    EXPECT_EQ(h.mem.stats().get("reads"), 1u);
}

TEST(Cache, EvictionOnCapacity)
{
    CacheConfig ccfg; // 16KB, 4 banks, 2 ways, 64B lines -> 32 sets/bank
    CacheHarness h(ccfg);
    // Three lines in the same set of the same bank (stride = banks * sets
    // * lineSize = 4*32*64 = 8192) overflow the 2 ways.
    for (uint64_t i = 0; i < 3; ++i) {
        h.push(0, static_cast<Addr>(0x10000 + i * 8192), false, i + 1);
        h.drain();
    }
    EXPECT_EQ(h.cache.stats().get("evictions"), 1u);
    // Re-reading the evicted line misses again.
    h.push(0, 0x10000, false, 9);
    h.drain();
    EXPECT_EQ(h.cache.stats().get("read_misses"), 4u);
}

TEST(Cache, FlushInvalidates)
{
    CacheHarness h;
    h.push(0, 0x6000, false, 1);
    h.drain();
    h.push(0, 0x6000, false, 2);
    h.drain();
    EXPECT_EQ(h.cache.stats().get("read_hits"), 1u);
    h.cache.flushAll();
    h.push(0, 0x6000, false, 3);
    h.drain();
    EXPECT_EQ(h.cache.stats().get("read_misses"), 2u);
}

TEST(Cache, RandomStressCompleteness)
{
    // Property: every request gets exactly one response, regardless of the
    // mix of reads/writes/banks/lines, with a small MSHR and memory queue
    // (exercises the early-full deadlock avoidance).
    CacheConfig ccfg;
    ccfg.mshrEntries = 2;
    ccfg.memQueueDepth = 2;
    ccfg.numLanes = 4;
    MemSimConfig mcfg;
    mcfg.latency = 17;
    mcfg.queueDepth = 2;
    CacheHarness h(ccfg, mcfg);

    Xorshift rng(99);
    std::set<uint64_t> outstanding;
    uint64_t next_id = 1;
    const int kReqs = 2000;
    int sent = 0;
    while (sent < kReqs || !outstanding.empty()) {
        if (sent < kReqs) {
            uint32_t lane = rng.nextBounded(4);
            if (h.cache.laneReady(lane)) {
                CoreReq req;
                req.addr = rng.nextBounded(0x4000) & ~3u;
                req.write = rng.nextBounded(4) == 0;
                req.reqId = next_id++;
                req.lane = lane;
                h.cache.lanePush(lane, req);
                outstanding.insert(req.reqId);
                ++sent;
            }
        }
        h.tick();
        for (const CoreRsp& r : h.rsps) {
            auto it = outstanding.find(r.reqId);
            ASSERT_NE(it, outstanding.end()) << "duplicate response";
            outstanding.erase(it);
        }
        h.rsps.clear();
        ASSERT_LT(h.now, 1000000u) << "stall-out (deadlock?)";
    }
    h.drain();
    EXPECT_TRUE(h.cache.idle());
}

//
// SharedMem.
//

TEST(SharedMem, ConflictFreeParallelAccess)
{
    SharedMemConfig cfg;
    SharedMem smem(cfg);
    std::vector<CoreRsp> rsps;
    smem.setRspCallback([&](const CoreRsp& r) { rsps.push_back(r); });
    // Four lanes to four different banks: all accepted in one cycle.
    for (uint32_t lane = 0; lane < 4; ++lane) {
        CoreReq req;
        req.addr = 0xFF000000 + 4 * lane;
        req.reqId = lane + 1;
        req.lane = lane;
        smem.lanePush(lane, req);
    }
    Cycle now = 0;
    while (!smem.idle() && now < 100)
        smem.tick(++now);
    EXPECT_EQ(rsps.size(), 4u);
    EXPECT_EQ(smem.stats().get("bank_conflicts"), 0u);
}

TEST(SharedMem, BankConflictSerializes)
{
    SharedMemConfig cfg;
    SharedMem smem(cfg);
    std::vector<CoreRsp> rsps;
    smem.setRspCallback([&](const CoreRsp& r) { rsps.push_back(r); });
    // Two lanes to the same bank (same word offset).
    for (uint32_t lane = 0; lane < 2; ++lane) {
        CoreReq req;
        req.addr = 0xFF000000; // same bank
        req.reqId = lane + 1;
        req.lane = lane;
        smem.lanePush(lane, req);
    }
    Cycle now = 0;
    while (!smem.idle() && now < 100)
        smem.tick(++now);
    EXPECT_EQ(rsps.size(), 2u);
    EXPECT_GE(smem.stats().get("bank_conflicts"), 1u);
}

//
// MemRouter.
//

TEST(MemRouter, RoutesToIssuingPort)
{
    MemSimConfig mcfg;
    MemSim mem(mcfg);
    MemRouter router(&mem);
    mem.setRspCallback([&](const MemRsp& r) { router.onRsp(r); });
    std::vector<uint64_t> got_a, got_b;
    MemSink* pa = router.makePort(
        [&](const MemRsp& r) { got_a.push_back(r.reqId); });
    MemSink* pb = router.makePort(
        [&](const MemRsp& r) { got_b.push_back(r.reqId); });
    pa->reqPush(MemReq{0x1000, false, 101, {}});
    pb->reqPush(MemReq{0x2000, false, 202, {}});
    pb->reqPush(MemReq{0x3000, true, 303, {}}); // write: no response
    for (Cycle now = 1; now < 200; ++now)
        mem.tick(now);
    ASSERT_EQ(got_a.size(), 1u);
    ASSERT_EQ(got_b.size(), 1u);
    EXPECT_EQ(got_a[0], 101u);
    EXPECT_EQ(got_b[0], 202u);
    EXPECT_TRUE(router.idle());
}
