/**
 * @file
 * Serial-vs-parallel tick backend regression suite: the parallel engine
 * must be *bit-identical* to the serial one — same cycles(),
 * threadInstrs(), and functional output — for every core count, since the
 * cross-core commit phase (staged memory requests, deferred global barrier
 * arrivals) is shared by both backends.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/processor.h"
#include "isa/assembler.h"
#include "kernels/kernels.h"
#include "runtime/device.h"
#include "runtime/kargs.h"
#include "runtime/workloads.h"

using namespace vortex;
using runtime::Device;

namespace {

core::ArchConfig
machine(uint32_t cores, bool parallel, uint32_t threads = 4)
{
    core::ArchConfig c;
    c.numWarps = 4;
    c.numThreads = 4;
    c.numCores = cores;
    if (cores >= 4) {
        c.l2Enabled = true;
        c.coresPerCluster = 4;
    }
    c.parallelTick = parallel;
    c.tickThreads = threads;
    return c;
}

struct VecAddOutcome
{
    std::vector<int32_t> result;
    uint64_t cycles = 0;
    uint64_t threadInstrs = 0;
};

VecAddOutcome
runVecAdd(const core::ArchConfig& cfg, uint32_t n)
{
    Device dev(cfg);
    std::vector<int32_t> a(n), b(n);
    for (uint32_t i = 0; i < n; ++i) {
        a[i] = static_cast<int32_t>(7 * i - 3);
        b[i] = static_cast<int32_t>(i ^ 0xA5);
    }
    Addr da = dev.memAlloc(n * 4), db = dev.memAlloc(n * 4),
         dc = dev.memAlloc(n * 4);
    dev.copyToDev(da, a.data(), n * 4);
    dev.copyToDev(db, b.data(), n * 4);
    dev.uploadKernel(kernels::vecadd());
    dev.setKernelArg(runtime::VecAddArgs{n, da, db, dc});
    dev.runKernel(100000000);
    VecAddOutcome out;
    out.result.resize(n);
    dev.copyFromDev(out.result.data(), dc, n * 4);
    out.cycles = dev.cycles();
    out.threadInstrs = dev.processor().threadInstrs();
    return out;
}

struct SmokeOutcome
{
    uint64_t cycles = 0;
    uint64_t threadInstrs = 0;
    uint32_t word = 0;
};

SmokeOutcome
runSmokeAsm(const core::ArchConfig& cfg, const char* src, Addr result_addr)
{
    core::Processor proc(cfg);
    isa::Assembler as(cfg.startPC);
    isa::Program prog = as.assemble(src);
    proc.ram().writeBlock(prog.base, prog.image.data(), prog.image.size());
    proc.start();
    EXPECT_TRUE(proc.run(1000000));
    return SmokeOutcome{proc.cycles(), proc.threadInstrs(),
                        proc.ram().read32(result_addr)};
}

} // namespace

TEST(Parallel, EngineSelection)
{
    // Default: serial.
    core::Processor serial(machine(2, false));
    EXPECT_STREQ(serial.tickEngine().name(), "serial");
    EXPECT_EQ(serial.tickEngine().numWorkers(), 1u);

    // Requested: parallel with an explicit pool size.
    core::Processor par(machine(8, true, 4));
    EXPECT_STREQ(par.tickEngine().name(), "parallel");
    EXPECT_EQ(par.tickEngine().numWorkers(), 4u);

    // Pool never exceeds the core count; one worker degrades to serial.
    core::Processor wide(machine(2, true, 16));
    EXPECT_EQ(wide.tickEngine().numWorkers(), 2u);
    core::Processor single(machine(1, true, 8));
    EXPECT_STREQ(single.tickEngine().name(), "serial");
}

TEST(Parallel, VecAddBitIdenticalAcrossCoreCounts)
{
    const uint32_t n = 257; // odd size: uneven per-core slices
    for (uint32_t cores : {1u, 2u, 4u, 8u}) {
        VecAddOutcome s = runVecAdd(machine(cores, false), n);
        VecAddOutcome p = runVecAdd(machine(cores, true), n);
        EXPECT_EQ(s.result, p.result) << cores << " cores";
        EXPECT_EQ(s.cycles, p.cycles) << cores << " cores";
        EXPECT_EQ(s.threadInstrs, p.threadInstrs) << cores << " cores";
    }
}

TEST(Parallel, ParallelRunsAreRepeatable)
{
    // Thread scheduling must not leak into simulated time: two parallel
    // runs of the same config are identical.
    VecAddOutcome a = runVecAdd(machine(4, true, 2), 200);
    VecAddOutcome b = runVecAdd(machine(4, true, 2), 200);
    EXPECT_EQ(a.result, b.result);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.threadInstrs, b.threadInstrs);
}

TEST(Parallel, SmokeProgramsBitIdentical)
{
    const char* store_and_halt = R"(
        li t0, 0x20000
        li t1, 42
        sw t1, 0(t0)
        li t2, 0
        vx_tmc t2
    )";
    const char* loop_sum = R"(
        li t0, 0
        li t1, 10
        li t2, 0
    loop:
        add t2, t2, t1
        addi t1, t1, -1
        bnez t1, loop
        li t3, 0x20000
        sw t2, 0(t3)
        li t4, 0
        vx_tmc t4
    )";
    for (uint32_t cores : {2u, 4u}) {
        SmokeOutcome s1 = runSmokeAsm(machine(cores, false),
                                      store_and_halt, 0x20000);
        SmokeOutcome p1 = runSmokeAsm(machine(cores, true),
                                      store_and_halt, 0x20000);
        EXPECT_EQ(s1.cycles, p1.cycles) << cores << " cores";
        EXPECT_EQ(s1.threadInstrs, p1.threadInstrs) << cores << " cores";
        EXPECT_EQ(p1.word, 42u);

        SmokeOutcome s2 = runSmokeAsm(machine(cores, false),
                                      loop_sum, 0x20000);
        SmokeOutcome p2 = runSmokeAsm(machine(cores, true),
                                      loop_sum, 0x20000);
        EXPECT_EQ(s2.cycles, p2.cycles) << cores << " cores";
        EXPECT_EQ(s2.threadInstrs, p2.threadInstrs) << cores << " cores";
        EXPECT_EQ(p2.word, 55u);
    }
}

TEST(Parallel, RodiniaKernelsBitIdentical)
{
    // sgemm (compute-bound) and gaussian (barrier-heavy) on an 8-core
    // clustered machine; both verify device results against the host
    // reference internally.
    for (const char* kernel : {"sgemm", "gaussian"}) {
        Device sdev(machine(8, false));
        runtime::RunResult s = runtime::runRodinia(sdev, kernel);
        Device pdev(machine(8, true));
        runtime::RunResult p = runtime::runRodinia(pdev, kernel);
        EXPECT_TRUE(s.ok) << kernel << ": " << s.error;
        EXPECT_TRUE(p.ok) << kernel << ": " << p.error;
        EXPECT_EQ(s.cycles, p.cycles) << kernel;
        EXPECT_EQ(s.threadInstrs, p.threadInstrs) << kernel;
    }
}

TEST(Parallel, TextureRenderBitIdentical)
{
    // Framebuffer path: the textured render verifies every output pixel
    // against the host sampler; cycles/instr identity pins the timing.
    Device sdev(machine(2, false));
    runtime::RunResult s =
        runtime::runTexture(sdev, runtime::TexFilterMode::Bilinear,
                            /*hardware=*/true, 32);
    Device pdev(machine(2, true));
    runtime::RunResult p =
        runtime::runTexture(pdev, runtime::TexFilterMode::Bilinear,
                            /*hardware=*/true, 32);
    EXPECT_TRUE(s.ok) << s.error;
    EXPECT_TRUE(p.ok) << p.error;
    EXPECT_EQ(s.cycles, p.cycles);
    EXPECT_EQ(s.threadInstrs, p.threadInstrs);
}
