/**
 * @file
 * Tests for the guest-program toolchain: the relocatable VXOB object
 * format (write -> read -> write byte fixpoint, hostile-input
 * rejection), relocation/rebase correctness against the flat assembler
 * as ground truth, the Device loader (entry check, decode-cache
 * code-page pre-marking), and the golden equivalence contract — each
 * checked-in `.s` kernel twin in examples/kernels/ must be bit-identical
 * in cycles, retired thread instructions, and verified output to the
 * built-in kernel it mirrors, on both tick backends and more than one
 * machine geometry.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

#include "common/log.h"
#include "isa/assembler.h"
#include "isa/isa.h"
#include "isa/object.h"
#include "kernels/kernels.h"
#include "runtime/device.h"
#include "runtime/workloads.h"
#include "sweep/presets.h"
#include "sweep/spec.h"
#include "sweep/specfile.h"

using namespace vortex;
using namespace vortex::isa;

namespace {

/** A program exercising every relocation kind the assembler emits:
 *  la (Hi20+Lo12I), lui/%hi (Hi20), I-type %lo (Lo12I), S-type %lo
 *  (Lo12S), .word label (Abs32), plus rebase-invariant material
 *  (branches, a label difference) that must need no relocation. */
const char* const kRelocSource = R"(
main:
    la a0, table
    lw a1, 0(a0)
    lui a2, %hi(value)
    lw a3, %lo(value)(a2)
    addi a4, a2, %lo(value)
    sw a1, %lo(value)(a2)
    beqz a1, done
    j main
done:
    ret
.rodata
table:
    .word value
    .word table
    .word done
    .word 1234
    .word table_end - table
table_end:
.data
value:
    .word 42
)";

ObjectFile
assembleReloc(Addr base)
{
    Assembler as(base);
    return as.assembleObject({{"reloc.s", kRelocSource}});
}

std::string
kernelsDir()
{
    return VORTEX_KERNELS_DIR;
}

std::string
readFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.is_open()) << "cannot open " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

} // namespace

TEST(ObjectFormat, WriteReadWriteIsAByteFixpoint)
{
    ObjectFile obj = assembleReloc(0x80000000);
    EXPECT_FALSE(obj.relocs.empty());
    EXPECT_GE(obj.sections.size(), 3u); // .text, .rodata, .data

    std::vector<uint8_t> bytes = writeObject(obj);
    ObjectFile back = readObject(bytes.data(), bytes.size(), "mem.vxo");
    std::vector<uint8_t> again = writeObject(back);
    EXPECT_EQ(bytes, again);

    EXPECT_EQ(back.linkBase, obj.linkBase);
    EXPECT_EQ(back.entry, obj.entry);
    EXPECT_EQ(back.image, obj.image);
    EXPECT_EQ(back.relocs.size(), obj.relocs.size());
    EXPECT_EQ(back.symbols.size(), obj.symbols.size());
}

TEST(ObjectFormat, RejectsBadMagicVersionAndEveryTruncation)
{
    ObjectFile obj = assembleReloc(0x80000000);
    std::vector<uint8_t> bytes = writeObject(obj);

    // Wrong magic: a clear "not an object file", not a parse crash.
    {
        std::vector<uint8_t> bad = bytes;
        bad[0] ^= 0xFF;
        try {
            readObject(bad.data(), bad.size(), "bad.vxo");
            FAIL() << "expected bad-magic rejection";
        } catch (const FatalError& e) {
            EXPECT_NE(std::string(e.what()).find(
                          "not a Vortex object file"),
                      std::string::npos)
                << e.what();
        }
    }

    // Future version: named with both the found and supported numbers.
    {
        std::vector<uint8_t> bad = bytes;
        bad[4] = 9; // version u16 follows the u32 magic
        try {
            readObject(bad.data(), bad.size(), "bad.vxo");
            FAIL() << "expected version rejection";
        } catch (const FatalError& e) {
            EXPECT_NE(std::string(e.what()).find(
                          "unsupported object version 9"),
                      std::string::npos)
                << e.what();
        }
    }

    // Every strict prefix must be rejected as truncated — no field is
    // optional and no read may run past the buffer.
    for (size_t len = 0; len < bytes.size(); ++len)
        EXPECT_THROW(readObject(bytes.data(), len, "cut.vxo"), FatalError)
            << "prefix of " << len << " bytes parsed";
}

TEST(ObjectFormat, RebaseMatchesTheFlatAssemblerExactly)
{
    // Ground truth: assembling the same source directly at the target
    // base. Loading the 0x80000000-linked object at 0xA0001000 must
    // reproduce that byte-for-byte — every relocation patched, every
    // pc-relative encoding untouched, every symbol shifted.
    const Addr linkBase = 0x80000000;
    const Addr loadBase = 0xA0001000;
    ObjectFile obj = assembleReloc(linkBase);

    Program direct = Assembler(loadBase).assemble(kRelocSource, "reloc.s");
    Program moved = obj.toProgram(loadBase);
    EXPECT_EQ(moved.base, loadBase);
    EXPECT_EQ(moved.entry, direct.entry);
    EXPECT_EQ(moved.image, direct.image);
    EXPECT_EQ(moved.symbols, direct.symbols);

    // Identity load: no patching, image equals the linked image.
    Program same = obj.toProgram(linkBase);
    EXPECT_EQ(same.image, obj.image);
    EXPECT_EQ(same.symbol("value"),
              direct.symbol("value") - loadBase + linkBase);
}

TEST(ObjectFormat, DisassemblyIsInvariantUnderRebase)
{
    // Rebase may change immediate *values* (relocated hi/lo pairs) but
    // never what instruction a word decodes to or which registers it
    // names.
    ObjectFile obj = assembleReloc(0x80000000);
    Program a = obj.toProgram(0x80000000);
    Program b = obj.toProgram(0x90000000);
    Addr textEnd = a.symbol("table") - a.base; // .rodata starts there
    for (Addr off = 0; off < textEnd; off += 4) {
        uint32_t wa = 0, wb = 0;
        std::memcpy(&wa, &a.image[off], 4);
        std::memcpy(&wb, &b.image[off], 4);
        Instr ia = decode(wa);
        Instr ib = decode(wb);
        ASSERT_TRUE(ia.valid()) << "offset " << off;
        EXPECT_EQ(ia.kind, ib.kind) << "offset " << off;
        EXPECT_EQ(ia.rd, ib.rd) << "offset " << off;
        EXPECT_EQ(ia.rs1, ib.rs1) << "offset " << off;
        EXPECT_EQ(ia.rs2, ib.rs2) << "offset " << off;
    }
}

TEST(Loader, FileRoundTripAndEntryCheck)
{
    ObjectFile obj = assembleReloc(0x80000000);
    std::string path = std::string(::testing::TempDir()) + "toolchain.vxo";
    writeObjectFile(obj, path);
    ObjectFile back = readObjectFile(path);
    EXPECT_EQ(writeObject(back), writeObject(obj));
    std::remove(path.c_str());

    // The device starts every core at startPC; an object whose entry is
    // not at the image start cannot run and must be refused loudly.
    core::ArchConfig cfg;
    runtime::Device dev(cfg);
    ObjectFile off = obj;
    off.entry = off.linkBase + 8;
    try {
        dev.uploadObject(off);
        FAIL() << "expected entry-mismatch rejection";
    } catch (const FatalError& e) {
        EXPECT_NE(std::string(e.what()).find("does not match the machine "
                                             "start PC"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Loader, PreMarksCodePagesForDecodeCacheInvalidation)
{
    core::ArchConfig cfg;
    runtime::Device dev(cfg);
    dev.uploadKernelObject("main:\n    ret\n");
    // A store to the freshly loaded (never yet fetched) code must bump
    // the code-write epoch: the loader pre-marked the executable pages,
    // it did not wait for the first fetch to discover them.
    mem::Ram& ram = dev.ram();
    uint64_t before = ram.codeWriteEpoch();
    ram.write32(cfg.startPC, 0x13); // nop over the entry
    EXPECT_EQ(ram.codeWriteEpoch(), before + 1);
}

TEST(Golden, CheckedInTwinsAreBitIdenticalToBuiltinKernels)
{
    // The contract that makes the .s files trustworthy documentation:
    // same cycles, same retired thread instructions, verified output —
    // through the full object pipeline, on two geometries and both tick
    // backends.
    struct Twin
    {
        const char* kernel;
        const char* file;
    };
    const Twin twins[] = {{"vecadd", "vecadd.s"},
                          {"saxpy", "saxpy.s"},
                          {"sgemm", "sgemm.s"},
                          {"sfilter", "sfilter.s"},
                          {"nearn", "nearn.s"},
                          {"gaussian", "gaussian.s"},
                          {"bfs", "bfs.s"}};
    for (const Twin& t : twins) {
        for (uint32_t cores : {1u, 4u}) {
            for (bool parallel : {false, true}) {
                core::ArchConfig cfg = sweep::baselineConfig(1);
                cfg.numCores = cores;
                cfg.parallelTick = parallel;
                cfg.tickThreads = parallel ? 2 : 0;

                sweep::WorkloadSpec builtin;
                builtin.kernel = t.kernel;
                runtime::Device dev1(cfg);
                runtime::RunResult r1 = builtin.run(dev1);
                ASSERT_TRUE(r1.ok) << t.kernel << ": " << r1.error;

                sweep::WorkloadSpec twin = builtin;
                twin.program = kernelsDir() + "/" + t.file;
                twin.programSource = readFile(twin.program);
                runtime::Device dev2(cfg);
                runtime::RunResult r2 = twin.run(dev2);
                ASSERT_TRUE(r2.ok) << twin.program << ": " << r2.error;

                EXPECT_EQ(r1.cycles, r2.cycles)
                    << t.kernel << " cores=" << cores
                    << " parallel=" << parallel;
                EXPECT_EQ(r1.threadInstrs, r2.threadInstrs)
                    << t.kernel << " cores=" << cores
                    << " parallel=" << parallel;
            }
        }
    }
}

TEST(Golden, AsmSmokeSpecRunsTheTwinsEndToEnd)
{
    // The shipped spec drives the same pipeline from a file: parse,
    // expand (which reads each .s eagerly), and run one point.
    ::setenv("VORTEX_PROGRAM_PATH",
             (kernelsDir() + "/../..").c_str(), 1);
    sweep::SweepSpec spec =
        sweep::parseSpecFile(std::string(VORTEX_SPECS_DIR) +
                             "/asm_smoke.toml");
    std::vector<sweep::RunSpec> runs = spec.expand();
    ASSERT_EQ(runs.size(), 14u); // 7 kernels x 2 core counts
    for (const sweep::RunSpec& r : runs) {
        EXPECT_FALSE(r.workload.program.empty()) << r.id();
        EXPECT_FALSE(r.workload.programSource.empty()) << r.id();
        // The program text is part of the cache key.
        EXPECT_NE(r.canonical().find("program.fnv = "), std::string::npos);
    }
    runtime::Device dev(runs[0].config);
    runtime::RunResult res = runs[0].workload.run(dev);
    EXPECT_TRUE(res.ok) << res.error;
}
