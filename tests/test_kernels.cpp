/**
 * @file
 * Integration tests: every Rodinia-subset kernel and every texture kernel
 * verified against host references, across machine configurations
 * (parameterized over the paper's Fig. 14 core geometries and core counts).
 */

#include <gtest/gtest.h>

#include "runtime/workloads.h"

using namespace vortex;
using runtime::Device;
using runtime::RunResult;

namespace {

core::ArchConfig
cfg(uint32_t warps, uint32_t threads, uint32_t cores = 1)
{
    core::ArchConfig c;
    c.numWarps = warps;
    c.numThreads = threads;
    c.numCores = cores;
    return c;
}

} // namespace

TEST(Kernels, Saxpy)
{
    Device dev(cfg(4, 4));
    RunResult r = runtime::runSaxpy(dev, 512);
    EXPECT_TRUE(r.ok) << r.error;
}

TEST(Kernels, Sgemm)
{
    Device dev(cfg(4, 4));
    RunResult r = runtime::runSgemm(dev, 16);
    EXPECT_TRUE(r.ok) << r.error;
}

TEST(Kernels, Sfilter)
{
    Device dev(cfg(4, 4));
    RunResult r = runtime::runSfilter(dev, 24, 16);
    EXPECT_TRUE(r.ok) << r.error;
}

TEST(Kernels, Nearn)
{
    Device dev(cfg(4, 4));
    RunResult r = runtime::runNearn(dev, 256);
    EXPECT_TRUE(r.ok) << r.error;
}

TEST(Kernels, Gaussian)
{
    Device dev(cfg(4, 4));
    RunResult r = runtime::runGaussian(dev, 12);
    EXPECT_TRUE(r.ok) << r.error;
}

TEST(Kernels, GaussianMultiCore)
{
    Device dev(cfg(4, 4, 2));
    RunResult r = runtime::runGaussian(dev, 12);
    EXPECT_TRUE(r.ok) << r.error;
}

TEST(Kernels, Bfs)
{
    Device dev(cfg(4, 4));
    RunResult r = runtime::runBfs(dev, 128, 3);
    EXPECT_TRUE(r.ok) << r.error;
}

TEST(Kernels, BfsMultiCore)
{
    Device dev(cfg(4, 4, 4));
    RunResult r = runtime::runBfs(dev, 128, 3);
    EXPECT_TRUE(r.ok) << r.error;
}

TEST(Kernels, TexturePointHw)
{
    Device dev(cfg(4, 4));
    RunResult r = runtime::runTexture(dev, runtime::TexFilterMode::Point,
                                      true, 32);
    EXPECT_TRUE(r.ok) << r.error;
}

TEST(Kernels, TextureBilinearHw)
{
    Device dev(cfg(4, 4));
    RunResult r = runtime::runTexture(dev, runtime::TexFilterMode::Bilinear,
                                      true, 32);
    EXPECT_TRUE(r.ok) << r.error;
}

TEST(Kernels, TextureTrilinearHw)
{
    Device dev(cfg(4, 4));
    RunResult r = runtime::runTexture(dev, runtime::TexFilterMode::Trilinear,
                                      true, 32);
    EXPECT_TRUE(r.ok) << r.error;
}

TEST(Kernels, TexturePointSw)
{
    Device dev(cfg(4, 4));
    RunResult r = runtime::runTexture(dev, runtime::TexFilterMode::Point,
                                      false, 32);
    EXPECT_TRUE(r.ok) << r.error;
}

TEST(Kernels, TextureBilinearSw)
{
    Device dev(cfg(4, 4));
    RunResult r = runtime::runTexture(dev, runtime::TexFilterMode::Bilinear,
                                      false, 32);
    EXPECT_TRUE(r.ok) << r.error;
}

TEST(Kernels, TextureTrilinearSw)
{
    Device dev(cfg(4, 4));
    RunResult r = runtime::runTexture(dev, runtime::TexFilterMode::Trilinear,
                                      false, 32);
    EXPECT_TRUE(r.ok) << r.error;
}

//
// The Fig. 14 design-space configurations must all run every kernel
// correctly (4W-4T, 2W-8T, 8W-2T, 4W-8T, 8W-4T).
//
struct ConfigCase
{
    uint32_t warps, threads;
};

class KernelConfigSweep : public ::testing::TestWithParam<ConfigCase>
{
};

TEST_P(KernelConfigSweep, VecAddAndSgemm)
{
    auto p = GetParam();
    {
        Device dev(cfg(p.warps, p.threads));
        RunResult r = runtime::runVecAdd(dev, 512);
        EXPECT_TRUE(r.ok) << r.error;
    }
    {
        Device dev(cfg(p.warps, p.threads));
        RunResult r = runtime::runSgemm(dev, 12);
        EXPECT_TRUE(r.ok) << r.error;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Fig14Configs, KernelConfigSweep,
    ::testing::Values(ConfigCase{4, 4}, ConfigCase{2, 8}, ConfigCase{8, 2},
                      ConfigCase{4, 8}, ConfigCase{8, 4}),
    [](const ::testing::TestParamInfo<ConfigCase>& info) {
        return std::to_string(info.param.warps) + "W_" +
               std::to_string(info.param.threads) + "T";
    });

//
// Cache hierarchy sweep: L2/L3 enabled configurations stay correct.
//
TEST(Kernels, VecAddWithL2)
{
    core::ArchConfig c = cfg(4, 4, 4);
    c.l2Enabled = true;
    Device dev(c);
    RunResult r = runtime::runVecAdd(dev, 1024);
    EXPECT_TRUE(r.ok) << r.error;
}

TEST(Kernels, SaxpyWithL2L3)
{
    core::ArchConfig c = cfg(4, 4, 8);
    c.coresPerCluster = 4;
    c.l2Enabled = true;
    c.l3Enabled = true;
    Device dev(c);
    RunResult r = runtime::runSaxpy(dev, 1024);
    EXPECT_TRUE(r.ok) << r.error;
}
