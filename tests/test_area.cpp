/**
 * @file
 * Area-model tests: calibration accuracy against the paper's published
 * synthesis rows (Tables 3/4/5) and the qualitative trends the paper
 * argues from.
 */

#include <gtest/gtest.h>

#include "area/area.h"
#include "common/log.h"

using namespace vortex;
using namespace vortex::area;

namespace {

void
expectWithin(double actual, double expected, double rel_tol,
             const char* what)
{
    EXPECT_NEAR(actual, expected, expected * rel_tol) << what;
}

} // namespace

TEST(AreaModel, Table3Calibration)
{
    struct Row
    {
        uint32_t w, t;
        double lut, regs, bram, fmax;
    };
    const Row rows[] = {
        {4, 4, 21502, 32661, 131, 233}, {2, 8, 36361, 54438, 238, 224},
        {8, 2, 16981, 24343, 77, 225},  {4, 8, 37857, 57614, 247, 224},
        {8, 4, 24485, 34854, 139, 228},
    };
    for (const Row& r : rows) {
        CoreArea a = coreArea(r.w, r.t);
        expectWithin(a.luts, r.lut, 0.02, "LUT");
        expectWithin(a.regs, r.regs, 0.03, "Regs");
        expectWithin(a.brams, r.bram, 0.02, "BRAM");
        expectWithin(a.fmaxMhz, r.fmax, 0.02, "fmax");
    }
}

TEST(AreaModel, ThreadsCostMoreThanWarps)
{
    // The paper's §6.2.1 argument: growing threads (SIMD width) is more
    // expensive than growing wavefronts (multiplexed state).
    CoreArea base = coreArea(4, 4);
    CoreArea more_threads = coreArea(4, 8);
    CoreArea more_warps = coreArea(8, 4);
    EXPECT_GT(more_threads.luts, more_warps.luts);
    EXPECT_GT(more_threads.regs, more_warps.regs);
    EXPECT_GT(more_threads.luts, base.luts);
    EXPECT_GT(more_warps.luts, base.luts);
    // 2W-8T costs ~69% more LUTs than 4W-4T; 8W-2T ~25% less (the paper
    // reports "about a 27% area reduction" vs the fitted model's 21%).
    EXPECT_NEAR(coreArea(2, 8).luts / base.luts, 1.69, 0.05);
    EXPECT_NEAR(coreArea(8, 2).luts / base.luts, 0.76, 0.06);
}

TEST(AreaModel, Table4Calibration)
{
    struct Row
    {
        uint32_t cores;
        double alm, regsK, bram, dsp, fmax;
    };
    const Row rows[] = {
        {1, 13, 78, 10, 2, 234},   {2, 19, 111, 15, 5, 225},
        {4, 30, 176, 25, 9, 223},  {8, 53, 305, 45, 19, 210},
        {16, 85, 525, 83, 38, 203},
    };
    for (const Row& r : rows) {
        DeviceArea a = deviceArea(r.cores, Fpga::Arria10);
        EXPECT_NEAR(a.almPercent, r.alm, 5.0);
        EXPECT_NEAR(a.regsK, r.regsK, 15.0);
        EXPECT_NEAR(a.bramPercent, r.bram, 2.0);
        EXPECT_NEAR(a.dspPercent, r.dsp, 1.0);
        EXPECT_NEAR(a.fmaxMhz, r.fmax, 8.0);
    }
}

TEST(AreaModel, StratixFitsThirtyTwoCores)
{
    // 32 cores exceed the Arria 10 but fit the Stratix 10 at ~200 MHz
    // (the paper's headline configuration).
    DeviceArea a10 = deviceArea(32, Fpga::Arria10);
    DeviceArea s10 = deviceArea(32, Fpga::Stratix10);
    EXPECT_GT(a10.almPercent, 100.0);
    EXPECT_LT(s10.almPercent, 100.0);
    EXPECT_NEAR(s10.fmaxMhz, 200.0, 8.0);
}

TEST(AreaModel, Table5Calibration)
{
    struct Row
    {
        uint32_t ports;
        double lut, regs, bram, fmax;
    };
    const Row rows[] = {
        {1, 10747, 13238, 72, 253},
        {2, 11722, 13650, 72, 250},
        {4, 13516, 14928, 72, 244},
    };
    for (const Row& r : rows) {
        CacheArea a = cacheArea(4, r.ports, 16384);
        expectWithin(a.luts, r.lut, 0.01, "cache LUT");
        expectWithin(a.regs, r.regs, 0.01, "cache Regs");
        EXPECT_EQ(a.brams, 72.0);
        EXPECT_NEAR(a.fmaxMhz, r.fmax, 3.0);
    }
}

TEST(AreaModel, VirtualPortCostDeltas)
{
    // The paper's headline: +9% LUTs for 2 ports, +25% for 4; BRAM flat.
    CacheArea p1 = cacheArea(4, 1, 16384);
    CacheArea p2 = cacheArea(4, 2, 16384);
    CacheArea p4 = cacheArea(4, 4, 16384);
    EXPECT_NEAR(p2.luts / p1.luts, 1.09, 0.01);
    EXPECT_NEAR(p4.luts / p1.luts, 1.25, 0.02);
    EXPECT_EQ(p1.brams, p4.brams);
    EXPECT_GT(p1.fmaxMhz, p4.fmaxMhz);
}

TEST(AreaModel, CacheScalesWithGeometry)
{
    // More banks cost proportional logic; more capacity costs BRAM only.
    CacheArea small = cacheArea(4, 1, 16384);
    CacheArea more_banks = cacheArea(8, 1, 16384);
    CacheArea bigger = cacheArea(4, 1, 32768);
    EXPECT_NEAR(more_banks.luts / small.luts, 2.0, 0.01);
    EXPECT_EQ(bigger.luts, small.luts);
    EXPECT_EQ(bigger.brams, 144.0);
}

TEST(AreaModel, DistributionSumsToOne)
{
    double total = 0.0;
    for (const AreaSlice& s : areaDistribution()) {
        EXPECT_GT(s.fraction, 0.0);
        total += s.fraction;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
    // Texture units and caches dominate (the paper's stated observation).
    auto dist = areaDistribution();
    EXPECT_EQ(dist[0].component, "texture units");
    EXPECT_GT(dist[0].fraction + dist[1].fraction, 0.45);
}

TEST(AreaModel, RejectsZeroGeometry)
{
    EXPECT_THROW(coreArea(0, 4), FatalError);
    EXPECT_THROW(deviceArea(0, Fpga::Arria10), FatalError);
    EXPECT_THROW(cacheArea(0, 1, 16384), FatalError);
}
