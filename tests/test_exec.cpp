/**
 * @file
 * Functional-executor tests: per-instruction semantics including the
 * RISC-V edge cases (division corner cases, NaN canonicalization,
 * FMIN/FMAX zero/NaN rules, FCVT saturation, FCLASS) and the Vortex
 * extension semantics (tmc, wspawn, split/join, bar, tex coordinates).
 */

#include <cmath>
#include <cstring>
#include <gtest/gtest.h>

#include "core/processor.h"
#include "isa/csr.h"

using namespace vortex;
using namespace vortex::core;
using isa::Instr;
using isa::InstrKind;

namespace {

class ExecTest : public ::testing::Test
{
  protected:
    ExecTest()
    {
        cfg_.numThreads = 4;
        cfg_.numWarps = 4;
        proc_ = std::make_unique<Processor>(cfg_);
        core_ = &proc_->core(0);
        warp().reset(0x1000, 0xF);
        warp().active = true;
    }

    Warp& warp(WarpId w = 0) { return core_->warp(w); }

    Word&
    x(uint32_t thread, RegId r)
    {
        return warp().iregs[thread][r];
    }

    void
    setF(uint32_t thread, RegId r, float v)
    {
        std::memcpy(&warp().fregs[thread][r], &v, 4);
    }

    float
    getF(const ExecOut& out, uint32_t thread)
    {
        float v;
        std::memcpy(&v, &out.values[thread], 4);
        return v;
    }

    ExecOut
    run(InstrKind kind, RegId rd = 0, RegId rs1 = 0, RegId rs2 = 0,
        int32_t imm = 0, RegId rs3 = 0, uint32_t csr = 0)
    {
        Instr in;
        in.kind = kind;
        in.rd = rd;
        in.rs1 = rs1;
        in.rs2 = rs2;
        in.rs3 = rs3;
        in.imm = imm;
        in.csr = csr;
        return execute(*core_, 0, in, warp().pc);
    }

    ArchConfig cfg_;
    std::unique_ptr<Processor> proc_;
    Core* core_;
};

} // namespace

TEST_F(ExecTest, IntegerAluPerLane)
{
    for (uint32_t t = 0; t < 4; ++t) {
        x(t, 1) = 10 + t;
        x(t, 2) = 3;
    }
    ExecOut out = run(InstrKind::ADD, 3, 1, 2);
    ASSERT_TRUE(out.hasDst);
    for (uint32_t t = 0; t < 4; ++t)
        EXPECT_EQ(out.values[t], 13 + t);

    out = run(InstrKind::SUB, 3, 1, 2);
    EXPECT_EQ(out.values[0], 7u);
    out = run(InstrKind::SLT, 3, 2, 1);
    EXPECT_EQ(out.values[0], 1u);
    x(0, 1) = static_cast<Word>(-5);
    out = run(InstrKind::SLT, 3, 1, 2);
    EXPECT_EQ(out.values[0], 1u);
    out = run(InstrKind::SLTU, 3, 1, 2);
    EXPECT_EQ(out.values[0], 0u); // -5 unsigned is huge
}

TEST_F(ExecTest, ShiftsUseLow5Bits)
{
    x(0, 1) = 0x80000000u;
    x(0, 2) = 33; // only low 5 bits count
    ExecOut out = run(InstrKind::SRL, 3, 1, 2);
    EXPECT_EQ(out.values[0], 0x40000000u);
    out = run(InstrKind::SRA, 3, 1, 2);
    EXPECT_EQ(out.values[0], 0xC0000000u);
    out = run(InstrKind::SLL, 3, 1, 2);
    EXPECT_EQ(out.values[0], 0u);
}

TEST_F(ExecTest, DivRemCornerCases)
{
    // Division by zero.
    x(0, 1) = 17;
    x(0, 2) = 0;
    EXPECT_EQ(run(InstrKind::DIV, 3, 1, 2).values[0], 0xFFFFFFFFu);
    EXPECT_EQ(run(InstrKind::DIVU, 3, 1, 2).values[0], 0xFFFFFFFFu);
    EXPECT_EQ(run(InstrKind::REM, 3, 1, 2).values[0], 17u);
    EXPECT_EQ(run(InstrKind::REMU, 3, 1, 2).values[0], 17u);
    // Signed overflow INT_MIN / -1.
    x(0, 1) = 0x80000000u;
    x(0, 2) = static_cast<Word>(-1);
    EXPECT_EQ(run(InstrKind::DIV, 3, 1, 2).values[0], 0x80000000u);
    EXPECT_EQ(run(InstrKind::REM, 3, 1, 2).values[0], 0u);
    // Ordinary signed division truncates toward zero.
    x(0, 1) = static_cast<Word>(-7);
    x(0, 2) = 2;
    EXPECT_EQ(static_cast<int32_t>(run(InstrKind::DIV, 3, 1, 2).values[0]),
              -3);
    EXPECT_EQ(static_cast<int32_t>(run(InstrKind::REM, 3, 1, 2).values[0]),
              -1);
}

TEST_F(ExecTest, MulHighVariants)
{
    x(0, 1) = 0xFFFFFFFFu; // -1 signed
    x(0, 2) = 0xFFFFFFFFu;
    EXPECT_EQ(run(InstrKind::MUL, 3, 1, 2).values[0], 1u);
    EXPECT_EQ(run(InstrKind::MULH, 3, 1, 2).values[0], 0u); // (-1)*(-1)=1
    EXPECT_EQ(run(InstrKind::MULHU, 3, 1, 2).values[0], 0xFFFFFFFEu);
    EXPECT_EQ(run(InstrKind::MULHSU, 3, 1, 2).values[0], 0xFFFFFFFFu);
}

TEST_F(ExecTest, BranchesUseFirstActiveThread)
{
    warp().tmask = 0b1100; // threads 2,3 active
    x(2, 1) = 5;
    x(2, 2) = 5;
    x(0, 1) = 1; // inactive thread disagrees; must be ignored
    x(0, 2) = 2;
    run(InstrKind::BEQ, 0, 1, 2, 0x40);
    EXPECT_EQ(warp().pc, 0x1040u);

    warp().pc = 0x1000;
    x(2, 2) = 6;
    run(InstrKind::BEQ, 0, 1, 2, 0x40);
    EXPECT_EQ(warp().pc, 0x1004u);
}

TEST_F(ExecTest, JalJalrLinkPerThread)
{
    ExecOut out = run(InstrKind::JAL, 1, 0, 0, 0x100);
    EXPECT_EQ(warp().pc, 0x1100u);
    for (uint32_t t = 0; t < 4; ++t)
        EXPECT_EQ(out.values[t], 0x1004u);

    warp().pc = 0x2000;
    x(0, 5) = 0x3001; // low bit must be cleared
    out = run(InstrKind::JALR, 1, 5, 0, 0);
    EXPECT_EQ(warp().pc, 0x3000u);
    EXPECT_EQ(out.values[0], 0x2004u);
}

TEST_F(ExecTest, FloatArithNanCanonicalization)
{
    setF(0, 1, 1.5f);
    setF(0, 2, 2.25f);
    ExecOut out = run(InstrKind::FADD_S, 3, 1, 2);
    EXPECT_EQ(getF(out, 0), 3.75f);

    // inf - inf => canonical NaN bits.
    setF(0, 1, INFINITY);
    setF(0, 2, INFINITY);
    out = run(InstrKind::FSUB_S, 3, 1, 2);
    EXPECT_EQ(out.values[0], 0x7FC00000u);
    out = run(InstrKind::FMUL_S, 3, 1, 2);
    EXPECT_EQ(getF(out, 0), INFINITY);

    // 0/0 => canonical NaN.
    setF(0, 1, 0.0f);
    setF(0, 2, 0.0f);
    out = run(InstrKind::FDIV_S, 3, 1, 2);
    EXPECT_EQ(out.values[0], 0x7FC00000u);

    // sqrt(-1) => canonical NaN; sqrt(4) = 2.
    setF(0, 1, -1.0f);
    out = run(InstrKind::FSQRT_S, 3, 1);
    EXPECT_EQ(out.values[0], 0x7FC00000u);
    setF(0, 1, 4.0f);
    out = run(InstrKind::FSQRT_S, 3, 1);
    EXPECT_EQ(getF(out, 0), 2.0f);
}

TEST_F(ExecTest, FusedMultiplyAddVariants)
{
    setF(0, 1, 2.0f);
    setF(0, 2, 3.0f);
    setF(0, 3, 10.0f);
    EXPECT_EQ(getF(run(InstrKind::FMADD_S, 4, 1, 2, 0, 3), 0), 16.0f);
    EXPECT_EQ(getF(run(InstrKind::FMSUB_S, 4, 1, 2, 0, 3), 0), -4.0f);
    EXPECT_EQ(getF(run(InstrKind::FNMSUB_S, 4, 1, 2, 0, 3), 0), 4.0f);
    EXPECT_EQ(getF(run(InstrKind::FNMADD_S, 4, 1, 2, 0, 3), 0), -16.0f);
}

TEST_F(ExecTest, FminFmaxRules)
{
    // -0 vs +0: min picks -0, max picks +0.
    setF(0, 1, -0.0f);
    setF(0, 2, 0.0f);
    EXPECT_EQ(run(InstrKind::FMIN_S, 3, 1, 2).values[0], 0x80000000u);
    EXPECT_EQ(run(InstrKind::FMAX_S, 3, 1, 2).values[0], 0x00000000u);
    // One NaN: the non-NaN operand wins.
    setF(0, 1, NAN);
    setF(0, 2, 7.0f);
    EXPECT_EQ(getF(run(InstrKind::FMIN_S, 3, 1, 2), 0), 7.0f);
    EXPECT_EQ(getF(run(InstrKind::FMAX_S, 3, 1, 2), 0), 7.0f);
    // Both NaN: canonical NaN.
    setF(0, 2, NAN);
    EXPECT_EQ(run(InstrKind::FMIN_S, 3, 1, 2).values[0], 0x7FC00000u);
}

TEST_F(ExecTest, FcvtSaturation)
{
    setF(0, 1, 3.7f);
    EXPECT_EQ(run(InstrKind::FCVT_W_S, 3, 1).values[0], 3u);
    setF(0, 1, -3.7f);
    EXPECT_EQ(static_cast<int32_t>(run(InstrKind::FCVT_W_S, 3, 1).values[0]),
              -3);
    setF(0, 1, 3.0e9f);
    EXPECT_EQ(run(InstrKind::FCVT_W_S, 3, 1).values[0], 0x7FFFFFFFu);
    setF(0, 1, -3.0e9f);
    EXPECT_EQ(run(InstrKind::FCVT_W_S, 3, 1).values[0], 0x80000000u);
    setF(0, 1, NAN);
    EXPECT_EQ(run(InstrKind::FCVT_W_S, 3, 1).values[0], 0x7FFFFFFFu);
    setF(0, 1, -1.0f);
    EXPECT_EQ(run(InstrKind::FCVT_WU_S, 3, 1).values[0], 0u);
    setF(0, 1, 5.0e9f);
    EXPECT_EQ(run(InstrKind::FCVT_WU_S, 3, 1).values[0], 0xFFFFFFFFu);

    x(0, 1) = static_cast<Word>(-2);
    EXPECT_EQ(getF(run(InstrKind::FCVT_S_W, 3, 1), 0), -2.0f);
    EXPECT_EQ(getF(run(InstrKind::FCVT_S_WU, 3, 1), 0), 4294967294.0f);
}

TEST_F(ExecTest, Fclass)
{
    setF(0, 1, -INFINITY);
    EXPECT_EQ(run(InstrKind::FCLASS_S, 3, 1).values[0], 1u << 0);
    setF(0, 1, -1.0f);
    EXPECT_EQ(run(InstrKind::FCLASS_S, 3, 1).values[0], 1u << 1);
    setF(0, 1, -0.0f);
    EXPECT_EQ(run(InstrKind::FCLASS_S, 3, 1).values[0], 1u << 3);
    setF(0, 1, 0.0f);
    EXPECT_EQ(run(InstrKind::FCLASS_S, 3, 1).values[0], 1u << 4);
    setF(0, 1, 1.0f);
    EXPECT_EQ(run(InstrKind::FCLASS_S, 3, 1).values[0], 1u << 6);
    setF(0, 1, INFINITY);
    EXPECT_EQ(run(InstrKind::FCLASS_S, 3, 1).values[0], 1u << 7);
    setF(0, 1, NAN);
    EXPECT_EQ(run(InstrKind::FCLASS_S, 3, 1).values[0], 1u << 9);
}

TEST_F(ExecTest, FloatCompares)
{
    setF(0, 1, 1.0f);
    setF(0, 2, 2.0f);
    EXPECT_EQ(run(InstrKind::FLT_S, 3, 1, 2).values[0], 1u);
    EXPECT_EQ(run(InstrKind::FLE_S, 3, 1, 2).values[0], 1u);
    EXPECT_EQ(run(InstrKind::FEQ_S, 3, 1, 2).values[0], 0u);
    setF(0, 1, NAN);
    EXPECT_EQ(run(InstrKind::FLT_S, 3, 1, 2).values[0], 0u);
    EXPECT_EQ(run(InstrKind::FEQ_S, 3, 1, 2).values[0], 0u);
}

TEST_F(ExecTest, SignInjectionAndMoves)
{
    setF(0, 1, 3.0f);
    setF(0, 2, -5.0f);
    EXPECT_EQ(getF(run(InstrKind::FSGNJ_S, 3, 1, 2), 0), -3.0f);
    EXPECT_EQ(getF(run(InstrKind::FSGNJN_S, 3, 1, 2), 0), 3.0f);
    EXPECT_EQ(getF(run(InstrKind::FSGNJX_S, 3, 1, 2), 0), -3.0f);
    x(0, 5) = 0x40490FDB; // pi bits
    ExecOut out = run(InstrKind::FMV_W_X, 3, 5);
    EXPECT_EQ(out.values[0], 0x40490FDBu);
    setF(0, 1, -2.0f);
    out = run(InstrKind::FMV_X_W, 3, 1);
    EXPECT_EQ(out.values[0], 0xC0000000u);
}

TEST_F(ExecTest, LoadsAndStores)
{
    core_->ram().write32(0x5000, 0xDEADBEEF);
    for (uint32_t t = 0; t < 4; ++t)
        x(t, 1) = 0x5000 + 4 * t;
    core_->ram().write32(0x5004, 0x80);
    ExecOut out = run(InstrKind::LW, 3, 1);
    EXPECT_TRUE(out.isMem);
    EXPECT_FALSE(out.memWrite);
    EXPECT_EQ(out.values[0], 0xDEADBEEFu);
    EXPECT_EQ(out.values[1], 0x80u);
    EXPECT_EQ(out.addrs[0], 0x5000u);
    EXPECT_EQ(out.addrs[3], 0x500Cu);

    // Sign extension.
    out = run(InstrKind::LB, 3, 1);
    EXPECT_EQ(out.values[0], 0xFFFFFFEFu);
    out = run(InstrKind::LBU, 3, 1);
    EXPECT_EQ(out.values[0], 0xEFu);
    out = run(InstrKind::LH, 3, 1);
    EXPECT_EQ(out.values[0], 0xFFFFBEEFu);
    out = run(InstrKind::LHU, 3, 1);
    EXPECT_EQ(out.values[0], 0xBEEFu);

    // Stores write RAM immediately, per lane.
    for (uint32_t t = 0; t < 4; ++t)
        x(t, 2) = 0x11 * (t + 1);
    out = run(InstrKind::SW, 0, 1, 2);
    EXPECT_TRUE(out.memWrite);
    EXPECT_EQ(core_->ram().read32(0x5000), 0x11u);
    EXPECT_EQ(core_->ram().read32(0x500C), 0x44u);

    // Inactive lanes neither load nor store.
    warp().tmask = 0b0001;
    x(0, 2) = 0xAB;
    run(InstrKind::SB, 0, 1, 2);
    EXPECT_EQ(core_->ram().read8(0x5004), 0x22u); // lane 1 untouched
}

TEST_F(ExecTest, TmcSemantics)
{
    x(0, 5) = 2;
    Instr in;
    in.kind = InstrKind::VX_TMC;
    in.rs1 = 5;
    execute(*core_, 0, in, warp().pc);
    EXPECT_EQ(warp().tmask, 0b11u);
    EXPECT_TRUE(warp().active);

    x(0, 5) = 100; // clamps to NT
    execute(*core_, 0, in, warp().pc);
    EXPECT_EQ(warp().tmask, 0b1111u);

    x(0, 5) = 0;
    ExecOut out = execute(*core_, 0, in, warp().pc);
    EXPECT_TRUE(out.haltWarp);
    EXPECT_FALSE(warp().active);
}

TEST_F(ExecTest, WspawnActivatesWarps)
{
    x(0, 5) = 3;
    x(0, 6) = 0x4000;
    Instr in;
    in.kind = InstrKind::VX_WSPAWN;
    in.rs1 = 5;
    in.rs2 = 6;
    execute(*core_, 0, in, warp().pc);
    EXPECT_TRUE(warp(1).active);
    EXPECT_TRUE(warp(2).active);
    EXPECT_FALSE(warp(3).active);
    EXPECT_EQ(warp(1).pc, 0x4000u);
    EXPECT_EQ(warp(1).tmask, 1u);
    EXPECT_TRUE(core_->scheduler().isActive(1));
}

TEST_F(ExecTest, SplitJoinDivergent)
{
    // Threads 0,2 true; 1,3 false.
    for (uint32_t t = 0; t < 4; ++t)
        x(t, 5) = (t % 2 == 0) ? 1 : 0;
    Instr split;
    split.kind = InstrKind::VX_SPLIT;
    split.rs1 = 5;
    Addr pc0 = warp().pc;
    execute(*core_, 0, split, pc0);
    EXPECT_EQ(warp().tmask, 0b0101u);
    EXPECT_EQ(warp().pc, pc0 + 4);
    EXPECT_EQ(warp().ipdom.size(), 2u);

    // First join: redirects to the else path with the false threads.
    Instr join;
    join.kind = InstrKind::VX_JOIN;
    execute(*core_, 0, join, 0x2000);
    EXPECT_EQ(warp().tmask, 0b1010u);
    EXPECT_EQ(warp().pc, pc0 + 4); // replays from after the split

    // Second join: restores the full mask and falls through.
    execute(*core_, 0, join, 0x3000);
    EXPECT_EQ(warp().tmask, 0b1111u);
    EXPECT_EQ(warp().pc, 0x3004u);
    EXPECT_EQ(warp().ipdom.size(), 0u);
}

TEST_F(ExecTest, SplitJoinUniform)
{
    for (uint32_t t = 0; t < 4; ++t)
        x(t, 5) = 1; // uniformly true
    Instr split;
    split.kind = InstrKind::VX_SPLIT;
    split.rs1 = 5;
    execute(*core_, 0, split, warp().pc);
    EXPECT_EQ(warp().tmask, 0b1111u); // unchanged

    Instr join;
    join.kind = InstrKind::VX_JOIN;
    execute(*core_, 0, join, 0x2000);
    EXPECT_EQ(warp().tmask, 0b1111u);
    EXPECT_EQ(warp().pc, 0x2004u);
    EXPECT_TRUE(warp().ipdom.empty());
}

TEST_F(ExecTest, NestedSplits)
{
    for (uint32_t t = 0; t < 4; ++t)
        x(t, 5) = t >= 1 ? 1 : 0; // 1,2,3 true
    Instr split;
    split.kind = InstrKind::VX_SPLIT;
    split.rs1 = 5;
    execute(*core_, 0, split, 0x1000);
    EXPECT_EQ(warp().tmask, 0b1110u);
    for (uint32_t t = 0; t < 4; ++t)
        x(t, 5) = t >= 2 ? 1 : 0; // nested: 2,3
    execute(*core_, 0, split, 0x1100);
    EXPECT_EQ(warp().tmask, 0b1100u);
    EXPECT_EQ(warp().ipdom.size(), 4u);

    Instr join;
    join.kind = InstrKind::VX_JOIN;
    // Inner else: thread 1.
    execute(*core_, 0, join, 0x1200);
    EXPECT_EQ(warp().tmask, 0b0010u);
    execute(*core_, 0, join, 0x1200);
    EXPECT_EQ(warp().tmask, 0b1110u);
    // Outer else: thread 0.
    execute(*core_, 0, join, 0x1300);
    EXPECT_EQ(warp().tmask, 0b0001u);
    execute(*core_, 0, join, 0x1300);
    EXPECT_EQ(warp().tmask, 0b1111u);
}

TEST_F(ExecTest, JoinUnderflowIsFatal)
{
    Instr join;
    join.kind = InstrKind::VX_JOIN;
    EXPECT_THROW(execute(*core_, 0, join, 0x1000), FatalError);
}

TEST_F(ExecTest, BarrierDecoding)
{
    x(0, 5) = 3;
    x(0, 6) = 4;
    Instr in;
    in.kind = InstrKind::VX_BAR;
    in.rs1 = 5;
    in.rs2 = 6;
    ExecOut out = execute(*core_, 0, in, warp().pc);
    EXPECT_TRUE(out.isBarrier);
    EXPECT_FALSE(out.barrierGlobal);
    EXPECT_EQ(out.barrierId, 3u);
    EXPECT_EQ(out.barrierCount, 4u);

    x(0, 5) = 0x80000001u;
    out = execute(*core_, 0, in, warp().pc);
    EXPECT_TRUE(out.barrierGlobal);
}

TEST_F(ExecTest, CsrsPerThread)
{
    Instr in;
    in.kind = InstrKind::CSRRS;
    in.rd = 7;
    in.rs1 = 0;
    in.csr = isa::CSR_THREAD_ID;
    ExecOut out = execute(*core_, 0, in, warp().pc);
    for (uint32_t t = 0; t < 4; ++t)
        EXPECT_EQ(out.values[t], t);

    in.csr = isa::CSR_NUM_THREADS;
    out = execute(*core_, 0, in, warp().pc);
    EXPECT_EQ(out.values[0], 4u);
    in.csr = isa::CSR_WARP_ID;
    out = execute(*core_, 0, in, warp().pc);
    EXPECT_EQ(out.values[0], 0u);
    in.csr = isa::CSR_THREAD_MASK;
    out = execute(*core_, 0, in, warp().pc);
    EXPECT_EQ(out.values[0], 0xFu);
}

TEST_F(ExecTest, CsrWriteAndTexRouting)
{
    // CSRRW to a texture CSR configures the texture unit.
    x(0, 5) = 0xABCD0000;
    Instr in;
    in.kind = InstrKind::CSRRW;
    in.rd = 0;
    in.rs1 = 5;
    in.csr = isa::texCsrAddr(0, isa::TEX_STATE_ADDR);
    execute(*core_, 0, in, warp().pc);
    EXPECT_EQ(core_->texUnit()->stageState(0).addr, 0xABCD0000u);

    // CSRRS with rs1=x0 must not write.
    in.kind = InstrKind::CSRRS;
    in.rd = 7;
    in.rs1 = 0;
    execute(*core_, 0, in, warp().pc);
    EXPECT_EQ(core_->texUnit()->stageState(0).addr, 0xABCD0000u);
}

TEST_F(ExecTest, TexOperands)
{
    setF(0, 1, 0.25f);
    setF(0, 2, 0.75f);
    setF(0, 3, 1.0f);
    warp().tmask = 0b0011;
    setF(1, 1, 0.5f);
    setF(1, 2, 0.5f);
    setF(1, 3, 0.0f);
    Instr in;
    in.kind = InstrKind::VX_TEX;
    in.rd = 9;
    in.rs1 = 1;
    in.rs2 = 2;
    in.rs3 = 3;
    ExecOut out = execute(*core_, 0, in, warp().pc);
    EXPECT_TRUE(out.isTex);
    ASSERT_EQ(out.texLanes.size(), 4u);
    EXPECT_TRUE(out.texLanes[0].active);
    EXPECT_TRUE(out.texLanes[1].active);
    EXPECT_FALSE(out.texLanes[2].active);
    EXPECT_EQ(out.texLanes[0].u, 0.25f);
    EXPECT_EQ(out.texLanes[0].v, 0.75f);
    EXPECT_EQ(out.texLanes[0].lod, 1.0f);
    EXPECT_EQ(out.texLanes[1].u, 0.5f);
}

TEST_F(ExecTest, WritesToX0Dropped)
{
    x(0, 1) = 5;
    ExecOut out = run(InstrKind::ADDI, 0, 1, 0, 7);
    EXPECT_FALSE(out.hasDst);
}

TEST_F(ExecTest, EcallHaltsWarp)
{
    ExecOut out = run(InstrKind::ECALL);
    EXPECT_TRUE(out.haltWarp);
    EXPECT_FALSE(warp().active);
}
