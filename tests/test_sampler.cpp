/**
 * @file
 * Texture sampler tests: format pack/unpack round trips (property over
 * random colors), wrap modes, point/bilinear golden values, texel-center
 * exactness, mip chains, trilinear blending, and the address trace used by
 * the cycle model.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "mem/ram.h"
#include "tex/sampler.h"

using namespace vortex;
using namespace vortex::tex;

namespace {

/** Write a WxH RGBA8 texture where texel (x,y) = f(x,y). */
template <typename F>
void
fillTexture(mem::Ram& ram, const SamplerState& st, uint32_t lod, F f)
{
    for (uint32_t y = 0; y < st.height(lod); ++y) {
        for (uint32_t x = 0; x < st.width(lod); ++x) {
            ram.write32(st.texelAddr(lod, x, y),
                        packTexel(st.format, f(x, y)));
        }
    }
}

SamplerState
basicState(Addr addr = 0x1000, uint32_t wlog2 = 3, uint32_t hlog2 = 3)
{
    SamplerState st;
    st.addr = addr;
    st.widthLog2 = wlog2;
    st.heightLog2 = hlog2;
    st.format = Format::RGBA8;
    st.wrapU = st.wrapV = Wrap::Clamp;
    st.filter = Filter::Point;
    return st;
}

} // namespace

//
// Formats.
//

class FormatRoundTrip : public ::testing::TestWithParam<Format>
{
};

TEST_P(FormatRoundTrip, PackUnpackStable)
{
    Format fmt = GetParam();
    Xorshift rng(static_cast<uint64_t>(fmt) + 1);
    for (int i = 0; i < 256; ++i) {
        Color c{static_cast<uint8_t>(rng.next()),
                static_cast<uint8_t>(rng.next()),
                static_cast<uint8_t>(rng.next()),
                static_cast<uint8_t>(rng.next())};
        // pack -> unpack -> pack must be a fixed point (lossy once).
        uint32_t raw = packTexel(fmt, c);
        Color c2 = unpackTexel(fmt, raw);
        uint32_t raw2 = packTexel(fmt, c2);
        EXPECT_EQ(raw, raw2);
        // Unpacked channels replicate high bits: full range reachable.
        Color white = unpackTexel(fmt, packTexel(fmt, {255, 255, 255, 255}));
        if (fmt != Format::A8) {
            EXPECT_EQ(white.r, 255);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllFormats, FormatRoundTrip,
                         ::testing::Values(Format::RGBA8, Format::BGRA8,
                                           Format::RGB565, Format::RGBA4,
                                           Format::L8, Format::A8),
                         [](const ::testing::TestParamInfo<Format>& info) {
                             switch (info.param) {
                               case Format::RGBA8: return "RGBA8";
                               case Format::BGRA8: return "BGRA8";
                               case Format::RGB565: return "RGB565";
                               case Format::RGBA4: return "RGBA4";
                               case Format::L8: return "L8";
                               case Format::A8: return "A8";
                             }
                             return "unknown";
                         });

TEST(Format, TexelSizes)
{
    EXPECT_EQ(texelSize(Format::RGBA8), 4u);
    EXPECT_EQ(texelSize(Format::BGRA8), 4u);
    EXPECT_EQ(texelSize(Format::RGB565), 2u);
    EXPECT_EQ(texelSize(Format::RGBA4), 2u);
    EXPECT_EQ(texelSize(Format::L8), 1u);
    EXPECT_EQ(texelSize(Format::A8), 1u);
}

TEST(Format, KnownEncodings)
{
    // RGB565 pure red.
    Color red = unpackTexel(Format::RGB565, 0xF800);
    EXPECT_EQ(red.r, 255);
    EXPECT_EQ(red.g, 0);
    EXPECT_EQ(red.b, 0);
    EXPECT_EQ(red.a, 255);
    // BGRA8 channel order.
    Color c = unpackTexel(Format::BGRA8, 0xAA112233);
    EXPECT_EQ(c.b, 0x33);
    EXPECT_EQ(c.g, 0x22);
    EXPECT_EQ(c.r, 0x11);
    EXPECT_EQ(c.a, 0xAA);
    // L8 replicates into rgb with opaque alpha.
    Color l = unpackTexel(Format::L8, 0x7F);
    EXPECT_EQ(l.r, 0x7F);
    EXPECT_EQ(l.g, 0x7F);
    EXPECT_EQ(l.b, 0x7F);
    EXPECT_EQ(l.a, 255);
}

//
// Wrap modes.
//

TEST(Wrap, Clamp)
{
    EXPECT_EQ(applyWrap(Wrap::Clamp, -5, 8), 0);
    EXPECT_EQ(applyWrap(Wrap::Clamp, 0, 8), 0);
    EXPECT_EQ(applyWrap(Wrap::Clamp, 7, 8), 7);
    EXPECT_EQ(applyWrap(Wrap::Clamp, 12, 8), 7);
}

TEST(Wrap, Repeat)
{
    EXPECT_EQ(applyWrap(Wrap::Repeat, 8, 8), 0);
    EXPECT_EQ(applyWrap(Wrap::Repeat, 9, 8), 1);
    EXPECT_EQ(applyWrap(Wrap::Repeat, -1, 8), 7);
    EXPECT_EQ(applyWrap(Wrap::Repeat, -9, 8), 7);
}

TEST(Wrap, Mirror)
{
    EXPECT_EQ(applyWrap(Wrap::Mirror, 0, 4), 0);
    EXPECT_EQ(applyWrap(Wrap::Mirror, 3, 4), 3);
    EXPECT_EQ(applyWrap(Wrap::Mirror, 4, 4), 3);
    EXPECT_EQ(applyWrap(Wrap::Mirror, 5, 4), 2);
    EXPECT_EQ(applyWrap(Wrap::Mirror, 7, 4), 0);
    EXPECT_EQ(applyWrap(Wrap::Mirror, 8, 4), 0);
    EXPECT_EQ(applyWrap(Wrap::Mirror, -1, 4), 0);
    EXPECT_EQ(applyWrap(Wrap::Mirror, -2, 4), 1);
}

//
// Sampling.
//

TEST(Sampler, PointSamplesExactTexel)
{
    mem::Ram ram;
    SamplerState st = basicState();
    fillTexture(ram, st, 0, [](uint32_t x, uint32_t y) {
        return Color{static_cast<uint8_t>(x), static_cast<uint8_t>(y), 0,
                     255};
    });
    // Texel centers map to their own texel.
    for (uint32_t y = 0; y < 8; ++y) {
        for (uint32_t x = 0; x < 8; ++x) {
            float u = (x + 0.5f) / 8.0f;
            float v = (y + 0.5f) / 8.0f;
            SampleResult r = samplePoint(ram, st, u, v, 0);
            EXPECT_EQ(r.color.r, x);
            EXPECT_EQ(r.color.g, y);
            EXPECT_EQ(r.texelAddrs.size(), 1u);
        }
    }
}

TEST(Sampler, BilinearAtTexelCenterIsExact)
{
    mem::Ram ram;
    SamplerState st = basicState();
    st.filter = Filter::Bilinear;
    fillTexture(ram, st, 0, [](uint32_t x, uint32_t y) {
        return Color{static_cast<uint8_t>(x * 30), static_cast<uint8_t>(y),
                     9, 255};
    });
    SampleResult r = sampleBilinear(ram, st, (3 + 0.5f) / 8.0f,
                                    (5 + 0.5f) / 8.0f, 0);
    EXPECT_EQ(r.color.r, 90);
    EXPECT_EQ(r.color.g, 5);
    EXPECT_EQ(r.texelAddrs.size(), 4u);
}

TEST(Sampler, BilinearMidpointAverages)
{
    mem::Ram ram;
    SamplerState st = basicState();
    st.filter = Filter::Bilinear;
    // Two columns: 0 and 200.
    fillTexture(ram, st, 0, [](uint32_t x, uint32_t) {
        return Color{static_cast<uint8_t>(x % 2 ? 200 : 0), 0, 0, 255};
    });
    // Halfway between texel 0 and 1 horizontally: frac = 128/256.
    float u = (0.5f + 0.5f) / 8.0f;
    SampleResult r = sampleBilinear(ram, st, u, 0.5f / 8.0f + 0.001f, 0);
    EXPECT_NEAR(r.color.r, 100, 2);
}

TEST(Sampler, UniformTextureAnyCoords)
{
    mem::Ram ram;
    SamplerState st = basicState();
    st.filter = Filter::Bilinear;
    st.wrapU = st.wrapV = Wrap::Repeat;
    fillTexture(ram, st, 0,
                [](uint32_t, uint32_t) { return Color{77, 88, 99, 66}; });
    Xorshift rng(3);
    for (int i = 0; i < 200; ++i) {
        float u = rng.nextFloat() * 4.0f - 2.0f;
        float v = rng.nextFloat() * 4.0f - 2.0f;
        SampleResult r = sample(ram, st, u, v, 0);
        EXPECT_EQ(r.color, (Color{77, 88, 99, 66}))
            << "at u=" << u << " v=" << v;
    }
}

TEST(Sampler, MipChainOffsetsAndTrilinear)
{
    mem::Ram ram;
    SamplerState st = basicState(0x2000, 2, 2); // 4x4 with 2 levels
    st.numLods = 2;
    st.filter = Filter::Bilinear;
    // Level 0 all 100, level 1 all 200.
    fillTexture(ram, st, 0,
                [](uint32_t, uint32_t) { return Color{100, 0, 0, 255}; });
    fillTexture(ram, st, 1,
                [](uint32_t, uint32_t) { return Color{200, 0, 0, 255}; });
    EXPECT_EQ(st.mipByteOffset(0), 0u);
    EXPECT_EQ(st.mipByteOffset(1), 4u * 4u * 4u);

    EXPECT_EQ(sampleBilinear(ram, st, 0.5f, 0.5f, 0).color.r, 100);
    EXPECT_EQ(sampleBilinear(ram, st, 0.5f, 0.5f, 1).color.r, 200);
    // lod clamps to the chain.
    EXPECT_EQ(sampleBilinear(ram, st, 0.5f, 0.5f, 7).color.r, 200);

    // Trilinear at lod 0.5 blends halfway (integer lerp, frac8=128).
    SampleResult tri = sampleTrilinear(ram, st, 0.5f, 0.5f, 0.5f);
    EXPECT_NEAR(tri.color.r, 150, 1);
    EXPECT_EQ(tri.texelAddrs.size(), 8u);
    // lod 0 and lod ~1 endpoints.
    EXPECT_EQ(sampleTrilinear(ram, st, 0.5f, 0.5f, 0.0f).color.r, 100);
    EXPECT_NEAR(sampleTrilinear(ram, st, 0.5f, 0.5f, 0.999f).color.r, 200,
                2);
}

TEST(Sampler, LerpColorIntegerMath)
{
    Color a{0, 100, 200, 255};
    Color b{255, 100, 0, 255};
    Color mid = lerpColor(a, b, 128);
    EXPECT_EQ(mid.r, 127); // (0*128 + 255*128) >> 8
    EXPECT_EQ(mid.g, 100);
    EXPECT_EQ(mid.b, 100);
    EXPECT_EQ(lerpColor(a, b, 0), a);
    // frac 255 is almost-b (the hardware never reaches exactly b).
    EXPECT_EQ(lerpColor(a, b, 255).r, 254);
}

TEST(Sampler, NonSquareTexture)
{
    mem::Ram ram;
    SamplerState st = basicState(0x3000, 4, 2); // 16x4
    fillTexture(ram, st, 0, [](uint32_t x, uint32_t y) {
        return Color{static_cast<uint8_t>(x), static_cast<uint8_t>(y), 0,
                     255};
    });
    SampleResult r = samplePoint(ram, st, 10.5f / 16.0f, 2.5f / 4.0f, 0);
    EXPECT_EQ(r.color.r, 10);
    EXPECT_EQ(r.color.g, 2);
}
