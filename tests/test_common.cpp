/**
 * @file
 * Unit tests for the common utilities: bit manipulation, elastic queues,
 * latency pipes, stats, and the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <utility>

#include "common/bitmanip.h"
#include "common/elastic.h"
#include "common/rng.h"
#include "common/small_vec.h"
#include "common/slot_pool.h"
#include "common/stats.h"

using namespace vortex;

TEST(Bitmanip, IsPow2)
{
    EXPECT_FALSE(isPow2(0));
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(2));
    EXPECT_FALSE(isPow2(3));
    EXPECT_TRUE(isPow2(1ull << 40));
    EXPECT_FALSE(isPow2((1ull << 40) + 1));
}

TEST(Bitmanip, Log2)
{
    EXPECT_EQ(log2Ceil(1), 0u);
    EXPECT_EQ(log2Ceil(2), 1u);
    EXPECT_EQ(log2Ceil(3), 2u);
    EXPECT_EQ(log2Ceil(1024), 10u);
    EXPECT_EQ(log2Floor(1), 0u);
    EXPECT_EQ(log2Floor(3), 1u);
    EXPECT_EQ(log2Floor(1024), 10u);
    EXPECT_EQ(log2Floor(1025), 10u);
}

TEST(Bitmanip, BitsAndSext)
{
    EXPECT_EQ(bits(0xDEADBEEF, 0, 4), 0xFu);
    EXPECT_EQ(bits(0xDEADBEEF, 28, 4), 0xDu);
    EXPECT_EQ(bits(0xFFFFFFFF, 0, 32), 0xFFFFFFFFu);
    EXPECT_EQ(sext(0xFFF, 12), -1);
    EXPECT_EQ(sext(0x7FF, 12), 2047);
    EXPECT_EQ(sext(0x800, 12), -2048);
    EXPECT_EQ(sext(0x80000000u, 32), INT32_MIN);
}

TEST(Bitmanip, MaskAndAlign)
{
    EXPECT_EQ(maskLow(0), 0u);
    EXPECT_EQ(maskLow(5), 0x1Fu);
    EXPECT_EQ(maskLow(32), 0xFFFFFFFFu);
    EXPECT_EQ(alignUp(0, 64), 0u);
    EXPECT_EQ(alignUp(1, 64), 64u);
    EXPECT_EQ(alignUp(64, 64), 64u);
    EXPECT_TRUE(isAligned(128, 64));
    EXPECT_FALSE(isAligned(130, 64));
}

TEST(Bitmanip, PopcountCtz)
{
    EXPECT_EQ(popcount(0), 0u);
    EXPECT_EQ(popcount(0xF0F0), 8u);
    EXPECT_EQ(ctz(1), 0u);
    EXPECT_EQ(ctz(0x80), 7u);
    EXPECT_EQ(ctz(1ull << 63), 63u);
}

TEST(ElasticQueue, FifoOrderAndCapacity)
{
    ElasticQueue<int> q(2, "t");
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(q.full());
    q.push(1);
    q.push(2);
    EXPECT_TRUE(q.full());
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.pop(), 1);
    EXPECT_FALSE(q.full());
    q.push(3);
    EXPECT_EQ(q.pop(), 2);
    EXPECT_EQ(q.pop(), 3);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.totalPushes(), 3u);
}

TEST(ElasticQueue, OverflowUnderflowPanic)
{
    ElasticQueue<int> q(1, "t");
    q.push(1);
    EXPECT_THROW(q.push(2), PanicError);
    q.pop();
    EXPECT_THROW(q.pop(), PanicError);
    EXPECT_THROW(q.front(), PanicError);
}

TEST(ElasticQueue, ZeroCapacityRejected)
{
    EXPECT_THROW(ElasticQueue<int>(0, "t"), PanicError);
}

TEST(LatencyPipe, FixedLatency)
{
    LatencyPipe<int> pipe(3);
    pipe.enqueue(7, 10);
    EXPECT_FALSE(pipe.dequeueReady(11).has_value());
    EXPECT_FALSE(pipe.dequeueReady(12).has_value());
    auto v = pipe.dequeueReady(13);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 7);
    EXPECT_TRUE(pipe.empty());
}

TEST(LatencyPipe, PipelinedOnePerCycle)
{
    LatencyPipe<int> pipe(2);
    pipe.enqueue(1, 0);
    pipe.enqueue(2, 1);
    pipe.enqueue(3, 2);
    EXPECT_EQ(*pipe.dequeueReady(2), 1);
    EXPECT_FALSE(pipe.dequeueReady(2).has_value());
    EXPECT_EQ(*pipe.dequeueReady(3), 2);
    EXPECT_EQ(*pipe.dequeueReady(4), 3);
}

TEST(Stats, CountersAndMerge)
{
    StatGroup a("a"), b("b");
    a.counter("x") += 5;
    b.counter("x") += 2;
    b.counter("y") = 1;
    a.add(b);
    EXPECT_EQ(a.get("x"), 7u);
    EXPECT_EQ(a.get("y"), 1u);
    EXPECT_EQ(a.get("missing"), 0u);
}

TEST(Stats, IterationAndPrintingFollowInsertionOrder)
{
    StatGroup g("g");
    g.counter("zeta") = 1;
    g.counter("alpha") = 2;
    g.counter("mid") = 3;
    g.counter("zeta") += 10; // re-touching must not move the counter

    ASSERT_EQ(g.all().size(), 3u);
    EXPECT_EQ(g.all()[0].first, "zeta");
    EXPECT_EQ(g.all()[1].first, "alpha");
    EXPECT_EQ(g.all()[2].first, "mid");
    EXPECT_EQ(g.all()[0].second, 11u);

    std::ostringstream os;
    g.print(os);
    EXPECT_EQ(os.str(), "g.zeta = 11\ng.alpha = 2\ng.mid = 3\n");

    // add() appends counters new to the target in the source's order.
    StatGroup h("h");
    h.counter("beta") = 7;
    h.add(g);
    ASSERT_EQ(h.all().size(), 4u);
    EXPECT_EQ(h.all()[0].first, "beta");
    EXPECT_EQ(h.all()[1].first, "zeta");
}

TEST(Rng, DeterministicAndBounded)
{
    Xorshift a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
    Xorshift c(5);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(c.nextBounded(17), 17u);
        float f = c.nextFloat();
        EXPECT_GE(f, 0.0f);
        EXPECT_LT(f, 1.0f);
    }
}

//
// SmallVec: the inline-capacity uop/port payload container.
//

TEST(SmallVec, InlineThenSpill)
{
    SmallVec<uint32_t, 4> v;
    EXPECT_TRUE(v.empty());
    EXPECT_EQ(v.capacity(), 4u);
    for (uint32_t i = 0; i < 4; ++i)
        v.push_back(i);
    EXPECT_EQ(v.capacity(), 4u); // still inline
    for (uint32_t i = 4; i < 100; ++i)
        v.push_back(i); // spills to the heap and keeps growing
    ASSERT_EQ(v.size(), 100u);
    for (uint32_t i = 0; i < 100; ++i)
        EXPECT_EQ(v[i], i);
}

TEST(SmallVec, AssignReusesCapacityAcrossClear)
{
    SmallVec<uint32_t, 2> v;
    v.assign(64, 7u); // spilled
    size_t cap = v.capacity();
    EXPECT_GE(cap, 64u);
    v.clear();
    EXPECT_EQ(v.capacity(), cap); // clear() keeps the heap block
    v.assign(cap, 9u);            // refill without growing
    EXPECT_EQ(v.capacity(), cap);
    EXPECT_EQ(v[cap - 1], 9u);
}

TEST(SmallVec, SelfInsertionAtCapacityIsSafe)
{
    // std::vector-legal: push_back of an element of the vector itself,
    // exactly when the push forces a reallocation.
    SmallVec<uint32_t, 2> v;
    v.push_back(11);
    v.push_back(22); // size == capacity == 2
    v.push_back(v[0]);
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[2], 11u);
    // And again across a heap-to-heap grow.
    while (v.size() < v.capacity())
        v.push_back(1);
    v.push_back(v.back());
    EXPECT_EQ(v.back(), 1u);
}

TEST(SmallVec, MoveStealsHeapAndMovesInline)
{
    SmallVec<uint32_t, 2> heap;
    heap.assign(32, 5u);
    const uint32_t* data = heap.begin();
    SmallVec<uint32_t, 2> stolen = std::move(heap);
    EXPECT_EQ(stolen.begin(), data); // heap block transferred, not copied
    EXPECT_EQ(stolen.size(), 32u);
    EXPECT_TRUE(heap.empty());
    EXPECT_EQ(heap.capacity(), 2u); // back to inline

    SmallVec<uint32_t, 2> inl;
    inl.push_back(3);
    SmallVec<uint32_t, 2> moved = std::move(inl);
    ASSERT_EQ(moved.size(), 1u);
    EXPECT_EQ(moved[0], 3u);
    EXPECT_TRUE(inl.empty());

    // Copy is independent.
    SmallVec<uint32_t, 2> copy = stolen;
    copy[0] = 99;
    EXPECT_EQ(stolen[0], 5u);
    EXPECT_TRUE(copy == copy);
    EXPECT_FALSE(copy == stolen);
}

//
// SlotPool: generation-tagged in-flight request tracking.
//

TEST(SlotPool, AllocTakeRoundTripAndReuse)
{
    SlotPool<int> pool(1ull << 62, "t");
    uint64_t a = pool.alloc(10);
    uint64_t b = pool.alloc(20);
    EXPECT_NE(a, b);
    EXPECT_EQ(pool.size(), 2u);
    EXPECT_EQ(pool.at(a), 10);
    EXPECT_EQ(pool.take(a), 10);
    EXPECT_EQ(pool.take(b), 20);
    EXPECT_TRUE(pool.empty());
    // The recycled slot comes back under a different (generation-bumped)
    // id, so the old ids stay invalid.
    uint64_t c = pool.alloc(30);
    EXPECT_NE(c, a);
    EXPECT_NE(c, b);
    EXPECT_EQ(pool.take(c), 30);
}

TEST(SlotPool, StaleDuplicateAndForeignIdsPanic)
{
    SlotPool<int> pool(0, "t");
    uint64_t id = pool.alloc(1);
    EXPECT_EQ(pool.take(id), 1);
    EXPECT_THROW(pool.take(id), PanicError); // duplicate completion
    uint64_t id2 = pool.alloc(2);
    EXPECT_THROW(pool.take(id), PanicError);  // stale generation
    EXPECT_THROW(pool.take(id2 | (1ull << 62)), PanicError); // foreign base
    EXPECT_THROW(pool.take(id2 + 1), PanicError); // out-of-range index
    EXPECT_EQ(pool.take(id2), 2);
    EXPECT_THROW(SlotPool<int>(1, "bad"), PanicError); // base too low
}

TEST(SlotPool, ClearInvalidatesLiveIds)
{
    SlotPool<int> pool(0, "t");
    uint64_t a = pool.alloc(1);
    (void)pool.alloc(2);
    pool.clear();
    EXPECT_TRUE(pool.empty());
    EXPECT_THROW(pool.take(a), PanicError);
    uint64_t c = pool.alloc(3); // slots are reusable after clear
    EXPECT_EQ(pool.take(c), 3);
}
