/**
 * @file
 * Texture-unit cycle-model tests: CSR read/write round trips, batch
 * processing (one batch in flight at a time), texel de-duplication across
 * threads, cache traffic generation, and bit-exact agreement with the
 * functional sampler.
 */

#include <gtest/gtest.h>

#include "isa/csr.h"
#include "mem/cache.h"
#include "mem/memsim.h"
#include "tex/texunit.h"

using namespace vortex;
using namespace vortex::tex;

namespace {

class TexUnitTest : public ::testing::Test
{
  protected:
    TexUnitTest()
        : cache_(cacheCfg()),
          mem_(mem::MemSimConfig{}),
          unit_(unitCfg(), ram_, &cache_, [this] { return nextId_++; })
    {
        cache_.connectMem(&mem_);
        mem_.setRspCallback(
            [this](const mem::MemRsp& r) { cache_.memRsp(r); });
        cache_.setRspCallback([this](const mem::CoreRsp& r) {
            ASSERT_TRUE(unit_.cacheRsp(r)) << "unexpected cache response";
        });
        unit_.setRspCallback(
            [this](const TexResponse& r) { rsps_.push_back(r); });

        // 8x8 RGBA8 gradient texture at 0x1000.
        SamplerState& st = unit_.stageState(0);
        st.addr = 0x1000;
        st.widthLog2 = 3;
        st.heightLog2 = 3;
        st.format = Format::RGBA8;
        st.wrapU = st.wrapV = Wrap::Repeat;
        st.filter = Filter::Bilinear;
        for (uint32_t y = 0; y < 8; ++y) {
            for (uint32_t x = 0; x < 8; ++x) {
                Color c{static_cast<uint8_t>(x * 16),
                        static_cast<uint8_t>(y * 16), 5, 255};
                ram_.write32(st.texelAddr(0, x, y), c.pack());
            }
        }
    }

    static mem::CacheConfig
    cacheCfg()
    {
        mem::CacheConfig c;
        c.numLanes = 4;
        return c;
    }

    static TexUnitConfig
    unitCfg()
    {
        TexUnitConfig c;
        c.numThreads = 4;
        c.cacheLaneBase = 0;
        c.numCacheLanes = 4;
        return c;
    }

    void
    runUntilDone(uint32_t limit = 10000)
    {
        uint32_t n = 0;
        while (!unit_.idle() || !cache_.idle()) {
            ++now_;
            mem_.tick(now_);
            cache_.tick(now_);
            unit_.tick(now_);
            ASSERT_LT(++n, limit);
        }
    }

    TexRequest
    makeReq(uint64_t id, std::initializer_list<std::pair<float, float>> uvs)
    {
        TexRequest req;
        req.reqId = id;
        req.stage = 0;
        for (auto [u, v] : uvs) {
            TexLaneReq lr;
            lr.active = true;
            lr.u = u;
            lr.v = v;
            req.lanes.push_back(lr);
        }
        while (req.lanes.size() < 4)
            req.lanes.push_back(TexLaneReq{});
        return req;
    }

    mem::Ram ram_;
    mem::Cache cache_;
    mem::MemSim mem_;
    TexUnit unit_;
    std::vector<TexResponse> rsps_;
    uint64_t nextId_ = 1000;
    Cycle now_ = 0;
};

} // namespace

TEST_F(TexUnitTest, CsrRoundTrip)
{
    using namespace isa;
    unit_.csrWrite(texCsrAddr(1, TEX_STATE_ADDR), 0xABC00000);
    unit_.csrWrite(texCsrAddr(1, TEX_STATE_WIDTH), 7);
    unit_.csrWrite(texCsrAddr(1, TEX_STATE_HEIGHT), 6);
    unit_.csrWrite(texCsrAddr(1, TEX_STATE_FORMAT),
                   static_cast<uint32_t>(Format::RGB565));
    unit_.csrWrite(texCsrAddr(1, TEX_STATE_WRAP),
                   static_cast<uint32_t>(Wrap::Mirror) |
                       (static_cast<uint32_t>(Wrap::Repeat) << 2));
    unit_.csrWrite(texCsrAddr(1, TEX_STATE_FILTER),
                   static_cast<uint32_t>(Filter::Bilinear));
    unit_.csrWrite(texCsrAddr(1, TEX_STATE_LODS), 3);

    EXPECT_EQ(unit_.csrRead(texCsrAddr(1, TEX_STATE_ADDR)), 0xABC00000u);
    EXPECT_EQ(unit_.csrRead(texCsrAddr(1, TEX_STATE_WIDTH)), 7u);
    EXPECT_EQ(unit_.csrRead(texCsrAddr(1, TEX_STATE_HEIGHT)), 6u);
    EXPECT_EQ(unit_.stageState(1).format, Format::RGB565);
    EXPECT_EQ(unit_.stageState(1).wrapU, Wrap::Mirror);
    EXPECT_EQ(unit_.stageState(1).wrapV, Wrap::Repeat);
    EXPECT_EQ(unit_.stageState(1).filter, Filter::Bilinear);
    EXPECT_EQ(unit_.stageState(1).numLods, 3u);
    // Stage 0 unaffected.
    EXPECT_EQ(unit_.csrRead(texCsrAddr(0, TEX_STATE_ADDR)), 0x1000u);
}

TEST_F(TexUnitTest, MatchesFunctionalSampler)
{
    unit_.push(makeReq(1, {{0.1f, 0.2f}, {0.6f, 0.7f}, {0.9f, 0.1f},
                           {0.3f, 0.8f}}));
    runUntilDone();
    ASSERT_EQ(rsps_.size(), 1u);
    const SamplerState& st = unit_.stageState(0);
    float us[4] = {0.1f, 0.6f, 0.9f, 0.3f};
    float vs[4] = {0.2f, 0.7f, 0.1f, 0.8f};
    for (int lane = 0; lane < 4; ++lane) {
        Color expect = sampleBilinear(ram_, st, us[lane], vs[lane], 0).color;
        EXPECT_EQ(rsps_[0].colors[lane], expect.pack()) << "lane " << lane;
    }
}

TEST_F(TexUnitTest, DeduplicatesRepeatedTexels)
{
    // All four lanes sample the same coordinate: 4 texels (bilinear quad)
    // instead of 16.
    unit_.push(makeReq(2, {{0.5f, 0.5f}, {0.5f, 0.5f}, {0.5f, 0.5f},
                           {0.5f, 0.5f}}));
    runUntilDone();
    EXPECT_EQ(unit_.stats().get("texel_fetches"), 16u);
    EXPECT_EQ(unit_.stats().get("unique_texels"), 4u);
}

TEST_F(TexUnitTest, BatchesSerializeAndBothComplete)
{
    unit_.push(makeReq(3, {{0.1f, 0.1f}}));
    unit_.push(makeReq(4, {{0.9f, 0.9f}}));
    runUntilDone();
    ASSERT_EQ(rsps_.size(), 2u);
    EXPECT_EQ(rsps_[0].reqId, 3u);
    EXPECT_EQ(rsps_[1].reqId, 4u);
}

TEST_F(TexUnitTest, InactiveLanesReturnZero)
{
    TexRequest req = makeReq(5, {{0.5f, 0.5f}});
    unit_.push(req);
    runUntilDone();
    ASSERT_EQ(rsps_.size(), 1u);
    EXPECT_NE(rsps_[0].colors[0], 0u);
    EXPECT_EQ(rsps_[0].colors[1], 0u);
    EXPECT_EQ(rsps_[0].colors[3], 0u);
}

TEST_F(TexUnitTest, PointFilterSingleTexelPerLane)
{
    unit_.stageState(0).filter = Filter::Point;
    unit_.push(makeReq(6, {{0.1f, 0.1f}, {0.9f, 0.9f}}));
    runUntilDone();
    EXPECT_EQ(unit_.stats().get("texel_fetches"), 2u);
    ASSERT_EQ(rsps_.size(), 1u);
    const SamplerState& st = unit_.stageState(0);
    EXPECT_EQ(rsps_[0].colors[0],
              samplePoint(ram_, st, 0.1f, 0.1f, 0).color.pack());
}

TEST_F(TexUnitTest, BackPressure)
{
    EXPECT_TRUE(unit_.ready());
    unit_.push(makeReq(7, {{0.1f, 0.1f}}));
    unit_.push(makeReq(8, {{0.2f, 0.2f}}));
    EXPECT_FALSE(unit_.ready()); // input queue depth is 2
    runUntilDone();
    EXPECT_TRUE(unit_.ready());
    EXPECT_EQ(rsps_.size(), 2u);
}

//
// End-to-end multi-stage texturing: a kernel configures two texture
// stages, switches the active stage via CSR_TEX_STAGE between `tex`
// instructions, and samples from both.
//

#include "isa/assembler.h"
#include "runtime/device.h"

TEST(TexStages, KernelSwitchesStages)
{
    using namespace vortex;
    core::ArchConfig cfg;
    runtime::Device dev(cfg);

    // Two 4x4 solid-color RGBA8 textures.
    const Addr tex_a = 0x30000, tex_b = 0x31000, out = 0x32000;
    for (uint32_t i = 0; i < 16; ++i) {
        dev.ram().write32(tex_a + i * 4, Color{10, 20, 30, 255}.pack());
        dev.ram().write32(tex_b + i * 4, Color{200, 150, 100, 255}.pack());
    }

    isa::Assembler as(cfg.startPC);
    isa::Program p = as.assemble(R"(
        # stage 0 <- texture A
        li t0, 0x30000
        csrw 0x7C0, t0
        csrwi 0x7C2, 2
        csrwi 0x7C3, 2
        csrwi 0x7C4, 0        # RGBA8
        csrwi 0x7C5, 5        # repeat/repeat
        csrwi 0x7C6, 0        # point
        csrwi 0x7C7, 1
        # stage 1 <- texture B
        li t0, 0x31000
        csrw 0x7C8, t0
        csrwi 0x7CA, 2
        csrwi 0x7CB, 2
        csrwi 0x7CC, 0
        csrwi 0x7CD, 5
        csrwi 0x7CE, 0
        csrwi 0x7CF, 1
        # u = v = 0.5, lod = 0
        la t1, half
        flw ft0, 0(t1)
        fmv.s ft1, ft0
        fmv.w.x ft2, zero
        # sample stage 0
        csrwi 0x7BF, 0
        vx_tex t2, ft0, ft1, ft2
        li t3, 0x32000
        sw t2, 0(t3)
        # sample stage 1
        csrwi 0x7BF, 1
        vx_tex t2, ft0, ft1, ft2
        sw t2, 4(t3)
        li t4, 0
        vx_tmc t4
    .align 2
    half: .float 0.5
    )");
    dev.uploadProgram(p);
    dev.start();
    ASSERT_TRUE(dev.readyWait(1000000));
    EXPECT_EQ(dev.ram().read32(out), (Color{10, 20, 30, 255}.pack()));
    EXPECT_EQ(dev.ram().read32(out + 4),
              (Color{200, 150, 100, 255}.pack()));
}
