/**
 * @file
 * Driver/runtime tests: device memory management, argument mailbox,
 * repeated kernel launches on one device, performance counters, the
 * spawn_tasks distribution (task count edge cases), and verified workload
 * runners across geometries (parameterized property sweep).
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "kernels/kernels.h"
#include "runtime/device.h"
#include "runtime/kargs.h"
#include "runtime/workloads.h"

using namespace vortex;
using runtime::Device;

namespace {

core::ArchConfig
cfg(uint32_t warps = 4, uint32_t threads = 4, uint32_t cores = 1)
{
    core::ArchConfig c;
    c.numWarps = warps;
    c.numThreads = threads;
    c.numCores = cores;
    return c;
}

} // namespace

TEST(Device, MemAllocAlignmentAndGrowth)
{
    Device dev(cfg());
    Addr a = dev.memAlloc(10, 64);
    Addr b = dev.memAlloc(10, 64);
    EXPECT_EQ(a % 64, 0u);
    EXPECT_EQ(b % 64, 0u);
    EXPECT_GE(b, a + 10);
    Addr c = dev.memAlloc(4, 4096);
    EXPECT_EQ(c % 4096, 0u);
    EXPECT_THROW(dev.memAlloc(1, 3), FatalError); // non-pow2 alignment
}

TEST(Device, CopyRoundTrip)
{
    Device dev(cfg());
    std::vector<uint8_t> data(1000);
    for (size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<uint8_t>(i * 7);
    Addr d = dev.memAlloc(data.size());
    dev.copyToDev(d, data.data(), data.size());
    std::vector<uint8_t> back(data.size());
    dev.copyFromDev(back.data(), d, back.size());
    EXPECT_EQ(data, back);
}

TEST(Device, ArgMailboxAtFixedAddress)
{
    Device dev(cfg());
    runtime::VecAddArgs args{7, 0x100, 0x200, 0x300};
    dev.setKernelArg(args);
    EXPECT_EQ(dev.ram().read32(runtime::kKernelArgAddr), 7u);
    EXPECT_EQ(dev.ram().read32(runtime::kKernelArgAddr + 4), 0x100u);
}

TEST(Device, RepeatedLaunchesOnOneDevice)
{
    // Re-uploading and re-running must fully reset the processor state.
    Device dev(cfg(4, 4, 2));
    for (int round = 0; round < 3; ++round) {
        runtime::RunResult r = runtime::runVecAdd(dev, 256 + 64 * round);
        EXPECT_TRUE(r.ok) << "round " << round << ": " << r.error;
    }
}

TEST(Device, TimeoutDetected)
{
    Device dev(cfg());
    isa::Assembler as(dev.processor().config().startPC);
    dev.uploadProgram(as.assemble("forever: j forever"));
    dev.start();
    EXPECT_FALSE(dev.readyWait(2000));
    EXPECT_THROW(dev.runKernel(2000), FatalError);
}

TEST(SpawnTasks, EdgeTaskCounts)
{
    // Task counts around the hardware-thread total: 1, NT*NW-1, NT*NW,
    // NT*NW+1, and a large non-multiple.
    for (uint32_t n : {1u, 15u, 16u, 17u, 333u}) {
        Device dev(cfg(4, 4, 1));
        runtime::RunResult r = runtime::runVecAdd(dev, n);
        EXPECT_TRUE(r.ok) << "n=" << n << ": " << r.error;
    }
}

TEST(SpawnTasks, SingleWarpSingleThreadMachine)
{
    // Degenerate 1W-1T machine still runs every task serially.
    Device dev(cfg(1, 1, 1));
    runtime::RunResult r = runtime::runVecAdd(dev, 37);
    EXPECT_TRUE(r.ok) << r.error;
}

TEST(SpawnTasks, WideMachine)
{
    Device dev(cfg(8, 8, 1));
    runtime::RunResult r = runtime::runSaxpy(dev, 500);
    EXPECT_TRUE(r.ok) << r.error;
}

TEST(Counters, CyclesAndInstrsTrackWork)
{
    Device small(cfg());
    runtime::RunResult r1 = runtime::runVecAdd(small, 128);
    Device big(cfg());
    runtime::RunResult r2 = runtime::runVecAdd(big, 1024);
    ASSERT_TRUE(r1.ok && r2.ok);
    EXPECT_GT(r2.cycles, r1.cycles);
    EXPECT_GT(r2.threadInstrs, r1.threadInstrs);
    // 8x the tasks ~= 8x the work.
    double ratio = static_cast<double>(r2.threadInstrs) /
                   static_cast<double>(r1.threadInstrs);
    EXPECT_GT(ratio, 4.0);
    EXPECT_LT(ratio, 12.0);
}

TEST(Counters, DeviceCsrCountersVisibleToKernels)
{
    // A kernel reads CSR_CYCLE twice around a delay loop; the delta must
    // be positive and plausible.
    Device dev(cfg());
    isa::Assembler as(dev.processor().config().startPC);
    dev.uploadProgram(as.assemble(R"(
        csrr s0, 0xC00        # cycle low
        li t0, 50
    spin:
        addi t0, t0, -1
        bnez t0, spin
        csrr s1, 0xC00
        sub s2, s1, s0
        li t1, 0x20000
        sw s2, 0(t1)
        li t2, 0
        vx_tmc t2
    )"));
    dev.start();
    ASSERT_TRUE(dev.readyWait(100000));
    uint32_t delta = dev.ram().read32(0x20000);
    EXPECT_GT(delta, 100u);  // >= 2 cycles per loop iteration
    EXPECT_LT(delta, 5000u);
}

//
// Verified-workload sweep across machine geometries (property: every
// kernel is correct on every geometry).
//

struct GeometryCase
{
    uint32_t warps, threads, cores;
    const char* kernel;
};

class WorkloadSweep : public ::testing::TestWithParam<GeometryCase>
{
};

TEST_P(WorkloadSweep, Verifies)
{
    const GeometryCase& g = GetParam();
    Device dev(cfg(g.warps, g.threads, g.cores));
    runtime::RunResult r = runtime::runRodinia(dev, g.kernel);
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_GT(r.ipc, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, WorkloadSweep,
    ::testing::Values(GeometryCase{2, 2, 1, "sgemm"},
                      GeometryCase{8, 8, 1, "sgemm"},
                      GeometryCase{4, 4, 2, "sfilter"},
                      GeometryCase{2, 8, 2, "saxpy"},
                      GeometryCase{8, 2, 2, "nearn"},
                      GeometryCase{4, 4, 8, "vecadd"},
                      GeometryCase{4, 8, 4, "bfs"},
                      GeometryCase{8, 4, 2, "gaussian"}),
    [](const ::testing::TestParamInfo<GeometryCase>& info) {
        return std::string(info.param.kernel) + "_" +
               std::to_string(info.param.warps) + "w" +
               std::to_string(info.param.threads) + "t" +
               std::to_string(info.param.cores) + "c";
    });

//
// Texture kernels across formats and wrap modes (through the full device
// stack, HW path).
//

TEST(TextureDevice, SmallestAndOddSizes)
{
    for (uint32_t size : {8u, 16u}) {
        Device dev(cfg());
        runtime::RunResult r = runtime::runTexture(
            dev, runtime::TexFilterMode::Bilinear, true, size);
        EXPECT_TRUE(r.ok) << "size " << size << ": " << r.error;
    }
}

TEST(TextureDevice, HwAndSwAgreeOnPixels)
{
    // The HW and SW bilinear kernels must produce (near-)identical images.
    Device hw_dev(cfg()), sw_dev(cfg());
    runtime::RunResult rh = runtime::runTexture(
        hw_dev, runtime::TexFilterMode::Bilinear, true, 16);
    runtime::RunResult rs = runtime::runTexture(
        sw_dev, runtime::TexFilterMode::Bilinear, false, 16);
    EXPECT_TRUE(rh.ok) << rh.error;
    EXPECT_TRUE(rs.ok) << rs.error;
    // Both verified against the same functional sampler inside runTexture;
    // agreement is transitive. HW must also be strictly faster.
    EXPECT_LT(rh.cycles, rs.cycles);
}
