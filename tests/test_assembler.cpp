/**
 * @file
 * Assembler tests: labels, directives, pseudo-instructions, expressions,
 * %hi/%lo, error reporting, and the runtime+kernel concatenation path.
 */

#include <cstring>
#include <gtest/gtest.h>

#include "common/log.h"
#include "isa/assembler.h"
#include "isa/isa.h"
#include "isa/object.h"
#include "kernels/kernels.h"

using namespace vortex;
using namespace vortex::isa;

namespace {

uint32_t
word(const Program& p, size_t index)
{
    size_t off = index * 4;
    return static_cast<uint32_t>(p.image.at(off)) |
           (static_cast<uint32_t>(p.image.at(off + 1)) << 8) |
           (static_cast<uint32_t>(p.image.at(off + 2)) << 16) |
           (static_cast<uint32_t>(p.image.at(off + 3)) << 24);
}

Instr
instrAt(const Program& p, size_t index)
{
    return decode(word(p, index));
}

} // namespace

TEST(Assembler, BasicInstructions)
{
    Assembler as(0x80000000);
    Program p = as.assemble(R"(
        add a0, a1, a2
        addi t0, t1, -7
        lw s0, 8(sp)
        sw s1, -4(gp)
        lui a0, 0x12345
    )");
    Instr i0 = instrAt(p, 0);
    EXPECT_EQ(i0.kind, InstrKind::ADD);
    EXPECT_EQ(i0.rd, 10u);
    EXPECT_EQ(i0.rs1, 11u);
    EXPECT_EQ(i0.rs2, 12u);
    Instr i1 = instrAt(p, 1);
    EXPECT_EQ(i1.kind, InstrKind::ADDI);
    EXPECT_EQ(i1.imm, -7);
    Instr i2 = instrAt(p, 2);
    EXPECT_EQ(i2.kind, InstrKind::LW);
    EXPECT_EQ(i2.rs1, 2u);
    EXPECT_EQ(i2.imm, 8);
    Instr i3 = instrAt(p, 3);
    EXPECT_EQ(i3.kind, InstrKind::SW);
    EXPECT_EQ(i3.rs2, 9u);
    EXPECT_EQ(i3.imm, -4);
    Instr i4 = instrAt(p, 4);
    EXPECT_EQ(i4.kind, InstrKind::LUI);
    EXPECT_EQ(static_cast<uint32_t>(i4.imm), 0x12345000u);
}

TEST(Assembler, LabelsAndBranches)
{
    Assembler as(0x1000);
    Program p = as.assemble(R"(
    start:
        addi t0, zero, 3
    loop:
        addi t0, t0, -1
        bnez t0, loop
        j start
    )");
    EXPECT_EQ(p.symbol("start"), 0x1000u);
    EXPECT_EQ(p.symbol("loop"), 0x1004u);
    Instr b = instrAt(p, 2);
    EXPECT_EQ(b.kind, InstrKind::BNE);
    EXPECT_EQ(b.imm, -4);
    Instr j = instrAt(p, 3);
    EXPECT_EQ(j.kind, InstrKind::JAL);
    EXPECT_EQ(j.rd, 0u);
    EXPECT_EQ(j.imm, -12);
}

TEST(Assembler, LiExpansion)
{
    Assembler as(0);
    Program p = as.assemble(R"(
        li a0, 5
        li a1, 0x12345678
        li a2, -2048
        li a3, 0xFFFFF800
    )");
    // Small constants: a single addi.
    EXPECT_EQ(instrAt(p, 0).kind, InstrKind::ADDI);
    EXPECT_EQ(instrAt(p, 0).imm, 5);
    // Large: lui + addi.
    Instr lui = instrAt(p, 1);
    Instr addi = instrAt(p, 2);
    EXPECT_EQ(lui.kind, InstrKind::LUI);
    EXPECT_EQ(addi.kind, InstrKind::ADDI);
    uint32_t value = static_cast<uint32_t>(lui.imm) +
                     static_cast<uint32_t>(addi.imm);
    EXPECT_EQ(value, 0x12345678u);
    EXPECT_EQ(instrAt(p, 3).imm, -2048);
    // 0xFFFFF800 parses as a large unsigned literal: lui+addi, but the
    // combined value must wrap to the same bit pattern.
    Instr lui2 = instrAt(p, 4);
    Instr addi2 = instrAt(p, 5);
    EXPECT_EQ(lui2.kind, InstrKind::LUI);
    EXPECT_EQ(static_cast<uint32_t>(lui2.imm) +
                  static_cast<uint32_t>(addi2.imm),
              0xFFFFF800u);
}

TEST(Assembler, LaResolvesSymbols)
{
    Assembler as(0x80000000);
    Program p = as.assemble(R"(
        la a0, data
        nop
    data:
        .word 0xCAFEBABE
    )");
    Instr lui = instrAt(p, 0);
    Instr addi = instrAt(p, 1);
    uint32_t addr = static_cast<uint32_t>(lui.imm) +
                    static_cast<uint32_t>(addi.imm);
    EXPECT_EQ(addr, p.symbol("data"));
    EXPECT_EQ(word(p, 3), 0xCAFEBABEu);
}

TEST(Assembler, Directives)
{
    Assembler as(0);
    Program p = as.assemble(R"(
        .equ MAGIC, 0x42
        .byte 1, 2, MAGIC
        .align 2
        .half 0x1234, 0xBEEF
        .word MAGIC + 1
        .space 8
        .asciz "hi\n"
        .float 1.5
    )");
    EXPECT_EQ(p.image.at(0), 1);
    EXPECT_EQ(p.image.at(1), 2);
    EXPECT_EQ(p.image.at(2), 0x42);
    // .align 2 pads to offset 4.
    EXPECT_EQ(p.image.at(4), 0x34);
    EXPECT_EQ(p.image.at(5), 0x12);
    EXPECT_EQ(p.image.at(6), 0xEF);
    EXPECT_EQ(p.image.at(7), 0xBE);
    EXPECT_EQ(word(p, 2), 0x43u);
    // 8 zero bytes of .space, then "hi\n\0".
    EXPECT_EQ(p.image.at(20), 'h');
    EXPECT_EQ(p.image.at(21), 'i');
    EXPECT_EQ(p.image.at(22), '\n');
    EXPECT_EQ(p.image.at(23), 0);
    // .float aligned to 4 => offset 24.
    float f;
    std::memcpy(&f, &p.image[24], 4);
    EXPECT_EQ(f, 1.5f);
}

TEST(Assembler, HiLoExpressions)
{
    Assembler as(0);
    Program p = as.assemble(R"(
        lui a0, %hi(0x12345FFF)
        addi a0, a0, %lo(0x12345FFF)
    )");
    Instr lui = instrAt(p, 0);
    Instr addi = instrAt(p, 1);
    uint32_t v = static_cast<uint32_t>(lui.imm) +
                 static_cast<uint32_t>(addi.imm);
    EXPECT_EQ(v, 0x12345FFFu);
}

TEST(Assembler, PseudoInstructions)
{
    Assembler as(0);
    Program p = as.assemble(R"(
        nop
        mv a0, a1
        not a2, a3
        neg a4, a5
        seqz t0, t1
        snez t2, t3
        ret
        fmv.s fa0, fa1
        fneg.s fa2, fa3
        fabs.s fa4, fa5
        csrr t0, 0xCC0
        csrw 0x7C0, t1
        csrwi 0x7C1, 3
    )");
    EXPECT_EQ(instrAt(p, 0).kind, InstrKind::ADDI);
    EXPECT_EQ(instrAt(p, 1).kind, InstrKind::ADDI);
    EXPECT_EQ(instrAt(p, 2).kind, InstrKind::XORI);
    EXPECT_EQ(instrAt(p, 2).imm, -1);
    EXPECT_EQ(instrAt(p, 3).kind, InstrKind::SUB);
    EXPECT_EQ(instrAt(p, 4).kind, InstrKind::SLTIU);
    EXPECT_EQ(instrAt(p, 5).kind, InstrKind::SLTU);
    Instr ret = instrAt(p, 6);
    EXPECT_EQ(ret.kind, InstrKind::JALR);
    EXPECT_EQ(ret.rs1, 1u);
    EXPECT_EQ(ret.rd, 0u);
    EXPECT_EQ(instrAt(p, 7).kind, InstrKind::FSGNJ_S);
    EXPECT_EQ(instrAt(p, 8).kind, InstrKind::FSGNJN_S);
    EXPECT_EQ(instrAt(p, 9).kind, InstrKind::FSGNJX_S);
    Instr csrr = instrAt(p, 10);
    EXPECT_EQ(csrr.kind, InstrKind::CSRRS);
    EXPECT_EQ(csrr.csr, 0xCC0u);
    EXPECT_EQ(csrr.rs1, 0u);
    EXPECT_EQ(instrAt(p, 11).kind, InstrKind::CSRRW);
    EXPECT_EQ(instrAt(p, 12).kind, InstrKind::CSRRWI);
}

TEST(Assembler, VortexInstructions)
{
    Assembler as(0);
    Program p = as.assemble(R"(
        vx_tmc t0
        vx_wspawn t1, t2
        vx_split t3
        vx_join
        vx_bar t4, t5
        vx_tex a0, ft0, ft1, ft2
    )");
    EXPECT_EQ(instrAt(p, 0).kind, InstrKind::VX_TMC);
    EXPECT_EQ(instrAt(p, 1).kind, InstrKind::VX_WSPAWN);
    EXPECT_EQ(instrAt(p, 2).kind, InstrKind::VX_SPLIT);
    EXPECT_EQ(instrAt(p, 3).kind, InstrKind::VX_JOIN);
    EXPECT_EQ(instrAt(p, 4).kind, InstrKind::VX_BAR);
    Instr tex = instrAt(p, 5);
    EXPECT_EQ(tex.kind, InstrKind::VX_TEX);
    EXPECT_EQ(tex.rd, 10u);
    EXPECT_EQ(tex.rs1, 0u);
    EXPECT_EQ(tex.rs2, 1u);
    EXPECT_EQ(tex.rs3, 2u);
}

namespace {

/** @p src must fail with an AsmError anchored exactly at
 *  prog.s:@p line:@p col whose message contains @p substr. When
 *  @p object is set the source goes through assembleObject() instead,
 *  for diagnostics only the relocatable path emits. */
void
expectAsmError(const char* src, int line, int col, const char* substr,
               bool object = false)
{
    Assembler as(0);
    try {
        if (object)
            as.assembleObject({{"prog.s", src}});
        else
            as.assemble(src, "prog.s");
        FAIL() << "expected AsmError with '" << substr << "'";
    } catch (const AsmError& e) {
        EXPECT_EQ(e.file(), "prog.s") << e.what();
        EXPECT_EQ(e.line(), line) << e.what();
        EXPECT_EQ(e.column(), col) << e.what();
        EXPECT_NE(e.message().find(substr), std::string::npos) << e.what();
        // what() renders the gcc-style anchor verbatim.
        EXPECT_EQ(std::string(e.what()),
                  "prog.s:" + std::to_string(line) + ":" +
                      std::to_string(col) + ": " + e.message());
    }
}

} // namespace

TEST(Assembler, ErrorsPinFileLineAndColumn)
{
    // AsmError derives from FatalError, so callers that only know the
    // generic type still catch assembly failures.
    Assembler as(0);
    EXPECT_THROW(as.assemble("bogus a0, a1"), FatalError);

    expectAsmError("nop\nnop\nbogus x9", 3, 1, "unknown mnemonic 'bogus'");
    expectAsmError("add a0, a1", 1, 1, "add: expected 3 operands, got 2");
    expectAsmError("lw a0, 4(f1)", 1, 8, "bad base register 'f1'");
    expectAsmError("add a0, a1, ft0", 1, 13,
                   "expected integer register, got 'ft0'");
    expectAsmError("j nowhere", 1, 3, "undefined symbol 'nowhere'");
    expectAsmError("dup:\ndup:\n nop", 2, 1, "duplicate label 'dup'");
    expectAsmError(".unknown 4", 1, 1, "unknown directive '.unknown'");
    expectAsmError("  .equ foo", 1, 3, ".equ needs <name>, <value>");
    expectAsmError(".section .bogus", 1, 10,
                   "unknown section '.bogus' (supported: .text, .rodata, "
                   ".data)");
    expectAsmError(".data\n.ascii 42", 2, 8, "expected a quoted string");
    expectAsmError(".data\n.float 1.q2", 2, 8, "bad float literal '1.q2'");
}

TEST(Assembler, ErrorsPinOperandRanges)
{
    expectAsmError("addi a0, a0, 5000", 1, 14,
                   "immediate 5000 out of range [-2048, 2047]");
    expectAsmError("slli a0, a0, 33", 1, 14,
                   "shift amount 33 out of range [0, 31]");
    expectAsmError("lw a0, 4096(a1)", 1, 8,
                   "memory offset 4096 out of range [-2048, 2047]");
    expectAsmError("lw a0, a1", 1, 8, "expected imm(reg) operand");
    expectAsmError("start: nop\n.space 8192\n.align 2\nbeq a0, a1, start",
                   4, 13,
                   "branch target out of range (offset -8196, limit "
                   "+-4 KiB)");
}

TEST(Assembler, ObjectModeRejectsUnrelocatableExpressions)
{
    // These assemble fine into a flat Program (the address is known),
    // but cannot be represented in the relocatable object format, and
    // the diagnostic points at the offending operand.
    expectAsmError("main:\n    addi a0, a0, main\n", 2, 18,
                   "not relocatable: raw label in an I-type immediate "
                   "(use %lo(...) or la)",
                   /*object=*/true);
    expectAsmError("main:\n    lui a0, main\n", 2, 13,
                   "not relocatable: raw label in lui (use %hi(...))",
                   /*object=*/true);
    expectAsmError("a:\nb:\n.data\n.word a+b\n", 4, 7,
                   "not relocatable: expression with net label weight 2",
                   /*object=*/true);
    // A label *difference* has net weight 0 and is rebase-invariant, so
    // it is representable without any relocation.
    Assembler as(0);
    EXPECT_NO_THROW(as.assembleObject({{"prog.s",
                                        "a:\nnop\nb:\n.data\n.word b-a\n"}}));
}

TEST(Assembler, CommentsAndLabelsOnSameLine)
{
    Assembler as(0);
    Program p = as.assemble(R"(
        start: addi a0, zero, 1   # trailing comment
        // full-line comment
        next: ; comment
        addi a0, a0, 1
    )");
    EXPECT_EQ(p.symbol("start"), 0u);
    EXPECT_EQ(p.symbol("next"), 4u);
    EXPECT_EQ(p.size(), 8u);
}

TEST(Assembler, RuntimePlusKernelsAssemble)
{
    // Every embedded kernel must assemble cleanly with the runtime.
    Assembler as(0x80000000);
    for (const char* kernel :
         {kernels::vecadd(), kernels::saxpy(), kernels::sgemm(),
          kernels::sfilter(), kernels::nearn(), kernels::gaussian(),
          kernels::bfs(), kernels::texPointHw(), kernels::texBilinearHw(),
          kernels::texTrilinearHw(), kernels::texPointSw(),
          kernels::texBilinearSw(), kernels::texTrilinearSw()}) {
        Program p = as.assembleAll({kernels::runtimeSource(), kernel});
        EXPECT_GT(p.size(), 200u);
        EXPECT_NO_THROW(p.symbol("main"));
        EXPECT_NO_THROW(p.symbol("_start"));
        EXPECT_NO_THROW(p.symbol("spawn_tasks"));
        // Every emitted word must decode to a valid instruction or be data.
        Instr first = instrAt(p, 0);
        EXPECT_TRUE(first.valid());
    }
}
