/**
 * @file
 * Tests for the simulation-campaign subsystem (src/sweep/): spec
 * expansion, the named-field registry, content hashing, the result
 * cache, and the determinism contract — a multi-job campaign's CSV must
 * be bit-identical to a single-job run.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/log.h"
#include "sweep/campaign.h"
#include "sweep/presets.h"
#include "sweep/report.h"
#include "sweep/spec.h"

using namespace vortex;
using namespace vortex::sweep;

namespace {

/** A fast two-axis campaign: 2 kernels x 2 geometries, test-sized. */
SweepSpec
tinySpec()
{
    SweepSpec s;
    s.name = "tiny";
    s.base = baselineConfig(1);
    s.axes = {Axis::sweep("kernel", {"vecadd", "saxpy"}),
              Axis::sweepU32("numWarps", {2, 4})};
    return s;
}

/** Unique scratch directory under the system temp dir. */
std::string
freshTempDir(const char* tag)
{
    static int serial = 0;
    std::string dir =
        (std::filesystem::temp_directory_path() /
         (std::string("vortex_sweep_test_") + tag + "_" +
          std::to_string(::getpid()) + "_" + std::to_string(serial++)))
            .string();
    std::filesystem::remove_all(dir);
    return dir;
}

} // namespace

TEST(SweepSpec, ExpansionIsRowMajorCartesianProduct)
{
    SweepSpec s = tinySpec();
    ASSERT_EQ(s.runCount(), 4u);
    std::vector<RunSpec> runs = s.expand();
    ASSERT_EQ(runs.size(), 4u);

    // Last axis varies fastest.
    EXPECT_EQ(runs[0].id(), "vecadd/2");
    EXPECT_EQ(runs[1].id(), "vecadd/4");
    EXPECT_EQ(runs[2].id(), "saxpy/2");
    EXPECT_EQ(runs[3].id(), "saxpy/4");

    // Axis assignments land on the resolved config/workload.
    EXPECT_EQ(runs[1].config.numWarps, 4u);
    EXPECT_EQ(runs[2].config.numWarps, 2u);
    EXPECT_EQ(runs[2].workload.kernel, "saxpy");
    EXPECT_EQ(runs[0].coords[0].first, "kernel");
    EXPECT_EQ(runs[0].coords[1].first, "numWarps");

    // The base machine survives on un-swept fields.
    EXPECT_EQ(runs[3].config.numThreads, 4u);
}

TEST(SweepSpec, ExpansionWithNoAxesIsOneRun)
{
    SweepSpec s;
    s.name = "single";
    ASSERT_EQ(s.expand().size(), 1u);
}

TEST(SweepSpec, MultiFieldAxisPointsApplyTogether)
{
    SweepSpec s;
    s.axes.push_back(geometryAxis());
    std::vector<RunSpec> runs = s.expand();
    ASSERT_EQ(runs.size(), 5u);
    EXPECT_EQ(runs[0].id(), "4W-4T");
    EXPECT_EQ(runs[1].config.numWarps, 2u);
    EXPECT_EQ(runs[1].config.numThreads, 8u);
}

TEST(SweepSpec, DerivedCoresFieldAppliesPaperScalingRules)
{
    core::ArchConfig cfg;
    WorkloadSpec wl;
    ASSERT_TRUE(applyField(cfg, wl, "cores", "2"));
    EXPECT_EQ(cfg.numCores, 2u);
    EXPECT_FALSE(cfg.l2Enabled);
    ASSERT_TRUE(applyField(cfg, wl, "cores", "8"));
    EXPECT_TRUE(cfg.l2Enabled);
    EXPECT_EQ(cfg.coresPerCluster, 4u);
    EXPECT_EQ(cfg.mem.numChannels, 2u);
    ASSERT_TRUE(applyField(cfg, wl, "cores", "32"));
    EXPECT_EQ(cfg.mem.numChannels, 8u);
}

TEST(SweepSpec, FieldRegistryRejectsUnknownNamesAndBadValues)
{
    core::ArchConfig cfg;
    WorkloadSpec wl;
    EXPECT_FALSE(applyField(cfg, wl, "no_such_field", "1"));
    EXPECT_TRUE(applyField(cfg, wl, "dcachePorts", "2"));
    EXPECT_EQ(cfg.dcachePorts, 2u);
    EXPECT_THROW(applyField(cfg, wl, "dcachePorts", "banana"),
                 FatalError);
    EXPECT_THROW(applyField(cfg, wl, "schedPolicy", "fifo"), FatalError);

    // Every registered field name round-trips through applyField.
    // "program" is also skipped: its value is a file path that is read
    // eagerly (so content hashing can cover the program text), and "1"
    // is not a readable file. "check" only accepts its two grammar
    // forms, exercised below.
    for (const FieldInfo& f : sweepableFields()) {
        const std::string name = f.name;
        if (name == "schedPolicy" || name == "workload" ||
            name == "kernel" || name == "texFilter" ||
            name == "program" || name == "check")
            continue;
        EXPECT_TRUE(applyField(cfg, wl, name, "1")) << name;
    }

    // The check grammar: "selfcheck", "memcmp:ADDR:LEN:FNV", or error.
    EXPECT_TRUE(applyField(cfg, wl, "check", "selfcheck"));
    EXPECT_EQ(wl.check, "selfcheck");
    EXPECT_TRUE(
        applyField(cfg, wl, "check", "memcmp:0x10000000:100:deadbeef"));
    EXPECT_THROW(applyField(cfg, wl, "check", "1"), FatalError);
    EXPECT_THROW(applyField(cfg, wl, "check", "memcmp:zz:1:2"),
                 FatalError);
    EXPECT_THROW(applyField(cfg, wl, "check", "memcmp:1:2"), FatalError);
    wl.check.clear();
}

TEST(SweepSpec, ProgramFieldReadsTheFileEagerlyAndHashesItsText)
{
    core::ArchConfig cfg;
    WorkloadSpec wl;

    // Missing files are a fatal, actionable error at apply time, not at
    // run time deep inside a campaign.
    EXPECT_THROW(applyField(cfg, wl, "program", "no/such/file.s"),
                 FatalError);

    std::string dir = freshTempDir("program");
    std::filesystem::create_directories(dir);
    std::string path = dir + "/prog.s";
    {
        std::ofstream out(path);
        out << "main:\n    ret\n";
    }
    EXPECT_TRUE(applyField(cfg, wl, "program", path));
    EXPECT_EQ(wl.program, path);
    EXPECT_EQ(wl.programSource, "main:\n    ret\n");

    // The cache key covers the program *text*, so editing the .s file
    // invalidates cached results even though the path is unchanged.
    RunSpec a;
    a.workload = wl;
    {
        std::ofstream out(path);
        out << "main:\n    nop\n    ret\n";
    }
    WorkloadSpec wl2;
    ASSERT_TRUE(applyField(cfg, wl2, "program", path));
    RunSpec b;
    b.workload = wl2;
    EXPECT_NE(a.contentHash(), b.contentHash());

    // The canonical form records both the path and the text hash; runs
    // without a program keep the exact pre-program preimage (cache
    // back-compatibility).
    EXPECT_NE(a.canonical().find("program = " + path), std::string::npos);
    EXPECT_NE(a.canonical().find("program.fnv = "), std::string::npos);
    RunSpec plain;
    EXPECT_EQ(plain.canonical().find("program"), std::string::npos);
    std::filesystem::remove_all(dir);
}

TEST(SweepSpec, ContentHashDifferentiatesConfigAndWorkload)
{
    SweepSpec s = tinySpec();
    std::vector<RunSpec> runs = s.expand();

    // Same spec expanded twice -> same hashes.
    std::vector<RunSpec> again = s.expand();
    for (size_t i = 0; i < runs.size(); ++i)
        EXPECT_EQ(runs[i].contentHash(), again[i].contentHash());

    // Every run in the matrix is distinct.
    for (size_t i = 0; i < runs.size(); ++i)
        for (size_t j = i + 1; j < runs.size(); ++j)
            EXPECT_NE(runs[i].contentHash(), runs[j].contentHash());

    // A config knob outside the axes changes the hash too.
    RunSpec tweaked = runs[0];
    tweaked.config.mshrEntries *= 2;
    EXPECT_NE(tweaked.contentHash(), runs[0].contentHash());

    // The tick backend does NOT change the hash: serial and parallel
    // simulations are bit-identical (core/tick_engine.h), so cached
    // results are shared across backends.
    RunSpec parallel = runs[0];
    parallel.config.parallelTick = true;
    parallel.config.tickThreads = 4;
    EXPECT_EQ(parallel.contentHash(), runs[0].contentHash());
}

TEST(Campaign, RunsMatrixAndReportsMetrics)
{
    CampaignResult r = Campaign().run(tinySpec());
    ASSERT_EQ(r.records.size(), 4u);
    EXPECT_EQ(r.cacheHits, 0u);
    EXPECT_EQ(r.cacheMisses, 4u);
    for (const RunRecord& rec : r.records) {
        EXPECT_TRUE(rec.result.ok);
        EXPECT_FALSE(rec.fromCache);
        EXPECT_GT(rec.result.cycles, 0u);
        EXPECT_GT(rec.result.ipc, 0.0);
        // Flattened counters from the device hierarchy are present.
        EXPECT_GT(rec.stats.get("core.retired"), 0u);
        EXPECT_GT(rec.stats.get("dcache.core_reads"), 0u);
    }
    // Coordinate lookup used by the figure reports.
    EXPECT_EQ(r.at({"saxpy", "4"}).spec.config.numWarps, 4u);
    EXPECT_THROW(r.at({"saxpy", "16"}), FatalError);
}

TEST(Campaign, CacheHitsSkipSimulationAndPreserveResults)
{
    std::string dir = freshTempDir("cache");
    CampaignOptions opts;
    opts.cacheDir = dir;

    CampaignResult cold = Campaign(opts).run(tinySpec());
    EXPECT_EQ(cold.cacheMisses, 4u);
    EXPECT_EQ(cold.cacheHits, 0u);

    CampaignResult warm = Campaign(opts).run(tinySpec());
    EXPECT_EQ(warm.cacheHits, 4u);
    EXPECT_EQ(warm.cacheMisses, 0u);
    for (size_t i = 0; i < warm.records.size(); ++i) {
        EXPECT_TRUE(warm.records[i].fromCache);
        EXPECT_EQ(warm.records[i].result.cycles,
                  cold.records[i].result.cycles);
        EXPECT_EQ(warm.records[i].result.threadInstrs,
                  cold.records[i].result.threadInstrs);
        EXPECT_DOUBLE_EQ(warm.records[i].result.ipc,
                         cold.records[i].result.ipc);
        EXPECT_EQ(warm.records[i].stats.get("core.retired"),
                  cold.records[i].stats.get("core.retired"));
    }

    // A different machine misses: the cache is content-addressed.
    SweepSpec other = tinySpec();
    other.base.mshrEntries = 4;
    CampaignResult miss = Campaign(opts).run(other);
    EXPECT_EQ(miss.cacheHits, 0u);
    EXPECT_EQ(miss.cacheMisses, 4u);

    std::filesystem::remove_all(dir);
}

TEST(Campaign, CsvIsBitIdenticalAcrossJobCountsAndCacheStates)
{
    SweepSpec spec = tinySpec();

    CampaignOptions serial;
    serial.jobs = 1;
    std::ostringstream csv1;
    Campaign(serial).run(spec).writeCsv(csv1);

    CampaignOptions parallel;
    parallel.jobs = 2;
    std::ostringstream csv2;
    Campaign(parallel).run(spec).writeCsv(csv2);
    EXPECT_EQ(csv1.str(), csv2.str());

    // And a cache-restored campaign emits the same bytes again.
    std::string dir = freshTempDir("csv");
    CampaignOptions cached;
    cached.jobs = 2;
    cached.cacheDir = dir;
    std::ostringstream csv3, csv4;
    Campaign(cached).run(spec).writeCsv(csv3);
    Campaign(cached).run(spec).writeCsv(csv4);
    EXPECT_EQ(csv1.str(), csv3.str());
    EXPECT_EQ(csv1.str(), csv4.str());
    std::filesystem::remove_all(dir);

    // Shape: header + one row per run, coords in the leading columns.
    std::istringstream lines(csv1.str());
    std::string header, row0;
    std::getline(lines, header);
    std::getline(lines, row0);
    EXPECT_EQ(header.rfind("kernel,numWarps,id,hash,ok,status,cycles,"
                           "thread_instrs,ipc",
                           0),
              0u);
    EXPECT_EQ(row0.rfind("vecadd,2,vecadd/2,", 0), 0u);
}

TEST(Campaign, JsonEmissionIsWellFormedEnoughToPin)
{
    CampaignResult r = Campaign().run(tinySpec());
    std::ostringstream js;
    r.writeJson(js);
    const std::string s = js.str();
    EXPECT_NE(s.find("\"campaign\": \"tiny\""), std::string::npos);
    EXPECT_NE(s.find("\"axes\": [\"kernel\", \"numWarps\"]"),
              std::string::npos);
    EXPECT_NE(s.find("\"id\": \"saxpy/4\""), std::string::npos);
    EXPECT_NE(s.find("\"ok\": true"), std::string::npos);
    EXPECT_EQ(std::count(s.begin(), s.end(), '{'),
              std::count(s.begin(), s.end(), '}'));
}

TEST(Campaign, FailedRunIsRecordedAndTheMatrixCompletes)
{
    // A poisoned run (unknown kernel -> host error) becomes a
    // first-class result row; the rest of the matrix still executes.
    SweepSpec s;
    s.name = "bad";
    s.axes = {Axis::sweep("kernel", {"vecadd", "no_such_kernel"})};
    CampaignResult r = Campaign().run(s);
    ASSERT_EQ(r.records.size(), 2u);
    EXPECT_TRUE(r.records[0].result.ok);
    EXPECT_EQ(r.records[0].result.status, RunStatus::Ok);
    EXPECT_FALSE(r.records[1].result.ok);
    EXPECT_EQ(r.records[1].result.status, RunStatus::HostError);
    EXPECT_FALSE(r.records[1].result.error.empty());
    EXPECT_EQ(r.failures(), 1u);

    // The status lands in the CSV row and the JSON object.
    std::ostringstream csv, js;
    r.writeCsv(csv);
    r.writeJson(js);
    EXPECT_NE(csv.str().find(",0,host_error,"), std::string::npos);
    EXPECT_NE(js.str().find("\"status\": \"host_error\""),
              std::string::npos);
}

TEST(Campaign, FailFastRestoresTheFatalBehavior)
{
    SweepSpec s;
    s.name = "bad";
    s.axes = {Axis::sweep("kernel", {"vecadd", "no_such_kernel"})};
    CampaignOptions opts;
    opts.failFast = true;
    EXPECT_THROW(Campaign(opts).run(s), FatalError);
}

TEST(Campaign, FailedRunsAreNeverCached)
{
    std::string dir = freshTempDir("failcache");
    SweepSpec s;
    s.name = "bad";
    s.axes = {Axis::sweep("kernel", {"no_such_kernel"})};
    CampaignOptions opts;
    opts.cacheDir = dir;
    CampaignResult r1 = Campaign(opts).run(s);
    EXPECT_EQ(r1.failures(), 1u);
    EXPECT_EQ(r1.cacheMisses, 1u);
    // Second campaign over the same spec: the failure re-executes (no
    // hit), and the emitted bytes match the cold run exactly.
    CampaignResult r2 = Campaign(opts).run(s);
    EXPECT_EQ(r2.cacheHits, 0u);
    EXPECT_EQ(r2.cacheMisses, 1u);
    std::ostringstream c1, c2;
    r1.writeCsv(c1);
    r2.writeCsv(c2);
    EXPECT_EQ(c1.str(), c2.str());
    std::filesystem::remove_all(dir);
}

TEST(Presets, RegistryCoversEveryPaperExperiment)
{
    for (const char* name :
         {"fig14", "fig15", "fig18", "fig19", "fig20", "fig21", "table3",
          "table4", "table5", "ablation_mshr", "ablation_banks",
          "ablation_linesize", "ablation_ibuffer", "ablation_lsu",
          "ablation_sched", "ablation_fsqrt"}) {
        const Preset* p = findPreset(name);
        ASSERT_NE(p, nullptr) << name;
        EXPECT_TRUE(p->sweep || p->table) << name;
        if (p->sweep) {
            SweepSpec spec = p->sweep({});
            EXPECT_EQ(spec.name, name);
            EXPECT_GT(spec.runCount(), 1u) << name;
            // Expansion must succeed (all field names resolve).
            EXPECT_EQ(spec.expand().size(), spec.runCount()) << name;
        } else {
            ReportTable t = p->table();
            EXPECT_FALSE(t.rows.empty()) << name;
        }
    }
    EXPECT_EQ(findPreset("no_such_preset"), nullptr);

    // Parameterized presets accept their --arg keys and reject others.
    SweepSpec big = findPreset("fig20")->sweep({{"size", "128"}});
    EXPECT_EQ(big.baseWorkload.texSize, 128u);
    EXPECT_THROW(findPreset("fig20")->sweep({{"bogus", "1"}}),
                 FatalError);
    SweepSpec paper = findPreset("fig21")->sweep({{"paper", "1"}});
    EXPECT_EQ(paper.base.numCores, 16u);
    EXPECT_THROW(findPreset("fig18")->sweep({{"size", "1"}}), FatalError);
}

TEST(Presets, Fig18MatrixMatchesTheBenchHarnessConfigs)
{
    // The fig18 preset must reproduce bench/fig18_scaling's machines:
    // baselineConfig(c) with the problem scaled x2 from 4 cores.
    std::vector<RunSpec> runs = fig18Spec().expand();
    ASSERT_EQ(runs.size(), 7u * 5u);
    const RunSpec& r16 = runs[4]; // sgemm x 16 cores
    EXPECT_EQ(r16.id(), "sgemm/16");
    EXPECT_EQ(r16.config.numCores, 16u);
    EXPECT_TRUE(r16.config.l2Enabled);
    EXPECT_EQ(r16.config.mem.numChannels, 2u);
    EXPECT_EQ(r16.workload.scale, 2u);
    const RunSpec& r1 = runs[0];
    EXPECT_EQ(r1.config.numCores, 1u);
    EXPECT_FALSE(r1.config.l2Enabled);
    EXPECT_EQ(r1.workload.scale, 1u);
}

TEST(Report, TableRendersAlignedTextAndCsv)
{
    ReportTable t;
    t.title = "T";
    t.columns = {"a", "b"};
    t.addRow({"x", "1,2"});
    t.notes.push_back("note");

    std::ostringstream text;
    t.print(text);
    EXPECT_NE(text.str().find("==== T ===="), std::string::npos);
    EXPECT_NE(text.str().find("note"), std::string::npos);

    std::ostringstream csv;
    t.writeCsv(csv);
    EXPECT_EQ(csv.str(), "a,b\nx,\"1,2\"\n");
}
