/**
 * @file
 * Campaign-fabric tests: shard partitioning (disjoint, exhaustive,
 * balanced), cache merge/import, byte-identical sharded reconstruction,
 * the CostModel calibration path, the [fabric] spec key, the submission
 * service's dedup contract, and the CLI compat guarantees (legacy flag
 * spellings vs subcommands).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/log.h"
#include "common/outcome.h"
#include "sweep/cache.h"
#include "sweep/campaign.h"
#include "sweep/cli.h"
#include "sweep/fabric.h"
#include "sweep/presets.h"
#include "sweep/report.h"
#include "sweep/specfile.h"

using namespace vortex;
using namespace vortex::sweep;

namespace {

/** Unique scratch directory under the system temp dir. */
std::string
freshTempDir(const char* tag)
{
    static int serial = 0;
    std::string dir =
        (std::filesystem::temp_directory_path() /
         (std::string("vortex_fabric_test_") + tag + "_" +
          std::to_string(::getpid()) + "_" + std::to_string(serial++)))
            .string();
    std::filesystem::remove_all(dir);
    return dir;
}

/** A small but non-trivial matrix: 2 kernels x 2 machines = 4 runs. */
SweepSpec
tinySpec()
{
    SweepSpec s;
    s.name = "fabric-tiny";
    s.base = baselineConfig(1);
    s.axes = {Axis::sweep("kernel", {"vecadd", "saxpy"}),
              Axis::sweepU32("numWarps", {2, 4})};
    return s;
}

/** The same matrix as TOML text, for service submissions. */
const char* kTinySpecToml = "name = \"fabric-tiny\"\n"
                            "[[axes]]\n"
                            "name = \"kernel\"\n"
                            "[[axes.points]]\n"
                            "label = \"vecadd\"\n"
                            "set.kernel = \"vecadd\"\n"
                            "[[axes.points]]\n"
                            "label = \"saxpy\"\n"
                            "set.kernel = \"saxpy\"\n"
                            "[[axes]]\n"
                            "name = \"numWarps\"\n"
                            "[[axes.points]]\n"
                            "label = \"2\"\n"
                            "set.numWarps = \"2\"\n"
                            "[[axes.points]]\n"
                            "label = \"4\"\n"
                            "set.numWarps = \"4\"\n";

std::string
csvOf(const CampaignResult& r)
{
    std::ostringstream os;
    r.writeCsv(os);
    return os.str();
}

std::string
jsonOf(const CampaignResult& r)
{
    std::ostringstream os;
    r.writeJson(os);
    return os.str();
}

/** A non-terminating guest: runs until its 2M-cycle watchdog, so it
 *  holds a service job slot for a visible-but-bounded while. */
const char* kHangSpecToml = "name = \"fabric-hang\"\n"
                            "[workload]\n"
                            "kernel = \"hang\"\n"
                            "program = \"examples/kernels/hang.s\"\n"
                            "check = \"selfcheck\"\n"
                            "[faults]\n"
                            "watchdog = 2000000\n";

/** Raw AF_UNIX client connection (retries while the service binds);
 *  -1 on failure. */
int
rawConnect(const std::string& path)
{
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    for (int i = 0; i < 100; ++i) {
        if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) == 0)
            return fd;
        ::usleep(20 * 1000);
    }
    ::close(fd);
    return -1;
}

/** Blocking single-line NDJSON read from a raw fd ("" on EOF). */
std::string
rawReadLine(int fd)
{
    std::string line;
    char c;
    while (::recv(fd, &c, 1, 0) == 1) {
        if (c == '\n')
            return line;
        line += c;
    }
    return line;
}

bool
rawSendLine(int fd, const std::string& line)
{
    std::string out = line + "\n";
    return ::send(fd, out.data(), out.size(), MSG_NOSIGNAL) ==
           static_cast<ssize_t>(out.size());
}

} // namespace

//
// Shard partitioning.
//

TEST(Shard, AssignmentIsDisjointExhaustiveAndBalanced)
{
    std::vector<RunSpec> runs = tinySpec().expand();
    ASSERT_EQ(runs.size(), 4u);
    for (uint32_t n : {1u, 2u, 3u, 4u, 7u}) {
        std::vector<uint32_t> shardOf = shardAssignment(runs, n);
        ASSERT_EQ(shardOf.size(), runs.size()) << n << " shards";
        std::vector<size_t> perShard(n, 0);
        for (uint32_t s : shardOf) {
            ASSERT_LT(s, n);
            ++perShard[s];
        }
        // Every run lands on exactly one shard (by construction) and the
        // union covers the matrix; with n <= runs, LPT greediness also
        // means no shard is left empty.
        size_t total = 0;
        for (size_t c : perShard)
            total += c;
        EXPECT_EQ(total, runs.size());
        if (n <= runs.size()) {
            for (uint32_t s = 0; s < n; ++s)
                EXPECT_GT(perShard[s], 0u) << "shard " << s << "/" << n;
        }
    }
    EXPECT_THROW(shardAssignment(runs, 0), FatalError);
}

TEST(Shard, AssignmentIsDeterministic)
{
    std::vector<RunSpec> runs = findPreset("perf_smoke")->sweep({}).expand();
    EXPECT_EQ(shardAssignment(runs, 3), shardAssignment(runs, 3));
}

TEST(Shard, CampaignShardsArePairwiseDisjointAndCoverTheMatrix)
{
    SweepSpec spec = tinySpec();
    const uint32_t N = 3;
    std::set<std::string> seen;
    size_t total = 0;
    for (uint32_t i = 0; i < N; ++i) {
        CampaignOptions opts;
        opts.shardIndex = i;
        opts.shardCount = N;
        CampaignResult part = Campaign(opts).run(spec);
        for (const RunRecord& rec : part.records) {
            // Disjoint: no run id appears in two shards.
            EXPECT_TRUE(seen.insert(rec.spec.id()).second) << rec.spec.id();
        }
        total += part.records.size();
    }
    EXPECT_EQ(total, spec.runCount());

    CampaignOptions bad;
    bad.shardIndex = N;
    bad.shardCount = N;
    EXPECT_THROW(Campaign(bad).run(spec), FatalError);
}

//
// Cache merge + byte-identical sharded reconstruction.
//

TEST(CacheMerge, ShardedCachesReconstructTheUnshardedBytes)
{
    SweepSpec spec = tinySpec();

    // The ground truth: one host, no cache.
    CampaignResult direct = Campaign(CampaignOptions{}).run(spec);
    ASSERT_EQ(direct.records.size(), 4u);

    // Two hosts, each simulating its own disjoint shard into its own
    // cache directory.
    std::vector<std::string> shardDirs;
    for (uint32_t i = 0; i < 2; ++i) {
        CampaignOptions opts;
        opts.cacheDir = freshTempDir(("shard" + std::to_string(i)).c_str());
        opts.shardIndex = i;
        opts.shardCount = 2;
        CampaignResult part = Campaign(opts).run(spec);
        EXPECT_EQ(part.cacheHits, 0u);
        EXPECT_EQ(part.cacheMisses, part.records.size());
        shardDirs.push_back(opts.cacheDir);
    }

    // Ship both caches home and merge them.
    std::string merged = freshTempDir("merged");
    CacheStore store(merged);
    size_t imported = 0;
    for (const std::string& src : shardDirs) {
        CacheMergeStats s = store.mergeFrom(src);
        EXPECT_EQ(s.rejected, 0u);
        EXPECT_EQ(s.skipped, 0u);
        imported += s.imported;
    }
    EXPECT_EQ(imported, 4u);
    EXPECT_EQ(store.entries().size(), 4u);

    // Re-running the full spec against the merged store is a 100%-hit,
    // byte-identical reconstruction of the single-host campaign.
    CampaignOptions warm;
    warm.cacheDir = merged;
    CampaignResult rebuilt = Campaign(warm).run(spec);
    EXPECT_EQ(rebuilt.cacheHits, 4u);
    EXPECT_EQ(rebuilt.cacheMisses, 0u);
    EXPECT_EQ(csvOf(rebuilt), csvOf(direct));
    EXPECT_EQ(jsonOf(rebuilt), jsonOf(direct));

    // Merging again is a no-op: every hash is already present.
    CacheMergeStats again = store.mergeFrom(shardDirs[0]);
    EXPECT_EQ(again.imported, 0u);
    EXPECT_GT(again.skipped, 0u);

    for (const std::string& d : shardDirs)
        std::filesystem::remove_all(d);
    std::filesystem::remove_all(merged);
}

TEST(CacheMerge, RejectsInvalidEntriesAndForeignHashes)
{
    std::string src = freshTempDir("badsrc");
    std::string dst = freshTempDir("baddst");
    std::filesystem::create_directories(src);

    // A truncated entry, a wrong-magic entry, and an entry whose
    // recorded hash does not match its file name.
    std::ofstream(src + "/0123456789abcdef.run")
        << "vortex-sweep-cache v2\nhash 0123456789abcdef\ncycles 5\n";
    std::ofstream(src + "/fedcba9876543210.run") << "not a cache entry\n";
    std::ofstream(src + "/00000000000000aa.run")
        << "vortex-sweep-cache v2\nhash 00000000000000bb\ncycles 1\nend\n";

    CacheStore store(dst);
    CacheMergeStats s = store.mergeFrom(src);
    EXPECT_EQ(s.imported, 0u);
    EXPECT_EQ(s.rejected, 3u);
    EXPECT_TRUE(store.entries().empty());

    EXPECT_THROW(store.mergeFrom(src + "/nope"), FatalError);
    EXPECT_THROW(CacheStore("").mergeFrom(src), FatalError);
    EXPECT_THROW(store.mergeFrom(dst), FatalError); // self-merge

    std::filesystem::remove_all(src);
    std::filesystem::remove_all(dst);
}

//
// Cost-model calibration.
//

TEST(CostModel, CalibratesFromCacheProvenanceWithStaticFallback)
{
    CostModel raw;
    EXPECT_FALSE(raw.calibrated());

    SweepSpec spec = tinySpec();
    std::vector<RunSpec> runs = spec.expand();
    // Uncalibrated: exactly the static heuristic.
    for (const RunSpec& r : runs)
        EXPECT_DOUBLE_EQ(raw.cost(r), estimateRunCost(r));

    std::string dir = freshTempDir("cal");
    CampaignOptions opts;
    opts.cacheDir = dir;
    Campaign(opts).run(spec);

    CacheStore store(dir);
    // The new provenance lines landed on disk...
    for (const CacheEntryInfo& e : store.entries()) {
        EXPECT_FALSE(e.kernel.empty());
        EXPECT_GT(e.estUnits, 0.0);
        EXPECT_GE(e.hostSeconds, 0.0);
    }
    // ...and the fitted model prices recorded kernels in seconds.
    CostModel model = CostModel::fromCache(store);
    EXPECT_TRUE(model.calibrated());
    EXPECT_EQ(model.sampleCount(), 4u);
    for (const RunSpec& r : runs) {
        double c = model.cost(r);
        EXPECT_GE(c, 0.0);
        EXPECT_TRUE(std::isfinite(c));
    }

    // A kernel absent from the cache still gets a finite price (the
    // global-scale fallback), so mixed matrices schedule sanely.
    SweepSpec other = tinySpec();
    other.axes[0] = Axis::sweep("kernel", {"sgemm"});
    for (const RunSpec& r : other.expand())
        EXPECT_GT(model.cost(r), 0.0);

    std::filesystem::remove_all(dir);
}

//
// The [fabric] spec key.
//

TEST(FabricSpecKey, ParsesRoundTripsAndNeverEntersTheContentHash)
{
    std::string toml = std::string(kTinySpecToml) +
                       "[fabric]\nshard = \"1/3\"\n";
    SweepSpec sharded = parseSpecText(toml, "sharded.toml");
    EXPECT_EQ(sharded.shardIndex, 1u);
    EXPECT_EQ(sharded.shardCount, 3u);

    // Execution metadata only: the sharded spec's matrix hashes equal
    // the unsharded twin's, so they share cache entries.
    SweepSpec plain = parseSpecText(kTinySpecToml, "plain.toml");
    std::vector<RunSpec> a = sharded.expand(), b = plain.expand();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].contentHash(), b[i].contentHash());

    // Canonical dump round-trips the annotation as a fixpoint...
    std::string once = specToToml(sharded);
    EXPECT_NE(once.find("[fabric]"), std::string::npos);
    EXPECT_NE(once.find("shard = \"1/3\""), std::string::npos);
    EXPECT_EQ(once, specToToml(parseSpecText(once, "again.toml")));
    // ...and an unsharded spec never grows a [fabric] block (shipped
    // preset dumps stay byte-identical).
    EXPECT_EQ(specToToml(plain).find("[fabric]"), std::string::npos);

    // Bad selectors are rejected at parse time, with a position.
    EXPECT_THROW(parseSpecText(std::string(kTinySpecToml) +
                                   "[fabric]\nshard = \"3/3\"\n",
                               "bad.toml"),
                 SpecParseError);
    EXPECT_THROW(parseSpecText(std::string(kTinySpecToml) +
                                   "[fabric]\nshard = \"nope\"\n",
                               "bad.toml"),
                 SpecParseError);
    EXPECT_THROW(parseShardValue("--shard", "1", sharded.shardIndex,
                                 sharded.shardCount),
                 FatalError);
}

//
// The submission service.
//

TEST(Service, ConcurrentIdenticalSubmissionsCostOneSimulationEach)
{
    std::string dir = freshTempDir("svc");
    std::filesystem::create_directories(dir);
    ServiceOptions opts;
    opts.socketPath = dir + "/fabric.sock";
    opts.cacheDir = dir + "/cache";
    opts.jobs = 2;
    Service service(opts);
    service.start();
    ASSERT_TRUE(service.running());

    // Two clients race the same 4-run spec. Between memo hits and
    // in-flight joins, only 4 simulations may happen in total.
    SubmitResult r1, r2;
    std::thread t1([&] { r1 = submitSpecText(opts.socketPath, kTinySpecToml); });
    std::thread t2([&] { r2 = submitSpecText(opts.socketPath, kTinySpecToml); });
    t1.join();
    t2.join();
    ASSERT_TRUE(r1.ok) << r1.error;
    ASSERT_TRUE(r2.ok) << r2.error;
    EXPECT_EQ(r1.runs, 4u);
    EXPECT_EQ(r2.runs, 4u);
    EXPECT_EQ(r1.campaign, "fabric-tiny");
    EXPECT_EQ(r1.simulated + r2.simulated, 4u);
    EXPECT_EQ(r1.simulated + r1.cacheHits + r1.dedupJoins, 4u);
    EXPECT_EQ(r2.simulated + r2.cacheHits + r2.dedupJoins, 4u);

    // A third, sequential, identical submission is served entirely
    // without simulating.
    SubmitResult r3 = submitSpecText(opts.socketPath, kTinySpecToml);
    ASSERT_TRUE(r3.ok) << r3.error;
    EXPECT_EQ(r3.simulated, 0u);
    EXPECT_EQ(r3.cacheHits, 4u);

    ServiceStats stats = service.stats();
    EXPECT_EQ(stats.submissions, 3u);
    EXPECT_EQ(stats.runsRequested, 12u);
    EXPECT_EQ(stats.simulated, 4u);
    EXPECT_EQ(stats.memoHits + stats.cacheHits + stats.dedupJoins, 8u);
    EXPECT_EQ(stats.errors, 0u);

    // The simulations landed in the shared cache, so a plain batch
    // campaign over the same spec is now a 100% hit.
    service.stop();
    EXPECT_FALSE(service.running());
    CampaignOptions warm;
    warm.cacheDir = opts.cacheDir;
    CampaignResult rebuilt =
        Campaign(warm).run(parseSpecText(kTinySpecToml, "tiny.toml"));
    EXPECT_EQ(rebuilt.cacheHits, 4u);
    EXPECT_EQ(rebuilt.cacheMisses, 0u);

    std::filesystem::remove_all(dir);
}

TEST(Service, RenamedSubmissionsStillDedupAndErrorsAreReported)
{
    std::string dir = freshTempDir("svc2");
    std::filesystem::create_directories(dir);
    ServiceOptions opts;
    opts.socketPath = dir + "/fabric.sock";
    Service service(opts); // no cache dir: memo-only dedup
    service.start();

    SubmitResult a = submitSpecText(opts.socketPath, kTinySpecToml, "first");
    ASSERT_TRUE(a.ok) << a.error;
    EXPECT_EQ(a.campaign, "first");
    EXPECT_EQ(a.simulated, 4u);
    // The campaign name is not part of the run identity: a renamed
    // twin is served from the memo.
    SubmitResult b = submitSpecText(opts.socketPath, kTinySpecToml, "second");
    ASSERT_TRUE(b.ok) << b.error;
    EXPECT_EQ(b.simulated, 0u);
    EXPECT_EQ(b.cacheHits, 4u);

    // Events arrive as well-formed NDJSON with a final done.
    ASSERT_FALSE(b.events.empty());
    EXPECT_NE(b.events.front().find("\"accepted\""), std::string::npos);
    EXPECT_NE(b.events.back().find("\"done\""), std::string::npos);

    // A spec that does not parse answers with an error event, and the
    // connection stays usable for the service (stats record it).
    SubmitResult bad =
        submitSpecText(opts.socketPath, "definitely not a spec [");
    EXPECT_FALSE(bad.ok);
    EXPECT_FALSE(bad.error.empty());
    EXPECT_EQ(service.stats().errors, 1u);

    service.stop();
    std::filesystem::remove_all(dir);
}

TEST(Service, MalformedRequestLinesLeaveTheConnectionUsable)
{
    std::string dir = freshTempDir("svcbad");
    std::filesystem::create_directories(dir);
    ServiceOptions opts;
    opts.socketPath = dir + "/fabric.sock";
    Service service(opts);
    service.start();

    int fd = rawConnect(opts.socketPath);
    ASSERT_GE(fd, 0);

    // Garbage, valid-JSON-without-op, and unknown-op lines each answer
    // with an error event — and none of them kill the connection.
    ASSERT_TRUE(rawSendLine(fd, "this is not NDJSON {{{"));
    EXPECT_NE(rawReadLine(fd).find("\"error\""), std::string::npos);
    ASSERT_TRUE(rawSendLine(fd, "{\"spec\": \"x\"}"));
    EXPECT_NE(rawReadLine(fd).find("missing the \\\"op\\\""),
              std::string::npos);
    ASSERT_TRUE(rawSendLine(fd, "{\"op\": \"frobnicate\"}"));
    EXPECT_NE(rawReadLine(fd).find("unknown op"), std::string::npos);
    ASSERT_TRUE(rawSendLine(fd, "{\"op\": \"ping\"}"));
    EXPECT_NE(rawReadLine(fd).find("\"pong\""), std::string::npos);

    // The same poisoned connection still carries a full submission.
    ASSERT_TRUE(rawSendLine(fd, std::string("{\"op\": \"submit\", "
                                            "\"spec\": \"") +
                                    jsonEscape(kTinySpecToml) + "\"}"));
    std::string line;
    bool done = false;
    while (!(line = rawReadLine(fd)).empty()) {
        ASSERT_EQ(line.find("\"error\""), std::string::npos) << line;
        if (line.find("\"done\"") != std::string::npos) {
            done = true;
            break;
        }
    }
    EXPECT_TRUE(done);
    ::close(fd);

    EXPECT_TRUE(service.running());
    service.stop();
    std::filesystem::remove_all(dir);
}

TEST(Service, ClientDisconnectMidRunDoesNotKillTheService)
{
    std::string dir = freshTempDir("svcgone");
    std::filesystem::create_directories(dir);
    ServiceOptions opts;
    opts.socketPath = dir + "/fabric.sock";
    Service service(opts);
    service.start();

    // Submit the 2M-cycle hang guest, read the accepted event, then
    // vanish mid-simulation.
    int fd = rawConnect(opts.socketPath);
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(rawSendLine(fd, std::string("{\"op\": \"submit\", "
                                            "\"spec\": \"") +
                                    jsonEscape(kHangSpecToml) + "\"}"));
    EXPECT_NE(rawReadLine(fd).find("\"accepted\""), std::string::npos);
    ::close(fd);

    // The daemon keeps running and serves the next client normally.
    SubmitResult r = submitSpecText(opts.socketPath, kTinySpecToml);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.runs, 4u);
    EXPECT_TRUE(service.running());

    service.stop();
    std::filesystem::remove_all(dir);
}

TEST(Service, DeadlineAbortsAHungSimulationAsATimeoutRow)
{
    std::string dir = freshTempDir("svcdl");
    std::filesystem::create_directories(dir);
    ServiceOptions opts;
    opts.socketPath = dir + "/fabric.sock";
    opts.cacheDir = dir + "/cache";
    opts.runDeadlineSeconds = 1;
    Service service(opts);
    service.start();

    // No [faults] watchdog this time: only the service's wall-clock
    // deadline stands between the spinning guest and the runtime's
    // 400M-cycle budget.
    std::string noWatchdog = "name = \"fabric-hang\"\n"
                             "[workload]\n"
                             "kernel = \"hang\"\n"
                             "program = \"examples/kernels/hang.s\"\n"
                             "check = \"selfcheck\"\n";
    SubmitResult r = submitSpecText(opts.socketPath, noWatchdog);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("timeout"), std::string::npos) << r.error;
    bool sawTimeoutRun = false;
    for (const std::string& ev : r.events)
        if (ev.find("\"event\": \"run\"") != std::string::npos &&
            ev.find("\"status\": \"timeout\"") != std::string::npos)
            sawTimeoutRun = true;
    EXPECT_TRUE(sawTimeoutRun);
    EXPECT_EQ(service.stats().errors, 1u);

    // Aborted runs are failures: nothing landed in the cache, and the
    // daemon is still healthy.
    EXPECT_TRUE(CacheStore(opts.cacheDir).entries().empty());
    EXPECT_TRUE(service.running());
    SubmitResult ok = submitSpecText(opts.socketPath, kTinySpecToml);
    EXPECT_TRUE(ok.ok) << ok.error;

    service.stop();
    std::filesystem::remove_all(dir);
}

TEST(Submit, TimeoutGivesUpOnASilentService)
{
    // A socket that listens but never answers: connect succeeds via the
    // backlog, then the service-side accept never comes.
    std::string dir = freshTempDir("svcmute");
    std::filesystem::create_directories(dir);
    std::string path = dir + "/mute.sock";
    int lfd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(lfd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    ASSERT_EQ(::bind(lfd, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    ASSERT_EQ(::listen(lfd, 4), 0);

    SubmitResult r = submitSpecText(path, kTinySpecToml, "", nullptr,
                                    /*timeoutSeconds=*/1);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("timed out"), std::string::npos) << r.error;

    ::close(lfd);
    std::filesystem::remove_all(dir);
}

TEST(Serve, SigtermMidSimulationShutsDownCleanly)
{
    std::string dir = freshTempDir("svcterm");
    std::filesystem::create_directories(dir);
    ServiceOptions opts;
    opts.socketPath = dir + "/fabric.sock";
    opts.cacheDir = dir + "/cache";

    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // Child: the foreground `vortex_sweep serve` process.
        ::_exit(serveMain(opts));
    }

    // Feed it a long simulation, give the run a moment to start, then
    // deliver SIGTERM mid-flight.
    std::thread client([&] {
        submitSpecText(opts.socketPath, kHangSpecToml, "", nullptr,
                       /*timeoutSeconds=*/30);
    });
    ::usleep(300 * 1000);
    ASSERT_EQ(::kill(pid, SIGTERM), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    client.join();

    // Clean shutdown: exit 0, the socket unlinked, and no torn entry or
    // leftover temp file in the cache directory.
    EXPECT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
    EXPECT_FALSE(std::filesystem::exists(opts.socketPath));
    if (std::filesystem::exists(opts.cacheDir)) {
        for (const auto& de :
             std::filesystem::directory_iterator(opts.cacheDir))
            EXPECT_EQ(de.path().filename().string().find(".tmp."),
                      std::string::npos)
                << de.path();
        EXPECT_EQ(CacheStore(opts.cacheDir).prune(/*olderThanDays=*/1000.0),
                  0u);
    }
    std::filesystem::remove_all(dir);
}

//
// Crash-safe cache maintenance.
//

TEST(CachePrune, SweepsTornEntriesRegardlessOfAge)
{
    std::string dir = freshTempDir("torn");
    SweepSpec spec = tinySpec();
    CampaignOptions opts;
    opts.cacheDir = dir;
    Campaign(opts).run(spec);
    CacheStore store(dir);
    ASSERT_EQ(store.entries().size(), 4u);

    // A crash mid-write leaves an entry without its `end` terminator
    // (plus possibly a stale temp file). Readers already treat it as a
    // miss; prune must sweep it even when an --older-than window keeps
    // every healthy entry.
    std::ofstream(dir + "/00000000deadbeef.run")
        << "vortex-sweep-cache v2\nhash 00000000deadbeef\ncycles 7\n";
    std::ofstream(dir + "/1111111111111111.run.tmp.999.1") << "partial";
    EXPECT_EQ(store.entries().size(), 4u); // torn entry never listed

    RunRecord out;
    EXPECT_EQ(store.prune(/*olderThanDays=*/1000.0), 1u);
    EXPECT_FALSE(std::filesystem::exists(dir + "/00000000deadbeef.run"));
    EXPECT_FALSE(
        std::filesystem::exists(dir + "/1111111111111111.run.tmp.999.1"));
    EXPECT_EQ(store.entries().size(), 4u); // healthy entries survive
    for (const RunSpec& r : spec.expand())
        EXPECT_TRUE(store.load(r, out)) << r.id();

    EXPECT_EQ(store.prune(), 4u); // no age filter: everything goes
    EXPECT_TRUE(store.entries().empty());
    std::filesystem::remove_all(dir);
}

TEST(Service, ClientShutdownRequestIsAcknowledged)
{
    std::string dir = freshTempDir("svc3");
    std::filesystem::create_directories(dir);
    ServiceOptions opts;
    opts.socketPath = dir + "/fabric.sock";
    Service service(opts);
    service.start();
    EXPECT_FALSE(service.shutdownRequestedByClient());
    requestShutdown(opts.socketPath);
    EXPECT_TRUE(service.shutdownRequestedByClient());
    service.stop();
    // The socket file is gone; a new service can take the same path.
    EXPECT_FALSE(std::filesystem::exists(opts.socketPath));
    std::filesystem::remove_all(dir);
}

//
// CLI compatibility: legacy flat flags vs subcommands.
//

TEST(Cli, LegacyFlagSpellingsKeepWorking)
{
    EXPECT_EQ(cliMain({"--list"}), 0);
    EXPECT_EQ(cliMain({"--fields"}), 0);
    EXPECT_EQ(cliMain({"-h"}), 0);
    EXPECT_EQ(cliMain({"--definitely-not-a-flag"}), 2);
    EXPECT_EQ(cliMain({}), 2); // "nothing to do" is a usage error

    // The pre-subcommand cache maintenance spelling.
    std::string dir = freshTempDir("clicache");
    SweepSpec spec = tinySpec();
    CampaignOptions opts;
    opts.cacheDir = dir;
    Campaign(opts).run(spec);
    EXPECT_EQ(CacheStore(dir).entries().size(), 4u);
    EXPECT_EQ(cliMain({"--cache-prune", "--cache", dir}), 0);
    EXPECT_TRUE(CacheStore(dir).entries().empty());
    std::filesystem::remove_all(dir);
}

TEST(Cli, RunSubcommandAndLegacyGrammarProduceIdenticalBytes)
{
    std::string outLegacy = freshTempDir("cli1") + ".csv";
    std::string outSub = freshTempDir("cli2") + ".csv";
    std::vector<std::string> common = {
        "--axis", "kernel=vecadd,saxpy", "--set",  "numWarps=2",
        "--name", "clicompat",           "--quiet"};

    std::vector<std::string> legacy = common;
    legacy.insert(legacy.end(), {"--csv", outLegacy});
    std::vector<std::string> sub = {"run"};
    sub.insert(sub.end(), common.begin(), common.end());
    sub.insert(sub.end(), {"--csv", outSub});

    ASSERT_EQ(cliMain(legacy), 0);
    ASSERT_EQ(cliMain(sub), 0);

    auto slurp = [](const std::string& p) {
        std::ifstream in(p, std::ios::binary);
        std::ostringstream buf;
        buf << in.rdbuf();
        return buf.str();
    };
    std::string a = slurp(outLegacy), b = slurp(outSub);
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b);
    std::filesystem::remove(outLegacy);
    std::filesystem::remove(outSub);
}

TEST(Cli, SpecsDumpMatchesLegacyDumpSpecAndCarriesTheShard)
{
    std::string outLegacy = freshTempDir("dump1") + ".toml";
    std::string outSub = freshTempDir("dump2") + ".toml";
    ASSERT_EQ(cliMain({"--preset", "perf_smoke", "--dump-spec", outLegacy}),
              0);
    ASSERT_EQ(cliMain({"specs", "dump", "--preset", "perf_smoke", outSub}),
              0);
    auto slurp = [](const std::string& p) {
        std::ifstream in(p, std::ios::binary);
        std::ostringstream buf;
        buf << in.rdbuf();
        return buf.str();
    };
    EXPECT_EQ(slurp(outLegacy), slurp(outSub));
    EXPECT_EQ(slurp(outLegacy).find("[fabric]"), std::string::npos);

    // --shard folds into the dump, and the dump parses back sharded.
    std::string outShard = freshTempDir("dump3") + ".toml";
    ASSERT_EQ(cliMain({"specs", "dump", "--preset", "perf_smoke", "--shard",
                       "1/2", outShard}),
              0);
    SweepSpec parsed = parseSpecFile(outShard);
    EXPECT_EQ(parsed.shardIndex, 1u);
    EXPECT_EQ(parsed.shardCount, 2u);

    // An invalid shard selector is a fatal diagnostic, not a crash.
    EXPECT_EQ(cliMain({"run", "--preset", "perf_smoke", "--shard", "2/2",
                       "--no-csv", "--quiet"}),
              1);

    std::filesystem::remove(outLegacy);
    std::filesystem::remove(outSub);
    std::filesystem::remove(outShard);
}

TEST(Cli, CacheSubcommandsListMergePrune)
{
    // Build two disjoint shard caches via the CLI, then merge them via
    // the CLI — the user-facing face of the reconstruction workflow.
    std::string s0 = freshTempDir("cms0");
    std::string s1 = freshTempDir("cms1");
    std::string merged = freshTempDir("cmdst");
    std::vector<std::string> base = {"run",   "--axis", "kernel=vecadd,saxpy",
                                     "--set", "numWarps=2", "--no-csv",
                                     "--quiet"};
    std::vector<std::string> run0 = base;
    run0.insert(run0.end(), {"--cache", s0, "--shard", "0/2"});
    std::vector<std::string> run1 = base;
    run1.insert(run1.end(), {"--cache", s1, "--shard", "1/2"});
    ASSERT_EQ(cliMain(run0), 0);
    ASSERT_EQ(cliMain(run1), 0);

    EXPECT_EQ(cliMain({"cache", "merge", merged, s0, s1}), 0);
    EXPECT_EQ(CacheStore(merged).entries().size(), 2u);
    EXPECT_EQ(cliMain({"cache", "list", merged}), 0);
    EXPECT_EQ(cliMain({"cache", "prune", merged}), 0);
    EXPECT_TRUE(CacheStore(merged).entries().empty());

    EXPECT_EQ(cliMain({"cache", "frobnicate", merged}), 1);
    EXPECT_EQ(cliMain({"cache", "merge", merged}), 1);

    std::filesystem::remove_all(s0);
    std::filesystem::remove_all(s1);
    std::filesystem::remove_all(merged);
}
