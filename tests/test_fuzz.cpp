/**
 * @file
 * Pinned differential-fuzzing corpus: 100 seeded random guest programs
 * must assemble through the object pipeline, pass the static analyzer
 * with zero diagnostics, and run bit-identically on the serial and
 * parallel tick backends. Deterministic by construction (Xorshift only),
 * so a failure here is a real regression in the toolchain, the
 * analyzer, or a tick backend — rerun `vortex_fuzz --dump <seed>` to see
 * the offending program.
 */

#include <gtest/gtest.h>

#include "fuzz/fuzz.h"

using namespace vortex;
using namespace vortex::fuzz;

TEST(Fuzz, GeneratorIsDeterministicPerSeed)
{
    GeneratedKernel a = generateKernel(42);
    GeneratedKernel b = generateKernel(42);
    EXPECT_EQ(a.source, b.source);
    EXPECT_EQ(a.numTasks, b.numTasks);
    EXPECT_NE(a.source, generateKernel(43).source);
    EXPECT_GE(a.numTasks, 1u);
    EXPECT_LE(a.numTasks, GenOptions{}.maxTasks);
}

TEST(Fuzz, GeneratedProgramsAreStructurallyWellFormed)
{
    // Spot invariants the generator guarantees by construction: no bar
    // in task bodies (tasks run under divergence) and balanced
    // split/join counts.
    for (uint64_t seed : {1ull, 7ull, 99ull, 12345ull}) {
        GeneratedKernel k = generateKernel(seed);
        EXPECT_EQ(k.source.find("vx_bar"), std::string::npos) << seed;
        size_t splits = 0, joins = 0, pos = 0;
        while ((pos = k.source.find("vx_split", pos)) !=
               std::string::npos) {
            ++splits;
            pos += 8;
        }
        pos = 0;
        while ((pos = k.source.find("vx_join", pos)) !=
               std::string::npos) {
            ++joins;
            pos += 7;
        }
        EXPECT_EQ(splits, joins) << seed;
    }
}

TEST(Fuzz, HundredSeedsRunBitIdenticalAcrossTickBackends)
{
    core::ArchConfig cfg = fuzzConfig();
    for (uint64_t seed = 1; seed <= 100; ++seed) {
        FuzzResult r = runDifferential(seed, cfg);
        ASSERT_TRUE(r.ok) << "seed " << seed << ":\n"
                          << r.detail << "\nprogram:\n"
                          << r.source;
        EXPECT_GT(r.cycles, 0u) << seed;
        EXPECT_GT(r.threadInstrs, 0u) << seed;
    }
}
