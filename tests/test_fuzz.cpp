/**
 * @file
 * Pinned differential-fuzzing corpus: 100 seeded random guest programs
 * must assemble through the object pipeline, pass the static analyzer
 * with zero diagnostics, and run bit-identically on the serial and
 * parallel tick backends. Deterministic by construction (Xorshift only),
 * so a failure here is a real regression in the toolchain, the
 * analyzer, or a tick backend — rerun `vortex_fuzz --dump <seed>` to see
 * the offending program.
 */

#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

#include "fuzz/coverage.h"
#include "fuzz/fuzz.h"

using namespace vortex;
using namespace vortex::fuzz;

TEST(Fuzz, GeneratorIsDeterministicPerSeed)
{
    GeneratedKernel a = generateKernel(42);
    GeneratedKernel b = generateKernel(42);
    EXPECT_EQ(a.source, b.source);
    EXPECT_EQ(a.numTasks, b.numTasks);
    EXPECT_NE(a.source, generateKernel(43).source);
    EXPECT_GE(a.numTasks, 1u);
    EXPECT_LE(a.numTasks, GenOptions{}.maxTasks);
}

TEST(Fuzz, GeneratedProgramsAreStructurallyWellFormed)
{
    // Spot invariants the generator guarantees by construction: no bar
    // in task bodies (tasks run under divergence) and balanced
    // split/join counts.
    for (uint64_t seed : {1ull, 7ull, 99ull, 12345ull}) {
        GeneratedKernel k = generateKernel(seed);
        EXPECT_EQ(k.source.find("vx_bar"), std::string::npos) << seed;
        size_t splits = 0, joins = 0, pos = 0;
        while ((pos = k.source.find("vx_split", pos)) !=
               std::string::npos) {
            ++splits;
            pos += 8;
        }
        pos = 0;
        while ((pos = k.source.find("vx_join", pos)) !=
               std::string::npos) {
            ++joins;
            pos += 7;
        }
        EXPECT_EQ(splits, joins) << seed;
    }
}

TEST(Fuzz, HundredSeedsRunBitIdenticalAcrossTickBackends)
{
    core::ArchConfig cfg = fuzzConfig();
    for (uint64_t seed = 1; seed <= 100; ++seed) {
        FuzzResult r = runDifferential(seed, cfg);
        ASSERT_TRUE(r.ok) << "seed " << seed << ":\n"
                          << r.detail << "\nprogram:\n"
                          << r.source;
        EXPECT_GT(r.cycles, 0u) << seed;
        EXPECT_GT(r.threadInstrs, 0u) << seed;
    }
}

TEST(Fuzz, CorpusReachesEveryGeneratorShape)
{
    // The pinned 1..100 window must exercise each of the generator's
    // program shapes at least once: leaf-function calls, rodata-table
    // reads (both the table itself and the address-taking `la`), and
    // nested inner loops counted in s1. If a generator change starves
    // one of these shapes out of the window, the corpus silently stops
    // testing that machinery — fail loudly instead.
    bool calls = false, table = false, tableLoad = false, inner = false;
    for (uint64_t seed = 1; seed <= 100; ++seed) {
        const std::string& s = generateKernel(seed).source;
        calls |= s.find("call fuzz_fn") != std::string::npos;
        table |= s.find("fuzz_table:") != std::string::npos;
        tableLoad |= s.find("la a7, fuzz_table") != std::string::npos;
        inner |= s.find("bnez s1, ") != std::string::npos;
    }
    EXPECT_TRUE(calls);
    EXPECT_TRUE(table);
    EXPECT_TRUE(tableLoad);
    EXPECT_TRUE(inner);
}

TEST(Fuzz, CoverageJsonRoundTripsAndDetectsRegressions)
{
    CoverageReport r = measureCoverage(1, 10);
    EXPECT_EQ(r.startSeed, 1u);
    EXPECT_EQ(r.seeds, 10u);
    EXPECT_FALSE(r.instrKinds.empty());
    EXPECT_FALSE(r.decodePaths.empty());
    EXPECT_FALSE(r.analyzerChecks.empty());

    // The JSON is a faithful, deterministic serialization.
    std::string json = coverageJson(r);
    CoverageReport back = parseCoverageJson(json, "test");
    EXPECT_EQ(back.startSeed, r.startSeed);
    EXPECT_EQ(back.seeds, r.seeds);
    EXPECT_EQ(back.instrKinds, r.instrKinds);
    EXPECT_EQ(back.decodePaths, r.decodePaths);
    EXPECT_EQ(back.analyzerChecks, r.analyzerChecks);
    EXPECT_EQ(coverageJson(back), json);

    // Identical coverage is never a regression; a baseline entry the
    // corpus no longer reaches is.
    EXPECT_EQ(coverageRegressions(r, r), "");
    CoverageReport demanding = r;
    demanding.instrKinds.insert("xxx.fake");
    std::string regressions = coverageRegressions(demanding, r);
    EXPECT_NE(regressions.find("'xxx.fake'"), std::string::npos)
        << regressions;
    EXPECT_NE(regressions.find("no longer exercised"), std::string::npos);

    // Extra measured coverage beyond the baseline is fine.
    CoverageReport lax = r;
    lax.instrKinds.erase(*lax.instrKinds.begin());
    EXPECT_EQ(coverageRegressions(lax, r), "");
}

TEST(Fuzz, PinnedCoverageBaselineMatchesTheCorpusByteForByte)
{
#ifndef VORTEX_CI_DIR
    GTEST_SKIP() << "VORTEX_CI_DIR not configured";
#else
    // The committed baseline IS the coverage of its recorded seed
    // window — byte for byte, like the shipped spec files. CI's fuzz
    // job diffs fresh measurements against this file; if the generator
    // grows (more kinds covered), regenerate with
    // `vortex_fuzz --seeds N --coverage ci/fuzz_coverage_baseline.json`.
    std::string path =
        std::string(VORTEX_CI_DIR) + "/fuzz_coverage_baseline.json";
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in) << "missing pinned baseline " << path;
    std::ostringstream buf;
    buf << in.rdbuf();

    CoverageReport pinned = parseCoverageJson(buf.str(), path);
    CoverageReport fresh = measureCoverage(pinned.startSeed, pinned.seeds);
    EXPECT_EQ(coverageJson(fresh), buf.str())
        << path << " drifted from the generator; regenerate it with "
        << "vortex_fuzz --coverage";

    // The corpus must exercise the instruction families this PR taught
    // the generator (divide/remainder, sub-word memory, FP divide and
    // square root) — the "strictly more covered than before" floor.
    for (const char* kind : {"div", "rem", "lbu", "sh", "fdiv.s",
                             "fsqrt.s"})
        EXPECT_TRUE(fresh.instrKinds.count(kind))
            << kind << " not covered by the pinned corpus window";
#endif
}
