/**
 * @file
 * Trace-infrastructure tests (paper §4.4): every retired instruction has a
 * complete, monotonically ordered fetch -> decode -> issue -> commit
 * timeline, per-wavefront program order is preserved through issue, and
 * trace tags identify the instruction's PC and wavefront.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "core/processor.h"
#include "core/trace.h"
#include "isa/assembler.h"

using namespace vortex;
using namespace vortex::core;

namespace {

std::unique_ptr<Processor>
runTraced(const std::string& src, TraceBuffer& buf, uint32_t warps = 4,
          uint32_t threads = 4)
{
    ArchConfig cfg;
    cfg.numWarps = warps;
    cfg.numThreads = threads;
    auto proc = std::make_unique<Processor>(cfg);
    isa::Assembler as(cfg.startPC);
    isa::Program p = as.assemble(src);
    proc->ram().writeBlock(p.base, p.image.data(), p.image.size());
    proc->core(0).setTraceSink(&buf);
    proc->start();
    EXPECT_TRUE(proc->run(200000));
    return proc;
}

const char* kLoopProgram = R"(
    li t0, 20
loop:
    addi t1, t0, 5
    mul t2, t1, t1
    addi t0, t0, -1
    bnez t0, loop
    li t3, 0
    vx_tmc t3
)";

} // namespace

TEST(Trace, EveryInstructionHasOrderedLifecycle)
{
    TraceBuffer buf;
    runTraced(kLoopProgram, buf);
    auto timelines = buf.timelines();
    ASSERT_GT(timelines.size(), 80u); // ~20 iterations x 4 instructions
    for (const auto& [uid, t] : timelines) {
        EXPECT_TRUE(t.complete()) << "uid " << uid << " pc 0x" << std::hex
                                  << t.pc;
        EXPECT_TRUE(t.ordered()) << "uid " << uid;
        // The pipeline has real depth: commit strictly after fetch.
        EXPECT_GT(*t.commit, *t.fetch) << "uid " << uid;
    }
}

TEST(Trace, ProgramOrderPreservedPerWarp)
{
    TraceBuffer buf;
    runTraced(kLoopProgram, buf);
    // Issue cycles of one wavefront must be non-decreasing in uid order
    // (in-order issue per wavefront).
    std::map<WarpId, Cycle> last_issue;
    for (const auto& [uid, t] : buf.timelines()) {
        (void)uid;
        auto it = last_issue.find(t.wid);
        if (it != last_issue.end()) {
            EXPECT_GE(*t.issue, it->second);
        }
        last_issue[t.wid] = *t.issue;
    }
}

TEST(Trace, RetiredCountMatchesTimelines)
{
    TraceBuffer buf;
    auto proc = runTraced(kLoopProgram, buf);
    EXPECT_EQ(buf.timelines().size(), proc->core(0).warpInstrs());
}

TEST(Trace, TagsCarryPcInExecutedRange)
{
    TraceBuffer buf;
    auto proc = runTraced(kLoopProgram, buf);
    Addr base = proc->config().startPC;
    for (const auto& [uid, t] : buf.timelines()) {
        (void)uid;
        EXPECT_GE(t.pc, base);
        EXPECT_LT(t.pc, base + 0x100);
    }
}

TEST(Trace, MultiWarpInterleaving)
{
    TraceBuffer buf;
    runTraced(R"(
        li t0, 4
        la t1, work
        vx_wspawn t0, t1
    work:
        li t2, 10
    spin:
        addi t2, t2, -1
        bnez t2, spin
        li t3, 0
        vx_tmc t3
    )", buf);
    // All four wavefronts appear in the trace.
    std::set<WarpId> wids;
    for (const auto& [uid, t] : buf.timelines()) {
        (void)uid;
        wids.insert(t.wid);
    }
    EXPECT_EQ(wids.size(), 4u);
}

TEST(Trace, DetachedSinkRecordsNothing)
{
    TraceBuffer buf;
    ArchConfig cfg;
    Processor proc(cfg);
    isa::Assembler as(cfg.startPC);
    isa::Program p = as.assemble("li t0, 0\n vx_tmc t0");
    proc.ram().writeBlock(p.base, p.image.data(), p.image.size());
    // No sink attached.
    proc.start();
    EXPECT_TRUE(proc.run(10000));
    EXPECT_TRUE(buf.events().empty());
}
