/**
 * @file
 * ISA-layer tests: encode/decode round-trip over every instruction kind
 * (property test with randomized operand fields), immediate edge cases,
 * operand classification, and disassembly.
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "common/rng.h"
#include "isa/isa.h"

using namespace vortex;
using namespace vortex::isa;

namespace {

/** Kinds that carry a PC-relative immediate with its own range. */
bool
isBranchKind(InstrKind k)
{
    switch (k) {
      case InstrKind::BEQ: case InstrKind::BNE: case InstrKind::BLT:
      case InstrKind::BGE: case InstrKind::BLTU: case InstrKind::BGEU:
        return true;
      default:
        return false;
    }
}

Instr
randomInstr(InstrKind kind, Xorshift& rng)
{
    Instr in;
    in.kind = kind;
    in.rd = rng.nextBounded(32);
    in.rs1 = rng.nextBounded(32);
    in.rs2 = rng.nextBounded(32);
    in.rs3 = rng.nextBounded(32);
    const InstrInfo& info = instrInfo(kind);
    switch (info.format) {
      case InstrFormat::I:
        in.imm = static_cast<int32_t>(rng.nextBounded(4096)) - 2048;
        break;
      case InstrFormat::S:
        in.imm = static_cast<int32_t>(rng.nextBounded(4096)) - 2048;
        break;
      case InstrFormat::B:
        in.imm = (static_cast<int32_t>(rng.nextBounded(4096)) - 2048) * 2;
        break;
      case InstrFormat::U:
        in.imm = static_cast<int32_t>(rng.next() & 0xFFFFF000u);
        break;
      case InstrFormat::J:
        in.imm =
            (static_cast<int32_t>(rng.nextBounded(1 << 20)) - (1 << 19)) * 2;
        break;
      default:
        in.imm = 0;
        break;
    }
    // Format-specific fixes.
    switch (kind) {
      case InstrKind::SLLI: case InstrKind::SRLI: case InstrKind::SRAI:
        in.imm = static_cast<int32_t>(rng.nextBounded(32));
        break;
      case InstrKind::CSRRW: case InstrKind::CSRRS: case InstrKind::CSRRC:
        in.csr = rng.nextBounded(0x1000);
        in.imm = 0; // register CSR forms carry no immediate
        break;
      case InstrKind::CSRRWI: case InstrKind::CSRRSI: case InstrKind::CSRRCI:
        in.csr = rng.nextBounded(0x1000);
        in.imm = static_cast<int32_t>(rng.nextBounded(32));
        break;
      case InstrKind::FSQRT_S: case InstrKind::FCVT_W_S:
      case InstrKind::FCVT_WU_S: case InstrKind::FMV_X_W:
      case InstrKind::FCLASS_S: case InstrKind::FCVT_S_W:
      case InstrKind::FCVT_S_WU: case InstrKind::FMV_W_X:
      case InstrKind::VX_TMC: case InstrKind::VX_SPLIT:
        in.rs2 = 0;
        break;
      case InstrKind::ECALL: case InstrKind::EBREAK: case InstrKind::FENCE:
      case InstrKind::VX_JOIN:
        in.rd = in.rs1 = in.rs2 = 0;
        break;
      default:
        break;
    }
    if (kind == InstrKind::VX_TMC || kind == InstrKind::VX_SPLIT ||
        kind == InstrKind::VX_WSPAWN || kind == InstrKind::VX_BAR)
        in.rd = 0;
    return in;
}

/** Fields that must survive the round trip for @p kind. */
void
expectRoundTrip(const Instr& a, const Instr& b)
{
    EXPECT_EQ(a.kind, b.kind) << instrInfo(a.kind).mnemonic;
    const InstrInfo& info = instrInfo(a.kind);
    if (a.dst().valid())
        EXPECT_EQ(a.rd, b.rd) << info.mnemonic;
    if (a.src1().valid())
        EXPECT_EQ(a.rs1, b.rs1) << info.mnemonic;
    if (a.src2().valid())
        EXPECT_EQ(a.rs2, b.rs2) << info.mnemonic;
    if (a.src3().valid())
        EXPECT_EQ(a.rs3, b.rs3) << info.mnemonic;
    switch (info.format) {
      case InstrFormat::I:
      case InstrFormat::S:
      case InstrFormat::B:
      case InstrFormat::U:
      case InstrFormat::J:
        EXPECT_EQ(a.imm, b.imm) << info.mnemonic;
        break;
      default:
        break;
    }
    EXPECT_EQ(a.csr, b.csr) << info.mnemonic;
}

} // namespace

class IsaRoundTrip : public ::testing::TestWithParam<uint16_t>
{
};

TEST_P(IsaRoundTrip, EncodeDecode)
{
    auto kind = static_cast<InstrKind>(GetParam());
    Xorshift rng(GetParam() * 977 + 1);
    for (int iter = 0; iter < 64; ++iter) {
        Instr in = randomInstr(kind, rng);
        uint32_t word = encode(in);
        Instr out = decode(word);
        expectRoundTrip(in, out);
        // Re-encoding the decoded form must be stable.
        EXPECT_EQ(encode(out), word) << instrInfo(kind).mnemonic;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, IsaRoundTrip,
    ::testing::Range<uint16_t>(1,
                               static_cast<uint16_t>(InstrKind::kCount)),
    [](const ::testing::TestParamInfo<uint16_t>& info) {
        std::string m =
            instrInfo(static_cast<InstrKind>(info.param)).mnemonic;
        for (char& c : m) {
            if (c == '.')
                c = '_';
        }
        return m;
    });

TEST(Isa, ImmediateEdges)
{
    Instr in;
    in.kind = InstrKind::ADDI;
    in.rd = 1;
    in.rs1 = 2;
    in.imm = -2048;
    EXPECT_EQ(decode(encode(in)).imm, -2048);
    in.imm = 2047;
    EXPECT_EQ(decode(encode(in)).imm, 2047);
    in.imm = 2048;
    EXPECT_THROW(encode(in), PanicError);

    in.kind = InstrKind::JAL;
    in.imm = -(1 << 20);
    EXPECT_EQ(decode(encode(in)).imm, -(1 << 20));
    in.imm = (1 << 20) - 2;
    EXPECT_EQ(decode(encode(in)).imm, (1 << 20) - 2);
    in.imm = 3; // misaligned
    EXPECT_THROW(encode(in), PanicError);

    in.kind = InstrKind::BEQ;
    in.imm = -4096;
    EXPECT_EQ(decode(encode(in)).imm, -4096);
    in.imm = 4094;
    EXPECT_EQ(decode(encode(in)).imm, 4094);
}

TEST(Isa, InvalidEncodings)
{
    EXPECT_FALSE(decode(0x00000000).valid());
    EXPECT_FALSE(decode(0xFFFFFFFF).valid());
    // OP with reserved funct7.
    EXPECT_FALSE(decode(0x40001033 | (0x15 << 25)).valid());
}

TEST(Isa, OperandClassification)
{
    Instr lw = decode(encode([] {
        Instr i;
        i.kind = InstrKind::LW;
        i.rd = 5;
        i.rs1 = 6;
        i.imm = 16;
        return i;
    }()));
    EXPECT_EQ(lw.dst().file, RegFile::Int);
    EXPECT_EQ(lw.src1().file, RegFile::Int);
    EXPECT_FALSE(lw.src2().valid());
    EXPECT_TRUE(lw.isLoad());
    EXPECT_FALSE(lw.isStore());
    EXPECT_EQ(lw.fuType(), FuType::LSU);

    Instr fsw;
    fsw.kind = InstrKind::FSW;
    fsw.rs1 = 2;
    fsw.rs2 = 3;
    EXPECT_FALSE(fsw.dst().valid());
    EXPECT_EQ(fsw.src1().file, RegFile::Int);
    EXPECT_EQ(fsw.src2().file, RegFile::Fp);
    EXPECT_TRUE(fsw.isStore());

    Instr fma;
    fma.kind = InstrKind::FMADD_S;
    EXPECT_EQ(fma.dst().file, RegFile::Fp);
    EXPECT_EQ(fma.src3().file, RegFile::Fp);
    EXPECT_EQ(fma.fuType(), FuType::FPU);

    Instr tex;
    tex.kind = InstrKind::VX_TEX;
    EXPECT_EQ(tex.dst().file, RegFile::Int);
    EXPECT_EQ(tex.src1().file, RegFile::Fp);
    EXPECT_EQ(tex.fuType(), FuType::TEX);

    Instr bar;
    bar.kind = InstrKind::VX_BAR;
    EXPECT_FALSE(bar.dst().valid());
    EXPECT_TRUE(bar.isControl());
    EXPECT_EQ(bar.fuType(), FuType::SFU);

    // x0 destination is not a write.
    RegRef x0{RegFile::Int, 0};
    EXPECT_FALSE(x0.isWrite());
    RegRef f0{RegFile::Fp, 0};
    EXPECT_TRUE(f0.isWrite());
}

TEST(Isa, Disassemble)
{
    Instr in;
    in.kind = InstrKind::ADDI;
    in.rd = 10;
    in.rs1 = 2;
    in.imm = -4;
    EXPECT_EQ(disassemble(in), "addi a0, sp, -4");

    in = Instr{};
    in.kind = InstrKind::VX_TEX;
    in.rd = 5;
    in.rs1 = 0;
    in.rs2 = 1;
    in.rs3 = 2;
    EXPECT_EQ(disassemble(in), "vx_tex t0, ft0, ft1, ft2");

    in = Instr{};
    in.kind = InstrKind::FLW;
    in.rd = 10;
    in.rs1 = 8;
    in.imm = 12;
    EXPECT_EQ(disassemble(in), "flw fa0, 12(s0)");
}

TEST(Isa, RegisterNames)
{
    EXPECT_STREQ(intRegName(0), "zero");
    EXPECT_STREQ(intRegName(2), "sp");
    EXPECT_STREQ(intRegName(31), "t6");
    EXPECT_STREQ(fpRegName(0), "ft0");
    EXPECT_STREQ(fpRegName(10), "fa0");
}
