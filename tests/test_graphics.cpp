/**
 * @file
 * Graphics pipeline tests: math primitives, framebuffer, the top-left fill
 * rule (shared-edge adjacency property), depth/alpha/stencil/fog fragment
 * ops, perspective-correct interpolation, near-plane clipping, and texture
 * sampling through the pipeline.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "graphics/pipeline.h"

using namespace vortex;
using namespace vortex::graphics;

namespace {

Vertex
vtx(float x, float y, float z = 0.0f, float w = 1.0f)
{
    Vertex v;
    v.position = {x, y, z, w};
    return v;
}

/** Count pixels whose color equals @p rgba. */
uint32_t
countPixels(const Framebuffer& fb, uint32_t rgba)
{
    uint32_t n = 0;
    for (uint32_t y = 0; y < fb.height(); ++y) {
        for (uint32_t x = 0; x < fb.width(); ++x) {
            if (fb.pixel(x, y) == rgba)
                ++n;
        }
    }
    return n;
}

} // namespace

//
// Math.
//

TEST(VMath, MatrixVectorBasics)
{
    Mat4 id = Mat4::identity();
    Vec4 v{1, 2, 3, 1};
    Vec4 r = id * v;
    EXPECT_EQ(r.x, 1.0f);
    EXPECT_EQ(r.w, 1.0f);

    Mat4 t = Mat4::translate(10, 20, 30);
    r = t * v;
    EXPECT_EQ(r.x, 11.0f);
    EXPECT_EQ(r.y, 22.0f);
    EXPECT_EQ(r.z, 33.0f);

    Mat4 s = Mat4::scale(2, 3, 4);
    r = (t * s) * v; // scale then translate
    EXPECT_EQ(r.x, 12.0f);
    EXPECT_EQ(r.y, 26.0f);

    // Rotation by 90 degrees about Z maps +x to +y.
    Mat4 rz = Mat4::rotateZ(static_cast<float>(M_PI / 2));
    r = rz * Vec4{1, 0, 0, 1};
    EXPECT_NEAR(r.x, 0.0f, 1e-6f);
    EXPECT_NEAR(r.y, 1.0f, 1e-6f);
}

TEST(VMath, PerspectiveMapsNearFar)
{
    Mat4 p = Mat4::perspective(1.0f, 1.0f, 1.0f, 10.0f);
    // Points on the near/far plane map to z/w = -1 / +1.
    Vec4 near_pt = p * Vec4{0, 0, -1.0f, 1};
    Vec4 far_pt = p * Vec4{0, 0, -10.0f, 1};
    EXPECT_NEAR(near_pt.z / near_pt.w, -1.0f, 1e-5f);
    EXPECT_NEAR(far_pt.z / far_pt.w, 1.0f, 1e-5f);
}

TEST(VMath, LookAtEyeMapsToOrigin)
{
    Mat4 v = Mat4::lookAt({5, 6, 7}, {0, 0, 0}, {0, 1, 0});
    Vec4 eye = v * Vec4{5, 6, 7, 1};
    EXPECT_NEAR(eye.x, 0.0f, 1e-4f);
    EXPECT_NEAR(eye.y, 0.0f, 1e-4f);
    EXPECT_NEAR(eye.z, 0.0f, 1e-4f);
}

//
// Framebuffer.
//

TEST(Framebuffer, ClearAndAccess)
{
    Framebuffer fb(16, 8);
    fb.clear({1, 2, 3, 4}, 0.5f, 7);
    EXPECT_EQ(fb.pixel(0, 0), (tex::Color{1, 2, 3, 4}.pack()));
    EXPECT_EQ(fb.depth(15, 7), 0.5f);
    EXPECT_EQ(fb.stencil(3, 3), 7);
    fb.setPixel(2, 2, 0xAABBCCDD);
    EXPECT_EQ(fb.pixel(2, 2), 0xAABBCCDDu);
}

//
// Rasterization.
//

TEST(Raster, FullscreenTriangleCoversEverything)
{
    Framebuffer fb(32, 32);
    Pipeline pipe(fb);
    fb.clear({0, 0, 0, 255});
    std::vector<Vertex> v = {vtx(-1, -1), vtx(3, -1), vtx(-1, 3)};
    for (Vertex& x : v)
        x.color = {1, 0, 0, 1};
    pipe.drawTriangles(v, {0, 1, 2});
    EXPECT_EQ(countPixels(fb, tex::Color{255, 0, 0, 255}.pack()),
              32u * 32u);
    EXPECT_EQ(pipe.stats().get("fragments"), 32u * 32u);
}

TEST(Raster, SharedEdgeShadesEachPixelExactlyOnce)
{
    // The top-left fill rule property: a quad split into two triangles
    // along its diagonal shades every covered pixel exactly once,
    // regardless of winding.
    Framebuffer fb(64, 64);
    Pipeline pipe(fb);
    pipe.depthState().testEnabled = false;
    fb.clear({0, 0, 0, 0});

    // Accumulating shader: add 1 to red each time the pixel is shaded.
    pipe.setFragmentShader([&](const FragmentIn&) -> Vec4 {
        return {1.0f, 0.0f, 0.0f, 1.0f};
    });
    // Count via stats: fragments shaded must equal covered pixels.
    std::vector<Vertex> v = {vtx(-0.8f, -0.8f), vtx(0.8f, -0.8f),
                             vtx(0.8f, 0.8f), vtx(-0.8f, 0.8f)};
    pipe.drawTriangles(v, {0, 1, 2, 0, 2, 3});
    uint64_t frags = pipe.stats().get("fragments");
    uint32_t covered = countPixels(fb, tex::Color{255, 0, 0, 255}.pack());
    EXPECT_EQ(frags, covered) << "double-shaded or missed pixels on the "
                                 "shared diagonal";
    EXPECT_GT(covered, 2000u);
}

TEST(Raster, BothWindingsRasterize)
{
    Framebuffer fb(32, 32);
    Pipeline pipe(fb);
    fb.clear({0, 0, 0, 0});
    std::vector<Vertex> v = {vtx(-1, -1), vtx(1, -1), vtx(-1, 1)};
    pipe.drawTriangles(v, {0, 1, 2});
    uint32_t ccw = static_cast<uint32_t>(pipe.stats().get("fragments"));
    fb.clear({0, 0, 0, 0});
    pipe.drawTriangles(v, {0, 2, 1});
    uint32_t cw = static_cast<uint32_t>(pipe.stats().get("fragments")) - ccw;
    EXPECT_EQ(ccw, cw);
    EXPECT_GT(ccw, 0u);
}

TEST(Raster, DegenerateTriangleDropped)
{
    Framebuffer fb(16, 16);
    Pipeline pipe(fb);
    std::vector<Vertex> v = {vtx(0, 0), vtx(0.5f, 0.5f), vtx(-0.5f, -0.5f)};
    pipe.drawTriangles(v, {0, 1, 2});
    EXPECT_EQ(pipe.stats().get("fragments"), 0u);
}

TEST(Raster, DepthTestOcclusion)
{
    Framebuffer fb(16, 16);
    Pipeline pipe(fb);
    fb.clear({0, 0, 0, 255});
    // Near red triangle (z=0), then far blue triangle (z=0.5): blue loses.
    std::vector<Vertex> red = {vtx(-1, -1, 0), vtx(3, -1, 0), vtx(-1, 3, 0)};
    for (Vertex& x : red)
        x.color = {1, 0, 0, 1};
    std::vector<Vertex> blue = {vtx(-1, -1, 0.5f), vtx(3, -1, 0.5f),
                                vtx(-1, 3, 0.5f)};
    for (Vertex& x : blue)
        x.color = {0, 0, 1, 1};
    pipe.drawTriangles(red, {0, 1, 2});
    pipe.drawTriangles(blue, {0, 1, 2});
    EXPECT_EQ(countPixels(fb, tex::Color{255, 0, 0, 255}.pack()), 256u);
    EXPECT_EQ(pipe.stats().get("depth_killed"), 256u);

    // With depth test off, blue overdraws.
    pipe.depthState().testEnabled = false;
    pipe.drawTriangles(blue, {0, 1, 2});
    EXPECT_EQ(countPixels(fb, tex::Color{0, 0, 255, 255}.pack()), 256u);
}

TEST(Raster, DepthWriteDisable)
{
    Framebuffer fb(8, 8);
    Pipeline pipe(fb);
    fb.clear({0, 0, 0, 255});
    pipe.depthState().writeEnabled = false;
    std::vector<Vertex> t = {vtx(-1, -1, 0), vtx(3, -1, 0), vtx(-1, 3, 0)};
    pipe.drawTriangles(t, {0, 1, 2});
    EXPECT_EQ(fb.depth(4, 4), 1.0f); // unchanged
}

TEST(Raster, AlphaTestKillsFragments)
{
    Framebuffer fb(8, 8);
    Pipeline pipe(fb);
    fb.clear({9, 9, 9, 255});
    pipe.alphaState().testEnabled = true;
    pipe.alphaState().func = CompareFunc::Greater;
    pipe.alphaState().ref = 0.5f;
    std::vector<Vertex> t = {vtx(-1, -1), vtx(3, -1), vtx(-1, 3)};
    for (Vertex& x : t)
        x.color = {1, 1, 1, 0.25f}; // below the ref: all killed
    pipe.drawTriangles(t, {0, 1, 2});
    EXPECT_EQ(countPixels(fb, tex::Color{9, 9, 9, 255}.pack()), 64u);
    EXPECT_EQ(pipe.stats().get("alpha_killed"), 64u);
}

TEST(Raster, StencilMaskAndOps)
{
    Framebuffer fb(8, 8);
    Pipeline pipe(fb);
    fb.clear({0, 0, 0, 255}, 1.0f, 0);
    std::vector<Vertex> t = {vtx(-1, -1), vtx(3, -1), vtx(-1, 3)};

    // Pass 1: stencil always passes, writes ref=5 on zpass.
    pipe.stencilState().testEnabled = true;
    pipe.stencilState().func = CompareFunc::Always;
    pipe.stencilState().ref = 5;
    pipe.stencilState().onZPass = StencilOp::Replace;
    pipe.drawTriangles(t, {0, 1, 2});
    EXPECT_EQ(fb.stencil(3, 3), 5);

    // Pass 2: only where stencil == 5; draw red.
    pipe.depthState().func = CompareFunc::LEqual;
    pipe.stencilState().func = CompareFunc::Equal;
    pipe.stencilState().onZPass = StencilOp::Keep;
    for (Vertex& x : t)
        x.color = {1, 0, 0, 1};
    pipe.drawTriangles(t, {0, 1, 2});
    EXPECT_EQ(countPixels(fb, tex::Color{255, 0, 0, 255}.pack()), 64u);

    // Pass 3: ref 6 fails everywhere; stencil_killed counts.
    pipe.stencilState().ref = 6;
    uint64_t before = pipe.stats().get("stencil_killed");
    pipe.drawTriangles(t, {0, 1, 2});
    EXPECT_EQ(pipe.stats().get("stencil_killed") - before, 64u);
}

TEST(Raster, LinearFogBlends)
{
    Framebuffer fb(8, 8);
    Pipeline pipe(fb);
    fb.clear({0, 0, 0, 255});
    pipe.fogState().enabled = true;
    pipe.fogState().mode = FogState::Mode::Linear;
    pipe.fogState().color = {0.0f, 0.0f, 1.0f};
    pipe.fogState().start = 0.0f;
    pipe.fogState().end = 2.0f;
    // w == 1 everywhere => fog factor 0.5: half color, half fog.
    std::vector<Vertex> t = {vtx(-1, -1), vtx(3, -1), vtx(-1, 3)};
    for (Vertex& x : t)
        x.color = {1.0f, 0.0f, 0.0f, 1.0f};
    pipe.drawTriangles(t, {0, 1, 2});
    tex::Color c = tex::Color::unpackRgba8(fb.pixel(4, 4));
    EXPECT_NEAR(c.r, 128, 2);
    EXPECT_NEAR(c.b, 128, 2);
}

TEST(Raster, PerspectiveCorrectInterpolation)
{
    // A quad with w varying 1 -> 3: at the screen-space midpoint the
    // perspective-correct u is NOT 0.5 but 1/w-weighted.
    Framebuffer fb(64, 64);
    Pipeline pipe(fb);
    fb.clear({0, 0, 0, 255});
    float captured_u = -1.0f;
    pipe.setFragmentShader([&](const FragmentIn& in) -> Vec4 {
        if (std::abs(in.uv.y - 0.5f) < 0.05f &&
            std::abs(in.viewW - 1.5f) < 0.03f)
            captured_u = in.uv.x;
        return in.color;
    });
    // Left edge at w=1 (u=0), right edge at w=3 (u=1), spanning x -1..1.
    std::vector<Vertex> v(4);
    v[0].position = {-1, -1, 0, 1};
    v[0].uv = {0, 0};
    v[1].position = {3, -3, 0, 3};
    v[1].uv = {1, 0};
    v[2].position = {3, 3, 0, 3};
    v[2].uv = {1, 1};
    v[3].position = {-1, 1, 0, 1};
    v[3].uv = {0, 1};
    pipe.drawTriangles(v, {0, 1, 2, 0, 2, 3});
    // At 1/w = (1/1+1/3)/2 = 2/3 => w = 1.5, u/w interpolated = 0.5*(1/3)
    // => u = 0.5*(1/3)*1.5 = 0.25? Derive: u_over_w mid = (0 + 1/3)/2 =
    // 1/6; inv_w mid = 2/3... u = (1/6)/(2/3) = 0.25.
    ASSERT_GE(captured_u, 0.0f) << "no fragment captured at w=1.5";
    EXPECT_NEAR(captured_u, 0.25f, 0.05f);
}

TEST(Raster, NearPlaneClippingKeepsVisiblePart)
{
    Framebuffer fb(32, 32);
    Pipeline pipe(fb);
    fb.clear({0, 0, 0, 255});
    // Triangle with one vertex behind the eye (w < 0): must be clipped,
    // not discarded entirely, and must not crash.
    std::vector<Vertex> v(3);
    v[0].position = {0, 0.5f, 0, 1};
    v[0].color = {1, 1, 1, 1};
    v[1].position = {0.5f, -0.5f, 0, 1};
    v[1].color = {1, 1, 1, 1};
    v[2].position = {0, 0, -2.0f, -1.0f}; // behind the near plane
    v[2].color = {1, 1, 1, 1};
    pipe.drawTriangles(v, {0, 1, 2});
    EXPECT_GT(pipe.stats().get("fragments"), 0u);
    EXPECT_EQ(pipe.stats().get("triangles_in"), 1u);
}

TEST(Raster, FullyBehindCameraRejected)
{
    Framebuffer fb(16, 16);
    Pipeline pipe(fb);
    std::vector<Vertex> v = {vtx(0, 0, -2, -1), vtx(1, 0, -2, -1),
                             vtx(0, 1, -2, -1)};
    pipe.drawTriangles(v, {0, 1, 2});
    EXPECT_EQ(pipe.stats().get("triangles_rastered"), 0u);
}

TEST(Raster, TextureSampling)
{
    mem::Ram texram;
    tex::SamplerState st;
    st.addr = 0;
    st.widthLog2 = 2;
    st.heightLog2 = 2;
    st.format = tex::Format::RGBA8;
    st.filter = tex::Filter::Point;
    for (uint32_t i = 0; i < 16; ++i)
        texram.write32(i * 4, tex::Color{200, 50, 25, 255}.pack());

    Framebuffer fb(8, 8);
    Pipeline pipe(fb);
    fb.clear({0, 0, 0, 255});
    pipe.bindTexture(&texram, st);
    pipe.setFragmentShader([&](const FragmentIn& in) -> Vec4 {
        return pipe.sampleTexture(in.uv.x, in.uv.y);
    });
    std::vector<Vertex> t = {vtx(-1, -1), vtx(3, -1), vtx(-1, 3)};
    pipe.drawTriangles(t, {0, 1, 2});
    EXPECT_EQ(countPixels(fb, tex::Color{200, 50, 25, 255}.pack()), 64u);
}

TEST(Raster, TileBinningCountsTiles)
{
    Framebuffer fb(128, 128);
    Pipeline pipe(fb, 32); // 4x4 tiles
    std::vector<Vertex> t = {vtx(-1, -1), vtx(3, -1), vtx(-1, 3)};
    pipe.drawTriangles(t, {0, 1, 2});
    EXPECT_EQ(pipe.stats().get("tiles_shaded"), 16u);

    // A tiny triangle touches one tile only.
    Pipeline pipe2(fb, 32);
    std::vector<Vertex> small = {vtx(-0.9f, -0.9f), vtx(-0.8f, -0.9f),
                                 vtx(-0.9f, -0.8f)};
    pipe2.drawTriangles(small, {0, 1, 2});
    EXPECT_EQ(pipe2.stats().get("tiles_shaded"), 1u);
}

TEST(Raster, PointsDrawSquares)
{
    Framebuffer fb(32, 32);
    Pipeline pipe(fb);
    fb.clear({0, 0, 0, 255});
    std::vector<Vertex> pts(1);
    pts[0].position = {0, 0, 0, 1}; // center
    pts[0].color = {0, 1, 0, 1};
    pipe.drawPoints(pts, 3);
    EXPECT_EQ(countPixels(fb, tex::Color{0, 255, 0, 255}.pack()), 9u);
    EXPECT_EQ(pipe.stats().get("points"), 1u);

    // A point behind the camera is culled.
    pts[0].position = {0, 0, 0, -1};
    pipe.drawPoints(pts, 3);
    EXPECT_EQ(pipe.stats().get("points"), 1u);
}

TEST(Raster, LinesConnectEndpoints)
{
    Framebuffer fb(32, 32);
    Pipeline pipe(fb);
    fb.clear({0, 0, 0, 255});
    std::vector<Vertex> v(2);
    v[0].position = {-0.9f, -0.9f, 0, 1};
    v[0].color = {1, 1, 1, 1};
    v[1].position = {0.9f, 0.9f, 0, 1};
    v[1].color = {1, 1, 1, 1};
    pipe.drawLines(v, {0, 1});
    uint32_t lit = countPixels(fb, tex::Color{255, 255, 255, 255}.pack());
    // A diagonal across ~29 pixels of extent.
    EXPECT_GE(lit, 25u);
    EXPECT_LE(lit, 40u);
    EXPECT_EQ(pipe.stats().get("lines"), 1u);
    // Endpoints are lit.
    EXPECT_EQ(fb.pixel(1, 30), (tex::Color{255, 255, 255, 255}.pack()));
}

TEST(Raster, LineRespectsDepthTest)
{
    Framebuffer fb(16, 16);
    Pipeline pipe(fb);
    fb.clear({0, 0, 0, 255}, 0.0f); // everything already at depth 0
    std::vector<Vertex> v(2);
    v[0].position = {-1, 0, 0.5f, 1};
    v[1].position = {1, 0, 0.5f, 1};
    v[0].color = v[1].color = {1, 0, 0, 1};
    pipe.drawLines(v, {0, 1});
    EXPECT_EQ(countPixels(fb, tex::Color{255, 0, 0, 255}.pack()), 0u);
}

TEST(Raster, LineClipsAtNearPlane)
{
    Framebuffer fb(16, 16);
    Pipeline pipe(fb);
    fb.clear({0, 0, 0, 255});
    std::vector<Vertex> v(2);
    v[0].position = {0, 0, 0, 1};
    v[0].color = {1, 1, 0, 1};
    v[1].position = {0, 0, -2, -1}; // behind the eye
    v[1].color = {1, 1, 0, 1};
    pipe.drawLines(v, {0, 1}); // must not crash; partial segment drawn
    std::vector<Vertex> w = {v[1], v[1]};
    pipe.drawLines(w, {0, 1}); // fully behind: dropped
    EXPECT_EQ(pipe.stats().get("lines"), 1u);
}
