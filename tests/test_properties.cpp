/**
 * @file
 * Cross-cutting property tests:
 *  - timing independence: functional results and retired instruction
 *    counts are invariant across timing configurations (cache geometry,
 *    memory latency, FU latencies) — the core guarantee of the
 *    functional/timing split;
 *  - determinism: identical runs produce identical cycle counts;
 *  - performance monotonicity: a strictly better memory system never
 *    hurts IPC beyond noise.
 */

#include <gtest/gtest.h>

#include "runtime/device.h"
#include "runtime/kargs.h"
#include "runtime/workloads.h"
#include "kernels/kernels.h"

using namespace vortex;
using runtime::Device;

namespace {

struct Outcome
{
    std::vector<int32_t> result;
    uint64_t threadInstrs;
    uint64_t cycles;
};

/** Run vecadd with a given config; return the output vector + counters. */
Outcome
runOnce(const core::ArchConfig& cfg, uint32_t n)
{
    Device dev(cfg);
    std::vector<int32_t> a(n), b(n);
    for (uint32_t i = 0; i < n; ++i) {
        a[i] = static_cast<int32_t>(i * 3);
        b[i] = static_cast<int32_t>(i ^ 0x55);
    }
    Addr da = dev.memAlloc(n * 4), db = dev.memAlloc(n * 4),
         dc = dev.memAlloc(n * 4);
    dev.copyToDev(da, a.data(), n * 4);
    dev.copyToDev(db, b.data(), n * 4);
    dev.uploadKernel(kernels::vecadd());
    dev.setKernelArg(runtime::VecAddArgs{n, da, db, dc});
    dev.runKernel(100000000);
    Outcome out;
    out.result.resize(n);
    dev.copyFromDev(out.result.data(), dc, n * 4);
    out.threadInstrs = dev.processor().threadInstrs();
    out.cycles = dev.cycles();
    return out;
}

} // namespace

TEST(Properties, TimingIndependentResults)
{
    const uint32_t n = 333;
    core::ArchConfig base;
    Outcome ref = runOnce(base, n);

    // Sweep timing knobs that must never change functional results or the
    // retired-instruction count (same machine geometry => same schedule of
    // work across threads).
    std::vector<core::ArchConfig> variants;
    {
        core::ArchConfig c;
        c.mem.latency = 400;
        variants.push_back(c);
    }
    {
        core::ArchConfig c;
        c.dcacheSize = 2048;
        c.mshrEntries = 1;
        variants.push_back(c);
    }
    {
        core::ArchConfig c;
        c.dcachePorts = 4;
        variants.push_back(c);
    }
    {
        core::ArchConfig c;
        c.lat.fpu = 1;
        c.lat.div = 4;
        c.ibufferDepth = 8;
        variants.push_back(c);
    }
    {
        core::ArchConfig c;
        c.mem.numChannels = 8;
        c.mem.busWidth = 64;
        variants.push_back(c);
    }
    for (size_t i = 0; i < variants.size(); ++i) {
        Outcome v = runOnce(variants[i], n);
        EXPECT_EQ(v.result, ref.result) << "variant " << i;
        EXPECT_EQ(v.threadInstrs, ref.threadInstrs) << "variant " << i;
    }
}

TEST(Properties, RunsAreDeterministic)
{
    core::ArchConfig cfg;
    cfg.numCores = 2;
    Outcome a = runOnce(cfg, 200);
    Outcome b = runOnce(cfg, 200);
    EXPECT_EQ(a.result, b.result);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.threadInstrs, b.threadInstrs);
}

TEST(Properties, FasterMemoryNeverSlower)
{
    core::ArchConfig slow;
    slow.mem.latency = 300;
    core::ArchConfig fast;
    fast.mem.latency = 20;
    Outcome s = runOnce(slow, 512);
    Outcome f = runOnce(fast, 512);
    EXPECT_LT(f.cycles, s.cycles);
}

TEST(Properties, MoreCoresSameAnswers)
{
    // The per-core slice changes with the machine; the union of results
    // must not.
    Device dev1(core::ArchConfig{});
    runtime::RunResult r1 = runtime::runSgemm(dev1, 16);
    core::ArchConfig c4;
    c4.numCores = 4;
    c4.l2Enabled = true;
    Device dev4(c4);
    runtime::RunResult r4 = runtime::runSgemm(dev4, 16);
    EXPECT_TRUE(r1.ok) << r1.error;
    EXPECT_TRUE(r4.ok) << r4.error;
}
