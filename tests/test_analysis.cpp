/**
 * @file
 * Static-analyzer tests: a negative corpus where each guest-invariant
 * violation is pinned to its exact diagnostic (pc, check id, severity),
 * and a positive sweep proving every shipped kernel verifies clean on
 * every machine shape the campaigns run.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/analysis.h"
#include "common/log.h"
#include "isa/assembler.h"
#include "kernels/kernels.h"
#include "runtime/device.h"
#include "sweep/spec.h"

using namespace vortex;
using analysis::AnalyzerOptions;
using analysis::Report;
using analysis::Severity;

namespace {

constexpr Addr kBase = 0x80000000;

/** Assemble a freestanding snippet and analyze it. */
Report
analyzeAsm(const std::string& src, isa::Program& program,
           AnalyzerOptions opts = {})
{
    isa::Assembler as(kBase);
    program = as.assemble(src);
    return analysis::analyze(program, opts);
}

/** The diagnostic at (@p check, @p pc), or nullptr. */
const analysis::Diagnostic*
findDiag(const Report& r, const std::string& check, Addr pc)
{
    for (const analysis::Diagnostic& d : r.diagnostics)
        if (d.check == check && d.pc == pc)
            return &d;
    return nullptr;
}

/** Options with a tiny two-region memory map for the bounds tests. */
AnalyzerOptions
boundedOptions(const isa::Program& p)
{
    AnalyzerOptions opts;
    opts.memMap.regions.push_back(
        {"code", p.base, p.image.size(), /*writable=*/false});
    opts.memMap.regions.push_back({"heap", 0x10000, 0x100, true});
    return opts;
}

} // namespace

//
// Negative corpus — each test pins one invariant violation to its
// exact diagnostic.
//

TEST(Analysis, UnbalancedSplitReportsAtReturn)
{
    isa::Program p;
    Report r = analyzeAsm(R"(
        vx_split zero
    bad:
        ret
    )",
                          p);
    const auto* d = findDiag(r, "ipdom.balance", p.symbol("bad"));
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, Severity::Error);
    EXPECT_NE(d->message.find("1 unclosed split"), std::string::npos);
    EXPECT_EQ(r.errors(), 1u);
}

TEST(Analysis, JoinWithoutSplitUnderflows)
{
    isa::Program p;
    Report r = analyzeAsm(R"(
    bad:
        vx_join
        ecall
    )",
                          p);
    const auto* d = findDiag(r, "ipdom.balance", p.symbol("bad"));
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, Severity::Error);
    EXPECT_NE(d->message.find("underflow"), std::string::npos);
}

TEST(Analysis, BarrierUnderDivergenceDeadlocks)
{
    isa::Program p;
    Report r = analyzeAsm(R"(
        vx_split zero
    bad:
        vx_bar zero, zero
        vx_join
        ecall
    )",
                          p);
    const auto* d = findDiag(r, "barrier.divergence", p.symbol("bad"));
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, Severity::Error);
    EXPECT_NE(d->message.find("divergent control flow"),
              std::string::npos);
}

TEST(Analysis, UseBeforeDefIsAnError)
{
    isa::Program p;
    Report r = analyzeAsm(R"(
    bad:
        add a0, t0, t0
        ecall
    )",
                          p);
    const auto* d = findDiag(r, "reg.undef", p.symbol("bad"));
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, Severity::Error);
    EXPECT_NE(d->message.find("register t0"), std::string::npos);
    EXPECT_NE(d->message.find("never written"), std::string::npos);
}

TEST(Analysis, PartiallyDefinedReadIsAWarning)
{
    isa::Program p;
    Report r = analyzeAsm(R"(
        beq zero, zero, skip
        li t3, 5
    skip:
    bad:
        add a1, t3, zero
        ecall
    )",
                          p);
    const auto* d = findDiag(r, "reg.maybe-undef", p.symbol("bad"));
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, Severity::Warning);
    EXPECT_NE(d->message.find("register t3"), std::string::npos);
    EXPECT_EQ(r.errors(), 0u);
}

TEST(Analysis, CalleeSavedSpillPrologueIsExempt)
{
    // The standard ABI prologue reads callee-saved registers (to save
    // them) before this function ever wrote them — never a finding.
    isa::Program p;
    Report r = analyzeAsm(R"(
        addi sp, sp, -8
        sw s0, 0(sp)
        sw s1, 4(sp)
        ecall
    )",
                          p);
    EXPECT_EQ(r.errors(), 0u);
    EXPECT_EQ(r.warnings(), 0u);
}

TEST(Analysis, OutOfBoundsStoreReportsAddress)
{
    isa::Program p0;
    Report r = analyzeAsm(R"(
        lui t0, 0x99999
    bad:
        sw zero, 0(t0)
        ecall
    )",
                          p0);
    // No memory map: the bounds pass is off.
    EXPECT_EQ(findDiag(r, "mem.bounds", p0.symbol("bad")), nullptr);

    isa::Program p;
    isa::Assembler as(kBase);
    p = as.assemble(R"(
        lui t0, 0x99999
    bad:
        sw zero, 0(t0)
        ecall
    )");
    Report rb = analysis::analyze(p, boundedOptions(p));
    const auto* d = findDiag(rb, "mem.bounds", p.symbol("bad"));
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, Severity::Error);
    EXPECT_NE(d->message.find("0x99999000"), std::string::npos);
    EXPECT_NE(d->message.find("store"), std::string::npos);
}

TEST(Analysis, MisalignedStoreIsAnError)
{
    isa::Program p2;
    Report r = analyzeAsm(R"(
        lui t0, 0x10
    misaligned:
        sw zero, 2(t0)
        ecall
    )",
                          p2);
    Report rb = analysis::analyze(p2, boundedOptions(p2));
    const auto* d = findDiag(rb, "mem.align", p2.symbol("misaligned"));
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, Severity::Error);
    EXPECT_NE(d->message.find("misaligned"), std::string::npos);
}

TEST(Analysis, StoreIntoCodeSegmentWarns)
{
    isa::Program p;
    isa::Assembler as(kBase);
    p = as.assemble(R"(
        lui t0, 0x80000
    bad:
        sw zero, 0(t0)
        ecall
    )");
    Report r = analysis::analyze(p, boundedOptions(p));
    const auto* d = findDiag(r, "mem.code-write", p.symbol("bad"));
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, Severity::Warning);
    EXPECT_NE(d->message.find("read-only"), std::string::npos);
}

TEST(Analysis, OversizedWspawnExceedsBudget)
{
    isa::Program p;
    Report r = analyzeAsm(R"(
        li t0, 64
        la t1, worker
    bad:
        vx_wspawn t0, t1
        ecall
    worker:
        ecall
    )",
                          p);
    const auto* d = findDiag(r, "wspawn.budget", p.symbol("bad"));
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, Severity::Error);
    EXPECT_NE(d->message.find("64"), std::string::npos);
    EXPECT_NE(d->message.find("only 4"), std::string::npos);
}

TEST(Analysis, OversizedTmcExceedsBudget)
{
    isa::Program p;
    Report r = analyzeAsm(R"(
        li t0, 9
    bad:
        vx_tmc t0
        ecall
    )",
                          p);
    const auto* d = findDiag(r, "tmc.budget", p.symbol("bad"));
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, Severity::Error);
    EXPECT_NE(d->message.find("9"), std::string::npos);
}

TEST(Analysis, FallThroughOffSegmentEnd)
{
    isa::Program p;
    Report r = analyzeAsm(R"(
        add a0, zero, zero
    )",
                          p);
    bool found = false;
    for (const auto& d : r.diagnostics)
        found |= d.check == "structure.falloff" &&
                 d.severity == Severity::Error;
    EXPECT_TRUE(found);
}

TEST(Analysis, TmcZeroHaltsTheBlock)
{
    // `li t0, 0; vx_tmc t0` retires the wavefront: no falloff and no
    // decoding of whatever bytes follow.
    isa::Program p;
    Report r = analyzeAsm(R"(
        li t0, 0
        vx_tmc t0
        .word 0xffffffff
    )",
                          p);
    EXPECT_EQ(r.errors(), 0u);
    EXPECT_EQ(r.warnings(), 0u);
}

//
// Positive sweep — every shipped kernel verifies clean exactly as the
// driver assembles it, on the machine shapes the campaigns use.
//

namespace {

Report
verifyKernel(const char* source, const core::ArchConfig& config,
             isa::Program& program)
{
    isa::Assembler as(config.startPC);
    program = as.assembleAll({kernels::runtimeSource(), source});
    return analysis::analyze(program,
                             runtime::analyzerOptions(config, program));
}

} // namespace

TEST(Analysis, AllShippedKernelsVerifyClean)
{
    for (const kernels::NamedKernel& k : kernels::allKernels()) {
        isa::Program p;
        Report r = verifyKernel(k.source(), core::ArchConfig{}, p);
        if (!r.clean()) {
            std::ostringstream os;
            r.print(os, &p);
            ADD_FAILURE() << k.name << " did not verify clean:\n"
                          << os.str();
        }
    }
}

TEST(Analysis, KernelsVerifyCleanOnLargeMachines)
{
    core::ArchConfig config;
    config.numCores = 4;
    config.numWarps = 8;
    config.numThreads = 8;
    for (const kernels::NamedKernel& k : kernels::allKernels()) {
        isa::Program p;
        Report r = verifyKernel(k.source(), config, p);
        EXPECT_TRUE(r.clean()) << k.name;
    }
}

TEST(Analysis, ReportIndependentOfTickEngine)
{
    // The analyzer sees the machine geometry, never the host execution
    // strategy: serial and parallel-tick configs must yield
    // byte-identical reports.
    core::ArchConfig serial;
    serial.parallelTick = false;
    core::ArchConfig parallel;
    parallel.parallelTick = true;
    parallel.tickThreads = 4;
    isa::Program ps, pp;
    Report rs = verifyKernel(kernels::sgemm(), serial, ps);
    Report rp = verifyKernel(kernels::sgemm(), parallel, pp);
    ASSERT_EQ(rs.diagnostics.size(), rp.diagnostics.size());
    for (size_t i = 0; i < rs.diagnostics.size(); ++i)
        EXPECT_TRUE(rs.diagnostics[i] == rp.diagnostics[i]);
    std::ostringstream a, b;
    rs.writeJson(a, &ps);
    rp.writeJson(b, &pp);
    EXPECT_EQ(a.str(), b.str());
}

TEST(Analysis, AnalysisIsDeterministic)
{
    isa::Program p;
    isa::Assembler as(kBase);
    p = as.assembleAll({kernels::runtimeSource(), kernels::bfs()});
    core::ArchConfig config;
    Report a =
        analysis::analyze(p, runtime::analyzerOptions(config, p));
    Report b =
        analysis::analyze(p, runtime::analyzerOptions(config, p));
    ASSERT_EQ(a.diagnostics.size(), b.diagnostics.size());
    for (size_t i = 0; i < a.diagnostics.size(); ++i)
        EXPECT_TRUE(a.diagnostics[i] == b.diagnostics[i]);
}

//
// Driver and sweep integration.
//

TEST(Analysis, DeviceVerifyHook)
{
    core::ArchConfig config;
    runtime::Device dev(config);
    EXPECT_THROW(dev.verify(), FatalError); // nothing uploaded yet
    dev.uploadKernel(kernels::vecadd());
    Report r = dev.verify();
    EXPECT_TRUE(r.clean());
    EXPECT_GT(r.functionCount, 0u);
    EXPECT_GT(r.instructionCount, 0u);
}

TEST(Analysis, WorkloadKernelNamesResolve)
{
    // Every workload the sweep layer can schedule maps onto a registry
    // kernel, so `--verify` can always find the source it runs.
    sweep::WorkloadSpec w;
    w.kind = sweep::WorkloadSpec::Kind::Rodinia;
    w.kernel = "sgemm";
    EXPECT_NE(kernels::kernelSource(sweep::workloadKernelName(w)),
              nullptr);
    w.kind = sweep::WorkloadSpec::Kind::Texture;
    for (auto mode : {runtime::TexFilterMode::Point,
                      runtime::TexFilterMode::Bilinear,
                      runtime::TexFilterMode::Trilinear})
        for (bool hw : {false, true}) {
            w.texFilter = mode;
            w.texHw = hw;
            EXPECT_NE(
                kernels::kernelSource(sweep::workloadKernelName(w)),
                nullptr)
                << sweep::workloadKernelName(w);
        }
}

TEST(Analysis, DiagnosticOrderingIsStable)
{
    analysis::Diagnostic err{Severity::Error, 0x10, "b.check", "m"};
    analysis::Diagnostic warn{Severity::Warning, 0x10, "a.check", "m"};
    analysis::Diagnostic later{Severity::Error, 0x14, "a.check", "m"};
    EXPECT_TRUE(err < warn);   // errors first at the same pc
    EXPECT_TRUE(warn < later); // pc dominates
    EXPECT_FALSE(later < err);
}
