/**
 * @file
 * Fault-injection engine tests (docs/ROBUSTNESS.md): plan generation
 * determinism, the injection hook's architectural effect, watchdog
 * timeout classification under both tick backends, campaigns that
 * record failures as structured rows and still complete the matrix,
 * and the byte-identity of a faulted campaign's CSV across job counts,
 * tick backends, and cache states.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <sstream>
#include <string>

#include <unistd.h>

#include "common/log.h"
#include "common/outcome.h"
#include "core/processor.h"
#include "faults/fault.h"
#include "sweep/campaign.h"
#include "sweep/cli.h"
#include "sweep/presets.h"
#include "sweep/spec.h"

using namespace vortex;
using namespace vortex::sweep;

namespace {

/** Unique scratch directory under the system temp dir. */
std::string
freshTempDir(const char* tag)
{
    static int serial = 0;
    std::string dir =
        (std::filesystem::temp_directory_path() /
         (std::string("vortex_faults_test_") + tag + "_" +
          std::to_string(::getpid()) + "_" + std::to_string(serial++)))
            .string();
    std::filesystem::remove_all(dir);
    return dir;
}

/** A single-run spec over one harness-free `.s` guest, with @p faults
 *  applied. The program path resolves through VORTEX_PROGRAM_PATH
 *  (tests/CMakeLists.txt points it at the source tree). */
RunSpec
guestRun(const std::string& name, const faults::FaultSpec& faults,
         bool parallelTick = false)
{
    SweepSpec s;
    s.name = "faults-one";
    s.base = baselineConfig(1);
    s.base.parallelTick = parallelTick;
    applyField(s.base, s.baseWorkload, "kernel", name);
    applyField(s.base, s.baseWorkload, "program",
               "examples/kernels/" + name + ".s");
    applyField(s.base, s.baseWorkload, "check", "selfcheck");
    s.baseWorkload.faults = faults;
    return s.expand().at(0);
}

std::string
csvOf(const CampaignResult& r)
{
    std::ostringstream os;
    r.writeCsv(os);
    return os.str();
}

} // namespace

//
// Plan generation.
//

TEST(FaultPlan, GenerationIsDeterministicAndSeedSensitive)
{
    faults::FaultSpec spec;
    spec.seed = 42;
    spec.count = 16;
    core::ArchConfig cfg = baselineConfig(2);

    faults::FaultPlan a =
        faults::FaultPlan::generate(spec, cfg, 0x1000, 256);
    faults::FaultPlan b =
        faults::FaultPlan::generate(spec, cfg, 0x1000, 256);
    ASSERT_EQ(a.events.size(), 16u);
    ASSERT_EQ(b.events.size(), 16u);
    for (size_t i = 0; i < a.events.size(); ++i) {
        EXPECT_EQ(a.events[i].cycle, b.events[i].cycle);
        EXPECT_EQ(a.events[i].kind, b.events[i].kind);
        EXPECT_EQ(a.events[i].core, b.events[i].core);
        EXPECT_EQ(a.events[i].warp, b.events[i].warp);
        EXPECT_EQ(a.events[i].lane, b.events[i].lane);
        EXPECT_EQ(a.events[i].reg, b.events[i].reg);
        EXPECT_EQ(a.events[i].addr, b.events[i].addr);
        EXPECT_EQ(a.events[i].bit, b.events[i].bit);
    }

    // A different seed yields a different schedule.
    faults::FaultSpec other = spec;
    other.seed = 43;
    faults::FaultPlan c =
        faults::FaultPlan::generate(other, cfg, 0x1000, 256);
    bool differs = false;
    for (size_t i = 0; i < c.events.size() && !differs; ++i)
        differs = c.events[i].cycle != a.events[i].cycle ||
                  c.events[i].bit != a.events[i].bit ||
                  c.events[i].addr != a.events[i].addr;
    EXPECT_TRUE(differs);
}

TEST(FaultPlan, EventsRespectWindowAndTargetBounds)
{
    faults::FaultSpec spec;
    spec.seed = 7;
    spec.count = 64;
    spec.window = 100;
    core::ArchConfig cfg = baselineConfig(2);
    const Addr base = 0x80000000;
    const uint32_t words = 64;

    faults::FaultPlan plan =
        faults::FaultPlan::generate(spec, cfg, base, words);
    ASSERT_EQ(plan.events.size(), spec.count);
    uint64_t prev = 0;
    for (const faults::FaultEvent& e : plan.events) {
        EXPECT_GE(e.cycle, 1u);
        EXPECT_LE(e.cycle, spec.window);
        EXPECT_GE(e.cycle, prev); // sorted by trigger cycle
        prev = e.cycle;
        EXPECT_LT(e.core, cfg.numCores);
        EXPECT_LT(e.warp, cfg.numWarps);
        EXPECT_LT(e.lane, cfg.numThreads);
        EXPECT_GE(e.reg, 1u); // x0 stays architecturally zero
        EXPECT_LE(e.reg, 31u);
        EXPECT_LT(e.bit, 32u);
        EXPECT_GE(e.addr, base);
        EXPECT_LT(e.addr, base + 4u * words);
        EXPECT_EQ(e.addr % 4, 0u); // word-aligned
    }
}

TEST(FaultSpec, AnyAndCanonicalCoverTheFaultFields)
{
    faults::FaultSpec off;
    EXPECT_FALSE(off.any());
    faults::FaultSpec on;
    on.watchdog = 1;
    EXPECT_TRUE(on.any());

    // Faulted runs get their own cache identity; clean runs keep the
    // pre-faults canonical text (no "faults." lines at all).
    RunSpec clean = guestRun("bitonic", {});
    faults::FaultSpec f;
    f.seed = 2;
    f.count = 64;
    f.window = 2000;
    RunSpec faulted = guestRun("bitonic", f);
    EXPECT_EQ(clean.canonical().find("faults."), std::string::npos);
    EXPECT_NE(faulted.canonical().find("faults.seed = 2"),
              std::string::npos);
    EXPECT_NE(clean.contentHash(), faulted.contentHash());
}

//
// The injection hook.
//

TEST(FaultInjector, OnTickFlipsExactlyThePlannedBits)
{
    core::ArchConfig cfg = baselineConfig(1);
    core::Processor proc(cfg);

    const Addr addr = 0x2000;
    const uint32_t word = 0x0f0f0f0f;
    proc.ram().write32(addr, word);

    faults::FaultPlan plan;
    faults::FaultEvent regHit;
    regHit.cycle = 10;
    regHit.kind = faults::FaultEvent::Kind::RegisterBit;
    regHit.warp = 1;
    regHit.lane = 2;
    regHit.reg = 5;
    regHit.bit = 31;
    faults::FaultEvent memHit;
    memHit.cycle = 20;
    memHit.kind = faults::FaultEvent::Kind::MemoryWord;
    memHit.addr = addr;
    memHit.bit = 0;
    plan.events = {regHit, memHit};

    faults::FaultInjector injector(plan);
    const uint32_t before = proc.core(0).warp(1).iregs[2][5];

    injector.onTick(proc, 9); // nothing due yet
    EXPECT_EQ(injector.applied(), 0u);
    injector.onTick(proc, 10); // the register event fires
    EXPECT_EQ(injector.applied(), 1u);
    EXPECT_EQ(proc.core(0).warp(1).iregs[2][5], before ^ 0x80000000u);
    EXPECT_EQ(proc.ram().read32(addr), word);
    injector.onTick(proc, 25); // a late tick still fires the backlog
    EXPECT_EQ(injector.applied(), 2u);
    EXPECT_EQ(proc.ram().read32(addr), word ^ 1u);
}

//
// Structured run outcomes.
//

TEST(Faults, InjectedRunFailsDeterministicallyWithAStructuredStatus)
{
    // The clean guest self-checks green...
    RunRecord clean = executeRun(guestRun("bitonic", {}));
    ASSERT_TRUE(clean.result.ok) << clean.result.error;
    EXPECT_EQ(clean.result.status, RunStatus::Ok);

    // ...and an aggressive injection (64 flips in the first 2000
    // cycles) is caught by the guest or the machine — a structured
    // failure row, not an exception and not a silent pass.
    faults::FaultSpec f;
    f.seed = 2;
    f.count = 64;
    f.window = 2000;
    f.watchdog = 200000;
    RunRecord hit = executeRun(guestRun("bitonic", f));
    EXPECT_FALSE(hit.result.ok);
    EXPECT_NE(hit.result.status, RunStatus::Ok);
    EXPECT_NE(hit.result.status, RunStatus::HostError);
    EXPECT_FALSE(hit.result.error.empty());

    // Same seed, same outcome, same cycle count: the injection is part
    // of the deterministic simulation, not a perturbation of it.
    RunRecord again = executeRun(guestRun("bitonic", f));
    EXPECT_EQ(again.result.status, hit.result.status);
    EXPECT_EQ(again.result.cycles, hit.result.cycles);
    EXPECT_EQ(again.result.error, hit.result.error);
}

TEST(Faults, HangingGuestTimesOutUnderBothTickBackends)
{
    faults::FaultSpec f;
    f.watchdog = 50000; // no injection — just the cycle watchdog

    RunRecord serial = executeRun(guestRun("hang", f, false));
    EXPECT_FALSE(serial.result.ok);
    EXPECT_EQ(serial.result.status, RunStatus::Timeout);
    EXPECT_EQ(serial.result.cycles, f.watchdog);
    EXPECT_NE(serial.result.error.find("did not complete"),
              std::string::npos);

    RunRecord parallel = executeRun(guestRun("hang", f, true));
    EXPECT_EQ(parallel.result.status, RunStatus::Timeout);
    EXPECT_EQ(parallel.result.cycles, serial.result.cycles);
    EXPECT_EQ(parallel.result.threadInstrs, serial.result.threadInstrs);
}

TEST(Faults, CampaignWithAHangingGuestCompletesTheMatrix)
{
    SweepSpec s;
    s.name = "faults-hang";
    s.base = baselineConfig(1);
    s.baseWorkload.faults.watchdog = 20000;
    Axis w;
    w.name = "kernel";
    for (const char* name : {"reduce_tree", "hang"})
        w.points.push_back(AxisPoint{
            name,
            {{"kernel", name},
             {"program", std::string("examples/kernels/") + name + ".s"},
             {"check", "selfcheck"}}});
    s.axes = {w};

    CampaignResult r = Campaign(CampaignOptions{}).run(s);
    ASSERT_EQ(r.records.size(), 2u);
    EXPECT_TRUE(r.records[0].result.ok);
    EXPECT_EQ(r.records[1].result.status, RunStatus::Timeout);
    EXPECT_EQ(r.failures(), 1u);
    EXPECT_NE(csvOf(r).find(",0,timeout,"), std::string::npos);
}

//
// Campaign-level determinism of the shipped smoke preset.
//

TEST(Faults, SmokeCampaignIsByteIdenticalAcrossJobsBackendsAndCache)
{
    SweepSpec spec = faultSmokeSpec();

    CampaignOptions serial1;
    serial1.jobs = 1;
    CampaignResult baseline = Campaign(serial1).run(spec);
    EXPECT_GT(baseline.failures(), 0u); // the hang rows at minimum
    EXPECT_LT(baseline.failures(), baseline.records.size());
    const std::string bytes = csvOf(baseline);

    CampaignOptions par4;
    par4.jobs = 4;
    EXPECT_EQ(csvOf(Campaign(par4).run(spec)), bytes);

    // The parallel tick backend produces the same rows (parallelTick is
    // execution metadata: same content hashes, same results).
    SweepSpec parSpec = spec;
    parSpec.base.parallelTick = true;
    EXPECT_EQ(csvOf(Campaign(par4).run(parSpec)), bytes);

    // Cold then warm cache: failed runs are never cached (they re-run),
    // ok runs all hit, and the bytes still match.
    std::string dir = freshTempDir("smoke");
    CampaignOptions cached;
    cached.jobs = 4;
    cached.cacheDir = dir;
    CampaignResult cold = Campaign(cached).run(spec);
    EXPECT_EQ(cold.cacheHits, 0u);
    EXPECT_EQ(csvOf(cold), bytes);
    CampaignResult warm = Campaign(cached).run(spec);
    EXPECT_EQ(warm.cacheHits,
              static_cast<uint32_t>(warm.records.size()) -
                  warm.failures());
    EXPECT_EQ(warm.cacheMisses, warm.failures());
    EXPECT_EQ(csvOf(warm), bytes);
    std::filesystem::remove_all(dir);
}

//
// The CLI surface.
//

TEST(Cli, CampaignWithFailuresExitsThreeAndFailFastExitsOne)
{
    // Two hanging runs: the matrix completes and the process reports
    // "completed with failures" (exit 3, distinct from fatal's 1).
    std::vector<std::string> run = {
        "run",     "--axis", "faults.seed=1,2",
        "--set",   "kernel=hang",
        "--set",   "program=examples/kernels/hang.s",
        "--set",   "check=selfcheck",
        "--faults", "watchdog=20000",
        "--name",  "cli-hang", "--no-csv", "--quiet"};
    EXPECT_EQ(cliMain(run), 3);

    std::vector<std::string> fast = run;
    fast.push_back("--fail-fast");
    EXPECT_EQ(cliMain(fast), 1);

    // A malformed --faults argument is a usage-level fatal.
    EXPECT_EQ(cliMain({"run", "--preset", "fault_smoke", "--faults",
                       "bogus=1", "--no-csv", "--quiet"}),
              1);
}
