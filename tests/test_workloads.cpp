/**
 * @file
 * Tests for the harness-free workload zoo (the .s files under
 * examples/kernels/ run with `check = "selfcheck"`): every checked-in self-checking guest program
 * runs green through the self-check mailbox on two machine geometries
 * and both tick backends, with bit-identical cycles and retired thread
 * instructions between the backends (the simulator's determinism
 * contract for data-race-free guests); a deliberately corrupted
 * workload must FAIL through the mailbox, not silently pass; and the
 * shipped workload_zoo spec drives the same programs end to end.
 */

#include <fstream>
#include <gtest/gtest.h>
#include <iterator>
#include <sstream>

#include "common/log.h"
#include "runtime/device.h"
#include "runtime/workloads.h"
#include "sweep/presets.h"
#include "sweep/spec.h"
#include "sweep/specfile.h"

using namespace vortex;

namespace {

/** The self-checking guests; every file here must be green under
 *  `check = "selfcheck"` with zero per-workload C++ harness code. Keep
 *  in sync with the workload_zoo preset (src/sweep/presets.cpp). */
const char* const kZoo[] = {"bitonic",        "reduce_tree",
                            "histogram",      "stress_barrier",
                            "stress_diverge", "stress_bank"};

std::string
kernelsDir()
{
    return VORTEX_KERNELS_DIR;
}

std::string
readFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.is_open()) << "cannot open " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Self-check workload spec for one zoo program. */
sweep::WorkloadSpec
zooWorkload(const std::string& name)
{
    sweep::WorkloadSpec w;
    w.kernel = name;
    w.program = kernelsDir() + "/" + name + ".s";
    w.programSource = readFile(w.program);
    w.check = "selfcheck";
    return w;
}

} // namespace

TEST(WorkloadZoo, EveryWorkloadSelfChecksBitIdenticalAcrossBackends)
{
    for (const char* name : kZoo) {
        sweep::WorkloadSpec w = zooWorkload(name);
        for (uint32_t cores : {1u, 4u}) {
            core::ArchConfig cfg = sweep::baselineConfig(1);
            cfg.numCores = cores;

            uint64_t serialCycles = 0, serialInstrs = 0;
            for (bool parallel : {false, true}) {
                cfg.parallelTick = parallel;
                cfg.tickThreads = parallel ? 2 : 0;
                runtime::Device dev(cfg);
                runtime::RunResult r = w.run(dev);
                ASSERT_TRUE(r.ok)
                    << name << " cores=" << cores
                    << " parallel=" << parallel << ": " << r.error;
                EXPECT_TRUE(dev.readSelfCheck().passed()) << name;
                if (!parallel) {
                    serialCycles = r.cycles;
                    serialInstrs = r.threadInstrs;
                } else {
                    EXPECT_EQ(r.cycles, serialCycles)
                        << name << " cores=" << cores;
                    EXPECT_EQ(r.threadInstrs, serialInstrs)
                        << name << " cores=" << cores;
                }
            }
        }
    }
}

TEST(WorkloadZoo, CorruptedWorkloadFailsThroughTheMailbox)
{
    // Sabotage stress_barrier's expectation (sum(1..32) = 528 -> 529):
    // every counter now mismatches, the guest takes its FAIL path, and
    // the verdict must surface both in the mailbox and in the result.
    // A check harness that "passed" here would be vacuous.
    std::string source = readFile(kernelsDir() + "/stress_barrier.s");
    const std::string good = "li t6, 528";
    size_t at = source.find(good);
    ASSERT_NE(at, std::string::npos);
    source.replace(at, good.size(), "li t6, 529");

    core::ArchConfig cfg = sweep::baselineConfig(1);
    runtime::Device dev(cfg);
    dev.setKernelOverride(source, "stress_barrier_corrupt.s");
    runtime::RunResult r = runtime::runSelfCheck(dev);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("self-check FAIL"), std::string::npos)
        << r.error;
    runtime::Device::SelfCheck check = dev.readSelfCheck();
    EXPECT_TRUE(check.failed());
    EXPECT_FALSE(check.passed());
    // Detail word: first bad counter index — counter[0] already wrong.
    EXPECT_EQ(check.detail, 0u);
}

TEST(WorkloadZoo, GuestThatNeverReportsIsAFailureNotAPass)
{
    // A program that finishes without touching the mailbox must not be
    // confused with a passing one: status stays 0 (Device::start()
    // zeroes the mailbox) and runSelfCheck reports the missing verdict.
    core::ArchConfig cfg = sweep::baselineConfig(1);
    runtime::Device dev(cfg);
    dev.setKernelOverride("main:\n    ret\n", "silent.s");
    runtime::RunResult r = runtime::runSelfCheck(dev);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("never wrote a self-check verdict"),
              std::string::npos)
        << r.error;
    runtime::Device::SelfCheck check = dev.readSelfCheck();
    EXPECT_FALSE(check.passed());
    EXPECT_FALSE(check.failed());
    EXPECT_EQ(check.status, 0u);
}

TEST(WorkloadZoo, ShippedZooSpecCoversEveryWorkloadWithSelfCheck)
{
    // The shipped spec is the CI entry point for the zoo: it must name
    // every checked-in self-checking workload (at 1 and 2 cores) and
    // route each through `check = "selfcheck"` with its source eagerly
    // read (the program text is part of the cache key).
    ::setenv("VORTEX_PROGRAM_PATH", (kernelsDir() + "/../..").c_str(), 1);
    sweep::SweepSpec spec = sweep::parseSpecFile(
        std::string(VORTEX_SPECS_DIR) + "/workload_zoo.toml");
    std::vector<sweep::RunSpec> runs = spec.expand();
    ASSERT_EQ(runs.size(), std::size(kZoo) * 2);
    for (const char* name : kZoo) {
        size_t points = 0;
        for (const sweep::RunSpec& r : runs) {
            if (r.workload.kernel != name)
                continue;
            ++points;
            EXPECT_EQ(r.workload.check, "selfcheck") << r.id();
            EXPECT_EQ(r.workload.program,
                      std::string("examples/kernels/") + name + ".s")
                << r.id();
            EXPECT_FALSE(r.workload.programSource.empty()) << r.id();
            EXPECT_NE(r.canonical().find("check = selfcheck"),
                      std::string::npos)
                << r.id();
        }
        EXPECT_EQ(points, 2u) << name;
    }
}
