/**
 * @file
 * Golden simulated-timing gate for host-performance work: the exact
 * cycle counts, thread-instruction counts, and headline device counters
 * of all six `perf_smoke` runs, pinned to the values recorded in the
 * committed BENCH_PR.json (the CI bench-trajectory baseline), for BOTH
 * tick backends.
 *
 * Purpose: any host-perf refactor (decode caches, pooled uops, slot
 * pools, counter handles, ...) must leave simulated timing bit-identical
 * — these numbers may only change when the *timing model* deliberately
 * changes, and such a PR must update BENCH_PR.json and this table
 * together, saying so.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "runtime/device.h"
#include "sweep/presets.h"
#include "sweep/spec.h"

using namespace vortex;

namespace {

/** One pinned run: matrix-order id + the BENCH_PR.json headline row. */
struct Golden
{
    const char* id; ///< RunSpec::id(), e.g. "vecadd/1"
    uint64_t cycles;
    uint64_t threadInstrs;
    uint64_t coreRetired;
    uint64_t icacheReads;
    uint64_t dcacheReads;
    uint64_t dcacheReadHits;
    uint64_t dcacheReadMisses;
    uint64_t memBytes;
};

/** The committed BENCH_PR.json baseline (trajectory point 1, PR 3). */
const Golden kGolden[] = {
    {"vecadd/1", 29368, 46140, 11582, 11582, 10338, 9152, 1186, 155840},
    {"vecadd/2", 16416, 47224, 11900, 11900, 10436, 8675, 1761, 164544},
    {"saxpy/1", 29799, 44092, 11070, 11070, 10338, 9125, 1213, 155776},
    {"saxpy/2", 16542, 45176, 11388, 11388, 10436, 9109, 1327, 163712},
    {"sgemm/1", 50766, 113981, 28543, 28543, 30050, 29560, 490, 49536},
    {"sgemm/2", 29821, 115066, 28862, 28862, 30148, 29200, 948, 62144},
};

/** Execute every perf_smoke run on the given tick backend and compare
 *  cycles / instructions / headline counters against the pinned table. */
void
checkBackend(bool parallel_tick)
{
    sweep::SweepSpec spec = sweep::perfSmokeSpec();
    std::vector<sweep::RunSpec> runs = spec.expand();
    ASSERT_EQ(runs.size(), std::size(kGolden));

    for (size_t i = 0; i < runs.size(); ++i) {
        sweep::RunSpec& run = runs[i];
        const Golden& want = kGolden[i];
        ASSERT_EQ(run.id(), want.id) << "matrix order drifted";

        run.config.parallelTick = parallel_tick;
        run.config.tickThreads = parallel_tick ? 2 : 0;
        runtime::Device dev(run.config);
        runtime::RunResult r = run.workload.run(dev);
        ASSERT_TRUE(r.ok) << run.id() << ": " << r.error;

        StatGroup flat;
        dev.processor().collectStats(flat);

        const char* backend = parallel_tick ? " [parallel]" : " [serial]";
        EXPECT_EQ(r.cycles, want.cycles) << want.id << backend;
        EXPECT_EQ(r.threadInstrs, want.threadInstrs) << want.id << backend;
        EXPECT_EQ(flat.get("core.thread_instrs"), want.threadInstrs)
            << want.id << backend;
        EXPECT_EQ(flat.get("core.retired"), want.coreRetired)
            << want.id << backend;
        EXPECT_EQ(flat.get("icache.core_reads"), want.icacheReads)
            << want.id << backend;
        EXPECT_EQ(flat.get("dcache.core_reads"), want.dcacheReads)
            << want.id << backend;
        EXPECT_EQ(flat.get("dcache.read_hits"), want.dcacheReadHits)
            << want.id << backend;
        EXPECT_EQ(flat.get("dcache.read_misses"), want.dcacheReadMisses)
            << want.id << backend;
        EXPECT_EQ(flat.get("mem.bytes"), want.memBytes)
            << want.id << backend;
    }
}

} // namespace

TEST(Golden, PerfSmokeSerialTickMatchesBenchBaseline)
{
    checkBackend(/*parallel_tick=*/false);
}

TEST(Golden, PerfSmokeParallelTickMatchesBenchBaseline)
{
    checkBackend(/*parallel_tick=*/true);
}
