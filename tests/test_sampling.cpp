/**
 * @file
 * Tests for per-interval counter sampling: the StatSampler delta
 * encoding, the Processor-level determinism contract (serial vs parallel
 * tick backends produce bit-identical time series), the campaign plumbing
 * (job-count and cache-state byte-stability of the time-series JSON,
 * cache round-trip of a RunRecord with a series), disabled-by-default
 * behavior, and the result-cache hygiene tools (manifest + prune).
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/log.h"
#include "common/stats.h"
#include "core/processor.h"
#include "runtime/device.h"
#include "runtime/workloads.h"
#include "sweep/cache.h"
#include "sweep/campaign.h"
#include "sweep/presets.h"
#include "sweep/spec.h"

using namespace vortex;

namespace {

/** Unique scratch directory under the system temp dir. */
std::string
freshTempDir(const char* tag)
{
    static int serial = 0;
    std::string dir =
        (std::filesystem::temp_directory_path() /
         (std::string("vortex_sampling_test_") + tag + "_" +
          std::to_string(::getpid()) + "_" + std::to_string(serial++)))
            .string();
    std::filesystem::remove_all(dir);
    return dir;
}

/** Run @p kernel on a machine with @p cfg and return the recorded
 *  series plus the end-of-run flattened counters. */
std::pair<TimeSeries, StatGroup>
runSampled(const core::ArchConfig& cfg, const std::string& kernel)
{
    runtime::Device dev(cfg);
    runtime::RunResult r = runtime::runRodinia(dev, kernel, 1);
    EXPECT_TRUE(r.ok) << kernel << ": " << r.error;
    StatGroup flat;
    dev.processor().collectStats(flat);
    return {dev.processor().timeSeries(), flat};
}

/** A small sampled sweep: 2 kernels x 2 wavefront counts. */
sweep::SweepSpec
sampledSpec(uint64_t interval)
{
    sweep::SweepSpec s;
    s.name = "sampled";
    s.base = sweep::baselineConfig(1);
    s.base.sampleInterval = interval;
    s.axes = {sweep::Axis::sweep("kernel", {"vecadd", "saxpy"}),
              sweep::Axis::sweepU32("numWarps", {2, 4})};
    return s;
}

} // namespace

TEST(StatSampler, DisabledSamplerRecordsNothing)
{
    StatSampler sampler; // default: interval 0
    EXPECT_FALSE(sampler.enabled());
    EXPECT_FALSE(sampler.due(1000));
    StatGroup g;
    g.counter("x") = 5;
    sampler.finalize(1234, g);
    EXPECT_TRUE(sampler.series().empty());
    EXPECT_EQ(sampler.series().interval, 0u);
}

TEST(StatSampler, DeltaEncodingAndLateKeyBackfill)
{
    StatSampler sampler(100);
    EXPECT_TRUE(sampler.due(100));
    EXPECT_TRUE(sampler.due(200));
    EXPECT_FALSE(sampler.due(150));

    StatGroup g;
    g.counter("a") = 10;
    sampler.sample(100, g);
    g.counter("a") = 25;
    sampler.sample(200, g);
    // "b" first appears in window 3: its row must be backfilled with
    // zeros for windows 1-2 so the matrix stays rectangular.
    g.counter("a") = 25;
    g.counter("b") = 7;
    sampler.sample(300, g);
    // End-of-run remainder window at cycle 342.
    g.counter("a") = 30;
    g.counter("b") = 7;
    sampler.finalize(342, g);
    // finalize on an already-sampled cycle is a no-op.
    sampler.finalize(342, g);

    const TimeSeries& ts = sampler.series();
    ASSERT_EQ(ts.numSamples(), 4u);
    EXPECT_EQ(ts.sampleCycles,
              (std::vector<uint64_t>{100, 200, 300, 342}));
    ASSERT_EQ(ts.keys, (std::vector<std::string>{"a", "b"}));
    EXPECT_EQ(ts.deltas[0], (std::vector<uint64_t>{10, 15, 0, 5}));
    EXPECT_EQ(ts.deltas[1], (std::vector<uint64_t>{0, 0, 7, 0}));
    EXPECT_EQ(ts.total("a"), 30u);
    EXPECT_EQ(ts.total("b"), 7u);
    EXPECT_EQ(ts.total("nope"), 0u);
}

TEST(Sampling, DisabledByDefaultOnTheDevice)
{
    core::ArchConfig cfg; // sampleInterval defaults to 0
    EXPECT_EQ(cfg.sampleInterval, 0u);
    auto [ts, flat] = runSampled(cfg, "vecadd");
    EXPECT_TRUE(ts.empty());
    EXPECT_EQ(ts.interval, 0u);
    EXPECT_GT(flat.get("core.retired"), 0u); // the run itself happened
}

TEST(Sampling, SeriesSumsToEndOfRunCounters)
{
    core::ArchConfig cfg;
    cfg.sampleInterval = 500;
    auto [ts, flat] = runSampled(cfg, "vecadd");

    ASSERT_FALSE(ts.empty());
    EXPECT_EQ(ts.interval, 500u);
    // Every sample but the last lands on a multiple of the interval;
    // stamps are strictly increasing.
    for (size_t s = 0; s + 1 < ts.numSamples(); ++s) {
        EXPECT_EQ(ts.sampleCycles[s] % 500, 0u);
        EXPECT_LT(ts.sampleCycles[s], ts.sampleCycles[s + 1]);
    }
    // Delta-encoding invariant: summing a counter's windows reproduces
    // its end-of-run value, for every counter in the flattened group.
    for (const auto& [key, value] : flat.all())
        EXPECT_EQ(ts.total(key), value) << key;
    // The synthetic IPC numerator is present and rectangular.
    ASSERT_EQ(ts.keys[0], "core.thread_instrs");
    for (const auto& row : ts.deltas)
        EXPECT_EQ(row.size(), ts.numSamples());
}

TEST(Sampling, BitIdenticalAcrossSerialAndParallelTickBackends)
{
    // A 2-core machine so the parallel backend has real work to split,
    // with a forced 2-thread pool (this container has 1 host CPU).
    core::ArchConfig serial = sweep::baselineConfig(2);
    serial.sampleInterval = 512;
    core::ArchConfig parallel = serial;
    parallel.parallelTick = true;
    parallel.tickThreads = 2;

    for (const char* kernel : {"vecadd", "sgemm"}) {
        auto [ts1, flat1] = runSampled(serial, kernel);
        auto [ts2, flat2] = runSampled(parallel, kernel);
        ASSERT_FALSE(ts1.empty());
        EXPECT_TRUE(ts1 == ts2) << kernel;
        EXPECT_EQ(flat1.all(), flat2.all()) << kernel;
    }
}

TEST(SamplingSweep, SampleIntervalIsARegisteredFieldAndHashed)
{
    core::ArchConfig cfg;
    sweep::WorkloadSpec wl;
    ASSERT_TRUE(sweep::applyField(cfg, wl, "sampleInterval", "10000"));
    EXPECT_EQ(cfg.sampleInterval, 10000u);

    // Sampling changes the cache key (a cached record must carry the
    // series the request asks for) ...
    sweep::RunSpec off, on;
    on.config.sampleInterval = 10000;
    EXPECT_NE(off.contentHash(), on.contentHash());
    // ... but the tick backend still does not.
    sweep::RunSpec onParallel = on;
    onParallel.config.parallelTick = true;
    EXPECT_EQ(on.contentHash(), onParallel.contentHash());
}

TEST(SamplingSweep, TimeSeriesJsonByteStableAcrossJobsAndCache)
{
    sweep::SweepSpec spec = sampledSpec(1000);

    sweep::CampaignOptions j1;
    j1.jobs = 1;
    std::ostringstream ts1;
    sweep::Campaign(j1).run(spec).writeTimeSeriesJson(ts1);

    sweep::CampaignOptions j4;
    j4.jobs = 4;
    std::ostringstream ts4;
    sweep::Campaign(j4).run(spec).writeTimeSeriesJson(ts4);
    EXPECT_EQ(ts1.str(), ts4.str());

    // Cold store then warm restore: same bytes again, via the cache.
    std::string dir = freshTempDir("ts");
    sweep::CampaignOptions cached;
    cached.jobs = 2;
    cached.cacheDir = dir;
    std::ostringstream cold, warm;
    sweep::Campaign(cached).run(spec).writeTimeSeriesJson(cold);
    sweep::CampaignResult warmResult = sweep::Campaign(cached).run(spec);
    warmResult.writeTimeSeriesJson(warm);
    EXPECT_EQ(warmResult.cacheHits, 4u);
    EXPECT_EQ(ts1.str(), cold.str());
    EXPECT_EQ(ts1.str(), warm.str());

    // Balanced braces/brackets as a JSON sanity floor.
    const std::string s = ts1.str();
    EXPECT_EQ(std::count(s.begin(), s.end(), '{'),
              std::count(s.begin(), s.end(), '}'));
    EXPECT_EQ(std::count(s.begin(), s.end(), '['),
              std::count(s.begin(), s.end(), ']'));
    EXPECT_NE(s.find("\"interval\": 1000"), std::string::npos);
    EXPECT_NE(s.find("\"core.thread_instrs\": ["), std::string::npos);
    std::filesystem::remove_all(dir);
}

TEST(SamplingSweep, CacheRoundTripsTheSeriesExactly)
{
    std::string dir = freshTempDir("roundtrip");
    sweep::SweepSpec spec = sampledSpec(750);
    sweep::CampaignOptions opts;
    opts.cacheDir = dir;

    sweep::CampaignResult cold = sweep::Campaign(opts).run(spec);
    sweep::CampaignResult warm = sweep::Campaign(opts).run(spec);
    ASSERT_EQ(warm.records.size(), cold.records.size());
    for (size_t i = 0; i < warm.records.size(); ++i) {
        EXPECT_TRUE(warm.records[i].fromCache);
        EXPECT_FALSE(cold.records[i].series.empty());
        EXPECT_TRUE(warm.records[i].series == cold.records[i].series)
            << warm.records[i].spec.id();
    }

    // A run without sampling is a different cache entry: no false hit.
    sweep::SweepSpec unsampled = sampledSpec(0);
    sweep::CampaignResult miss = sweep::Campaign(opts).run(unsampled);
    EXPECT_EQ(miss.cacheHits, 0u);
    EXPECT_EQ(miss.cacheMisses, 4u);
    for (const sweep::RunRecord& r : miss.records)
        EXPECT_TRUE(r.series.empty());
    std::filesystem::remove_all(dir);
}

TEST(CacheHygiene, ManifestListsEntriesAndPruneRemovesThem)
{
    std::string dir = freshTempDir("hygiene");
    sweep::SweepSpec spec = sampledSpec(0);
    sweep::CampaignOptions opts;
    opts.cacheDir = dir;
    sweep::Campaign(opts).run(spec);

    // The campaign wrote 4 entries and a manifest describing them.
    sweep::CacheStore store(dir);
    std::vector<sweep::CacheEntryInfo> entries = store.entries();
    ASSERT_EQ(entries.size(), 4u);
    for (const sweep::CacheEntryInfo& e : entries) {
        EXPECT_EQ(e.hash.size(), 16u);
        EXPECT_EQ(e.campaign, "sampled");
        EXPECT_FALSE(e.id.empty());
        EXPECT_GT(e.mtime, 0);
    }
    std::ifstream mf(dir + "/manifest.json");
    ASSERT_TRUE(mf.good());
    std::stringstream buf;
    buf << mf.rdbuf();
    EXPECT_NE(buf.str().find(entries[0].hash), std::string::npos);
    EXPECT_NE(buf.str().find("\"campaign\": \"sampled\""),
              std::string::npos);

    // Age-bounded prune keeps everything (entries are seconds old) ...
    EXPECT_EQ(store.prune(1.0), 0u);
    EXPECT_EQ(store.entries().size(), 4u);
    // ... an unbounded prune removes everything and leaves an empty,
    // well-formed manifest behind.
    EXPECT_EQ(store.prune(), 4u);
    EXPECT_TRUE(store.entries().empty());
    std::ifstream mf2(dir + "/manifest.json");
    std::stringstream buf2;
    buf2 << mf2.rdbuf();
    EXPECT_NE(buf2.str().find("\"entries\": ["), std::string::npos);
    std::filesystem::remove_all(dir);
}

TEST(Presets, PerfSmokePresetAndBenchHarnessAliases)
{
    const sweep::Preset* smoke = sweep::findPreset("perf_smoke");
    ASSERT_NE(smoke, nullptr);
    sweep::SweepSpec spec = smoke->sweep({});
    EXPECT_EQ(spec.runCount(), 6u);
    EXPECT_EQ(spec.expand().size(), 6u);

    // The long bench-harness names resolve to the short presets.
    EXPECT_EQ(sweep::findPreset("fig18_scaling"),
              sweep::findPreset("fig18"));
    EXPECT_EQ(sweep::findPreset("fig19_cache_ports"),
              sweep::findPreset("fig19"));
    EXPECT_EQ(sweep::findPreset("table3_core_area"),
              sweep::findPreset("table3"));
    EXPECT_NE(sweep::findPreset("fig18_scaling"), nullptr);
    EXPECT_EQ(sweep::findPreset("fig99_bogus"), nullptr);
    EXPECT_EQ(sweep::findPreset("ablation_bogus"), nullptr);
}

TEST(SamplingSweep, BenchJsonCarriesHostSecondsAndHeadlines)
{
    sweep::SweepSpec spec = sampledSpec(0);
    sweep::CampaignResult r = sweep::Campaign().run(spec);
    std::ostringstream os;
    r.writeBenchJson(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("\"total_host_seconds\": "), std::string::npos);
    EXPECT_NE(s.find("\"from_cache\": false"), std::string::npos);
    EXPECT_NE(s.find("\"core.thread_instrs\": "), std::string::npos);
    EXPECT_EQ(std::count(s.begin(), s.end(), '{'),
              std::count(s.begin(), s.end(), '}'));
}
