/**
 * @file
 * Quickstart: the complete host-side flow for running a kernel on the
 * simulated Vortex device — allocate device buffers, copy inputs, upload
 * the kernel (assembled RISC-V with the Vortex ISA extension), write the
 * argument mailbox, start, wait, and read results back. This mirrors the
 * OPAE/PCIe driver flow of the paper's §5.1 one-to-one.
 */

#include <cstdio>
#include <vector>

#include "kernels/kernels.h"
#include "runtime/device.h"
#include "runtime/kargs.h"

using namespace vortex;

int
main()
{
    // A 4-core machine of the paper's baseline 4W-4T cores.
    core::ArchConfig cfg;
    cfg.numCores = 4;
    cfg.numWarps = 4;
    cfg.numThreads = 4;
    cfg.l2Enabled = true;
    runtime::Device dev(cfg);

    // Host data.
    const uint32_t n = 4096;
    std::vector<int32_t> a(n), b(n), c(n);
    for (uint32_t i = 0; i < n; ++i) {
        a[i] = static_cast<int32_t>(i);
        b[i] = static_cast<int32_t>(2 * i);
    }

    // 1. Allocate device-local memory and copy the inputs in.
    Addr da = dev.memAlloc(n * 4);
    Addr db = dev.memAlloc(n * 4);
    Addr dc = dev.memAlloc(n * 4);
    dev.copyToDev(da, a.data(), n * 4);
    dev.copyToDev(db, b.data(), n * 4);

    // 2. Upload the kernel: the embedded vecadd RISC-V source is assembled
    //    together with the native runtime (crt0 + spawn_tasks).
    dev.uploadKernel(kernels::vecadd());

    // 3. Write the kernel arguments and run.
    dev.setKernelArg(runtime::VecAddArgs{n, da, db, dc});
    dev.runKernel();

    // 4. Read results back and check.
    dev.copyFromDev(c.data(), dc, n * 4);
    uint32_t errors = 0;
    for (uint32_t i = 0; i < n; ++i) {
        if (c[i] != a[i] + b[i])
            ++errors;
    }

    std::printf("vecadd: %u elements, %s\n", n,
                errors == 0 ? "PASSED" : "FAILED");
    std::printf("cycles: %llu   thread-instructions: %llu   IPC: %.3f\n",
                static_cast<unsigned long long>(dev.cycles()),
                static_cast<unsigned long long>(
                    dev.processor().threadInstrs()),
                dev.ipc());
    return errors == 0 ? 0 : 1;
}
