/**
 * @file
 * Graph-analytics example (one of the application domains the paper's
 * introduction motivates): breadth-first search over a synthetic
 * small-world graph on the simulated GPU, with the iterative frontier
 * kernel synchronizing cores through global barriers.
 */

#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "kernels/kernels.h"
#include "runtime/device.h"
#include "runtime/kargs.h"

using namespace vortex;

int
main()
{
    const uint32_t num_nodes = 2048;
    const uint32_t ring_hops = 2;   // local edges per side
    const uint32_t shortcuts = 1;   // random long-range edges
    const uint32_t max_degree = 2 * ring_hops + shortcuts;

    // Watts-Strogatz-style small world: ring lattice + random shortcuts.
    Xorshift rng(7);
    std::vector<uint32_t> row_ptr(num_nodes + 1, 0), col_idx;
    for (uint32_t i = 0; i < num_nodes; ++i) {
        for (uint32_t h = 1; h <= ring_hops; ++h) {
            col_idx.push_back((i + h) % num_nodes);
            col_idx.push_back((i + num_nodes - h) % num_nodes);
        }
        col_idx.push_back(rng.nextBounded(num_nodes));
        row_ptr[i + 1] = static_cast<uint32_t>(col_idx.size());
    }

    core::ArchConfig cfg;
    cfg.numCores = 4;
    cfg.l2Enabled = true;
    runtime::Device dev(cfg);

    std::vector<int32_t> levels(num_nodes, -1);
    levels[0] = 0;
    Addr drow = dev.memAlloc(row_ptr.size() * 4);
    Addr dcol = dev.memAlloc(col_idx.size() * 4);
    Addr dlev = dev.memAlloc(levels.size() * 4);
    Addr dchg = dev.memAlloc(4);
    dev.copyToDev(drow, row_ptr.data(), row_ptr.size() * 4);
    dev.copyToDev(dcol, col_idx.data(), col_idx.size() * 4);
    dev.copyToDev(dlev, levels.data(), levels.size() * 4);

    dev.uploadKernel(kernels::bfs());
    dev.setKernelArg(
        runtime::BfsArgs{num_nodes, max_degree, drow, dcol, dlev, dchg, 0});
    dev.runKernel();
    dev.copyFromDev(levels.data(), dlev, levels.size() * 4);

    // Level histogram.
    int32_t max_level = 0;
    uint32_t unreachable = 0;
    for (int32_t l : levels) {
        if (l < 0)
            ++unreachable;
        else
            max_level = std::max(max_level, l);
    }
    std::vector<uint32_t> hist(max_level + 1, 0);
    for (int32_t l : levels) {
        if (l >= 0)
            ++hist[l];
    }

    std::printf("BFS over %u nodes / %zu edges on a 4-core device\n",
                num_nodes, col_idx.size());
    std::printf("cycles: %llu   IPC: %.3f   levels: %d   unreachable: %u\n",
                static_cast<unsigned long long>(dev.cycles()), dev.ipc(),
                max_level, unreachable);
    for (int32_t l = 0; l <= max_level; ++l) {
        std::printf("  level %2d: %5u ", l, hist[l]);
        for (uint32_t i = 0; i < hist[l] / 16 + 1; ++i)
            std::printf("*");
        std::printf("\n");
    }
    return 0;
}
