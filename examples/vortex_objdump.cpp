/**
 * @file
 * Developer tool: assemble one of the embedded kernels (runtime included)
 * and dump an objdump-style listing — addresses, raw words, disassembly,
 * and symbol labels. Demonstrates the assembler/disassembler pair and the
 * debugging workflow of §4.4.
 *
 * Usage: vortex_objdump [kernel]   (default: vecadd; `list` lists names)
 */

#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "isa/assembler.h"
#include "isa/isa.h"
#include "kernels/kernels.h"

using namespace vortex;

namespace {

const std::map<std::string, const char* (*)()>&
kernelTable()
{
    static const std::map<std::string, const char* (*)()> table = {
        {"vecadd", kernels::vecadd},
        {"saxpy", kernels::saxpy},
        {"sgemm", kernels::sgemm},
        {"sfilter", kernels::sfilter},
        {"nearn", kernels::nearn},
        {"gaussian", kernels::gaussian},
        {"bfs", kernels::bfs},
        {"tex_point_hw", kernels::texPointHw},
        {"tex_bilinear_hw", kernels::texBilinearHw},
        {"tex_trilinear_hw", kernels::texTrilinearHw},
        {"tex_point_sw", kernels::texPointSw},
        {"tex_bilinear_sw", kernels::texBilinearSw},
        {"tex_trilinear_sw", kernels::texTrilinearSw},
    };
    return table;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string name = argc > 1 ? argv[1] : "vecadd";
    if (name == "list" || name == "--list") {
        for (const auto& [k, fn] : kernelTable()) {
            (void)fn;
            std::printf("%s\n", k.c_str());
        }
        return 0;
    }
    auto it = kernelTable().find(name);
    if (it == kernelTable().end()) {
        std::fprintf(stderr, "unknown kernel '%s' (try `list`)\n",
                     name.c_str());
        return 1;
    }

    isa::Assembler as(0x80000000);
    isa::Program prog =
        as.assembleAll({kernels::runtimeSource(), it->second()});

    // Invert the symbol table for label printing.
    std::map<Addr, std::string> labels;
    for (const auto& [sym, addr] : prog.symbols)
        labels[addr] = sym;

    std::printf("%s: %zu bytes at 0x%08X, entry 0x%08X, %zu symbols\n\n",
                name.c_str(), prog.size(), prog.base, prog.entry,
                prog.symbols.size());
    for (size_t off = 0; off + 4 <= prog.image.size(); off += 4) {
        Addr addr = prog.base + static_cast<Addr>(off);
        auto lit = labels.find(addr);
        if (lit != labels.end())
            std::printf("\n%08X <%s>:\n", addr, lit->second.c_str());
        uint32_t word;
        std::memcpy(&word, &prog.image[off], 4);
        isa::Instr in = isa::decode(word);
        if (in.valid())
            std::printf("  %08X:  %08X   %s\n", addr, word,
                        isa::disassemble(in).c_str());
        else
            std::printf("  %08X:  %08X   .word\n", addr, word);
    }
    return 0;
}
