/**
 * @file
 * Graphics example: the full rendering flow of the paper's §5.5 —
 * geometry processing on the host, tile-based software rasterization with
 * depth test + fog, and texture sampling through the same sampler model
 * the hardware texture unit uses. Renders a textured cube over a textured
 * ground plane and writes `scene.ppm`.
 *
 * A second pass then runs the *device-side* path: the bilinear texture
 * kernel (hardware `tex` instruction) renders the checker texture on the
 * simulated GPU into device memory, and the result is written to
 * `scene_gpu_pass.ppm` — demonstrating that the host sampler and the
 * hardware unit are texel-identical.
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "graphics/pipeline.h"
#include "runtime/device.h"
#include "runtime/kargs.h"
#include "runtime/workloads.h"
#include "kernels/kernels.h"

using namespace vortex;
using namespace vortex::graphics;

namespace {

/** Build a checkerboard RGBA8 texture into @p ram at @p base. */
void
makeChecker(mem::Ram& ram, Addr base, uint32_t size_log2)
{
    uint32_t size = 1u << size_log2;
    for (uint32_t y = 0; y < size; ++y) {
        for (uint32_t x = 0; x < size; ++x) {
            bool on = ((x >> 3) ^ (y >> 3)) & 1;
            tex::Color c = on ? tex::Color{230, 60, 40, 255}
                              : tex::Color{245, 240, 220, 255};
            ram.write32(base + (y * size + x) * 4, c.pack());
        }
    }
}

void
addQuad(std::vector<Vertex>& vtx, std::vector<uint32_t>& idx, Vec3 a, Vec3 b,
        Vec3 c, Vec3 d, Vec4 color, float uv_scale)
{
    uint32_t base = static_cast<uint32_t>(vtx.size());
    Vertex v;
    v.color = color;
    v.position = Vec4(a, 1.0f);
    v.uv = {0.0f, 0.0f};
    vtx.push_back(v);
    v.position = Vec4(b, 1.0f);
    v.uv = {uv_scale, 0.0f};
    vtx.push_back(v);
    v.position = Vec4(c, 1.0f);
    v.uv = {uv_scale, uv_scale};
    vtx.push_back(v);
    v.position = Vec4(d, 1.0f);
    v.uv = {0.0f, uv_scale};
    vtx.push_back(v);
    for (uint32_t i : {0u, 1u, 2u, 0u, 2u, 3u})
        idx.push_back(base + i);
}

} // namespace

int
main()
{
    const uint32_t width = 320, height = 240;
    Framebuffer fb(width, height);
    Pipeline pipe(fb);

    // Texture lives in a host-side RAM; the same SamplerState type
    // configures both this pipeline and the device texture unit.
    mem::Ram texram;
    const uint32_t tex_log2 = 6;
    makeChecker(texram, 0x1000, tex_log2);
    tex::SamplerState st;
    st.addr = 0x1000;
    st.widthLog2 = tex_log2;
    st.heightLog2 = tex_log2;
    st.format = tex::Format::RGBA8;
    st.wrapU = st.wrapV = tex::Wrap::Repeat;
    st.filter = tex::Filter::Bilinear;
    pipe.bindTexture(&texram, st);

    pipe.fogState().enabled = true;
    pipe.fogState().mode = FogState::Mode::Linear;
    pipe.fogState().color = {0.65f, 0.75f, 0.9f};
    pipe.fogState().start = 4.0f;
    pipe.fogState().end = 14.0f;

    pipe.setFragmentShader([&](const FragmentIn& in) -> Vec4 {
        Vec4 t = pipe.sampleTexture(in.uv.x, in.uv.y);
        return {t.x * in.color.x, t.y * in.color.y, t.z * in.color.z,
                t.w * in.color.w};
    });

    // Host geometry stage: model -> clip space.
    Mat4 proj = Mat4::perspective(1.1f, static_cast<float>(width) / height,
                                  0.5f, 50.0f);
    Mat4 view = Mat4::lookAt({3.2f, 2.4f, 4.5f}, {0.0f, 0.4f, 0.0f},
                             {0.0f, 1.0f, 0.0f});
    Mat4 model = Mat4::rotateY(0.6f);
    Mat4 mvp = proj * view * model;

    std::vector<Vertex> vtx;
    std::vector<uint32_t> idx;

    // Ground plane.
    addQuad(vtx, idx, {-6, 0, -6}, {6, 0, -6}, {6, 0, 6}, {-6, 0, 6},
            {0.8f, 0.9f, 0.8f, 1.0f}, 6.0f);
    // Cube (five visible faces).
    const float s = 0.9f;
    addQuad(vtx, idx, {-s, 0, s}, {s, 0, s}, {s, 2 * s, s}, {-s, 2 * s, s},
            {1, 1, 1, 1}, 1.0f); // front
    addQuad(vtx, idx, {s, 0, s}, {s, 0, -s}, {s, 2 * s, -s}, {s, 2 * s, s},
            {0.8f, 0.8f, 1, 1}, 1.0f); // right
    addQuad(vtx, idx, {-s, 0, -s}, {-s, 0, s}, {-s, 2 * s, s},
            {-s, 2 * s, -s}, {0.7f, 0.7f, 0.9f, 1}, 1.0f); // left
    addQuad(vtx, idx, {-s, 2 * s, s}, {s, 2 * s, s}, {s, 2 * s, -s},
            {-s, 2 * s, -s}, {1, 1, 0.9f, 1}, 1.0f); // top

    for (Vertex& v : vtx)
        v.position = mvp * v.position;

    fb.clear({166, 192, 230, 255});
    pipe.drawTriangles(vtx, idx);
    fb.writePpm("scene.ppm");
    std::printf("wrote scene.ppm (%ux%u), %llu fragments shaded, "
                "%llu tiles\n", width, height,
                static_cast<unsigned long long>(
                    pipe.stats().get("fragments")),
                static_cast<unsigned long long>(
                    pipe.stats().get("tiles_shaded")));

    //
    // Device pass: render the same checker texture with the hardware
    // `tex` instruction on the simulated GPU.
    //
    core::ArchConfig cfg;
    cfg.numCores = 2;
    runtime::Device dev(cfg);
    const uint32_t gpu_size = 64;
    Addr dsrc = dev.memAlloc(gpu_size * gpu_size * 4);
    Addr ddst = dev.memAlloc(gpu_size * gpu_size * 4);
    makeChecker(dev.ram(), dsrc, tex_log2);

    dev.uploadKernel(kernels::texBilinearHw());
    runtime::TexKernelArgs targs{};
    targs.dstWidth = gpu_size;
    targs.dstHeight = gpu_size;
    targs.dst = ddst;
    targs.srcAddr = dsrc;
    targs.srcWidthLog2 = tex_log2;
    targs.srcHeightLog2 = tex_log2;
    targs.format = static_cast<uint32_t>(tex::Format::RGBA8);
    targs.filter = static_cast<uint32_t>(tex::Filter::Bilinear);
    targs.wrap = static_cast<uint32_t>(tex::Wrap::Repeat) |
                 (static_cast<uint32_t>(tex::Wrap::Repeat) << 2);
    targs.lods = 1;
    targs.deltaX = 1.0f / gpu_size;
    targs.deltaY = 1.0f / gpu_size;
    dev.setKernelArg(targs);
    dev.runKernel();

    Framebuffer gpu_fb(gpu_size, gpu_size);
    for (uint32_t y = 0; y < gpu_size; ++y) {
        for (uint32_t x = 0; x < gpu_size; ++x) {
            gpu_fb.setPixel(x, y,
                            dev.ram().read32(ddst + (y * gpu_size + x) * 4));
        }
    }
    gpu_fb.writePpm("scene_gpu_pass.ppm");
    std::printf("wrote scene_gpu_pass.ppm (device `tex` pass, %llu "
                "cycles, IPC %.3f)\n",
                static_cast<unsigned long long>(dev.cycles()), dev.ipc());
    return 0;
}
