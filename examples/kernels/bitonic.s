# bitonic: sorting network over 64 int32 keys in the device heap. The
# init phase scatters the permutation (i*37+11) mod 64; each (k, j)
# stage runs one compare-exchange task per pair with a branchless
# min/max + direction select (no divergence), with global barriers
# keeping the stages in lockstep across cores.
#
# Harness-free workload: no C++ twin and no host-side verification.
# The guest checks its own result (sorted output must equal 0..63) and
# reports through the self-check mailbox (docs/TOOLCHAIN.md):
#   PASS 0x50415353 / FAIL 0x4641494C -> 0x10FF8, detail -> 0x10FFC.
# Run via `[workload] program = "examples/kernels/bitonic.s"` with
# `check = "selfcheck"`.

main:
    addi sp, sp, -16
    sw ra, 12(sp)
    sw s0, 8(sp)
    sw s1, 4(sp)
    sw s2, 0(sp)
    mv s0, a0                 # kernel-arg page (zeroed at start)
    # init: data[i] = (i*37 + 11) mod 64, a permutation of 0..63
    li a0, 64
    la a1, bitonic_init
    mv a2, s0
    call spawn_tasks
    li s1, 2                  # k: size of the merged runs
.Lbi_kloop:
    srli s2, s1, 1            # j: compare-exchange distance
.Lbi_jloop:
    sw s1, 8(s0)              # publish k (same value from every core)
    sw s2, 12(s0)             # publish j
    call global_barrier       # prior stage done, publish visible
    li a0, 32                 # one task per pair
    la a1, bitonic_task
    mv a2, s0
    call spawn_tasks
    call global_barrier       # stage done before the next publish
    srli s2, s2, 1
    bnez s2, .Lbi_jloop
    slli s1, s1, 1
    li t0, 64
    bge t0, s1, .Lbi_kloop
    # self-check (core 0): sorted ascending means data[i] == i
    csrr t0, 0xCC2
    bnez t0, .Lbi_exit
    li t1, 0x10000000         # data
    li t2, 0                  # i
    li t3, 64
.Lbi_vloop:
    lw t4, 0(t1)
    bne t4, t2, .Lbi_fail
    addi t1, t1, 4
    addi t2, t2, 1
    blt t2, t3, .Lbi_vloop
    li t4, 0x50415353         # "PASS"
    li t5, 0x10FF8
    sw t4, 0(t5)
    j .Lbi_exit
.Lbi_fail:
    li t4, 0x4641494C         # "FAIL"
    li t5, 0x10FF8
    sw t4, 0(t5)
    sw t2, 4(t5)              # detail: first out-of-place index
.Lbi_exit:
    lw ra, 12(sp)
    lw s0, 8(sp)
    lw s1, 4(sp)
    lw s2, 0(sp)
    addi sp, sp, 16
    ret

bitonic_init:                 # a0 = i, a1 = args
    li t0, 37
    mul t0, a0, t0
    addi t0, t0, 11
    andi t0, t0, 63
    li t1, 0x10000000
    slli t2, a0, 2
    add t1, t1, t2
    sw t0, 0(t1)
    ret

bitonic_task:                 # a0 = pair index p, a1 = args
    lw t0, 8(a1)              # k
    lw t1, 12(a1)             # j
    # i = ((p & ~(j-1)) << 1) | (p & (j-1)); partner = i | j
    addi t2, t1, -1
    and t3, a0, t2            # low bits
    xor t4, a0, t3            # high bits
    slli t4, t4, 1
    or t4, t4, t3             # i
    or t5, t4, t1             # partner
    li t6, 0x10000000
    slli a2, t4, 2
    add a2, a2, t6            # &data[i]
    slli a3, t5, 2
    add a3, a3, t6            # &data[partner]
    lw a4, 0(a2)
    lw a5, 0(a3)
    # branchless min/max
    slt a6, a5, a4
    sub a6, zero, a6          # all-ones when out of order
    xor a7, a4, a5
    and a7, a7, a6
    xor t2, a4, a7            # min
    xor t3, a5, a7            # max
    # descending run when (i & k) != 0: swap the two outputs
    and t0, t4, t0
    sltu t0, zero, t0
    sub t0, zero, t0          # all-ones when descending
    xor t1, t2, t3
    and t1, t1, t0
    xor t2, t2, t1            # value for data[i]
    xor t3, t3, t1            # value for data[partner]
    sw t2, 0(a2)
    sw t3, 0(a3)
    ret
