# sfilter: 3x3 binomial blur (1 2 1; 2 4 2; 1 2 1)/16 on a float image,
# edge-clamped with branchless index arithmetic; one task per pixel.
#
# Checked-in twin of the built-in kernel (src/kernels/rodinia.cpp,
# kernels::sfilter). Loaded through the assemble -> object -> load
# pipeline via `[workload] program = "examples/kernels/sfilter.s"`;
# tests/test_toolchain.cpp pins it bit-identical (cycles, instrs,
# output) to the registry original. Runs against the native runtime
# (crt0 + spawn_tasks); argument layout is runtime/kargs.h SfilterArgs.

main:
    addi sp, sp, -16
    sw ra, 12(sp)
    mv a2, a0
    lw t0, 0(a2)
    lw t1, 4(a2)
    mul a0, t0, t1            # width*height tasks
    la a1, sfilter_task
    call spawn_tasks
    lw ra, 12(sp)
    addi sp, sp, 16
    ret

sfilter_task:                 # a0 = pixel index, a1 = args
    lw t0, 0(a1)              # w
    lw t1, 4(a1)              # h
    lw t2, 8(a1)              # src
    lw t3, 12(a1)             # dst
    remu t4, a0, t0           # x
    divu t5, a0, t0           # y
    # xm = max(x-1, 0)
    addi t6, t4, -1
    srai a2, t6, 31
    xori a2, a2, -1
    and t6, t6, a2
    # xp = min(x+1, w-1)
    addi a3, t4, 1
    addi a4, t0, -1
    slt a5, a3, t0
    addi a5, a5, -1           # 0 in-range, -1 past the edge
    sub a6, a4, a3
    and a6, a6, a5
    add a3, a3, a6
    # ym = max(y-1, 0)
    addi a7, t5, -1
    srai a5, a7, 31
    xori a5, a5, -1
    and a7, a7, a5
    # yp = min(y+1, h-1)
    addi a2, t5, 1
    addi a5, t1, -1
    slt a4, a2, t1
    addi a4, a4, -1
    sub a5, a5, a2
    and a5, a5, a4
    add a2, a2, a5
    # row base pointers (bytes)
    mul a4, a7, t0
    slli a4, a4, 2
    add a4, a4, t2            # row ym
    mul a5, t5, t0
    slli a5, a5, 2
    add a5, a5, t2            # row y
    mul a6, a2, t0
    slli a6, a6, 2
    add a6, a6, t2            # row yp
    # column byte offsets
    slli t6, t6, 2            # xm
    slli t4, t4, 2            # x
    slli a3, a3, 2            # xp
    # 9 taps
    add t1, a4, t6
    flw ft0, 0(t1)
    add t1, a4, t4
    flw ft1, 0(t1)
    add t1, a4, a3
    flw ft2, 0(t1)
    add t1, a5, t6
    flw ft3, 0(t1)
    add t1, a5, t4
    flw ft4, 0(t1)
    add t1, a5, a3
    flw ft5, 0(t1)
    add t1, a6, t6
    flw ft6, 0(t1)
    add t1, a6, t4
    flw ft7, 0(t1)
    add t1, a6, a3
    flw fa0, 0(t1)
    # corners + 2*edges + 4*center, then /16
    fadd.s ft0, ft0, ft2
    fadd.s ft0, ft0, ft6
    fadd.s ft0, ft0, fa0
    fadd.s ft1, ft1, ft3
    fadd.s ft1, ft1, ft5
    fadd.s ft1, ft1, ft7
    la t1, .Lsf_two
    flw fa1, 0(t1)
    fmadd.s ft0, ft1, fa1, ft0
    la t1, .Lsf_four
    flw fa1, 0(t1)
    fmadd.s ft0, ft4, fa1, ft0
    la t1, .Lsf_sixteenth
    flw fa1, 0(t1)
    fmul.s ft0, ft0, fa1
    slli t1, a0, 2
    add t1, t1, t3
    fsw ft0, 0(t1)
    ret
.align 2
.Lsf_two: .float 2.0
.Lsf_four: .float 4.0
.Lsf_sixteenth: .float 0.0625
