# gaussian: elimination to upper-triangular form. Each step k runs the
# Rodinia Fan1 (multipliers) and Fan2 (row updates) kernels, with global
# barriers keeping the cores in lockstep between phases.
#
# Checked-in twin of the built-in kernel (src/kernels/rodinia.cpp,
# kernels::gaussian). Loaded through the assemble -> object -> load
# pipeline via `[workload] program = "examples/kernels/gaussian.s"`;
# tests/test_toolchain.cpp pins it bit-identical (cycles, instrs,
# output) to the registry original. Runs against the native runtime
# (crt0 + spawn_tasks); argument layout is runtime/kargs.h GaussianArgs.

main:
    addi sp, sp, -16
    sw ra, 12(sp)
    sw s0, 8(sp)
    sw s1, 4(sp)
    mv s0, a0
    li s1, 0                  # k
.Lga_kloop:
    lw t0, 0(s0)              # n
    addi t0, t0, -1
    bge s1, t0, .Lga_done
    sw s1, 16(s0)             # publish k (same value from every core)
    call global_barrier
    # Fan1: m[i] = A[i][k] / A[k][k] for i in (k, n)
    lw t0, 0(s0)
    sub a0, t0, s1
    addi a0, a0, -1
    la a1, gaussian_fan1
    mv a2, s0
    call spawn_tasks
    call global_barrier
    # Fan2: A[i][j] -= m[i]*A[k][j] for i in (k, n), all j
    lw t0, 0(s0)
    sub t1, t0, s1
    addi t1, t1, -1
    mul a0, t1, t0
    la a1, gaussian_fan2
    mv a2, s0
    call spawn_tasks
    call global_barrier
    addi s1, s1, 1
    j .Lga_kloop
.Lga_done:
    lw ra, 12(sp)
    lw s0, 8(sp)
    lw s1, 4(sp)
    addi sp, sp, 16
    ret

gaussian_fan1:                # a0 = idx, row i = k+1+idx
    lw t0, 0(a1)              # n
    lw t1, 4(a1)              # A
    lw t2, 12(a1)             # m
    lw t3, 16(a1)             # k
    addi t4, t3, 1
    add t4, t4, a0            # i
    mul t5, t4, t0
    add t5, t5, t3
    slli t5, t5, 2
    add t5, t5, t1
    flw ft0, 0(t5)            # A[i][k]
    mul t5, t3, t0
    add t5, t5, t3
    slli t5, t5, 2
    add t5, t5, t1
    flw ft1, 0(t5)            # A[k][k]
    fdiv.s ft0, ft0, ft1
    slli t5, t4, 2
    add t5, t5, t2
    fsw ft0, 0(t5)
    ret

gaussian_fan2:                # a0 = t; i = k+1+t/n, j = t%n
    lw t0, 0(a1)
    lw t1, 4(a1)
    lw t2, 12(a1)
    lw t3, 16(a1)
    divu t4, a0, t0
    remu t5, a0, t0           # j
    addi t4, t4, 1
    add t4, t4, t3            # i
    slli t6, t4, 2
    add t6, t6, t2
    flw ft0, 0(t6)            # m[i]
    mul t6, t3, t0
    add t6, t6, t5
    slli t6, t6, 2
    add t6, t6, t1
    flw ft1, 0(t6)            # A[k][j]
    mul t6, t4, t0
    add t6, t6, t5
    slli t6, t6, 2
    add t6, t6, t1
    flw ft2, 0(t6)            # A[i][j]
    fnmsub.s ft2, ft0, ft1, ft2
    fsw ft2, 0(t6)
    ret
