# histogram: 16-bin histogram of 256 values with the shared-memory
# approximation pattern: phase 1 writes values[i] = (i*7+3) mod 16 and
# zeroes the partial tables, phase 2 has 16 tasks each accumulate a
# private 16-bin partial over a contiguous chunk (data-dependent store
# addresses, no divergence), phase 3 merges one bin per task. Every
# residue appears exactly 16 times, so all bins must equal 16.
#
# Harness-free workload: no C++ twin and no host-side verification.
# The guest verifies all 16 bins and reports through the self-check
# mailbox (docs/TOOLCHAIN.md):
#   PASS 0x50415353 / FAIL 0x4641494C -> 0x10FF8, detail -> 0x10FFC.
# Run via `[workload] program = "examples/kernels/histogram.s"` with
# `check = "selfcheck"`.
#
# Heap layout: values @ 0x10000000 (256 words), partials @ 0x10000400
# (16 tasks x 16 bins), hist @ 0x10000800 (16 words).

main:
    addi sp, sp, -16
    sw ra, 12(sp)
    sw s0, 8(sp)
    mv s0, a0                 # kernel-arg page (zeroed at start)
    # phase 1: values[i] = (i*7+3) mod 16; partials[i] = 0
    li a0, 256
    la a1, hist_init
    mv a2, s0
    call spawn_tasks
    call global_barrier
    # phase 2: per-task private partial histograms
    li a0, 16
    la a1, hist_partial
    mv a2, s0
    call spawn_tasks
    call global_barrier
    # phase 3: merge one bin per task
    li a0, 16
    la a1, hist_merge
    mv a2, s0
    call spawn_tasks
    call global_barrier
    # self-check (core 0): every bin holds exactly 16
    csrr t0, 0xCC2
    bnez t0, .Lhi_exit
    li t1, 0x10000800         # hist
    li t2, 0                  # bin
    li t3, 16
.Lhi_vloop:
    lw t4, 0(t1)
    bne t4, t3, .Lhi_fail
    addi t1, t1, 4
    addi t2, t2, 1
    blt t2, t3, .Lhi_vloop
    li t4, 0x50415353         # "PASS"
    li t5, 0x10FF8
    sw t4, 0(t5)
    j .Lhi_exit
.Lhi_fail:
    li t4, 0x4641494C         # "FAIL"
    li t5, 0x10FF8
    sw t4, 0(t5)
    sw t2, 4(t5)              # detail: first bad bin
.Lhi_exit:
    lw ra, 12(sp)
    lw s0, 8(sp)
    addi sp, sp, 16
    ret

hist_init:                    # a0 = i, a1 = args
    li t0, 7
    mul t0, a0, t0
    addi t0, t0, 3
    andi t0, t0, 15
    li t1, 0x10000000
    slli t2, a0, 2
    add t3, t1, t2
    sw t0, 0(t3)              # values[i]
    li t1, 0x10000400
    add t3, t1, t2
    sw zero, 0(t3)            # partials[i] = 0
    ret

hist_partial:                 # a0 = chunk index t, a1 = args
    slli t0, a0, 6            # t*16 words = t*64 bytes
    li t1, 0x10000000
    add t1, t1, t0            # &values[t*16]
    li t2, 0x10000400
    add t2, t2, t0            # &partials[t*16]
    li t3, 0                  # n
    li t4, 16
.Lhp_loop:
    lw t5, 0(t1)              # v = values[t*16+n]
    slli t5, t5, 2
    add t5, t5, t2            # &partials[t*16+v]
    lw t6, 0(t5)
    addi t6, t6, 1
    sw t6, 0(t5)
    addi t1, t1, 4
    addi t3, t3, 1
    blt t3, t4, .Lhp_loop
    ret

hist_merge:                   # a0 = bin b, a1 = args
    li t0, 0x10000400
    slli t1, a0, 2
    add t0, t0, t1            # &partials[0*16+b]
    li t2, 0                  # sum
    li t3, 0                  # t
    li t4, 16
.Lhm_loop:
    lw t5, 0(t0)
    add t2, t2, t5
    addi t0, t0, 64           # next task's partial row
    addi t3, t3, 1
    blt t3, t4, .Lhm_loop
    li t0, 0x10000800
    add t0, t0, t1
    sw t2, 0(t0)              # hist[b]
    ret
