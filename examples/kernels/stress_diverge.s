# stress_diverge: divergence-ladder stress shape. Each of 64 tasks
# walks a ladder of vx_split/vx_join regions keyed on its id bits —
# one nested pair (bit 0 guarding bit 1) and one sequential region
# (bit 2) — accumulating a result with a closed form the guest can
# recompute branchlessly:
#   r(id) = (id&4) + (id&1 ? 1 + (id&2) : 0)
# Exercises the IPDOM stack at depth 2 under the task mask.
#
# Harness-free workload: no C++ twin and no host-side verification.
# The guest verifies every result and reports through the self-check
# mailbox (docs/TOOLCHAIN.md):
#   PASS 0x50415353 / FAIL 0x4641494C -> 0x10FF8, detail -> 0x10FFC.
# Run via `[workload] program = "examples/kernels/stress_diverge.s"`
# with `check = "selfcheck"`.

main:
    addi sp, sp, -16
    sw ra, 12(sp)
    sw s0, 8(sp)
    mv s0, a0                 # kernel-arg page (zeroed at start)
    li a0, 64
    la a1, sdiv_task
    mv a2, s0
    call spawn_tasks
    call global_barrier
    # self-check (core 0): results[id] == (id&4) + (id&1 ? 1+(id&2) : 0)
    csrr t0, 0xCC2
    bnez t0, .Lsd_exit
    li t1, 0x10000000
    li t2, 0                  # id
    li t3, 64
.Lsd_vloop:
    lw t4, 0(t1)
    # branchless expected value
    andi t5, t2, 1
    sub t6, zero, t5          # all-ones when bit 0 set
    andi a2, t2, 2
    and a2, a2, t6
    add t5, t5, a2            # (id&1 ? 1 + (id&2) : 0)
    andi a3, t2, 4
    add t5, t5, a3
    bne t4, t5, .Lsd_fail
    addi t1, t1, 4
    addi t2, t2, 1
    blt t2, t3, .Lsd_vloop
    li t4, 0x50415353         # "PASS"
    li t5, 0x10FF8
    sw t4, 0(t5)
    j .Lsd_exit
.Lsd_fail:
    li t4, 0x4641494C         # "FAIL"
    li t5, 0x10FF8
    sw t4, 0(t5)
    sw t2, 4(t5)              # detail: first bad id
.Lsd_exit:
    lw ra, 12(sp)
    lw s0, 8(sp)
    addi sp, sp, 16
    ret

sdiv_task:                    # a0 = id, a1 = args
    li t0, 0                  # r
    andi t1, a0, 1
    vx_split t1
    beqz t1, .Lsd_b0
    addi t0, t0, 1
    andi t2, a0, 2
    vx_split t2               # nested: only bit-0 threads get here
    beqz t2, .Lsd_b1
    addi t0, t0, 2
.Lsd_b1:
    vx_join
.Lsd_b0:
    vx_join
    andi t3, a0, 4
    vx_split t3
    beqz t3, .Lsd_b2
    addi t0, t0, 4
.Lsd_b2:
    vx_join
    li t4, 0x10000000
    slli t5, a0, 2
    add t4, t4, t5
    sw t0, 0(t4)              # results[id]
    ret
