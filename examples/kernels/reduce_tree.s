# reduce_tree: tree reduction of 256 int32 values. The init phase
# writes data[i] = 3*i + 1; each level halves the active range with
# data[i] += data[i+s] (one task per destination, task-unique writes),
# with global barriers between levels. The final sum lands in data[0].
#
# Harness-free workload: no C++ twin and no host-side verification.
# The guest checks data[0] against the closed form
# sum(3*i+1, i=0..255) = 98176 and reports through the self-check
# mailbox (docs/TOOLCHAIN.md):
#   PASS 0x50415353 / FAIL 0x4641494C -> 0x10FF8, detail -> 0x10FFC.
# Run via `[workload] program = "examples/kernels/reduce_tree.s"` with
# `check = "selfcheck"`.

main:
    addi sp, sp, -16
    sw ra, 12(sp)
    sw s0, 8(sp)
    sw s1, 4(sp)
    mv s0, a0                 # kernel-arg page (zeroed at start)
    # init: data[i] = 3*i + 1
    li a0, 256
    la a1, reduce_init
    mv a2, s0
    call spawn_tasks
    li s1, 128                # s: active-range half-width
.Lrt_level:
    sw s1, 8(s0)              # publish s (same value from every core)
    call global_barrier       # prior level done, publish visible
    mv a0, s1                 # one task per destination
    la a1, reduce_task
    mv a2, s0
    call spawn_tasks
    call global_barrier       # level done before the next publish
    srli s1, s1, 1
    bnez s1, .Lrt_level
    # self-check (core 0): data[0] must hold the closed-form sum
    csrr t0, 0xCC2
    bnez t0, .Lrt_exit
    li t1, 0x10000000
    lw t2, 0(t1)
    li t3, 98176
    li t5, 0x10FF8
    bne t2, t3, .Lrt_fail
    li t4, 0x50415353         # "PASS"
    sw t4, 0(t5)
    j .Lrt_exit
.Lrt_fail:
    li t4, 0x4641494C         # "FAIL"
    sw t4, 0(t5)
    sw t2, 4(t5)              # detail: the bad sum
.Lrt_exit:
    lw ra, 12(sp)
    lw s0, 8(sp)
    lw s1, 4(sp)
    addi sp, sp, 16
    ret

reduce_init:                  # a0 = i, a1 = args
    slli t0, a0, 1
    add t0, t0, a0            # 3*i
    addi t0, t0, 1
    li t1, 0x10000000
    slli t2, a0, 2
    add t1, t1, t2
    sw t0, 0(t1)
    ret

reduce_task:                  # a0 = i, a1 = args
    lw t0, 8(a1)              # s
    li t1, 0x10000000
    slli t2, a0, 2
    add t2, t2, t1            # &data[i]
    add t3, a0, t0
    slli t3, t3, 2
    add t3, t3, t1            # &data[i+s]
    lw t4, 0(t2)
    lw t5, 0(t3)
    add t4, t4, t5
    sw t4, 0(t2)
    ret
