# bfs: level-synchronous frontier BFS over a CSR graph. Nested split/join
# handles the three divergence levels (frontier membership, edge bound,
# unvisited neighbor). Cores synchronize per level with global barriers.
#
# Checked-in twin of the built-in kernel (src/kernels/rodinia.cpp,
# kernels::bfs). Loaded through the assemble -> object -> load
# pipeline via `[workload] program = "examples/kernels/bfs.s"`;
# tests/test_toolchain.cpp pins it bit-identical (cycles, instrs,
# output) to the registry original. Runs against the native runtime
# (crt0 + spawn_tasks); argument layout is runtime/kargs.h BfsArgs.

main:
    addi sp, sp, -16
    sw ra, 12(sp)
    sw s0, 8(sp)
    sw s1, 4(sp)
    sw s2, 0(sp)
    mv s0, a0
    li s1, 0                  # current level
.Lbf_level:
    sw s1, 24(s0)             # publish curLevel (same from every core)
    csrr t0, 0xCC2
    bnez t0, .Lbf_noreset
    lw t1, 20(s0)
    sw zero, 0(t1)            # core 0 clears the changed flag
.Lbf_noreset:
    call global_barrier
    lw a0, 0(s0)
    la a1, bfs_step
    mv a2, s0
    call spawn_tasks
    call global_barrier
    lw t1, 20(s0)
    lw t1, 0(t1)
    mv s2, t1
    # Every core must sample `changed` before core 0 clears it for the
    # next level — a third barrier closes that race.
    call global_barrier
    mv t1, s2
    addi s1, s1, 1
    bnez t1, .Lbf_level
    lw ra, 12(sp)
    lw s0, 8(sp)
    lw s1, 4(sp)
    lw s2, 0(sp)
    addi sp, sp, 16
    ret

bfs_step:                     # a0 = node id, a1 = args
    lw t0, 16(a1)             # levels
    slli t1, a0, 2
    add t1, t1, t0
    lw t2, 0(t1)              # levels[i]
    lw t3, 24(a1)             # curLevel
    xor t4, t2, t3
    seqz t4, t4               # on the frontier?
    vx_split t4
    beqz t4, .Lbf_nowork
    lw t5, 8(a1)              # rowPtr
    slli t6, a0, 2
    add t5, t5, t6
    lw a3, 0(t5)              # edge start
    lw a4, 4(t5)              # edge end
    lw a5, 12(a1)             # colIdx
    lw a6, 4(a1)              # maxDegree (uniform edge-loop bound)
    li a7, 0
.Lbf_edges:
    bge a7, a6, .Lbf_nowork
    add t5, a3, a7
    slt t6, t5, a4            # edge within this node's range?
    vx_split t6
    beqz t6, .Lbf_eskip
    slli t5, t5, 2
    add t5, t5, a5
    lw t5, 0(t5)              # neighbor j
    slli t5, t5, 2
    add t5, t5, t0            # &levels[j]
    lw t6, 0(t5)
    addi t6, t6, 1
    seqz t6, t6               # unvisited (level == -1)?
    vx_split t6
    beqz t6, .Lbf_nskip
    lw t6, 24(a1)
    addi t6, t6, 1
    sw t6, 0(t5)              # levels[j] = curLevel + 1
    lw t5, 20(a1)
    li t6, 1
    sw t6, 0(t5)              # changed = 1
.Lbf_nskip:
    vx_join
.Lbf_eskip:
    vx_join
    addi a7, a7, 1
    j .Lbf_edges
.Lbf_nowork:
    vx_join
    ret
