# stress_barrier: barrier-heavy stress shape. 32 rounds, each of which
# publishes the round number, global-barriers, spawns 16 accumulate
# tasks (counter[i] += round, task-unique writes), and global-barriers
# again — 64 barrier crossings total. Every counter must end at
# sum(1..32) = 528, which a single dropped round or a publish/read
# race would break.
#
# Harness-free workload: no C++ twin and no host-side verification.
# The guest verifies the counters and reports through the self-check
# mailbox (docs/TOOLCHAIN.md):
#   PASS 0x50415353 / FAIL 0x4641494C -> 0x10FF8, detail -> 0x10FFC.
# Run via `[workload] program = "examples/kernels/stress_barrier.s"`
# with `check = "selfcheck"`.

main:
    addi sp, sp, -16
    sw ra, 12(sp)
    sw s0, 8(sp)
    sw s1, 4(sp)
    mv s0, a0                 # kernel-arg page (zeroed at start)
    # init: counter[i] = 0
    li a0, 16
    la a1, sbar_init
    mv a2, s0
    call spawn_tasks
    li s1, 1                  # round
.Lsb_round:
    sw s1, 8(s0)              # publish round (same value everywhere)
    call global_barrier       # prior round done, publish visible
    li a0, 16
    la a1, sbar_task
    mv a2, s0
    call spawn_tasks
    call global_barrier       # round done before the next publish
    addi s1, s1, 1
    li t0, 32
    bge t0, s1, .Lsb_round
    # self-check (core 0): counter[i] == 528 for all i
    csrr t0, 0xCC2
    bnez t0, .Lsb_exit
    li t1, 0x10000000
    li t2, 0                  # i
    li t3, 16
    li t6, 528
.Lsb_vloop:
    lw t4, 0(t1)
    bne t4, t6, .Lsb_fail
    addi t1, t1, 4
    addi t2, t2, 1
    blt t2, t3, .Lsb_vloop
    li t4, 0x50415353         # "PASS"
    li t5, 0x10FF8
    sw t4, 0(t5)
    j .Lsb_exit
.Lsb_fail:
    li t4, 0x4641494C         # "FAIL"
    li t5, 0x10FF8
    sw t4, 0(t5)
    sw t2, 4(t5)              # detail: first bad counter index
.Lsb_exit:
    lw ra, 12(sp)
    lw s0, 8(sp)
    lw s1, 4(sp)
    addi sp, sp, 16
    ret

sbar_init:                    # a0 = i, a1 = args
    li t0, 0x10000000
    slli t1, a0, 2
    add t0, t0, t1
    sw zero, 0(t0)
    ret

sbar_task:                    # a0 = i, a1 = args
    lw t0, 8(a1)              # round
    li t1, 0x10000000
    slli t2, a0, 2
    add t1, t1, t2
    lw t3, 0(t1)
    add t3, t3, t0
    sw t3, 0(t1)
    ret
