# stress_bank: bank-conflict stress shape. 64 tasks each write a
# 16-element column of a 16x64 matrix in column-major strided order —
# task i stores to data[j*64 + i] for j = 0..15, so every wavefront
# issues maximally-conflicting same-cycle accesses with a 256-byte
# stride. Writes stay task-unique: cell (j, i) holds i*16 + j.
#
# Harness-free workload: no C++ twin and no host-side verification.
# The guest verifies every cell and reports through the self-check
# mailbox (docs/TOOLCHAIN.md):
#   PASS 0x50415353 / FAIL 0x4641494C -> 0x10FF8, detail -> 0x10FFC.
# Run via `[workload] program = "examples/kernels/stress_bank.s"`
# with `check = "selfcheck"`.

main:
    addi sp, sp, -16
    sw ra, 12(sp)
    sw s0, 8(sp)
    mv s0, a0                 # kernel-arg page (zeroed at start)
    li a0, 64
    la a1, sbank_task
    mv a2, s0
    call spawn_tasks
    call global_barrier
    # self-check (core 0): data[j*64+i] == i*16 + j
    csrr t0, 0xCC2
    bnez t0, .Lsk_exit
    li t1, 0x10000000
    li t2, 0                  # j (row)
    li t3, 16
    li a4, 64
.Lsk_jloop:
    li a2, 0                  # i (column)
.Lsk_iloop:
    lw t4, 0(t1)
    slli t5, a2, 4
    add t5, t5, t2            # expected i*16 + j
    bne t4, t5, .Lsk_fail
    addi t1, t1, 4
    addi a2, a2, 1
    blt a2, a4, .Lsk_iloop
    addi t2, t2, 1
    blt t2, t3, .Lsk_jloop
    li t4, 0x50415353         # "PASS"
    li t5, 0x10FF8
    sw t4, 0(t5)
    j .Lsk_exit
.Lsk_fail:
    li t4, 0x4641494C         # "FAIL"
    li t5, 0x10FF8
    sw t4, 0(t5)
    # detail: linear index of the first bad cell
    slli t6, t2, 6
    add t6, t6, a2
    sw t6, 4(t5)
.Lsk_exit:
    lw ra, 12(sp)
    lw s0, 8(sp)
    addi sp, sp, 16
    ret

sbank_task:                   # a0 = column i, a1 = args
    li t0, 0x10000000
    slli t1, a0, 2
    add t0, t0, t1            # &data[0*64 + i]
    slli t2, a0, 4            # i*16
    li t3, 0                  # j
    li t4, 16
.Lsb_loop:
    add t5, t2, t3            # i*16 + j
    sw t5, 0(t0)
    addi t0, t0, 256          # next row (64 words)
    addi t3, t3, 1
    blt t3, t4, .Lsb_loop
    ret
