# vecadd: c[i] = a[i] + b[i] (int32). Compute-bound group.
#
# Checked-in twin of the built-in kernel (src/kernels/rodinia.cpp,
# kernels::vecadd). Loaded through the assemble -> object -> load
# pipeline via `[workload] program = "examples/kernels/vecadd.s"`;
# tests/test_toolchain.cpp pins it bit-identical (cycles, instrs,
# output) to the registry original. Runs against the native runtime
# (crt0 + spawn_tasks); argument layout is runtime/kargs.h VecAddArgs.

main:
    addi sp, sp, -16
    sw ra, 12(sp)
    mv a2, a0
    lw a0, 0(a2)              # n tasks
    la a1, vecadd_task
    call spawn_tasks
    lw ra, 12(sp)
    addi sp, sp, 16
    ret

vecadd_task:                  # a0 = i, a1 = args
    lw t1, 4(a1)              # a
    lw t2, 8(a1)              # b
    lw t3, 12(a1)             # c
    slli t4, a0, 2
    add t1, t1, t4
    add t2, t2, t4
    add t3, t3, t4
    lw t5, 0(t1)
    lw t6, 0(t2)
    add t5, t5, t6
    sw t5, 0(t3)
    ret
