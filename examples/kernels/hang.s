# hang: spins forever — a deliberately non-terminating guest.
#
# Robustness fixture, not a workload: campaigns and the fabric service
# must turn this guest into a structured `timeout` result row (via the
# Device cycle watchdog or a `[faults] watchdog =` override) instead of
# wedging the host. Pinned by tests/test_faults.cpp under both tick
# backends; see docs/ROBUSTNESS.md. Pair it with any kernel's harness,
# e.g. `kernel = "vecadd"` + `program = "examples/kernels/hang.s"` —
# the loop never returns, so argument layout is irrelevant.

main:
spin:
    j spin
