# sgemm: C = A*B, n x n row-major float; one task per output cell.
#
# Checked-in twin of the built-in kernel (src/kernels/rodinia.cpp,
# kernels::sgemm). Loaded through the assemble -> object -> load
# pipeline via `[workload] program = "examples/kernels/sgemm.s"`;
# tests/test_toolchain.cpp pins it bit-identical (cycles, instrs,
# output) to the registry original. Runs against the native runtime
# (crt0 + spawn_tasks); argument layout is runtime/kargs.h SgemmArgs.

main:
    addi sp, sp, -16
    sw ra, 12(sp)
    mv a2, a0
    lw t0, 0(a2)              # n
    mul a0, t0, t0            # n^2 tasks
    la a1, sgemm_task
    call spawn_tasks
    lw ra, 12(sp)
    addi sp, sp, 16
    ret

sgemm_task:                   # a0 = cell index, a1 = args
    lw t0, 0(a1)              # n
    lw t1, 4(a1)              # A
    lw t2, 8(a1)              # B
    lw t3, 12(a1)             # C
    divu t4, a0, t0           # row
    remu t5, a0, t0           # col
    mul t6, t4, t0
    slli t6, t6, 2
    add t1, t1, t6            # &A[row][0]
    slli t6, t5, 2
    add t2, t2, t6            # &B[0][col]
    slli a4, t0, 2            # B row stride in bytes
    fmv.w.x ft0, zero         # acc
    mv a5, t0
.Lsg_loop:
    flw ft1, 0(t1)
    flw ft2, 0(t2)
    fmadd.s ft0, ft1, ft2, ft0
    addi t1, t1, 4
    add t2, t2, a4
    addi a5, a5, -1
    bnez a5, .Lsg_loop
    slli t6, a0, 2
    add t3, t3, t6
    fsw ft0, 0(t3)
    ret
