# saxpy: y[i] = a*x[i] + y[i] (float). Memory-bound group.
#
# Checked-in twin of the built-in kernel (src/kernels/rodinia.cpp,
# kernels::saxpy). Loaded through the assemble -> object -> load
# pipeline via `[workload] program = "examples/kernels/saxpy.s"`;
# tests/test_toolchain.cpp pins it bit-identical (cycles, instrs,
# output) to the registry original. Runs against the native runtime
# (crt0 + spawn_tasks); argument layout is runtime/kargs.h SaxpyArgs.

main:
    addi sp, sp, -16
    sw ra, 12(sp)
    mv a2, a0
    lw a0, 0(a2)
    la a1, saxpy_task
    call spawn_tasks
    lw ra, 12(sp)
    addi sp, sp, 16
    ret

saxpy_task:                   # a0 = i, a1 = args
    flw ft0, 4(a1)            # a
    lw t1, 8(a1)              # x
    lw t2, 12(a1)             # y
    slli t3, a0, 2
    add t1, t1, t3
    add t2, t2, t3
    flw ft1, 0(t1)
    flw ft2, 0(t2)
    fmadd.s ft2, ft0, ft1, ft2
    fsw ft2, 0(t2)
    ret
