# nearn: dist[i] = sqrt((lat_i-lat)^2 + (lng_i-lng)^2); the host scans for
# the minimum, as in Rodinia NN. The fsqrt makes this long-latency bound.
#
# Checked-in twin of the built-in kernel (src/kernels/rodinia.cpp,
# kernels::nearn). Loaded through the assemble -> object -> load
# pipeline via `[workload] program = "examples/kernels/nearn.s"`;
# tests/test_toolchain.cpp pins it bit-identical (cycles, instrs,
# output) to the registry original. Runs against the native runtime
# (crt0 + spawn_tasks); argument layout is runtime/kargs.h NearnArgs.

main:
    addi sp, sp, -16
    sw ra, 12(sp)
    mv a2, a0
    lw a0, 0(a2)
    la a1, nearn_task
    call spawn_tasks
    lw ra, 12(sp)
    addi sp, sp, 16
    ret

nearn_task:                   # a0 = i, a1 = args
    lw t1, 12(a1)             # points
    lw t2, 16(a1)             # dist
    slli t3, a0, 3
    add t1, t1, t3
    flw ft0, 0(t1)            # lat_i
    flw ft1, 4(t1)            # lng_i
    flw ft2, 4(a1)            # lat
    flw ft3, 8(a1)            # lng
    fsub.s ft0, ft0, ft2
    fsub.s ft1, ft1, ft3
    fmul.s ft0, ft0, ft0
    fmadd.s ft0, ft1, ft1, ft0
    fsqrt.s ft0, ft0
    slli t3, a0, 2
    add t2, t2, t3
    fsw ft0, 0(t2)
    ret
