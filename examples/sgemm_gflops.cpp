/**
 * @file
 * Machine-learning-style workload: single-precision matrix multiply on
 * the simulated GPU, reported as GFLOPS at the paper's 200 MHz FPGA clock.
 * The paper's headline is 25.6 GFLOPS peak on 32 Stratix-10 cores; this
 * example shows how measured sgemm throughput relates to the peak
 * (peak = cores x threads x 2 FLOP/FMA x 0.2 GHz).
 */

#include <cstdio>
#include <vector>

#include "runtime/workloads.h"

using namespace vortex;

int
main(int argc, char** argv)
{
    uint32_t n = 48;
    if (argc > 1)
        n = static_cast<uint32_t>(std::atoi(argv[1]));

    std::printf("sgemm %ux%u on simulated Vortex machines "
                "(200 MHz FPGA clock)\n\n", n, n);
    std::printf("%-8s %-10s %12s %10s %12s %10s\n", "cores", "geometry",
                "cycles", "IPC", "GFLOPS", "peak");

    for (uint32_t cores : {1u, 4u, 8u, 16u}) {
        core::ArchConfig cfg;
        cfg.numCores = cores;
        cfg.numWarps = 4;
        cfg.numThreads = 4;
        cfg.l2Enabled = cores >= 4;
        runtime::Device dev(cfg);
        runtime::RunResult r = runtime::runSgemm(dev, n);
        if (!r.ok) {
            std::printf("verification FAILED: %s\n", r.error.c_str());
            return 1;
        }
        const double flops = 2.0 * n * n * n;
        const double seconds = static_cast<double>(r.cycles) / 200.0e6;
        const double gflops = flops / seconds / 1.0e9;
        const double peak =
            cores * cfg.numThreads * 2 * 0.2; // FMA/cycle/thread at 200 MHz
        std::printf("%-8u %uW-%uT %14llu %10.3f %10.3f %10.1f\n", cores,
                    cfg.numWarps, cfg.numThreads,
                    static_cast<unsigned long long>(r.cycles), r.ipc,
                    gflops, peak);
    }
    std::printf("\n(the paper's 25.6 GFLOPS = 32 cores x 4 threads x "
                "2 FLOP x 0.1 GHz utilization-free peak on Stratix 10)\n");
    return 0;
}
