/**
 * @file
 * Programmatic use of the simulation-campaign subsystem: build a custom
 * two-axis sweep (wavefront count x kernel) with the declarative API,
 * run it on a job pool with result caching, and read metrics back —
 * both through the typed records and as CSV. The CLI equivalent is:
 *
 *   vortex_sweep --axis kernel=vecadd,sgemm --axis numWarps=2,4,8 \
 *                --jobs 0 --cache .sweep-cache
 *
 * The same spec round-trips through the versionable file form
 * (docs/SWEEP_SPECS.md): serialize it with specToToml / writeSpecToml,
 * check the file in, and later rerun it with `vortex_sweep --spec` or
 * parseSpecFile — the expanded runs hash identically, so both forms
 * share cache entries.
 */

#include <cstdio>
#include <iostream>

#include "sweep/campaign.h"
#include "sweep/presets.h"
#include "sweep/specfile.h"

using namespace vortex;

int
main()
{
    sweep::SweepSpec spec;
    spec.name = "warp_scaling";
    spec.base = sweep::baselineConfig(1);
    spec.axes = {sweep::Axis::sweep("kernel", {"vecadd", "sgemm"}),
                 sweep::Axis::sweepU32("numWarps", {2, 4, 8})};

    // The campaign as a document: what `--dump-spec` would write, and
    // what `--spec` (or parseSpecText/parseSpecFile) reads back.
    std::printf("spec file form:\n%s\n",
                sweep::specToToml(spec).c_str());

    sweep::CampaignOptions opts;
    opts.jobs = 0;                    // one worker per host CPU
    opts.cacheDir = ".sweep-cache";   // re-runs are instant
    sweep::CampaignResult result = sweep::Campaign(opts).run(spec);

    // Typed access: every record carries the verified metrics and the
    // flattened device counters.
    for (const sweep::RunRecord& rec : result.records)
        std::printf("%-10s ipc=%.3f  dcache reads=%llu%s\n",
                    rec.spec.id().c_str(), rec.result.ipc,
                    static_cast<unsigned long long>(
                        rec.stats.get("dcache.core_reads")),
                    rec.fromCache ? "  (cached)" : "");

    // Report + CSV emission share the campaign's deterministic order.
    sweep::pivotIpc(result).print(std::cout);
    std::printf("\nCSV:\n");
    result.writeCsv(std::cout);
    return 0;
}
