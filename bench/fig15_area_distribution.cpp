/**
 * @file
 * Figure 15 reproduction: per-component area distribution of the 8-core
 * build. The paper publishes this as an unlabeled pie chart; the fractions
 * here are read off the figure under its stated constraints (texture units
 * and caches dominate; the FPU is small because FMA maps to DSP blocks).
 * Thin wrapper over the "fig15" preset.
 */

#include "sweep/presets.h"

int
main()
{
    return vortex::sweep::runPresetMain("fig15");
}
