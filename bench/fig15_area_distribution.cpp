/**
 * @file
 * Figure 15 reproduction: per-component area distribution of the 8-core
 * build. The paper publishes this as an unlabeled pie chart; the fractions
 * here are read off the figure under its stated constraints (texture units
 * and caches dominate; the FPU is small because FMA maps to DSP blocks).
 */

#include <cstdio>

#include "area/area.h"
#include "bench/bench_util.h"

using namespace vortex;

int
main()
{
    bench::printHeader("Figure 15: area distribution (8-core build)");
    double total = 0.0;
    for (const area::AreaSlice& s : area::areaDistribution()) {
        std::printf("  %-32s %5.1f%%  ", s.component.c_str(),
                    100.0 * s.fraction);
        int bars = static_cast<int>(s.fraction * 100.0 + 0.5);
        for (int i = 0; i < bars; ++i)
            std::printf("#");
        std::printf("\n");
        total += s.fraction;
    }
    std::printf("  %-32s %5.1f%%\n", "(total)", 100.0 * total);
    return 0;
}
