/**
 * @file
 * Figure 14 reproduction: IPC of the five single-core design-space
 * configurations (4W-4T, 2W-8T, 8W-2T, 4W-8T, 8W-4T) on sgemm, vecadd,
 * sfilter, saxpy, and nearn.
 *
 * Shape targets (paper §6.2.1): 2W-8T gains ~20% over 4W-4T on sgemm;
 * 8W-2T loses ~36% on sgemm; 8W-4T recovers most of the 4W-8T performance
 * at lower cost.
 */

#include <cstdio>

#include "bench/bench_util.h"

using namespace vortex;

int
main()
{
    bench::printHeader("Figure 14: IPC per core configuration");
    std::printf("%-10s", "kernel");
    for (const auto& g : bench::fig14Geometries())
        std::printf("%10s", g.name);
    std::printf("\n");

    double sgemm_4w4t = 0.0, sgemm_2w8t = 0.0, sgemm_8w2t = 0.0;
    for (const auto& kernel : bench::fig14Kernels()) {
        std::printf("%-10s", kernel.c_str());
        for (const auto& g : bench::fig14Geometries()) {
            core::ArchConfig cfg = bench::baselineConfig(1);
            cfg.numWarps = g.warps;
            cfg.numThreads = g.threads;
            runtime::RunResult r = bench::runVerified(cfg, kernel);
            std::printf("%10.3f", r.ipc);
            if (kernel == "sgemm") {
                if (std::string(g.name) == "4W-4T")
                    sgemm_4w4t = r.ipc;
                if (std::string(g.name) == "2W-8T")
                    sgemm_2w8t = r.ipc;
                if (std::string(g.name) == "8W-2T")
                    sgemm_8w2t = r.ipc;
            }
        }
        std::printf("\n");
    }

    std::printf("\nshape check (paper: 2W-8T ~ +20%% on sgemm, "
                "8W-2T ~ -36%%):\n");
    std::printf("  sgemm 2W-8T / 4W-4T = %+.1f%%\n",
                100.0 * (sgemm_2w8t / sgemm_4w4t - 1.0));
    std::printf("  sgemm 8W-2T / 4W-4T = %+.1f%%\n",
                100.0 * (sgemm_8w2t / sgemm_4w4t - 1.0));
    return 0;
}
