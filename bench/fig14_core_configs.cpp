/**
 * @file
 * Figure 14 reproduction: IPC of the five single-core design-space
 * configurations (4W-4T, 2W-8T, 8W-2T, 4W-8T, 8W-4T) on sgemm, vecadd,
 * sfilter, saxpy, and nearn. Thin wrapper over the "fig14" campaign
 * preset (src/sweep/presets.h); the report includes the paper's §6.2.1
 * shape checks (2W-8T ~ +20% on sgemm, 8W-2T ~ -36%).
 */

#include "sweep/presets.h"

int
main()
{
    return vortex::sweep::runPresetMain("fig14");
}
