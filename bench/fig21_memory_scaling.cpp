/**
 * @file
 * Figure 21 reproduction: the effect of board-memory latency and bandwidth
 * on performance, swept with the cycle-level simulator (the paper's SIMX
 * experiment on a 16-core, 16-wavefront, 16-thread configuration). Thin
 * wrapper over the "fig21" campaign preset.
 *
 * Shape targets (§6.5): IPC degrades as latency grows and recovers as
 * bandwidth is added; the memory-bound kernel is far more sensitive than
 * the compute-bound one.
 *
 * The default machine is scaled to 8 cores x 8 wavefronts x 8 threads so
 * the sweep finishes in seconds; pass "--paper" for the full 16/16/16.
 */

#include <cstring>

#include "sweep/presets.h"

int
main(int argc, char** argv)
{
    vortex::sweep::PresetArgs args;
    if (argc > 1 && std::strcmp(argv[1], "--paper") == 0)
        args.push_back({"paper", "1"});
    return vortex::sweep::runPresetMain("fig21", args);
}
