/**
 * @file
 * Figure 21 reproduction: the effect of board-memory latency and bandwidth
 * on performance, swept with the cycle-level simulator (the paper's SIMX
 * experiment on a 16-core, 16-wavefront, 16-thread configuration).
 *
 * Shape targets (§6.5): IPC degrades as latency grows and recovers as
 * bandwidth is added; the memory-bound kernel is far more sensitive than
 * the compute-bound one.
 *
 * The default machine is scaled to 8 cores x 8 wavefronts x 8 threads so
 * the sweep finishes in seconds; pass "--paper" for the full 16/16/16.
 */

#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/bench_util.h"

using namespace vortex;

int
main(int argc, char** argv)
{
    bool paper_size = argc > 1 && std::strcmp(argv[1], "--paper") == 0;
    const uint32_t geo = paper_size ? 16 : 8;

    const std::vector<uint32_t> latencies = {25, 50, 100, 200, 400};
    const std::vector<uint32_t> bandwidths = {1, 2, 4}; // channel multiplier

    bench::printHeader("Figure 21: memory latency/bandwidth scaling");
    std::printf("(machine: %u cores x %uW x %uT, L2 enabled)\n", geo, geo,
                geo);

    for (const char* kernel : {"saxpy", "sgemm"}) {
        std::printf("\n%s (%s-bound):\n", kernel,
                    runtime::isComputeBound(kernel) ? "compute" : "memory");
        std::printf("%-12s", "latency");
        for (uint32_t bw : bandwidths)
            std::printf("   bw x%u ", bw);
        std::printf("\n");
        for (uint32_t lat : latencies) {
            std::printf("%-12u", lat);
            for (uint32_t bw : bandwidths) {
                core::ArchConfig cfg = bench::baselineConfig(geo);
                cfg.numWarps = geo;
                cfg.numThreads = geo;
                cfg.mem.latency = lat;
                cfg.mem.numChannels = 2 * bw;
                runtime::RunResult r = bench::runVerified(cfg, kernel, 2);
                std::printf(" %8.3f", r.ipc);
            }
            std::printf("\n");
        }
    }
    return 0;
}
