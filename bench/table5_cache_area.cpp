/**
 * @file
 * Table 5 reproduction: synthesis of the virtually multi-ported 4-bank
 * data cache at 1, 2, and 4 ports, from the calibrated area model.
 * The paper's headline deltas — +9% LUTs for 2 ports, +25% for 4, BRAM
 * unchanged — hold by construction.
 */

#include <cstdio>

#include "area/area.h"
#include "bench/bench_util.h"

using namespace vortex;

int
main()
{
    struct PaperRow
    {
        uint32_t ports;
        double lut, regs, bram, fmax;
    };
    const PaperRow paper[] = {
        {1, 10747, 13238, 72, 253},
        {2, 11722, 13650, 72, 250},
        {4, 13516, 14928, 72, 244},
    };

    bench::printHeader("Table 5: 4-bank D$ synthesis (model vs paper)");
    std::printf("%-7s %18s %18s %13s %15s\n", "ports", "LUT (mdl/paper)",
                "Regs (mdl/paper)", "BRAM (m/p)", "fmax (m/p)");
    double lut1 = 0.0;
    for (const PaperRow& row : paper) {
        area::CacheArea a = area::cacheArea(4, row.ports, 16384);
        if (row.ports == 1)
            lut1 = a.luts;
        std::printf("%-7u %8.0f /%8.0f %8.0f /%8.0f %5.0f /%5.0f "
                    "%6.0f /%5.0f\n",
                    row.ports, a.luts, row.lut, a.regs, row.regs, a.brams,
                    row.bram, a.fmaxMhz, row.fmax);
    }
    area::CacheArea a2 = area::cacheArea(4, 2, 16384);
    area::CacheArea a4 = area::cacheArea(4, 4, 16384);
    std::printf("\nLUT delta: 2-port %+.1f%% (paper +9%%), 4-port %+.1f%% "
                "(paper +25%%)\n",
                100.0 * (a2.luts / lut1 - 1.0),
                100.0 * (a4.luts / lut1 - 1.0));
    return 0;
}
