/**
 * @file
 * Table 5 reproduction: synthesis of the virtually multi-ported 4-bank
 * data cache at 1, 2, and 4 ports, from the calibrated area model.
 * The paper's headline deltas — +9% LUTs for 2 ports, +25% for 4, BRAM
 * unchanged — hold by construction. Thin wrapper over the "table5"
 * preset.
 */

#include "sweep/presets.h"

int
main()
{
    return vortex::sweep::runPresetMain("table5");
}
