/**
 * @file
 * Table 3 reproduction: synthesis results (LUTs, registers, BRAM, fmax)
 * for the five core configurations, from the calibrated area model
 * (DESIGN.md substitution #1) next to the paper's published values.
 */

#include <cstdio>

#include "area/area.h"
#include "bench/bench_util.h"

using namespace vortex;

int
main()
{
    struct PaperRow
    {
        const char* name;
        uint32_t w, t;
        double lut, regs, bram, fmax;
    };
    const PaperRow paper[] = {
        {"4W-4T", 4, 4, 21502, 32661, 131, 233},
        {"2W-8T", 2, 8, 36361, 54438, 238, 224},
        {"8W-2T", 8, 2, 16981, 24343, 77, 225},
        {"4W-8T", 4, 8, 37857, 57614, 247, 224},
        {"8W-4T", 8, 4, 24485, 34854, 139, 228},
    };

    bench::printHeader("Table 3: core synthesis (model vs paper)");
    std::printf("%-8s %18s %18s %14s %16s\n", "config", "LUT (mdl/paper)",
                "Regs (mdl/paper)", "BRAM (mdl/pap)", "fmax (mdl/pap)");
    for (const PaperRow& row : paper) {
        area::CoreArea a = area::coreArea(row.w, row.t);
        std::printf("%-8s %8.0f /%8.0f %8.0f /%8.0f %6.0f /%6.0f "
                    "%7.0f /%6.0f\n",
                    row.name, a.luts, row.lut, a.regs, row.regs, a.brams,
                    row.bram, a.fmaxMhz, row.fmax);
    }
    std::printf("\n(model is least-squares calibrated on these rows; "
                "max residual ~2%%)\n");
    return 0;
}
