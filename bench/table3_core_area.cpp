/**
 * @file
 * Table 3 reproduction: synthesis results (LUTs, registers, BRAM, fmax)
 * for the five core configurations, from the calibrated area model
 * (DESIGN.md substitution #1) next to the paper's published values.
 * Thin wrapper over the "table3" preset (src/sweep/presets.h).
 */

#include "sweep/presets.h"

int
main()
{
    return vortex::sweep::runPresetMain("table3");
}
