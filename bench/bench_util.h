/**
 * @file
 * Shared helpers for the table/figure reproduction harnesses.
 */

#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/log.h"
#include "core/config.h"
#include "runtime/workloads.h"

namespace vortex::bench {

/** The five §6.2.1 design-space core geometries of Table 3 / Fig. 14. */
struct CoreGeometry
{
    uint32_t warps;
    uint32_t threads;
    const char* name;
};

inline const std::vector<CoreGeometry>&
fig14Geometries()
{
    static const std::vector<CoreGeometry> g = {
        {4, 4, "4W-4T"}, {2, 8, "2W-8T"}, {8, 2, "8W-2T"},
        {4, 8, "4W-8T"}, {8, 4, "8W-4T"},
    };
    return g;
}

/** The five Rodinia kernels plotted in Fig. 14 / Fig. 19. */
inline const std::vector<std::string>&
fig14Kernels()
{
    static const std::vector<std::string> k = {"sgemm", "vecadd", "sfilter",
                                               "saxpy", "nearn"};
    return k;
}

/** All seven Rodinia kernels of the scaling study (Fig. 18). */
inline const std::vector<std::string>&
fig18Kernels()
{
    static const std::vector<std::string> k = {
        "sgemm", "vecadd", "sfilter", "saxpy", "nearn", "gaussian", "bfs"};
    return k;
}

/** Baseline machine: the paper's 4W-4T core (§6.2.1). */
inline core::ArchConfig
baselineConfig(uint32_t cores = 1)
{
    core::ArchConfig cfg;
    cfg.numWarps = 4;
    cfg.numThreads = 4;
    cfg.numCores = cores;
    if (cores >= 4) {
        cfg.l2Enabled = true;  // clusters attach an optional L2 (§4.1)
        cfg.coresPerCluster = 4;
    }
    if (cores > 16)
        cfg.mem.numChannels = 8; // Stratix 10 board (8 banks, §6.5)
    return cfg;
}

/** Run one verified kernel; fatal on verification failure so the bench
 *  never reports numbers from a wrong result. */
inline runtime::RunResult
runVerified(const core::ArchConfig& cfg, const std::string& kernel,
            uint32_t scale = 1)
{
    runtime::Device dev(cfg);
    runtime::RunResult r = runtime::runRodinia(dev, kernel, scale);
    if (!r.ok)
        fatal("bench kernel '", kernel, "' failed verification: ", r.error);
    return r;
}

inline void
printHeader(const char* title)
{
    std::printf("\n==== %s ====\n", title);
}

} // namespace vortex::bench
