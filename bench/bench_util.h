/**
 * @file
 * Shared helpers for the bench harnesses that drive single runs directly
 * (parallel_speedup, microbench). The figure/table harnesses are thin
 * wrappers over the campaign presets instead — see src/sweep/presets.h,
 * where the kernel lists, geometry axis, and baseline machine builder
 * now live.
 */

#pragma once

#include <cstdio>
#include <string>

#include "common/log.h"
#include "runtime/workloads.h"
#include "sweep/presets.h"

namespace vortex::bench {

/** Baseline machine: the paper's 4W-4T core scaled to @p cores
 *  (forwards to sweep::baselineConfig). */
inline core::ArchConfig
baselineConfig(uint32_t cores = 1)
{
    return sweep::baselineConfig(cores);
}

/** Run one verified kernel; fatal on verification failure so the bench
 *  never reports numbers from a wrong result. */
inline runtime::RunResult
runVerified(const core::ArchConfig& cfg, const std::string& kernel,
            uint32_t scale = 1)
{
    runtime::Device dev(cfg);
    runtime::RunResult r = runtime::runRodinia(dev, kernel, scale);
    if (!r.ok)
        fatal("bench kernel '", kernel, "' failed verification: ", r.error);
    return r;
}

inline void
printHeader(const char* title)
{
    std::printf("\n==== %s ====\n", title);
}

} // namespace vortex::bench
