/**
 * @file
 * Figure 18 reproduction: IPC scaling with core count (1-16) for the
 * compute-bound group (sgemm, vecadd, sfilter) and the memory-bound group
 * (saxpy, nearn, gaussian, bfs).
 *
 * Shape targets: near-linear scaling for the compute-bound group,
 * sub-linear for the memory-bound group, and poor scaling for nearn
 * (long-latency fsqrt serialization, §6.2.3).
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

using namespace vortex;

int
main()
{
    const std::vector<uint32_t> core_counts = {1, 2, 4, 8, 16};

    bench::printHeader("Figure 18: IPC vs core count");
    std::printf("%-10s %-8s", "kernel", "group");
    for (uint32_t c : core_counts)
        std::printf("   %3uc  ", c);
    std::printf("  speedup(16c/1c)\n");

    for (const auto& kernel : bench::fig18Kernels()) {
        std::printf("%-10s %-8s", kernel.c_str(),
                    runtime::isComputeBound(kernel) ? "compute" : "memory");
        double first = 0.0, last = 0.0;
        for (uint32_t c : core_counts) {
            // Scale the problem with the machine so every core has work.
            uint32_t scale = c >= 4 ? 2 : 1;
            runtime::RunResult r =
                bench::runVerified(bench::baselineConfig(c), kernel, scale);
            if (c == core_counts.front())
                first = r.ipc;
            last = r.ipc;
            std::printf(" %7.3f", r.ipc);
        }
        std::printf("   %6.2fx\n", last / first);
    }
    return 0;
}
