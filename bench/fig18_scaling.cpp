/**
 * @file
 * Figure 18 reproduction: IPC scaling with core count (1-16) for the
 * compute-bound group (sgemm, vecadd, sfilter) and the memory-bound group
 * (saxpy, nearn, gaussian, bfs). Thin wrapper over the "fig18" campaign
 * preset (src/sweep/presets.h).
 *
 * Shape targets: near-linear scaling for the compute-bound group,
 * sub-linear for the memory-bound group, and poor scaling for nearn
 * (long-latency fsqrt serialization, §6.2.3).
 */

#include "sweep/presets.h"

int
main()
{
    return vortex::sweep::runPresetMain("fig18");
}
