/**
 * @file
 * Table 4 reproduction: whole-device synthesis for 1-32 cores (ALM%,
 * registers, BRAM%, DSP%, fmax) from the calibrated area model, next to
 * the paper's values. Rows 1-16 target the Arria 10, row 32 the
 * Stratix 10 (as in the paper). Thin wrapper over the "table4" preset.
 */

#include "sweep/presets.h"

int
main()
{
    return vortex::sweep::runPresetMain("table4");
}
