/**
 * @file
 * Table 4 reproduction: whole-device synthesis for 1-32 cores (ALM%,
 * registers, BRAM%, DSP%, fmax) from the calibrated area model, next to
 * the paper's values. Rows 1-16 target the Arria 10, row 32 the
 * Stratix 10 (as in the paper).
 */

#include <cstdio>

#include "area/area.h"
#include "bench/bench_util.h"

using namespace vortex;

int
main()
{
    struct PaperRow
    {
        uint32_t cores;
        area::Fpga fpga;
        double alm, regsK, bram, dsp, fmax;
    };
    const PaperRow paper[] = {
        {1, area::Fpga::Arria10, 13, 78, 10, 2, 234},
        {2, area::Fpga::Arria10, 19, 111, 15, 5, 225},
        {4, area::Fpga::Arria10, 30, 176, 25, 9, 223},
        {8, area::Fpga::Arria10, 53, 305, 45, 19, 210},
        {16, area::Fpga::Arria10, 85, 525, 83, 38, 203},
        {32, area::Fpga::Stratix10, 70, 1057, 23, 20, 200},
    };

    bench::printHeader("Table 4: multi-core synthesis (model vs paper)");
    std::printf("%-6s %-5s %14s %16s %14s %13s %14s\n", "cores", "FPGA",
                "ALM%% m/p", "Regs(K) m/p", "BRAM%% m/p", "DSP%% m/p",
                "fmax m/p");
    for (const PaperRow& row : paper) {
        area::DeviceArea a = area::deviceArea(row.cores, row.fpga);
        std::printf("%-6u %-5s %6.0f /%5.0f %7.0f /%6.0f %6.0f /%5.0f "
                    "%5.0f /%5.0f %6.0f /%5.0f\n",
                    row.cores,
                    row.fpga == area::Fpga::Arria10 ? "A10" : "S10",
                    a.almPercent, row.alm, a.regsK, row.regsK,
                    a.bramPercent, row.bram, a.dspPercent, row.dsp,
                    a.fmaxMhz, row.fmax);
    }
    std::printf("\n(A10 rows calibrated; the S10 row is rescaled by device "
                "capacity)\n");
    return 0;
}
