/**
 * @file
 * Figure 19 reproduction: effect of virtual multi-porting on the 4-bank
 * data cache of a single 4W-4T core — bank utilization and IPC at 1, 2,
 * and 4 virtual ports per bank.
 *
 * Shape targets (§6.3): sgemm and vecadd see the lowest 1-port utilization
 * (bank conflicts from same-line lane accesses); utilization rises toward
 * 100% with ports; sgemm benefits most in IPC; 2 ports is the best
 * balance.
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "runtime/device.h"

using namespace vortex;

int
main()
{
    const std::vector<uint32_t> ports = {1, 2, 4};

    bench::printHeader("Figure 19: D$ bank utilization / IPC vs virtual "
                       "ports (1 core, 4 banks)");
    std::printf("%-10s", "kernel");
    for (uint32_t p : ports)
        std::printf("  util@%up  ", p);
    for (uint32_t p : ports)
        std::printf("   IPC@%up", p);
    std::printf("\n");

    for (const auto& kernel : bench::fig14Kernels()) {
        std::vector<double> util, ipc;
        for (uint32_t p : ports) {
            core::ArchConfig cfg = bench::baselineConfig(1);
            cfg.dcachePorts = p;
            runtime::Device dev(cfg);
            runtime::RunResult r = runtime::runRodinia(dev, kernel);
            if (!r.ok)
                fatal("fig19 kernel failed: ", r.error);
            util.push_back(
                dev.processor().core(0).dcache().bankUtilization());
            ipc.push_back(r.ipc);
        }
        std::printf("%-10s", kernel.c_str());
        for (double u : util)
            std::printf("  %6.1f%%  ", 100.0 * u);
        for (double i : ipc)
            std::printf("  %7.3f", i);
        std::printf("\n");
    }
    return 0;
}
