/**
 * @file
 * Figure 19 reproduction: effect of virtual multi-porting on the 4-bank
 * data cache of a single 4W-4T core — bank utilization and IPC at 1, 2,
 * and 4 virtual ports per bank. Thin wrapper over the "fig19" campaign
 * preset (src/sweep/presets.h).
 *
 * Shape targets (§6.3): sgemm and vecadd see the lowest 1-port utilization
 * (bank conflicts from same-line lane accesses); utilization rises toward
 * 100% with ports; sgemm benefits most in IPC; 2 ports is the best
 * balance.
 */

#include "sweep/presets.h"

int
main()
{
    return vortex::sweep::runPresetMain("fig19");
}
