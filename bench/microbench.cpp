/**
 * @file
 * google-benchmark micro suite: throughput of the individual substrates
 * (decoder, assembler, functional sampler, cache model, rasterizer, and
 * whole-processor simulation speed). These are simulator engineering
 * numbers, not paper figures; they guard against performance regressions
 * in the infrastructure itself.
 */

#include <benchmark/benchmark.h>

#include <deque>
#include <vector>

#include "common/small_vec.h"
#include "common/stats.h"
#include "core/decode_cache.h"
#include "core/uop.h"
#include "graphics/pipeline.h"
#include "isa/assembler.h"
#include "isa/isa.h"
#include "kernels/kernels.h"
#include "mem/cache.h"
#include "mem/ram.h"
#include "runtime/workloads.h"
#include "tex/sampler.h"

using namespace vortex;

static void
BM_Decode(benchmark::State& state)
{
    // A representative mix of encodings.
    const uint32_t words[] = {
        0x00A50533, // add a0, a0, a0
        0x0005A503, // lw a0, 0(a1)
        0x00B52023, // sw a1, 0(a0)
        0x00C58563, // beq a1, a2, ...
        0x00A585D3, // fadd.s fa1, fa1, fa0
        0x0000100B, // vx_tmc-ish custom
    };
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(isa::decode(words[i % 6]));
        ++i;
    }
}
BENCHMARK(BM_Decode);

static void
BM_AssembleVecAdd(benchmark::State& state)
{
    std::string src = std::string(kernels::runtimeSource()) +
                      kernels::vecadd();
    for (auto _ : state) {
        isa::Assembler as;
        benchmark::DoNotOptimize(as.assemble(src));
    }
}
BENCHMARK(BM_AssembleVecAdd);

static void
BM_SamplerBilinear(benchmark::State& state)
{
    mem::Ram ram;
    tex::SamplerState st;
    st.addr = 0x1000;
    st.widthLog2 = 6;
    st.heightLog2 = 6;
    st.format = tex::Format::RGBA8;
    st.wrapU = st.wrapV = tex::Wrap::Repeat;
    st.filter = tex::Filter::Bilinear;
    for (uint32_t i = 0; i < 64 * 64; ++i)
        ram.write32(0x1000 + i * 4, i * 0x01010101u);
    float u = 0.1f;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tex::sampleBilinear(ram, st, u, 0.7f, 0));
        u += 0.013f;
        if (u > 1.0f)
            u -= 1.0f;
    }
}
BENCHMARK(BM_SamplerBilinear);

static void
BM_CacheHitStream(benchmark::State& state)
{
    mem::CacheConfig cfg;
    cfg.numLanes = 4;
    mem::Cache cache(cfg);
    mem::MemSimConfig mcfg;
    mem::MemSim memsim(mcfg);
    cache.connectMem(&memsim);
    memsim.setRspCallback(
        [&](const mem::MemRsp& rsp) { cache.memRsp(rsp); });
    uint64_t id = 1;
    Cycle now = 0;
    for (auto _ : state) {
        ++now;
        for (uint32_t lane = 0; lane < 4; ++lane) {
            if (cache.laneReady(lane)) {
                mem::CoreReq req;
                req.addr = (lane * 64) & 0xFFF;
                req.reqId = id++;
                req.lane = lane;
                cache.lanePush(lane, req);
            }
        }
        cache.tick(now);
        memsim.tick(now);
    }
    state.SetItemsProcessed(static_cast<int64_t>(id));
}
BENCHMARK(BM_CacheHitStream);

static void
BM_RasterizerFill(benchmark::State& state)
{
    graphics::Framebuffer fb(256, 256);
    graphics::Pipeline pipe(fb);
    std::vector<graphics::Vertex> vtx(3);
    vtx[0].position = {-1.0f, -1.0f, 0.0f, 1.0f};
    vtx[1].position = {3.0f, -1.0f, 0.0f, 1.0f};
    vtx[2].position = {-1.0f, 3.0f, 0.0f, 1.0f};
    std::vector<uint32_t> idx = {0, 1, 2};
    for (auto _ : state) {
        fb.clear({0, 0, 0, 255});
        pipe.drawTriangles(vtx, idx);
    }
    state.SetItemsProcessed(state.iterations() * 256 * 256);
}
BENCHMARK(BM_RasterizerFill);

static void
BM_FetchDecode(benchmark::State& state)
{
    // The per-fetch host cost of producing a decoded instruction from a
    // PC, over a loop-shaped 256-instruction code region. Arg 0 is the
    // pre-decode-cache path (RAM read + full decode every fetch); arg 1
    // is the steady-state DecodeCache::lookup path the core now runs.
    mem::Ram ram;
    const Addr base = 0x80000000;
    const uint32_t n = 256;
    for (uint32_t i = 0; i < n; ++i)
        ram.write32(base + i * 4, 0x00A50533); // add a0, a0, a0
    core::DecodeCache dcache;
    const bool cached = state.range(0) != 0;
    Addr pc = base;
    for (auto _ : state) {
        if (cached) {
            benchmark::DoNotOptimize(dcache.lookup(ram, pc));
        } else {
            benchmark::DoNotOptimize(isa::decode(ram.read32(pc)));
        }
        pc += 4;
        if (pc == base + n * 4)
            pc = base;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FetchDecode)->Arg(0)->Arg(1);

static void
BM_StatCounterLookup(benchmark::State& state)
{
    // The per-event cost of bumping a stat counter in a group sized like
    // the D$'s (18 keys). Arg 0 is the string-keyed map probe the hot
    // paths used to pay per event; arg 1 is the cached CounterRef.
    StatGroup g("dcache");
    static const char* kKeys[] = {
        "core_reads", "core_writes", "core_rsps", "mem_reqs",
        "mshr_replays", "fills", "memq_stalls", "write_hits",
        "write_misses", "read_hits", "read_misses", "mshr_merges",
        "mshr_stalls", "evictions", "sel_candidates", "sel_input_full",
        "sel_accepted", "sel_conflicts",
    };
    for (const char* k : kKeys)
        g.counter(k);
    CounterRef ref = g.counterRef("read_hits");
    const bool use_ref = state.range(0) != 0;
    for (auto _ : state) {
        if (use_ref)
            ++ref;
        else
            ++g.counter("read_hits");
    }
    benchmark::DoNotOptimize(g.get("read_hits"));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StatCounterLookup)->Arg(0)->Arg(1);

namespace {

/** BM_UopChurn payload shaped like ExecOut's per-thread lanes. */
template <typename WordVec, typename AddrVec>
struct ChurnUop
{
    isa::Instr instr;
    WordVec values;
    AddrVec addrs;
};

/** One simulated instruction lifetime: fill 4-lane payloads, travel a
 *  4-deep queue (the ibuffer/FU shape), retire into @p pool. */
template <typename U>
void
churn(benchmark::State& state, std::deque<U>& pipe, std::vector<U>& pool,
      bool recycle)
{
    for (auto _ : state) {
        U uop;
        if (recycle && !pool.empty()) {
            uop = std::move(pool.back());
            pool.pop_back();
        }
        uop.values.assign(4, 0x12345678u);
        uop.addrs.assign(4, 0x1000u);
        pipe.push_back(std::move(uop));
        if (pipe.size() >= 4) {
            U retired = std::move(pipe.front());
            pipe.pop_front();
            benchmark::DoNotOptimize(retired.values[3]);
            retired.values.clear();
            retired.addrs.clear();
            if (recycle && pool.size() < 64)
                pool.push_back(std::move(retired));
        }
    }
    state.SetItemsProcessed(state.iterations());
}

} // namespace

static void
BM_UopChurn(benchmark::State& state)
{
    // Heap churn of the uop payload flow. Arg 0 reproduces the old
    // std::vector payloads (one heap alloc+free per per-thread array per
    // instruction); arg 1 is the shipped SmallVec + recycle-pool flow
    // (allocation-free at <= 8 lanes).
    if (state.range(0) == 0) {
        using U = ChurnUop<std::vector<Word>, std::vector<Addr>>;
        std::deque<U> pipe;
        std::vector<U> pool;
        churn(state, pipe, pool, /*recycle=*/false);
    } else {
        using U = ChurnUop<SmallVec<Word, core::kUopInlineLanes>,
                           SmallVec<Addr, core::kUopInlineLanes>>;
        std::deque<U> pipe;
        std::vector<U> pool;
        churn(state, pipe, pool, /*recycle=*/true);
    }
}
BENCHMARK(BM_UopChurn)->Arg(0)->Arg(1);

static void
BM_SimulatorThroughput(benchmark::State& state)
{
    // Whole-stack simulation speed in simulated cycles per second.
    uint64_t cycles = 0;
    for (auto _ : state) {
        core::ArchConfig cfg;
        runtime::Device dev(cfg);
        runtime::RunResult r = runtime::runVecAdd(dev, 1024);
        if (!r.ok)
            state.SkipWithError("vecadd verification failed");
        cycles += r.cycles;
    }
    state.counters["sim_cycles_per_s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorThroughput)->Unit(benchmark::kMillisecond);

static void
BM_SimulatorSampling(benchmark::State& state)
{
    // Tick-path cost of per-interval counter sampling. Arg is
    // ArchConfig::sampleInterval: 0 = disabled (the guard branch only —
    // must be indistinguishable from BM_SimulatorThroughput), small
    // intervals bound the worst-case snapshot overhead.
    uint64_t cycles = 0, samples = 0;
    for (auto _ : state) {
        core::ArchConfig cfg;
        cfg.sampleInterval = static_cast<uint64_t>(state.range(0));
        runtime::Device dev(cfg);
        runtime::RunResult r = runtime::runVecAdd(dev, 1024);
        if (!r.ok)
            state.SkipWithError("vecadd verification failed");
        cycles += r.cycles;
        samples += dev.processor().timeSeries().numSamples();
    }
    state.counters["sim_cycles_per_s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
    state.counters["samples"] = static_cast<double>(samples);
}
BENCHMARK(BM_SimulatorSampling)
    ->Arg(0)
    ->Arg(10000)
    ->Arg(1000)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
