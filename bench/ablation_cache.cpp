/**
 * @file
 * Ablation: cache design choices DESIGN.md calls out — MSHR depth
 * (non-blocking-ness), bank count, and line size — on the baseline 4W-4T
 * core. Not a paper figure; this quantifies why the paper's cache is built
 * the way it is (non-blocking with per-bank MSHRs, 4 banks, 64B lines).
 * Thin wrapper over the ablation_{mshr,banks,linesize} campaign presets.
 */

#include "sweep/presets.h"

int
main()
{
    for (const char* preset :
         {"ablation_mshr", "ablation_banks", "ablation_linesize"})
        if (int rc = vortex::sweep::runPresetMain(preset))
            return rc;
    return 0;
}
