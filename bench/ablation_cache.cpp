/**
 * @file
 * Ablation: cache design choices DESIGN.md calls out — MSHR depth
 * (non-blocking-ness), bank count, and line size — on the baseline 4W-4T
 * core. Not a paper figure; this quantifies why the paper's cache is built
 * the way it is (non-blocking with per-bank MSHRs, 4 banks, 64B lines).
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

using namespace vortex;

int
main()
{
    bench::printHeader("Ablation: non-blocking depth (MSHR entries/bank)");
    std::printf("%-10s", "kernel");
    const std::vector<uint32_t> mshrs = {1, 2, 4, 8, 16};
    for (uint32_t m : mshrs)
        std::printf("  mshr=%-3u", m);
    std::printf("\n");
    for (const char* kernel : {"saxpy", "sgemm"}) {
        std::printf("%-10s", kernel);
        for (uint32_t m : mshrs) {
            core::ArchConfig cfg = bench::baselineConfig(1);
            cfg.mshrEntries = m;
            runtime::RunResult r = bench::runVerified(cfg, kernel);
            std::printf("  %8.3f", r.ipc);
        }
        std::printf("\n");
    }

    bench::printHeader("Ablation: D$ bank count (1 virtual port)");
    std::printf("%-10s", "kernel");
    const std::vector<uint32_t> banks = {1, 2, 4, 8};
    for (uint32_t b : banks)
        std::printf("  banks=%-2u", b);
    std::printf("\n");
    for (const char* kernel : {"saxpy", "sgemm"}) {
        std::printf("%-10s", kernel);
        for (uint32_t b : banks) {
            core::ArchConfig cfg = bench::baselineConfig(1);
            cfg.dcacheBanks = b;
            runtime::RunResult r = bench::runVerified(cfg, kernel);
            std::printf("  %8.3f", r.ipc);
        }
        std::printf("\n");
    }

    bench::printHeader("Ablation: line size");
    std::printf("%-10s", "kernel");
    const std::vector<uint32_t> lines = {16, 32, 64, 128};
    for (uint32_t l : lines)
        std::printf("  line=%-4u", l);
    std::printf("\n");
    for (const char* kernel : {"saxpy", "vecadd"}) {
        std::printf("%-10s", kernel);
        for (uint32_t l : lines) {
            core::ArchConfig cfg = bench::baselineConfig(1);
            cfg.lineSize = l;
            cfg.mem.lineSize = l;
            runtime::RunResult r = bench::runVerified(cfg, kernel);
            std::printf("  %8.3f", r.ipc);
        }
        std::printf("\n");
    }
    return 0;
}
