/**
 * @file
 * Ablation: core pipeline sizing — instruction-buffer depth, LSU depth
 * (memory-level parallelism per core), scheduling policy, and FPU latency
 * sensitivity (the DSP-mapping argument of §6.2.2: nearn's fsqrt
 * dominates its runtime). Thin wrapper over the
 * ablation_{ibuffer,lsu,sched,fsqrt} campaign presets.
 */

#include "sweep/presets.h"

int
main()
{
    for (const char* preset : {"ablation_ibuffer", "ablation_lsu",
                               "ablation_sched", "ablation_fsqrt"})
        if (int rc = vortex::sweep::runPresetMain(preset))
            return rc;
    return 0;
}
