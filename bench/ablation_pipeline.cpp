/**
 * @file
 * Ablation: core pipeline sizing — instruction-buffer depth, LSU depth
 * (memory-level parallelism per core), and FPU latency sensitivity (the
 * DSP-mapping argument of §6.2.2: nearn's fsqrt dominates its runtime).
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

using namespace vortex;

int
main()
{
    bench::printHeader("Ablation: ibuffer depth");
    std::printf("%-10s", "kernel");
    const std::vector<uint32_t> depths = {1, 2, 4, 8};
    for (uint32_t d : depths)
        std::printf("  ibuf=%-3u", d);
    std::printf("\n");
    for (const char* kernel : {"sgemm", "saxpy"}) {
        std::printf("%-10s", kernel);
        for (uint32_t d : depths) {
            core::ArchConfig cfg = bench::baselineConfig(1);
            cfg.ibufferDepth = d;
            runtime::RunResult r = bench::runVerified(cfg, kernel);
            std::printf("  %8.3f", r.ipc);
        }
        std::printf("\n");
    }

    bench::printHeader("Ablation: LSU depth (in-flight warp memory ops)");
    std::printf("%-10s", "kernel");
    const std::vector<uint32_t> lsu = {1, 2, 4, 8};
    for (uint32_t d : lsu)
        std::printf("  lsu=%-4u", d);
    std::printf("\n");
    for (const char* kernel : {"saxpy", "vecadd"}) {
        std::printf("%-10s", kernel);
        for (uint32_t d : lsu) {
            core::ArchConfig cfg = bench::baselineConfig(1);
            cfg.lsuDepth = d;
            runtime::RunResult r = bench::runVerified(cfg, kernel);
            std::printf("  %8.3f", r.ipc);
        }
        std::printf("\n");
    }

    bench::printHeader("Ablation: wavefront scheduling policy "
                       "(hierarchical vs round-robin)");
    std::printf("%-10s %14s %14s\n", "kernel", "hierarchical",
                "round-robin");
    for (const char* kernel : {"sgemm", "saxpy", "nearn", "bfs"}) {
        double ipc[2];
        int i = 0;
        for (core::SchedPolicy pol : {core::SchedPolicy::Hierarchical,
                                      core::SchedPolicy::RoundRobin}) {
            core::ArchConfig cfg = bench::baselineConfig(1);
            cfg.numWarps = 8; // policy differences show with more warps
            cfg.schedPolicy = pol;
            ipc[i++] = bench::runVerified(cfg, kernel).ipc;
        }
        std::printf("%-10s %14.3f %14.3f\n", kernel, ipc[0], ipc[1]);
    }

    bench::printHeader("Ablation: fsqrt latency (nearn sensitivity, "
                       "§6.2.3)");
    std::printf("%-10s", "kernel");
    const std::vector<uint32_t> lat = {4, 12, 24, 48};
    for (uint32_t l : lat)
        std::printf("  fsqrt=%-3u", l);
    std::printf("\n");
    for (const char* kernel : {"nearn", "saxpy"}) {
        std::printf("%-10s", kernel);
        for (uint32_t l : lat) {
            core::ArchConfig cfg = bench::baselineConfig(1);
            cfg.lat.fsqrt = l;
            runtime::RunResult r = bench::runVerified(cfg, kernel);
            std::printf("  %8.3f", r.ipc);
        }
        std::printf("\n");
    }
    return 0;
}
