/**
 * @file
 * Wall-clock comparison of the serial and parallel tick backends on a
 * Figure-18-style multi-core scaling workload. Simulated results must be
 * bit-identical between backends; only host time may differ. Reports
 * simulated cycles, wall-clock seconds, simulated-cycles-per-host-second,
 * and the parallel speedup.
 */

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"

using namespace vortex;

namespace {

struct Measurement
{
    runtime::RunResult result;
    double seconds = 0.0;
};

Measurement
measure(core::ArchConfig cfg, const std::string& kernel, uint32_t scale)
{
    auto t0 = std::chrono::steady_clock::now();
    runtime::RunResult r = bench::runVerified(cfg, kernel, scale);
    auto t1 = std::chrono::steady_clock::now();
    return Measurement{r, std::chrono::duration<double>(t1 - t0).count()};
}

} // namespace

int
main()
{
    const uint32_t cores = 8;
    const uint32_t scale = 2;
    const unsigned host_cpus = std::thread::hardware_concurrency();
    // Force a real pool even on a single-CPU host (where the auto setting
    // of tickThreads=0 would fall back to serial): the comparison is then
    // honest about threading overhead rather than silently serial.
    const uint32_t pool = std::min(cores, std::max(2u, host_cpus));

    bench::printHeader("Parallel tick engine: serial vs parallel wall clock");
    std::printf("host CPUs: %u, simulated cores: %u, pool threads: %u\n\n",
                host_cpus, cores, pool);
    std::printf("%-10s %12s %10s %10s %12s %9s  %s\n", "kernel", "cycles",
                "serial_s", "par_s", "kcycles/s", "speedup", "identical");

    for (const std::string& kernel : {std::string("sgemm"),
                                      std::string("vecadd"),
                                      std::string("sfilter")}) {
        core::ArchConfig serial_cfg = bench::baselineConfig(cores);
        core::ArchConfig par_cfg = serial_cfg;
        par_cfg.parallelTick = true;
        par_cfg.tickThreads = pool;

        Measurement s = measure(serial_cfg, kernel, scale);
        Measurement p = measure(par_cfg, kernel, scale);

        bool identical = s.result.cycles == p.result.cycles &&
                         s.result.threadInstrs == p.result.threadInstrs;
        std::printf("%-10s %12llu %10.3f %10.3f %12.0f %8.2fx  %s\n",
                    kernel.c_str(),
                    static_cast<unsigned long long>(s.result.cycles),
                    s.seconds, p.seconds,
                    static_cast<double>(p.result.cycles) / p.seconds / 1e3,
                    s.seconds / p.seconds, identical ? "yes" : "NO");
        if (!identical)
            return 1;
    }
    return 0;
}
