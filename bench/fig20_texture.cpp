/**
 * @file
 * Figure 20 reproduction: hardware texture acceleration vs the software
 * sampler for point, bilinear, and trilinear filtering at 1/2/4/8 cores.
 * Time is reported in kilocycles (the FPGA milliseconds of the paper are
 * cycles / 200 MHz; the shape is what matters).
 *
 * Shape targets (§6.4): point HW ~= SW (the RGBA8 software path is a
 * copy); bilinear HW ~2x at one core with the gap narrowing as cores
 * saturate memory bandwidth; trilinear HW wins but by less than bilinear
 * (double memory traffic).
 *
 * The paper renders 1080p; the default here is 128x128 so the cycle-level
 * simulation completes in seconds (resolution does not change the
 * compute/bandwidth ratio that produces the shape). Pass a size argument
 * to run larger targets.
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/bench_util.h"
#include "runtime/device.h"

using namespace vortex;

int
main(int argc, char** argv)
{
    uint32_t size = 64;
    if (argc > 1)
        size = static_cast<uint32_t>(std::atoi(argv[1]));

    const std::vector<uint32_t> core_counts = {1, 2, 4, 8};
    const std::vector<std::pair<runtime::TexFilterMode, const char*>> modes =
        {{runtime::TexFilterMode::Point, "point"},
         {runtime::TexFilterMode::Bilinear, "bilinear"},
         {runtime::TexFilterMode::Trilinear, "trilinear"}};

    bench::printHeader("Figure 20: HW vs SW texture filtering "
                       "(kilocycles; lower is better)");
    std::printf("(render target %ux%u RGBA8)\n", size, size);
    std::printf("%-6s %-10s %10s %10s %8s\n", "cores", "filter", "SW",
                "HW", "SW/HW");

    for (uint32_t c : core_counts) {
        for (const auto& [mode, name] : modes) {
            double t[2] = {0.0, 0.0};
            for (int hw = 0; hw <= 1; ++hw) {
                runtime::Device dev(bench::baselineConfig(c));
                runtime::RunResult r =
                    runtime::runTexture(dev, mode, hw != 0, size);
                if (!r.ok)
                    fatal("fig20 ", name, (hw ? " HW" : " SW"),
                          " failed: ", r.error);
                t[hw] = static_cast<double>(r.cycles) / 1000.0;
            }
            std::printf("%-6u %-10s %10.1f %10.1f %7.2fx\n", c, name, t[0],
                        t[1], t[0] / t[1]);
        }
    }
    return 0;
}
