/**
 * @file
 * Figure 20 reproduction: hardware texture acceleration vs the software
 * sampler for point, bilinear, and trilinear filtering at 1/2/4/8 cores.
 * Thin wrapper over the "fig20" campaign preset; pass a size argument to
 * render larger targets (the preset default is a small target so the
 * cycle-level simulation completes in seconds — resolution does not
 * change the compute/bandwidth ratio that produces the shape).
 *
 * Shape targets (§6.4): point HW ~= SW (the RGBA8 software path is a
 * copy); bilinear HW ~2x at one core with the gap narrowing as cores
 * saturate memory bandwidth; trilinear HW wins but by less than bilinear
 * (double memory traffic).
 */

#include "sweep/presets.h"

int
main(int argc, char** argv)
{
    vortex::sweep::PresetArgs args;
    if (argc > 1)
        args.push_back({"size", argv[1]});
    return vortex::sweep::runPresetMain("fig20", args);
}
