/**
 * @file
 * Instruction-lifecycle tracing (paper §4.4): elastic requests carry tags
 * (PC + wavefront id) that "track the life cycle of instructions and other
 * request types inside the processor". A TraceSink attached to a core
 * receives one event per pipeline milestone per instruction; TraceBuffer
 * collects them and reconstructs per-instruction timelines for debugging
 * and for the microarchitectural assertions in the test suite.
 */

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"

namespace vortex::core {

/** Pipeline milestones of one instruction. */
enum class TraceStage : uint8_t
{
    Fetch,   ///< selected by the wavefront scheduler, I$ request issued
    Decode,  ///< I$ response decoded into the ibuffer
    Issue,   ///< scoreboard clear, dispatched to a functional unit
    Commit,  ///< retired (writeback or completion)
};

/** One trace event. */
struct TraceEvent
{
    uint64_t uid = 0; ///< unique instruction id
    WarpId wid = 0;   ///< issuing wavefront
    Addr pc = 0;      ///< instruction PC
    TraceStage stage = TraceStage::Fetch; ///< milestone reached
    Cycle cycle = 0;                      ///< when it was reached
};

/** Receiver interface. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    /** Deliver one lifecycle event (called from Core::tick). */
    virtual void record(const TraceEvent& event) = 0;
};

/** Collecting sink with per-instruction timeline reconstruction. */
class TraceBuffer : public TraceSink
{
  public:
    void
    record(const TraceEvent& event) override
    {
        events_.push_back(event);
    }

    /** Every event recorded, in arrival order. */
    const std::vector<TraceEvent>& events() const { return events_; }

    /** Reconstructed lifecycle of one instruction. */
    struct Timeline
    {
        WarpId wid = 0; ///< issuing wavefront
        Addr pc = 0;    ///< instruction PC
        /** Cycle each milestone was reached (absent if never seen). */
        std::optional<Cycle> fetch, decode, issue, commit;

        /** Every milestone observed? */
        bool
        complete() const
        {
            return fetch && decode && issue && commit;
        }

        /** Complete and in pipeline order (fetch <= ... <= commit)? */
        bool
        ordered() const
        {
            return complete() && *fetch <= *decode && *decode <= *issue &&
                   *issue <= *commit;
        }
    };

    /** Timelines keyed by instruction uid. */
    std::map<uint64_t, Timeline>
    timelines() const
    {
        std::map<uint64_t, Timeline> out;
        for (const TraceEvent& e : events_) {
            Timeline& t = out[e.uid];
            t.wid = e.wid;
            t.pc = e.pc;
            switch (e.stage) {
              case TraceStage::Fetch: t.fetch = e.cycle; break;
              case TraceStage::Decode: t.decode = e.cycle; break;
              case TraceStage::Issue: t.issue = e.cycle; break;
              case TraceStage::Commit: t.commit = e.cycle; break;
            }
        }
        return out;
    }

    /** Drop every recorded event. */
    void clear() { events_.clear(); }

  private:
    std::vector<TraceEvent> events_;
};

} // namespace vortex::core
