/**
 * @file
 * Top-level processor: clusters of cores with optional shared L2 per
 * cluster and an optional L3 shared by the clusters, in front of the board
 * memory (paper §4.1: "a scalable architecture that allows clustering of
 * multiple cores with optional L2 and L3 caches"). Also hosts the global
 * (inter-core) barrier table.
 */

#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/stats.h"
#include "core/barrier.h"
#include "core/config.h"
#include "core/core.h"
#include "core/tick_engine.h"
#include "mem/memsim.h"
#include "mem/ram.h"
#include "mem/router.h"
#include "mem/staging.h"

namespace vortex::core {

/** The full simulated device. */
class Processor : public BarrierHub
{
  public:
    /** Build and wire the whole device described by @p config: cores,
     *  optional L2/L3 clusters, board memory, and the tick backend. */
    explicit Processor(const ArchConfig& config);
    /** Tears down the tick engine before the cores it references. */
    ~Processor() override;

    mem::Ram& ram() { return ram_; }                     ///< backing RAM
    const ArchConfig& config() const { return config_; } ///< the machine

    /** Reset every core and start wavefront 0 of each at startPC. */
    void start();

    /** Advance one cycle. */
    void tick();

    /** Any core or memory component still working? */
    bool busy() const;

    /**
     * Run until completion. @return true if the device went idle within
     * @p max_cycles, false on timeout (a likely deadlock or runaway
     * kernel).
     */
    bool run(uint64_t max_cycles = 200000000ull);

    /** Cycles simulated so far. */
    Cycle cycles() const { return cycles_; }

    /** Total thread-instructions executed (the IPC numerator used in the
     *  paper's figures). */
    uint64_t threadInstrs() const;
    /** Total wavefront-instructions executed, summed across cores. */
    uint64_t warpInstrs() const;
    /** threadInstrs() / cycles() (0 before the first tick). */
    double ipc() const;

    size_t numCores() const { return cores_.size(); } ///< device core count
    Core& core(size_t i) { return *cores_.at(i); }    ///< core @p i
    /** Const view of core @p i. */
    const Core& core(size_t i) const { return *cores_.at(i); }
    mem::MemSim& memSim() { return *memSim_; } ///< the board-memory model
    /** Cluster @p cluster's L2 (nullptr when L2s are disabled). */
    mem::Cache* l2(size_t cluster)
    {
        return cluster < l2s_.size() ? l2s_[cluster].get() : nullptr;
    }
    /** The device L3 (nullptr when disabled). */
    mem::Cache* l3() { return l3_.get(); }

    /** The active core tick backend (serial or parallel). */
    const TickEngine& tickEngine() const { return *tickEngine_; }

    /**
     * Flatten every device StatGroup into @p flat under "<group>.<key>"
     * names, summed across cores, in fixed hierarchy order (core-private
     * units first, then the shared levels outward: core, icache, dcache,
     * smem, tex, l2, l3, mem). The synthetic "core.thread_instrs" /
     * "core.warp_instrs" counters lead the core group so IPC curves can
     * be computed from a snapshot alone. Counters accumulate into any
     * the caller already has (@p flat need not be empty).
     */
    void collectStats(StatGroup& flat);

    /**
     * The per-interval counter time series recorded by this run (empty
     * unless ArchConfig::sampleInterval is nonzero). Samples are taken
     * after the cross-core commit phase of tick(), i.e. at the same
     * deterministic cycle boundary the serial and parallel backends
     * agree on, plus one final partial window when run() goes idle.
     */
    const TimeSeries& timeSeries() const { return sampler_.series(); }

    // BarrierHub. Safe to call from any tick worker: the arrival is
    // buffered per core and applied in core order after the tick phase.
    void globalArrive(uint32_t id, uint32_t count, CoreId core,
                      WarpId wid) override;

    /**
     * Install @p hook to be called once per tick() on the main thread,
     * after the cross-core commit phase — the deterministic cycle
     * boundary both tick backends agree on, so anything the hook mutates
     * (registers, memory) lands bit-identically under serial and
     * parallel tick. This is the fault-injection attachment point
     * (src/faults/fault.h). An empty function uninstalls.
     */
    void setFaultHook(std::function<void(Processor&, Cycle)> hook)
    {
        faultHook_ = std::move(hook);
    }

    /**
     * Install @p check, polled periodically (every few thousand cycles)
     * by run(). When it returns true the run throws a Timeout-class
     * SimError — how the fabric service enforces a per-simulation
     * wall-clock deadline without a kill signal (docs/ROBUSTNESS.md).
     * An empty function uninstalls.
     */
    void setAbortCheck(std::function<bool()> check)
    {
        abortCheck_ = std::move(check);
    }

  private:
    void wire();

    /** Wrap @p down in a staging port drained serially in core order. */
    mem::MemSink* staged(mem::MemSink* down, size_t depth);

    /** Connect an L1's memory side to lane @p lane of a shared downstream
     *  cache through a staging port. */
    void linkStagedL1(mem::Cache& l1, mem::Cache& downstream, uint32_t lane);

    /** Commit phase: staged L1 requests, then global barrier arrivals. */
    void commitCrossCore();

    ArchConfig config_;
    mem::Ram ram_;
    std::unique_ptr<mem::MemSim> memSim_;
    std::unique_ptr<mem::MemRouter> memRouter_;
    std::vector<std::unique_ptr<Core>> cores_;
    std::vector<std::unique_ptr<mem::Cache>> l2s_;
    std::unique_ptr<mem::Cache> l3_;
    /** Keep-alive for CacheMemPort adapters used in the wiring. */
    std::vector<std::unique_ptr<mem::MemSink>> adapters_;
    /** L1 memory-side staging ports, in drain (core) order. */
    std::vector<std::unique_ptr<mem::StagedMemPort>> stagedPorts_;
    std::unique_ptr<TickEngine> tickEngine_;

    /** A global-barrier arrival buffered during the tick phase. */
    struct PendingArrival
    {
        uint32_t id;
        uint32_t count;
        WarpId wid;
    };
    std::vector<std::vector<PendingArrival>> pendingArrivals_; ///< per core

    GlobalBarrierTable globalBarriers_;
    StatSampler sampler_; ///< per-interval counter sampling (off by default)
    std::function<void(Processor&, Cycle)> faultHook_; ///< setFaultHook()
    std::function<bool()> abortCheck_;                 ///< setAbortCheck()
    Cycle cycles_ = 0;
};

} // namespace vortex::core
