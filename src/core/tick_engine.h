/**
 * @file
 * Core tick backends. The Processor delegates the per-cycle "tick every
 * core" phase to a TickEngine:
 *
 *  - SerialTickEngine ticks the cores in index order on the caller's
 *    thread (the default).
 *  - ParallelTickEngine ticks them concurrently on a persistent host
 *    thread pool, barrier-synchronized per simulated cycle.
 *
 * Cores are independent within the tick phase by construction: every
 * cross-core interaction (L1 -> shared L2/L3/board-memory requests, global
 * barrier arrivals) is staged into producer-local buffers during the phase
 * and committed by the Processor in deterministic core order afterwards
 * (see mem::StagedMemPort and Processor::tick). Both backends use that
 * same commit phase and therefore produce bit-identical simulations —
 * same cycles(), threadInstrs(), and functional results. (The commit
 * phase itself is a small, uniform timing-model refinement over the
 * pre-staging simulator: cross-core effects — a queue push seen by a
 * sibling, a global barrier release — take effect at the cycle boundary
 * instead of mid-cycle in core-index order.)
 */

#pragma once

#include <memory>
#include <vector>

#include "common/types.h"

namespace vortex::core {

class Core;
struct ArchConfig;

/** Backend that advances every core by one simulated cycle. */
class TickEngine
{
  public:
    virtual ~TickEngine() = default;

    /** Tick all cores once for simulated cycle @p now. */
    virtual void tick(Cycle now) = 0;

    /** Backend name ("serial" / "parallel") for logs and benches. */
    virtual const char* name() const = 0;

    /** Host threads participating in the tick phase (1 for serial). */
    virtual uint32_t numWorkers() const = 0;
};

/**
 * Build the tick engine selected by @p config (ArchConfig::parallelTick /
 * ArchConfig::tickThreads). Falls back to the serial backend when only one
 * worker would be used.
 */
std::unique_ptr<TickEngine> makeTickEngine(const ArchConfig& config,
                                           std::vector<Core*> cores);

} // namespace vortex::core
