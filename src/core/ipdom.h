/**
 * @file
 * Hardware immediate-post-dominator (IPDOM) stack for SIMT control
 * divergence (paper §4.1.2).
 *
 * `split` evaluates the per-thread predicate; on divergence it pushes the
 * current thread mask as a *fall-through* entry, then pushes the
 * false-predicate threads with the next PC, and resumes with the
 * true-predicate threads. `join` pops: a non-fall-through entry redirects
 * execution to the stored PC with the stored mask (the else-path replays);
 * a fall-through entry restores the mask and continues in sequence.
 *
 * A uniform split (all-true or all-false) pushes an empty else-entry so the
 * split/join pairing in the program stays balanced; `join` skips the empty
 * entry and immediately restores the fall-through.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/log.h"
#include "common/outcome.h"
#include "common/types.h"

namespace vortex::core {

/** One IPDOM stack entry. */
struct IpdomEntry
{
    uint64_t tmask = 0;      ///< thread mask to restore (or run the else)
    Addr pc = 0;             ///< else-path PC (non-fall-through entries)
    bool fallThrough = false;///< restore-and-continue entry (no redirect)
};

/** Fixed-capacity per-wavefront IPDOM stack. */
class IpdomStack
{
  public:
    /** A stack of at most @p capacity nested divergences (the hardware
     *  sizes this structure statically). */
    explicit IpdomStack(uint32_t capacity = 16) : capacity_(capacity) {}

    bool empty() const { return entries_.empty(); }    ///< no divergence
    size_t size() const { return entries_.size(); }    ///< nesting depth
    uint32_t capacity() const { return capacity_; }    ///< maximum depth

    /** Push a divergence entry; a GuestTrap SimError on overflow (deeper
     *  nesting than the modeled hardware supports). */
    void
    push(const IpdomEntry& e)
    {
        if (entries_.size() >= capacity_)
            trap(RunStatus::GuestTrap, "IPDOM stack overflow (capacity ",
                 capacity_, "): control divergence nested too deep");
        entries_.push_back(e);
    }

    /** Pop the innermost entry (a `join`); a GuestTrap SimError on
     *  underflow. */
    IpdomEntry
    pop()
    {
        if (entries_.empty())
            trap(RunStatus::GuestTrap,
                 "IPDOM stack underflow: join without matching split");
        IpdomEntry e = entries_.back();
        entries_.pop_back();
        return e;
    }

    /** Drop every entry (wavefront reset). */
    void clear() { entries_.clear(); }

  private:
    uint32_t capacity_;
    std::vector<IpdomEntry> entries_;
};

} // namespace vortex::core
