/**
 * @file
 * Micro-operation record travelling the core pipeline, and the result of
 * functional execution (the simulator executes instruction semantics at
 * dispatch, SimX-style; the timing model then decides when the results
 * become architecturally visible via the scoreboard).
 *
 * The per-thread payloads are SmallVecs sized for the common machine
 * geometries, so executing and retiring an instruction allocates nothing
 * on the host heap (common/small_vec.h); wider machines spill and the
 * core's uop recycling reuses the spilled capacity.
 */

#pragma once

#include <cstdint>

#include "common/small_vec.h"
#include "common/types.h"
#include "isa/isa.h"
#include "tex/texunit.h"

namespace vortex::core {

/** Inline lane capacity of the per-thread uop payloads: covers every
 *  machine up to 8 threads/wavefront without heap traffic. */
constexpr size_t kUopInlineLanes = 8;

/** Outcome of functionally executing one instruction for one wavefront. */
struct ExecOut
{
    uint64_t tmask = 0; ///< thread mask at execution time

    //
    // Register writeback.
    //
    bool hasDst = false;      ///< the instruction writes a register
    isa::RegRef dst;          ///< destination register (when hasDst)
    /** Per-thread writeback values; valid where tmask bit set. */
    SmallVec<Word, kUopInlineLanes> values;

    //
    // Memory access (loads and stores).
    //
    bool isMem = false;       ///< load/store through the LSU
    bool memWrite = false;    ///< store (vs load)
    bool memShared = false;   ///< routed to the scratchpad
    /** Per-thread access addresses; valid where tmask bit set. */
    SmallVec<Addr, kUopInlineLanes> addrs;

    //
    // Texture access.
    //
    bool isTex = false;    ///< `tex` instruction (texture-unit path)
    uint32_t texStage = 0; ///< sampler pipeline stage selector
    /** Per-lane sample requests (same inline capacity as TexRequest). */
    tex::TexLaneVec texLanes;

    //
    // Wavefront scheduling events.
    //
    bool haltWarp = false;  ///< tmc 0 / ecall / ebreak
    bool isBarrier = false; ///< `bar` arrival
    bool barrierGlobal = false; ///< inter-core (global) barrier scope
    uint32_t barrierId = 0;     ///< barrier identifier
    uint32_t barrierCount = 0;  ///< wavefront arrivals expected
    bool isFence = false; ///< completes only when the LSU/D$ drain

    /** Reset to the default-constructed state while keeping any payload
     *  capacity, so a recycled uop re-executes without reallocating. */
    void
    reset()
    {
        tmask = 0;
        hasDst = false;
        dst = {};
        values.clear();
        isMem = false;
        memWrite = false;
        memShared = false;
        addrs.clear();
        isTex = false;
        texStage = 0;
        texLanes.clear();
        haltWarp = false;
        isBarrier = false;
        barrierGlobal = false;
        barrierId = 0;
        barrierCount = 0;
        isFence = false;
    }
};

/** One in-flight instruction. */
struct Uop
{
    isa::Instr instr; ///< the decoded instruction
    Addr pc = 0;      ///< its PC
    WarpId wid = 0;   ///< issuing wavefront
    uint64_t uid = 0; ///< unique instruction id (trace tag)
    ExecOut out;      ///< functional results awaiting commit
};

} // namespace vortex::core
