/**
 * @file
 * Micro-operation record travelling the core pipeline, and the result of
 * functional execution (the simulator executes instruction semantics at
 * dispatch, SimX-style; the timing model then decides when the results
 * become architecturally visible via the scoreboard).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "isa/isa.h"
#include "tex/texunit.h"

namespace vortex::core {

/** Outcome of functionally executing one instruction for one wavefront. */
struct ExecOut
{
    uint64_t tmask = 0; ///< thread mask at execution time

    //
    // Register writeback.
    //
    bool hasDst = false;      ///< the instruction writes a register
    isa::RegRef dst;          ///< destination register (when hasDst)
    std::vector<Word> values; ///< per thread; valid where tmask bit set

    //
    // Memory access (loads and stores).
    //
    bool isMem = false;       ///< load/store through the LSU
    bool memWrite = false;    ///< store (vs load)
    bool memShared = false;   ///< routed to the scratchpad
    std::vector<Addr> addrs;  ///< per thread; valid where tmask bit set

    //
    // Texture access.
    //
    bool isTex = false;    ///< `tex` instruction (texture-unit path)
    uint32_t texStage = 0; ///< sampler pipeline stage selector
    std::vector<tex::TexLaneReq> texLanes; ///< per-lane sample requests

    //
    // Wavefront scheduling events.
    //
    bool haltWarp = false;  ///< tmc 0 / ecall / ebreak
    bool isBarrier = false; ///< `bar` arrival
    bool barrierGlobal = false; ///< inter-core (global) barrier scope
    uint32_t barrierId = 0;     ///< barrier identifier
    uint32_t barrierCount = 0;  ///< wavefront arrivals expected
    bool isFence = false; ///< completes only when the LSU/D$ drain
};

/** One in-flight instruction. */
struct Uop
{
    isa::Instr instr; ///< the decoded instruction
    Addr pc = 0;      ///< its PC
    WarpId wid = 0;   ///< issuing wavefront
    uint64_t uid = 0; ///< unique instruction id (trace tag)
    ExecOut out;      ///< functional results awaiting commit
};

} // namespace vortex::core
