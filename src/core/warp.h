/**
 * @file
 * Architectural state of one wavefront: PC, thread mask, banked
 * general-purpose registers (integer + FP bit patterns) for every thread,
 * and the IPDOM stack.
 */

#pragma once

#include <array>
#include <cstring>
#include <vector>

#include "common/bitmanip.h"
#include "common/types.h"
#include "core/ipdom.h"

namespace vortex::core {

/** Per-wavefront architectural state. */
struct Warp
{
    /** State for a wavefront of @p num_threads threads. */
    explicit Warp(uint32_t num_threads)
        : iregs(num_threads), fregs(num_threads)
    {
    }

    Addr pc = 0;        ///< next instruction to fetch
    uint64_t tmask = 0; ///< bit t set => thread t active
    bool active = false;///< wavefront participates in scheduling

    /** Integer registers, [thread][reg]; x0 is kept zero by construction. */
    std::vector<std::array<Word, 32>> iregs;
    /** FP registers as raw bit patterns, [thread][reg]. */
    std::vector<std::array<Word, 32>> fregs;

    IpdomStack ipdom; ///< divergence reconvergence stack

    /** Threads per wavefront (the register-file width). */
    uint32_t numThreads() const
    {
        return static_cast<uint32_t>(iregs.size());
    }

    /** Number of currently active threads. */
    uint32_t activeThreads() const { return popcount(tmask); }

    /** Lowest active thread (predicate source for scalar decisions). */
    uint32_t
    firstActiveThread() const
    {
        return tmask ? ctz(tmask) : 0;
    }

    /** FP register r of thread t reinterpreted as a float. */
    float
    freadFloat(ThreadId t, RegId r) const
    {
        float f;
        uint32_t u = fregs[t][r];
        std::memcpy(&f, &u, 4);
        return f;
    }

    /** Restart at @p start_pc with thread mask @p mask, zeroing the
     *  register files and the IPDOM stack. */
    void
    reset(Addr start_pc, uint64_t mask)
    {
        pc = start_pc;
        tmask = mask;
        active = mask != 0;
        for (auto& t : iregs)
            t.fill(0);
        for (auto& t : fregs)
            t.fill(0);
        ipdom.clear();
    }
};

} // namespace vortex::core
