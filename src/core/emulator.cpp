/**
 * @file
 * Functional execution of the Vortex ISA (RV32IMF + Table 2 extension).
 * Semantics run at dispatch time (SimX style); the ExecOut record carries
 * everything the timing model needs (writeback values, memory addresses,
 * texture coordinates, scheduling events).
 */

#include <cfloat>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/bitmanip.h"
#include "common/log.h"
#include "common/outcome.h"
#include "core/core.h"
#include "isa/csr.h"

namespace vortex::core {

namespace {

using isa::Instr;
using isa::InstrKind;

inline float
bitsToFloat(Word u)
{
    float f;
    std::memcpy(&f, &u, 4);
    return f;
}

inline Word
floatToBits(float f)
{
    Word u;
    std::memcpy(&u, &f, 4);
    return u;
}

/** RISC-V canonical NaN. */
constexpr Word kCanonicalNan = 0x7FC00000u;

inline Word
canonize(float f)
{
    if (std::isnan(f))
        return kCanonicalNan;
    return floatToBits(f);
}

/** FCVT.W.S with RISC-V saturation semantics. */
inline Word
fcvtWS(float f)
{
    if (std::isnan(f))
        return 0x7FFFFFFFu;
    if (f >= 2147483648.0f)
        return 0x7FFFFFFFu;
    if (f <= -2147483904.0f) // below INT32_MIN representable boundary
        return 0x80000000u;
    if (f < -2147483648.0f)
        return 0x80000000u;
    return static_cast<Word>(static_cast<int32_t>(f));
}

/** FCVT.WU.S with RISC-V saturation semantics. */
inline Word
fcvtWUS(float f)
{
    if (std::isnan(f))
        return 0xFFFFFFFFu;
    if (f >= 4294967296.0f)
        return 0xFFFFFFFFu;
    if (f <= -1.0f)
        return 0;
    if (f < 0.0f)
        return 0;
    return static_cast<Word>(f);
}

/** FCLASS.S 10-bit classification. */
inline Word
fclass(float f)
{
    Word u = floatToBits(f);
    bool sign = (u >> 31) & 1;
    uint32_t exp = (u >> 23) & 0xFF;
    uint32_t man = u & 0x7FFFFF;
    if (exp == 0xFF) {
        if (man == 0)
            return sign ? (1u << 0) : (1u << 7); // +-inf
        return (man >> 22) ? (1u << 9) : (1u << 8); // quiet/signaling NaN
    }
    if (exp == 0) {
        if (man == 0)
            return sign ? (1u << 3) : (1u << 4); // +-zero
        return sign ? (1u << 2) : (1u << 5);     // +-subnormal
    }
    return sign ? (1u << 1) : (1u << 6); // +-normal
}

/** RISC-V FMIN/FMAX: NaN-aware, -0 < +0. */
inline Word
fminRiscv(float a, float b)
{
    bool na = std::isnan(a), nb = std::isnan(b);
    if (na && nb)
        return kCanonicalNan;
    if (na)
        return floatToBits(b);
    if (nb)
        return floatToBits(a);
    if (a == 0.0f && b == 0.0f)
        return (std::signbit(a) || std::signbit(b)) ? floatToBits(-0.0f)
                                                    : floatToBits(0.0f);
    return floatToBits(std::fmin(a, b));
}

inline Word
fmaxRiscv(float a, float b)
{
    bool na = std::isnan(a), nb = std::isnan(b);
    if (na && nb)
        return kCanonicalNan;
    if (na)
        return floatToBits(b);
    if (nb)
        return floatToBits(a);
    if (a == 0.0f && b == 0.0f)
        return (!std::signbit(a) || !std::signbit(b)) ? floatToBits(0.0f)
                                                      : floatToBits(-0.0f);
    return floatToBits(std::fmax(a, b));
}

} // namespace

void
executeInto(Core& core, WarpId wid, const Instr& in, Addr pc, ExecOut& out)
{
    Warp& w = core.warp(wid);
    const uint32_t nt = w.numThreads();
    const uint64_t tmask = w.tmask;
    const uint32_t first = w.firstActiveThread();

    out.reset();
    out.tmask = tmask;

    auto active = [&](uint32_t t) { return (tmask >> t) & 1; };
    auto X = [&](uint32_t t, RegId r) -> Word { return w.iregs[t][r]; };
    auto F = [&](uint32_t t, RegId r) -> Word { return w.fregs[t][r]; };
    auto FF = [&](uint32_t t, RegId r) -> float {
        return bitsToFloat(w.fregs[t][r]);
    };

    auto setDst = [&]() {
        out.hasDst = true;
        out.dst = in.dst();
        out.values.assign(nt, 0);
    };
    auto perLane = [&](auto fn) {
        setDst();
        for (uint32_t t = 0; t < nt; ++t) {
            if (active(t))
                out.values[t] = fn(t);
        }
    };
    auto memOp = [&](bool write, auto addr_fn) {
        out.isMem = true;
        out.memWrite = write;
        out.addrs.assign(nt, 0);
        for (uint32_t t = 0; t < nt; ++t) {
            if (active(t))
                out.addrs[t] = addr_fn(t);
        }
        if (tmask) {
            Addr a = out.addrs[first];
            out.memShared =
                (a & 0xFF000000u) == (core.config().smemBase & 0xFF000000u);
        }
    };

    const Addr next_pc = pc + 4;
    using K = InstrKind;

    switch (in.kind) {
      //
      // RV32I computational.
      //
      case K::LUI:
        perLane([&](uint32_t) { return static_cast<Word>(in.imm); });
        break;
      case K::AUIPC:
        perLane([&](uint32_t) { return pc + static_cast<Word>(in.imm); });
        break;
      case K::ADDI:
        perLane([&](uint32_t t) { return X(t, in.rs1) + in.imm; });
        break;
      case K::SLTI:
        perLane([&](uint32_t t) {
            return static_cast<WordS>(X(t, in.rs1)) < in.imm ? 1u : 0u;
        });
        break;
      case K::SLTIU:
        perLane([&](uint32_t t) {
            return X(t, in.rs1) < static_cast<Word>(in.imm) ? 1u : 0u;
        });
        break;
      case K::XORI:
        perLane([&](uint32_t t) { return X(t, in.rs1) ^ in.imm; });
        break;
      case K::ORI:
        perLane([&](uint32_t t) { return X(t, in.rs1) | in.imm; });
        break;
      case K::ANDI:
        perLane([&](uint32_t t) { return X(t, in.rs1) & in.imm; });
        break;
      case K::SLLI:
        perLane([&](uint32_t t) { return X(t, in.rs1) << (in.imm & 31); });
        break;
      case K::SRLI:
        perLane([&](uint32_t t) { return X(t, in.rs1) >> (in.imm & 31); });
        break;
      case K::SRAI:
        perLane([&](uint32_t t) {
            return static_cast<Word>(static_cast<WordS>(X(t, in.rs1)) >>
                                     (in.imm & 31));
        });
        break;
      case K::ADD:
        perLane([&](uint32_t t) { return X(t, in.rs1) + X(t, in.rs2); });
        break;
      case K::SUB:
        perLane([&](uint32_t t) { return X(t, in.rs1) - X(t, in.rs2); });
        break;
      case K::SLL:
        perLane([&](uint32_t t) {
            return X(t, in.rs1) << (X(t, in.rs2) & 31);
        });
        break;
      case K::SLT:
        perLane([&](uint32_t t) {
            return static_cast<WordS>(X(t, in.rs1)) <
                           static_cast<WordS>(X(t, in.rs2))
                       ? 1u
                       : 0u;
        });
        break;
      case K::SLTU:
        perLane([&](uint32_t t) {
            return X(t, in.rs1) < X(t, in.rs2) ? 1u : 0u;
        });
        break;
      case K::XOR:
        perLane([&](uint32_t t) { return X(t, in.rs1) ^ X(t, in.rs2); });
        break;
      case K::SRL:
        perLane([&](uint32_t t) {
            return X(t, in.rs1) >> (X(t, in.rs2) & 31);
        });
        break;
      case K::SRA:
        perLane([&](uint32_t t) {
            return static_cast<Word>(static_cast<WordS>(X(t, in.rs1)) >>
                                     (X(t, in.rs2) & 31));
        });
        break;
      case K::OR:
        perLane([&](uint32_t t) { return X(t, in.rs1) | X(t, in.rs2); });
        break;
      case K::AND:
        perLane([&](uint32_t t) { return X(t, in.rs1) & X(t, in.rs2); });
        break;

      //
      // Control flow. Branch direction is evaluated on the first active
      // thread; SIMT programs express divergent control with split/join.
      //
      case K::JAL:
        perLane([&](uint32_t) { return next_pc; });
        w.pc = pc + in.imm;
        break;
      case K::JALR: {
        Addr target = (X(first, in.rs1) + in.imm) & ~1u;
        perLane([&](uint32_t) { return next_pc; });
        w.pc = target;
        break;
      }
      case K::BEQ:
        w.pc = (X(first, in.rs1) == X(first, in.rs2)) ? pc + in.imm
                                                      : next_pc;
        break;
      case K::BNE:
        w.pc = (X(first, in.rs1) != X(first, in.rs2)) ? pc + in.imm
                                                      : next_pc;
        break;
      case K::BLT:
        w.pc = (static_cast<WordS>(X(first, in.rs1)) <
                static_cast<WordS>(X(first, in.rs2)))
                   ? pc + in.imm
                   : next_pc;
        break;
      case K::BGE:
        w.pc = (static_cast<WordS>(X(first, in.rs1)) >=
                static_cast<WordS>(X(first, in.rs2)))
                   ? pc + in.imm
                   : next_pc;
        break;
      case K::BLTU:
        w.pc = (X(first, in.rs1) < X(first, in.rs2)) ? pc + in.imm
                                                     : next_pc;
        break;
      case K::BGEU:
        w.pc = (X(first, in.rs1) >= X(first, in.rs2)) ? pc + in.imm
                                                      : next_pc;
        break;

      //
      // Loads / stores. Values are computed functionally now; the LSU
      // provides the timing through the cache hierarchy.
      //
      case K::LB:
        memOp(false, [&](uint32_t t) { return X(t, in.rs1) + in.imm; });
        perLane([&](uint32_t t) {
            return static_cast<Word>(
                sext(core.ram().read8(out.addrs[t]), 8));
        });
        break;
      case K::LH:
        memOp(false, [&](uint32_t t) { return X(t, in.rs1) + in.imm; });
        perLane([&](uint32_t t) {
            return static_cast<Word>(
                sext(core.ram().read16(out.addrs[t]), 16));
        });
        break;
      case K::LW:
        memOp(false, [&](uint32_t t) { return X(t, in.rs1) + in.imm; });
        perLane([&](uint32_t t) { return core.ram().read32(out.addrs[t]); });
        break;
      case K::LBU:
        memOp(false, [&](uint32_t t) { return X(t, in.rs1) + in.imm; });
        perLane([&](uint32_t t) {
            return static_cast<Word>(core.ram().read8(out.addrs[t]));
        });
        break;
      case K::LHU:
        memOp(false, [&](uint32_t t) { return X(t, in.rs1) + in.imm; });
        perLane([&](uint32_t t) {
            return static_cast<Word>(core.ram().read16(out.addrs[t]));
        });
        break;
      case K::FLW:
        memOp(false, [&](uint32_t t) { return X(t, in.rs1) + in.imm; });
        perLane([&](uint32_t t) { return core.ram().read32(out.addrs[t]); });
        break;
      case K::SB:
        memOp(true, [&](uint32_t t) { return X(t, in.rs1) + in.imm; });
        for (uint32_t t = 0; t < nt; ++t) {
            if (active(t))
                core.ram().write8(out.addrs[t],
                                  static_cast<uint8_t>(X(t, in.rs2)));
        }
        break;
      case K::SH:
        memOp(true, [&](uint32_t t) { return X(t, in.rs1) + in.imm; });
        for (uint32_t t = 0; t < nt; ++t) {
            if (active(t))
                core.ram().write16(out.addrs[t],
                                   static_cast<uint16_t>(X(t, in.rs2)));
        }
        break;
      case K::SW:
        memOp(true, [&](uint32_t t) { return X(t, in.rs1) + in.imm; });
        for (uint32_t t = 0; t < nt; ++t) {
            if (active(t))
                core.ram().write32(out.addrs[t], X(t, in.rs2));
        }
        break;
      case K::FSW:
        memOp(true, [&](uint32_t t) { return X(t, in.rs1) + in.imm; });
        for (uint32_t t = 0; t < nt; ++t) {
            if (active(t))
                core.ram().write32(out.addrs[t], F(t, in.rs2));
        }
        break;

      //
      // RV32M.
      //
      case K::MUL:
        perLane([&](uint32_t t) { return X(t, in.rs1) * X(t, in.rs2); });
        break;
      case K::MULH:
        perLane([&](uint32_t t) {
            int64_t p = static_cast<int64_t>(
                            static_cast<WordS>(X(t, in.rs1))) *
                        static_cast<WordS>(X(t, in.rs2));
            return static_cast<Word>(p >> 32);
        });
        break;
      case K::MULHSU:
        perLane([&](uint32_t t) {
            int64_t p = static_cast<int64_t>(
                            static_cast<WordS>(X(t, in.rs1))) *
                        static_cast<uint64_t>(X(t, in.rs2));
            return static_cast<Word>(p >> 32);
        });
        break;
      case K::MULHU:
        perLane([&](uint32_t t) {
            uint64_t p = static_cast<uint64_t>(X(t, in.rs1)) * X(t, in.rs2);
            return static_cast<Word>(p >> 32);
        });
        break;
      case K::DIV:
        perLane([&](uint32_t t) {
            WordS a = static_cast<WordS>(X(t, in.rs1));
            WordS b = static_cast<WordS>(X(t, in.rs2));
            if (b == 0)
                return 0xFFFFFFFFu;
            if (a == INT32_MIN && b == -1)
                return static_cast<Word>(INT32_MIN);
            return static_cast<Word>(a / b);
        });
        break;
      case K::DIVU:
        perLane([&](uint32_t t) {
            Word b = X(t, in.rs2);
            return b == 0 ? 0xFFFFFFFFu : X(t, in.rs1) / b;
        });
        break;
      case K::REM:
        perLane([&](uint32_t t) {
            WordS a = static_cast<WordS>(X(t, in.rs1));
            WordS b = static_cast<WordS>(X(t, in.rs2));
            if (b == 0)
                return static_cast<Word>(a);
            if (a == INT32_MIN && b == -1)
                return 0u;
            return static_cast<Word>(a % b);
        });
        break;
      case K::REMU:
        perLane([&](uint32_t t) {
            Word b = X(t, in.rs2);
            return b == 0 ? X(t, in.rs1) : X(t, in.rs1) % b;
        });
        break;

      //
      // RV32F.
      //
      case K::FADD_S:
        perLane([&](uint32_t t) {
            return canonize(FF(t, in.rs1) + FF(t, in.rs2));
        });
        break;
      case K::FSUB_S:
        perLane([&](uint32_t t) {
            return canonize(FF(t, in.rs1) - FF(t, in.rs2));
        });
        break;
      case K::FMUL_S:
        perLane([&](uint32_t t) {
            return canonize(FF(t, in.rs1) * FF(t, in.rs2));
        });
        break;
      case K::FDIV_S:
        perLane([&](uint32_t t) {
            return canonize(FF(t, in.rs1) / FF(t, in.rs2));
        });
        break;
      case K::FSQRT_S:
        perLane([&](uint32_t t) {
            return canonize(std::sqrt(FF(t, in.rs1)));
        });
        break;
      case K::FMADD_S:
        perLane([&](uint32_t t) {
            return canonize(std::fma(FF(t, in.rs1), FF(t, in.rs2),
                                     FF(t, in.rs3)));
        });
        break;
      case K::FMSUB_S:
        perLane([&](uint32_t t) {
            return canonize(std::fma(FF(t, in.rs1), FF(t, in.rs2),
                                     -FF(t, in.rs3)));
        });
        break;
      case K::FNMSUB_S:
        perLane([&](uint32_t t) {
            return canonize(std::fma(-FF(t, in.rs1), FF(t, in.rs2),
                                     FF(t, in.rs3)));
        });
        break;
      case K::FNMADD_S:
        perLane([&](uint32_t t) {
            return canonize(-std::fma(FF(t, in.rs1), FF(t, in.rs2),
                                      FF(t, in.rs3)));
        });
        break;
      case K::FSGNJ_S:
        perLane([&](uint32_t t) {
            return (F(t, in.rs1) & 0x7FFFFFFFu) |
                   (F(t, in.rs2) & 0x80000000u);
        });
        break;
      case K::FSGNJN_S:
        perLane([&](uint32_t t) {
            return (F(t, in.rs1) & 0x7FFFFFFFu) |
                   (~F(t, in.rs2) & 0x80000000u);
        });
        break;
      case K::FSGNJX_S:
        perLane([&](uint32_t t) {
            return F(t, in.rs1) ^ (F(t, in.rs2) & 0x80000000u);
        });
        break;
      case K::FMIN_S:
        perLane([&](uint32_t t) {
            return fminRiscv(FF(t, in.rs1), FF(t, in.rs2));
        });
        break;
      case K::FMAX_S:
        perLane([&](uint32_t t) {
            return fmaxRiscv(FF(t, in.rs1), FF(t, in.rs2));
        });
        break;
      case K::FCVT_W_S:
        perLane([&](uint32_t t) { return fcvtWS(FF(t, in.rs1)); });
        break;
      case K::FCVT_WU_S:
        perLane([&](uint32_t t) { return fcvtWUS(FF(t, in.rs1)); });
        break;
      case K::FMV_X_W:
        perLane([&](uint32_t t) { return F(t, in.rs1); });
        break;
      case K::FEQ_S:
        perLane([&](uint32_t t) {
            return FF(t, in.rs1) == FF(t, in.rs2) ? 1u : 0u;
        });
        break;
      case K::FLT_S:
        perLane([&](uint32_t t) {
            return FF(t, in.rs1) < FF(t, in.rs2) ? 1u : 0u;
        });
        break;
      case K::FLE_S:
        perLane([&](uint32_t t) {
            return FF(t, in.rs1) <= FF(t, in.rs2) ? 1u : 0u;
        });
        break;
      case K::FCLASS_S:
        perLane([&](uint32_t t) { return fclass(FF(t, in.rs1)); });
        break;
      case K::FCVT_S_W:
        perLane([&](uint32_t t) {
            return floatToBits(
                static_cast<float>(static_cast<WordS>(X(t, in.rs1))));
        });
        break;
      case K::FCVT_S_WU:
        perLane([&](uint32_t t) {
            return floatToBits(static_cast<float>(X(t, in.rs1)));
        });
        break;
      case K::FMV_W_X:
        perLane([&](uint32_t t) { return X(t, in.rs1); });
        break;

      //
      // Zicsr. Reads are per-thread (THREAD_ID differs per lane); writes
      // apply once using the first active thread's source value.
      //
      case K::CSRRW: case K::CSRRS: case K::CSRRC:
      case K::CSRRWI: case K::CSRRSI: case K::CSRRCI: {
        const bool immediate = in.kind == K::CSRRWI ||
                               in.kind == K::CSRRSI ||
                               in.kind == K::CSRRCI;
        const Word src = immediate ? static_cast<Word>(in.imm & 0x1F)
                                   : X(first, in.rs1);
        const bool is_write = in.kind == K::CSRRW || in.kind == K::CSRRWI;
        const bool is_set = in.kind == K::CSRRS || in.kind == K::CSRRSI;
        const bool is_clear = in.kind == K::CSRRC || in.kind == K::CSRRCI;
        perLane([&](uint32_t t) { return core.csrRead(in.csr, wid, t); });
        const Word old = core.csrRead(in.csr, wid, first);
        // rs1 == x0 (or zimm == 0) makes CSRRS/CSRRC read-only per spec.
        bool write_side_effect =
            is_write || ((is_set || is_clear) &&
                         (immediate ? src != 0 : in.rs1 != 0));
        if (write_side_effect) {
            Word nv = is_write ? src : is_set ? (old | src) : (old & ~src);
            core.csrWrite(in.csr, nv, wid);
        }
        break;
      }

      //
      // System.
      //
      case K::FENCE:
        out.isFence = true;
        w.pc = next_pc;
        break;
      case K::ECALL:
      case K::EBREAK:
        out.haltWarp = true;
        w.tmask = 0;
        w.active = false;
        w.pc = next_pc;
        break;

      //
      // Vortex extension (Table 2).
      //
      case K::VX_TMC: {
        Word n = X(first, in.rs1);
        uint64_t mask = n >= nt ? maskLow(nt) : maskLow(n);
        w.tmask = mask;
        if (mask == 0) {
            w.active = false;
            out.haltWarp = true;
        }
        w.pc = next_pc;
        break;
      }
      case K::VX_WSPAWN: {
        Word n = std::min<Word>(X(first, in.rs1), core.config().numWarps);
        Addr addr = X(first, in.rs2);
        for (WarpId k = 1; k < n; ++k)
            core.activateWarp(k, addr);
        w.pc = next_pc;
        break;
      }
      case K::VX_SPLIT: {
        uint64_t true_mask = 0;
        for (uint32_t t = 0; t < nt; ++t) {
            if (active(t) && X(t, in.rs1) != 0)
                true_mask |= 1ull << t;
        }
        uint64_t false_mask = tmask & ~true_mask;
        bool divergent = true_mask != 0 && false_mask != 0;
        // Fall-through entry: the pre-split mask restored at final join.
        w.ipdom.push(IpdomEntry{tmask, 0, true});
        // Else entry: false-predicate threads replay from next_pc. A
        // uniform split (all-true or all-false) pushes an empty else entry
        // that join skips, keeping split/join pairing balanced while the
        // whole wavefront takes the single live path.
        w.ipdom.push(IpdomEntry{divergent ? false_mask : 0, next_pc, false});
        if (divergent)
            w.tmask = true_mask;
        w.pc = next_pc;
        break;
      }
      case K::VX_JOIN: {
        IpdomEntry e = w.ipdom.pop();
        if (!e.fallThrough && e.tmask != 0) {
            w.tmask = e.tmask;
            w.pc = e.pc;
        } else {
            if (!e.fallThrough) {
                // Empty else entry of a uniform split: consume the
                // fall-through beneath it as well.
                e = w.ipdom.pop();
                if (!e.fallThrough)
                    panic("IPDOM: expected fall-through under empty else");
            }
            w.tmask = e.tmask;
            w.pc = next_pc;
        }
        break;
      }
      case K::VX_BAR: {
        out.isBarrier = true;
        uint32_t id = X(first, in.rs1);
        out.barrierGlobal = (id & kBarrierGlobalBit) != 0;
        out.barrierId = id;
        out.barrierCount = X(first, in.rs2);
        w.pc = next_pc;
        break;
      }
      case K::VX_TEX: {
        out.isTex = true;
        out.texStage = core.csrRead(isa::CSR_TEX_STAGE, wid, first);
        out.texLanes.assign(nt, tex::TexLaneReq{});
        for (uint32_t t = 0; t < nt; ++t) {
            if (!active(t))
                continue;
            tex::TexLaneReq& lr = out.texLanes[t];
            lr.active = true;
            lr.u = bitsToFloat(F(t, in.rs1));
            lr.v = bitsToFloat(F(t, in.rs2));
            lr.lod = bitsToFloat(F(t, in.rs3));
        }
        setDst(); // values filled by the texture unit's response
        break;
      }

      case K::Invalid:
      default:
        trap(RunStatus::GuestTrap, "invalid instruction 0x", std::hex,
             in.raw, " at PC 0x", pc);
    }

    // Writes to x0 are dropped.
    if (out.hasDst && !out.dst.isWrite()) {
        out.hasDst = false;
        out.values.clear();
    }
}

ExecOut
execute(Core& core, WarpId wid, const Instr& in, Addr pc)
{
    ExecOut out;
    executeInto(core, wid, in, pc, out);
    return out;
}

} // namespace vortex::core
