/**
 * @file
 * Serial and parallel core tick backends.
 */

#include "core/tick_engine.h"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

#include "core/config.h"
#include "core/core.h"

namespace vortex::core {

namespace {

/** The historical backend: tick cores in index order, caller's thread. */
class SerialTickEngine final : public TickEngine
{
  public:
    explicit SerialTickEngine(std::vector<Core*> cores)
        : cores_(std::move(cores))
    {
    }

    void
    tick(Cycle now) override
    {
        for (Core* core : cores_)
            core->tick(now);
    }

    const char* name() const override { return "serial"; }
    uint32_t numWorkers() const override { return 1; }

  private:
    std::vector<Core*> cores_;
};

/**
 * Persistent thread pool ticking cores concurrently. Each cycle the
 * coordinator (the simulation thread, acting as worker 0) and the pool
 * threads meet at a start barrier, tick disjoint interleaved core slices,
 * and meet again at a done barrier before the Processor's serial commit
 * phase runs. The partition is static, so scheduling order cannot affect
 * results.
 */
class ParallelTickEngine final : public TickEngine
{
  public:
    ParallelTickEngine(std::vector<Core*> cores, uint32_t workers)
        : cores_(std::move(cores)),
          workers_(workers),
          errors_(workers),
          start_(workers),
          done_(workers)
    {
        threads_.reserve(workers - 1);
        try {
            for (uint32_t w = 1; w < workers; ++w)
                threads_.emplace_back([this, w] { workerLoop(w); });
        } catch (...) {
            // Partial spawn: workers gate on startup_ before touching the
            // barriers (which expect all participants), so they can be
            // dismissed and joined without ever entering the tick loop.
            setStartup(Startup::Abort);
            for (std::thread& t : threads_)
                t.join();
            throw;
        }
        setStartup(Startup::Go);
    }

    ~ParallelTickEngine() override
    {
        stop_.store(true, std::memory_order_release);
        start_.arrive_and_wait(); // release workers; they observe stop_
        for (std::thread& t : threads_)
            t.join();
    }

    void
    tick(Cycle now) override
    {
        now_ = now;
        start_.arrive_and_wait();
        tickSlice(0);
        done_.arrive_and_wait();
        rethrowFirstError();
    }

    const char* name() const override { return "parallel"; }
    uint32_t numWorkers() const override { return workers_; }

  private:
    void
    tickSlice(uint32_t worker)
    {
        try {
            for (size_t i = worker; i < cores_.size(); i += workers_)
                cores_[i]->tick(now_);
        } catch (...) {
            errors_[worker] = std::current_exception();
        }
    }

    void
    workerLoop(uint32_t worker)
    {
        {
            std::unique_lock<std::mutex> lock(startupMutex_);
            startupCv_.wait(lock,
                            [this] { return startup_ != Startup::Pending; });
            if (startup_ == Startup::Abort)
                return;
        }
        for (;;) {
            start_.arrive_and_wait();
            if (stop_.load(std::memory_order_acquire))
                return;
            tickSlice(worker);
            done_.arrive_and_wait();
        }
    }

    enum class Startup { Pending, Go, Abort };

    void
    setStartup(Startup s)
    {
        {
            std::lock_guard<std::mutex> lock(startupMutex_);
            startup_ = s;
        }
        startupCv_.notify_all();
    }

    /** Propagate the lowest-indexed worker's exception (deterministic). */
    void
    rethrowFirstError()
    {
        for (std::exception_ptr& e : errors_) {
            if (e) {
                std::exception_ptr first = e;
                for (std::exception_ptr& r : errors_)
                    r = nullptr;
                std::rethrow_exception(first);
            }
        }
    }

    std::vector<Core*> cores_;
    const uint32_t workers_;
    Cycle now_ = 0;
    std::atomic<bool> stop_{false};
    std::mutex startupMutex_;
    std::condition_variable startupCv_;
    Startup startup_ = Startup::Pending;
    std::vector<std::exception_ptr> errors_;
    std::barrier<> start_;
    std::barrier<> done_;
    std::vector<std::thread> threads_;
};

} // namespace

std::unique_ptr<TickEngine>
makeTickEngine(const ArchConfig& config, std::vector<Core*> cores)
{
    uint32_t workers = 1;
    if (config.parallelTick) {
        workers = config.tickThreads != 0
                      ? config.tickThreads
                      : std::max(1u, std::thread::hardware_concurrency());
        workers = std::min<uint32_t>(workers,
                                     static_cast<uint32_t>(cores.size()));
        workers = std::max(workers, 1u);
    }
    if (workers <= 1)
        return std::make_unique<SerialTickEngine>(std::move(cores));
    return std::make_unique<ParallelTickEngine>(std::move(cores), workers);
}

} // namespace vortex::core
