/**
 * @file
 * Processor wiring and run loop.
 */

#include "core/processor.h"

#include "common/log.h"
#include "common/outcome.h"

namespace vortex::core {

Processor::Processor(const ArchConfig& config)
    : config_(config), sampler_(config.sampleInterval)
{
    if (config.numThreads == 0 || config.numThreads > 64)
        fatal("numThreads must be in [1, 64]");
    if (config.numWarps == 0 || config.numWarps > 64)
        fatal("numWarps must be in [1, 64]");
    if (config.numCores == 0)
        fatal("numCores must be >= 1");
    memSim_ = std::make_unique<mem::MemSim>(config.mem);
    for (uint32_t c = 0; c < config.numCores; ++c)
        cores_.push_back(std::make_unique<Core>(config, c, ram_, this));
    wire();
    pendingArrivals_.resize(config.numCores);
    std::vector<Core*> core_ptrs;
    core_ptrs.reserve(cores_.size());
    for (auto& core : cores_)
        core_ptrs.push_back(core.get());
    tickEngine_ = makeTickEngine(config_, std::move(core_ptrs));
}

Processor::~Processor() = default;

namespace {

/** Connect @p upstream's memory side to lane @p lane of @p downstream. */
void
linkCacheToCache(mem::Cache& upstream, mem::Cache& downstream, uint32_t lane,
                 std::vector<std::unique_ptr<mem::MemSink>>& adapters)
{
    adapters.push_back(
        std::make_unique<mem::CacheMemPort>(downstream, lane));
    upstream.connectMem(adapters.back().get());
}

} // namespace

mem::MemSink*
Processor::staged(mem::MemSink* down, size_t depth)
{
    stagedPorts_.push_back(std::make_unique<mem::StagedMemPort>(down, depth));
    return stagedPorts_.back().get();
}

void
Processor::linkStagedL1(mem::Cache& l1, mem::Cache& downstream, uint32_t lane)
{
    adapters_.push_back(std::make_unique<mem::CacheMemPort>(downstream, lane));
    l1.connectMem(
        staged(adapters_.back().get(), l1.config().memQueueDepth));
}

void
Processor::wire()
{
    const uint32_t num_clusters = config_.numClusters();

    memRouter_ = std::make_unique<mem::MemRouter>(memSim_.get());
    memSim_->setRspCallback(
        [this](const mem::MemRsp& rsp) { memRouter_->onRsp(rsp); });

    //
    // Optional L3 in front of the board memory.
    //
    if (config_.l3Enabled) {
        mem::CacheConfig c3 = config_.l3Config();
        c3.numLanes = config_.l2Enabled ? num_clusters
                                        : 2 * config_.numCores;
        l3_ = std::make_unique<mem::Cache>(c3);
        l3_->connectMem(memRouter_->makePort(
            [this](const mem::MemRsp& rsp) { l3_->memRsp(rsp); }));
    }

    //
    // Per-cluster L2s (or direct connection).
    //
    if (config_.l2Enabled) {
        l2s_.resize(num_clusters);
        for (uint32_t cl = 0; cl < num_clusters; ++cl) {
            uint32_t first_core = cl * config_.coresPerCluster;
            uint32_t cores_here =
                std::min(config_.coresPerCluster,
                         config_.numCores - first_core);
            l2s_[cl] =
                std::make_unique<mem::Cache>(config_.l2Config(cores_here));
            mem::Cache& l2 = *l2s_[cl];

            // L2 responses route back to the owning L1 by lane. L1 request
            // sides go through staging ports (drained in core order) so
            // the parallel tick engine never touches the shared L2 from a
            // worker thread.
            std::vector<mem::Cache*> owners(2 * cores_here, nullptr);
            for (uint32_t i = 0; i < cores_here; ++i) {
                Core& core = *cores_[first_core + i];
                owners[2 * i] = &core.icache();
                owners[2 * i + 1] = &core.dcache();
                linkStagedL1(core.icache(), l2, 2 * i);
                linkStagedL1(core.dcache(), l2, 2 * i + 1);
            }
            l2.setRspCallback([owners](const mem::CoreRsp& rsp) {
                if (rsp.write)
                    return; // write-through completions need no routing
                owners.at(rsp.lane)->memRsp(
                    mem::MemRsp{rsp.reqId, rsp.tag});
            });

            // L2 memory side: into the L3 if present, else board memory.
            if (l3_) {
                linkCacheToCache(l2, *l3_, cl, adapters_);
            } else {
                l2.connectMem(memRouter_->makePort(
                    [&l2](const mem::MemRsp& rsp) { l2.memRsp(rsp); }));
            }
        }
        if (l3_) {
            l3_->setRspCallback([this](const mem::CoreRsp& rsp) {
                if (rsp.write)
                    return;
                l2s_.at(rsp.lane)->memRsp(mem::MemRsp{rsp.reqId, rsp.tag});
            });
        }
        return;
    }

    //
    // No L2: L1s go straight to the L3 or the board memory.
    //
    if (l3_) {
        std::vector<mem::Cache*> owners(2 * config_.numCores, nullptr);
        for (uint32_t i = 0; i < config_.numCores; ++i) {
            Core& core = *cores_[i];
            owners[2 * i] = &core.icache();
            owners[2 * i + 1] = &core.dcache();
            linkStagedL1(core.icache(), *l3_, 2 * i);
            linkStagedL1(core.dcache(), *l3_, 2 * i + 1);
        }
        l3_->setRspCallback([owners](const mem::CoreRsp& rsp) {
            if (rsp.write)
                return;
            owners.at(rsp.lane)->memRsp(mem::MemRsp{rsp.reqId, rsp.tag});
        });
        return;
    }
    for (auto& core : cores_) {
        mem::Cache* ic = &core->icache();
        mem::Cache* dc = &core->dcache();
        ic->connectMem(staged(
            memRouter_->makePort(
                [ic](const mem::MemRsp& rsp) { ic->memRsp(rsp); }),
            ic->config().memQueueDepth));
        dc->connectMem(staged(
            memRouter_->makePort(
                [dc](const mem::MemRsp& rsp) { dc->memRsp(rsp); }),
            dc->config().memQueueDepth));
    }
}

void
Processor::start()
{
    for (auto& core : cores_)
        core->start();
}

void
Processor::tick()
{
    ++cycles_;
    memSim_->tick(cycles_);
    if (l3_)
        l3_->tick(cycles_);
    for (auto& l2 : l2s_)
        l2->tick(cycles_);
    // Core phase: cores only touch core-local state plus their staging
    // buffers, so the engine may run them concurrently.
    tickEngine_->tick(cycles_);
    commitCrossCore();
    // Fault injection lands here, after the commit phase and before
    // sampling: the one point in a cycle where both tick backends have
    // identical state, so an injected bit flip is bit-identical under
    // serial and parallel tick (src/faults/fault.h).
    if (faultHook_)
        faultHook_(*this, cycles_);
    // Sampling happens after the commit phase: every cross-core effect of
    // this cycle has landed, so both tick backends observe identical
    // counters here (the sampling half of the determinism contract).
    if (sampler_.due(cycles_)) {
        StatGroup snapshot;
        collectStats(snapshot);
        sampler_.sample(cycles_, snapshot);
    }
}

void
Processor::commitCrossCore()
{
    // Staged L1 memory requests enter the shared fabric in core order
    // (ports were created in core order), mirroring the serial tick order.
    for (auto& port : stagedPorts_)
        port->drain();
    // Global barrier arrivals, also in core order. Releases take effect
    // next cycle for every wavefront, whichever thread simulated it.
    for (CoreId c = 0; c < pendingArrivals_.size(); ++c) {
        for (const PendingArrival& a : pendingArrivals_[c]) {
            auto releases = globalBarriers_.arrive(a.id, a.count, c, a.wid);
            for (const auto& r : releases)
                cores_.at(r.core)->releaseBarrierWarp(r.warp);
        }
        pendingArrivals_[c].clear();
    }
}

bool
Processor::busy() const
{
    for (const auto& core : cores_) {
        if (core->busy())
            return true;
    }
    if (!memSim_->idle())
        return true;
    for (const auto& l2 : l2s_) {
        if (!l2->idle())
            return true;
    }
    if (l3_ && !l3_->idle())
        return true;
    for (const auto& port : stagedPorts_) {
        if (!port->empty())
            return true;
    }
    return false;
}

bool
Processor::run(uint64_t max_cycles)
{
    while (busy()) {
        if (cycles_ >= max_cycles)
            return false;
        // Host-deadline poll (fabric per-simulation wall-clock budget).
        // Every 8192 cycles keeps the check off the hot path; the
        // deadline is a robustness bound, not a simulated event, so the
        // coarse granularity does not affect determinism of results —
        // aborted runs are failures and are never cached.
        if (abortCheck_ && (cycles_ & 0x1FFF) == 0 && abortCheck_())
            trap(RunStatus::Timeout,
                 "run aborted: host wall-clock deadline exceeded after ",
                 cycles_, " cycles");
        tick();
    }
    // Close the series with the end-of-run remainder window (a no-op when
    // sampling is disabled or the run ended exactly on a boundary), so
    // summing a counter's deltas always reproduces its final value.
    if (sampler_.enabled()) {
        StatGroup snapshot;
        collectStats(snapshot);
        sampler_.finalize(cycles_, snapshot);
    }
    return true;
}

namespace {

/** Flatten @p group into @p flat under "<prefix>.<key>" names. */
void
flatten(StatGroup& flat, const std::string& prefix, const StatGroup& group)
{
    for (const auto& [k, v] : group.all())
        flat.counter(prefix + "." + k) += v;
}

} // namespace

void
Processor::collectStats(StatGroup& flat)
{
    flat.counter("core.thread_instrs") += threadInstrs();
    flat.counter("core.warp_instrs") += warpInstrs();
    StatGroup cores, icache, dcache, smem, tex;
    for (auto& core : cores_) {
        cores.add(core->stats());
        icache.add(core->icache().stats());
        dcache.add(core->dcache().stats());
        smem.add(core->sharedMem().stats());
        if (core->texUnit())
            tex.add(core->texUnit()->stats());
    }
    flatten(flat, "core", cores);
    flatten(flat, "icache", icache);
    flatten(flat, "dcache", dcache);
    flatten(flat, "smem", smem);
    flatten(flat, "tex", tex);
    StatGroup l2;
    for (auto& c : l2s_)
        l2.add(c->stats());
    flatten(flat, "l2", l2);
    if (l3_)
        flatten(flat, "l3", l3_->stats());
    flatten(flat, "mem", memSim_->stats());
}

uint64_t
Processor::threadInstrs() const
{
    uint64_t sum = 0;
    for (const auto& core : cores_)
        sum += core->threadInstrs();
    return sum;
}

uint64_t
Processor::warpInstrs() const
{
    uint64_t sum = 0;
    for (const auto& core : cores_)
        sum += core->warpInstrs();
    return sum;
}

double
Processor::ipc() const
{
    return cycles_ == 0 ? 0.0
                        : static_cast<double>(threadInstrs()) /
                              static_cast<double>(cycles_);
}

void
Processor::globalArrive(uint32_t id, uint32_t count, CoreId core, WarpId wid)
{
    // Called during the tick phase, possibly from a pool worker. Each core
    // appends only to its own buffer, so no synchronization is needed; the
    // arrivals are applied in core order in commitCrossCore().
    pendingArrivals_.at(core).push_back(PendingArrival{id, count, wid});
}

} // namespace vortex::core
