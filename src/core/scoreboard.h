/**
 * @file
 * Per-wavefront register scoreboard: a busy bit per architectural register
 * (one table per register file). In-order issue checks every source and the
 * destination; out-of-order completion across functional units clears the
 * destination bit at writeback (paper §6.2.1 lists "register scoreboards"
 * among the per-wavefront resources).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "isa/isa.h"

namespace vortex::core {

/** Scoreboard for all wavefronts of one core. */
class Scoreboard
{
  public:
    /** Busy tables for @p num_warps wavefronts (int + FP files each). */
    explicit Scoreboard(uint32_t num_warps)
        : intBusy_(num_warps, 0), fpBusy_(num_warps, 0)
    {
    }

    /** Is register @p ref of wavefront @p wid pending a write? */
    bool
    busy(WarpId wid, const isa::RegRef& ref) const
    {
        if (!ref.valid())
            return false;
        if (ref.file == isa::RegFile::Int)
            return ref.idx != 0 && (intBusy_[wid] >> ref.idx) & 1;
        return (fpBusy_[wid] >> ref.idx) & 1;
    }

    /** May @p instr of wavefront @p wid issue (RAW/WAW clear)? */
    bool
    ready(WarpId wid, const isa::Instr& instr) const
    {
        return !busy(wid, instr.src1()) && !busy(wid, instr.src2()) &&
               !busy(wid, instr.src3()) && !busy(wid, instr.dst());
    }

    /** Mark destination @p ref pending at issue (no-op for reads/x0). */
    void
    setBusy(WarpId wid, const isa::RegRef& ref)
    {
        if (!ref.isWrite())
            return;
        if (ref.file == isa::RegFile::Int)
            intBusy_[wid] |= 1u << ref.idx;
        else
            fpBusy_[wid] |= 1u << ref.idx;
    }

    /** Clear destination @p ref at writeback. */
    void
    clearBusy(WarpId wid, const isa::RegRef& ref)
    {
        if (!ref.isWrite())
            return;
        if (ref.file == isa::RegFile::Int)
            intBusy_[wid] &= ~(1u << ref.idx);
        else
            fpBusy_[wid] &= ~(1u << ref.idx);
    }

    /** Any register of @p wid still pending? */
    bool
    anyBusy(WarpId wid) const
    {
        return intBusy_[wid] != 0 || fpBusy_[wid] != 0;
    }

    /** Clear every busy bit (core reset). */
    void
    reset()
    {
        for (auto& m : intBusy_)
            m = 0;
        for (auto& m : fpBusy_)
            m = 0;
    }

  private:
    std::vector<uint32_t> intBusy_;
    std::vector<uint32_t> fpBusy_;
};

} // namespace vortex::core
