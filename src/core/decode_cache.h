/**
 * @file
 * Decoded-instruction cache: a direct-mapped, PC-indexed memo of
 * isa::decode results, so a core's steady-state fetch path skips both
 * the functional RAM read and the decoder for every re-executed static
 * instruction (the overwhelming majority of simulated fetches — kernels
 * are loops).
 *
 * Correctness rests on code not being self-modifying, and that
 * assumption is checked rather than silent: lookup() marks the page it
 * decodes from via mem::Ram::markCodePage, every store to a marked page
 * bumps the RAM's code-write epoch, and the cache flushes itself when
 * the epoch it last saw has moved (including program reloads through
 * writeBlock and Ram::clear). A same-cycle store from another core is
 * the simulated program's own race on weakly-coherent device memory —
 * unspecified order there, unchanged here.
 */

#pragma once

#include <vector>

#include "common/types.h"
#include "isa/isa.h"
#include "mem/ram.h"

namespace vortex::core {

/** Per-core direct-mapped cache of decoded instructions. */
class DecodeCache
{
  public:
    /** A cache of @p entries slots (power of two; 4096 covers every
     *  shipped kernel with zero conflict misses). */
    explicit DecodeCache(size_t entries = 4096)
        : entries_(entries), mask_(entries - 1)
    {
    }

    /** The decoded instruction at @p pc, reading and decoding through
     *  @p ram only on a miss. Invalid encodings are cached too (the
     *  caller's fatal paths still fire). */
    const isa::Instr&
    lookup(mem::Ram& ram, Addr pc)
    {
        const uint64_t now = ram.codeWriteEpoch();
        if (now != epoch_) {
            flush();
            epoch_ = now;
        }
        Entry& e = entries_[(pc >> 2) & mask_];
        if (e.pc != pc) {
            // Mark before reading so a later store cannot slip between
            // the read and the mark unnoticed.
            ram.markCodePage(pc);
            e.instr = isa::decode(ram.read32(pc));
            e.pc = pc;
        }
        return e.instr;
    }

    /** Drop every entry (epoch tracking is untouched). */
    void
    flush()
    {
        for (Entry& e : entries_)
            e.pc = kNoPc;
    }

  private:
    /** Impossible instruction PC (unaligned), used as the empty tag. */
    static constexpr Addr kNoPc = ~Addr{0};

    struct Entry
    {
        Addr pc = kNoPc;  ///< full-PC tag
        isa::Instr instr; ///< decode(read32(pc)) when pc != kNoPc
    };

    std::vector<Entry> entries_;
    size_t mask_;
    uint64_t epoch_ = ~0ull; ///< RAM code-write epoch at last validation
};

} // namespace vortex::core
