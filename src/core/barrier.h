/**
 * @file
 * Wavefront barrier tables (paper §4.1.3). Each entry tracks the count of
 * wavefronts still expected and the mask of wavefronts stalled at the
 * barrier; when the count reaches the expected number the mask releases the
 * stalled wavefronts. The MSB of the barrier id selects global scope
 * (inter-core); the global table lives in the Processor and counts
 * (core, wavefront) arrivals.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/bitmanip.h"
#include "common/log.h"
#include "common/types.h"

namespace vortex::core {

/** Barrier id bit selecting inter-core scope. */
constexpr uint32_t kBarrierGlobalBit = 0x80000000u;

/** Local (intra-core) barrier table. */
class BarrierTable
{
  public:
    /**
     * A wavefront arrives at barrier @p id expecting @p count wavefronts.
     * @return the mask of wavefronts to release (0 while waiting; includes
     * the arriving wavefront when the barrier fires).
     */
    uint64_t
    arrive(uint32_t id, uint32_t count, WarpId wid)
    {
        Entry& e = entries_[id];
        e.mask |= 1ull << wid;
        if (popcount(e.mask) >= count) {
            uint64_t release = e.mask;
            entries_.erase(id);
            return release;
        }
        return 0;
    }

    /** Any barrier with arrivals still pending? */
    bool
    anyWaiting() const
    {
        return !entries_.empty();
    }

    /** Forget every pending barrier (core reset). */
    void clear() { entries_.clear(); }

  private:
    struct Entry
    {
        uint64_t mask = 0;
    };
    std::unordered_map<uint32_t, Entry> entries_;
};

/** Global (inter-core) barrier table; counts wavefront arrivals per id. */
class GlobalBarrierTable
{
  public:
    /** One (core, wavefront) pair to release. */
    struct Release
    {
        CoreId core; ///< core whose wavefront is stalled
        WarpId warp; ///< the stalled wavefront
    };

    /**
     * Wavefront @p wid of core @p core arrives at @p id expecting @p count
     * total wavefront arrivals (across cores). @return the list of
     * wavefronts to release when the barrier fires, empty otherwise.
     */
    std::vector<Release>
    arrive(uint32_t id, uint32_t count, CoreId core, WarpId wid)
    {
        Entry& e = entries_[id];
        e.waiters.push_back({core, wid});
        if (e.waiters.size() >= count) {
            std::vector<Release> out = std::move(e.waiters);
            entries_.erase(id);
            return out;
        }
        return {};
    }

    /** Forget every pending barrier (device reset). */
    void clear() { entries_.clear(); }

  private:
    struct Entry
    {
        std::vector<Release> waiters;
    };
    std::unordered_map<uint32_t, Entry> entries_;
};

} // namespace vortex::core
