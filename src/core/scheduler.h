/**
 * @file
 * Wavefront scheduler (paper §4.1.1). Keeps the four wavefront masks —
 * active, stalled, barrier, and visible — and implements the hierarchical
 * two-level scheduling policy: each cycle one wavefront is selected from the
 * visible mask and invalidated; when the visible mask reaches zero it is
 * refilled from the wavefronts that are active and not stalled.
 */

#pragma once

#include <cstdint>
#include <optional>

#include "common/bitmanip.h"
#include "common/types.h"

namespace vortex::core {

/** Wavefront selection policy. */
enum class SchedPolicy : uint8_t
{
    /** Two-level hierarchical policy (paper §4.1.1, after Narasiman et
     *  al.): serve every wavefront in the visible mask once, then refill.
     *  Keeps wavefronts of one group at similar progress so long-latency
     *  operations cluster. */
    Hierarchical,
    /** Plain rotating round-robin over all schedulable wavefronts
     *  (ablation baseline). */
    RoundRobin,
};

/** The four-mask wavefront scheduler of one core. */
class WarpScheduler
{
  public:
    /** A scheduler over @p num_warps wavefronts using @p policy. */
    explicit WarpScheduler(uint32_t num_warps,
                           SchedPolicy policy = SchedPolicy::Hierarchical)
        : numWarps_(num_warps), policy_(policy)
    {
    }

    //
    // Mask maintenance.
    //
    /** Activate/deactivate wavefront @p wid (deactivation clears its
     *  stalled/barrier/visible bits too). */
    void
    setActive(WarpId wid, bool on)
    {
        setBit(active_, wid, on);
        if (!on) {
            setBit(stalled_, wid, false);
            setBit(barrier_, wid, false);
            setBit(visible_, wid, false);
        }
    }

    /** Stall/unstall @p wid (long-latency op in flight). */
    void setStalled(WarpId wid, bool on) { setBit(stalled_, wid, on); }
    /** Park/release @p wid at a barrier. */
    void setBarrier(WarpId wid, bool on) { setBit(barrier_, wid, on); }

    bool isActive(WarpId wid) const { return (active_ >> wid) & 1; }   ///< active bit
    bool isStalled(WarpId wid) const { return (stalled_ >> wid) & 1; } ///< stalled bit
    bool isBarrier(WarpId wid) const { return (barrier_ >> wid) & 1; } ///< barrier bit

    uint64_t activeMask() const { return active_; }   ///< all active bits
    uint64_t stalledMask() const { return stalled_; } ///< all stalled bits
    uint64_t barrierMask() const { return barrier_; } ///< all barrier bits
    uint64_t visibleMask() const { return visible_; } ///< hierarchical group

    /**
     * Select the next wavefront to fetch. @p eligible lets the fetch stage
     * exclude wavefronts with a full ibuffer or an outstanding I-cache
     * request this cycle (those keep their visible slot).
     */
    std::optional<WarpId>
    select(uint64_t eligible)
    {
        uint64_t schedulable = active_ & ~stalled_ & ~barrier_;
        if (policy_ == SchedPolicy::RoundRobin) {
            uint64_t pick = schedulable & eligible;
            if (pick == 0)
                return std::nullopt;
            // Rotate from the last selection.
            for (uint32_t i = 1; i <= numWarps_; ++i) {
                WarpId wid = (rrLast_ + i) % numWarps_;
                if ((pick >> wid) & 1) {
                    rrLast_ = wid;
                    return wid;
                }
            }
            return std::nullopt;
        }
        if ((visible_ & schedulable) == 0)
            visible_ = schedulable; // hierarchical refill
        uint64_t pick = visible_ & schedulable & eligible;
        if (pick == 0)
            return std::nullopt;
        WarpId wid = ctz(pick);
        setBit(visible_, wid, false); // invalidate the selected wavefront
        return wid;
    }

    /** Clear every mask (core reset). */
    void
    reset()
    {
        active_ = stalled_ = barrier_ = visible_ = 0;
    }

    /** Wavefronts this scheduler arbitrates. */
    uint32_t numWarps() const { return numWarps_; }

  private:
    static void
    setBit(uint64_t& mask, WarpId wid, bool on)
    {
        if (on)
            mask |= 1ull << wid;
        else
            mask &= ~(1ull << wid);
    }

    uint32_t numWarps_;
    SchedPolicy policy_;
    WarpId rrLast_ = 0;
    uint64_t active_ = 0;
    uint64_t stalled_ = 0;
    uint64_t barrier_ = 0;
    uint64_t visible_ = 0;
};

} // namespace vortex::core
