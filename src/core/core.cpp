/**
 * @file
 * SIMT core pipeline implementation.
 */

#include "core/core.h"

#include <algorithm>

#include "common/bitmanip.h"
#include "common/log.h"
#include "common/outcome.h"
#include "isa/csr.h"

namespace vortex::core {

Core::Core(const ArchConfig& config, CoreId core_id, mem::Ram& ram,
           BarrierHub* hub)
    : config_(config),
      coreId_(core_id),
      ram_(ram),
      hub_(hub),
      scheduler_(config.numWarps, config.schedPolicy),
      scoreboard_(config.numWarps),
      alu_(2, "alu.input"),
      muldiv_(2, "muldiv.input"),
      fpu_(2, "fpu.input"),
      sfu_(2, "sfu.input"),
      stats_("core")
{
    icache_ = std::make_unique<mem::Cache>(config.icacheConfig());
    dcache_ = std::make_unique<mem::Cache>(config.dcacheConfig());
    smem_ = std::make_unique<mem::SharedMem>(config.smemConfig());

    if (config.texEnabled) {
        tex::TexUnitConfig tc;
        tc.numThreads = config.numThreads;
        tc.cacheLaneBase = config.numThreads;
        tc.numCacheLanes = config.numThreads;
        texUnit_ = std::make_unique<tex::TexUnit>(
            tc, ram_, dcache_.get(), [this] { return allocTexelReqId(); });
        texUnit_->setRspCallback([this](const tex::TexResponse& rsp) {
            // A stale or foreign id panics in the pool (the old
            // "unmatched texture response" check).
            Uop uop = texBatchPool_.take(rsp.reqId);
            uop.out.values.assign(rsp.colors.begin(), rsp.colors.end());
            texDone_.push_back(std::move(uop));
        });
    }

    warps_.reserve(config.numWarps);
    for (uint32_t wid = 0; wid < config.numWarps; ++wid)
        warps_.emplace_back(config.numThreads);
    fetchOutstanding_.assign(config.numWarps, false);
    for (uint32_t wid = 0; wid < config.numWarps; ++wid)
        ibuffers_.emplace_back(config.ibufferDepth, "ibuffer");

    icache_->setRspCallback([this](const mem::CoreRsp& rsp) {
        // A stale or foreign id panics in the pool (the old "unmatched
        // fetch response" check).
        decodeQueue_.push_back(Fetched{fetchPool_.take(rsp.reqId),
                                       curCycle_ + 1});
    });

    dcache_->setRspCallback([this](const mem::CoreRsp& rsp) {
        // Texel fetches carry their own id kind, so LSU responses skip
        // the texture unit's pending-set probe entirely.
        if ((rsp.reqId & kReqKindMask) == kTexelReqBase && texUnit_ &&
            texUnit_->cacheRsp(rsp))
            return;
        onLsuRsp(rsp.reqId);
    });
    smem_->setRspCallback(
        [this](const mem::CoreRsp& rsp) { onLsuRsp(rsp.reqId); });
}

void
Core::onLsuRsp(uint64_t req_id)
{
    // A stale or foreign id panics in the pool (the old "unmatched LSU
    // response" check).
    LsuOp* op = lsuRspPool_.take(req_id);
    if (op->pendingRsps == 0)
        panic("core ", coreId_, ": LSU response underflow");
    --op->pendingRsps;
    if (op->pendingRsps == 0 && op->lanesToIssue == 0)
        op->done = true;
}

void
Core::reset()
{
    for (Warp& w : warps_)
        w.reset(0, 0);
    scheduler_.reset();
    scoreboard_.reset();
    barriers_.clear();
    fetchPool_.clear();
    std::fill(fetchOutstanding_.begin(), fetchOutstanding_.end(), false);
    decodeQueue_.clear();
    for (auto& ib : ibuffers_)
        ib.clear();
    for (FuPipe* fu : {&alu_, &muldiv_, &fpu_, &sfu_}) {
        fu->input.clear();
        fu->inflight.clear();
        fu->output.clear();
        fu->busyUntil = 0;
    }
    lsuOps_.clear();
    lsuRspPool_.clear();
    texBatchPool_.clear();
    texDone_.clear();
    softCsrs_.clear();
    issueRR_ = 0;
}

void
Core::start()
{
    reset();
    warps_[0].reset(config_.startPC, 1);
    scheduler_.setActive(0, true);
}

void
Core::activateWarp(WarpId wid, Addr pc)
{
    if (wid >= config_.numWarps)
        return;
    warps_[wid].reset(pc, 1);
    scheduler_.setActive(wid, true);
    ++stats_.counter("wspawned");
}

void
Core::releaseBarrierWarp(WarpId wid)
{
    scheduler_.setBarrier(wid, false);
}

Word
Core::csrRead(uint32_t addr, WarpId wid, ThreadId tid) const
{
    using namespace isa;
    switch (addr) {
      case CSR_CYCLE: return static_cast<Word>(cycles_);
      case CSR_CYCLEH: return static_cast<Word>(cycles_ >> 32);
      case CSR_INSTRET: return static_cast<Word>(warpInstrs_);
      case CSR_INSTRETH: return static_cast<Word>(warpInstrs_ >> 32);
      case CSR_THREAD_ID: return tid;
      case CSR_WARP_ID: return wid;
      case CSR_CORE_ID: return coreId_;
      case CSR_WARP_MASK:
        return static_cast<Word>(scheduler_.activeMask());
      case CSR_THREAD_MASK:
        return static_cast<Word>(warps_[wid].tmask);
      case CSR_NUM_THREADS: return config_.numThreads;
      case CSR_NUM_WARPS: return config_.numWarps;
      case CSR_NUM_CORES: return config_.numCores;
      default:
        break;
    }
    if (addr >= CSR_TEX_BASE &&
        addr < CSR_TEX_BASE + kNumTexStages * CSR_TEX_STRIDE && texUnit_)
        return texUnit_->csrRead(addr);
    auto it = softCsrs_.find(addr);
    return it == softCsrs_.end() ? 0 : it->second;
}

void
Core::csrWrite(uint32_t addr, Word value, WarpId wid)
{
    using namespace isa;
    (void)wid;
    if (addr >= CSR_TEX_BASE &&
        addr < CSR_TEX_BASE + kNumTexStages * CSR_TEX_STRIDE) {
        if (texUnit_)
            texUnit_->csrWrite(addr, value);
        return;
    }
    softCsrs_[addr] = value;
}

//
// Pipeline.
//

void
Core::tick(Cycle now)
{
    curCycle_ = now;
    ++cycles_;

    if (texUnit_)
        texUnit_->tick(now);
    dcache_->tick(now);
    icache_->tick(now);
    smem_->tick(now);

    commitStage(now);
    executeTick(now);
    lsuTick(now);
    issueStage(now);
    decodeStage(now);
    fetchStage(now);
}

void
Core::fetchStage(Cycle now)
{
    (void)now;
    if (!icache_->laneReady(0)) {
        ++ctrFetchIcacheStalls_;
        return;
    }
    uint64_t eligible = 0;
    for (uint32_t wid = 0; wid < config_.numWarps; ++wid) {
        if (!fetchOutstanding_[wid] && !ibuffers_[wid].full())
            eligible |= 1ull << wid;
    }
    auto sel = scheduler_.select(eligible);
    if (!sel)
        return;
    WarpId wid = *sel;
    Warp& w = warps_[wid];

    // Steady-state fetch of a static instruction skips read32 + decode
    // through the decoded-instruction cache (invalidation contract in
    // core/decode_cache.h).
    const isa::Instr& instr = decodeCache_.lookup(ram_, w.pc);
    if (!instr.valid())
        trap(RunStatus::GuestTrap, "core ", coreId_, " warp ", wid,
             ": invalid instruction 0x", std::hex, instr.raw,
             " at PC 0x", w.pc);

    Uop uop = takeUop();
    uop.instr = instr;
    uop.pc = w.pc;
    uop.wid = wid;
    uop.uid = nextUid_++;

    // Control instructions stall further fetch of this wavefront until the
    // new PC / thread state resolves at execute (§4.2); straight-line code
    // keeps fetching PC+4.
    if (instr.isControl())
        scheduler_.setStalled(wid, true);
    else
        w.pc += 4;

    mem::CoreReq req;
    req.addr = uop.pc;
    req.write = false;
    req.lane = 0;
    req.tag = Tag{uop.pc, wid, uop.uid};
    trace(uop, TraceStage::Fetch);
    req.reqId = fetchPool_.alloc(std::move(uop));
    fetchOutstanding_[wid] = true;
    icache_->lanePush(0, req);
    ++ctrFetches_;
}

void
Core::decodeStage(Cycle now)
{
    while (!decodeQueue_.empty() && decodeQueue_.front().readyAt <= now) {
        Uop uop = std::move(decodeQueue_.front().uop);
        decodeQueue_.pop_front();
        WarpId wid = uop.wid;
        // Space is guaranteed: fetch is gated on ibuffer occupancy and at
        // most one fetch per wavefront is in flight.
        trace(uop, TraceStage::Decode);
        ibuffers_[wid].push(std::move(uop));
        fetchOutstanding_[wid] = false;
    }
}

void
Core::issueStage(Cycle now)
{
    for (uint32_t i = 0; i < config_.numWarps; ++i) {
        WarpId wid = (issueRR_ + i) % config_.numWarps;
        if (ibuffers_[wid].empty())
            continue;
        Uop& head = ibuffers_[wid].front();
        if (!scoreboard_.ready(wid, head.instr)) {
            ++ctrIssueScoreboardStalls_;
            continue;
        }
        // Structural check on the target functional unit.
        bool free = true;
        switch (head.instr.fuType()) {
          case isa::FuType::ALU: free = !alu_.input.full(); break;
          case isa::FuType::MULDIV: free = !muldiv_.input.full(); break;
          case isa::FuType::FPU: free = !fpu_.input.full(); break;
          case isa::FuType::SFU: free = !sfu_.input.full(); break;
          case isa::FuType::LSU:
            free = lsuOps_.size() < config_.lsuDepth;
            break;
          case isa::FuType::TEX:
            free = texUnit_ && texUnit_->ready();
            break;
        }
        if (!free) {
            ++ctrIssueStructuralStalls_;
            continue;
        }
        Uop uop = ibuffers_[wid].pop();
        if (dispatch(std::move(uop), now)) {
            issueRR_ = (wid + 1) % config_.numWarps;
            return; // single-issue core
        }
        return;
    }
}

bool
Core::dispatch(Uop&& uop, Cycle now)
{
    const WarpId wid = uop.wid;
    trace(uop, TraceStage::Issue);
    // In-place execution reuses the uop's (possibly recycled) payload
    // capacity instead of building a fresh ExecOut per instruction.
    executeInto(*this, wid, uop.instr, uop.pc, uop.out);

    threadInstrs_ += popcount(uop.out.tmask);
    ++warpInstrs_;
    if (uop.out.hasDst)
        scoreboard_.setBusy(wid, uop.out.dst);

    applyScheduleEvents(uop);

    switch (uop.instr.fuType()) {
      case isa::FuType::ALU:
        alu_.input.push(std::move(uop));
        break;
      case isa::FuType::MULDIV:
        muldiv_.input.push(std::move(uop));
        break;
      case isa::FuType::FPU:
        fpu_.input.push(std::move(uop));
        break;
      case isa::FuType::SFU:
        sfu_.input.push(std::move(uop));
        break;
      case isa::FuType::LSU: {
        LsuOp op;
        op.lanesToIssue = uop.out.tmask;
        op.uop = std::move(uop);
        if (op.lanesToIssue == 0)
            op.done = true; // all-inactive memory op retires immediately
        lsuOps_.push_back(std::move(op));
        break;
      }
      case isa::FuType::TEX: {
        tex::TexRequest treq;
        treq.stage = uop.out.texStage;
        treq.tag = Tag{uop.pc, wid, uop.uid};
        // The lane payload moves to the unit: nothing reads it from the
        // parked uop once the request is in flight.
        treq.lanes = std::move(uop.out.texLanes);
        treq.reqId = texBatchPool_.alloc(std::move(uop));
        texUnit_->push(std::move(treq));
        break;
      }
    }
    (void)now;
    return true;
}

void
Core::applyScheduleEvents(const Uop& uop)
{
    const WarpId wid = uop.wid;
    if (!uop.instr.isControl())
        return;
    if (uop.out.haltWarp) {
        scheduler_.setActive(wid, false);
        return;
    }
    if (uop.out.isBarrier) {
        scheduler_.setStalled(wid, false);
        scheduler_.setBarrier(wid, true);
        ++ctrBarriers_;
        if (uop.out.barrierGlobal && hub_) {
            hub_->globalArrive(uop.out.barrierId, uop.out.barrierCount,
                               coreId_, wid);
        } else {
            uint64_t release = barriers_.arrive(uop.out.barrierId,
                                                uop.out.barrierCount, wid);
            for (uint32_t w = 0; release; ++w, release >>= 1) {
                if (release & 1)
                    releaseBarrierWarp(w);
            }
        }
        return;
    }
    if (uop.out.isFence)
        return; // stays stalled; SFU completion unstalls
    // Branches, jumps, tmc (non-zero), split, join, wspawn resolve here.
    scheduler_.setStalled(wid, false);
}

uint32_t
Core::opLatency(const isa::Instr& instr, bool& iterative) const
{
    using K = isa::InstrKind;
    iterative = false;
    switch (instr.fuType()) {
      case isa::FuType::ALU:
        return config_.lat.alu;
      case isa::FuType::MULDIV:
        switch (instr.kind) {
          case K::DIV: case K::DIVU: case K::REM: case K::REMU:
            iterative = true;
            return config_.lat.div;
          default:
            return config_.lat.mul;
        }
      case isa::FuType::FPU:
        switch (instr.kind) {
          case K::FDIV_S:
            iterative = true;
            return config_.lat.fdiv;
          case K::FSQRT_S:
            iterative = true;
            return config_.lat.fsqrt;
          case K::FADD_S: case K::FSUB_S: case K::FMUL_S:
          case K::FMADD_S: case K::FMSUB_S: case K::FNMSUB_S:
          case K::FNMADD_S:
            return config_.lat.fpu;
          default:
            return config_.lat.fcvt;
        }
      default:
        return config_.lat.sfu;
    }
}

void
Core::fuAdvance(FuPipe& fu, Cycle now)
{
    // Accept at most one new op per cycle.
    if (!fu.input.empty()) {
        const Uop& head = fu.input.front();
        bool is_fence = head.out.isFence;
        bool fence_ok = !is_fence ||
                        (lsuOps_.empty() && dcache_->idle() &&
                         smem_->idle());
        if (fence_ok) {
            bool iterative;
            uint32_t lat = opLatency(head.instr, iterative);
            bool can_start = !iterative || fu.busyUntil <= now;
            if (can_start) {
                if (iterative)
                    fu.busyUntil = now + lat;
                Uop uop = fu.input.pop();
                fu.inflight.push_back(FuPipe::Inflight{std::move(uop),
                                                       now + lat});
            }
        }
    }
    // Retire matured ops into the output queue (latencies vary, so scan).
    for (auto it = fu.inflight.begin(); it != fu.inflight.end();) {
        if (it->readyAt <= now) {
            fu.output.push_back(std::move(it->uop));
            it = fu.inflight.erase(it);
        } else {
            ++it;
        }
    }
}

void
Core::executeTick(Cycle now)
{
    fuAdvance(alu_, now);
    fuAdvance(muldiv_, now);
    fuAdvance(fpu_, now);
    fuAdvance(sfu_, now);
}

void
Core::lsuTick(Cycle now)
{
    (void)now;
    // In-order lane issue: only the oldest op with unsent lanes issues.
    for (LsuOp& op : lsuOps_) {
        if (op.lanesToIssue == 0)
            continue;
        uint64_t mask = op.lanesToIssue;
        for (uint32_t t = 0; mask; ++t, mask >>= 1) {
            if (!(mask & 1))
                continue;
            bool shared = op.uop.out.memShared;
            bool ready = shared ? smem_->laneReady(t)
                                : dcache_->laneReady(t);
            if (!ready)
                continue;
            mem::CoreReq req;
            req.addr = op.uop.out.addrs[t];
            req.write = op.uop.out.memWrite;
            req.reqId = lsuRspPool_.alloc(&op);
            req.lane = t;
            req.tag = Tag{op.uop.pc, op.uop.wid, op.uop.uid};
            ++op.pendingRsps;
            op.lanesToIssue &= ~(1ull << t);
            if (shared)
                smem_->lanePush(t, req);
            else
                dcache_->lanePush(t, req);
        }
        break; // strictly in-order issue across ops
    }
}

void
Core::commitStage(Cycle now)
{
    (void)now;
    // Retire every ready non-writing uop (they need no writeback port) and
    // at most one register-writing uop per cycle (single writeback port).
    bool port_used = false;

    auto tryRetire = [&](Uop& uop) -> bool {
        if (uop.out.hasDst) {
            if (port_used)
                return false;
            port_used = true;
        }
        writeback(uop);
        return true;
    };

    for (FuPipe* fu : {&alu_, &fpu_, &muldiv_, &sfu_}) {
        while (!fu->output.empty()) {
            if (!tryRetire(fu->output.front()))
                break;
            recycleUop(std::move(fu->output.front()));
            fu->output.pop_front();
        }
    }
    // LSU completions (any order).
    for (auto it = lsuOps_.begin(); it != lsuOps_.end();) {
        if (it->done && tryRetire(it->uop)) {
            recycleUop(std::move(it->uop));
            it = lsuOps_.erase(it);
        } else {
            ++it;
        }
    }
    // Texture completions.
    while (!texDone_.empty()) {
        if (!tryRetire(texDone_.front()))
            break;
        recycleUop(std::move(texDone_.front()));
        texDone_.pop_front();
    }
}

void
Core::writeback(const Uop& uop)
{
    const WarpId wid = uop.wid;
    Warp& w = warps_[wid];
    if (uop.out.hasDst) {
        const isa::RegRef dst = uop.out.dst;
        uint64_t mask = uop.out.tmask;
        for (uint32_t t = 0; mask; ++t, mask >>= 1) {
            if (!(mask & 1))
                continue;
            if (dst.file == isa::RegFile::Int)
                w.iregs[t][dst.idx] = uop.out.values[t];
            else
                w.fregs[t][dst.idx] = uop.out.values[t];
        }
        scoreboard_.clearBusy(wid, dst);
        ++ctrWritebacks_;
    }
    if (uop.out.isFence)
        scheduler_.setStalled(wid, false);
    trace(uop, TraceStage::Commit);
    ++ctrRetired_;
}

bool
Core::busy() const
{
    if (scheduler_.activeMask() != 0)
        return true;
    if (!fetchPool_.empty() || !decodeQueue_.empty())
        return true;
    for (const auto& ib : ibuffers_) {
        if (!ib.empty())
            return true;
    }
    if (!alu_.empty() || !muldiv_.empty() || !fpu_.empty() || !sfu_.empty())
        return true;
    if (!lsuOps_.empty() || !texBatchPool_.empty() || !texDone_.empty())
        return true;
    if (!icache_->idle() || !dcache_->idle() || !smem_->idle())
        return true;
    if (texUnit_ && !texUnit_->idle())
        return true;
    return false;
}

} // namespace vortex::core
