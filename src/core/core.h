/**
 * @file
 * One Vortex core (paper Figure 4): a five-stage in-order SIMT pipeline —
 * fetch (wavefront scheduler + I-cache), decode, per-wavefront instruction
 * buffers, issue (scoreboard + banked GPR), functional units (ALU, MULDIV,
 * FPU, LSU, SFU, TEX), and commit (single writeback port) — plus the
 * per-core L1 caches, shared memory, barrier table, and texture unit.
 */

#pragma once

#include <deque>
#include <list>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/elastic.h"
#include "common/slot_pool.h"
#include "common/stats.h"
#include "core/barrier.h"
#include "core/config.h"
#include "core/decode_cache.h"
#include "core/scheduler.h"
#include "core/trace.h"
#include "core/scoreboard.h"
#include "core/uop.h"
#include "core/warp.h"
#include "mem/cache.h"
#include "mem/ram.h"
#include "mem/sharedmem.h"
#include "tex/texunit.h"

namespace vortex::core {

/** Interface the Processor exposes for inter-core (global) barriers. */
class BarrierHub
{
  public:
    virtual ~BarrierHub() = default;
    /** Wavefront @p wid of core @p core arrived at global barrier @p id
     *  expecting @p count wavefront arrivals. The hub releases every waiting
     *  wavefront (including this one) when the barrier fires. */
    virtual void globalArrive(uint32_t id, uint32_t count, CoreId core,
                              WarpId wid) = 0;
};

/** A single SIMT core. */
class Core
{
  public:
    /** Build core @p core_id of a device configured by @p config, on
     *  shared backing RAM @p ram; @p hub receives global barrier
     *  arrivals (may be nullptr for single-core test rigs that never
     *  execute a global barrier). */
    Core(const ArchConfig& config, CoreId core_id, mem::Ram& ram,
         BarrierHub* hub);

    /** Deactivate every wavefront and clear all pipeline state. */
    void reset();

    /** Activate wavefront 0 (thread 0) at the configured start PC. */
    void start();

    /** Advance one cycle (caches and texture unit tick inside). */
    void tick(Cycle now);

    /** Any wavefront active or any operation still in flight? */
    bool busy() const;

    //
    // Component access (hierarchy glue + tests).
    //
    mem::Cache& icache() { return *icache_; }      ///< the L1I
    mem::Cache& dcache() { return *dcache_; }      ///< the L1D
    mem::SharedMem& sharedMem() { return *smem_; } ///< the scratchpad
    /** The texture unit (nullptr when ArchConfig::texEnabled is off). */
    tex::TexUnit* texUnit() { return texUnit_.get(); }

    //
    // Emulator interface (functional execution).
    //
    /** Architectural state of wavefront @p wid. */
    Warp& warp(WarpId wid) { return warps_.at(wid); }
    /** Const view of wavefront @p wid. */
    const Warp& warp(WarpId wid) const { return warps_.at(wid); }
    mem::Ram& ram() { return ram_; }                      ///< backing RAM
    const ArchConfig& config() const { return config_; }  ///< the machine
    CoreId coreId() const { return coreId_; }             ///< this core's id

    /** Read CSR @p addr as seen by (wavefront, thread) — includes the
     *  Vortex identification CSRs (core/thread/wavefront ids). */
    Word csrRead(uint32_t addr, WarpId wid, ThreadId tid) const;
    /** Write soft CSR @p addr for wavefront @p wid. */
    void csrWrite(uint32_t addr, Word value, WarpId wid);

    /** wspawn target: activate wavefront @p wid at @p pc with thread 0. */
    void activateWarp(WarpId wid, Addr pc);

    /** Release a wavefront stalled at a barrier. */
    void releaseBarrierWarp(WarpId wid);

    /** The wavefront scheduler (mask maintenance from the emulator). */
    WarpScheduler& scheduler() { return scheduler_; }

    /** Attach an instruction-lifecycle trace sink (nullptr disables). */
    void setTraceSink(TraceSink* sink) { traceSink_ = sink; }

    //
    // Statistics.
    //
    StatGroup& stats() { return stats_; }             ///< core counters
    const StatGroup& stats() const { return stats_; } ///< const counters
    /** Thread-instructions retired (the IPC numerator). */
    uint64_t threadInstrs() const { return threadInstrs_; }
    /** Wavefront-instructions retired. */
    uint64_t warpInstrs() const { return warpInstrs_; }
    /** Cycles this core has ticked. */
    uint64_t cycles() const { return cycles_; }

  private:
    //
    // Pipeline stages.
    //
    void fetchStage(Cycle now);
    void decodeStage(Cycle now);
    void issueStage(Cycle now);
    void executeTick(Cycle now);
    void lsuTick(Cycle now);
    void commitStage(Cycle now);

    /** Dispatch one uop to its functional unit; false if structural stall. */
    bool dispatch(Uop&& uop, Cycle now);
    void applyScheduleEvents(const Uop& uop);
    void writeback(const Uop& uop);
    void onLsuRsp(uint64_t reqId);

    //
    // Request-id spaces. Every in-flight request id carries a kind in
    // its top bits, so ids from the three slot pools and the texel-fetch
    // counter can share the D$/I$/scratchpad without colliding, and a
    // D$ response routes by kind instead of probing the texture unit's
    // pending set.
    //
    static constexpr uint64_t kReqKindMask = 3ull << 62;
    static constexpr uint64_t kFetchReqBase = 1ull << 62; ///< I$ fetches
    static constexpr uint64_t kLsuReqBase = 2ull << 62;   ///< LSU lanes
    static constexpr uint64_t kTexelReqBase = 3ull << 62; ///< texel reads

    /** Texel-fetch ids handed to the texture unit (tracked only in the
     *  unit's own pending set, so a plain counter suffices). */
    uint64_t allocTexelReqId() { return kTexelReqBase | nextTexelReqId_++; }

    /** A fresh (or recycled) uop: payload capacity is reused, all other
     *  state is reset by the caller/executeInto. */
    Uop
    takeUop()
    {
        if (uopPool_.empty())
            return Uop{};
        Uop uop = std::move(uopPool_.back());
        uopPool_.pop_back();
        return uop;
    }

    /** Return a retired uop's payload capacity to the pool. */
    void
    recycleUop(Uop&& uop)
    {
        if (uopPool_.size() < kUopPoolDepth)
            uopPool_.push_back(std::move(uop));
    }

    //
    // Functional-unit pipes with per-op latency; iterative ops set busy.
    //
    struct FuPipe
    {
        explicit FuPipe(uint32_t depth, const char* name)
            : input(depth, name)
        {
        }
        struct Inflight
        {
            Uop uop;
            Cycle readyAt;
        };
        ElasticQueue<Uop> input;
        std::deque<Inflight> inflight;
        Cycle busyUntil = 0;
        std::deque<Uop> output;

        bool
        empty() const
        {
            return input.empty() && inflight.empty() && output.empty();
        }
    };

    void fuAdvance(FuPipe& fu, Cycle now);
    uint32_t opLatency(const isa::Instr& instr, bool& iterative) const;

    //
    // Members.
    //
    ArchConfig config_;
    CoreId coreId_;
    mem::Ram& ram_;
    BarrierHub* hub_;

    std::unique_ptr<mem::Cache> icache_;
    std::unique_ptr<mem::Cache> dcache_;
    std::unique_ptr<mem::SharedMem> smem_;
    std::unique_ptr<tex::TexUnit> texUnit_;

    WarpScheduler scheduler_;
    Scoreboard scoreboard_;
    BarrierTable barriers_;
    std::vector<Warp> warps_;
    std::unordered_map<uint32_t, Word> softCsrs_;

    //
    // Fetch / decode bookkeeping.
    //
    struct Fetched
    {
        Uop uop;
        Cycle readyAt;
    };
    DecodeCache decodeCache_;       ///< PC-indexed decoded-instr memo
    SlotPool<Uop> fetchPool_{kFetchReqBase, "core.fetches"};
    std::vector<bool> fetchOutstanding_; ///< per wavefront
    std::deque<Fetched> decodeQueue_;

    std::vector<ElasticQueue<Uop>> ibuffers_;
    WarpId issueRR_ = 0;

    FuPipe alu_;
    FuPipe muldiv_;
    FuPipe fpu_;
    FuPipe sfu_;

    //
    // LSU: in-order lane issue, out-of-order completion.
    //
    struct LsuOp
    {
        Uop uop;
        uint64_t lanesToIssue = 0; ///< thread bits not yet sent
        uint32_t pendingRsps = 0;
        bool done = false;
    };
    std::list<LsuOp> lsuOps_;
    /** In-flight lane requests -> owning op (list nodes are stable). */
    SlotPool<LsuOp*> lsuRspPool_{kLsuReqBase, "core.lsu_rsps"};

    //
    // Texture in-flight uops (keyed by TexRequest reqId).
    //
    SlotPool<Uop> texBatchPool_{0, "core.tex_batches"};
    std::deque<Uop> texDone_;

    /** Retired-uop recycle pool: bounds how much spilled payload
     *  capacity is kept for reuse (the in-flight population is itself
     *  bounded by the ibuffer/LSU/FU queue depths). */
    static constexpr size_t kUopPoolDepth = 64;
    std::vector<Uop> uopPool_;

    uint64_t nextTexelReqId_ = 1;
    uint64_t nextUid_ = 1;
    TraceSink* traceSink_ = nullptr;

    void
    trace(const Uop& uop, TraceStage stage)
    {
        if (traceSink_)
            traceSink_->record(
                TraceEvent{uop.uid, uop.wid, uop.pc, stage, curCycle_});
    }

    Cycle cycles_ = 0;
    Cycle curCycle_ = 0;
    uint64_t threadInstrs_ = 0;
    uint64_t warpInstrs_ = 0;
    StatGroup stats_;

    // Hot-path counter handles (lazy CounterRef: byte-identical output).
    CounterRef ctrFetchIcacheStalls_{stats_, "fetch_icache_stalls"};
    CounterRef ctrFetches_{stats_, "fetches"};
    CounterRef ctrIssueScoreboardStalls_{stats_, "issue_scoreboard_stalls"};
    CounterRef ctrIssueStructuralStalls_{stats_, "issue_structural_stalls"};
    CounterRef ctrBarriers_{stats_, "barriers"};
    CounterRef ctrWritebacks_{stats_, "writebacks"};
    CounterRef ctrRetired_{stats_, "retired"};
};

/** Functionally execute @p instr of wavefront @p wid (defined in
 *  emulator.cpp). Mutates the wavefront's architectural control state
 *  (PC, thread mask, IPDOM stack) and performs stores/CSR writes; register
 *  writebacks are returned for the timing model to commit. */
ExecOut execute(Core& core, WarpId wid, const isa::Instr& instr, Addr pc);

/** In-place variant of execute(): resets @p out (keeping its payload
 *  capacity — the allocation-free dispatch path) and fills it. */
void executeInto(Core& core, WarpId wid, const isa::Instr& instr, Addr pc,
                 ExecOut& out);

} // namespace vortex::core
