/**
 * @file
 * Architectural configuration of the simulated Vortex processor. The
 * defaults model the paper's baseline: 4 wavefronts x 4 threads per core
 * (chosen in §6.2.1), 16 KiB L1D + shared memory, 8 KiB L1I, 4-bank
 * single-virtual-port data cache, and a 2-channel board memory (Arria 10).
 */

#pragma once

#include <cstdint>

#include "common/types.h"
#include "mem/cache.h"
#include "mem/memsim.h"
#include "mem/sharedmem.h"

#include "core/scheduler.h"

namespace vortex::core {

/** Functional-unit latencies in cycles (paper §6.2: DSP-based FMA; nearn is
 *  hurt by its "expensive long-latency floating-point square-root"). */
struct FuLatencies
{
    uint32_t alu = 1;   ///< pipelined
    uint32_t mul = 3;   ///< pipelined
    uint32_t div = 32;  ///< iterative (unit busy)
    uint32_t fpu = 4;   ///< add/mul/fma, pipelined DSP
    uint32_t fcvt = 2;  ///< converts/moves/compares, pipelined
    uint32_t fdiv = 16; ///< iterative (unit busy)
    uint32_t fsqrt = 24;///< iterative (unit busy)
    uint32_t sfu = 1;   ///< wspawn/tmc/split/join/bar control ops
};

/** Full machine configuration. */
struct ArchConfig
{
    //
    // SIMT geometry.
    //
    uint32_t numThreads = 4; ///< threads per wavefront (max 64)
    uint32_t numWarps = 4;   ///< wavefronts per core
    uint32_t numCores = 1;   ///< cores in the device
    uint32_t coresPerCluster = 4; ///< cores sharing one (optional) L2

    //
    // Pipeline.
    //
    uint32_t ibufferDepth = 2; ///< per-wavefront instruction-buffer depth
    uint32_t lsuDepth = 4; ///< in-flight warp memory ops per core
    SchedPolicy schedPolicy =
        SchedPolicy::Hierarchical; ///< wavefront selection policy
    FuLatencies lat;               ///< functional-unit latencies

    //
    // L1 caches (per core).
    //
    uint32_t lineSize = 64;     ///< cache line size (bytes; also board mem)
    uint32_t icacheSize = 8192; ///< L1I size (bytes)
    uint32_t icacheWays = 2;    ///< L1I associativity
    uint32_t dcacheSize = 16384;///< L1D size (bytes)
    uint32_t dcacheWays = 2;    ///< L1D associativity
    uint32_t dcacheBanks = 4;   ///< L1D bank count
    uint32_t dcachePorts = 1; ///< virtual ports per bank (Fig. 19 knob)
    uint32_t mshrEntries = 8; ///< MSHR entries per bank (non-blocking depth)

    //
    // Shared memory (per core).
    //
    uint32_t smemSize = 16384; ///< scratchpad size (bytes)
    uint32_t smemLatency = 1;  ///< scratchpad access latency (cycles)

    //
    // Optional cache hierarchy.
    //
    bool l2Enabled = false;   ///< attach a per-cluster L2
    uint32_t l2Size = 131072; ///< L2 size (bytes)
    uint32_t l2Banks = 8;     ///< L2 bank count
    uint32_t l2Ways = 4;      ///< L2 associativity
    bool l3Enabled = false;   ///< attach a device-level L3
    uint32_t l3Size = 262144; ///< L3 size (bytes)
    uint32_t l3Banks = 8;     ///< L3 bank count
    uint32_t l3Ways = 8;      ///< L3 associativity

    //
    // Board memory.
    //
    mem::MemSimConfig mem{/*latency=*/80, /*lineSize=*/64, /*busWidth=*/16,
                          /*numChannels=*/2,
                          /*queueDepth=*/16}; ///< board-memory model

    //
    // Texture units.
    //
    bool texEnabled = true; ///< build the per-core texture units

    //
    // Host simulation backend. The serial and parallel backends are
    // bit-identical to *each other* — same cycles(), threadInstrs(), and
    // functional results (see core/tick_engine.h); both share the
    // end-of-cycle cross-core commit phase of Processor::tick.
    //
    bool parallelTick = false; ///< tick cores on a persistent thread pool
    uint32_t tickThreads = 0;  ///< pool size; 0 = min(numCores, host CPUs)

    //
    // Observability. When nonzero, the Processor snapshots every device
    // StatGroup each `sampleInterval` cycles (at the cycle-boundary
    // commit point, so the series is bit-identical across tick backends)
    // and delta-encodes the increments into a TimeSeries (common/stats.h).
    // 0 disables sampling; the disabled path costs one branch per cycle.
    //
    uint64_t sampleInterval = 0; ///< cycles between counter snapshots

    //
    // Software-visible layout.
    //
    Addr startPC = 0x80000000;  ///< reset PC of wavefront 0
    Addr smemBase = 0xFF000000; ///< per-core scratchpad window

    /** Number of clusters implied by numCores/coresPerCluster. */
    uint32_t
    numClusters() const
    {
        return (numCores + coresPerCluster - 1) / coresPerCluster;
    }

    /** L1 instruction-cache geometry. */
    mem::CacheConfig
    icacheConfig() const
    {
        mem::CacheConfig c;
        c.name = "icache";
        c.size = icacheSize;
        c.lineSize = lineSize;
        c.numBanks = 1;
        c.numWays = icacheWays;
        c.numPorts = 1;
        c.numLanes = 1;
        c.mshrEntries = mshrEntries;
        // The I-cache is a simple single-bank read-only store: its hit
        // path is shorter than the D$'s four-stage bank pipeline. This
        // keeps the per-wavefront fetch round trip from starving
        // low-wavefront configurations.
        c.pipelineLatency = 1;
        return c;
    }

    /** L1 data-cache geometry. Lanes: [0, NT) LSU, [NT, 2*NT) texture. */
    mem::CacheConfig
    dcacheConfig() const
    {
        mem::CacheConfig c;
        c.name = "dcache";
        c.size = dcacheSize;
        c.lineSize = lineSize;
        c.numBanks = dcacheBanks;
        c.numWays = dcacheWays;
        c.numPorts = dcachePorts;
        c.numLanes = texEnabled ? 2 * numThreads : numThreads;
        c.mshrEntries = mshrEntries;
        return c;
    }

    /** Per-cluster L2 geometry serving @p coresInCluster cores (one I$
     *  plus one D$ lane each). */
    mem::CacheConfig
    l2Config(uint32_t coresInCluster) const
    {
        mem::CacheConfig c;
        c.name = "l2cache";
        c.size = l2Size;
        c.lineSize = lineSize;
        c.numBanks = l2Banks;
        c.numWays = l2Ways;
        c.numPorts = 1;
        c.numLanes = 2 * coresInCluster; ///< one I$ + one D$ port per core
        c.mshrEntries = 2 * mshrEntries;
        c.memQueueDepth = 16;
        return c;
    }

    /** Device-level L3 geometry (one lane per cluster port). */
    mem::CacheConfig
    l3Config() const
    {
        mem::CacheConfig c;
        c.name = "l3cache";
        c.size = l3Size;
        c.lineSize = lineSize;
        c.numBanks = l3Banks;
        c.numWays = l3Ways;
        c.numPorts = 1;
        c.numLanes = 2 * numClusters();
        c.mshrEntries = 4 * mshrEntries;
        c.memQueueDepth = 32;
        return c;
    }

    /** Per-core scratchpad geometry (one bank and lane per thread). */
    mem::SharedMemConfig
    smemConfig() const
    {
        mem::SharedMemConfig c;
        c.size = smemSize;
        c.numBanks = numThreads;
        c.numLanes = numThreads;
        c.latency = smemLatency;
        return c;
    }
};

} // namespace vortex::core
