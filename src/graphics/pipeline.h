/**
 * @file
 * Software 3D rendering pipeline (paper §2, §5.5).
 *
 * Following Larrabee and the Vortex graphics stack, the whole pipeline is
 * software: the *geometry stage* (vertex shading, near-plane clipping,
 * perspective divide, viewport transform) runs on the host, triangles are
 * binned into screen tiles (tile-based rendering), and each tile is
 * rasterized with edge functions, perspective-correct attribute
 * interpolation, and the OpenGL-ES fragment-op sequence: scissor -> alpha
 * test -> stencil test -> depth test -> fog -> write. Texturing uses the
 * same functional sampler as the hardware texture unit, so host rendering
 * and `tex`-accelerated kernels produce identical texels.
 */

#pragma once

#include <functional>
#include <vector>

#include "common/stats.h"
#include "graphics/framebuffer.h"
#include "graphics/vmath.h"
#include "mem/ram.h"
#include "tex/sampler.h"

namespace vortex::graphics {

/** A post-vertex-shader vertex (clip-space position + attributes). */
struct Vertex
{
    Vec4 position; ///< clip space
    Vec4 color{1.0f, 1.0f, 1.0f, 1.0f};
    Vec2 uv;
};

/** GL comparison functions. */
enum class CompareFunc : uint8_t
{
    Never, Less, Equal, LEqual, Greater, NotEqual, GEqual, Always
};

/** GL stencil operations. */
enum class StencilOp : uint8_t
{
    Keep, Zero, Replace, Incr, Decr, Invert
};

struct DepthState
{
    bool testEnabled = true;
    bool writeEnabled = true;
    CompareFunc func = CompareFunc::Less;
};

struct AlphaState
{
    bool testEnabled = false;
    CompareFunc func = CompareFunc::Always;
    float ref = 0.0f;
};

struct StencilState
{
    bool testEnabled = false;
    CompareFunc func = CompareFunc::Always;
    uint8_t ref = 0;
    uint8_t mask = 0xFF;
    StencilOp onFail = StencilOp::Keep;
    StencilOp onZFail = StencilOp::Keep;
    StencilOp onZPass = StencilOp::Keep;
};

struct FogState
{
    enum class Mode : uint8_t { Linear, Exp, Exp2 };
    bool enabled = false;
    Mode mode = Mode::Linear;
    Vec3 color{0.5f, 0.5f, 0.5f};
    float start = 1.0f; ///< linear mode
    float end = 100.0f;
    float density = 0.05f; ///< exp modes
};

/** Inputs to a fragment shader. */
struct FragmentIn
{
    Vec2 uv;
    Vec4 color;
    float depth; ///< window-space z in [0,1]
    float viewW; ///< interpolated view-space depth (fog distance)
};

/** A fragment shader maps interpolated attributes to an RGBA color. */
using FragmentShader = std::function<Vec4(const FragmentIn&)>;

/** The rendering pipeline bound to one framebuffer. */
class Pipeline
{
  public:
    explicit Pipeline(Framebuffer& fb, uint32_t tile_size = 64);

    //
    // State.
    //
    DepthState& depthState() { return depth_; }
    AlphaState& alphaState() { return alpha_; }
    StencilState& stencilState() { return stencil_; }
    FogState& fogState() { return fog_; }

    /** Bind a texture for sampleTexture(); @p ram backs the texel data. */
    void
    bindTexture(const mem::Ram* ram, const tex::SamplerState& state)
    {
        texRam_ = ram;
        texState_ = state;
    }

    /** Sample the bound texture (usable from fragment shaders). */
    Vec4 sampleTexture(float u, float v, float lod = 0.0f) const;

    void setFragmentShader(FragmentShader shader)
    {
        shader_ = std::move(shader);
    }

    //
    // Geometry submission: vertices are in clip space (the application's
    // vertex shader — host code — has already run). The rasterizer
    // implements the paper's basic point, line, and triangle primitives
    // (§5.5).
    //
    void drawTriangles(const std::vector<Vertex>& vertices,
                       const std::vector<uint32_t>& indices);

    /** Line segments: each index pair is one segment (GL_LINES), drawn
     *  with a DDA at one fragment per major step. */
    void drawLines(const std::vector<Vertex>& vertices,
                   const std::vector<uint32_t>& indices);

    /** Point sprites of @p size x @p size pixels (GL_POINTS). */
    void drawPoints(const std::vector<Vertex>& vertices, uint32_t size = 1);

    /** Rasterization statistics (triangles, tiles, fragments, tests). */
    StatGroup& stats() { return stats_; }
    const StatGroup& stats() const { return stats_; }

  private:
    /** A screen-space triangle ready for rasterization. */
    struct ScreenTri
    {
        // Window coordinates (x, y in pixels, z in [0,1]) and 1/w.
        float x[3], y[3], z[3], invW[3];
        // Attributes pre-divided by w for perspective-correct lerp.
        Vec4 colorOverW[3];
        Vec2 uvOverW[3];
        float minX, minY, maxX, maxY;
    };

    void clipAndEmit(const Vertex& a, const Vertex& b, const Vertex& c,
                     std::vector<ScreenTri>& out) const;
    bool toScreen(const Vertex& v, ScreenTri& tri, int slot) const;
    /** Shade one non-triangle fragment (points/lines) with the full
     *  fragment-op sequence. */
    void shadePrimFragment(int32_t x, int32_t y, const Vertex& v);
    void rasterizeTile(const ScreenTri& tri, uint32_t tx0, uint32_t ty0,
                       uint32_t tx1, uint32_t ty1);
    void shadeFragment(const ScreenTri& tri, uint32_t x, uint32_t y,
                       float w0, float w1, float w2);

    static bool compare(CompareFunc f, float a, float b);
    static uint8_t stencilApply(StencilOp op, uint8_t value, uint8_t ref);

    Framebuffer& fb_;
    uint32_t tileSize_;
    DepthState depth_;
    AlphaState alpha_;
    StencilState stencil_;
    FogState fog_;
    FragmentShader shader_;
    const mem::Ram* texRam_ = nullptr;
    tex::SamplerState texState_;
    StatGroup stats_{"pipeline"};
};

} // namespace vortex::graphics
