/**
 * @file
 * Render target: RGBA8 color + float depth + 8-bit stencil, with PPM
 * export for the examples.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tex/format.h"

namespace vortex::graphics {

/** A color/depth/stencil render target. */
class Framebuffer
{
  public:
    Framebuffer(uint32_t width, uint32_t height);

    uint32_t width() const { return width_; }
    uint32_t height() const { return height_; }

    void clear(const tex::Color& color, float depth = 1.0f,
               uint8_t stencil = 0);

    uint32_t
    pixel(uint32_t x, uint32_t y) const
    {
        return color_[y * width_ + x];
    }
    void
    setPixel(uint32_t x, uint32_t y, uint32_t rgba)
    {
        color_[y * width_ + x] = rgba;
    }

    float depth(uint32_t x, uint32_t y) const
    {
        return depth_[y * width_ + x];
    }
    void
    setDepth(uint32_t x, uint32_t y, float z)
    {
        depth_[y * width_ + x] = z;
    }

    uint8_t stencil(uint32_t x, uint32_t y) const
    {
        return stencil_[y * width_ + x];
    }
    void
    setStencil(uint32_t x, uint32_t y, uint8_t s)
    {
        stencil_[y * width_ + x] = s;
    }

    const std::vector<uint32_t>& colorBuffer() const { return color_; }

    /** Write the color buffer as a binary PPM (P6) file. */
    void writePpm(const std::string& path) const;

  private:
    uint32_t width_;
    uint32_t height_;
    std::vector<uint32_t> color_;
    std::vector<float> depth_;
    std::vector<uint8_t> stencil_;
};

} // namespace vortex::graphics
