/**
 * @file
 * Minimal vector/matrix math for the host-side geometry stage of the
 * graphics pipeline (paper §5.5: geometry processing runs on the host).
 */

#pragma once

#include <cmath>

namespace vortex::graphics {

struct Vec2
{
    float x = 0.0f, y = 0.0f;
};

struct Vec3
{
    float x = 0.0f, y = 0.0f, z = 0.0f;

    Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
    Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
    Vec3 operator*(float s) const { return {x * s, y * s, z * s}; }

    float dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }

    Vec3
    cross(const Vec3& o) const
    {
        return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
    }

    float length() const { return std::sqrt(dot(*this)); }

    Vec3
    normalized() const
    {
        float l = length();
        return l > 0.0f ? (*this) * (1.0f / l) : Vec3{};
    }
};

struct Vec4
{
    float x = 0.0f, y = 0.0f, z = 0.0f, w = 0.0f;

    Vec4() = default;
    Vec4(float xx, float yy, float zz, float ww) : x(xx), y(yy), z(zz), w(ww)
    {
    }
    Vec4(const Vec3& v, float ww) : x(v.x), y(v.y), z(v.z), w(ww) {}

    Vec4
    operator+(const Vec4& o) const
    {
        return {x + o.x, y + o.y, z + o.z, w + o.w};
    }
    Vec4
    operator-(const Vec4& o) const
    {
        return {x - o.x, y - o.y, z - o.z, w - o.w};
    }
    Vec4 operator*(float s) const { return {x * s, y * s, z * s, w * s}; }

    Vec3 xyz() const { return {x, y, z}; }
};

/** Column-major 4x4 matrix (OpenGL convention: m[col*4 + row]). */
struct Mat4
{
    float m[16] = {};

    static Mat4
    identity()
    {
        Mat4 r;
        r.m[0] = r.m[5] = r.m[10] = r.m[15] = 1.0f;
        return r;
    }

    static Mat4
    translate(float x, float y, float z)
    {
        Mat4 r = identity();
        r.m[12] = x;
        r.m[13] = y;
        r.m[14] = z;
        return r;
    }

    static Mat4
    scale(float x, float y, float z)
    {
        Mat4 r;
        r.m[0] = x;
        r.m[5] = y;
        r.m[10] = z;
        r.m[15] = 1.0f;
        return r;
    }

    static Mat4
    rotateX(float rad)
    {
        Mat4 r = identity();
        float c = std::cos(rad), s = std::sin(rad);
        r.m[5] = c;
        r.m[6] = s;
        r.m[9] = -s;
        r.m[10] = c;
        return r;
    }

    static Mat4
    rotateY(float rad)
    {
        Mat4 r = identity();
        float c = std::cos(rad), s = std::sin(rad);
        r.m[0] = c;
        r.m[2] = -s;
        r.m[8] = s;
        r.m[10] = c;
        return r;
    }

    static Mat4
    rotateZ(float rad)
    {
        Mat4 r = identity();
        float c = std::cos(rad), s = std::sin(rad);
        r.m[0] = c;
        r.m[1] = s;
        r.m[4] = -s;
        r.m[5] = c;
        return r;
    }

    /** Right-handed perspective projection (gluPerspective semantics). */
    static Mat4
    perspective(float fovy_rad, float aspect, float znear, float zfar)
    {
        Mat4 r;
        float f = 1.0f / std::tan(fovy_rad / 2.0f);
        r.m[0] = f / aspect;
        r.m[5] = f;
        r.m[10] = (zfar + znear) / (znear - zfar);
        r.m[11] = -1.0f;
        r.m[14] = 2.0f * zfar * znear / (znear - zfar);
        return r;
    }

    static Mat4
    lookAt(const Vec3& eye, const Vec3& center, const Vec3& up)
    {
        Vec3 f = (center - eye).normalized();
        Vec3 s = f.cross(up).normalized();
        Vec3 u = s.cross(f);
        Mat4 r = identity();
        r.m[0] = s.x;
        r.m[4] = s.y;
        r.m[8] = s.z;
        r.m[1] = u.x;
        r.m[5] = u.y;
        r.m[9] = u.z;
        r.m[2] = -f.x;
        r.m[6] = -f.y;
        r.m[10] = -f.z;
        r.m[12] = -s.dot(eye);
        r.m[13] = -u.dot(eye);
        r.m[14] = f.dot(eye);
        return r;
    }

    Mat4
    operator*(const Mat4& o) const
    {
        Mat4 r;
        for (int c = 0; c < 4; ++c) {
            for (int row = 0; row < 4; ++row) {
                float acc = 0.0f;
                for (int k = 0; k < 4; ++k)
                    acc += m[k * 4 + row] * o.m[c * 4 + k];
                r.m[c * 4 + row] = acc;
            }
        }
        return r;
    }

    Vec4
    operator*(const Vec4& v) const
    {
        return {
            m[0] * v.x + m[4] * v.y + m[8] * v.z + m[12] * v.w,
            m[1] * v.x + m[5] * v.y + m[9] * v.z + m[13] * v.w,
            m[2] * v.x + m[6] * v.y + m[10] * v.z + m[14] * v.w,
            m[3] * v.x + m[7] * v.y + m[11] * v.z + m[15] * v.w,
        };
    }
};

} // namespace vortex::graphics
