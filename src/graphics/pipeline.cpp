/**
 * @file
 * Tile-based software rasterizer implementation.
 */

#include "graphics/pipeline.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"

namespace vortex::graphics {

namespace {

/** Edge function: twice the signed area of (a, b, p), y-down convention. */
inline float
edge(float ax, float ay, float bx, float by, float px, float py)
{
    return (bx - ax) * (py - ay) - (by - ay) * (px - ax);
}

/** Top-left fill rule for edge (dx, dy) with positive-inside winding. */
inline bool
isTopLeft(float dx, float dy)
{
    return (dy == 0.0f && dx > 0.0f) || dy < 0.0f;
}

inline float
clamp01(float v)
{
    return std::min(1.0f, std::max(0.0f, v));
}

inline uint32_t
packColor(const Vec4& c)
{
    tex::Color out;
    out.r = static_cast<uint8_t>(clamp01(c.x) * 255.0f + 0.5f);
    out.g = static_cast<uint8_t>(clamp01(c.y) * 255.0f + 0.5f);
    out.b = static_cast<uint8_t>(clamp01(c.z) * 255.0f + 0.5f);
    out.a = static_cast<uint8_t>(clamp01(c.w) * 255.0f + 0.5f);
    return out.pack();
}

Vertex
lerpVertex(const Vertex& a, const Vertex& b, float t)
{
    Vertex v;
    v.position = a.position + (b.position - a.position) * t;
    v.color = a.color + (b.color - a.color) * t;
    v.uv = {a.uv.x + (b.uv.x - a.uv.x) * t, a.uv.y + (b.uv.y - a.uv.y) * t};
    return v;
}

} // namespace

Pipeline::Pipeline(Framebuffer& fb, uint32_t tile_size)
    : fb_(fb), tileSize_(tile_size)
{
    if (tile_size == 0)
        fatal("Pipeline: tile size must be >= 1");
}

Vec4
Pipeline::sampleTexture(float u, float v, float lod) const
{
    if (!texRam_)
        return {1.0f, 0.0f, 1.0f, 1.0f}; // magenta: no texture bound
    tex::Color c;
    if (lod > 0.0f && texState_.numLods > 1)
        c = tex::sampleTrilinear(*texRam_, texState_, u, v, lod).color;
    else
        c = tex::sample(*texRam_, texState_, u, v, 0).color;
    constexpr float kInv255 = 1.0f / 255.0f;
    return {c.r * kInv255, c.g * kInv255, c.b * kInv255, c.a * kInv255};
}

bool
Pipeline::toScreen(const Vertex& v, ScreenTri& tri, int slot) const
{
    const Vec4& p = v.position;
    if (p.w <= 1e-6f)
        return false;
    float inv_w = 1.0f / p.w;
    float ndc_x = p.x * inv_w;
    float ndc_y = p.y * inv_w;
    float ndc_z = p.z * inv_w;
    tri.x[slot] = (ndc_x * 0.5f + 0.5f) * static_cast<float>(fb_.width());
    tri.y[slot] = (0.5f - ndc_y * 0.5f) * static_cast<float>(fb_.height());
    tri.z[slot] = ndc_z * 0.5f + 0.5f;
    tri.invW[slot] = inv_w;
    tri.colorOverW[slot] = v.color * inv_w;
    tri.uvOverW[slot] = {v.uv.x * inv_w, v.uv.y * inv_w};
    return true;
}

void
Pipeline::clipAndEmit(const Vertex& a, const Vertex& b, const Vertex& c,
                      std::vector<ScreenTri>& out) const
{
    // Sutherland-Hodgman against the near plane z + w > 0.
    auto dist = [](const Vertex& v) { return v.position.z + v.position.w; };
    Vertex poly[4];
    int n = 0;
    const Vertex* in[3] = {&a, &b, &c};
    for (int i = 0; i < 3; ++i) {
        const Vertex& cur = *in[i];
        const Vertex& nxt = *in[(i + 1) % 3];
        float dc = dist(cur), dn = dist(nxt);
        if (dc >= 0.0f)
            poly[n++] = cur;
        if ((dc >= 0.0f) != (dn >= 0.0f)) {
            float t = dc / (dc - dn);
            poly[n++] = lerpVertex(cur, nxt, t);
        }
    }
    if (n < 3)
        return;

    for (int i = 1; i + 1 < n; ++i) {
        ScreenTri tri;
        if (!toScreen(poly[0], tri, 0) || !toScreen(poly[i], tri, 1) ||
            !toScreen(poly[i + 1], tri, 2))
            continue;
        float area = edge(tri.x[0], tri.y[0], tri.x[1], tri.y[1], tri.x[2],
                          tri.y[2]);
        if (area == 0.0f)
            continue;
        if (area < 0.0f) {
            // Normalize winding so the edge functions are positive inside.
            std::swap(tri.x[1], tri.x[2]);
            std::swap(tri.y[1], tri.y[2]);
            std::swap(tri.z[1], tri.z[2]);
            std::swap(tri.invW[1], tri.invW[2]);
            std::swap(tri.colorOverW[1], tri.colorOverW[2]);
            std::swap(tri.uvOverW[1], tri.uvOverW[2]);
        }
        tri.minX = std::max(0.0f, std::min({tri.x[0], tri.x[1], tri.x[2]}));
        tri.minY = std::max(0.0f, std::min({tri.y[0], tri.y[1], tri.y[2]}));
        tri.maxX = std::min(static_cast<float>(fb_.width()),
                            std::max({tri.x[0], tri.x[1], tri.x[2]}));
        tri.maxY = std::min(static_cast<float>(fb_.height()),
                            std::max({tri.y[0], tri.y[1], tri.y[2]}));
        if (tri.minX >= tri.maxX || tri.minY >= tri.maxY)
            continue;
        out.push_back(tri);
    }
}

void
Pipeline::drawTriangles(const std::vector<Vertex>& vertices,
                        const std::vector<uint32_t>& indices)
{
    if (indices.size() % 3 != 0)
        fatal("drawTriangles: index count must be a multiple of 3");

    // Geometry stage: clip + screen transform (host side).
    std::vector<ScreenTri> tris;
    tris.reserve(indices.size() / 3);
    for (size_t i = 0; i + 2 < indices.size(); i += 3) {
        clipAndEmit(vertices.at(indices[i]), vertices.at(indices[i + 1]),
                    vertices.at(indices[i + 2]), tris);
    }
    stats_.counter("triangles_in") += indices.size() / 3;
    stats_.counter("triangles_rastered") += tris.size();

    // Tile binning (Larrabee-style): collect triangle refs per tile, then
    // rasterize tile by tile.
    const uint32_t tiles_x = (fb_.width() + tileSize_ - 1) / tileSize_;
    const uint32_t tiles_y = (fb_.height() + tileSize_ - 1) / tileSize_;
    std::vector<std::vector<uint32_t>> bins(
        static_cast<size_t>(tiles_x) * tiles_y);
    for (uint32_t t = 0; t < tris.size(); ++t) {
        const ScreenTri& tri = tris[t];
        uint32_t tx0 = static_cast<uint32_t>(tri.minX) / tileSize_;
        uint32_t ty0 = static_cast<uint32_t>(tri.minY) / tileSize_;
        uint32_t tx1 = std::min(
            tiles_x - 1, static_cast<uint32_t>(tri.maxX) / tileSize_);
        uint32_t ty1 = std::min(
            tiles_y - 1, static_cast<uint32_t>(tri.maxY) / tileSize_);
        for (uint32_t ty = ty0; ty <= ty1; ++ty) {
            for (uint32_t tx = tx0; tx <= tx1; ++tx)
                bins[ty * tiles_x + tx].push_back(t);
        }
    }

    for (uint32_t ty = 0; ty < tiles_y; ++ty) {
        for (uint32_t tx = 0; tx < tiles_x; ++tx) {
            const auto& bin = bins[ty * tiles_x + tx];
            if (bin.empty())
                continue;
            ++stats_.counter("tiles_shaded");
            uint32_t px0 = tx * tileSize_;
            uint32_t py0 = ty * tileSize_;
            uint32_t px1 = std::min(px0 + tileSize_, fb_.width());
            uint32_t py1 = std::min(py0 + tileSize_, fb_.height());
            for (uint32_t t : bin)
                rasterizeTile(tris[t], px0, py0, px1, py1);
        }
    }
}

void
Pipeline::shadePrimFragment(int32_t x, int32_t y, const Vertex& v)
{
    if (x < 0 || y < 0 || x >= static_cast<int32_t>(fb_.width()) ||
        y >= static_cast<int32_t>(fb_.height()))
        return;
    if (v.position.w <= 1e-6f)
        return;
    float inv_w = 1.0f / v.position.w;
    float z = (v.position.z * inv_w) * 0.5f + 0.5f;
    // Reuse the triangle fragment path with degenerate barycentrics: a
    // one-vertex "triangle" whose attributes are the vertex's own.
    ScreenTri tri{};
    tri.invW[0] = inv_w;
    tri.z[0] = z;
    tri.colorOverW[0] = v.color * inv_w;
    tri.uvOverW[0] = {v.uv.x * inv_w, v.uv.y * inv_w};
    shadeFragment(tri, static_cast<uint32_t>(x), static_cast<uint32_t>(y),
                  1.0f, 0.0f, 0.0f);
}

void
Pipeline::drawPoints(const std::vector<Vertex>& vertices, uint32_t size)
{
    for (const Vertex& v : vertices) {
        if (v.position.w <= 1e-6f)
            continue;
        float inv_w = 1.0f / v.position.w;
        float sx = (v.position.x * inv_w * 0.5f + 0.5f) *
                   static_cast<float>(fb_.width());
        float sy = (0.5f - v.position.y * inv_w * 0.5f) *
                   static_cast<float>(fb_.height());
        int32_t x0 = static_cast<int32_t>(sx) -
                     static_cast<int32_t>(size / 2);
        int32_t y0 = static_cast<int32_t>(sy) -
                     static_cast<int32_t>(size / 2);
        for (uint32_t dy = 0; dy < size; ++dy) {
            for (uint32_t dx = 0; dx < size; ++dx)
                shadePrimFragment(x0 + static_cast<int32_t>(dx),
                                  y0 + static_cast<int32_t>(dy), v);
        }
        ++stats_.counter("points");
    }
}

void
Pipeline::drawLines(const std::vector<Vertex>& vertices,
                    const std::vector<uint32_t>& indices)
{
    if (indices.size() % 2 != 0)
        fatal("drawLines: index count must be even");
    for (size_t i = 0; i + 1 < indices.size(); i += 2) {
        Vertex a = vertices.at(indices[i]);
        Vertex b = vertices.at(indices[i + 1]);
        // Near-plane clip of the segment.
        float da = a.position.z + a.position.w;
        float db = b.position.z + b.position.w;
        if (da < 0.0f && db < 0.0f)
            continue;
        if (da < 0.0f)
            a = lerpVertex(a, b, da / (da - db));
        else if (db < 0.0f)
            b = lerpVertex(b, a, db / (db - da));
        if (a.position.w <= 1e-6f || b.position.w <= 1e-6f)
            continue;

        auto toScreenXy = [&](const Vertex& v, float& x, float& y) {
            float inv_w = 1.0f / v.position.w;
            x = (v.position.x * inv_w * 0.5f + 0.5f) *
                static_cast<float>(fb_.width());
            y = (0.5f - v.position.y * inv_w * 0.5f) *
                static_cast<float>(fb_.height());
        };
        float ax, ay, bx, by;
        toScreenXy(a, ax, ay);
        toScreenXy(b, bx, by);
        float dx = bx - ax, dy = by - ay;
        int steps = static_cast<int>(
            std::max(std::abs(dx), std::abs(dy))) + 1;
        for (int s = 0; s <= steps; ++s) {
            float t = static_cast<float>(s) / static_cast<float>(steps);
            // Screen-space DDA; attributes lerped in clip space for
            // perspective correctness via the per-fragment divide.
            Vertex v = lerpVertex(a, b, t);
            shadePrimFragment(
                static_cast<int32_t>(ax + dx * t),
                static_cast<int32_t>(ay + dy * t), v);
        }
        ++stats_.counter("lines");
    }
}

void
Pipeline::rasterizeTile(const ScreenTri& tri, uint32_t px0, uint32_t py0,
                        uint32_t px1, uint32_t py1)
{
    uint32_t x0 = std::max(px0, static_cast<uint32_t>(tri.minX));
    uint32_t y0 = std::max(py0, static_cast<uint32_t>(tri.minY));
    uint32_t x1 = std::min(px1, static_cast<uint32_t>(std::ceil(tri.maxX)));
    uint32_t y1 = std::min(py1, static_cast<uint32_t>(std::ceil(tri.maxY)));

    const float area = edge(tri.x[0], tri.y[0], tri.x[1], tri.y[1],
                            tri.x[2], tri.y[2]);
    const float inv_area = 1.0f / area;

    // Edge acceptance with the top-left fill rule: shared edges between
    // adjacent triangles shade each pixel exactly once.
    const bool tl0 = isTopLeft(tri.x[2] - tri.x[1], tri.y[2] - tri.y[1]);
    const bool tl1 = isTopLeft(tri.x[0] - tri.x[2], tri.y[0] - tri.y[2]);
    const bool tl2 = isTopLeft(tri.x[1] - tri.x[0], tri.y[1] - tri.y[0]);

    for (uint32_t y = y0; y < y1; ++y) {
        float py = static_cast<float>(y) + 0.5f;
        for (uint32_t x = x0; x < x1; ++x) {
            float px = static_cast<float>(x) + 0.5f;
            float e0 = edge(tri.x[1], tri.y[1], tri.x[2], tri.y[2], px, py);
            float e1 = edge(tri.x[2], tri.y[2], tri.x[0], tri.y[0], px, py);
            float e2 = edge(tri.x[0], tri.y[0], tri.x[1], tri.y[1], px, py);
            bool in0 = e0 > 0.0f || (e0 == 0.0f && tl0);
            bool in1 = e1 > 0.0f || (e1 == 0.0f && tl1);
            bool in2 = e2 > 0.0f || (e2 == 0.0f && tl2);
            if (!(in0 && in1 && in2))
                continue;
            shadeFragment(tri, x, y, e0 * inv_area, e1 * inv_area,
                          e2 * inv_area);
        }
    }
}

bool
Pipeline::compare(CompareFunc f, float a, float b)
{
    switch (f) {
      case CompareFunc::Never: return false;
      case CompareFunc::Less: return a < b;
      case CompareFunc::Equal: return a == b;
      case CompareFunc::LEqual: return a <= b;
      case CompareFunc::Greater: return a > b;
      case CompareFunc::NotEqual: return a != b;
      case CompareFunc::GEqual: return a >= b;
      case CompareFunc::Always: return true;
    }
    return true;
}

uint8_t
Pipeline::stencilApply(StencilOp op, uint8_t value, uint8_t ref)
{
    switch (op) {
      case StencilOp::Keep: return value;
      case StencilOp::Zero: return 0;
      case StencilOp::Replace: return ref;
      case StencilOp::Incr:
        return value == 0xFF ? value : static_cast<uint8_t>(value + 1);
      case StencilOp::Decr:
        return value == 0 ? value : static_cast<uint8_t>(value - 1);
      case StencilOp::Invert: return static_cast<uint8_t>(~value);
    }
    return value;
}

void
Pipeline::shadeFragment(const ScreenTri& tri, uint32_t x, uint32_t y,
                        float w0, float w1, float w2)
{
    ++stats_.counter("fragments");

    // Perspective-correct attribute interpolation.
    float inv_w = w0 * tri.invW[0] + w1 * tri.invW[1] + w2 * tri.invW[2];
    float w = 1.0f / inv_w;
    Vec4 color = (tri.colorOverW[0] * w0 + tri.colorOverW[1] * w1 +
                  tri.colorOverW[2] * w2) * w;
    Vec2 uv = {(tri.uvOverW[0].x * w0 + tri.uvOverW[1].x * w1 +
                tri.uvOverW[2].x * w2) * w,
               (tri.uvOverW[0].y * w0 + tri.uvOverW[1].y * w1 +
                tri.uvOverW[2].y * w2) * w};
    float z = w0 * tri.z[0] + w1 * tri.z[1] + w2 * tri.z[2];

    FragmentIn in;
    in.uv = uv;
    in.color = color;
    in.depth = z;
    in.viewW = w;
    Vec4 out = shader_ ? shader_(in) : color;

    // Alpha test.
    if (alpha_.testEnabled && !compare(alpha_.func, out.w, alpha_.ref)) {
        ++stats_.counter("alpha_killed");
        return;
    }

    // Stencil test.
    uint8_t sten = fb_.stencil(x, y);
    if (stencil_.testEnabled) {
        bool pass = compare(stencil_.func,
                            static_cast<float>(stencil_.ref & stencil_.mask),
                            static_cast<float>(sten & stencil_.mask));
        if (!pass) {
            fb_.setStencil(x, y,
                           stencilApply(stencil_.onFail, sten,
                                        stencil_.ref));
            ++stats_.counter("stencil_killed");
            return;
        }
    }

    // Depth test.
    if (depth_.testEnabled) {
        if (!compare(depth_.func, z, fb_.depth(x, y))) {
            if (stencil_.testEnabled)
                fb_.setStencil(x, y,
                               stencilApply(stencil_.onZFail, sten,
                                            stencil_.ref));
            ++stats_.counter("depth_killed");
            return;
        }
    }
    if (stencil_.testEnabled)
        fb_.setStencil(x, y,
                       stencilApply(stencil_.onZPass, sten, stencil_.ref));
    if (depth_.writeEnabled)
        fb_.setDepth(x, y, z);

    // Fog.
    if (fog_.enabled) {
        float d = w;
        float f;
        switch (fog_.mode) {
          case FogState::Mode::Linear:
            f = (fog_.end - d) / (fog_.end - fog_.start);
            break;
          case FogState::Mode::Exp:
            f = std::exp(-fog_.density * d);
            break;
          case FogState::Mode::Exp2:
          default: {
            float e = fog_.density * d;
            f = std::exp(-e * e);
            break;
          }
        }
        f = clamp01(f);
        out.x = fog_.color.x + (out.x - fog_.color.x) * f;
        out.y = fog_.color.y + (out.y - fog_.color.y) * f;
        out.z = fog_.color.z + (out.z - fog_.color.z) * f;
    }

    fb_.setPixel(x, y, packColor(out));
    ++stats_.counter("pixels_written");
}

} // namespace vortex::graphics
