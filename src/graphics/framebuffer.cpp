/**
 * @file
 * Framebuffer implementation.
 */

#include "graphics/framebuffer.h"

#include <cstdio>

#include "common/log.h"

namespace vortex::graphics {

Framebuffer::Framebuffer(uint32_t width, uint32_t height)
    : width_(width),
      height_(height),
      color_(static_cast<size_t>(width) * height, 0),
      depth_(static_cast<size_t>(width) * height, 1.0f),
      stencil_(static_cast<size_t>(width) * height, 0)
{
    if (width == 0 || height == 0)
        fatal("Framebuffer: zero dimension");
}

void
Framebuffer::clear(const tex::Color& color, float depth, uint8_t stencil)
{
    uint32_t packed = color.pack();
    std::fill(color_.begin(), color_.end(), packed);
    std::fill(depth_.begin(), depth_.end(), depth);
    std::fill(stencil_.begin(), stencil_.end(), stencil);
}

void
Framebuffer::writePpm(const std::string& path) const
{
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (!f)
        fatal("cannot open '", path, "' for writing");
    std::fprintf(f, "P6\n%u %u\n255\n", width_, height_);
    for (uint32_t pix : color_) {
        uint8_t rgb[3] = {static_cast<uint8_t>(pix),
                          static_cast<uint8_t>(pix >> 8),
                          static_cast<uint8_t>(pix >> 16)};
        std::fwrite(rgb, 1, 3, f);
    }
    std::fclose(f);
}

} // namespace vortex::graphics
