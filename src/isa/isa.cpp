/**
 * @file
 * Instruction classification tables, decoder, and encoder.
 */

#include "isa/isa.h"

#include <array>

#include "common/bitmanip.h"
#include "common/log.h"

namespace vortex::isa {

namespace {

constexpr size_t kNumKinds = static_cast<size_t>(InstrKind::kCount);

const std::array<InstrInfo, kNumKinds>&
infoTable()
{
    static const std::array<InstrInfo, kNumKinds> table = [] {
        std::array<InstrInfo, kNumKinds> t{};
        auto set = [&](InstrKind k, const char* m, InstrFormat f) {
            t[static_cast<size_t>(k)] = InstrInfo{m, f};
        };
        set(InstrKind::Invalid, "<invalid>", InstrFormat::I);

        set(InstrKind::LUI, "lui", InstrFormat::U);
        set(InstrKind::AUIPC, "auipc", InstrFormat::U);
        set(InstrKind::JAL, "jal", InstrFormat::J);
        set(InstrKind::JALR, "jalr", InstrFormat::I);
        set(InstrKind::BEQ, "beq", InstrFormat::B);
        set(InstrKind::BNE, "bne", InstrFormat::B);
        set(InstrKind::BLT, "blt", InstrFormat::B);
        set(InstrKind::BGE, "bge", InstrFormat::B);
        set(InstrKind::BLTU, "bltu", InstrFormat::B);
        set(InstrKind::BGEU, "bgeu", InstrFormat::B);
        set(InstrKind::LB, "lb", InstrFormat::I);
        set(InstrKind::LH, "lh", InstrFormat::I);
        set(InstrKind::LW, "lw", InstrFormat::I);
        set(InstrKind::LBU, "lbu", InstrFormat::I);
        set(InstrKind::LHU, "lhu", InstrFormat::I);
        set(InstrKind::SB, "sb", InstrFormat::S);
        set(InstrKind::SH, "sh", InstrFormat::S);
        set(InstrKind::SW, "sw", InstrFormat::S);
        set(InstrKind::ADDI, "addi", InstrFormat::I);
        set(InstrKind::SLTI, "slti", InstrFormat::I);
        set(InstrKind::SLTIU, "sltiu", InstrFormat::I);
        set(InstrKind::XORI, "xori", InstrFormat::I);
        set(InstrKind::ORI, "ori", InstrFormat::I);
        set(InstrKind::ANDI, "andi", InstrFormat::I);
        set(InstrKind::SLLI, "slli", InstrFormat::I);
        set(InstrKind::SRLI, "srli", InstrFormat::I);
        set(InstrKind::SRAI, "srai", InstrFormat::I);
        set(InstrKind::ADD, "add", InstrFormat::R);
        set(InstrKind::SUB, "sub", InstrFormat::R);
        set(InstrKind::SLL, "sll", InstrFormat::R);
        set(InstrKind::SLT, "slt", InstrFormat::R);
        set(InstrKind::SLTU, "sltu", InstrFormat::R);
        set(InstrKind::XOR, "xor", InstrFormat::R);
        set(InstrKind::SRL, "srl", InstrFormat::R);
        set(InstrKind::SRA, "sra", InstrFormat::R);
        set(InstrKind::OR, "or", InstrFormat::R);
        set(InstrKind::AND, "and", InstrFormat::R);
        set(InstrKind::FENCE, "fence", InstrFormat::Sys);
        set(InstrKind::ECALL, "ecall", InstrFormat::Sys);
        set(InstrKind::EBREAK, "ebreak", InstrFormat::Sys);

        set(InstrKind::CSRRW, "csrrw", InstrFormat::I);
        set(InstrKind::CSRRS, "csrrs", InstrFormat::I);
        set(InstrKind::CSRRC, "csrrc", InstrFormat::I);
        set(InstrKind::CSRRWI, "csrrwi", InstrFormat::I);
        set(InstrKind::CSRRSI, "csrrsi", InstrFormat::I);
        set(InstrKind::CSRRCI, "csrrci", InstrFormat::I);

        set(InstrKind::MUL, "mul", InstrFormat::R);
        set(InstrKind::MULH, "mulh", InstrFormat::R);
        set(InstrKind::MULHSU, "mulhsu", InstrFormat::R);
        set(InstrKind::MULHU, "mulhu", InstrFormat::R);
        set(InstrKind::DIV, "div", InstrFormat::R);
        set(InstrKind::DIVU, "divu", InstrFormat::R);
        set(InstrKind::REM, "rem", InstrFormat::R);
        set(InstrKind::REMU, "remu", InstrFormat::R);

        set(InstrKind::FLW, "flw", InstrFormat::I);
        set(InstrKind::FSW, "fsw", InstrFormat::S);
        set(InstrKind::FMADD_S, "fmadd.s", InstrFormat::R4);
        set(InstrKind::FMSUB_S, "fmsub.s", InstrFormat::R4);
        set(InstrKind::FNMSUB_S, "fnmsub.s", InstrFormat::R4);
        set(InstrKind::FNMADD_S, "fnmadd.s", InstrFormat::R4);
        set(InstrKind::FADD_S, "fadd.s", InstrFormat::R);
        set(InstrKind::FSUB_S, "fsub.s", InstrFormat::R);
        set(InstrKind::FMUL_S, "fmul.s", InstrFormat::R);
        set(InstrKind::FDIV_S, "fdiv.s", InstrFormat::R);
        set(InstrKind::FSQRT_S, "fsqrt.s", InstrFormat::R);
        set(InstrKind::FSGNJ_S, "fsgnj.s", InstrFormat::R);
        set(InstrKind::FSGNJN_S, "fsgnjn.s", InstrFormat::R);
        set(InstrKind::FSGNJX_S, "fsgnjx.s", InstrFormat::R);
        set(InstrKind::FMIN_S, "fmin.s", InstrFormat::R);
        set(InstrKind::FMAX_S, "fmax.s", InstrFormat::R);
        set(InstrKind::FCVT_W_S, "fcvt.w.s", InstrFormat::R);
        set(InstrKind::FCVT_WU_S, "fcvt.wu.s", InstrFormat::R);
        set(InstrKind::FMV_X_W, "fmv.x.w", InstrFormat::R);
        set(InstrKind::FEQ_S, "feq.s", InstrFormat::R);
        set(InstrKind::FLT_S, "flt.s", InstrFormat::R);
        set(InstrKind::FLE_S, "fle.s", InstrFormat::R);
        set(InstrKind::FCLASS_S, "fclass.s", InstrFormat::R);
        set(InstrKind::FCVT_S_W, "fcvt.s.w", InstrFormat::R);
        set(InstrKind::FCVT_S_WU, "fcvt.s.wu", InstrFormat::R);
        set(InstrKind::FMV_W_X, "fmv.w.x", InstrFormat::R);

        set(InstrKind::VX_TMC, "vx_tmc", InstrFormat::R);
        set(InstrKind::VX_WSPAWN, "vx_wspawn", InstrFormat::R);
        set(InstrKind::VX_SPLIT, "vx_split", InstrFormat::R);
        set(InstrKind::VX_JOIN, "vx_join", InstrFormat::R);
        set(InstrKind::VX_BAR, "vx_bar", InstrFormat::R);
        set(InstrKind::VX_TEX, "vx_tex", InstrFormat::R4);
        return t;
    }();
    return table;
}

} // namespace

const InstrInfo&
instrInfo(InstrKind kind)
{
    return infoTable()[static_cast<size_t>(kind)];
}

//
// Operand classification
//

RegRef
Instr::dst() const
{
    using K = InstrKind;
    switch (kind) {
      case K::BEQ: case K::BNE: case K::BLT: case K::BGE:
      case K::BLTU: case K::BGEU:
      case K::SB: case K::SH: case K::SW: case K::FSW:
      case K::FENCE: case K::ECALL: case K::EBREAK:
      case K::VX_TMC: case K::VX_WSPAWN: case K::VX_SPLIT:
      case K::VX_JOIN: case K::VX_BAR:
      case K::Invalid:
        return {};
      case K::FLW:
      case K::FMADD_S: case K::FMSUB_S: case K::FNMSUB_S: case K::FNMADD_S:
      case K::FADD_S: case K::FSUB_S: case K::FMUL_S: case K::FDIV_S:
      case K::FSQRT_S:
      case K::FSGNJ_S: case K::FSGNJN_S: case K::FSGNJX_S:
      case K::FMIN_S: case K::FMAX_S:
      case K::FCVT_S_W: case K::FCVT_S_WU: case K::FMV_W_X:
        return {RegFile::Fp, rd};
      default:
        return {RegFile::Int, rd};
    }
}

RegRef
Instr::src1() const
{
    using K = InstrKind;
    switch (kind) {
      case K::LUI: case K::AUIPC: case K::JAL:
      case K::FENCE: case K::ECALL: case K::EBREAK:
      case K::CSRRWI: case K::CSRRSI: case K::CSRRCI:
      case K::VX_JOIN:
      case K::Invalid:
        return {};
      case K::FMADD_S: case K::FMSUB_S: case K::FNMSUB_S: case K::FNMADD_S:
      case K::FADD_S: case K::FSUB_S: case K::FMUL_S: case K::FDIV_S:
      case K::FSQRT_S:
      case K::FSGNJ_S: case K::FSGNJN_S: case K::FSGNJX_S:
      case K::FMIN_S: case K::FMAX_S:
      case K::FCVT_W_S: case K::FCVT_WU_S: case K::FMV_X_W:
      case K::FEQ_S: case K::FLT_S: case K::FLE_S: case K::FCLASS_S:
      case K::VX_TEX:
        return {RegFile::Fp, rs1};
      default:
        return {RegFile::Int, rs1};
    }
}

RegRef
Instr::src2() const
{
    using K = InstrKind;
    switch (kind) {
      case K::BEQ: case K::BNE: case K::BLT: case K::BGE:
      case K::BLTU: case K::BGEU:
      case K::SB: case K::SH: case K::SW:
      case K::ADD: case K::SUB: case K::SLL: case K::SLT: case K::SLTU:
      case K::XOR: case K::SRL: case K::SRA: case K::OR: case K::AND:
      case K::MUL: case K::MULH: case K::MULHSU: case K::MULHU:
      case K::DIV: case K::DIVU: case K::REM: case K::REMU:
      case K::VX_WSPAWN: case K::VX_BAR:
        return {RegFile::Int, rs2};
      case K::FSW:
      case K::FMADD_S: case K::FMSUB_S: case K::FNMSUB_S: case K::FNMADD_S:
      case K::FADD_S: case K::FSUB_S: case K::FMUL_S: case K::FDIV_S:
      case K::FSGNJ_S: case K::FSGNJN_S: case K::FSGNJX_S:
      case K::FMIN_S: case K::FMAX_S:
      case K::FEQ_S: case K::FLT_S: case K::FLE_S:
      case K::VX_TEX:
        return {RegFile::Fp, rs2};
      default:
        return {};
    }
}

RegRef
Instr::src3() const
{
    using K = InstrKind;
    switch (kind) {
      case K::FMADD_S: case K::FMSUB_S: case K::FNMSUB_S: case K::FNMADD_S:
      case K::VX_TEX:
        return {RegFile::Fp, rs3};
      default:
        return {};
    }
}

FuType
Instr::fuType() const
{
    using K = InstrKind;
    switch (kind) {
      case K::MUL: case K::MULH: case K::MULHSU: case K::MULHU:
      case K::DIV: case K::DIVU: case K::REM: case K::REMU:
        return FuType::MULDIV;
      case K::FMADD_S: case K::FMSUB_S: case K::FNMSUB_S: case K::FNMADD_S:
      case K::FADD_S: case K::FSUB_S: case K::FMUL_S: case K::FDIV_S:
      case K::FSQRT_S:
      case K::FSGNJ_S: case K::FSGNJN_S: case K::FSGNJX_S:
      case K::FMIN_S: case K::FMAX_S:
      case K::FCVT_W_S: case K::FCVT_WU_S: case K::FMV_X_W:
      case K::FEQ_S: case K::FLT_S: case K::FLE_S: case K::FCLASS_S:
      case K::FCVT_S_W: case K::FCVT_S_WU: case K::FMV_W_X:
        return FuType::FPU;
      case K::LB: case K::LH: case K::LW: case K::LBU: case K::LHU:
      case K::SB: case K::SH: case K::SW:
      case K::FLW: case K::FSW:
        return FuType::LSU;
      case K::FENCE: case K::ECALL: case K::EBREAK:
      case K::CSRRW: case K::CSRRS: case K::CSRRC:
      case K::CSRRWI: case K::CSRRSI: case K::CSRRCI:
      case K::VX_TMC: case K::VX_WSPAWN: case K::VX_SPLIT:
      case K::VX_JOIN: case K::VX_BAR:
        return FuType::SFU;
      case K::VX_TEX:
        return FuType::TEX;
      default:
        return FuType::ALU;
    }
}

bool
Instr::isBranch() const
{
    using K = InstrKind;
    switch (kind) {
      case K::BEQ: case K::BNE: case K::BLT: case K::BGE:
      case K::BLTU: case K::BGEU:
        return true;
      default:
        return false;
    }
}

bool
Instr::isControl() const
{
    using K = InstrKind;
    switch (kind) {
      case K::JAL: case K::JALR:
      case K::VX_TMC: case K::VX_WSPAWN: case K::VX_SPLIT:
      case K::VX_JOIN: case K::VX_BAR:
      case K::ECALL: case K::EBREAK: case K::FENCE:
        return true;
      default:
        return isBranch();
    }
}

bool
Instr::isLoad() const
{
    using K = InstrKind;
    switch (kind) {
      case K::LB: case K::LH: case K::LW: case K::LBU: case K::LHU:
      case K::FLW:
        return true;
      default:
        return false;
    }
}

bool
Instr::isStore() const
{
    using K = InstrKind;
    switch (kind) {
      case K::SB: case K::SH: case K::SW: case K::FSW:
        return true;
      default:
        return false;
    }
}

bool
Instr::isFloatOp() const
{
    return fuType() == FuType::FPU;
}

//
// Decoder
//

namespace {

Instr
makeInvalid(uint32_t raw)
{
    Instr in;
    in.kind = InstrKind::Invalid;
    in.raw = raw;
    return in;
}

int32_t
immI(uint32_t raw)
{
    return sext(bits(raw, 20, 12), 12);
}

int32_t
immS(uint32_t raw)
{
    return sext((bits(raw, 25, 7) << 5) | bits(raw, 7, 5), 12);
}

int32_t
immB(uint32_t raw)
{
    uint32_t v = (bits(raw, 31, 1) << 12) | (bits(raw, 7, 1) << 11) |
                 (bits(raw, 25, 6) << 5) | (bits(raw, 8, 4) << 1);
    return sext(v, 13);
}

int32_t
immU(uint32_t raw)
{
    return static_cast<int32_t>(raw & 0xFFFFF000u);
}

int32_t
immJ(uint32_t raw)
{
    uint32_t v = (bits(raw, 31, 1) << 20) | (bits(raw, 12, 8) << 12) |
                 (bits(raw, 20, 1) << 11) | (bits(raw, 21, 10) << 1);
    return sext(v, 21);
}

} // namespace

Instr
decode(uint32_t raw)
{
    using K = InstrKind;
    Instr in;
    in.raw = raw;
    in.rd = bits(raw, 7, 5);
    in.rs1 = bits(raw, 15, 5);
    in.rs2 = bits(raw, 20, 5);
    in.rs3 = bits(raw, 27, 5);
    const uint32_t opcode = bits(raw, 0, 7);
    const uint32_t f3 = bits(raw, 12, 3);
    const uint32_t f7 = bits(raw, 25, 7);

    switch (opcode) {
      case OPC_LUI:
        in.kind = K::LUI;
        in.imm = immU(raw);
        return in;
      case OPC_AUIPC:
        in.kind = K::AUIPC;
        in.imm = immU(raw);
        return in;
      case OPC_JAL:
        in.kind = K::JAL;
        in.imm = immJ(raw);
        return in;
      case OPC_JALR:
        if (f3 != 0)
            return makeInvalid(raw);
        in.kind = K::JALR;
        in.imm = immI(raw);
        return in;
      case OPC_BRANCH: {
        in.imm = immB(raw);
        switch (f3) {
          case 0: in.kind = K::BEQ; return in;
          case 1: in.kind = K::BNE; return in;
          case 4: in.kind = K::BLT; return in;
          case 5: in.kind = K::BGE; return in;
          case 6: in.kind = K::BLTU; return in;
          case 7: in.kind = K::BGEU; return in;
          default: return makeInvalid(raw);
        }
      }
      case OPC_LOAD: {
        in.imm = immI(raw);
        switch (f3) {
          case 0: in.kind = K::LB; return in;
          case 1: in.kind = K::LH; return in;
          case 2: in.kind = K::LW; return in;
          case 4: in.kind = K::LBU; return in;
          case 5: in.kind = K::LHU; return in;
          default: return makeInvalid(raw);
        }
      }
      case OPC_STORE: {
        in.imm = immS(raw);
        switch (f3) {
          case 0: in.kind = K::SB; return in;
          case 1: in.kind = K::SH; return in;
          case 2: in.kind = K::SW; return in;
          default: return makeInvalid(raw);
        }
      }
      case OPC_OP_IMM: {
        in.imm = immI(raw);
        switch (f3) {
          case 0: in.kind = K::ADDI; return in;
          case 2: in.kind = K::SLTI; return in;
          case 3: in.kind = K::SLTIU; return in;
          case 4: in.kind = K::XORI; return in;
          case 6: in.kind = K::ORI; return in;
          case 7: in.kind = K::ANDI; return in;
          case 1:
            if (f7 != 0)
                return makeInvalid(raw);
            in.kind = K::SLLI;
            in.imm = in.rs2;
            return in;
          case 5:
            if (f7 == 0x00) {
                in.kind = K::SRLI;
                in.imm = in.rs2;
                return in;
            }
            if (f7 == 0x20) {
                in.kind = K::SRAI;
                in.imm = in.rs2;
                return in;
            }
            return makeInvalid(raw);
          default: return makeInvalid(raw);
        }
      }
      case OPC_OP: {
        if (f7 == 0x01) { // RV32M
            switch (f3) {
              case 0: in.kind = K::MUL; return in;
              case 1: in.kind = K::MULH; return in;
              case 2: in.kind = K::MULHSU; return in;
              case 3: in.kind = K::MULHU; return in;
              case 4: in.kind = K::DIV; return in;
              case 5: in.kind = K::DIVU; return in;
              case 6: in.kind = K::REM; return in;
              case 7: in.kind = K::REMU; return in;
            }
            return makeInvalid(raw);
        }
        if (f7 == 0x00) {
            switch (f3) {
              case 0: in.kind = K::ADD; return in;
              case 1: in.kind = K::SLL; return in;
              case 2: in.kind = K::SLT; return in;
              case 3: in.kind = K::SLTU; return in;
              case 4: in.kind = K::XOR; return in;
              case 5: in.kind = K::SRL; return in;
              case 6: in.kind = K::OR; return in;
              case 7: in.kind = K::AND; return in;
            }
            return makeInvalid(raw);
        }
        if (f7 == 0x20) {
            switch (f3) {
              case 0: in.kind = K::SUB; return in;
              case 5: in.kind = K::SRA; return in;
              default: return makeInvalid(raw);
            }
        }
        return makeInvalid(raw);
      }
      case OPC_MISC_MEM:
        if (f3 == 0) {
            in.kind = K::FENCE;
            return in;
        }
        return makeInvalid(raw);
      case OPC_SYSTEM: {
        if (f3 == 0) {
            uint32_t imm12 = bits(raw, 20, 12);
            if (imm12 == 0 && in.rs1 == 0 && in.rd == 0) {
                in.kind = K::ECALL;
                return in;
            }
            if (imm12 == 1 && in.rs1 == 0 && in.rd == 0) {
                in.kind = K::EBREAK;
                return in;
            }
            return makeInvalid(raw);
        }
        in.csr = bits(raw, 20, 12);
        switch (f3) {
          case 1: in.kind = K::CSRRW; return in;
          case 2: in.kind = K::CSRRS; return in;
          case 3: in.kind = K::CSRRC; return in;
          case 5: in.kind = K::CSRRWI; in.imm = in.rs1; return in;
          case 6: in.kind = K::CSRRSI; in.imm = in.rs1; return in;
          case 7: in.kind = K::CSRRCI; in.imm = in.rs1; return in;
          default: return makeInvalid(raw);
        }
      }
      case OPC_LOAD_FP:
        if (f3 != 2)
            return makeInvalid(raw);
        in.kind = K::FLW;
        in.imm = immI(raw);
        return in;
      case OPC_STORE_FP:
        if (f3 != 2)
            return makeInvalid(raw);
        in.kind = K::FSW;
        in.imm = immS(raw);
        return in;
      case OPC_MADD: in.kind = K::FMADD_S; return in;
      case OPC_MSUB: in.kind = K::FMSUB_S; return in;
      case OPC_NMSUB: in.kind = K::FNMSUB_S; return in;
      case OPC_NMADD: in.kind = K::FNMADD_S; return in;
      case OPC_OP_FP: {
        switch (f7) {
          case 0x00: in.kind = K::FADD_S; return in;
          case 0x04: in.kind = K::FSUB_S; return in;
          case 0x08: in.kind = K::FMUL_S; return in;
          case 0x0C: in.kind = K::FDIV_S; return in;
          case 0x2C:
            if (in.rs2 != 0)
                return makeInvalid(raw);
            in.kind = K::FSQRT_S;
            return in;
          case 0x10:
            switch (f3) {
              case 0: in.kind = K::FSGNJ_S; return in;
              case 1: in.kind = K::FSGNJN_S; return in;
              case 2: in.kind = K::FSGNJX_S; return in;
              default: return makeInvalid(raw);
            }
          case 0x14:
            switch (f3) {
              case 0: in.kind = K::FMIN_S; return in;
              case 1: in.kind = K::FMAX_S; return in;
              default: return makeInvalid(raw);
            }
          case 0x60:
            if (in.rs2 == 0) {
                in.kind = K::FCVT_W_S;
                return in;
            }
            if (in.rs2 == 1) {
                in.kind = K::FCVT_WU_S;
                return in;
            }
            return makeInvalid(raw);
          case 0x70:
            if (f3 == 0) {
                in.kind = K::FMV_X_W;
                return in;
            }
            if (f3 == 1) {
                in.kind = K::FCLASS_S;
                return in;
            }
            return makeInvalid(raw);
          case 0x50:
            switch (f3) {
              case 0: in.kind = K::FLE_S; return in;
              case 1: in.kind = K::FLT_S; return in;
              case 2: in.kind = K::FEQ_S; return in;
              default: return makeInvalid(raw);
            }
          case 0x68:
            if (in.rs2 == 0) {
                in.kind = K::FCVT_S_W;
                return in;
            }
            if (in.rs2 == 1) {
                in.kind = K::FCVT_S_WU;
                return in;
            }
            return makeInvalid(raw);
          case 0x78:
            if (f3 == 0) {
                in.kind = K::FMV_W_X;
                return in;
            }
            return makeInvalid(raw);
          default:
            return makeInvalid(raw);
        }
      }
      case OPC_VORTEX: {
        switch (f7) {
          case VXF_TMC: in.kind = K::VX_TMC; return in;
          case VXF_WSPAWN: in.kind = K::VX_WSPAWN; return in;
          case VXF_SPLIT: in.kind = K::VX_SPLIT; return in;
          case VXF_JOIN: in.kind = K::VX_JOIN; return in;
          case VXF_BAR: in.kind = K::VX_BAR; return in;
          default: return makeInvalid(raw);
        }
      }
      case OPC_TEX:
        in.kind = K::VX_TEX;
        return in;
      default:
        return makeInvalid(raw);
    }
}

//
// Encoder
//

namespace {

uint32_t
encodeR(uint32_t opcode, uint32_t f3, uint32_t f7, RegId rd, RegId rs1,
        RegId rs2)
{
    return (f7 << 25) | (rs2 << 20) | (rs1 << 15) | (f3 << 12) | (rd << 7) |
           opcode;
}

uint32_t
encodeI(uint32_t opcode, uint32_t f3, RegId rd, RegId rs1, int32_t imm)
{
    if (imm < -2048 || imm > 2047)
        panic("I-immediate out of range: ", imm);
    return (static_cast<uint32_t>(imm & 0xFFF) << 20) | (rs1 << 15) |
           (f3 << 12) | (rd << 7) | opcode;
}

uint32_t
encodeS(uint32_t opcode, uint32_t f3, RegId rs1, RegId rs2, int32_t imm)
{
    if (imm < -2048 || imm > 2047)
        panic("S-immediate out of range: ", imm);
    uint32_t u = static_cast<uint32_t>(imm & 0xFFF);
    return (bits(u, 5, 7) << 25) | (rs2 << 20) | (rs1 << 15) | (f3 << 12) |
           (bits(u, 0, 5) << 7) | opcode;
}

uint32_t
encodeB(uint32_t opcode, uint32_t f3, RegId rs1, RegId rs2, int32_t imm)
{
    if (imm < -4096 || imm > 4095 || (imm & 1))
        panic("B-immediate out of range or misaligned: ", imm);
    uint32_t u = static_cast<uint32_t>(imm);
    return (bits(u, 12, 1) << 31) | (bits(u, 5, 6) << 25) | (rs2 << 20) |
           (rs1 << 15) | (f3 << 12) | (bits(u, 1, 4) << 8) |
           (bits(u, 11, 1) << 7) | opcode;
}

uint32_t
encodeU(uint32_t opcode, RegId rd, int32_t imm)
{
    if ((imm & 0xFFF) != 0)
        panic("U-immediate has low bits set: ", imm);
    return static_cast<uint32_t>(imm) | (rd << 7) | opcode;
}

uint32_t
encodeJ(uint32_t opcode, RegId rd, int32_t imm)
{
    if (imm < -(1 << 20) || imm >= (1 << 20) || (imm & 1))
        panic("J-immediate out of range or misaligned: ", imm);
    uint32_t u = static_cast<uint32_t>(imm);
    return (bits(u, 20, 1) << 31) | (bits(u, 1, 10) << 21) |
           (bits(u, 11, 1) << 20) | (bits(u, 12, 8) << 12) | (rd << 7) |
           opcode;
}

uint32_t
encodeR4(uint32_t opcode, uint32_t f3, uint32_t f2, RegId rd, RegId rs1,
         RegId rs2, RegId rs3)
{
    return (rs3 << 27) | (f2 << 25) | (rs2 << 20) | (rs1 << 15) |
           (f3 << 12) | (rd << 7) | opcode;
}

uint32_t
encodeCsr(uint32_t f3, RegId rd, uint32_t rs1OrZimm, uint32_t csr)
{
    if (csr > 0xFFF)
        panic("CSR address out of range: ", csr);
    return (csr << 20) | (rs1OrZimm << 15) | (f3 << 12) | (rd << 7) |
           OPC_SYSTEM;
}

} // namespace

uint32_t
encode(const Instr& in)
{
    using K = InstrKind;
    switch (in.kind) {
      case K::LUI: return encodeU(OPC_LUI, in.rd, in.imm);
      case K::AUIPC: return encodeU(OPC_AUIPC, in.rd, in.imm);
      case K::JAL: return encodeJ(OPC_JAL, in.rd, in.imm);
      case K::JALR: return encodeI(OPC_JALR, 0, in.rd, in.rs1, in.imm);
      case K::BEQ: return encodeB(OPC_BRANCH, 0, in.rs1, in.rs2, in.imm);
      case K::BNE: return encodeB(OPC_BRANCH, 1, in.rs1, in.rs2, in.imm);
      case K::BLT: return encodeB(OPC_BRANCH, 4, in.rs1, in.rs2, in.imm);
      case K::BGE: return encodeB(OPC_BRANCH, 5, in.rs1, in.rs2, in.imm);
      case K::BLTU: return encodeB(OPC_BRANCH, 6, in.rs1, in.rs2, in.imm);
      case K::BGEU: return encodeB(OPC_BRANCH, 7, in.rs1, in.rs2, in.imm);
      case K::LB: return encodeI(OPC_LOAD, 0, in.rd, in.rs1, in.imm);
      case K::LH: return encodeI(OPC_LOAD, 1, in.rd, in.rs1, in.imm);
      case K::LW: return encodeI(OPC_LOAD, 2, in.rd, in.rs1, in.imm);
      case K::LBU: return encodeI(OPC_LOAD, 4, in.rd, in.rs1, in.imm);
      case K::LHU: return encodeI(OPC_LOAD, 5, in.rd, in.rs1, in.imm);
      case K::SB: return encodeS(OPC_STORE, 0, in.rs1, in.rs2, in.imm);
      case K::SH: return encodeS(OPC_STORE, 1, in.rs1, in.rs2, in.imm);
      case K::SW: return encodeS(OPC_STORE, 2, in.rs1, in.rs2, in.imm);
      case K::ADDI: return encodeI(OPC_OP_IMM, 0, in.rd, in.rs1, in.imm);
      case K::SLTI: return encodeI(OPC_OP_IMM, 2, in.rd, in.rs1, in.imm);
      case K::SLTIU: return encodeI(OPC_OP_IMM, 3, in.rd, in.rs1, in.imm);
      case K::XORI: return encodeI(OPC_OP_IMM, 4, in.rd, in.rs1, in.imm);
      case K::ORI: return encodeI(OPC_OP_IMM, 6, in.rd, in.rs1, in.imm);
      case K::ANDI: return encodeI(OPC_OP_IMM, 7, in.rd, in.rs1, in.imm);
      case K::SLLI:
        if (in.imm < 0 || in.imm > 31)
            panic("shift amount out of range: ", in.imm);
        return encodeR(OPC_OP_IMM, 1, 0, in.rd, in.rs1, in.imm);
      case K::SRLI:
        if (in.imm < 0 || in.imm > 31)
            panic("shift amount out of range: ", in.imm);
        return encodeR(OPC_OP_IMM, 5, 0, in.rd, in.rs1, in.imm);
      case K::SRAI:
        if (in.imm < 0 || in.imm > 31)
            panic("shift amount out of range: ", in.imm);
        return encodeR(OPC_OP_IMM, 5, 0x20, in.rd, in.rs1, in.imm);
      case K::ADD: return encodeR(OPC_OP, 0, 0, in.rd, in.rs1, in.rs2);
      case K::SUB: return encodeR(OPC_OP, 0, 0x20, in.rd, in.rs1, in.rs2);
      case K::SLL: return encodeR(OPC_OP, 1, 0, in.rd, in.rs1, in.rs2);
      case K::SLT: return encodeR(OPC_OP, 2, 0, in.rd, in.rs1, in.rs2);
      case K::SLTU: return encodeR(OPC_OP, 3, 0, in.rd, in.rs1, in.rs2);
      case K::XOR: return encodeR(OPC_OP, 4, 0, in.rd, in.rs1, in.rs2);
      case K::SRL: return encodeR(OPC_OP, 5, 0, in.rd, in.rs1, in.rs2);
      case K::SRA: return encodeR(OPC_OP, 5, 0x20, in.rd, in.rs1, in.rs2);
      case K::OR: return encodeR(OPC_OP, 6, 0, in.rd, in.rs1, in.rs2);
      case K::AND: return encodeR(OPC_OP, 7, 0, in.rd, in.rs1, in.rs2);
      case K::FENCE: return 0x0000000F;
      case K::ECALL: return 0x00000073;
      case K::EBREAK: return 0x00100073;
      case K::CSRRW: return encodeCsr(1, in.rd, in.rs1, in.csr);
      case K::CSRRS: return encodeCsr(2, in.rd, in.rs1, in.csr);
      case K::CSRRC: return encodeCsr(3, in.rd, in.rs1, in.csr);
      case K::CSRRWI: return encodeCsr(5, in.rd, in.imm & 0x1F, in.csr);
      case K::CSRRSI: return encodeCsr(6, in.rd, in.imm & 0x1F, in.csr);
      case K::CSRRCI: return encodeCsr(7, in.rd, in.imm & 0x1F, in.csr);
      case K::MUL: return encodeR(OPC_OP, 0, 1, in.rd, in.rs1, in.rs2);
      case K::MULH: return encodeR(OPC_OP, 1, 1, in.rd, in.rs1, in.rs2);
      case K::MULHSU: return encodeR(OPC_OP, 2, 1, in.rd, in.rs1, in.rs2);
      case K::MULHU: return encodeR(OPC_OP, 3, 1, in.rd, in.rs1, in.rs2);
      case K::DIV: return encodeR(OPC_OP, 4, 1, in.rd, in.rs1, in.rs2);
      case K::DIVU: return encodeR(OPC_OP, 5, 1, in.rd, in.rs1, in.rs2);
      case K::REM: return encodeR(OPC_OP, 6, 1, in.rd, in.rs1, in.rs2);
      case K::REMU: return encodeR(OPC_OP, 7, 1, in.rd, in.rs1, in.rs2);
      case K::FLW: return encodeI(OPC_LOAD_FP, 2, in.rd, in.rs1, in.imm);
      case K::FSW: return encodeS(OPC_STORE_FP, 2, in.rs1, in.rs2, in.imm);
      case K::FMADD_S:
        return encodeR4(OPC_MADD, 0, 0, in.rd, in.rs1, in.rs2, in.rs3);
      case K::FMSUB_S:
        return encodeR4(OPC_MSUB, 0, 0, in.rd, in.rs1, in.rs2, in.rs3);
      case K::FNMSUB_S:
        return encodeR4(OPC_NMSUB, 0, 0, in.rd, in.rs1, in.rs2, in.rs3);
      case K::FNMADD_S:
        return encodeR4(OPC_NMADD, 0, 0, in.rd, in.rs1, in.rs2, in.rs3);
      case K::FADD_S: return encodeR(OPC_OP_FP, 0, 0x00, in.rd, in.rs1, in.rs2);
      case K::FSUB_S: return encodeR(OPC_OP_FP, 0, 0x04, in.rd, in.rs1, in.rs2);
      case K::FMUL_S: return encodeR(OPC_OP_FP, 0, 0x08, in.rd, in.rs1, in.rs2);
      case K::FDIV_S: return encodeR(OPC_OP_FP, 0, 0x0C, in.rd, in.rs1, in.rs2);
      case K::FSQRT_S: return encodeR(OPC_OP_FP, 0, 0x2C, in.rd, in.rs1, 0);
      case K::FSGNJ_S:
        return encodeR(OPC_OP_FP, 0, 0x10, in.rd, in.rs1, in.rs2);
      case K::FSGNJN_S:
        return encodeR(OPC_OP_FP, 1, 0x10, in.rd, in.rs1, in.rs2);
      case K::FSGNJX_S:
        return encodeR(OPC_OP_FP, 2, 0x10, in.rd, in.rs1, in.rs2);
      case K::FMIN_S: return encodeR(OPC_OP_FP, 0, 0x14, in.rd, in.rs1, in.rs2);
      case K::FMAX_S: return encodeR(OPC_OP_FP, 1, 0x14, in.rd, in.rs1, in.rs2);
      case K::FCVT_W_S: return encodeR(OPC_OP_FP, 0, 0x60, in.rd, in.rs1, 0);
      case K::FCVT_WU_S: return encodeR(OPC_OP_FP, 0, 0x60, in.rd, in.rs1, 1);
      case K::FMV_X_W: return encodeR(OPC_OP_FP, 0, 0x70, in.rd, in.rs1, 0);
      case K::FEQ_S: return encodeR(OPC_OP_FP, 2, 0x50, in.rd, in.rs1, in.rs2);
      case K::FLT_S: return encodeR(OPC_OP_FP, 1, 0x50, in.rd, in.rs1, in.rs2);
      case K::FLE_S: return encodeR(OPC_OP_FP, 0, 0x50, in.rd, in.rs1, in.rs2);
      case K::FCLASS_S: return encodeR(OPC_OP_FP, 1, 0x70, in.rd, in.rs1, 0);
      case K::FCVT_S_W: return encodeR(OPC_OP_FP, 0, 0x68, in.rd, in.rs1, 0);
      case K::FCVT_S_WU: return encodeR(OPC_OP_FP, 0, 0x68, in.rd, in.rs1, 1);
      case K::FMV_W_X: return encodeR(OPC_OP_FP, 0, 0x78, in.rd, in.rs1, 0);
      case K::VX_TMC:
        return encodeR(OPC_VORTEX, 0, VXF_TMC, 0, in.rs1, 0);
      case K::VX_WSPAWN:
        return encodeR(OPC_VORTEX, 0, VXF_WSPAWN, 0, in.rs1, in.rs2);
      case K::VX_SPLIT:
        return encodeR(OPC_VORTEX, 0, VXF_SPLIT, 0, in.rs1, 0);
      case K::VX_JOIN:
        return encodeR(OPC_VORTEX, 0, VXF_JOIN, 0, 0, 0);
      case K::VX_BAR:
        return encodeR(OPC_VORTEX, 0, VXF_BAR, 0, in.rs1, in.rs2);
      case K::VX_TEX:
        return encodeR4(OPC_TEX, 0, 0, in.rd, in.rs1, in.rs2, in.rs3);
      default:
        panic("encode: invalid instruction kind");
    }
}

} // namespace vortex::isa
