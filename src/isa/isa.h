/**
 * @file
 * Instruction-set definition for the simulated Vortex processor:
 * RV32IMF + Zicsr + the six-instruction Vortex extension of Table 2
 * (wspawn, tmc, split, join, bar, tex).
 *
 * The Vortex instructions are R-type encodings in the custom-0 opcode
 * (0x0B), distinguished by funct7, except `tex` which follows the R4 format
 * (like the FMA group, paper §3.2) in the custom-1 opcode (0x2B).
 */

#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"

namespace vortex::isa {

/** Base RISC-V major opcodes used by the decoder. */
enum MajorOpcode : uint32_t
{
    OPC_LOAD = 0x03,
    OPC_LOAD_FP = 0x07,
    OPC_VORTEX = 0x0B, ///< custom-0: wspawn/tmc/split/join/bar
    OPC_MISC_MEM = 0x0F,
    OPC_OP_IMM = 0x13,
    OPC_AUIPC = 0x17,
    OPC_STORE = 0x23,
    OPC_STORE_FP = 0x27,
    OPC_TEX = 0x2B, ///< custom-1: tex (R4 format)
    OPC_OP = 0x33,
    OPC_LUI = 0x37,
    OPC_MADD = 0x43,
    OPC_MSUB = 0x47,
    OPC_NMSUB = 0x4B,
    OPC_NMADD = 0x4F,
    OPC_OP_FP = 0x53,
    OPC_BRANCH = 0x63,
    OPC_JALR = 0x67,
    OPC_JAL = 0x6F,
    OPC_SYSTEM = 0x73,
};

/** funct7 minor codes inside OPC_VORTEX. */
enum VortexFunct7 : uint32_t
{
    VXF_TMC = 0,
    VXF_WSPAWN = 1,
    VXF_SPLIT = 2,
    VXF_JOIN = 3,
    VXF_BAR = 4,
};

/** Every instruction the simulator implements. */
enum class InstrKind : uint16_t
{
    Invalid = 0,

    // RV32I
    LUI, AUIPC, JAL, JALR,
    BEQ, BNE, BLT, BGE, BLTU, BGEU,
    LB, LH, LW, LBU, LHU,
    SB, SH, SW,
    ADDI, SLTI, SLTIU, XORI, ORI, ANDI, SLLI, SRLI, SRAI,
    ADD, SUB, SLL, SLT, SLTU, XOR, SRL, SRA, OR, AND,
    FENCE, ECALL, EBREAK,

    // Zicsr
    CSRRW, CSRRS, CSRRC, CSRRWI, CSRRSI, CSRRCI,

    // RV32M
    MUL, MULH, MULHSU, MULHU, DIV, DIVU, REM, REMU,

    // RV32F
    FLW, FSW,
    FMADD_S, FMSUB_S, FNMSUB_S, FNMADD_S,
    FADD_S, FSUB_S, FMUL_S, FDIV_S, FSQRT_S,
    FSGNJ_S, FSGNJN_S, FSGNJX_S,
    FMIN_S, FMAX_S,
    FCVT_W_S, FCVT_WU_S, FMV_X_W,
    FEQ_S, FLT_S, FLE_S, FCLASS_S,
    FCVT_S_W, FCVT_S_WU, FMV_W_X,

    // Vortex extension (Table 2)
    VX_TMC,    ///< tmc %numT       : thread mask control
    VX_WSPAWN, ///< wspawn %numW,%PC: wavefront activation
    VX_SPLIT,  ///< split %pred     : control-flow divergence
    VX_JOIN,   ///< join            : control-flow reconvergence
    VX_BAR,    ///< bar %id,%numW   : wavefront barrier
    VX_TEX,    ///< tex %dst,%u,%v,%lod : texture sampling

    kCount
};

/** Encoding format of an instruction. */
enum class InstrFormat : uint8_t
{
    R, I, S, B, U, J, R4, Sys
};

/** Functional unit an instruction dispatches to (paper Fig. 4). */
enum class FuType : uint8_t
{
    ALU,    ///< integer ALU incl. branches/jumps
    MULDIV, ///< integer multiplier / iterative divider
    FPU,    ///< floating-point unit (DSP blocks on FPGA)
    LSU,    ///< load/store unit -> D-cache / shared memory
    SFU,    ///< CSR, fence, and Vortex control instructions
    TEX,    ///< texture unit
};

/** Which register file an operand lives in. */
enum class RegFile : uint8_t { None, Int, Fp };

/** A register reference: file + index. */
struct RegRef
{
    RegFile file = RegFile::None;
    RegId idx = 0;

    bool valid() const { return file != RegFile::None; }
    /** Writes to x0 are architectural no-ops. */
    bool
    isWrite() const
    {
        return file == RegFile::Fp || (file == RegFile::Int && idx != 0);
    }
    bool
    operator==(const RegRef& o) const
    {
        return file == o.file && idx == o.idx;
    }
};

/** A decoded instruction. */
struct Instr
{
    InstrKind kind = InstrKind::Invalid;
    RegId rd = 0;
    RegId rs1 = 0;
    RegId rs2 = 0;
    RegId rs3 = 0;
    int32_t imm = 0;  ///< sign-extended immediate (U-type: already shifted)
    uint32_t csr = 0; ///< CSR address for Zicsr instructions
    uint32_t raw = 0; ///< original encoding

    bool valid() const { return kind != InstrKind::Invalid; }

    /** Destination register (RegFile::None if this kind writes nothing). */
    RegRef dst() const;
    /** Source registers; invalid RegRefs for unused slots. */
    RegRef src1() const;
    RegRef src2() const;
    RegRef src3() const;

    /** Dispatch target. */
    FuType fuType() const;

    /** True for instructions that may change the control flow or the
     *  thread/warp state, which stall the fetch of their warp (§4.2). */
    bool isControl() const;
    bool isBranch() const; ///< conditional branch
    bool isLoad() const;
    bool isStore() const;
    bool isFloatOp() const; ///< executes on the FPU
};

/** Static per-kind properties. */
struct InstrInfo
{
    const char* mnemonic;
    InstrFormat format;
};

/** Lookup table indexed by InstrKind. */
const InstrInfo& instrInfo(InstrKind kind);

/** Decode a raw 32-bit instruction word. Invalid encodings decode to an
 *  Instr with kind == InstrKind::Invalid. */
Instr decode(uint32_t raw);

/** Encode a decoded instruction back into its 32-bit word.
 *  Panics on malformed operands (e.g. immediate out of range). */
uint32_t encode(const Instr& instr);

/** Render a decoded instruction as assembly text (for tracing/tests). */
std::string disassemble(const Instr& instr);

/** ABI names: x-registers ("zero", "ra", ...) and f-registers ("ft0", ...). */
const char* intRegName(RegId r);
const char* fpRegName(RegId r);

} // namespace vortex::isa
