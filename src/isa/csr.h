/**
 * @file
 * Control & status register numbering for the simulated Vortex machine
 * (paper §3.2, §4.2.2: thread mask and texture state live in CSR space).
 * Numbers follow the Vortex convention: machine-information CSRs in the
 * read-only user space (0xCC0+, 0xFC0+), texture-unit state in 0x7C0+.
 */

#pragma once

#include <cstdint>

namespace vortex::isa {

enum Csr : uint32_t
{
    // Standard RISC-V user counters.
    CSR_CYCLE = 0xC00,
    CSR_CYCLEH = 0xC80,
    CSR_INSTRET = 0xC02,
    CSR_INSTRETH = 0xC82,

    // SIMT identification (per-thread values where it matters).
    CSR_THREAD_ID = 0xCC0, ///< thread index within the wavefront
    CSR_WARP_ID = 0xCC1,   ///< wavefront index within the core
    CSR_CORE_ID = 0xCC2,   ///< core index within the processor
    CSR_WARP_MASK = 0xCC3, ///< active wavefront mask of this core
    CSR_THREAD_MASK = 0xCC4, ///< current thread mask of this wavefront

    // Machine configuration (uniform).
    CSR_NUM_THREADS = 0xFC0, ///< threads per wavefront
    CSR_NUM_WARPS = 0xFC1,   ///< wavefronts per core
    CSR_NUM_CORES = 0xFC2,   ///< cores in the processor

    // Texture-unit state (paper Fig. 13). Each texture stage owns a window
    // of CSR_TEX_STRIDE registers starting at CSR_TEX_BASE.
    CSR_TEX_STAGE = 0x7BF, ///< stage selector used by subsequent `tex` ops
    CSR_TEX_BASE = 0x7C0,
    CSR_TEX_STRIDE = 8,

    // Offsets within a texture stage window.
    TEX_STATE_ADDR = 0,   ///< base byte address of mip level 0
    TEX_STATE_MIPOFF = 1, ///< packed mip-offset table pointer (byte address)
    TEX_STATE_WIDTH = 2,  ///< log2 width of mip level 0
    TEX_STATE_HEIGHT = 3, ///< log2 height of mip level 0
    TEX_STATE_FORMAT = 4, ///< tex::Format
    TEX_STATE_WRAP = 5,   ///< tex::Wrap (u in [1:0], v in [3:2])
    TEX_STATE_FILTER = 6, ///< tex::Filter
    TEX_STATE_LODS = 7,   ///< number of mip levels present
};

/** Number of texture stages addressable via CSRs. */
constexpr uint32_t kNumTexStages = 2;

/** CSR address of field @p state of texture stage @p stage. */
constexpr uint32_t
texCsrAddr(uint32_t stage, uint32_t state)
{
    return CSR_TEX_BASE + stage * CSR_TEX_STRIDE + state;
}

} // namespace vortex::isa
