/**
 * @file
 * Two-pass assembler implementation.
 */

#include "isa/assembler.h"

#include <cctype>
#include <cstring>
#include <optional>
#include <sstream>

#include "common/bitmanip.h"
#include "common/log.h"
#include "isa/isa.h"

namespace vortex::isa {

Addr
Program::symbol(const std::string& name) const
{
    auto it = symbols.find(name);
    if (it == symbols.end())
        fatal("undefined symbol '", name, "'");
    return it->second;
}

namespace {

//
// Lexical helpers
//

std::string
trim(const std::string& s)
{
    size_t b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    size_t e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

std::string
lower(std::string s)
{
    for (char& c : s)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return s;
}

/** Strip comments: #, //, and ; (outside of string literals). */
std::string
stripComment(const std::string& line)
{
    bool in_str = false;
    for (size_t i = 0; i < line.size(); ++i) {
        char c = line[i];
        if (c == '"' && (i == 0 || line[i - 1] != '\\'))
            in_str = !in_str;
        if (in_str)
            continue;
        if (c == '#' || c == ';')
            return line.substr(0, i);
        if (c == '/' && i + 1 < line.size() && line[i + 1] == '/')
            return line.substr(0, i);
    }
    return line;
}

/** Split operands on top-level commas (parentheses kept intact). */
std::vector<std::string>
splitOperands(const std::string& s)
{
    std::vector<std::string> out;
    int depth = 0;
    bool in_str = false;
    std::string cur;
    for (char c : s) {
        if (c == '"')
            in_str = !in_str;
        if (!in_str) {
            if (c == '(')
                ++depth;
            else if (c == ')')
                --depth;
            else if (c == ',' && depth == 0) {
                out.push_back(trim(cur));
                cur.clear();
                continue;
            }
        }
        cur.push_back(c);
    }
    std::string last = trim(cur);
    if (!last.empty())
        out.push_back(last);
    return out;
}

//
// Register name parsing
//

std::optional<RegId>
parseIntReg(const std::string& name)
{
    static const std::map<std::string, RegId> abi = [] {
        std::map<std::string, RegId> m;
        for (RegId i = 0; i < 32; ++i) {
            m["x" + std::to_string(i)] = i;
            m[intRegName(i)] = i;
        }
        m["fp"] = 8; // frame-pointer alias for s0
        return m;
    }();
    auto it = abi.find(lower(name));
    if (it == abi.end())
        return std::nullopt;
    return it->second;
}

std::optional<RegId>
parseFpReg(const std::string& name)
{
    static const std::map<std::string, RegId> abi = [] {
        std::map<std::string, RegId> m;
        for (RegId i = 0; i < 32; ++i) {
            m["f" + std::to_string(i)] = i;
            m[fpRegName(i)] = i;
        }
        return m;
    }();
    auto it = abi.find(lower(name));
    if (it == abi.end())
        return std::nullopt;
    return it->second;
}

//
// Statement representation
//

enum class StmtType { Instruction, Directive };

struct Stmt
{
    StmtType type;
    std::string head;              ///< lower-cased mnemonic or directive
    std::vector<std::string> args; ///< raw operand strings
    int line = 0;
    Addr addr = 0;   ///< assigned in pass 1
    size_t size = 0; ///< byte size, assigned in pass 1
};

//
// The assembler engine
//

class Engine
{
  public:
    explicit Engine(Addr base) : base_(base) {}

    Program
    run(const std::string& source)
    {
        parse(source);
        layout();
        emit();
        Program p;
        p.base = base_;
        p.entry = base_;
        p.image = std::move(image_);
        p.symbols = std::move(symbols_);
        return p;
    }

  private:
    [[noreturn]] void
    err(int line, const std::string& msg) const
    {
        fatal("asm line ", line, ": ", msg);
    }

    //
    // Pass 0: parse lines into statements; record .equ constants eagerly so
    // pass-1 sizing of `li` can see them.
    //

    void
    parse(const std::string& source)
    {
        std::istringstream is(source);
        std::string raw;
        int lineno = 0;
        while (std::getline(is, raw)) {
            ++lineno;
            std::string line = trim(stripComment(raw));
            // Peel leading labels ("name:"), possibly several.
            while (true) {
                size_t colon = line.find(':');
                if (colon == std::string::npos)
                    break;
                std::string head = trim(line.substr(0, colon));
                if (head.empty() || head.find_first_of(" \t(\"") !=
                        std::string::npos)
                    break;
                labelsAt_.push_back({head, static_cast<int>(stmts_.size()),
                                     lineno});
                line = trim(line.substr(colon + 1));
            }
            if (line.empty())
                continue;

            Stmt st;
            st.line = lineno;
            size_t sp = line.find_first_of(" \t");
            st.head = lower(sp == std::string::npos ? line
                                                    : line.substr(0, sp));
            std::string rest =
                sp == std::string::npos ? "" : trim(line.substr(sp + 1));
            st.args = splitOperands(rest);
            st.type = st.head[0] == '.' ? StmtType::Directive
                                        : StmtType::Instruction;
            if (st.type == StmtType::Directive && st.head == ".equ") {
                if (st.args.size() != 2)
                    err(lineno, ".equ needs <name>, <value>");
                equs_[st.args[0]] = evalConst(st.args[1], lineno);
                continue; // consumed immediately; emits nothing
            }
            stmts_.push_back(std::move(st));
        }
        // Labels pointing past the last statement attach to the end address.
    }

    //
    // Expression evaluation. `allowSymbols` controls whether labels may be
    // referenced (pass 2) or only literals / .equ constants (pass 1).
    //

    std::optional<int64_t>
    tryParseLiteral(const std::string& tok) const
    {
        std::string t = trim(tok);
        if (t.empty())
            return std::nullopt;
        bool neg = false;
        size_t i = 0;
        if (t[0] == '-' || t[0] == '+') {
            neg = t[0] == '-';
            i = 1;
        }
        if (i >= t.size())
            return std::nullopt;
        int base = 10;
        if (t.size() > i + 1 && t[i] == '0' &&
            (t[i + 1] == 'x' || t[i + 1] == 'X')) {
            base = 16;
            i += 2;
        } else if (t.size() > i + 1 && t[i] == '0' &&
                   (t[i + 1] == 'b' || t[i + 1] == 'B')) {
            base = 2;
            i += 2;
        }
        if (i >= t.size())
            return std::nullopt;
        int64_t v = 0;
        for (; i < t.size(); ++i) {
            char c = static_cast<char>(
                std::tolower(static_cast<unsigned char>(t[i])));
            int d;
            if (c >= '0' && c <= '9')
                d = c - '0';
            else if (c >= 'a' && c <= 'f')
                d = 10 + (c - 'a');
            else
                return std::nullopt;
            if (d >= base)
                return std::nullopt;
            v = v * base + d;
        }
        return neg ? -v : v;
    }

    /** Evaluate a +/- chain of literals, .equ constants, and labels. */
    int64_t
    evalExpr(const std::string& expr, int line, bool allow_labels) const
    {
        std::string e = trim(expr);
        if (e.empty())
            err(line, "empty expression");
        // %hi / %lo
        if (e.size() > 4 && e[0] == '%') {
            std::string fn = lower(e.substr(1, 2));
            size_t open = e.find('(');
            size_t close = e.rfind(')');
            if (open == std::string::npos || close == std::string::npos ||
                close < open)
                err(line, "malformed %hi/%lo expression: " + e);
            int64_t v = evalExpr(e.substr(open + 1, close - open - 1), line,
                                 allow_labels);
            uint32_t u = static_cast<uint32_t>(v);
            if (fn == "hi")
                return static_cast<int64_t>((u + 0x800u) >> 12);
            if (fn == "lo")
                return sext(u & 0xFFFu, 12);
            err(line, "unknown % function: " + e);
        }
        // Split on top-level + / - (not the leading sign).
        int64_t acc = 0;
        int sign = 1;
        size_t start = 0;
        bool have_term = false;
        auto flushTerm = [&](size_t endpos) {
            std::string term = trim(e.substr(start, endpos - start));
            if (term.empty())
                err(line, "malformed expression: " + e);
            acc += sign * evalTerm(term, line, allow_labels);
            have_term = true;
        };
        for (size_t i = 0; i < e.size(); ++i) {
            char c = e[i];
            if ((c == '+' || c == '-') && i != start) {
                flushTerm(i);
                sign = c == '-' ? -1 : 1;
                start = i + 1;
            }
        }
        flushTerm(e.size());
        if (!have_term)
            err(line, "malformed expression: " + e);
        return acc;
    }

    int64_t
    evalTerm(const std::string& term, int line, bool allow_labels) const
    {
        if (auto lit = tryParseLiteral(term))
            return *lit;
        if (auto it = equs_.find(term); it != equs_.end())
            return it->second;
        if (allow_labels) {
            if (auto it = symbols_.find(term); it != symbols_.end())
                return static_cast<int64_t>(it->second);
            err(line, "undefined symbol '" + term + "'");
        }
        err(line, "expression must be constant here: '" + term + "'");
    }

    int64_t
    evalConst(const std::string& expr, int line) const
    {
        return evalExpr(expr, line, false);
    }

    /** Can this expression be evaluated without labels? */
    bool
    isConstExpr(const std::string& expr) const
    {
        try {
            evalExpr(expr, 0, false);
            return true;
        } catch (const FatalError&) {
            return false;
        }
    }

    //
    // Pass 1: assign addresses/sizes, bind labels.
    //

    size_t
    stmtSize(const Stmt& st, Addr lc) const
    {
        if (st.type == StmtType::Instruction)
            return instrSize(st);
        const std::string& d = st.head;
        if (d == ".word" || d == ".float")
            return alignUp(lc, 4) - lc + 4 * st.args.size();
        if (d == ".half")
            return alignUp(lc, 2) - lc + 2 * st.args.size();
        if (d == ".byte")
            return st.args.size();
        if (d == ".space" || d == ".zero") {
            if (st.args.size() != 1)
                err(st.line, d + " needs a size");
            return static_cast<size_t>(evalConst(st.args[0], st.line));
        }
        if (d == ".align") { // power-of-two alignment, gas RISC-V style
            if (st.args.size() != 1)
                err(st.line, ".align needs an argument");
            uint64_t a = 1ull << evalConst(st.args[0], st.line);
            return alignUp(lc, a) - lc;
        }
        if (d == ".balign") {
            if (st.args.size() != 1)
                err(st.line, ".balign needs an argument");
            uint64_t a = static_cast<uint64_t>(evalConst(st.args[0], st.line));
            return alignUp(lc, a) - lc;
        }
        if (d == ".ascii" || d == ".asciz") {
            if (st.args.size() != 1)
                err(st.line, d + " needs one string");
            return decodeString(st.args[0], st.line).size() +
                   (d == ".asciz" ? 1 : 0);
        }
        if (d == ".globl" || d == ".global" || d == ".text" || d == ".data" ||
            d == ".section" || d == ".option" || d == ".type" ||
            d == ".size" || d == ".file")
            return 0;
        err(st.line, "unknown directive '" + d + "'");
    }

    size_t
    instrSize(const Stmt& st) const
    {
        const std::string& m = st.head;
        if (m == "la")
            return 8;
        if (m == "li") {
            if (st.args.size() != 2)
                err(st.line, "li needs <rd>, <imm>");
            if (isConstExpr(st.args[1])) {
                int64_t v = evalConst(st.args[1], st.line);
                if (v >= -2048 && v <= 2047)
                    return 4;
            }
            return 8;
        }
        return 4;
    }

    void
    layout()
    {
        Addr lc = base_;
        size_t next_label = 0;
        for (size_t i = 0; i < stmts_.size(); ++i) {
            while (next_label < labelsAt_.size() &&
                   labelsAt_[next_label].stmtIndex ==
                       static_cast<int>(i)) {
                defineLabel(labelsAt_[next_label], lc);
                ++next_label;
            }
            Stmt& st = stmts_[i];
            st.addr = lc;
            st.size = stmtSize(st, lc);
            lc += static_cast<Addr>(st.size);
        }
        while (next_label < labelsAt_.size()) {
            defineLabel(labelsAt_[next_label], lc);
            ++next_label;
        }
        imageSize_ = lc - base_;
    }

    struct LabelRef
    {
        std::string name;
        int stmtIndex;
        int line;
    };

    void
    defineLabel(const LabelRef& l, Addr addr)
    {
        if (symbols_.count(l.name))
            err(l.line, "duplicate label '" + l.name + "'");
        symbols_[l.name] = addr;
    }

    //
    // Pass 2: emit bytes.
    //

    void
    emit()
    {
        image_.assign(imageSize_, 0);
        for (const Stmt& st : stmts_) {
            if (st.type == StmtType::Directive)
                emitDirective(st);
            else
                emitInstruction(st);
        }
    }

    void
    poke8(Addr addr, uint8_t v)
    {
        image_.at(addr - base_) = v;
    }

    void
    poke16(Addr addr, uint16_t v)
    {
        poke8(addr, v & 0xFF);
        poke8(addr + 1, v >> 8);
    }

    void
    poke32(Addr addr, uint32_t v)
    {
        poke16(addr, v & 0xFFFF);
        poke16(addr + 2, v >> 16);
    }

    void
    emitDirective(const Stmt& st)
    {
        const std::string& d = st.head;
        Addr lc = st.addr;
        if (d == ".word") {
            lc = static_cast<Addr>(alignUp(lc, 4));
            for (const std::string& a : st.args) {
                poke32(lc, static_cast<uint32_t>(
                               evalExpr(a, st.line, true)));
                lc += 4;
            }
        } else if (d == ".float") {
            lc = static_cast<Addr>(alignUp(lc, 4));
            for (const std::string& a : st.args) {
                float f = std::stof(a);
                uint32_t u;
                std::memcpy(&u, &f, 4);
                poke32(lc, u);
                lc += 4;
            }
        } else if (d == ".half") {
            lc = static_cast<Addr>(alignUp(lc, 2));
            for (const std::string& a : st.args) {
                poke16(lc, static_cast<uint16_t>(
                               evalExpr(a, st.line, true)));
                lc += 2;
            }
        } else if (d == ".byte") {
            for (const std::string& a : st.args) {
                poke8(lc, static_cast<uint8_t>(evalExpr(a, st.line, true)));
                lc += 1;
            }
        } else if (d == ".ascii" || d == ".asciz") {
            std::string bytes = decodeString(st.args[0], st.line);
            if (d == ".asciz")
                bytes.push_back('\0');
            for (char c : bytes)
                poke8(lc++, static_cast<uint8_t>(c));
        }
        // .space/.zero/.align/.balign already zero-filled; no-ops emit none.
    }

    std::string
    decodeString(const std::string& arg, int line) const
    {
        std::string t = trim(arg);
        if (t.size() < 2 || t.front() != '"' || t.back() != '"')
            err(line, "expected a quoted string");
        std::string out;
        for (size_t i = 1; i + 1 < t.size(); ++i) {
            char c = t[i];
            if (c == '\\' && i + 2 < t.size()) {
                char n = t[++i];
                switch (n) {
                  case 'n': out.push_back('\n'); break;
                  case 't': out.push_back('\t'); break;
                  case '0': out.push_back('\0'); break;
                  case '\\': out.push_back('\\'); break;
                  case '"': out.push_back('"'); break;
                  default: out.push_back(n); break;
                }
            } else {
                out.push_back(c);
            }
        }
        return out;
    }

    //
    // Instruction emission
    //

    RegId
    xreg(const Stmt& st, size_t i) const
    {
        if (i >= st.args.size())
            err(st.line, "missing operand");
        auto r = parseIntReg(st.args[i]);
        if (!r)
            err(st.line, "expected integer register, got '" + st.args[i] +
                             "'");
        return *r;
    }

    RegId
    freg(const Stmt& st, size_t i) const
    {
        if (i >= st.args.size())
            err(st.line, "missing operand");
        auto r = parseFpReg(st.args[i]);
        if (!r)
            err(st.line, "expected FP register, got '" + st.args[i] + "'");
        return *r;
    }

    int32_t
    imm(const Stmt& st, size_t i) const
    {
        if (i >= st.args.size())
            err(st.line, "missing immediate");
        return static_cast<int32_t>(evalExpr(st.args[i], st.line, true));
    }

    /** Branch/jump target: label or literal => pc-relative offset. */
    int32_t
    target(const Stmt& st, size_t i, Addr pc) const
    {
        int64_t abs = evalExpr(st.args[i], st.line, true);
        return static_cast<int32_t>(abs - static_cast<int64_t>(pc));
    }

    /** Parse "imm(reg)" or "(reg)" or "imm" address syntax. */
    std::pair<int32_t, RegId>
    memOperand(const Stmt& st, size_t i) const
    {
        if (i >= st.args.size())
            err(st.line, "missing memory operand");
        const std::string& a = st.args[i];
        size_t open = a.rfind('(');
        if (open == std::string::npos)
            err(st.line, "expected imm(reg) operand, got '" + a + "'");
        size_t close = a.rfind(')');
        if (close == std::string::npos || close < open)
            err(st.line, "unbalanced parens in '" + a + "'");
        std::string off = trim(a.substr(0, open));
        std::string reg = trim(a.substr(open + 1, close - open - 1));
        auto r = parseIntReg(reg);
        if (!r)
            err(st.line, "bad base register '" + reg + "'");
        int32_t o = off.empty()
                        ? 0
                        : static_cast<int32_t>(
                              evalExpr(off, st.line, true));
        return {o, *r};
    }

    void
    emitWord(Addr addr, const Instr& in)
    {
        poke32(addr, encode(in));
    }

    Instr
    mk(InstrKind k) const
    {
        Instr in;
        in.kind = k;
        return in;
    }

    void
    expect(const Stmt& st, size_t n) const
    {
        if (st.args.size() != n)
            err(st.line, st.head + ": expected " + std::to_string(n) +
                             " operands, got " +
                             std::to_string(st.args.size()));
    }

    void emitInstruction(const Stmt& st);

    Addr base_;
    std::vector<Stmt> stmts_;
    std::vector<LabelRef> labelsAt_;
    std::map<std::string, Addr> symbols_;
    std::map<std::string, int64_t> equs_;
    std::vector<uint8_t> image_;
    size_t imageSize_ = 0;
};

/** mnemonic -> InstrKind for all regular (non-pseudo) instructions. */
const std::map<std::string, InstrKind>&
mnemonicTable()
{
    static const std::map<std::string, InstrKind> table = [] {
        std::map<std::string, InstrKind> m;
        for (uint16_t k = 1; k < static_cast<uint16_t>(InstrKind::kCount);
             ++k) {
            auto kind = static_cast<InstrKind>(k);
            m[instrInfo(kind).mnemonic] = kind;
        }
        return m;
    }();
    return table;
}

void
Engine::emitInstruction(const Stmt& st)
{
    const std::string& m = st.head;
    const Addr pc = st.addr;
    using K = InstrKind;

    //
    // Pseudo-instructions first.
    //
    if (m == "nop") {
        Instr in = mk(K::ADDI);
        emitWord(pc, in);
        return;
    }
    if (m == "mv") {
        expect(st, 2);
        Instr in = mk(K::ADDI);
        in.rd = xreg(st, 0);
        in.rs1 = xreg(st, 1);
        emitWord(pc, in);
        return;
    }
    if (m == "not") {
        expect(st, 2);
        Instr in = mk(K::XORI);
        in.rd = xreg(st, 0);
        in.rs1 = xreg(st, 1);
        in.imm = -1;
        emitWord(pc, in);
        return;
    }
    if (m == "neg") {
        expect(st, 2);
        Instr in = mk(K::SUB);
        in.rd = xreg(st, 0);
        in.rs1 = 0;
        in.rs2 = xreg(st, 1);
        emitWord(pc, in);
        return;
    }
    if (m == "seqz" || m == "snez" || m == "sltz" || m == "sgtz") {
        expect(st, 2);
        Instr in;
        if (m == "seqz") {
            in = mk(K::SLTIU);
            in.rd = xreg(st, 0);
            in.rs1 = xreg(st, 1);
            in.imm = 1;
        } else if (m == "snez") {
            in = mk(K::SLTU);
            in.rd = xreg(st, 0);
            in.rs1 = 0;
            in.rs2 = xreg(st, 1);
        } else if (m == "sltz") {
            in = mk(K::SLT);
            in.rd = xreg(st, 0);
            in.rs1 = xreg(st, 1);
            in.rs2 = 0;
        } else {
            in = mk(K::SLT);
            in.rd = xreg(st, 0);
            in.rs1 = 0;
            in.rs2 = xreg(st, 1);
        }
        emitWord(pc, in);
        return;
    }
    if (m == "beqz" || m == "bnez" || m == "blez" || m == "bgez" ||
        m == "bltz" || m == "bgtz") {
        expect(st, 2);
        Instr in;
        RegId rs = xreg(st, 0);
        int32_t off = target(st, 1, pc);
        if (m == "beqz") {
            in = mk(K::BEQ);
            in.rs1 = rs;
            in.rs2 = 0;
        } else if (m == "bnez") {
            in = mk(K::BNE);
            in.rs1 = rs;
            in.rs2 = 0;
        } else if (m == "blez") {
            in = mk(K::BGE);
            in.rs1 = 0;
            in.rs2 = rs;
        } else if (m == "bgez") {
            in = mk(K::BGE);
            in.rs1 = rs;
            in.rs2 = 0;
        } else if (m == "bltz") {
            in = mk(K::BLT);
            in.rs1 = rs;
            in.rs2 = 0;
        } else {
            in = mk(K::BLT);
            in.rs1 = 0;
            in.rs2 = rs;
        }
        in.imm = off;
        emitWord(pc, in);
        return;
    }
    if (m == "bgt" || m == "ble" || m == "bgtu" || m == "bleu") {
        expect(st, 3);
        Instr in = mk(m == "bgt" ? K::BLT
                      : m == "ble" ? K::BGE
                      : m == "bgtu" ? K::BLTU
                                    : K::BGEU);
        in.rs1 = xreg(st, 1); // swapped
        in.rs2 = xreg(st, 0);
        in.imm = target(st, 2, pc);
        emitWord(pc, in);
        return;
    }
    if (m == "j" || m == "tail") {
        expect(st, 1);
        Instr in = mk(K::JAL);
        in.rd = 0;
        in.imm = target(st, 0, pc);
        emitWord(pc, in);
        return;
    }
    if (m == "call") {
        expect(st, 1);
        Instr in = mk(K::JAL);
        in.rd = 1;
        in.imm = target(st, 0, pc);
        emitWord(pc, in);
        return;
    }
    if (m == "jr") {
        expect(st, 1);
        Instr in = mk(K::JALR);
        in.rd = 0;
        in.rs1 = xreg(st, 0);
        emitWord(pc, in);
        return;
    }
    if (m == "ret") {
        Instr in = mk(K::JALR);
        in.rd = 0;
        in.rs1 = 1;
        emitWord(pc, in);
        return;
    }
    if (m == "li" || m == "la") {
        expect(st, 2);
        RegId rd = xreg(st, 0);
        int64_t value = evalExpr(st.args[1], st.line, true);
        uint32_t u = static_cast<uint32_t>(value);
        if (st.size == 4) {
            Instr in = mk(K::ADDI);
            in.rd = rd;
            in.rs1 = 0;
            in.imm = static_cast<int32_t>(value);
            emitWord(pc, in);
        } else {
            uint32_t hi = (u + 0x800u) & 0xFFFFF000u;
            int32_t lo = sext(u & 0xFFFu, 12);
            Instr lui = mk(K::LUI);
            lui.rd = rd;
            lui.imm = static_cast<int32_t>(hi);
            emitWord(pc, lui);
            Instr addi = mk(K::ADDI);
            addi.rd = rd;
            addi.rs1 = rd;
            addi.imm = lo;
            emitWord(pc + 4, addi);
        }
        return;
    }
    if (m == "csrr") {
        expect(st, 2);
        Instr in = mk(K::CSRRS);
        in.rd = xreg(st, 0);
        in.rs1 = 0;
        in.csr = static_cast<uint32_t>(imm(st, 1));
        emitWord(pc, in);
        return;
    }
    if (m == "csrw" || m == "csrs" || m == "csrc") {
        expect(st, 2);
        Instr in = mk(m == "csrw" ? K::CSRRW
                      : m == "csrs" ? K::CSRRS
                                    : K::CSRRC);
        in.rd = 0;
        in.csr = static_cast<uint32_t>(imm(st, 0));
        in.rs1 = xreg(st, 1);
        emitWord(pc, in);
        return;
    }
    if (m == "csrwi") {
        expect(st, 2);
        Instr in = mk(K::CSRRWI);
        in.rd = 0;
        in.csr = static_cast<uint32_t>(imm(st, 0));
        in.imm = imm(st, 1);
        emitWord(pc, in);
        return;
    }
    if (m == "fmv.s" || m == "fabs.s" || m == "fneg.s") {
        expect(st, 2);
        Instr in = mk(m == "fmv.s" ? K::FSGNJ_S
                      : m == "fabs.s" ? K::FSGNJX_S
                                      : K::FSGNJN_S);
        in.rd = freg(st, 0);
        in.rs1 = freg(st, 1);
        in.rs2 = in.rs1;
        emitWord(pc, in);
        return;
    }

    //
    // Regular instructions.
    //
    auto it = mnemonicTable().find(m);
    if (it == mnemonicTable().end())
        err(st.line, "unknown mnemonic '" + m + "'");
    InstrKind kind = it->second;
    Instr in = mk(kind);

    switch (kind) {
      case K::LUI:
      case K::AUIPC: {
        expect(st, 2);
        in.rd = xreg(st, 0);
        // Accept either a raw 20-bit value or a %hi() result.
        int64_t v = evalExpr(st.args[1], st.line, true);
        in.imm = static_cast<int32_t>(static_cast<uint32_t>(v) << 12);
        break;
      }
      case K::JAL:
        if (st.args.size() == 1) {
            in.rd = 1;
            in.imm = target(st, 0, pc);
        } else {
            expect(st, 2);
            in.rd = xreg(st, 0);
            in.imm = target(st, 1, pc);
        }
        break;
      case K::JALR:
        if (st.args.size() == 1) {
            in.rd = 1;
            in.rs1 = xreg(st, 0);
            in.imm = 0;
        } else if (st.args.size() == 2) {
            in.rd = xreg(st, 0);
            auto [o, r] = memOperand(st, 1);
            in.imm = o;
            in.rs1 = r;
        } else {
            expect(st, 3);
            in.rd = xreg(st, 0);
            in.rs1 = xreg(st, 1);
            in.imm = imm(st, 2);
        }
        break;
      case K::BEQ: case K::BNE: case K::BLT: case K::BGE:
      case K::BLTU: case K::BGEU:
        expect(st, 3);
        in.rs1 = xreg(st, 0);
        in.rs2 = xreg(st, 1);
        in.imm = target(st, 2, pc);
        break;
      case K::LB: case K::LH: case K::LW: case K::LBU: case K::LHU: {
        expect(st, 2);
        in.rd = xreg(st, 0);
        auto [o, r] = memOperand(st, 1);
        in.imm = o;
        in.rs1 = r;
        break;
      }
      case K::FLW: {
        expect(st, 2);
        in.rd = freg(st, 0);
        auto [o, r] = memOperand(st, 1);
        in.imm = o;
        in.rs1 = r;
        break;
      }
      case K::SB: case K::SH: case K::SW: {
        expect(st, 2);
        in.rs2 = xreg(st, 0);
        auto [o, r] = memOperand(st, 1);
        in.imm = o;
        in.rs1 = r;
        break;
      }
      case K::FSW: {
        expect(st, 2);
        in.rs2 = freg(st, 0);
        auto [o, r] = memOperand(st, 1);
        in.imm = o;
        in.rs1 = r;
        break;
      }
      case K::ADDI: case K::SLTI: case K::SLTIU: case K::XORI:
      case K::ORI: case K::ANDI: case K::SLLI: case K::SRLI: case K::SRAI:
        expect(st, 3);
        in.rd = xreg(st, 0);
        in.rs1 = xreg(st, 1);
        in.imm = imm(st, 2);
        break;
      case K::ADD: case K::SUB: case K::SLL: case K::SLT: case K::SLTU:
      case K::XOR: case K::SRL: case K::SRA: case K::OR: case K::AND:
      case K::MUL: case K::MULH: case K::MULHSU: case K::MULHU:
      case K::DIV: case K::DIVU: case K::REM: case K::REMU:
        expect(st, 3);
        in.rd = xreg(st, 0);
        in.rs1 = xreg(st, 1);
        in.rs2 = xreg(st, 2);
        break;
      case K::FENCE: case K::ECALL: case K::EBREAK:
        break;
      case K::CSRRW: case K::CSRRS: case K::CSRRC:
        expect(st, 3);
        in.rd = xreg(st, 0);
        in.csr = static_cast<uint32_t>(imm(st, 1));
        in.rs1 = xreg(st, 2);
        break;
      case K::CSRRWI: case K::CSRRSI: case K::CSRRCI:
        expect(st, 3);
        in.rd = xreg(st, 0);
        in.csr = static_cast<uint32_t>(imm(st, 1));
        in.imm = imm(st, 2);
        break;
      case K::FMADD_S: case K::FMSUB_S: case K::FNMSUB_S: case K::FNMADD_S:
        expect(st, 4);
        in.rd = freg(st, 0);
        in.rs1 = freg(st, 1);
        in.rs2 = freg(st, 2);
        in.rs3 = freg(st, 3);
        break;
      case K::FADD_S: case K::FSUB_S: case K::FMUL_S: case K::FDIV_S:
      case K::FSGNJ_S: case K::FSGNJN_S: case K::FSGNJX_S:
      case K::FMIN_S: case K::FMAX_S:
        expect(st, 3);
        in.rd = freg(st, 0);
        in.rs1 = freg(st, 1);
        in.rs2 = freg(st, 2);
        break;
      case K::FSQRT_S:
        expect(st, 2);
        in.rd = freg(st, 0);
        in.rs1 = freg(st, 1);
        break;
      case K::FCVT_W_S: case K::FCVT_WU_S: case K::FMV_X_W:
      case K::FCLASS_S:
        expect(st, 2);
        in.rd = xreg(st, 0);
        in.rs1 = freg(st, 1);
        break;
      case K::FEQ_S: case K::FLT_S: case K::FLE_S:
        expect(st, 3);
        in.rd = xreg(st, 0);
        in.rs1 = freg(st, 1);
        in.rs2 = freg(st, 2);
        break;
      case K::FCVT_S_W: case K::FCVT_S_WU: case K::FMV_W_X:
        expect(st, 2);
        in.rd = freg(st, 0);
        in.rs1 = xreg(st, 1);
        break;
      case K::VX_TMC:
      case K::VX_SPLIT:
        expect(st, 1);
        in.rs1 = xreg(st, 0);
        break;
      case K::VX_WSPAWN:
      case K::VX_BAR:
        expect(st, 2);
        in.rs1 = xreg(st, 0);
        in.rs2 = xreg(st, 1);
        break;
      case K::VX_JOIN:
        expect(st, 0);
        break;
      case K::VX_TEX:
        expect(st, 4);
        in.rd = xreg(st, 0);
        in.rs1 = freg(st, 1);
        in.rs2 = freg(st, 2);
        in.rs3 = freg(st, 3);
        break;
      default:
        err(st.line, "unhandled mnemonic '" + m + "'");
    }
    emitWord(pc, in);
}

} // namespace

Program
Assembler::assemble(const std::string& source)
{
    Engine engine(base_);
    return engine.run(source);
}

Program
Assembler::assembleAll(const std::vector<std::string>& sources)
{
    std::string all;
    for (const std::string& s : sources) {
        all += s;
        if (all.empty() || all.back() != '\n')
            all += '\n';
    }
    return assemble(all);
}

} // namespace vortex::isa
