/**
 * @file
 * Two-pass assembler implementation.
 *
 * Pass 0 parses lines into statements, peeling labels and consuming the
 * directives that emit nothing (.equ/.section/.globl/...). Pass 1 lays the
 * three sections out in .text/.rodata/.data order into one flat image and
 * binds labels. Pass 2 encodes, and — for object output — records a
 * relocation for every label reference that survives in the encoding as an
 * absolute address (see isa/object.h; pc-relative branches need none).
 *
 * Every diagnostic throws AsmError carrying the unit name plus 1-based
 * line and column of the offending token.
 */

#include "isa/assembler.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <optional>
#include <set>
#include <sstream>

#include "common/bitmanip.h"
#include "common/log.h"
#include "isa/isa.h"
#include "isa/object.h"

namespace vortex::isa {

Addr
Program::symbol(const std::string& name) const
{
    auto it = symbols.find(name);
    if (it == symbols.end())
        fatal("undefined symbol '", name, "'");
    return it->second;
}

namespace {

//
// Lexical helpers
//

std::string
trim(const std::string& s)
{
    size_t b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    size_t e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

std::string
lower(std::string s)
{
    for (char& c : s)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return s;
}

/** Strip comments: #, //, and ; (outside of string literals). Only ever
 *  truncates, so byte positions in the result match the input line. */
std::string
stripComment(const std::string& line)
{
    bool in_str = false;
    for (size_t i = 0; i < line.size(); ++i) {
        char c = line[i];
        if (c == '"' && (i == 0 || line[i - 1] != '\\'))
            in_str = !in_str;
        if (in_str)
            continue;
        if (c == '#' || c == ';')
            return line.substr(0, i);
        if (c == '/' && i + 1 < line.size() && line[i + 1] == '/')
            return line.substr(0, i);
    }
    return line;
}

//
// Register name parsing
//

std::optional<RegId>
parseIntReg(const std::string& name)
{
    static const std::map<std::string, RegId> abi = [] {
        std::map<std::string, RegId> m;
        for (RegId i = 0; i < 32; ++i) {
            m["x" + std::to_string(i)] = i;
            m[intRegName(i)] = i;
        }
        m["fp"] = 8; // frame-pointer alias for s0
        return m;
    }();
    auto it = abi.find(lower(name));
    if (it == abi.end())
        return std::nullopt;
    return it->second;
}

std::optional<RegId>
parseFpReg(const std::string& name)
{
    static const std::map<std::string, RegId> abi = [] {
        std::map<std::string, RegId> m;
        for (RegId i = 0; i < 32; ++i) {
            m["f" + std::to_string(i)] = i;
            m[fpRegName(i)] = i;
        }
        return m;
    }();
    auto it = abi.find(lower(name));
    if (it == abi.end())
        return std::nullopt;
    return it->second;
}

//
// Statement representation
//

enum class StmtType { Instruction, Directive };

/** A source position: unit index + 1-based line and column. */
struct Loc
{
    int unit = 0;
    int line = 0;
    int col = 1;
};

enum : uint8_t { kText = 0, kRodata = 1, kData = 2, kNumSections = 3 };

const char* const kSectionNames[kNumSections] = {".text", ".rodata",
                                                 ".data"};

struct Stmt
{
    StmtType type;
    std::string head;              ///< lower-cased mnemonic or directive
    std::vector<std::string> args; ///< raw operand strings
    std::vector<int> argCols;      ///< 1-based column of each operand
    uint8_t section = kText;
    Loc loc;         ///< position of the mnemonic/directive token
    Addr addr = 0;   ///< assigned in pass 1
    size_t size = 0; ///< byte size, assigned in pass 1
};

/** What kind of encoding field a label-bearing expression lands in —
 *  decides which relocation (if any) can represent it. */
enum class RelCtx
{
    Word, ///< .word data — Abs32
    ImmI, ///< I-type immediate (addi/loads/jalr) — Lo12I via %lo
    ImmS, ///< S-type immediate (stores) — Lo12S via %lo
    Lui,  ///< lui operand — Hi20 via %hi
    LaLi, ///< la / 8-byte li — Hi20 + Lo12I pair
    None, ///< field that cannot carry a relocation (csr, shifts, ...)
};

/** Side channel from evalExpr: enough structure to classify the
 *  expression for relocation purposes. */
struct ExprInfo
{
    enum class Part : uint8_t { None, Hi, Lo };
    int labelWeight = 0; ///< net signed count of label terms
    Part part = Part::None;
    int64_t value = 0; ///< full value before %hi/%lo extraction
};

//
// The assembler engine
//

class Engine
{
  public:
    explicit Engine(Addr base) : base_(base) {}

    void
    run(const std::vector<SourceUnit>& units)
    {
        for (const SourceUnit& u : units) {
            unitNames_.push_back(u.name);
            parseUnit(static_cast<int>(unitNames_.size()) - 1, u.text);
        }
        layout();
        emit();
    }

    Program
    takeProgram()
    {
        Program p;
        p.base = base_;
        p.entry = base_;
        p.execEnd = sectionStart_[kText] + sectionSize_[kText];
        p.image = std::move(image_);
        p.symbols = std::move(symbols_);
        return p;
    }

    /** Build the relocatable object; label uses that no relocation can
     *  express are errors here (but fine for direct assembly). */
    ObjectFile
    takeObject()
    {
        for (const PendingReloc& r : relocs_)
            if (!r.supported)
                err(r.loc, "not relocatable: " + r.note);
        ObjectFile obj;
        obj.linkBase = base_;
        obj.entry = base_;
        obj.image = std::move(image_);
        for (int s = 0; s < kNumSections; ++s) {
            if (s != kText && sectionSize_[s] == 0)
                continue;
            obj.sections.push_back(
                {kSectionNames[s],
                 static_cast<uint32_t>(sectionStart_[s] - base_),
                 static_cast<uint32_t>(sectionSize_[s]),
                 /*exec=*/s == kText, /*writable=*/s == kData});
        }
        for (const auto& [name, addr] : symbols_)
            obj.symbols.push_back({name,
                                   static_cast<uint32_t>(addr - base_),
                                   globals_.count(name) > 0});
        std::stable_sort(relocs_.begin(), relocs_.end(),
                         [](const PendingReloc& a, const PendingReloc& b) {
                             return a.addr < b.addr;
                         });
        for (const PendingReloc& r : relocs_)
            obj.relocs.push_back(
                {static_cast<uint32_t>(r.addr - base_), r.kind, r.target});
        return obj;
    }

  private:
    [[noreturn]] void
    err(const Loc& loc, const std::string& msg) const
    {
        const std::string& file =
            loc.unit >= 0 &&
                    loc.unit < static_cast<int>(unitNames_.size())
                ? unitNames_[loc.unit]
                : "<asm>";
        throw AsmError(file, loc.line, loc.col, msg);
    }

    [[noreturn]] void
    err(const Stmt& st, const std::string& msg) const
    {
        err(st.loc, msg);
    }

    Loc
    argLoc(const Stmt& st, size_t i) const
    {
        Loc loc = st.loc;
        if (i < st.argCols.size())
            loc.col = st.argCols[i];
        return loc;
    }

    [[noreturn]] void
    errArg(const Stmt& st, size_t i, const std::string& msg) const
    {
        err(argLoc(st, i), msg);
    }

    //
    // Pass 0: parse lines into statements; record .equ constants eagerly so
    // pass-1 sizing of `li` can see them, and handle the section/symbol
    // directives that emit nothing.
    //

    void
    parseUnit(int unit, const std::string& source)
    {
        std::istringstream is(source);
        std::string raw;
        int lineno = 0;
        while (std::getline(is, raw)) {
            ++lineno;
            parseLine(unit, lineno, raw);
        }
    }

    void
    parseLine(int unit, int lineno, const std::string& raw)
    {
        std::string line = stripComment(raw);
        size_t pos = line.find_first_not_of(" \t\r\n");
        // Peel leading labels ("name:"), possibly several.
        while (pos != std::string::npos) {
            size_t colon = line.find(':', pos);
            if (colon == std::string::npos)
                break;
            std::string name =
                colon > pos ? line.substr(pos, colon - pos) : "";
            while (!name.empty() &&
                   std::isspace(static_cast<unsigned char>(name.back())))
                name.pop_back();
            if (name.empty() ||
                name.find_first_of(" \t(\"") != std::string::npos)
                break;
            labelsAt_.push_back({name, section_, sectCount_[section_],
                                 {unit, lineno,
                                  static_cast<int>(pos) + 1}});
            pos = line.find_first_not_of(" \t\r\n", colon + 1);
        }
        if (pos == std::string::npos)
            return;

        Stmt st;
        size_t hend = line.find_first_of(" \t", pos);
        size_t hstop = hend == std::string::npos ? line.size() : hend;
        st.head = lower(line.substr(pos, hstop - pos));
        st.loc = {unit, lineno, static_cast<int>(pos) + 1};
        splitOperands(line, hstop, st.args, st.argCols);
        st.type = st.head[0] == '.' ? StmtType::Directive
                                    : StmtType::Instruction;
        if (st.type == StmtType::Directive && parseMetaDirective(st))
            return; // consumed; emits nothing
        st.section = section_;
        ++sectCount_[section_];
        stmts_.push_back(std::move(st));
    }

    /** Operands of @p s from byte offset @p from, split on top-level
     *  commas; records each operand's 1-based column. */
    void
    splitOperands(const std::string& s, size_t from,
                  std::vector<std::string>& args,
                  std::vector<int>& cols) const
    {
        int depth = 0;
        bool in_str = false;
        size_t start = from;
        auto flush = [&](size_t end, bool final) {
            size_t b = s.find_first_not_of(" \t\r\n", start);
            if (b == std::string::npos || b >= end) {
                if (!final) { // empty middle operand, kept as ""
                    args.emplace_back();
                    cols.push_back(static_cast<int>(start) + 1);
                }
                return;
            }
            size_t e = s.find_last_not_of(" \t\r\n", end - 1);
            args.push_back(s.substr(b, e - b + 1));
            cols.push_back(static_cast<int>(b) + 1);
        };
        for (size_t i = from; i < s.size(); ++i) {
            char c = s[i];
            if (c == '"')
                in_str = !in_str;
            if (!in_str) {
                if (c == '(') {
                    ++depth;
                } else if (c == ')') {
                    --depth;
                } else if (c == ',' && depth == 0) {
                    flush(i, false);
                    start = i + 1;
                }
            }
        }
        flush(s.size(), true);
    }

    /** Handle directives consumed at parse time. @return true if done. */
    bool
    parseMetaDirective(const Stmt& st)
    {
        const std::string& d = st.head;
        if (d == ".equ") {
            if (st.args.size() != 2)
                err(st, ".equ needs <name>, <value>");
            equs_[st.args[0]] = evalConst(st.args[1], argLoc(st, 1));
            return true;
        }
        if (d == ".text" || d == ".rodata" || d == ".data") {
            section_ = sectionByName(d, st.loc);
            return true;
        }
        if (d == ".section") {
            if (st.args.empty())
                err(st, ".section needs a name");
            section_ = sectionByName(st.args[0], argLoc(st, 0));
            return true;
        }
        if (d == ".globl" || d == ".global") {
            if (st.args.size() != 1)
                err(st, d + " needs one symbol name");
            globals_.insert(st.args[0]);
            return true;
        }
        if (d == ".option" || d == ".type" || d == ".size" || d == ".file")
            return true; // accepted and ignored
        return false;
    }

    uint8_t
    sectionByName(const std::string& name, const Loc& loc) const
    {
        for (uint8_t s = 0; s < kNumSections; ++s)
            if (name == kSectionNames[s])
                return s;
        err(loc, "unknown section '" + name +
                     "' (supported: .text, .rodata, .data)");
    }

    //
    // Expression evaluation. `allowSymbols` controls whether labels may be
    // referenced (pass 2) or only literals / .equ constants (pass 1).
    //

    std::optional<int64_t>
    tryParseLiteral(const std::string& tok) const
    {
        std::string t = trim(tok);
        if (t.empty())
            return std::nullopt;
        bool neg = false;
        size_t i = 0;
        if (t[0] == '-' || t[0] == '+') {
            neg = t[0] == '-';
            i = 1;
        }
        if (i >= t.size())
            return std::nullopt;
        int base = 10;
        if (t.size() > i + 1 && t[i] == '0' &&
            (t[i + 1] == 'x' || t[i + 1] == 'X')) {
            base = 16;
            i += 2;
        } else if (t.size() > i + 1 && t[i] == '0' &&
                   (t[i + 1] == 'b' || t[i + 1] == 'B')) {
            base = 2;
            i += 2;
        }
        if (i >= t.size())
            return std::nullopt;
        int64_t v = 0;
        for (; i < t.size(); ++i) {
            char c = static_cast<char>(
                std::tolower(static_cast<unsigned char>(t[i])));
            int d;
            if (c >= '0' && c <= '9')
                d = c - '0';
            else if (c >= 'a' && c <= 'f')
                d = 10 + (c - 'a');
            else
                return std::nullopt;
            if (d >= base)
                return std::nullopt;
            v = v * base + d;
        }
        return neg ? -v : v;
    }

    /** Evaluate a +/- chain of literals, .equ constants, and labels. */
    int64_t
    evalExpr(const std::string& expr, const Loc& loc, bool allow_labels,
             ExprInfo* info = nullptr) const
    {
        std::string e = trim(expr);
        if (e.empty())
            err(loc, "empty expression");
        // %hi / %lo
        if (e.size() > 4 && e[0] == '%') {
            std::string fn = lower(e.substr(1, 2));
            size_t open = e.find('(');
            size_t close = e.rfind(')');
            if (open == std::string::npos || close == std::string::npos ||
                close < open)
                err(loc, "malformed %hi/%lo expression: " + e);
            int64_t v = evalExpr(e.substr(open + 1, close - open - 1), loc,
                                 allow_labels, info);
            uint32_t u = static_cast<uint32_t>(v);
            if (fn == "hi") {
                if (info)
                    info->part = ExprInfo::Part::Hi;
                return static_cast<int64_t>((u + 0x800u) >> 12);
            }
            if (fn == "lo") {
                if (info)
                    info->part = ExprInfo::Part::Lo;
                return sext(u & 0xFFFu, 12);
            }
            err(loc, "unknown % function: " + e);
        }
        // Split on top-level + / - (not the leading sign).
        int64_t acc = 0;
        int sign = 1;
        size_t start = 0;
        bool have_term = false;
        auto flushTerm = [&](size_t endpos) {
            std::string term = trim(e.substr(start, endpos - start));
            if (term.empty())
                err(loc, "malformed expression: " + e);
            acc += sign * evalTerm(term, loc, allow_labels, sign, info);
            have_term = true;
        };
        for (size_t i = 0; i < e.size(); ++i) {
            char c = e[i];
            if ((c == '+' || c == '-') && i != start) {
                flushTerm(i);
                sign = c == '-' ? -1 : 1;
                start = i + 1;
            }
        }
        flushTerm(e.size());
        if (!have_term)
            err(loc, "malformed expression: " + e);
        if (info && info->part == ExprInfo::Part::None)
            info->value = acc;
        return acc;
    }

    int64_t
    evalTerm(const std::string& term, const Loc& loc, bool allow_labels,
             int sign, ExprInfo* info) const
    {
        if (auto lit = tryParseLiteral(term))
            return *lit;
        if (auto it = equs_.find(term); it != equs_.end())
            return it->second;
        if (allow_labels) {
            if (auto it = symbols_.find(term); it != symbols_.end()) {
                if (info)
                    info->labelWeight += sign;
                return static_cast<int64_t>(it->second);
            }
            err(loc, "undefined symbol '" + term + "'");
        }
        err(loc, "expression must be constant here: '" + term + "'");
    }

    int64_t
    evalConst(const std::string& expr, const Loc& loc) const
    {
        return evalExpr(expr, loc, false);
    }

    /** Can this expression be evaluated without labels? */
    bool
    isConstExpr(const std::string& expr) const
    {
        try {
            evalExpr(expr, Loc{}, false);
            return true;
        } catch (const FatalError&) {
            return false;
        }
    }

    //
    // Pass 1: lay out sections in .text/.rodata/.data order, bind labels.
    //

    size_t
    stmtSize(const Stmt& st, Addr lc) const
    {
        if (st.type == StmtType::Instruction)
            return instrSize(st);
        const std::string& d = st.head;
        if (d == ".word" || d == ".float")
            return alignUp(lc, 4) - lc + 4 * st.args.size();
        if (d == ".half")
            return alignUp(lc, 2) - lc + 2 * st.args.size();
        if (d == ".byte")
            return st.args.size();
        if (d == ".space" || d == ".zero") {
            if (st.args.size() != 1)
                err(st, d + " needs a size");
            return static_cast<size_t>(evalConst(st.args[0],
                                                 argLoc(st, 0)));
        }
        if (d == ".align") { // power-of-two alignment, gas RISC-V style
            if (st.args.size() != 1)
                err(st, ".align needs an argument");
            uint64_t a = 1ull << evalConst(st.args[0], argLoc(st, 0));
            return alignUp(lc, a) - lc;
        }
        if (d == ".balign") {
            if (st.args.size() != 1)
                err(st, ".balign needs an argument");
            uint64_t a = static_cast<uint64_t>(
                evalConst(st.args[0], argLoc(st, 0)));
            return alignUp(lc, a) - lc;
        }
        if (d == ".ascii" || d == ".asciz") {
            if (st.args.size() != 1)
                err(st, d + " needs one string");
            return decodeString(st.args[0], argLoc(st, 0)).size() +
                   (d == ".asciz" ? 1 : 0);
        }
        err(st, "unknown directive '" + d + "'");
    }

    size_t
    instrSize(const Stmt& st) const
    {
        const std::string& m = st.head;
        if (m == "la")
            return 8;
        if (m == "li") {
            if (st.args.size() != 2)
                err(st, "li needs <rd>, <imm>");
            if (isConstExpr(st.args[1])) {
                int64_t v = evalConst(st.args[1], argLoc(st, 1));
                if (v >= -2048 && v <= 2047)
                    return 4;
            }
            return 8;
        }
        return 4;
    }

    void
    layout()
    {
        // Per-section label queues, preserving parse order.
        std::vector<size_t> labelIdx[kNumSections];
        for (size_t i = 0; i < labelsAt_.size(); ++i)
            labelIdx[labelsAt_[i].section].push_back(i);

        Addr lc = base_;
        for (uint8_t s = 0; s < kNumSections; ++s) {
            if (s != kText)
                lc = static_cast<Addr>(alignUp(lc, 4));
            sectionStart_[s] = lc;
            size_t nl = 0;
            int index = 0;
            auto bindUpTo = [&](int idx) {
                while (nl < labelIdx[s].size() &&
                       labelsAt_[labelIdx[s][nl]].indexInSection <= idx) {
                    defineLabel(labelsAt_[labelIdx[s][nl]], lc);
                    ++nl;
                }
            };
            for (Stmt& st : stmts_) {
                if (st.section != s)
                    continue;
                bindUpTo(index);
                st.addr = lc;
                st.size = stmtSize(st, lc);
                lc += static_cast<Addr>(st.size);
                ++index;
            }
            bindUpTo(sectCount_[s]); // labels at the end of the section
            sectionSize_[s] = lc - sectionStart_[s];
        }
        imageSize_ = lc - base_;
    }

    struct LabelRef
    {
        std::string name;
        uint8_t section;
        int indexInSection; ///< index of the next stmt in its section
        Loc loc;
    };

    void
    defineLabel(const LabelRef& l, Addr addr)
    {
        if (symbols_.count(l.name))
            err(l.loc, "duplicate label '" + l.name + "'");
        symbols_[l.name] = addr;
    }

    //
    // Relocation collection (object output only; direct assembly ignores
    // the recorded entries).
    //

    struct PendingReloc
    {
        Addr addr = 0;
        RelocKind kind = RelocKind::Abs32;
        uint32_t target = 0;
        bool supported = false;
        Loc loc;
        std::string note; ///< for the "not relocatable" diagnostic
    };

    /** Record the relocation (if any) for an expression evaluated into
     *  the field class @p ctx at address @p at. */
    void
    noteReloc(Addr at, const ExprInfo& info, RelCtx ctx, const Stmt& st,
              size_t argIdx)
    {
        if (info.labelWeight == 0)
            return; // constant or label-difference: rebase-invariant
        Loc loc = argLoc(st, argIdx);
        auto unsupported = [&](const std::string& note) {
            relocs_.push_back({at, RelocKind::Abs32, 0, false, loc, note});
        };
        if (info.labelWeight != 1) {
            unsupported("expression with net label weight " +
                        std::to_string(info.labelWeight));
            return;
        }
        uint32_t target = static_cast<uint32_t>(info.value);
        using Part = ExprInfo::Part;
        switch (ctx) {
          case RelCtx::Word:
            if (info.part == Part::None)
                relocs_.push_back(
                    {at, RelocKind::Abs32, target, true, loc, ""});
            else
                unsupported("%hi/%lo of a label in .word");
            return;
          case RelCtx::ImmI:
            if (info.part == Part::Lo)
                relocs_.push_back(
                    {at, RelocKind::Lo12I, target, true, loc, ""});
            else
                unsupported("raw label in an I-type immediate "
                            "(use %lo(...) or la)");
            return;
          case RelCtx::ImmS:
            if (info.part == Part::Lo)
                relocs_.push_back(
                    {at, RelocKind::Lo12S, target, true, loc, ""});
            else
                unsupported("raw label in a store offset (use %lo(...))");
            return;
          case RelCtx::Lui:
            if (info.part == Part::Hi)
                relocs_.push_back(
                    {at, RelocKind::Hi20, target, true, loc, ""});
            else
                unsupported("raw label in lui (use %hi(...))");
            return;
          case RelCtx::LaLi:
            if (info.part == Part::None) {
                relocs_.push_back(
                    {at, RelocKind::Hi20, target, true, loc, ""});
                relocs_.push_back(
                    {at + 4, RelocKind::Lo12I, target, true, loc, ""});
            } else {
                unsupported("%hi/%lo of a label in li/la");
            }
            return;
          case RelCtx::None:
            unsupported("label in a field that cannot be relocated");
            return;
        }
    }

    //
    // Pass 2: emit bytes.
    //

    void
    emit()
    {
        image_.assign(imageSize_, 0);
        for (const Stmt& st : stmts_) {
            if (st.type == StmtType::Directive)
                emitDirective(st);
            else
                emitInstruction(st);
        }
    }

    void
    poke8(Addr addr, uint8_t v)
    {
        image_.at(addr - base_) = v;
    }

    void
    poke16(Addr addr, uint16_t v)
    {
        poke8(addr, v & 0xFF);
        poke8(addr + 1, v >> 8);
    }

    void
    poke32(Addr addr, uint32_t v)
    {
        poke16(addr, v & 0xFFFF);
        poke16(addr + 2, v >> 16);
    }

    void
    emitDirective(const Stmt& st)
    {
        const std::string& d = st.head;
        Addr lc = st.addr;
        if (d == ".word") {
            lc = static_cast<Addr>(alignUp(lc, 4));
            for (size_t i = 0; i < st.args.size(); ++i) {
                ExprInfo info;
                poke32(lc, static_cast<uint32_t>(
                               evalExpr(st.args[i], argLoc(st, i), true,
                                        &info)));
                noteReloc(lc, info, RelCtx::Word, st, i);
                lc += 4;
            }
        } else if (d == ".float") {
            lc = static_cast<Addr>(alignUp(lc, 4));
            for (size_t i = 0; i < st.args.size(); ++i) {
                float f = 0.0f;
                size_t used = 0;
                try {
                    f = std::stof(st.args[i], &used);
                } catch (const std::exception&) {
                    errArg(st, i,
                           "bad float literal '" + st.args[i] + "'");
                }
                if (used != st.args[i].size())
                    errArg(st, i,
                           "bad float literal '" + st.args[i] + "'");
                uint32_t u;
                std::memcpy(&u, &f, 4);
                poke32(lc, u);
                lc += 4;
            }
        } else if (d == ".half") {
            lc = static_cast<Addr>(alignUp(lc, 2));
            for (size_t i = 0; i < st.args.size(); ++i) {
                ExprInfo info;
                poke16(lc, static_cast<uint16_t>(
                               evalExpr(st.args[i], argLoc(st, i), true,
                                        &info)));
                noteReloc(lc, info, RelCtx::None, st, i);
                lc += 2;
            }
        } else if (d == ".byte") {
            for (size_t i = 0; i < st.args.size(); ++i) {
                ExprInfo info;
                poke8(lc, static_cast<uint8_t>(
                              evalExpr(st.args[i], argLoc(st, i), true,
                                       &info)));
                noteReloc(lc, info, RelCtx::None, st, i);
                lc += 1;
            }
        } else if (d == ".ascii" || d == ".asciz") {
            std::string bytes = decodeString(st.args[0], argLoc(st, 0));
            if (d == ".asciz")
                bytes.push_back('\0');
            for (char c : bytes)
                poke8(lc++, static_cast<uint8_t>(c));
        }
        // .space/.zero/.align/.balign already zero-filled; no-ops emit none.
    }

    std::string
    decodeString(const std::string& arg, const Loc& loc) const
    {
        std::string t = trim(arg);
        if (t.size() < 2 || t.front() != '"' || t.back() != '"')
            err(loc, "expected a quoted string");
        std::string out;
        for (size_t i = 1; i + 1 < t.size(); ++i) {
            char c = t[i];
            if (c == '\\' && i + 2 < t.size()) {
                char n = t[++i];
                switch (n) {
                  case 'n': out.push_back('\n'); break;
                  case 't': out.push_back('\t'); break;
                  case '0': out.push_back('\0'); break;
                  case '\\': out.push_back('\\'); break;
                  case '"': out.push_back('"'); break;
                  default: out.push_back(n); break;
                }
            } else {
                out.push_back(c);
            }
        }
        return out;
    }

    //
    // Instruction emission
    //

    RegId
    xreg(const Stmt& st, size_t i) const
    {
        if (i >= st.args.size())
            err(st, "missing operand");
        auto r = parseIntReg(st.args[i]);
        if (!r)
            errArg(st, i, "expected integer register, got '" +
                              st.args[i] + "'");
        return *r;
    }

    RegId
    freg(const Stmt& st, size_t i) const
    {
        if (i >= st.args.size())
            err(st, "missing operand");
        auto r = parseFpReg(st.args[i]);
        if (!r)
            errArg(st, i,
                   "expected FP register, got '" + st.args[i] + "'");
        return *r;
    }

    int32_t
    imm(const Stmt& st, size_t i, RelCtx ctx = RelCtx::None)
    {
        if (i >= st.args.size())
            err(st, "missing immediate");
        ExprInfo info;
        int64_t v = evalExpr(st.args[i], argLoc(st, i), true, &info);
        noteReloc(st.addr, info, ctx, st, i);
        return static_cast<int32_t>(v);
    }

    /** @p v must fit [@p lo, @p hi] or the operand is diagnosed. */
    int32_t
    checkRange(const Stmt& st, size_t i, int64_t v, int64_t lo, int64_t hi,
               const char* what) const
    {
        if (v < lo || v > hi)
            errArg(st, i, std::string(what) + " " + std::to_string(v) +
                              " out of range [" + std::to_string(lo) +
                              ", " + std::to_string(hi) + "]");
        return static_cast<int32_t>(v);
    }

    /** Branch target: label or literal => pc-relative offset, range
     *  checked for the B-format (+-4 KiB). */
    int32_t
    btarget(const Stmt& st, size_t i, Addr pc) const
    {
        int64_t abs = evalExpr(st.args[i], argLoc(st, i), true);
        int64_t off = abs - static_cast<int64_t>(pc);
        if (off < -4096 || off > 4094 || (off & 1))
            errArg(st, i, "branch target out of range (offset " +
                              std::to_string(off) + ", limit +-4 KiB)");
        return static_cast<int32_t>(off);
    }

    /** Jump target for jal/j/call/tail: range checked for J (+-1 MiB). */
    int32_t
    jtarget(const Stmt& st, size_t i, Addr pc) const
    {
        int64_t abs = evalExpr(st.args[i], argLoc(st, i), true);
        int64_t off = abs - static_cast<int64_t>(pc);
        if (off < -1048576 || off > 1048574 || (off & 1))
            errArg(st, i, "jump target out of range (offset " +
                              std::to_string(off) + ", limit +-1 MiB)");
        return static_cast<int32_t>(off);
    }

    /** Parse "imm(reg)" or "(reg)" or "imm" address syntax. */
    std::pair<int32_t, RegId>
    memOperand(const Stmt& st, size_t i, RelCtx ctx)
    {
        if (i >= st.args.size())
            err(st, "missing memory operand");
        const std::string& a = st.args[i];
        size_t open = a.rfind('(');
        if (open == std::string::npos)
            errArg(st, i, "expected imm(reg) operand, got '" + a + "'");
        size_t close = a.rfind(')');
        if (close == std::string::npos || close < open)
            errArg(st, i, "unbalanced parens in '" + a + "'");
        std::string off = trim(a.substr(0, open));
        std::string reg = trim(a.substr(open + 1, close - open - 1));
        auto r = parseIntReg(reg);
        if (!r)
            errArg(st, i, "bad base register '" + reg + "'");
        int32_t o = 0;
        if (!off.empty()) {
            ExprInfo info;
            int64_t v = evalExpr(off, argLoc(st, i), true, &info);
            noteReloc(st.addr, info, ctx, st, i);
            o = checkRange(st, i, v, -2048, 2047, "memory offset");
        }
        return {o, *r};
    }

    void
    emitWord(Addr addr, const Instr& in)
    {
        poke32(addr, encode(in));
    }

    Instr
    mk(InstrKind k) const
    {
        Instr in;
        in.kind = k;
        return in;
    }

    void
    expect(const Stmt& st, size_t n) const
    {
        if (st.args.size() != n)
            err(st, st.head + ": expected " + std::to_string(n) +
                        " operands, got " + std::to_string(st.args.size()));
    }

    void emitInstruction(const Stmt& st);

    Addr base_;
    std::vector<std::string> unitNames_;
    std::vector<Stmt> stmts_;
    std::vector<LabelRef> labelsAt_;
    std::map<std::string, Addr> symbols_;
    std::map<std::string, int64_t> equs_;
    std::set<std::string> globals_;
    std::vector<PendingReloc> relocs_;
    std::vector<uint8_t> image_;
    uint8_t section_ = kText; ///< current section during parse
    int sectCount_[kNumSections] = {0, 0, 0};
    Addr sectionStart_[kNumSections] = {0, 0, 0};
    size_t sectionSize_[kNumSections] = {0, 0, 0};
    size_t imageSize_ = 0;
};

/** mnemonic -> InstrKind for all regular (non-pseudo) instructions. */
const std::map<std::string, InstrKind>&
mnemonicTable()
{
    static const std::map<std::string, InstrKind> table = [] {
        std::map<std::string, InstrKind> m;
        for (uint16_t k = 1; k < static_cast<uint16_t>(InstrKind::kCount);
             ++k) {
            auto kind = static_cast<InstrKind>(k);
            m[instrInfo(kind).mnemonic] = kind;
        }
        return m;
    }();
    return table;
}

void
Engine::emitInstruction(const Stmt& st)
{
    const std::string& m = st.head;
    const Addr pc = st.addr;
    using K = InstrKind;

    //
    // Pseudo-instructions first.
    //
    if (m == "nop") {
        Instr in = mk(K::ADDI);
        emitWord(pc, in);
        return;
    }
    if (m == "mv") {
        expect(st, 2);
        Instr in = mk(K::ADDI);
        in.rd = xreg(st, 0);
        in.rs1 = xreg(st, 1);
        emitWord(pc, in);
        return;
    }
    if (m == "not") {
        expect(st, 2);
        Instr in = mk(K::XORI);
        in.rd = xreg(st, 0);
        in.rs1 = xreg(st, 1);
        in.imm = -1;
        emitWord(pc, in);
        return;
    }
    if (m == "neg") {
        expect(st, 2);
        Instr in = mk(K::SUB);
        in.rd = xreg(st, 0);
        in.rs1 = 0;
        in.rs2 = xreg(st, 1);
        emitWord(pc, in);
        return;
    }
    if (m == "seqz" || m == "snez" || m == "sltz" || m == "sgtz") {
        expect(st, 2);
        Instr in;
        if (m == "seqz") {
            in = mk(K::SLTIU);
            in.rd = xreg(st, 0);
            in.rs1 = xreg(st, 1);
            in.imm = 1;
        } else if (m == "snez") {
            in = mk(K::SLTU);
            in.rd = xreg(st, 0);
            in.rs1 = 0;
            in.rs2 = xreg(st, 1);
        } else if (m == "sltz") {
            in = mk(K::SLT);
            in.rd = xreg(st, 0);
            in.rs1 = xreg(st, 1);
            in.rs2 = 0;
        } else {
            in = mk(K::SLT);
            in.rd = xreg(st, 0);
            in.rs1 = 0;
            in.rs2 = xreg(st, 1);
        }
        emitWord(pc, in);
        return;
    }
    if (m == "beqz" || m == "bnez" || m == "blez" || m == "bgez" ||
        m == "bltz" || m == "bgtz") {
        expect(st, 2);
        Instr in;
        RegId rs = xreg(st, 0);
        int32_t off = btarget(st, 1, pc);
        if (m == "beqz") {
            in = mk(K::BEQ);
            in.rs1 = rs;
            in.rs2 = 0;
        } else if (m == "bnez") {
            in = mk(K::BNE);
            in.rs1 = rs;
            in.rs2 = 0;
        } else if (m == "blez") {
            in = mk(K::BGE);
            in.rs1 = 0;
            in.rs2 = rs;
        } else if (m == "bgez") {
            in = mk(K::BGE);
            in.rs1 = rs;
            in.rs2 = 0;
        } else if (m == "bltz") {
            in = mk(K::BLT);
            in.rs1 = rs;
            in.rs2 = 0;
        } else {
            in = mk(K::BLT);
            in.rs1 = 0;
            in.rs2 = rs;
        }
        in.imm = off;
        emitWord(pc, in);
        return;
    }
    if (m == "bgt" || m == "ble" || m == "bgtu" || m == "bleu") {
        expect(st, 3);
        Instr in = mk(m == "bgt" ? K::BLT
                      : m == "ble" ? K::BGE
                      : m == "bgtu" ? K::BLTU
                                    : K::BGEU);
        in.rs1 = xreg(st, 1); // swapped
        in.rs2 = xreg(st, 0);
        in.imm = btarget(st, 2, pc);
        emitWord(pc, in);
        return;
    }
    if (m == "j" || m == "tail") {
        expect(st, 1);
        Instr in = mk(K::JAL);
        in.rd = 0;
        in.imm = jtarget(st, 0, pc);
        emitWord(pc, in);
        return;
    }
    if (m == "call") {
        expect(st, 1);
        Instr in = mk(K::JAL);
        in.rd = 1;
        in.imm = jtarget(st, 0, pc);
        emitWord(pc, in);
        return;
    }
    if (m == "jr") {
        expect(st, 1);
        Instr in = mk(K::JALR);
        in.rd = 0;
        in.rs1 = xreg(st, 0);
        emitWord(pc, in);
        return;
    }
    if (m == "ret") {
        Instr in = mk(K::JALR);
        in.rd = 0;
        in.rs1 = 1;
        emitWord(pc, in);
        return;
    }
    if (m == "li" || m == "la") {
        expect(st, 2);
        RegId rd = xreg(st, 0);
        ExprInfo info;
        int64_t value = evalExpr(st.args[1], argLoc(st, 1), true, &info);
        uint32_t u = static_cast<uint32_t>(value);
        if (st.size == 4) {
            Instr in = mk(K::ADDI);
            in.rd = rd;
            in.rs1 = 0;
            in.imm = static_cast<int32_t>(value);
            emitWord(pc, in);
        } else {
            noteReloc(pc, info, RelCtx::LaLi, st, 1);
            uint32_t hi = (u + 0x800u) & 0xFFFFF000u;
            int32_t lo = sext(u & 0xFFFu, 12);
            Instr lui = mk(K::LUI);
            lui.rd = rd;
            lui.imm = static_cast<int32_t>(hi);
            emitWord(pc, lui);
            Instr addi = mk(K::ADDI);
            addi.rd = rd;
            addi.rs1 = rd;
            addi.imm = lo;
            emitWord(pc + 4, addi);
        }
        return;
    }
    if (m == "csrr") {
        expect(st, 2);
        Instr in = mk(K::CSRRS);
        in.rd = xreg(st, 0);
        in.rs1 = 0;
        in.csr = static_cast<uint32_t>(imm(st, 1));
        emitWord(pc, in);
        return;
    }
    if (m == "csrw" || m == "csrs" || m == "csrc") {
        expect(st, 2);
        Instr in = mk(m == "csrw" ? K::CSRRW
                      : m == "csrs" ? K::CSRRS
                                    : K::CSRRC);
        in.rd = 0;
        in.csr = static_cast<uint32_t>(imm(st, 0));
        in.rs1 = xreg(st, 1);
        emitWord(pc, in);
        return;
    }
    if (m == "csrwi") {
        expect(st, 2);
        Instr in = mk(K::CSRRWI);
        in.rd = 0;
        in.csr = static_cast<uint32_t>(imm(st, 0));
        in.imm = imm(st, 1);
        emitWord(pc, in);
        return;
    }
    if (m == "fmv.s" || m == "fabs.s" || m == "fneg.s") {
        expect(st, 2);
        Instr in = mk(m == "fmv.s" ? K::FSGNJ_S
                      : m == "fabs.s" ? K::FSGNJX_S
                                      : K::FSGNJN_S);
        in.rd = freg(st, 0);
        in.rs1 = freg(st, 1);
        in.rs2 = in.rs1;
        emitWord(pc, in);
        return;
    }

    //
    // Regular instructions.
    //
    auto it = mnemonicTable().find(m);
    if (it == mnemonicTable().end())
        err(st, "unknown mnemonic '" + m + "'");
    InstrKind kind = it->second;
    Instr in = mk(kind);

    switch (kind) {
      case K::LUI: {
        expect(st, 2);
        in.rd = xreg(st, 0);
        // Accept either a raw 20-bit value or a %hi() result.
        ExprInfo info;
        int64_t v = evalExpr(st.args[1], argLoc(st, 1), true, &info);
        noteReloc(pc, info, RelCtx::Lui, st, 1);
        in.imm = static_cast<int32_t>(static_cast<uint32_t>(v) << 12);
        break;
      }
      case K::AUIPC: {
        expect(st, 2);
        in.rd = xreg(st, 0);
        ExprInfo info;
        int64_t v = evalExpr(st.args[1], argLoc(st, 1), true, &info);
        noteReloc(pc, info, RelCtx::None, st, 1);
        in.imm = static_cast<int32_t>(static_cast<uint32_t>(v) << 12);
        break;
      }
      case K::JAL:
        if (st.args.size() == 1) {
            in.rd = 1;
            in.imm = jtarget(st, 0, pc);
        } else {
            expect(st, 2);
            in.rd = xreg(st, 0);
            in.imm = jtarget(st, 1, pc);
        }
        break;
      case K::JALR:
        if (st.args.size() == 1) {
            in.rd = 1;
            in.rs1 = xreg(st, 0);
            in.imm = 0;
        } else if (st.args.size() == 2) {
            in.rd = xreg(st, 0);
            auto [o, r] = memOperand(st, 1, RelCtx::ImmI);
            in.imm = o;
            in.rs1 = r;
        } else {
            expect(st, 3);
            in.rd = xreg(st, 0);
            in.rs1 = xreg(st, 1);
            in.imm = checkRange(st, 2, imm(st, 2, RelCtx::ImmI), -2048,
                                2047, "immediate");
        }
        break;
      case K::BEQ: case K::BNE: case K::BLT: case K::BGE:
      case K::BLTU: case K::BGEU:
        expect(st, 3);
        in.rs1 = xreg(st, 0);
        in.rs2 = xreg(st, 1);
        in.imm = btarget(st, 2, pc);
        break;
      case K::LB: case K::LH: case K::LW: case K::LBU: case K::LHU: {
        expect(st, 2);
        in.rd = xreg(st, 0);
        auto [o, r] = memOperand(st, 1, RelCtx::ImmI);
        in.imm = o;
        in.rs1 = r;
        break;
      }
      case K::FLW: {
        expect(st, 2);
        in.rd = freg(st, 0);
        auto [o, r] = memOperand(st, 1, RelCtx::ImmI);
        in.imm = o;
        in.rs1 = r;
        break;
      }
      case K::SB: case K::SH: case K::SW: {
        expect(st, 2);
        in.rs2 = xreg(st, 0);
        auto [o, r] = memOperand(st, 1, RelCtx::ImmS);
        in.imm = o;
        in.rs1 = r;
        break;
      }
      case K::FSW: {
        expect(st, 2);
        in.rs2 = freg(st, 0);
        auto [o, r] = memOperand(st, 1, RelCtx::ImmS);
        in.imm = o;
        in.rs1 = r;
        break;
      }
      case K::ADDI: case K::SLTI: case K::SLTIU: case K::XORI:
      case K::ORI: case K::ANDI:
        expect(st, 3);
        in.rd = xreg(st, 0);
        in.rs1 = xreg(st, 1);
        in.imm = checkRange(st, 2, imm(st, 2, RelCtx::ImmI), -2048, 2047,
                            "immediate");
        break;
      case K::SLLI: case K::SRLI: case K::SRAI:
        expect(st, 3);
        in.rd = xreg(st, 0);
        in.rs1 = xreg(st, 1);
        in.imm = checkRange(st, 2, imm(st, 2), 0, 31, "shift amount");
        break;
      case K::ADD: case K::SUB: case K::SLL: case K::SLT: case K::SLTU:
      case K::XOR: case K::SRL: case K::SRA: case K::OR: case K::AND:
      case K::MUL: case K::MULH: case K::MULHSU: case K::MULHU:
      case K::DIV: case K::DIVU: case K::REM: case K::REMU:
        expect(st, 3);
        in.rd = xreg(st, 0);
        in.rs1 = xreg(st, 1);
        in.rs2 = xreg(st, 2);
        break;
      case K::FENCE: case K::ECALL: case K::EBREAK:
        break;
      case K::CSRRW: case K::CSRRS: case K::CSRRC:
        expect(st, 3);
        in.rd = xreg(st, 0);
        in.csr = static_cast<uint32_t>(imm(st, 1));
        in.rs1 = xreg(st, 2);
        break;
      case K::CSRRWI: case K::CSRRSI: case K::CSRRCI:
        expect(st, 3);
        in.rd = xreg(st, 0);
        in.csr = static_cast<uint32_t>(imm(st, 1));
        in.imm = imm(st, 2);
        break;
      case K::FMADD_S: case K::FMSUB_S: case K::FNMSUB_S: case K::FNMADD_S:
        expect(st, 4);
        in.rd = freg(st, 0);
        in.rs1 = freg(st, 1);
        in.rs2 = freg(st, 2);
        in.rs3 = freg(st, 3);
        break;
      case K::FADD_S: case K::FSUB_S: case K::FMUL_S: case K::FDIV_S:
      case K::FSGNJ_S: case K::FSGNJN_S: case K::FSGNJX_S:
      case K::FMIN_S: case K::FMAX_S:
        expect(st, 3);
        in.rd = freg(st, 0);
        in.rs1 = freg(st, 1);
        in.rs2 = freg(st, 2);
        break;
      case K::FSQRT_S:
        expect(st, 2);
        in.rd = freg(st, 0);
        in.rs1 = freg(st, 1);
        break;
      case K::FCVT_W_S: case K::FCVT_WU_S: case K::FMV_X_W:
      case K::FCLASS_S:
        expect(st, 2);
        in.rd = xreg(st, 0);
        in.rs1 = freg(st, 1);
        break;
      case K::FEQ_S: case K::FLT_S: case K::FLE_S:
        expect(st, 3);
        in.rd = xreg(st, 0);
        in.rs1 = freg(st, 1);
        in.rs2 = freg(st, 2);
        break;
      case K::FCVT_S_W: case K::FCVT_S_WU: case K::FMV_W_X:
        expect(st, 2);
        in.rd = freg(st, 0);
        in.rs1 = xreg(st, 1);
        break;
      case K::VX_TMC:
      case K::VX_SPLIT:
        expect(st, 1);
        in.rs1 = xreg(st, 0);
        break;
      case K::VX_WSPAWN:
      case K::VX_BAR:
        expect(st, 2);
        in.rs1 = xreg(st, 0);
        in.rs2 = xreg(st, 1);
        break;
      case K::VX_JOIN:
        expect(st, 0);
        break;
      case K::VX_TEX:
        expect(st, 4);
        in.rd = xreg(st, 0);
        in.rs1 = freg(st, 1);
        in.rs2 = freg(st, 2);
        in.rs3 = freg(st, 3);
        break;
      default:
        err(st, "unhandled mnemonic '" + m + "'");
    }
    emitWord(pc, in);
}

} // namespace

Program
Assembler::assemble(const std::string& source, const std::string& name)
{
    Engine engine(base_);
    engine.run({{name, source}});
    return engine.takeProgram();
}

Program
Assembler::assembleAll(const std::vector<std::string>& sources)
{
    std::vector<SourceUnit> units;
    units.reserve(sources.size());
    for (size_t i = 0; i < sources.size(); ++i)
        units.push_back({"<asm#" + std::to_string(i + 1) + ">",
                         sources[i]});
    return assembleUnits(units);
}

Program
Assembler::assembleUnits(const std::vector<SourceUnit>& units)
{
    Engine engine(base_);
    engine.run(units);
    return engine.takeProgram();
}

ObjectFile
Assembler::assembleObject(const std::vector<SourceUnit>& units)
{
    Engine engine(base_);
    engine.run(units);
    return engine.takeObject();
}

} // namespace vortex::isa
