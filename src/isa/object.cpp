/**
 * @file
 * VXOB object reader/writer and the rebasing loader-side half
 * (ObjectFile::toProgram). Dependency-free: plain little-endian byte
 * serialization, every read bounds-checked.
 */

#include "isa/object.h"

#include <algorithm>
#include <fstream>

#include "common/log.h"

namespace vortex::isa {

const char*
relocKindName(RelocKind kind)
{
    switch (kind) {
      case RelocKind::Abs32: return "abs32";
      case RelocKind::Hi20: return "hi20";
      case RelocKind::Lo12I: return "lo12i";
      case RelocKind::Lo12S: return "lo12s";
    }
    return "?";
}

namespace {

//
// Little-endian byte-stream helpers
//

void
put8(std::vector<uint8_t>& out, uint8_t v)
{
    out.push_back(v);
}

void
put16(std::vector<uint8_t>& out, uint16_t v)
{
    put8(out, v & 0xFF);
    put8(out, v >> 8);
}

void
put32(std::vector<uint8_t>& out, uint32_t v)
{
    put16(out, v & 0xFFFF);
    put16(out, v >> 16);
}

void
putName(std::vector<uint8_t>& out, const std::string& name)
{
    if (name.size() > 255)
        fatal("object name too long (", name.size(), " bytes): '",
              name.substr(0, 32), "...'");
    put8(out, static_cast<uint8_t>(name.size()));
    out.insert(out.end(), name.begin(), name.end());
}

/** Bounds-checked forward reader over a byte buffer. */
class Cursor
{
  public:
    Cursor(const uint8_t* data, size_t size, const std::string& name)
        : data_(data), size_(size), name_(name)
    {
    }

    uint8_t
    u8(const char* what)
    {
        need(1, what);
        return data_[pos_++];
    }

    uint16_t
    u16(const char* what)
    {
        need(2, what);
        uint16_t v = static_cast<uint16_t>(data_[pos_]) |
                     static_cast<uint16_t>(data_[pos_ + 1]) << 8;
        pos_ += 2;
        return v;
    }

    uint32_t
    u32(const char* what)
    {
        need(4, what);
        uint32_t v = 0;
        for (int i = 3; i >= 0; --i)
            v = v << 8 | data_[pos_ + i];
        pos_ += 4;
        return v;
    }

    std::string
    name(const char* what)
    {
        size_t n = u8(what);
        need(n, what);
        std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
        pos_ += n;
        return s;
    }

    std::vector<uint8_t>
    bytes(size_t n, const char* what)
    {
        need(n, what);
        std::vector<uint8_t> v(data_ + pos_, data_ + pos_ + n);
        pos_ += n;
        return v;
    }

    size_t pos() const { return pos_; }

    void
    need(size_t n, const char* what) const
    {
        if (pos_ + n > size_)
            fatal(name_, ": truncated object file (need ", n,
                  " byte(s) for ", what, " at offset ", pos_, ", have ",
                  size_ - pos_, ")");
    }

  private:
    const uint8_t* data_;
    size_t size_;
    size_t pos_ = 0;
    std::string name_;
};

} // namespace

std::vector<uint8_t>
writeObject(const ObjectFile& obj)
{
    std::vector<uint8_t> out;
    out.reserve(64 + obj.image.size());
    put32(out, kObjectMagic);
    put16(out, kObjectVersion);
    put16(out, 0); // flags, reserved
    put32(out, obj.linkBase);
    put32(out, obj.entry);
    put32(out, static_cast<uint32_t>(obj.image.size()));
    put32(out, static_cast<uint32_t>(obj.sections.size()));
    put32(out, static_cast<uint32_t>(obj.symbols.size()));
    put32(out, static_cast<uint32_t>(obj.relocs.size()));
    out.insert(out.end(), obj.image.begin(), obj.image.end());
    for (const ObjSection& s : obj.sections) {
        putName(out, s.name);
        put32(out, s.offset);
        put32(out, s.size);
        put8(out, (s.exec ? 1 : 0) | (s.writable ? 2 : 0));
    }
    for (const ObjSymbol& s : obj.symbols) {
        putName(out, s.name);
        put32(out, s.offset);
        put8(out, s.global ? 1 : 0);
    }
    for (const ObjReloc& r : obj.relocs) {
        put32(out, r.offset);
        put8(out, static_cast<uint8_t>(r.kind));
        put32(out, r.target);
    }
    return out;
}

ObjectFile
readObject(const uint8_t* data, size_t size, const std::string& name)
{
    Cursor cur(data, size, name);
    if (size < 4 || cur.u32("magic") != kObjectMagic)
        fatal(name, ": not a Vortex object file (bad magic; expected "
              "\"VXOB\")");
    uint16_t version = cur.u16("version");
    if (version != kObjectVersion)
        fatal(name, ": unsupported object version ", version,
              " (this build reads version ", kObjectVersion, ")");
    cur.u16("flags");

    ObjectFile obj;
    obj.linkBase = cur.u32("link base");
    obj.entry = cur.u32("entry point");
    uint32_t imageSize = cur.u32("image size");
    uint32_t nSections = cur.u32("section count");
    uint32_t nSymbols = cur.u32("symbol count");
    uint32_t nRelocs = cur.u32("reloc count");
    obj.image = cur.bytes(imageSize, "image");

    obj.sections.reserve(nSections);
    for (uint32_t i = 0; i < nSections; ++i) {
        ObjSection s;
        s.name = cur.name("section name");
        s.offset = cur.u32("section offset");
        s.size = cur.u32("section size");
        uint8_t flags = cur.u8("section flags");
        s.exec = flags & 1;
        s.writable = flags & 2;
        if (static_cast<uint64_t>(s.offset) + s.size > imageSize)
            fatal(name, ": section '", s.name, "' [", s.offset, ", +",
                  s.size, ") lies outside the ", imageSize, "-byte image");
        obj.sections.push_back(std::move(s));
    }
    obj.symbols.reserve(nSymbols);
    for (uint32_t i = 0; i < nSymbols; ++i) {
        ObjSymbol s;
        s.name = cur.name("symbol name");
        s.offset = cur.u32("symbol offset");
        s.global = cur.u8("symbol flags") & 1;
        obj.symbols.push_back(std::move(s));
    }
    obj.relocs.reserve(nRelocs);
    for (uint32_t i = 0; i < nRelocs; ++i) {
        ObjReloc r;
        r.offset = cur.u32("reloc offset");
        uint8_t kind = cur.u8("reloc kind");
        if (kind > static_cast<uint8_t>(RelocKind::Lo12S))
            fatal(name, ": unknown relocation kind ", int(kind),
                  " at image offset ", r.offset);
        r.kind = static_cast<RelocKind>(kind);
        r.target = cur.u32("reloc target");
        if (static_cast<uint64_t>(r.offset) + 4 > imageSize)
            fatal(name, ": relocation patch site ", r.offset,
                  " lies outside the ", imageSize, "-byte image");
        obj.relocs.push_back(r);
    }
    if (obj.entry < obj.linkBase ||
        obj.entry > obj.linkBase + imageSize)
        fatal(name, ": entry point 0x", std::hex, obj.entry,
              " lies outside the image");
    return obj;
}

namespace {

uint32_t
peek32(const std::vector<uint8_t>& image, uint32_t off)
{
    return static_cast<uint32_t>(image[off]) |
           static_cast<uint32_t>(image[off + 1]) << 8 |
           static_cast<uint32_t>(image[off + 2]) << 16 |
           static_cast<uint32_t>(image[off + 3]) << 24;
}

void
poke32(std::vector<uint8_t>& image, uint32_t off, uint32_t v)
{
    image[off] = v & 0xFF;
    image[off + 1] = v >> 8 & 0xFF;
    image[off + 2] = v >> 16 & 0xFF;
    image[off + 3] = v >> 24 & 0xFF;
}

} // namespace

Program
ObjectFile::toProgram(Addr loadBase) const
{
    Program p;
    p.base = loadBase;
    p.entry = entry - linkBase + loadBase;
    for (const ObjSection& s : sections)
        if (s.exec)
            p.execEnd = std::max(p.execEnd,
                                 loadBase + s.offset + s.size);
    p.image = image;
    for (const ObjSymbol& s : symbols)
        p.symbols[s.name] = loadBase + s.offset;

    if (loadBase == linkBase)
        return p; // relocations would all be no-ops

    for (const ObjReloc& r : relocs) {
        uint32_t target = r.target - linkBase + loadBase;
        uint32_t word = peek32(p.image, r.offset);
        switch (r.kind) {
          case RelocKind::Abs32:
            word = target;
            break;
          case RelocKind::Hi20:
            word = (word & 0xFFFu) | ((target + 0x800u) & 0xFFFFF000u);
            break;
          case RelocKind::Lo12I:
            word = (word & 0x000FFFFFu) | (target & 0xFFFu) << 20;
            break;
          case RelocKind::Lo12S:
            word = (word & 0x01FFF07Fu) | (target & 0xFE0u) << 20 |
                   (target & 0x1Fu) << 7;
            break;
        }
        poke32(p.image, r.offset, word);
    }
    return p;
}

ObjectFile
readObjectFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot open object file '", path, "'");
    std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                               std::istreambuf_iterator<char>());
    return readObject(bytes.data(), bytes.size(), path);
}

void
writeObjectFile(const ObjectFile& obj, const std::string& path)
{
    std::vector<uint8_t> bytes = writeObject(obj);
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("cannot write object file '", path, "'");
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

} // namespace vortex::isa
