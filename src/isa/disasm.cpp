/**
 * @file
 * Disassembler and register naming (used by the trace infrastructure and the
 * round-trip property tests).
 */

#include <array>
#include <sstream>

#include "isa/isa.h"

namespace vortex::isa {

namespace {

constexpr std::array<const char*, 32> kIntRegNames = {
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
    "s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
    "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
    "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
};

constexpr std::array<const char*, 32> kFpRegNames = {
    "ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6", "ft7",
    "fs0", "fs1", "fa0", "fa1", "fa2", "fa3", "fa4", "fa5",
    "fa6", "fa7", "fs2", "fs3", "fs4", "fs5", "fs6", "fs7",
    "fs8", "fs9", "fs10", "fs11", "ft8", "ft9", "ft10", "ft11",
};

} // namespace

const char*
intRegName(RegId r)
{
    return kIntRegNames[r & 31];
}

const char*
fpRegName(RegId r)
{
    return kFpRegNames[r & 31];
}

std::string
disassemble(const Instr& in)
{
    using K = InstrKind;
    const InstrInfo& info = instrInfo(in.kind);
    std::ostringstream os;
    os << info.mnemonic;

    auto xr = [](RegId r) { return kIntRegNames[r & 31]; };
    auto fr = [](RegId r) { return kFpRegNames[r & 31]; };

    switch (in.kind) {
      case K::Invalid:
        break;
      case K::LUI:
      case K::AUIPC:
        os << " " << xr(in.rd) << ", 0x" << std::hex
           << (static_cast<uint32_t>(in.imm) >> 12);
        break;
      case K::JAL:
        os << " " << xr(in.rd) << ", " << std::dec << in.imm;
        break;
      case K::JALR:
        os << " " << xr(in.rd) << ", " << in.imm << "(" << xr(in.rs1) << ")";
        break;
      case K::BEQ: case K::BNE: case K::BLT: case K::BGE:
      case K::BLTU: case K::BGEU:
        os << " " << xr(in.rs1) << ", " << xr(in.rs2) << ", " << in.imm;
        break;
      case K::LB: case K::LH: case K::LW: case K::LBU: case K::LHU:
        os << " " << xr(in.rd) << ", " << in.imm << "(" << xr(in.rs1) << ")";
        break;
      case K::FLW:
        os << " " << fr(in.rd) << ", " << in.imm << "(" << xr(in.rs1) << ")";
        break;
      case K::SB: case K::SH: case K::SW:
        os << " " << xr(in.rs2) << ", " << in.imm << "(" << xr(in.rs1) << ")";
        break;
      case K::FSW:
        os << " " << fr(in.rs2) << ", " << in.imm << "(" << xr(in.rs1) << ")";
        break;
      case K::ADDI: case K::SLTI: case K::SLTIU: case K::XORI:
      case K::ORI: case K::ANDI: case K::SLLI: case K::SRLI: case K::SRAI:
        os << " " << xr(in.rd) << ", " << xr(in.rs1) << ", " << in.imm;
        break;
      case K::ADD: case K::SUB: case K::SLL: case K::SLT: case K::SLTU:
      case K::XOR: case K::SRL: case K::SRA: case K::OR: case K::AND:
      case K::MUL: case K::MULH: case K::MULHSU: case K::MULHU:
      case K::DIV: case K::DIVU: case K::REM: case K::REMU:
        os << " " << xr(in.rd) << ", " << xr(in.rs1) << ", " << xr(in.rs2);
        break;
      case K::FENCE: case K::ECALL: case K::EBREAK:
        break;
      case K::CSRRW: case K::CSRRS: case K::CSRRC:
        os << " " << xr(in.rd) << ", 0x" << std::hex << in.csr << std::dec
           << ", " << xr(in.rs1);
        break;
      case K::CSRRWI: case K::CSRRSI: case K::CSRRCI:
        os << " " << xr(in.rd) << ", 0x" << std::hex << in.csr << std::dec
           << ", " << in.imm;
        break;
      case K::FMADD_S: case K::FMSUB_S: case K::FNMSUB_S: case K::FNMADD_S:
        os << " " << fr(in.rd) << ", " << fr(in.rs1) << ", " << fr(in.rs2)
           << ", " << fr(in.rs3);
        break;
      case K::FADD_S: case K::FSUB_S: case K::FMUL_S: case K::FDIV_S:
      case K::FSGNJ_S: case K::FSGNJN_S: case K::FSGNJX_S:
      case K::FMIN_S: case K::FMAX_S:
        os << " " << fr(in.rd) << ", " << fr(in.rs1) << ", " << fr(in.rs2);
        break;
      case K::FSQRT_S:
        os << " " << fr(in.rd) << ", " << fr(in.rs1);
        break;
      case K::FCVT_W_S: case K::FCVT_WU_S: case K::FMV_X_W:
      case K::FCLASS_S:
        os << " " << xr(in.rd) << ", " << fr(in.rs1);
        break;
      case K::FEQ_S: case K::FLT_S: case K::FLE_S:
        os << " " << xr(in.rd) << ", " << fr(in.rs1) << ", " << fr(in.rs2);
        break;
      case K::FCVT_S_W: case K::FCVT_S_WU: case K::FMV_W_X:
        os << " " << fr(in.rd) << ", " << xr(in.rs1);
        break;
      case K::VX_TMC:
      case K::VX_SPLIT:
        os << " " << xr(in.rs1);
        break;
      case K::VX_WSPAWN:
      case K::VX_BAR:
        os << " " << xr(in.rs1) << ", " << xr(in.rs2);
        break;
      case K::VX_JOIN:
        break;
      case K::VX_TEX:
        os << " " << xr(in.rd) << ", " << fr(in.rs1) << ", " << fr(in.rs2)
           << ", " << fr(in.rs3);
        break;
      default:
        break;
    }
    return os.str();
}

} // namespace vortex::isa
