/**
 * @file
 * The Vortex object format ("VXOB"): a small versioned container for one
 * relocatable guest program — flat image + section table + symbols +
 * relocations — written and read without any external tooling. It is the
 * interchange format between `Assembler::assembleObject` and the device
 * loader (`runtime::Device::uploadObject`); see docs/TOOLCHAIN.md for the
 * byte-level layout.
 *
 * Design notes:
 *  - Sections (.text/.rodata/.data) are already laid out into ONE flat
 *    image at `linkBase`; the section table records their extents (the
 *    loader uses it to mark code pages), not independent segments.
 *  - Because the whole image rebases as a unit, pc-relative encodings
 *    (branches, jal) need no relocations. Only absolute references are
 *    recorded: `.word label` (Abs32), `lui`+%hi / `la` hi halves (Hi20),
 *    and I/S-type %lo(...) offsets (Lo12I/Lo12S). Each relocation stores
 *    the absolute target address as linked at `linkBase`; loading at
 *    `loadBase` re-encodes `target + (loadBase - linkBase)` into the
 *    patched field.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/assembler.h"

namespace vortex::isa {

/** File magic, "VXOB" read as a little-endian u32. */
constexpr uint32_t kObjectMagic = 0x424F5856u;

/** Format version this build writes and reads. */
constexpr uint16_t kObjectVersion = 1;

/** Relocation encodings (see file header for semantics). */
enum class RelocKind : uint8_t
{
    Abs32 = 0, ///< 32-bit absolute word (.word label)
    Hi20 = 1,  ///< U-type bits [31:12], value (target+0x800)>>12 (lui/la)
    Lo12I = 2, ///< I-type imm [31:20], value target & 0xFFF (addi/loads)
    Lo12S = 3, ///< S-type imm [31:25]+[11:7] (stores)
};

const char* relocKindName(RelocKind kind);

struct ObjSection
{
    std::string name;    ///< ".text" / ".rodata" / ".data"
    uint32_t offset = 0; ///< byte offset into image
    uint32_t size = 0;   ///< byte size (may be 0)
    bool exec = false;
    bool writable = false;
};

struct ObjSymbol
{
    std::string name;
    uint32_t offset = 0; ///< byte offset from linkBase
    bool global = false; ///< was named in a .globl directive
};

struct ObjReloc
{
    uint32_t offset = 0; ///< patch-site byte offset into image
    RelocKind kind = RelocKind::Abs32;
    uint32_t target = 0; ///< absolute target address at linkBase
};

/** One relocatable guest program. */
struct ObjectFile
{
    Addr linkBase = 0; ///< address the image was linked at
    Addr entry = 0;    ///< absolute entry point at linkBase
    std::vector<uint8_t> image;
    std::vector<ObjSection> sections;
    std::vector<ObjSymbol> symbols;
    std::vector<ObjReloc> relocs;

    /**
     * Materialize a loadable Program at @p loadBase: copy the image,
     * apply every relocation for the rebase delta, and absolutize the
     * symbol table. With loadBase == linkBase the image is returned
     * byte-identical (the fast path the driver takes).
     */
    Program toProgram(Addr loadBase) const;
};

/** Serialize to the on-disk byte format (deterministic: equal objects
 *  produce equal bytes, and write→read→write is a fixpoint). */
std::vector<uint8_t> writeObject(const ObjectFile& obj);

/** Parse an object image. Throws FatalError with a clear message on bad
 *  magic, an unsupported version, truncation, or corrupt tables; @p name
 *  is used in diagnostics. */
ObjectFile readObject(const uint8_t* data, size_t size,
                      const std::string& name = "<object>");

ObjectFile readObjectFile(const std::string& path);
void writeObjectFile(const ObjectFile& obj, const std::string& path);

} // namespace vortex::isa
