/**
 * @file
 * Two-pass RISC-V assembler for the Vortex ISA (RV32IMF + Table 2
 * extension). This replaces the POCL/LLVM toolchain of the paper's software
 * stack (DESIGN.md substitution #3): kernels in this repository are genuine
 * RISC-V programs assembled to the same binary format the simulator fetches
 * and decodes.
 *
 * Supported syntax:
 *  - labels (`name:`), `#`/`//`/`;` comments
 *  - all RV32IMF + Zicsr + Vortex mnemonics from isa.h
 *  - common pseudo-instructions: nop, mv, not, neg, seqz/snez/sltz/sgtz,
 *    beqz/bnez/blez/bgez/bltz/bgtz, bgt/ble/bgtu/bleu, j, jr, ret, call,
 *    tail, li, la, csrr/csrw/csrs/csrc/csrwi, fmv.s/fabs.s/fneg.s
 *  - sections: `.text` / `.rodata` / `.data` (also via `.section`), laid
 *    out in that order into one flat image
 *  - directives: .word, .half, .byte, .float, .space, .zero, .align,
 *    .balign, .ascii, .asciz, .equ, .globl/.global
 *  - immediate expressions: decimal/hex literals, labels, `.equ` constants,
 *    `+`/`-` chains, %hi(expr), %lo(expr)
 *
 * Besides flat `Program` images the assembler can emit a relocatable
 * `ObjectFile` (see isa/object.h): label references that survive in the
 * encoding (`.word label`, `la`/`li`, `lui`+%hi, I/S-type %lo offsets)
 * are recorded as relocations so the loader can rebase the image;
 * pc-relative branches need none. See docs/TOOLCHAIN.md.
 */

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/log.h"
#include "common/types.h"

namespace vortex::isa {

struct ObjectFile;

/** One named assembly input (file name used in diagnostics + its text). */
struct SourceUnit
{
    std::string name;
    std::string text;
};

/**
 * An assembly diagnostic with a precise source position. The what() text
 * is always formatted `file:line:col: message` (1-based line and column),
 * mirroring compiler diagnostics and sweep::SpecParseError.
 */
class AsmError : public FatalError
{
  public:
    AsmError(const std::string& file, int line, int column,
             const std::string& message)
        : FatalError(file + ":" + std::to_string(line) + ":" +
                     std::to_string(column) + ": " + message),
          file_(file), line_(line), column_(column), message_(message)
    {
    }

    const std::string& file() const { return file_; }
    int line() const { return line_; }
    int column() const { return column_; }
    const std::string& message() const { return message_; }

  private:
    std::string file_;
    int line_;
    int column_;
    std::string message_;
};

/** An assembled flat binary image plus its symbol table. */
struct Program
{
    Addr base = 0;  ///< load address of image[0]
    Addr entry = 0; ///< execution entry point (== base)
    /** One past the last executable byte (.text ends here; .rodata and
     *  .data follow). 0 means unknown — treat the whole image as
     *  executable. The static analyzer uses this to keep escaped data
     *  pointers (e.g. `la` of a table) from being decoded as code. */
    Addr execEnd = 0;
    std::vector<uint8_t> image;
    std::map<std::string, Addr> symbols;

    size_t size() const { return image.size(); }

    /** Address of @p symbol; throws FatalError if undefined. */
    Addr symbol(const std::string& name) const;
};

/**
 * Two-pass assembler. Pass 1 sizes statements and collects labels; pass 2
 * encodes. Errors throw AsmError carrying file:line:col.
 */
class Assembler
{
  public:
    explicit Assembler(Addr base = 0x80000000) : base_(base) {}

    /** Assemble @p source into a Program loaded at the configured base.
     *  @p name is the file name used in diagnostics. */
    Program assemble(const std::string& source,
                     const std::string& name = "<asm>");

    /** Convenience: assemble several sources concatenated in order
     *  (e.g. runtime.s followed by a kernel). */
    Program assembleAll(const std::vector<std::string>& sources);

    /** Assemble several named units into one Program; diagnostics carry
     *  each unit's own name and local line numbers. */
    Program assembleUnits(const std::vector<SourceUnit>& units);

    /**
     * Assemble into a relocatable object (isa/object.h) linked at the
     * configured base. Label references whose encodings cannot be
     * relocated (e.g. a label inside a csr field) are errors here,
     * though assemble() accepts them.
     */
    ObjectFile assembleObject(const std::vector<SourceUnit>& units);

  private:
    Addr base_;
};

} // namespace vortex::isa
