/**
 * @file
 * Two-pass RISC-V assembler for the Vortex ISA (RV32IMF + Table 2
 * extension). This replaces the POCL/LLVM toolchain of the paper's software
 * stack (DESIGN.md substitution #3): kernels in this repository are genuine
 * RISC-V programs assembled to the same binary format the simulator fetches
 * and decodes.
 *
 * Supported syntax:
 *  - labels (`name:`), `#`/`//`/`;` comments
 *  - all RV32IMF + Zicsr + Vortex mnemonics from isa.h
 *  - common pseudo-instructions: nop, mv, not, neg, seqz/snez/sltz/sgtz,
 *    beqz/bnez/blez/bgez/bltz/bgtz, bgt/ble/bgtu/bleu, j, jr, ret, call,
 *    tail, li, la, csrr/csrw/csrs/csrc/csrwi, fmv.s/fabs.s/fneg.s
 *  - directives: .word, .half, .byte, .float, .space, .zero, .align,
 *    .balign, .ascii, .asciz, .equ, .globl/.global/.text/.data (no-ops)
 *  - immediate expressions: decimal/hex literals, labels, `.equ` constants,
 *    `+`/`-` chains, %hi(expr), %lo(expr)
 */

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"

namespace vortex::isa {

/** An assembled flat binary image plus its symbol table. */
struct Program
{
    Addr base = 0;  ///< load address of image[0]
    Addr entry = 0; ///< execution entry point (== base)
    std::vector<uint8_t> image;
    std::map<std::string, Addr> symbols;

    size_t size() const { return image.size(); }

    /** Address of @p symbol; throws FatalError if undefined. */
    Addr symbol(const std::string& name) const;
};

/**
 * Two-pass assembler. Pass 1 sizes statements and collects labels; pass 2
 * encodes. Errors throw FatalError with the offending line number.
 */
class Assembler
{
  public:
    explicit Assembler(Addr base = 0x80000000) : base_(base) {}

    /** Assemble @p source into a Program loaded at the configured base. */
    Program assemble(const std::string& source);

    /** Convenience: assemble several sources concatenated in order
     *  (e.g. runtime.s followed by a kernel). */
    Program assembleAll(const std::vector<std::string>& sources);

  private:
    Addr base_;
};

} // namespace vortex::isa
