/**
 * @file
 * The `vortex_sweep` command-line interface, as a library entry point so
 * the CLI-compat tests can drive it in-process.
 *
 * Grammar (docs/FABRIC.md has the fabric workflows):
 *
 *   vortex_sweep run [options]             execute a campaign
 *   vortex_sweep cache list|merge|prune    result-cache maintenance
 *   vortex_sweep serve --listen PATH       the fabric submission service
 *   vortex_sweep submit --socket PATH      submit a spec to a service
 *   vortex_sweep specs list|fields|dump    spec/preset introspection
 *
 * Every pre-subcommand flag spelling (`vortex_sweep --preset fig18`,
 * `--cache-prune`, `--list`, `--fields`, `--dump-spec`, ...) still works
 * as a legacy alias: an argv whose first element is not a subcommand
 * word is parsed exactly as the flat flag grammar, pinned by
 * tests/test_fabric.cpp.
 */

#pragma once

#include <string>
#include <vector>

namespace vortex::sweep {

/**
 * Run the vortex_sweep CLI over @p args (argv without the program name)
 * and return the process exit code. Never throws: fatal() diagnostics
 * are printed to stderr and become exit code 1, usage errors exit 2.
 */
int cliMain(const std::vector<std::string>& args);

} // namespace vortex::sweep
