/**
 * @file
 * Plain tabular reports: the common output shape of the area/synthesis
 * presets (Tables 3-5, Fig. 15) and of campaign summaries. A ReportTable
 * renders either as an aligned human-readable text table or as CSV, so
 * every preset has exactly one data path for both the bench binaries and
 * `vortex_sweep` file emission.
 */

#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace vortex::sweep {

/** A titled table of string cells with optional footnotes. */
struct ReportTable
{
    std::string title;                ///< banner above the text rendering
    std::vector<std::string> columns; ///< header cells
    std::vector<std::vector<std::string>> rows; ///< data cells
    std::vector<std::string> notes; ///< printed after the table, not in CSV

    /** Append a row (must match columns in length; padded when short). */
    void addRow(std::vector<std::string> row);

    /** Aligned text rendering with the title banner and notes. */
    void print(std::ostream& os) const;

    /** RFC-4180-style CSV: header row, then data rows (notes omitted). */
    void writeCsv(std::ostream& os) const;

    /** JSON object: title, columns, rows, notes. */
    void writeJson(std::ostream& os) const;
};

/** Escape one CSV cell (quote when it contains comma/quote/newline). */
std::string csvCell(const std::string& s);

/** Escape one JSON string body (quote, backslash, and control
 *  characters). Shared by every JSON emitter in the sweep layer. */
std::string jsonEscape(const std::string& s);

/** Fixed-point formatting helpers used by preset reports. */
std::string fmtF(double v, int prec);   ///< "%.<prec>f"
std::string fmtPct(double frac, int prec); ///< fraction -> "12.3%"

} // namespace vortex::sweep
