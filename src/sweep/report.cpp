/**
 * @file
 * ReportTable rendering (aligned text and CSV).
 */

#include "sweep/report.h"

#include <algorithm>
#include <cstdio>

namespace vortex::sweep {

void
ReportTable::addRow(std::vector<std::string> row)
{
    row.resize(columns.size());
    rows.push_back(std::move(row));
}

void
ReportTable::print(std::ostream& os) const
{
    if (!title.empty())
        os << "\n==== " << title << " ====\n";

    std::vector<size_t> width(columns.size(), 0);
    for (size_t c = 0; c < columns.size(); ++c)
        width[c] = columns[c].size();
    for (const auto& row : rows)
        for (size_t c = 0; c < row.size() && c < width.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit = [&](const std::vector<std::string>& cells) {
        for (size_t c = 0; c < width.size(); ++c) {
            const std::string& cell = c < cells.size() ? cells[c] : "";
            os << cell;
            if (c + 1 < width.size())
                os << std::string(width[c] - cell.size() + 2, ' ');
        }
        os << "\n";
    };
    emit(columns);
    for (const auto& row : rows)
        emit(row);
    for (const std::string& n : notes)
        os << n << "\n";
}

void
ReportTable::writeCsv(std::ostream& os) const
{
    auto emit = [&](const std::vector<std::string>& cells) {
        for (size_t c = 0; c < columns.size(); ++c) {
            if (c)
                os << ",";
            os << csvCell(c < cells.size() ? cells[c] : "");
        }
        os << "\n";
    };
    emit(columns);
    for (const auto& row : rows)
        emit(row);
}

void
ReportTable::writeJson(std::ostream& os) const
{
    auto list = [&](const std::vector<std::string>& cells) {
        os << "[";
        for (size_t i = 0; i < cells.size(); ++i)
            os << (i ? ", " : "") << "\"" << jsonEscape(cells[i]) << "\"";
        os << "]";
    };
    os << "{\n  \"table\": \"" << jsonEscape(title)
       << "\",\n  \"columns\": ";
    list(columns);
    os << ",\n  \"rows\": [\n";
    for (size_t r = 0; r < rows.size(); ++r) {
        os << "    ";
        list(rows[r]);
        os << (r + 1 < rows.size() ? ",\n" : "\n");
    }
    os << "  ],\n  \"notes\": ";
    list(notes);
    os << "\n}\n";
}

std::string
csvCell(const std::string& s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char ch : s) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    for (char ch : s) {
        switch (ch) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(ch));
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    return out;
}

std::string
fmtF(double v, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

std::string
fmtPct(double frac, int prec)
{
    return fmtF(100.0 * frac, prec) + "%";
}

} // namespace vortex::sweep
