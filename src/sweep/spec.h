/**
 * @file
 * Declarative simulation-sweep specifications.
 *
 * A SweepSpec names a set of axes — each axis a list of labeled points
 * that assign values to ArchConfig fields and/or workload choices — and
 * expands their cartesian product into a flat run matrix of RunSpec
 * entries. Fields are addressed by name through a registry (applyField /
 * sweepableFields) so sweeps can be written declaratively in presets or
 * assembled from CLI arguments, with no per-figure loop code.
 *
 * Every RunSpec has a canonical text serialization covering *every*
 * architectural and workload field; its FNV-1a hash is the content key of
 * the campaign result cache (see campaign.h).
 */

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/config.h"
#include "faults/fault.h"
#include "runtime/workloads.h"

namespace vortex::runtime {
class Device;
}

namespace vortex::sweep {

/** What one run executes: a Rodinia kernel or a texture rendering pass. */
struct WorkloadSpec
{
    /** Workload family. */
    enum class Kind : uint8_t
    {
        Rodinia, ///< one of the seven verified Rodinia kernels (§6.1)
        Texture, ///< HW-vs-SW texture filtering pass (§6.4)
    };

    Kind kind = Kind::Rodinia; ///< which family this run executes

    std::string kernel = "vecadd"; ///< Rodinia kernel name (Kind::Rodinia)
    uint32_t scale = 1;            ///< problem-size multiplier (1 = test-sized)

    /**
     * Optional guest-program file (assembly) to execute instead of the
     * selected kernel's built-in source. The named kernel still chooses
     * the argument-setup + host-verification harness; the program is
     * loaded through the assemble→object→load pipeline (see
     * docs/TOOLCHAIN.md). Resolved against the CWD and the
     * VORTEX_PROGRAM_PATH environment variable (colon-separated
     * prefixes); the file is read eagerly when the field is applied.
     */
    std::string program;
    std::string programSource; ///< contents of `program` (loaded eagerly)

    /**
     * Optional harness-free result check for `program` workloads. Empty
     * means "use the named kernel's C++ harness" (the default). Two
     * forms are accepted (validated eagerly when the field is applied;
     * see parseCheckValue):
     *
     *  - `"selfcheck"` — the guest verifies its own results and writes
     *    PASS/FAIL to the self-check mailbox (docs/TOOLCHAIN.md);
     *  - `"memcmp:ADDR:LEN:FNV"` — after the run, LEN bytes of device
     *    memory at ADDR must hash (FNV-1a 64) to FNV; ADDR/LEN/FNV are
     *    hex with optional 0x prefix.
     *
     * Like `program`, the value is part of RunSpec::canonical() and so
     * of the result-cache content hash.
     */
    std::string check;

    runtime::TexFilterMode texFilter =
        runtime::TexFilterMode::Bilinear; ///< filtering mode (Kind::Texture)
    bool texHw = true;                    ///< hardware `tex` path vs software
    uint32_t texSize = 64;                ///< square texture/render-target size

    /**
     * Fault-injection parameters (`[faults]` spec section, the
     * "faults.*" registry fields, `--faults` on the CLI). All-zero (the
     * default) means no injection and no watchdog override; when set,
     * the fields enter RunSpec::canonical() so faulted runs get their
     * own content-hash cache keys (docs/ROBUSTNESS.md).
     */
    faults::FaultSpec faults;

    /** Short human-readable description, e.g. "sgemm x2" or
     *  "texture bilinear hw 64". */
    std::string describe() const;

    /**
     * Execute this workload on @p dev (verified against the host
     * reference; see runtime/workloads.h). Installs the fault plan and
     * watchdog first when `faults` is set, and translates run-path
     * SimError/FatalError throws into a failed RunResult carrying the
     * structured RunStatus — a hanging or trapping guest returns a
     * `timeout` / `guest_trap` row instead of propagating an exception.
     */
    runtime::RunResult run(runtime::Device& dev) const;
};

/** One labeled point on an axis: a set of field assignments applied
 *  together (e.g. {"4W-8T", {{"numWarps","4"},{"numThreads","8"}}}). */
struct AxisPoint
{
    std::string label; ///< coordinate label used in ids, CSV, and reports
    std::vector<std::pair<std::string, std::string>> sets; ///< field=value
};

/** A named sweep dimension: an ordered list of points. */
struct Axis
{
    std::string name;             ///< dimension name (CSV column header)
    std::vector<AxisPoint> points;///< the swept values, in sweep order

    /** Axis over one field; each value becomes a point labeled by the
     *  value itself. */
    static Axis sweep(const std::string& field,
                      const std::vector<std::string>& values);

    /** Convenience uint32 overload of sweep(). */
    static Axis sweepU32(const std::string& field,
                         const std::vector<uint32_t>& values);
};

/** One fully-resolved run of the matrix. */
struct RunSpec
{
    core::ArchConfig config; ///< the machine this run simulates
    WorkloadSpec workload;   ///< what it executes
    /** (axis name, point label) for every axis, in spec order. */
    std::vector<std::pair<std::string, std::string>> coords;

    /** Coordinate labels joined by '/', e.g. "sgemm/8c". */
    std::string id() const;

    /** Canonical `field = value` serialization of every config and
     *  workload field (the cache key preimage). */
    std::string canonical() const;

    /** 16-hex-digit FNV-1a 64 hash of canonical(). */
    std::string contentHash() const;
};

/** A declarative sweep: base machine + workload, and the axes whose
 *  cartesian product forms the run matrix. */
struct SweepSpec
{
    std::string name;        ///< campaign name (default output basename)
    std::string description; ///< one-line summary shown by --list
    core::ArchConfig base;   ///< configuration before axis assignments
    WorkloadSpec baseWorkload; ///< workload before axis assignments
    std::vector<Axis> axes;  ///< first axis slowest, last axis fastest

    /**
     * Fabric shard annotation (`[fabric] shard = "I/N"` in spec files,
     * `--shard I/N` on the CLI): with shardCount > 1 a campaign over
     * this spec executes only shard shardIndex's slice of the matrix
     * (see shardAssignment in campaign.h). Execution metadata only —
     * it never reaches RunSpec::canonical() or the result-cache content
     * hash, so a shard-annotated spec shares cache entries with its
     * unsharded twin. 0/0 = unsharded.
     */
    uint32_t shardIndex = 0;
    uint32_t shardCount = 0; ///< total shards (0 or 1 = unsharded)

    /**
     * Expand the axes row-major (the last axis varies fastest) into the
     * flat run matrix. Fatal on an unknown field name or unparsable
     * value.
     */
    std::vector<RunSpec> expand() const;

    /** Product of the axis sizes (1 when there are no axes). */
    size_t runCount() const;
};

/**
 * Assign @p value to the named configuration or workload field.
 * Recognized names are listed by sweepableFields(); they cover every
 * ArchConfig knob (including dotted "mem.*" and "lat.*" subfields),
 * the workload selectors ("kernel", "scale", "workload", "texFilter",
 * "texHw", "texSize"), and the derived "cores" field which applies the
 * paper's machine-scaling rules (L2 clusters from 4 cores, the 8-channel
 * Stratix 10 board above 16; see presets.h baselineConfig).
 *
 * @return false when @p name is not a known field (cfg/wl untouched);
 *         fatal on a value that does not parse for a known field.
 */
bool applyField(core::ArchConfig& cfg, WorkloadSpec& wl,
                const std::string& name, const std::string& value);

/** One registry entry of sweepableFields(). */
struct FieldInfo
{
    const char* name; ///< the name applyField() matches
    const char* help; ///< one-line description for `vortex_sweep --fields`
};

/** Every field name applyField() accepts, with a one-line description. */
const std::vector<FieldInfo>& sweepableFields();

/** Canonical text of a scheduling policy ("hierarchical" /
 *  "roundrobin") — the spelling the field registry parses back. Shared
 *  by RunSpec::canonical() and the spec-file serializer. */
const char* schedPolicyName(core::SchedPolicy p);

/** Canonical text of a texture filter mode ("point" / "bilinear" /
 *  "trilinear") — the spelling the field registry parses back. */
const char* texFilterName(runtime::TexFilterMode m);

/** Registry name (kernels::kernelSource) of the kernel @p w executes:
 *  the Rodinia kernel name, or "tex_<filter>_<hw|sw>". */
std::string workloadKernelName(const WorkloadSpec& w);

/** Strict uint32 parse (whole string must consume); fatal on failure,
 *  naming @p what. Shared by the field registry, preset arguments, and
 *  the CLI so every numeric surface rejects the same typos. */
uint32_t parseU32Value(const std::string& what, const std::string& value);

/** Strict boolean parse (0/1/true/false/on/off); fatal on failure. */
bool parseBoolValue(const std::string& what, const std::string& value);

/**
 * Parse a fabric shard selector "I/N" (shard I of N, 0-based) into
 * @p index / @p count; fatal, naming @p what, unless 0 <= I < N and
 * N >= 1. Shared by the CLI `--shard` flag and the `[fabric] shard`
 * spec-file key so both surfaces reject the same typos.
 */
void parseShardValue(const std::string& what, const std::string& value,
                     uint32_t& index, uint32_t& count);

/**
 * Resolve a `[workload] program` path: the path itself if it exists,
 * else each colon-separated prefix of $VORTEX_PROGRAM_PATH joined with
 * it (first hit wins). Returns the path unchanged when nothing exists —
 * the subsequent open reports the error.
 */
std::string resolveProgramPath(const std::string& path);

/** resolveProgramPath + read; fatal with a clear message on failure. */
std::string loadProgramSource(const std::string& path);

/** Parsed form of a `[workload] check` value (see WorkloadSpec::check). */
struct CheckSpec
{
    enum class Kind : uint8_t
    {
        None,   ///< empty value: use the kernel's C++ harness
        Self,   ///< "selfcheck": guest writes PASS/FAIL to the mailbox
        Memcmp, ///< "memcmp:ADDR:LEN:FNV": hash a device-memory window
    };
    Kind kind = Kind::None;
    Addr addr = 0;      ///< window base (Kind::Memcmp)
    uint32_t len = 0;   ///< window length in bytes (Kind::Memcmp)
    uint64_t fnv = 0;   ///< expected FNV-1a 64 hash (Kind::Memcmp)
};

/**
 * Parse a `check` field value into its CheckSpec; fatal, naming
 * @p what, on anything other than "", "selfcheck", or a well-formed
 * "memcmp:ADDR:LEN:FNV". Shared by the field registry (so spec files
 * report malformed values with file:line:col) and the run dispatch.
 */
CheckSpec parseCheckValue(const std::string& what,
                          const std::string& value);

} // namespace vortex::sweep
