/**
 * @file
 * vortex_sweep CLI implementation: subcommand dispatch (run / cache /
 * serve / submit / specs) plus the legacy flat-flag grammar, both
 * funneling into the same campaign executor. See cli.h for the grammar
 * and docs/FABRIC.md for the fabric workflows.
 */

#include "sweep/cli.h"

#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/log.h"
#include "sweep/cache.h"
#include "sweep/campaign.h"
#include "sweep/fabric.h"
#include "sweep/presets.h"
#include "sweep/specfile.h"

namespace vortex::sweep {

namespace {

int
usage(int code)
{
    std::printf(
        "usage: vortex_sweep <command> [options]\n"
        "       vortex_sweep [legacy options]   (same flags as `run`)\n"
        "\n"
        "commands:\n"
        "  run     execute a sweep campaign (preset, spec file, or --axis)\n"
        "  cache   result-cache maintenance: list | merge | prune\n"
        "  serve   run the fabric submission service on a local socket\n"
        "  submit  submit a spec file to a running service\n"
        "  specs   introspection: list | fields | dump\n"
        "\n"
        "run options:\n"
        "  --preset NAME        run a built-in preset (see `specs list`)\n"
        "  --spec FILE          run the sweep described by a spec file\n"
        "                       (TOML or JSON; see docs/SWEEP_SPECS.md)\n"
        "  --axis F=V1,V2,...   add a sweep axis over field F (repeatable;\n"
        "                       first axis varies slowest; appends to\n"
        "                       --spec axes)\n"
        "  --dump-spec PATH     serialize the resolved sweep as a TOML\n"
        "                       spec file ('-' = stdout) and exit without\n"
        "                       running it\n"
        "  --set F=V            fix field F to V in the base machine\n"
        "                       (repeatable, applied before the axes)\n"
        "  --arg K=V            preset parameter (fig20: size=N;\n"
        "                       fig21: paper=1)\n"
        "  --jobs N             concurrent runs (default 1; 0 = host CPUs)\n"
        "  --cache DIR          result-cache directory (skip unchanged "
        "runs)\n"
        "  --shard I/N          execute only shard I of an N-way fabric\n"
        "                       partition of the matrix (0-based; overrides\n"
        "                       the spec's [fabric] shard; see "
        "docs/FABRIC.md)\n"
        "  --fail-fast          abort on the first failed run instead of\n"
        "                       recording it as a status row and finishing\n"
        "                       the matrix (docs/ROBUSTNESS.md)\n"
        "  --faults seed=N,count=K[,window=W,watchdog=C]\n"
        "                       inject K seeded bit-flip faults per run\n"
        "                       (shorthand for --set faults.KEY=V;\n"
        "                       docs/ROBUSTNESS.md)\n"
        "  --progress           per-run elapsed/ETA lines on stderr\n"
        "  --verify             statically verify every kernel/machine\n"
        "                       pair before running (vortex_verify's\n"
        "                       checks); fatal on analysis errors\n"
        "  --no-lpt             claim runs in matrix order instead of\n"
        "                       longest-first (output is identical either\n"
        "                       way; LPT only shortens wall-clock)\n"
        "  --sample N           snapshot device counters every N cycles\n"
        "                       (shorthand for --set sampleInterval=N)\n"
        "  --timeseries PATH    emit the per-interval counter time series\n"
        "                       as JSON ('-' = stdout); needs --sample\n"
        "  --bench-json PATH    emit host wall-clock + headline counters\n"
        "                       (the CI bench-trajectory artifact)\n"
        "  --csv PATH           CSV output ('-' = stdout; default "
        "<name>.csv)\n"
        "  --json PATH          also emit JSON ('-' = stdout)\n"
        "  --no-csv             suppress the CSV file\n"
        "  --name NAME          campaign name for ad-hoc sweeps\n"
        "  --quiet              no per-run progress lines\n"
        "\n"
        "cache commands (DIR via positional or --cache):\n"
        "  cache list DIR               table of cached entries\n"
        "  cache merge DST SRC...       import SRC entries into DST\n"
        "  cache prune DIR              delete entries (--older-than DAYS\n"
        "                               to keep newer ones)\n"
        "\n"
        "serve / submit options:\n"
        "  serve --listen PATH [--cache DIR] [--jobs N] [--quiet]\n"
        "        [--deadline SECS]   abort any single simulation that\n"
        "                            exceeds SECS wall-clock (reported as\n"
        "                            a timeout run; docs/ROBUSTNESS.md)\n"
        "  submit --socket PATH --spec FILE [--name NAME]\n"
        "         [--timeout SECS]   give up when the service goes SECS\n"
        "                            without streaming an event\n"
        "  submit --socket PATH --shutdown\n"
        "\n"
        "legacy aliases (pre-subcommand spellings, still supported):\n"
        "  --list               = specs list\n"
        "  --fields             = specs fields\n"
        "  --cache-prune        = cache prune (with --cache DIR\n"
        "                         [--older-than DAYS])\n"
        "  -h, --help           this text\n");
    return code;
}

/** Split "field=v1,v2,v3" into an Axis. */
Axis
parseAxisArg(const std::string& arg)
{
    size_t eq = arg.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= arg.size())
        fatal("--axis expects FIELD=V1,V2,... (got '", arg, "')");
    std::string field = arg.substr(0, eq);
    std::vector<std::string> values;
    std::stringstream ss(arg.substr(eq + 1));
    std::string v;
    while (std::getline(ss, v, ','))
        if (!v.empty())
            values.push_back(v);
    if (values.empty())
        fatal("--axis ", field, ": no values");
    return Axis::sweep(field, values);
}

/** Split "seed=N,count=K[,window=W,watchdog=C]" into ("faults.KEY",
 *  VALUE) assignments for the field registry. */
std::vector<std::pair<std::string, std::string>>
parseFaultsArg(const std::string& arg)
{
    std::vector<std::pair<std::string, std::string>> sets;
    std::stringstream ss(arg);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (item.empty())
            continue;
        size_t eq = item.find('=');
        if (eq == std::string::npos || eq == 0 || eq + 1 >= item.size())
            fatal("--faults expects KEY=VALUE pairs (got '", item, "')");
        std::string key = item.substr(0, eq);
        if (key != "seed" && key != "count" && key != "window" &&
            key != "watchdog")
            fatal("--faults: unknown key '", key,
                  "' (keys: seed, count, window, watchdog)");
        sets.emplace_back("faults." + key, item.substr(eq + 1));
    }
    if (sets.empty())
        fatal("--faults expects seed=N,count=K[,window=W,watchdog=C]");
    return sets;
}

std::pair<std::string, std::string>
parseKeyValue(const char* flag, const std::string& arg)
{
    size_t eq = arg.find('=');
    if (eq == std::string::npos || eq == 0)
        fatal(flag, " expects KEY=VALUE (got '", arg, "')");
    return {arg.substr(0, eq), arg.substr(eq + 1)};
}

double
parseDaysArg(const std::string& olderThan)
{
    try {
        size_t pos = 0;
        double days = std::stod(olderThan, &pos);
        if (pos != olderThan.size() || days < 0.0)
            throw std::invalid_argument(olderThan);
        return days;
    } catch (const std::exception&) {
        fatal("--older-than: cannot parse '", olderThan,
              "' as a non-negative number of days");
    }
}

void
writeTo(const std::string& path, const std::string& what,
        const std::function<void(std::ostream&)>& emit)
{
    if (path == "-") {
        emit(std::cout);
        return;
    }
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        fatal("cannot open ", path, " for writing");
    emit(out);
    std::fprintf(stderr, "wrote %s -> %s\n", what.c_str(), path.c_str());
}

/** Everything the run/legacy flag grammar can say. */
struct RunArgs
{
    std::string presetName, csvPath, jsonPath, campaignName;
    std::string timeseriesPath, benchJsonPath, olderThan;
    std::string specPath, dumpSpecPath, shardArg;
    std::vector<Axis> axes;
    std::vector<std::pair<std::string, std::string>> sets, presetArgs;
    CampaignOptions opts;
    uint32_t sampleInterval = 0;
    bool list = false, fields = false, noCsv = false, cachePrune = false;

    RunArgs()
    {
        opts.jobs = 1;
        opts.verbose = true;
    }
};

/**
 * Parse run/legacy flags starting at args[i]. Advances @p i past
 * consumed arguments; returns false (with @p i at the offender) on an
 * unknown argument, throws FatalError("-h") sentinel never — help is
 * signaled via @p help.
 */
bool
parseRunArgs(RunArgs& o, const std::vector<std::string>& args, size_t start,
             bool& help, size_t& badIndex)
{
    for (size_t i = start; i < args.size(); ++i) {
        const std::string& a = args[i];
        auto next = [&]() -> const std::string& {
            if (i + 1 >= args.size())
                fatal(a, " expects an argument");
            return args[++i];
        };
        if (a == "--preset")
            o.presetName = next();
        else if (a == "--spec")
            o.specPath = next();
        else if (a == "--dump-spec")
            o.dumpSpecPath = next();
        else if (a == "--progress")
            o.opts.progress = true;
        else if (a == "--no-lpt")
            o.opts.lpt = false;
        else if (a == "--verify")
            o.opts.verify = true;
        else if (a == "--axis")
            o.axes.push_back(parseAxisArg(next()));
        else if (a == "--set")
            o.sets.push_back(parseKeyValue("--set", next()));
        else if (a == "--fail-fast")
            o.opts.failFast = true;
        else if (a == "--faults")
            for (auto& kv : parseFaultsArg(next()))
                o.sets.push_back(std::move(kv));
        else if (a == "--arg")
            o.presetArgs.push_back(parseKeyValue("--arg", next()));
        else if (a == "--jobs")
            o.opts.jobs = parseU32Value("--jobs", next());
        else if (a == "--cache")
            o.opts.cacheDir = next();
        else if (a == "--shard")
            o.shardArg = next();
        else if (a == "--sample")
            o.sampleInterval = parseU32Value("--sample", next());
        else if (a == "--timeseries")
            o.timeseriesPath = next();
        else if (a == "--bench-json")
            o.benchJsonPath = next();
        else if (a == "--cache-prune")
            o.cachePrune = true;
        else if (a == "--older-than")
            o.olderThan = next();
        else if (a == "--csv")
            o.csvPath = next();
        else if (a == "--json")
            o.jsonPath = next();
        else if (a == "--no-csv")
            o.noCsv = true;
        else if (a == "--name")
            o.campaignName = next();
        else if (a == "--quiet")
            o.opts.verbose = false;
        else if (a == "--list")
            o.list = true;
        else if (a == "--fields")
            o.fields = true;
        else if (a == "-h" || a == "--help")
            help = true;
        else {
            badIndex = i;
            return false;
        }
    }
    return true;
}

int
listPresets()
{
    std::printf("%-18s %s\n", "preset", "description");
    for (const Preset& p : presets())
        std::printf("%-18s %s%s\n", p.name.c_str(), p.description.c_str(),
                    p.table ? " [table]" : "");
    return 0;
}

int
listFields()
{
    std::printf("%-18s %s\n", "field", "description");
    for (const FieldInfo& f : sweepableFields())
        std::printf("%-18s %s\n", f.name, f.help);
    return 0;
}

int
cachePruneCmd(const std::string& dir, const std::string& olderThan)
{
    if (dir.empty())
        fatal("cache prune needs a cache directory (--cache DIR)");
    double days = olderThan.empty() ? -1.0 : parseDaysArg(olderThan);
    CacheStore store(dir);
    size_t removed = store.prune(days);
    size_t left = store.entries().size();
    std::fprintf(stderr,
                 "cache %s: pruned %zu entr%s, %zu left "
                 "(manifest.json rewritten)\n",
                 dir.c_str(), removed, removed == 1 ? "y" : "ies", left);
    return 0;
}

int
cacheListCmd(const std::string& dir)
{
    if (dir.empty())
        fatal("cache list needs a cache directory (--cache DIR)");
    CacheStore store(dir);
    std::vector<CacheEntryInfo> entries = store.entries();
    std::printf("%-16s %-14s %-12s %-24s %s\n", "hash", "campaign",
                "host_seconds", "kernel", "id");
    for (const CacheEntryInfo& e : entries) {
        char secs[32];
        if (e.hostSeconds >= 0.0)
            std::snprintf(secs, sizeof(secs), "%.3f", e.hostSeconds);
        else
            std::snprintf(secs, sizeof(secs), "-");
        std::printf("%-16s %-14s %-12s %-24s %s\n", e.hash.c_str(),
                    e.campaign.c_str(), secs, e.kernel.c_str(),
                    e.id.c_str());
    }
    std::fprintf(stderr, "%zu entr%s in %s\n", entries.size(),
                 entries.size() == 1 ? "y" : "ies", dir.c_str());
    return 0;
}

int
cacheMergeCmd(const std::string& dst, const std::vector<std::string>& srcs)
{
    CacheStore store(dst);
    CacheMergeStats total;
    for (const std::string& src : srcs) {
        CacheMergeStats s = store.mergeFrom(src);
        std::fprintf(stderr,
                     "merge %s -> %s: %zu imported, %zu already present, "
                     "%zu rejected\n",
                     src.c_str(), dst.c_str(), s.imported, s.skipped,
                     s.rejected);
        total.imported += s.imported;
        total.skipped += s.skipped;
        total.rejected += s.rejected;
    }
    if (srcs.size() > 1)
        std::fprintf(stderr,
                     "merged %zu sources: %zu imported, %zu already "
                     "present, %zu rejected\n",
                     srcs.size(), total.imported, total.skipped,
                     total.rejected);
    return total.rejected ? 1 : 0;
}

int
cacheCmd(const std::vector<std::string>& args)
{
    if (args.empty())
        fatal("cache needs a verb: list, merge, or prune");
    const std::string& verb = args[0];
    std::string dir, olderThan;
    std::vector<std::string> positional;
    for (size_t i = 1; i < args.size(); ++i) {
        const std::string& a = args[i];
        auto next = [&]() -> const std::string& {
            if (i + 1 >= args.size())
                fatal(a, " expects an argument");
            return args[++i];
        };
        if (a == "--cache")
            dir = next();
        else if (a == "--older-than")
            olderThan = next();
        else if (!a.empty() && a[0] == '-')
            fatal("cache ", verb, ": unknown option '", a, "'");
        else
            positional.push_back(a);
    }
    if (verb == "list") {
        if (dir.empty() && positional.size() == 1)
            dir = positional[0];
        else if (!positional.empty())
            fatal("cache list takes one directory");
        return cacheListCmd(dir);
    }
    if (verb == "prune") {
        if (dir.empty() && positional.size() == 1)
            dir = positional[0];
        else if (!positional.empty())
            fatal("cache prune takes one directory");
        return cachePruneCmd(dir, olderThan);
    }
    if (verb == "merge") {
        if (!olderThan.empty())
            fatal("--older-than only applies to cache prune");
        if (!dir.empty())
            positional.insert(positional.begin(), dir);
        if (positional.size() < 2)
            fatal("cache merge needs a destination and at least one "
                  "source: cache merge DST SRC...");
        std::string dst = positional[0];
        positional.erase(positional.begin());
        return cacheMergeCmd(dst, positional);
    }
    fatal("cache: unknown verb '", verb, "' (list, merge, prune)");
}

int
serveCmd(const std::vector<std::string>& args)
{
    ServiceOptions opts;
    opts.verbose = true;
    for (size_t i = 0; i < args.size(); ++i) {
        const std::string& a = args[i];
        auto next = [&]() -> const std::string& {
            if (i + 1 >= args.size())
                fatal(a, " expects an argument");
            return args[++i];
        };
        if (a == "--listen" || a == "--socket")
            opts.socketPath = next();
        else if (a == "--cache")
            opts.cacheDir = next();
        else if (a == "--jobs")
            opts.jobs = parseU32Value("--jobs", next());
        else if (a == "--deadline")
            opts.runDeadlineSeconds =
                parseU32Value("--deadline", next());
        else if (a == "--quiet")
            opts.verbose = false;
        else
            fatal("serve: unknown option '", a, "'");
    }
    if (opts.socketPath.empty())
        fatal("serve needs --listen PATH (the AF_UNIX socket to bind)");
    return serveMain(opts);
}

int
submitCmd(const std::vector<std::string>& args)
{
    std::string socketPath, specPath, name;
    uint32_t timeoutSeconds = 0;
    bool shutdown = false;
    for (size_t i = 0; i < args.size(); ++i) {
        const std::string& a = args[i];
        auto next = [&]() -> const std::string& {
            if (i + 1 >= args.size())
                fatal(a, " expects an argument");
            return args[++i];
        };
        if (a == "--socket")
            socketPath = next();
        else if (a == "--spec")
            specPath = next();
        else if (a == "--name")
            name = next();
        else if (a == "--timeout")
            timeoutSeconds = parseU32Value("--timeout", next());
        else if (a == "--shutdown")
            shutdown = true;
        else
            fatal("submit: unknown option '", a, "'");
    }
    if (socketPath.empty())
        fatal("submit needs --socket PATH (the service's socket)");
    if (shutdown) {
        if (!specPath.empty())
            fatal("--shutdown does not combine with --spec");
        requestShutdown(socketPath);
        std::fprintf(stderr, "service at %s acknowledged shutdown\n",
                     socketPath.c_str());
        return 0;
    }
    if (specPath.empty())
        fatal("submit needs --spec FILE (or --shutdown)");
    std::ifstream in(specPath);
    if (!in)
        fatal("cannot read spec file ", specPath);
    std::ostringstream text;
    text << in.rdbuf();
    SubmitResult result = submitSpecText(socketPath, text.str(), name,
                                         &std::cout, timeoutSeconds);
    if (!result.ok) {
        std::fprintf(stderr, "submit failed: %s\n", result.error.c_str());
        return 1;
    }
    std::fprintf(stderr,
                 "campaign '%s': %llu runs (%llu simulated, %llu cache "
                 "hits, %llu dedup joins)\n",
                 result.campaign.c_str(),
                 static_cast<unsigned long long>(result.runs),
                 static_cast<unsigned long long>(result.simulated),
                 static_cast<unsigned long long>(result.cacheHits),
                 static_cast<unsigned long long>(result.dedupJoins));
    return 0;
}

/** The campaign executor shared by `run`, `specs dump`, and the legacy
 *  grammar: resolve the spec, then run it (or dump/prune/list). */
int
execRun(RunArgs& o)
{
    if (o.list)
        return listPresets();
    if (o.fields)
        return listFields();
    if (o.cachePrune) {
        if (o.opts.cacheDir.empty())
            fatal("--cache-prune needs --cache DIR");
        return cachePruneCmd(o.opts.cacheDir, o.olderThan);
    }
    if (!o.olderThan.empty())
        fatal("--older-than only applies to --cache-prune");
    if (o.presetName.empty() && o.axes.empty() && o.specPath.empty()) {
        std::fprintf(stderr, "nothing to do: give --preset, --spec, "
                             "or --axis (see --list)\n");
        return usage(2);
    }
    if (!o.presetName.empty() && !o.specPath.empty())
        fatal("--preset does not combine with --spec (export the "
              "preset with --dump-spec and edit the file instead)");

    //
    // Resolve the spec (or finished table) to run.
    //
    SweepSpec spec;
    std::function<ReportTable(const CampaignResult&)> report;
    if (!o.presetName.empty()) {
        if (!o.axes.empty())
            fatal("--axis does not combine with --preset; use --set "
                  "to fix base-machine fields, or drop --preset for "
                  "an ad-hoc sweep");
        if (!o.campaignName.empty())
            fatal("--name only applies to ad-hoc and --spec sweeps "
                  "(presets are named after themselves)");
        const Preset* p = findPreset(o.presetName);
        if (!p)
            fatal("unknown preset '", o.presetName,
                  "' (vortex_sweep --list)");
        if (p->table) {
            if (!o.sets.empty())
                fatal("preset '", o.presetName,
                      "' is an area table; --set has no effect on it");
            if (o.sampleInterval != 0 || !o.timeseriesPath.empty() ||
                !o.benchJsonPath.empty())
                fatal("preset '", o.presetName,
                      "' is an area table; it runs no simulation to "
                      "sample or time");
            if (!o.dumpSpecPath.empty())
                fatal("preset '", o.presetName,
                      "' is an area table; it has no sweep spec to "
                      "dump");
            if (!o.presetArgs.empty())
                fatal("preset '", o.presetName, "' takes no --arg '",
                      o.presetArgs[0].first, "'");
            if (!o.shardArg.empty())
                fatal("preset '", o.presetName,
                      "' is an area table; there is no run matrix to "
                      "shard");
            // Area/synthesis presets produce their table directly.
            ReportTable t = p->table();
            std::string out = o.csvPath.empty() && !o.noCsv
                                  ? o.presetName + ".csv"
                                  : o.csvPath;
            if (!out.empty() && !o.noCsv)
                writeTo(out, "table CSV",
                        [&](std::ostream& os) { t.writeCsv(os); });
            if (!o.jsonPath.empty())
                writeTo(o.jsonPath, "table JSON",
                        [&](std::ostream& os) { t.writeJson(os); });
            t.print(std::cout);
            return 0;
        }
        spec = p->sweep(o.presetArgs);
        report = p->report;
    } else if (!o.specPath.empty()) {
        if (!o.presetArgs.empty())
            fatal("--arg only applies to presets (spec files carry "
                  "their parameters in [base]/[workload])");
        spec = parseSpecFile(o.specPath);
        if (!o.campaignName.empty())
            spec.name = o.campaignName;
        // CLI axes append after the file's own (they vary fastest).
        for (Axis& a : o.axes)
            spec.axes.push_back(std::move(a));
        // A spec named after a sweep preset is that preset (the specs
        // CI job pins the round trip), so it gets the preset's report —
        // unless CLI axes reshaped the matrix the report indexes by.
        const Preset* twin = findPreset(spec.name);
        if (twin && twin->sweep && o.axes.empty())
            report = twin->report;
        else if (spec.axes.size() == 2)
            report = pivotIpc;
    } else {
        if (!o.presetArgs.empty())
            fatal("--arg only applies to presets (use --set for "
                  "base-machine fields)");
        spec.name = o.campaignName.empty() ? "custom" : o.campaignName;
        spec.description = "ad-hoc CLI sweep";
        spec.axes = std::move(o.axes);
        if (spec.axes.size() == 2)
            report = pivotIpc;
    }
    for (const auto& [k, v] : o.sets)
        if (!applyField(spec.base, spec.baseWorkload, k, v))
            fatal("--set: unknown field '", k, "' (vortex_sweep --fields)");
    if (o.sampleInterval != 0)
        spec.base.sampleInterval = o.sampleInterval;
    // CLI --shard overrides the spec's own [fabric] shard annotation.
    if (!o.shardArg.empty())
        parseShardValue("--shard", o.shardArg, spec.shardIndex,
                        spec.shardCount);
    o.opts.shardIndex = spec.shardIndex;
    o.opts.shardCount = spec.shardCount;
    if (!o.dumpSpecPath.empty()) {
        // Export instead of run: the resolved sweep (preset, spec
        // file, or ad-hoc axes, with --set/--sample/--shard folded in)
        // as a canonical TOML document.
        writeTo(o.dumpSpecPath, "sweep spec",
                [&](std::ostream& os) { writeSpecToml(spec, os); });
        return 0;
    }
    if (!o.timeseriesPath.empty()) {
        // Sampling may come from --sample, --set sampleInterval=N,
        // or an axis; an all-disabled matrix would emit an empty
        // (misleading) series, so reject it up front.
        bool anySampled = spec.base.sampleInterval != 0;
        if (!anySampled) {
            for (const RunSpec& r : spec.expand())
                if (r.config.sampleInterval != 0) {
                    anySampled = true;
                    break;
                }
        }
        if (!anySampled)
            fatal("--timeseries needs sampling enabled: add "
                  "--sample N (or --set sampleInterval=N)");
    }

    Campaign campaign(o.opts);
    std::string shardNote;
    if (o.opts.shardCount > 1)
        shardNote = " [shard " + std::to_string(o.opts.shardIndex) + "/" +
                    std::to_string(o.opts.shardCount) + "]";
    std::fprintf(stderr, "campaign '%s': %zu runs, %u jobs%s%s\n",
                 spec.name.c_str(), spec.runCount(),
                 campaign.options().jobs,
                 o.opts.cacheDir.empty()
                     ? ""
                     : (" (cache: " + o.opts.cacheDir + ")").c_str(),
                 shardNote.c_str());

    CampaignResult result = campaign.run(spec);

    if (!o.noCsv) {
        std::string out = o.csvPath.empty() ? spec.name + ".csv" : o.csvPath;
        writeTo(out, "campaign CSV",
                [&](std::ostream& os) { result.writeCsv(os); });
    }
    if (!o.jsonPath.empty())
        writeTo(o.jsonPath, "campaign JSON",
                [&](std::ostream& os) { result.writeJson(os); });
    if (!o.timeseriesPath.empty())
        writeTo(o.timeseriesPath, "time-series JSON",
                [&](std::ostream& os) { result.writeTimeSeriesJson(os); });
    if (!o.benchJsonPath.empty())
        writeTo(o.benchJsonPath, "bench JSON",
                [&](std::ostream& os) { result.writeBenchJson(os); });

    // Figure-shaped reports need the full matrix; a shard holds only
    // its slice, so reports come from the post-merge full rerun.
    if (report && o.opts.shardCount <= 1)
        report(result).print(std::cout);
    if (!o.opts.cacheDir.empty())
        std::fprintf(stderr, "cache: %u hit%s, %u miss%s\n",
                     result.cacheHits, result.cacheHits == 1 ? "" : "s",
                     result.cacheMisses,
                     result.cacheMisses == 1 ? "" : "es");
    // Failed runs are result rows, not silent drops — but a campaign
    // with failures must not exit 0 (exit code 3; docs/ROBUSTNESS.md).
    if (uint32_t failed = result.failures()) {
        std::fprintf(stderr,
                     "campaign '%s': %u of %zu run%s failed (see the "
                     "status column)\n",
                     spec.name.c_str(), failed, result.records.size(),
                     result.records.size() == 1 ? "" : "s");
        return 3;
    }
    return 0;
}

int
runCmd(const std::vector<std::string>& args, size_t start)
{
    RunArgs o;
    bool help = false;
    size_t bad = 0;
    if (!parseRunArgs(o, args, start, help, bad)) {
        std::fprintf(stderr, "unknown argument '%s'\n", args[bad].c_str());
        return usage(2);
    }
    if (help)
        return usage(0);
    return execRun(o);
}

int
specsCmd(const std::vector<std::string>& args)
{
    if (args.empty())
        fatal("specs needs a verb: list, fields, or dump");
    const std::string& verb = args[0];
    if (verb == "list") {
        if (args.size() > 1)
            fatal("specs list takes no arguments");
        return listPresets();
    }
    if (verb == "fields") {
        if (args.size() > 1)
            fatal("specs fields takes no arguments");
        return listFields();
    }
    if (verb == "dump") {
        // `specs dump [run flags] [PATH]`: same resolution as `run`,
        // serialized instead of executed. PATH defaults to stdout.
        RunArgs o;
        std::vector<std::string> rest(args.begin() + 1, args.end());
        std::string out = "-";
        if (!rest.empty() && !rest.back().empty() && rest.back()[0] != '-' &&
            rest.back().find('=') == std::string::npos) {
            // A trailing bare word that is not a flag value: only take
            // it as PATH when the preceding token is not a flag that
            // wants an argument.
            bool prevTakesArg =
                rest.size() >= 2 && rest[rest.size() - 2].size() > 2 &&
                rest[rest.size() - 2].compare(0, 2, "--") == 0;
            if (!prevTakesArg) {
                out = rest.back();
                rest.pop_back();
            }
        }
        bool help = false;
        size_t bad = 0;
        if (!parseRunArgs(o, rest, 0, help, bad)) {
            std::fprintf(stderr, "unknown argument '%s'\n",
                         rest[bad].c_str());
            return usage(2);
        }
        if (help)
            return usage(0);
        if (o.dumpSpecPath.empty())
            o.dumpSpecPath = out;
        return execRun(o);
    }
    fatal("specs: unknown verb '", verb, "' (list, fields, dump)");
}

} // namespace

int
cliMain(const std::vector<std::string>& args)
{
    try {
        if (!args.empty()) {
            const std::string& cmd = args[0];
            std::vector<std::string> rest(args.begin() + 1, args.end());
            if (cmd == "run")
                return runCmd(args, 1);
            if (cmd == "cache")
                return cacheCmd(rest);
            if (cmd == "serve")
                return serveCmd(rest);
            if (cmd == "submit")
                return submitCmd(rest);
            if (cmd == "specs")
                return specsCmd(rest);
        }
        // No subcommand word: the legacy flat-flag grammar (identical
        // to `run`).
        return runCmd(args, 0);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}

} // namespace vortex::sweep
