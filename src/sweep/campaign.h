/**
 * @file
 * The campaign engine: executes a SweepSpec's run matrix on a host job
 * pool and emits structured results.
 *
 * Determinism contract (the sweep-level analogue of core/tick_engine.h):
 * every run constructs its own Device, so runs share no simulation state;
 * workers claim runs from an atomic cursor but store each RunRecord at
 * the run's matrix index; and all emission (CSV/JSON/reports) walks the
 * records in matrix order. Campaign output is therefore byte-identical
 * for any job count — `--jobs 4` only changes wall-clock time.
 *
 * Scheduling (CampaignOptions::lpt, default on) reorders only the claim
 * sequence: runs are claimed longest-estimated-first (LPT) so the most
 * expensive simulations cannot strand the pool at the tail. The cost of
 * a run is the result cache's recorded wall-clock when the run will be
 * a hit (~0: it restores instead of simulating) and the deterministic
 * estimateRunCost heuristic otherwise; the same costs drive the
 * CampaignOptions::progress ETA. Because storage and emission stay in
 * matrix order, LPT is invisible in every output byte.
 *
 * Result cache: a run's cache key is the content hash of its canonical
 * (config, workload) serialization (RunSpec::contentHash). Cached records
 * store the counters and metrics of the finished run; a hit skips the
 * simulation entirely. Only verified (ok) runs are cached. Entry I/O,
 * the manifest, pruning, and cross-host merge all live in the CacheStore
 * class (sweep/cache.h); the Campaign constructs one over
 * CampaignOptions::cacheDir. Writes are atomic (temp file + rename) so
 * concurrent campaigns may share a cache directory.
 *
 * Sharding (CampaignOptions::shardIndex/shardCount) and the service
 * mode built on top of this engine are the campaign fabric — see
 * sweep/fabric.h and docs/FABRIC.md.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "common/stats.h"
#include "sweep/spec.h"

namespace vortex::sweep {

/** How a Campaign executes and where it caches. */
struct CampaignOptions
{
    uint32_t jobs = 1;    ///< concurrent runs; 0 = host hardware threads
    std::string cacheDir; ///< result-cache directory ("" disables caching)
    bool verbose = false; ///< per-run progress lines on stderr
    /** Fabric shard selector: with shardCount > 1 the campaign executes
     *  only the runs shardAssignment() maps to shardIndex — a disjoint,
     *  LPT-balanced slice of the matrix; the union of all shards is the
     *  full matrix. 0/0 (the default) runs everything. Records are
     *  still stored and emitted in matrix order, so a shard's outputs
     *  are the matching subset of the unsharded bytes. */
    uint32_t shardIndex = 0;
    uint32_t shardCount = 0; ///< total shards (0 or 1 = unsharded)
    /** Claim runs longest-estimated-first (LPT) instead of in matrix
     *  order. Scheduling only — records are still stored and emitted in
     *  matrix order, so output bytes are unchanged (the determinism
     *  contract). Costs come from estimateRunCost(). */
    bool lpt = true;
    /** Append an elapsed/ETA estimate to each per-run stderr line, from
     *  the same cost estimates LPT schedules with. */
    bool progress = false;
    /** Statically verify every distinct (kernel, machine) pair of the
     *  matrix before scheduling any run (see src/analysis/). Fatal on
     *  analysis errors, with the diagnostic list on stderr. Off by
     *  default; a scheduling-side option, so it never enters
     *  RunSpec::canonical() or the result-cache content hash. */
    bool verify = false;
    /** Abort the campaign on the first failed run (the pre-robustness
     *  behavior, `--fail-fast` on the CLI). By default a failed run —
     *  timeout, guest trap, self-check failure, host error, or a
     *  verification mismatch — is recorded as a first-class result row
     *  (see RunResult::status and docs/ROBUSTNESS.md) and the campaign
     *  completes the rest of the matrix. */
    bool failFast = false;
};

/** One executed (or cache-restored) run with its counters. */
struct RunRecord
{
    RunSpec spec;              ///< what was run
    runtime::RunResult result; ///< verified metrics (cycles, IPC, ...)
    StatGroup stats;      ///< device counters flattened to "group.key"
    /** Per-interval counter deltas (empty unless the run's config set
     *  sampleInterval; round-trips through the result cache). */
    TimeSeries series;
    bool fromCache = false;    ///< restored from the result cache
    double hostSeconds = 0.0; ///< wall-clock of the simulation (0 on hit)

    /** Derived D$ bank utilization: accepted / (accepted + conflicts)
     *  over the summed per-core dcache selector counters (Fig. 19). */
    double dcacheBankUtilization() const;
};

/** All records of one campaign, in matrix (spec-expansion) order. */
struct CampaignResult
{
    std::string name;                   ///< the spec's campaign name
    std::vector<std::string> axisNames; ///< spec axes, in order
    std::vector<RunRecord> records;     ///< one per run, matrix order
    uint32_t cacheHits = 0;             ///< runs restored from cache
    uint32_t cacheMisses = 0;           ///< runs actually simulated

    /** The record whose coordinate labels equal @p labels (one per axis,
     *  spec order); fatal when absent. */
    const RunRecord& at(const std::vector<std::string>& labels) const;

    /** Number of failed records: every run whose result.ok is false —
     *  timeouts, guest traps, self-check failures, host errors, and
     *  silent verification mismatches alike. Campaign front ends exit
     *  nonzero when this is nonzero (docs/ROBUSTNESS.md). */
    uint32_t failures() const;

    /**
     * Write one CSV row per run: axis coordinates, run id, content hash,
     * ok, status (the RunStatus name — see docs/ROBUSTNESS.md), cycles,
     * thread_instrs, ipc, host metadata-free counters (the union of
     * stat keys across records, first-seen order). Byte-stable across
     * job counts and cache states.
     */
    void writeCsv(std::ostream& os) const;

    /** JSON: campaign name, axes, and per-run objects with coords,
     *  hash, metrics, and counters. Like CSV, byte-stable across job
     *  counts and cache states (no execution metadata is embedded). */
    void writeJson(std::ostream& os) const;

    /**
     * Time-series JSON: one object per run — id, hash, coordinate
     * labels, sampling interval, sample-cycle stamps, and one delta
     * array per counter ("counters": {"core.thread_instrs": [..], ...})
     * — directly plottable as IPC / hit-rate / bandwidth curves (divide
     * a row by the window widths). Byte-stable across job counts, cache
     * states, and tick backends. Runs without sampling emit empty
     * arrays.
     */
    void writeTimeSeriesJson(std::ostream& os) const;

    /**
     * Bench-trajectory JSON (the CI perf-smoke artifact): per-run
     * hostSeconds, cache provenance, and headline counters, plus the
     * campaign's total simulation wall-clock. Unlike every other
     * emitter this one DOES carry execution metadata — it measures the
     * simulator, not the simulation — so it is NOT byte-stable.
     */
    void writeBenchJson(std::ostream& os) const;
};

/**
 * Relative host-cost estimate of simulating @p spec, in arbitrary
 * deterministic units (NOT seconds): roughly problem work (kernel
 * weight x scale^2, or texture area x filter cost) scaled by machine
 * size (cores x warps x threads). LPT scheduling sorts by it and the
 * --progress ETA extrapolates with it. Only the ordering matters — a
 * mis-estimate can lengthen the critical path, never change results.
 */
double estimateRunCost(const RunSpec& spec);

class CacheStore; // sweep/cache.h

/**
 * Per-kernel calibration of estimateRunCost() against recorded cache
 * provenance — the fleet scheduler's cost model. Every v2 cache entry
 * records the run's measured wall-clock (host_seconds), its registry
 * kernel name, and the static estimate at store time (est_units);
 * fromCache() fits one seconds-per-estimate-unit scale factor per
 * kernel (plus a global factor over all kernels) from those triples.
 *
 * cost() then prices a run as static-estimate x kernel factor — real
 * recorded seconds shape the LPT schedule and the --progress ETA — and
 * falls back to the global factor for kernels with no recorded data,
 * or to the raw static heuristic when the store holds no data at all.
 * Entries written before the kernel/est_units provenance lines simply
 * contribute nothing. Like the static heuristic, the model only orders
 * work: a stale fit can lengthen the critical path, never change a
 * single output byte.
 */
class CostModel
{
  public:
    /** The uncalibrated model: cost() is estimateRunCost() exactly. */
    CostModel() = default;

    /** Fit a model from @p store's entry provenance (see class docs).
     *  Deterministic for a given set of entries. */
    static CostModel fromCache(const CacheStore& store);

    /** Estimated host cost of @p spec: seconds when calibrated for its
     *  kernel (or globally), estimateRunCost() units otherwise. */
    double cost(const RunSpec& spec) const;

    /** Number of cache entries the fit consumed (0 = uncalibrated). */
    size_t sampleCount() const { return samples_; }

    /** Whether any recorded provenance shaped this model. */
    bool calibrated() const { return samples_ > 0; }

  private:
    /** kernel name -> recorded seconds per static estimate unit. */
    std::vector<std::pair<std::string, double>> kernelScale_;
    double globalScale_ = 0.0; ///< all-kernel fallback factor (0 = none)
    size_t samples_ = 0;       ///< entries consumed by the fit
};

/**
 * Deterministic shard assignment of @p runs over @p shardCount shards:
 * returns one shard index per run (matrix order). Assignment is greedy
 * LPT bin-packing — runs are taken in descending estimateRunCost()
 * order (stable, index tiebreak) and each lands on the least-loaded
 * shard (lowest index on ties) — so shard workloads are balanced, every
 * run lands on exactly one shard, and the union over shards is the full
 * matrix. On purpose this uses the *static* cost heuristic, never a
 * cache-calibrated model: every host of a fleet must compute the same
 * partition from the spec alone, regardless of local cache state. (All
 * hosts must also run the same simulator build — the heuristic is code,
 * not spec data.) Fatal when @p shardCount is 0.
 */
std::vector<uint32_t> shardAssignment(const std::vector<RunSpec>& runs,
                                      uint32_t shardCount);

/**
 * Simulate @p spec on a fresh Device and return the finished record
 * (counters flattened, time series attached, hostSeconds measured).
 * The execution primitive shared by Campaign workers and the fabric
 * service; verification status is in the record — the caller decides
 * whether a failure is fatal.
 *
 * @p abortCheck, when non-empty, is polled periodically from the
 * simulation loop (see core::Processor::setAbortCheck); returning true
 * aborts the run, which comes back as a RunStatus::Timeout record. The
 * fabric service passes its per-simulation wall-clock deadline here —
 * aborted runs are failures and are never cached, so the wall-clock
 * nondeterminism cannot leak into any byte-stable output.
 */
RunRecord executeRun(const RunSpec& spec,
                     std::function<bool()> abortCheck = {});

/** One result-cache entry as listed by CacheStore::entries(). (Defined
 *  here rather than in cache.h because campaign code is its main
 *  consumer; cache.h forward-includes campaign.h for it.) */
struct CacheEntryInfo
{
    std::string hash;     ///< content hash (the file basename)
    std::string id;       ///< run id recorded at store time
    std::string campaign; ///< campaign name recorded at store time
    int64_t mtime = 0;    ///< entry mtime, seconds since the Unix epoch
    double hostSeconds = -1.0; ///< recorded wall-clock (-1 = not recorded)
    std::string kernel;   ///< registry kernel name ("" on old entries)
    double estUnits = 0.0; ///< static cost estimate at store time (0 = none)
};

/** Executes SweepSpecs; see the file comment for the determinism and
 *  caching contracts. */
class Campaign
{
  public:
    explicit Campaign(CampaignOptions opts = {});

    /** Expand @p spec and execute every run (or restore it from cache).
     *  With CampaignOptions::shardCount > 1, executes only this shard's
     *  slice of the matrix. A failed run (timeout, guest trap,
     *  self-check failure, host error, verification mismatch) is
     *  recorded as a result row with its RunStatus and the campaign
     *  completes the rest of the matrix — failed runs are never cached,
     *  and CampaignResult::failures() reports the count so front ends
     *  can exit nonzero. With CampaignOptions::failFast the first
     *  failure is fatal instead (the pre-robustness behavior). A
     *  campaign never silently reports numbers from a wrong result
     *  either way: failures are explicit rows, not missing ones. */
    CampaignResult run(const SweepSpec& spec);

    /** The options this campaign executes with (jobs resolved). */
    const CampaignOptions& options() const { return opts_; }

  private:
    CampaignOptions opts_;
};

} // namespace vortex::sweep
