/**
 * @file
 * The campaign engine: executes a SweepSpec's run matrix on a host job
 * pool and emits structured results.
 *
 * Determinism contract (the sweep-level analogue of core/tick_engine.h):
 * every run constructs its own Device, so runs share no simulation state;
 * workers claim runs from an atomic cursor but store each RunRecord at
 * the run's matrix index; and all emission (CSV/JSON/reports) walks the
 * records in matrix order. Campaign output is therefore byte-identical
 * for any job count — `--jobs 4` only changes wall-clock time.
 *
 * Scheduling (CampaignOptions::lpt, default on) reorders only the claim
 * sequence: runs are claimed longest-estimated-first (LPT) so the most
 * expensive simulations cannot strand the pool at the tail. The cost of
 * a run is the result cache's recorded wall-clock when the run will be
 * a hit (~0: it restores instead of simulating) and the deterministic
 * estimateRunCost heuristic otherwise; the same costs drive the
 * CampaignOptions::progress ETA. Because storage and emission stay in
 * matrix order, LPT is invisible in every output byte.
 *
 * Result cache: a run's cache key is the content hash of its canonical
 * (config, workload) serialization (RunSpec::contentHash). Cached records
 * store the counters and metrics of the finished run; a hit skips the
 * simulation entirely. Only verified (ok) runs are cached. Entries are
 * one file per key under CampaignOptions::cacheDir, written atomically
 * (temp file + rename) so concurrent campaigns may share a cache
 * directory.
 */

#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/stats.h"
#include "sweep/spec.h"

namespace vortex::sweep {

/** How a Campaign executes and where it caches. */
struct CampaignOptions
{
    uint32_t jobs = 1;    ///< concurrent runs; 0 = host hardware threads
    std::string cacheDir; ///< result-cache directory ("" disables caching)
    bool verbose = false; ///< per-run progress lines on stderr
    /** Claim runs longest-estimated-first (LPT) instead of in matrix
     *  order. Scheduling only — records are still stored and emitted in
     *  matrix order, so output bytes are unchanged (the determinism
     *  contract). Costs come from estimateRunCost(). */
    bool lpt = true;
    /** Append an elapsed/ETA estimate to each per-run stderr line, from
     *  the same cost estimates LPT schedules with. */
    bool progress = false;
    /** Statically verify every distinct (kernel, machine) pair of the
     *  matrix before scheduling any run (see src/analysis/). Fatal on
     *  analysis errors, with the diagnostic list on stderr. Off by
     *  default; a scheduling-side option, so it never enters
     *  RunSpec::canonical() or the result-cache content hash. */
    bool verify = false;
};

/** One executed (or cache-restored) run with its counters. */
struct RunRecord
{
    RunSpec spec;              ///< what was run
    runtime::RunResult result; ///< verified metrics (cycles, IPC, ...)
    StatGroup stats;      ///< device counters flattened to "group.key"
    /** Per-interval counter deltas (empty unless the run's config set
     *  sampleInterval; round-trips through the result cache). */
    TimeSeries series;
    bool fromCache = false;    ///< restored from the result cache
    double hostSeconds = 0.0; ///< wall-clock of the simulation (0 on hit)

    /** Derived D$ bank utilization: accepted / (accepted + conflicts)
     *  over the summed per-core dcache selector counters (Fig. 19). */
    double dcacheBankUtilization() const;
};

/** All records of one campaign, in matrix (spec-expansion) order. */
struct CampaignResult
{
    std::string name;                   ///< the spec's campaign name
    std::vector<std::string> axisNames; ///< spec axes, in order
    std::vector<RunRecord> records;     ///< one per run, matrix order
    uint32_t cacheHits = 0;             ///< runs restored from cache
    uint32_t cacheMisses = 0;           ///< runs actually simulated

    /** The record whose coordinate labels equal @p labels (one per axis,
     *  spec order); fatal when absent. */
    const RunRecord& at(const std::vector<std::string>& labels) const;

    /**
     * Write one CSV row per run: axis coordinates, run id, content hash,
     * ok, cycles, thread_instrs, ipc, host metadata-free counters (the
     * union of stat keys across records, first-seen order). Byte-stable
     * across job counts and cache states.
     */
    void writeCsv(std::ostream& os) const;

    /** JSON: campaign name, axes, and per-run objects with coords,
     *  hash, metrics, and counters. Like CSV, byte-stable across job
     *  counts and cache states (no execution metadata is embedded). */
    void writeJson(std::ostream& os) const;

    /**
     * Time-series JSON: one object per run — id, hash, coordinate
     * labels, sampling interval, sample-cycle stamps, and one delta
     * array per counter ("counters": {"core.thread_instrs": [..], ...})
     * — directly plottable as IPC / hit-rate / bandwidth curves (divide
     * a row by the window widths). Byte-stable across job counts, cache
     * states, and tick backends. Runs without sampling emit empty
     * arrays.
     */
    void writeTimeSeriesJson(std::ostream& os) const;

    /**
     * Bench-trajectory JSON (the CI perf-smoke artifact): per-run
     * hostSeconds, cache provenance, and headline counters, plus the
     * campaign's total simulation wall-clock. Unlike every other
     * emitter this one DOES carry execution metadata — it measures the
     * simulator, not the simulation — so it is NOT byte-stable.
     */
    void writeBenchJson(std::ostream& os) const;
};

/**
 * Relative host-cost estimate of simulating @p spec, in arbitrary
 * deterministic units (NOT seconds): roughly problem work (kernel
 * weight x scale^2, or texture area x filter cost) scaled by machine
 * size (cores x warps x threads). LPT scheduling sorts by it and the
 * --progress ETA extrapolates with it. Only the ordering matters — a
 * mis-estimate can lengthen the critical path, never change results.
 */
double estimateRunCost(const RunSpec& spec);

/**
 * The simulation wall-clock seconds recorded in cache directory @p dir
 * for content hash @p hash: negative when no valid entry exists, 0 for
 * a valid entry that predates the host_seconds provenance line. A
 * non-negative return means Campaign::run will restore the run instead
 * of simulating it, so the scheduler prices it at (nearly) zero — the
 * recorded seconds tell the *next* heuristic consumer what the run
 * once cost, and give tests a round-trip probe.
 */
double cachedHostSeconds(const std::string& dir, const std::string& hash);

/** One result-cache entry as listed by the manifest. */
struct CacheEntryInfo
{
    std::string hash;     ///< content hash (the file basename)
    std::string id;       ///< run id recorded at store time
    std::string campaign; ///< campaign name recorded at store time
    int64_t mtime = 0;    ///< entry mtime, seconds since the Unix epoch
};

/** All valid entries under cache directory @p dir, sorted by hash
 *  (empty when the directory is missing). */
std::vector<CacheEntryInfo> listCache(const std::string& dir);

/**
 * Rewrite @p dir/manifest.json from the entries on disk: one object per
 * cached record (hash, run id, campaign, ISO-8601 UTC timestamp).
 * Atomic (temp file + rename) and self-healing — it reflects whatever
 * entries exist, including ones written by other campaigns sharing the
 * directory. Campaign::run refreshes it after every cached campaign.
 */
void writeCacheManifest(const std::string& dir);

/**
 * Delete cached records from @p dir: all of them, or with
 * @p olderThanDays >= 0 only those whose mtime is older than that many
 * days. Also sweeps leftover temp files and rewrites the manifest.
 * @return the number of records removed.
 */
size_t pruneCache(const std::string& dir, double olderThanDays = -1.0);

/** Executes SweepSpecs; see the file comment for the determinism and
 *  caching contracts. */
class Campaign
{
  public:
    explicit Campaign(CampaignOptions opts = {});

    /** Expand @p spec and execute every run (or restore it from cache).
     *  Fatal when a run fails verification — a campaign never silently
     *  reports numbers from a wrong result. */
    CampaignResult run(const SweepSpec& spec);

    /** The options this campaign executes with (jobs resolved). */
    const CampaignOptions& options() const { return opts_; }

  private:
    RunRecord executeOne(const RunSpec& spec) const;
    bool tryLoadCached(const RunSpec& spec, RunRecord& out) const;
    void storeCached(const RunRecord& record,
                     const std::string& campaignName) const;
    std::string cachePath(const std::string& hash) const;

    CampaignOptions opts_;
};

} // namespace vortex::sweep
