/**
 * @file
 * Sweep-spec document parsing (TOML subset + JSON) and canonical TOML
 * serialization.
 *
 * Both syntaxes parse into one ordered document tree (Node); a shared
 * builder walks the tree, validates every key and field value through
 * the same registry the CLI uses (applyField), and assembles the
 * SweepSpec. Every diagnostic carries file:line:col.
 */

#include "sweep/specfile.h"

#include <cctype>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "common/log.h"

namespace vortex::sweep {

namespace {

/** Schema identifier accepted in the optional `spec = "..."` header. */
constexpr const char* kSchemaId = "vortex-sweep/v1";

//
// Document tree. Tables keep member order (axis points and field
// assignments are order-sensitive), and every node remembers where it
// began so the builder can point diagnostics at the source.
//

struct Node;

/** One `key = value` member of a table, with the key's position. */
struct Member
{
    std::string key;
    size_t line = 0;
    size_t col = 0;
    size_t valueIndex = 0; ///< index of the value node in Node::children
};

struct Node
{
    enum class Kind : uint8_t
    {
        String,
        Integer,
        Boolean,
        Table,
        Array,
    };

    Kind kind = Kind::Table;
    size_t line = 0;
    size_t col = 0;

    std::string str;      // Kind::String
    int64_t integer = 0;  // Kind::Integer
    bool boolean = false; // Kind::Boolean

    std::vector<Member> members;  // Kind::Table (ordered)
    std::vector<Node> children;   // Table member values / Array elements

    const char*
    kindName() const
    {
        switch (kind) {
        case Kind::String: return "string";
        case Kind::Integer: return "integer";
        case Kind::Boolean: return "boolean";
        case Kind::Table: return "table";
        case Kind::Array: return "array";
        }
        return "?";
    }

    Node*
    find(const std::string& key)
    {
        for (Member& m : members)
            if (m.key == key)
                return &children[m.valueIndex];
        return nullptr;
    }
};

[[noreturn]] void
fail(const std::string& file, size_t line, size_t col,
     const std::string& message)
{
    throw SpecParseError(file, line, col, message);
}

//
// TOML-subset parser. Line-oriented: comments, blank lines, [table] and
// [[array-of-tables]] headers, and `key = value` pairs with dotted bare
// keys and string/integer/boolean values.
//

class TomlParser
{
  public:
    TomlParser(const std::string& text, std::string file)
        : text_(text), file_(std::move(file))
    {
    }

    Node
    parse()
    {
        Node root;
        root.kind = Node::Kind::Table;
        current_ = &root;

        size_t pos = 0, line = 0;
        while (pos <= text_.size()) {
            size_t eol = text_.find('\n', pos);
            if (eol == std::string::npos)
                eol = text_.size();
            ++line;
            size_t len = eol - pos;
            // Tolerate CRLF line endings (checked-out specs on Windows).
            if (len > 0 && text_[pos + len - 1] == '\r')
                --len;
            parseLine(root, text_.substr(pos, len), line);
            if (eol == text_.size())
                break;
            pos = eol + 1;
        }
        return root;
    }

  private:
    void
    parseLine(Node& root, const std::string& ln, size_t line)
    {
        size_t i = skipWs(ln, 0);
        if (i >= ln.size() || ln[i] == '#')
            return;
        if (ln[i] == '[') {
            parseHeader(root, ln, i, line);
            return;
        }
        parseKeyValue(ln, i, line);
    }

    void
    parseHeader(Node& root, const std::string& ln, size_t i, size_t line)
    {
        bool isArray = i + 1 < ln.size() && ln[i + 1] == '[';
        size_t start = i + (isArray ? 2 : 1);
        size_t close = ln.find(isArray ? "]]" : "]", start);
        if (close == std::string::npos)
            fail(file_, line, i + 1,
                 std::string("unterminated table header (missing '") +
                     (isArray ? "]]" : "]") + "')");
        std::vector<std::pair<std::string, size_t>> path =
            parseDottedKey(ln, skipWs(ln, start), line, close);
        size_t rest = skipWs(ln, close + (isArray ? 2 : 1));
        if (rest < ln.size() && ln[rest] != '#')
            fail(file_, line, rest + 1,
                 "unexpected text after table header");

        // Resolve every path component but the last; an array-of-tables
        // component means "its most recent element".
        Node* t = &root;
        for (size_t c = 0; c + 1 < path.size(); ++c)
            t = descend(t, path[c].first, line, path[c].second);
        const auto& [leaf, leafCol] = path.back();

        if (isArray) {
            Node* arr = t->find(leaf);
            if (!arr) {
                arr = &addMember(*t, leaf, line, leafCol);
                arr->kind = Node::Kind::Array;
                arr->line = line;
                arr->col = leafCol;
            } else if (arr->kind != Node::Kind::Array) {
                fail(file_, line, leafCol,
                     "'" + leaf + "' is already a " +
                         std::string(arr->kindName()) +
                         ", cannot extend it as an array of tables");
            }
            arr->children.emplace_back();
            Node& elem = arr->children.back();
            elem.kind = Node::Kind::Table;
            elem.line = line;
            elem.col = leafCol;
            current_ = &elem;
        } else {
            if (t->find(leaf))
                fail(file_, line, leafCol,
                     "table '" + leaf + "' defined twice");
            Node& tbl = addMember(*t, leaf, line, leafCol);
            tbl.kind = Node::Kind::Table;
            tbl.line = line;
            tbl.col = leafCol;
            current_ = &tbl;
        }
    }

    /** Resolve one intermediate header-path component. */
    Node*
    descend(Node* t, const std::string& key, size_t line, size_t col)
    {
        Node* next = t->find(key);
        if (!next)
            fail(file_, line, col,
                 "unknown parent table '" + key +
                     "' (declare it before nesting into it)");
        if (next->kind == Node::Kind::Array) {
            if (next->children.empty())
                fail(file_, line, col,
                     "array '" + key + "' has no elements yet");
            return &next->children.back();
        }
        if (next->kind != Node::Kind::Table)
            fail(file_, line, col,
                 "'" + key + "' is a " + std::string(next->kindName()) +
                     ", not a table");
        return next;
    }

    void
    parseKeyValue(const std::string& ln, size_t i, size_t line)
    {
        size_t eq = findEquals(ln, i, line);
        std::vector<std::pair<std::string, size_t>> path =
            parseDottedKey(ln, i, line, eq);

        // Dotted keys nest: `set.kernel = "x"` is table `set` member
        // `kernel`.
        Node* t = current_;
        for (size_t c = 0; c + 1 < path.size(); ++c) {
            const auto& [key, col] = path[c];
            Node* next = t->find(key);
            if (!next) {
                next = &addMember(*t, key, line, col);
                next->kind = Node::Kind::Table;
                next->line = line;
                next->col = col;
            } else if (next->kind != Node::Kind::Table) {
                fail(file_, line, col,
                     "'" + key + "' is already a " +
                         std::string(next->kindName()) +
                         ", cannot assign into it");
            }
            t = next;
        }
        const auto& [leaf, leafCol] = path.back();
        if (t->find(leaf))
            fail(file_, line, leafCol, "key '" + leaf + "' set twice");

        size_t v = skipWs(ln, eq + 1);
        Node value = parseValue(ln, v, line);
        if (v < ln.size() && ln[v] != '#')
            fail(file_, line, v + 1, "unexpected text after value");
        Node& slot = addMember(*t, leaf, line, leafCol);
        size_t keepLine = value.line, keepCol = value.col;
        slot = std::move(value);
        slot.line = keepLine;
        slot.col = keepCol;
    }

    /** Parse a scalar value starting at @p i; advances @p i past it. */
    Node
    parseValue(const std::string& ln, size_t& i, size_t line)
    {
        Node n;
        n.line = line;
        n.col = i + 1;
        if (i >= ln.size())
            fail(file_, line, i + 1, "missing value after '='");
        char c = ln[i];
        if (c == '"') {
            n.kind = Node::Kind::String;
            n.str = parseString(ln, i, line);
        } else if (c == 't' || c == 'f') {
            n.kind = Node::Kind::Boolean;
            if (ln.compare(i, 4, "true") == 0) {
                n.boolean = true;
                i += 4;
            } else if (ln.compare(i, 5, "false") == 0) {
                n.boolean = false;
                i += 5;
            } else {
                fail(file_, line, i + 1,
                     "unrecognized value (expected a \"string\", an "
                     "integer, true, or false)");
            }
        } else if (c == '-' || c == '+' || std::isdigit(
                       static_cast<unsigned char>(c))) {
            n.kind = Node::Kind::Integer;
            size_t start = i;
            if (c == '-' || c == '+')
                ++i;
            size_t digits = i;
            while (i < ln.size() &&
                   std::isdigit(static_cast<unsigned char>(ln[i])))
                ++i;
            if (i == digits)
                fail(file_, line, start + 1, "malformed number");
            if (i < ln.size() && (ln[i] == '.' || ln[i] == 'e' ||
                                  ln[i] == 'E'))
                fail(file_, line, start + 1,
                     "floating-point values are not used by sweep specs "
                     "(field values are integers, booleans, or strings)");
            try {
                n.integer = std::stoll(ln.substr(start, i - start));
            } catch (const std::exception&) {
                fail(file_, line, start + 1, "integer out of range");
            }
        } else {
            fail(file_, line, i + 1,
                 "unrecognized value (expected a \"string\", an integer, "
                 "true, or false)");
        }
        i = skipWs(ln, i);
        return n;
    }

    /** Parse a quoted string starting at ln[i] == '"'; advances i. */
    std::string
    parseString(const std::string& ln, size_t& i, size_t line)
    {
        size_t open = i;
        ++i; // opening quote
        std::string out;
        while (i < ln.size()) {
            char c = ln[i];
            if (c == '"') {
                ++i;
                return out;
            }
            if (c == '\\') {
                if (i + 1 >= ln.size())
                    fail(file_, line, i + 1, "dangling escape in string");
                char e = ln[i + 1];
                switch (e) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case 'n': out += '\n'; break;
                case 't': out += '\t'; break;
                case 'r': out += '\r'; break;
                default:
                    fail(file_, line, i + 2,
                         std::string("unsupported escape '\\") + e + "'");
                }
                i += 2;
                continue;
            }
            out += c;
            ++i;
        }
        fail(file_, line, open + 1, "unterminated string");
    }

    /** Parse dotted bare keys `a.b.c` filling [i, limit) exactly
     *  (modulo surrounding whitespace — stray tokens are errors, not
     *  silently dropped); returns (component, 1-based column) pairs. */
    std::vector<std::pair<std::string, size_t>>
    parseDottedKey(const std::string& ln, size_t i, size_t line,
                   size_t limit)
    {
        std::vector<std::pair<std::string, size_t>> path;
        while (true) {
            i = skipWs(ln, i);
            size_t start = i;
            while (i < limit && isBareKeyChar(ln[i]))
                ++i;
            if (i == start)
                fail(file_, line, start + 1,
                     "expected a key (bare keys use letters, digits, '_' "
                     "and '-')");
            path.emplace_back(ln.substr(start, i - start), start + 1);
            i = skipWs(ln, i);
            if (i < limit && ln[i] == '.') {
                ++i;
                continue;
            }
            break;
        }
        if (i != limit)
            fail(file_, line, i + 1,
                 "unexpected text after key '" + path.back().first + "'");
        return path;
    }

    size_t
    findEquals(const std::string& ln, size_t i, size_t line)
    {
        size_t eq = ln.find('=', i);
        if (eq == std::string::npos)
            fail(file_, line, i + 1,
                 "expected 'key = value' (no '=' on this line)");
        return eq;
    }

    static bool
    isBareKeyChar(char c)
    {
        return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
               c == '-';
    }

    static size_t
    skipWs(const std::string& s, size_t i)
    {
        while (i < s.size() && (s[i] == ' ' || s[i] == '\t'))
            ++i;
        return i;
    }

    Node&
    addMember(Node& table, const std::string& key, size_t line, size_t col)
    {
        table.members.push_back(
            Member{key, line, col, table.children.size()});
        table.children.emplace_back();
        return table.children.back();
    }

    const std::string& text_;
    std::string file_;
    Node* current_ = nullptr; ///< table the next key = value lands in
};

//
// JSON parser (standard JSON; floats and null rejected since the schema
// never uses them).
//

class JsonParser
{
  public:
    JsonParser(const std::string& text, std::string file)
        : text_(text), file_(std::move(file))
    {
    }

    Node
    parse()
    {
        skipWs();
        Node root = parseValue();
        skipWs();
        if (pos_ < text_.size())
            fail(file_, line_, col_, "trailing content after document");
        if (root.kind != Node::Kind::Table)
            fail(file_, root.line, root.col,
                 "top-level JSON value must be an object");
        return root;
    }

  private:
    Node
    parseValue()
    {
        if (pos_ >= text_.size())
            fail(file_, line_, col_, "unexpected end of input");
        Node n;
        n.line = line_;
        n.col = col_;
        char c = text_[pos_];
        if (c == '{') {
            n.kind = Node::Kind::Table;
            advance();
            skipWs();
            if (peek() == '}') {
                advance();
                return n;
            }
            while (true) {
                skipWs();
                size_t kl = line_, kc = col_;
                if (peek() != '"')
                    fail(file_, line_, col_,
                         "expected a \"key\" string");
                std::string key = parseString();
                skipWs();
                expect(':');
                skipWs();
                if (n.find(key))
                    fail(file_, kl, kc, "key '" + key + "' set twice");
                n.members.push_back(
                    Member{key, kl, kc, n.children.size()});
                n.children.push_back(parseValue());
                skipWs();
                if (peek() == ',') {
                    advance();
                    continue;
                }
                expect('}');
                break;
            }
        } else if (c == '[') {
            n.kind = Node::Kind::Array;
            advance();
            skipWs();
            if (peek() == ']') {
                advance();
                return n;
            }
            while (true) {
                skipWs();
                n.children.push_back(parseValue());
                skipWs();
                if (peek() == ',') {
                    advance();
                    continue;
                }
                expect(']');
                break;
            }
        } else if (c == '"') {
            n.kind = Node::Kind::String;
            n.str = parseString();
        } else if (c == 't' || c == 'f') {
            n.kind = Node::Kind::Boolean;
            const char* word = c == 't' ? "true" : "false";
            size_t len = c == 't' ? 4 : 5;
            if (text_.compare(pos_, len, word) != 0)
                fail(file_, line_, col_, "unrecognized literal");
            n.boolean = c == 't';
            for (size_t k = 0; k < len; ++k)
                advance();
        } else if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
            n.kind = Node::Kind::Integer;
            size_t start = pos_, sl = line_, sc = col_;
            if (c == '-')
                advance();
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])))
                advance();
            if (pos_ < text_.size() &&
                (text_[pos_] == '.' || text_[pos_] == 'e' ||
                 text_[pos_] == 'E'))
                fail(file_, sl, sc,
                     "floating-point values are not used by sweep specs");
            if (pos_ == start || (text_[start] == '-' && pos_ == start + 1))
                fail(file_, sl, sc, "malformed number");
            try {
                n.integer = std::stoll(text_.substr(start, pos_ - start));
            } catch (const std::exception&) {
                fail(file_, sl, sc, "integer out of range");
            }
        } else if (text_.compare(pos_, 4, "null") == 0) {
            fail(file_, line_, col_,
                 "null is not used by sweep specs (omit the key instead)");
        } else {
            fail(file_, line_, col_, "unrecognized value");
        }
        return n;
    }

    std::string
    parseString()
    {
        advance(); // opening quote
        std::string out;
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == '"') {
                advance();
                return out;
            }
            if (c == '\\') {
                advance();
                if (pos_ >= text_.size())
                    break;
                char e = text_[pos_];
                switch (e) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'n': out += '\n'; break;
                case 't': out += '\t'; break;
                case 'r': out += '\r'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                default:
                    fail(file_, line_, col_,
                         std::string("unsupported escape '\\") + e + "'");
                }
                advance();
                continue;
            }
            if (c == '\n')
                fail(file_, line_, col_, "unterminated string");
            out += c;
            advance();
        }
        fail(file_, line_, col_, "unterminated string");
    }

    char
    peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(file_, line_, col_,
                 std::string("expected '") + c + "'");
        advance();
    }

    void
    advance()
    {
        if (pos_ < text_.size() && text_[pos_] == '\n') {
            ++line_;
            col_ = 1;
        } else {
            ++col_;
        }
        ++pos_;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            advance();
    }

    const std::string& text_;
    std::string file_;
    size_t pos_ = 0;
    size_t line_ = 1;
    size_t col_ = 1;
};

//
// Tree -> SweepSpec builder (shared by both syntaxes).
//

/** Scalar node rendered as the string applyField consumes. */
std::string
scalarToString(const std::string& file, const Node& n)
{
    switch (n.kind) {
    case Node::Kind::String: return n.str;
    case Node::Kind::Integer: return std::to_string(n.integer);
    case Node::Kind::Boolean: return n.boolean ? "true" : "false";
    default:
        fail(file, n.line, n.col,
             std::string("expected a scalar value, got a ") +
                 n.kindName());
    }
}

const Node&
expectKind(const std::string& file, const Node& n, Node::Kind kind,
           const char* what)
{
    if (n.kind != kind)
        fail(file, n.line, n.col,
             std::string("expected ") + what + ", got a " + n.kindName());
    return n;
}

/**
 * Flatten a (possibly nested) table of field assignments into ordered
 * (dotted-name, value, position) triples: `lat.alu = 1` and
 * `set.mem.latency = 80` both resolve to the registry's dotted names.
 */
void
flattenFields(const std::string& file, const Node& table,
              const std::string& prefix,
              std::vector<std::pair<std::string, const Node*>>& out)
{
    for (const Member& m : table.members) {
        const Node& v = table.children[m.valueIndex];
        std::string name = prefix.empty() ? m.key : prefix + "." + m.key;
        if (v.kind == Node::Kind::Table)
            flattenFields(file, v, name, out);
        else
            out.emplace_back(std::move(name), &v);
    }
}

/** Apply one field assignment, converting registry fatals into
 *  positioned diagnostics. */
void
applyFieldChecked(const std::string& file, core::ArchConfig& cfg,
                  WorkloadSpec& wl, const std::string& name,
                  const Node& value)
{
    std::string v = scalarToString(file, value);
    try {
        if (!applyField(cfg, wl, name, v))
            fail(file, value.line, value.col,
                 "unknown sweep field '" + name +
                     "' (vortex_sweep --fields lists them)");
    } catch (const FatalError& e) {
        fail(file, value.line, value.col, e.what());
    }
}

Axis
buildAxis(const std::string& file, const Node& axisNode,
          const SweepSpec& spec)
{
    expectKind(file, axisNode, Node::Kind::Table, "an axis table");
    Axis axis;
    bool sawPoints = false;
    for (const Member& m : axisNode.members) {
        const Node& v = axisNode.children[m.valueIndex];
        if (m.key == "name") {
            axis.name = expectKind(file, v, Node::Kind::String,
                                   "a string axis name")
                            .str;
        } else if (m.key == "points") {
            sawPoints = true;
            expectKind(file, v, Node::Kind::Array,
                       "an array of axis points");
            for (const Node& pn : v.children) {
                expectKind(file, pn, Node::Kind::Table, "a point table");
                AxisPoint point;
                bool sawLabel = false;
                for (const Member& pm : pn.members) {
                    const Node& pv = pn.children[pm.valueIndex];
                    if (pm.key == "label") {
                        point.label = scalarToString(file, pv);
                        sawLabel = true;
                    } else if (pm.key == "set") {
                        expectKind(file, pv, Node::Kind::Table,
                                   "a table of field assignments");
                        std::vector<std::pair<std::string, const Node*>>
                            fields;
                        flattenFields(file, pv, "", fields);
                        for (const auto& [fname, fval] : fields) {
                            // Validate the assignment now, on a copy of
                            // the base machine, so a bad field in a
                            // checked-in spec is a parse error with a
                            // position, not an expansion failure later.
                            core::ArchConfig probeCfg = spec.base;
                            WorkloadSpec probeWl = spec.baseWorkload;
                            applyFieldChecked(file, probeCfg, probeWl,
                                              fname, *fval);
                            point.sets.emplace_back(
                                fname, scalarToString(file, *fval));
                        }
                    } else {
                        fail(file, pm.line, pm.col,
                             "unknown point key '" + pm.key +
                                 "' (point keys: label, set)");
                    }
                }
                if (!sawLabel)
                    fail(file, pn.line, pn.col,
                         "axis point needs a label");
                axis.points.push_back(std::move(point));
            }
        } else {
            fail(file, m.line, m.col,
                 "unknown axis key '" + m.key +
                     "' (axis keys: name, points)");
        }
    }
    if (axis.name.empty())
        fail(file, axisNode.line, axisNode.col, "axis needs a name");
    if (!sawPoints || axis.points.empty())
        fail(file, axisNode.line, axisNode.col,
             "axis '" + axis.name + "' has no points");
    return axis;
}

SweepSpec
buildSpec(const std::string& file, const Node& root)
{
    SweepSpec spec;
    for (const Member& m : root.members) {
        const Node& v = root.children[m.valueIndex];
        if (m.key == "spec") {
            const std::string& id =
                expectKind(file, v, Node::Kind::String,
                           "a schema-id string")
                    .str;
            if (id != kSchemaId)
                fail(file, v.line, v.col,
                     "unsupported schema '" + id + "' (this build reads " +
                         kSchemaId + ")");
        } else if (m.key == "name") {
            spec.name = expectKind(file, v, Node::Kind::String,
                                   "a string name")
                            .str;
        } else if (m.key == "description") {
            spec.description =
                expectKind(file, v, Node::Kind::String,
                           "a string description")
                    .str;
        } else if (m.key == "base" || m.key == "workload") {
            // Both sections assign through the field registry; the split
            // is documentation (machine vs what it executes).
            expectKind(file, v, Node::Kind::Table,
                       "a table of field assignments");
            std::vector<std::pair<std::string, const Node*>> fields;
            flattenFields(file, v, "", fields);
            for (const auto& [fname, fval] : fields)
                applyFieldChecked(file, spec.base, spec.baseWorkload,
                                  fname, *fval);
        } else if (m.key == "fabric") {
            // Execution metadata: how to run this spec, not what it
            // measures. Never part of a run's canonical()/content hash.
            expectKind(file, v, Node::Kind::Table, "a fabric table");
            for (const Member& fm : v.members) {
                const Node& fv = v.children[fm.valueIndex];
                if (fm.key == "shard") {
                    const std::string s = scalarToString(file, fv);
                    try {
                        parseShardValue("fabric shard", s,
                                        spec.shardIndex,
                                        spec.shardCount);
                    } catch (const FatalError& e) {
                        fail(file, fv.line, fv.col, e.what());
                    }
                } else {
                    fail(file, fm.line, fm.col,
                         "unknown fabric key '" + fm.key +
                             "' (fabric keys: shard)");
                }
            }
        } else if (m.key == "faults") {
            // Fault-injection parameters (docs/ROBUSTNESS.md). The keys
            // route through the "faults.*" registry fields so spec files
            // and axis points share one parser and one validation.
            expectKind(file, v, Node::Kind::Table, "a faults table");
            for (const Member& fm : v.members) {
                const Node& fv = v.children[fm.valueIndex];
                if (fm.key == "seed" || fm.key == "count" ||
                    fm.key == "window" || fm.key == "watchdog") {
                    applyFieldChecked(file, spec.base, spec.baseWorkload,
                                      "faults." + fm.key, fv);
                } else {
                    fail(file, fm.line, fm.col,
                         "unknown faults key '" + fm.key +
                             "' (faults keys: seed, count, window, "
                             "watchdog)");
                }
            }
        } else if (m.key == "axes") {
            expectKind(file, v, Node::Kind::Array, "an array of axes");
            for (const Node& axisNode : v.children)
                spec.axes.push_back(buildAxis(file, axisNode, spec));
        } else {
            fail(file, m.line, m.col,
                 "unknown top-level key '" + m.key +
                     "' (keys: spec, name, description, base, workload, "
                     "faults, fabric, axes)");
        }
    }
    return spec;
}

//
// Serialization helpers.
//

/** TOML/JSON-safe quoted string. */
std::string
quoted(const std::string& s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default: out += c;
        }
    }
    out += '"';
    return out;
}

/** Emit a stored string value in its most natural TOML form: bare
 *  integer or boolean when the text round-trips exactly, quoted
 *  otherwise. */
std::string
tomlValue(const std::string& v)
{
    if (v == "true" || v == "false")
        return v;
    if (!v.empty() &&
        v.find_first_not_of("0123456789") == std::string::npos) {
        // Only canonical decimals go bare ("007" must stay a string).
        if (v == "0" || v[0] != '0')
            return v;
    }
    return quoted(v);
}

/**
 * Every concrete config field of @p c as (registry name, value text), in
 * registry order. This is the [base] block of a dump: complete, so the
 * file pins the machine even if ArchConfig defaults change later.
 * Derived fields ("cores") are intentionally absent.
 * tests/test_specfile.cpp (DumpCoversEveryRegistryField) fails if a
 * field added to the registry is forgotten here.
 */
std::vector<std::pair<std::string, std::string>>
configAssignments(const core::ArchConfig& c)
{
    auto b = [](bool v) { return std::string(v ? "true" : "false"); };
    auto u = [](uint64_t v) { return std::to_string(v); };
    return {
        {"numThreads", u(c.numThreads)},
        {"numWarps", u(c.numWarps)},
        {"numCores", u(c.numCores)},
        {"coresPerCluster", u(c.coresPerCluster)},
        {"ibufferDepth", u(c.ibufferDepth)},
        {"lsuDepth", u(c.lsuDepth)},
        {"schedPolicy", schedPolicyName(c.schedPolicy)},
        {"lat.alu", u(c.lat.alu)},
        {"lat.mul", u(c.lat.mul)},
        {"lat.div", u(c.lat.div)},
        {"lat.fpu", u(c.lat.fpu)},
        {"lat.fcvt", u(c.lat.fcvt)},
        {"lat.fdiv", u(c.lat.fdiv)},
        {"lat.fsqrt", u(c.lat.fsqrt)},
        {"lat.sfu", u(c.lat.sfu)},
        {"lineSize", u(c.lineSize)},
        {"icacheSize", u(c.icacheSize)},
        {"icacheWays", u(c.icacheWays)},
        {"dcacheSize", u(c.dcacheSize)},
        {"dcacheWays", u(c.dcacheWays)},
        {"dcacheBanks", u(c.dcacheBanks)},
        {"dcachePorts", u(c.dcachePorts)},
        {"mshrEntries", u(c.mshrEntries)},
        {"smemSize", u(c.smemSize)},
        {"smemLatency", u(c.smemLatency)},
        {"l2Enabled", b(c.l2Enabled)},
        {"l2Size", u(c.l2Size)},
        {"l2Banks", u(c.l2Banks)},
        {"l2Ways", u(c.l2Ways)},
        {"l3Enabled", b(c.l3Enabled)},
        {"l3Size", u(c.l3Size)},
        {"l3Banks", u(c.l3Banks)},
        {"l3Ways", u(c.l3Ways)},
        {"mem.latency", u(c.mem.latency)},
        {"mem.busWidth", u(c.mem.busWidth)},
        {"mem.numChannels", u(c.mem.numChannels)},
        {"mem.queueDepth", u(c.mem.queueDepth)},
        {"texEnabled", b(c.texEnabled)},
        {"parallelTick", b(c.parallelTick)},
        {"tickThreads", u(c.tickThreads)},
        {"sampleInterval", u(c.sampleInterval)},
    };
}

/** The [workload] block: family first (kernel/texFilter imply a family,
 *  so order matters), then the family's own fields. */
std::vector<std::pair<std::string, std::string>>
workloadAssignments(const WorkloadSpec& w)
{
    std::vector<std::pair<std::string, std::string>> out;
    if (w.kind == WorkloadSpec::Kind::Rodinia)
        out = {{"workload", "rodinia"},
               {"kernel", w.kernel},
               {"scale", std::to_string(w.scale)}};
    else
        out = {{"workload", "texture"},
               {"texFilter", texFilterName(w.texFilter)},
               {"texHw", w.texHw ? "true" : "false"},
               {"texSize", std::to_string(w.texSize)}};
    if (!w.program.empty())
        out.emplace_back("program", w.program);
    if (!w.check.empty())
        out.emplace_back("check", w.check);
    return out;
}

} // namespace

SpecParseError::SpecParseError(std::string file, size_t line,
                               size_t column, const std::string& message)
    : std::runtime_error(
          line == 0 ? file + ": " + message
                    : file + ":" + std::to_string(line) + ":" +
                          std::to_string(column) + ": " + message),
      file_(std::move(file)), line_(line), column_(column)
{
}

SweepSpec
parseSpecText(const std::string& text, const std::string& filename)
{
    size_t i = 0;
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i])))
        ++i;
    Node root = (i < text.size() && text[i] == '{')
                    ? JsonParser(text, filename).parse()
                    : TomlParser(text, filename).parse();
    return buildSpec(filename, root);
}

SweepSpec
parseSpecFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot read sweep spec '", path, "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    SweepSpec spec = parseSpecText(buf.str(), path);
    if (spec.name.empty()) {
        // Default the campaign name to the file stem, like presets are
        // named after themselves.
        size_t slash = path.find_last_of("/\\");
        std::string stem =
            slash == std::string::npos ? path : path.substr(slash + 1);
        size_t dot = stem.find_last_of('.');
        if (dot != std::string::npos && dot > 0)
            stem = stem.substr(0, dot);
        spec.name = stem;
    }
    return spec;
}

void
writeSpecToml(const SweepSpec& spec, std::ostream& os)
{
    os << "# vortex-sim sweep specification (docs/SWEEP_SPECS.md).\n";
    os << "# Self-contained: [base] lists every machine field, so this "
          "file pins\n";
    os << "# the swept machine even if simulator defaults change.\n";
    os << "spec = " << quoted(kSchemaId) << "\n";
    os << "name = " << quoted(spec.name) << "\n";
    if (!spec.description.empty())
        os << "description = " << quoted(spec.description) << "\n";

    os << "\n[base]\n";
    for (const auto& [k, v] : configAssignments(spec.base))
        os << k << " = " << tomlValue(v) << "\n";

    os << "\n[workload]\n";
    for (const auto& [k, v] : workloadAssignments(spec.baseWorkload))
        os << k << " = " << tomlValue(v) << "\n";

    // Fault injection, only when set: clean specs serialize exactly as
    // they did before the faults layer existed (docs/ROBUSTNESS.md).
    if (spec.baseWorkload.faults.any()) {
        const faults::FaultSpec& f = spec.baseWorkload.faults;
        os << "\n[faults]\n";
        os << "seed = " << f.seed << "\n";
        os << "count = " << f.count << "\n";
        if (f.window)
            os << "window = " << f.window << "\n";
        if (f.watchdog)
            os << "watchdog = " << f.watchdog << "\n";
    }

    // Execution metadata, only when set: a shard-annotated spec is the
    // unit of work shipped to one fleet host (docs/FABRIC.md). Absent
    // on every preset dump, so shipped spec files are unchanged.
    if (spec.shardCount > 0) {
        os << "\n[fabric]\n";
        os << "shard = " << quoted(std::to_string(spec.shardIndex) + "/" +
                                   std::to_string(spec.shardCount))
           << "\n";
    }

    for (const Axis& axis : spec.axes) {
        os << "\n[[axes]]\n";
        os << "name = " << quoted(axis.name) << "\n";
        for (const AxisPoint& p : axis.points) {
            os << "\n[[axes.points]]\n";
            os << "label = " << quoted(p.label) << "\n";
            for (const auto& [field, value] : p.sets)
                os << "set." << field << " = " << tomlValue(value) << "\n";
        }
    }
}

std::string
specToToml(const SweepSpec& spec)
{
    std::ostringstream os;
    writeSpecToml(spec, os);
    return os.str();
}

} // namespace vortex::sweep
