/**
 * @file
 * The built-in preset registry: spec builders and report renderers for
 * every paper figure/table and the ablation studies.
 */

#include "sweep/presets.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <stdexcept>

#include "area/area.h"
#include "common/log.h"
#include "common/outcome.h"

namespace vortex::sweep {

namespace {

/** Format a "model / paper" comparison cell. */
std::string
mvp(double model, double paper, int prec = 0)
{
    return fmtF(model, prec) + " / " + fmtF(paper, prec);
}

//
// Figure 14 — core design-space geometries.
//

ReportTable
fig14Report(const CampaignResult& r)
{
    ReportTable t = pivotIpc(r);
    t.title = "Figure 14: IPC per core configuration";
    double base = r.at({"sgemm", "4W-4T"}).result.ipc;
    double w2t8 = r.at({"sgemm", "2W-8T"}).result.ipc;
    double w8t2 = r.at({"sgemm", "8W-2T"}).result.ipc;
    t.notes.push_back(
        "shape check (paper: 2W-8T ~ +20% on sgemm, 8W-2T ~ -36%):");
    char buf[96];
    std::snprintf(buf, sizeof(buf), "  sgemm 2W-8T / 4W-4T = %+.1f%%",
                  100.0 * (w2t8 / base - 1.0));
    t.notes.push_back(buf);
    std::snprintf(buf, sizeof(buf), "  sgemm 8W-2T / 4W-4T = %+.1f%%",
                  100.0 * (w8t2 / base - 1.0));
    t.notes.push_back(buf);
    return t;
}

//
// Figure 18 — core-count scaling.
//

ReportTable
fig18Report(const CampaignResult& r)
{
    const std::vector<std::string> counts = {"1", "2", "4", "8", "16"};
    ReportTable t;
    t.title = "Figure 18: IPC vs core count";
    t.columns = {"kernel", "group"};
    for (const std::string& c : counts)
        t.columns.push_back(c + "c");
    t.columns.push_back("speedup(16c/1c)");
    for (const std::string& kernel : fig18Kernels()) {
        std::vector<std::string> row = {
            kernel,
            runtime::isComputeBound(kernel) ? "compute" : "memory"};
        double first = 0.0, last = 0.0;
        for (const std::string& c : counts) {
            double ipc = r.at({kernel, c}).result.ipc;
            if (c == counts.front())
                first = ipc;
            last = ipc;
            row.push_back(fmtF(ipc, 3));
        }
        row.push_back(fmtF(last / first, 2) + "x");
        t.addRow(std::move(row));
    }
    return t;
}

//
// Figure 19 — D$ virtual multi-porting.
//

ReportTable
fig19Report(const CampaignResult& r)
{
    const std::vector<std::string> ports = {"1", "2", "4"};
    ReportTable t;
    t.title = "Figure 19: D$ bank utilization / IPC vs virtual ports "
              "(1 core, 4 banks)";
    t.columns = {"kernel"};
    for (const std::string& p : ports)
        t.columns.push_back("util@" + p + "p");
    for (const std::string& p : ports)
        t.columns.push_back("IPC@" + p + "p");
    for (const std::string& kernel : fig14Kernels()) {
        std::vector<std::string> row = {kernel};
        for (const std::string& p : ports)
            row.push_back(
                fmtPct(r.at({kernel, p}).dcacheBankUtilization(), 1));
        for (const std::string& p : ports)
            row.push_back(fmtF(r.at({kernel, p}).result.ipc, 3));
        t.addRow(std::move(row));
    }
    return t;
}

//
// Figure 20 — HW vs SW texture filtering.
//

ReportTable
fig20Report(const CampaignResult& r)
{
    ReportTable t;
    t.title = "Figure 20: HW vs SW texture filtering "
              "(kilocycles; lower is better)";
    if (!r.records.empty()) {
        const std::string sz =
            std::to_string(r.records.front().spec.workload.texSize);
        t.notes.push_back("(render target " + sz + "x" + sz + " RGBA8)");
    }
    t.columns = {"cores", "filter", "SW", "HW", "SW/HW"};
    for (const char* c : {"1", "2", "4", "8"}) {
        for (const char* f : {"point", "bilinear", "trilinear"}) {
            double sw = static_cast<double>(
                            r.at({c, f, "sw"}).result.cycles) /
                        1000.0;
            double hw = static_cast<double>(
                            r.at({c, f, "hw"}).result.cycles) /
                        1000.0;
            t.addRow({c, f, fmtF(sw, 1), fmtF(hw, 1),
                      fmtF(sw / hw, 2) + "x"});
        }
    }
    return t;
}

//
// Figure 21 — board-memory latency/bandwidth scaling.
//

ReportTable
fig21Report(const CampaignResult& r)
{
    ReportTable t;
    t.title = "Figure 21: memory latency/bandwidth scaling";
    if (!r.records.empty()) {
        const core::ArchConfig& c = r.records.front().spec.config;
        t.notes.push_back(
            "(machine: " + std::to_string(c.numCores) + " cores x " +
            std::to_string(c.numWarps) + "W x " +
            std::to_string(c.numThreads) + "T, L2 " +
            (c.l2Enabled ? "enabled" : "disabled") + ")");
    }
    t.columns = {"kernel", "latency"};
    for (const char* bw : {"x1", "x2", "x4"})
        t.columns.push_back(std::string("bw ") + bw);
    for (const char* kernel : {"saxpy", "sgemm"}) {
        for (const char* lat : {"25", "50", "100", "200", "400"}) {
            std::vector<std::string> row = {
                std::string(kernel) + (runtime::isComputeBound(kernel)
                                           ? " (compute)"
                                           : " (memory)"),
                lat};
            for (const char* bw : {"x1", "x2", "x4"})
                row.push_back(fmtF(r.at({kernel, lat, bw}).result.ipc, 3));
            t.addRow(std::move(row));
        }
    }
    return t;
}

//
// Area/synthesis tables (no simulation; the calibrated model of
// area/area.h against the paper's published rows).
//

ReportTable
table3Report()
{
    struct PaperRow
    {
        const char* name;
        uint32_t w, t;
        double lut, regs, bram, fmax;
    };
    const PaperRow paper[] = {
        {"4W-4T", 4, 4, 21502, 32661, 131, 233},
        {"2W-8T", 2, 8, 36361, 54438, 238, 224},
        {"8W-2T", 8, 2, 16981, 24343, 77, 225},
        {"4W-8T", 4, 8, 37857, 57614, 247, 224},
        {"8W-4T", 8, 4, 24485, 34854, 139, 228},
    };
    ReportTable t;
    t.title = "Table 3: core synthesis (model vs paper)";
    t.columns = {"config", "LUT (mdl/paper)", "Regs (mdl/paper)",
                 "BRAM (mdl/pap)", "fmax (mdl/pap)"};
    for (const PaperRow& row : paper) {
        area::CoreArea a = area::coreArea(row.w, row.t);
        t.addRow({row.name, mvp(a.luts, row.lut), mvp(a.regs, row.regs),
                  mvp(a.brams, row.bram), mvp(a.fmaxMhz, row.fmax)});
    }
    t.notes.push_back("(model is least-squares calibrated on these rows; "
                      "max residual ~2%)");
    return t;
}

ReportTable
table4Report()
{
    struct PaperRow
    {
        uint32_t cores;
        area::Fpga fpga;
        double alm, regsK, bram, dsp, fmax;
    };
    const PaperRow paper[] = {
        {1, area::Fpga::Arria10, 13, 78, 10, 2, 234},
        {2, area::Fpga::Arria10, 19, 111, 15, 5, 225},
        {4, area::Fpga::Arria10, 30, 176, 25, 9, 223},
        {8, area::Fpga::Arria10, 53, 305, 45, 19, 210},
        {16, area::Fpga::Arria10, 85, 525, 83, 38, 203},
        {32, area::Fpga::Stratix10, 70, 1057, 23, 20, 200},
    };
    ReportTable t;
    t.title = "Table 4: multi-core synthesis (model vs paper)";
    t.columns = {"cores",    "FPGA",      "ALM% m/p", "Regs(K) m/p",
                 "BRAM% m/p", "DSP% m/p", "fmax m/p"};
    for (const PaperRow& row : paper) {
        area::DeviceArea a = area::deviceArea(row.cores, row.fpga);
        t.addRow({std::to_string(row.cores),
                  row.fpga == area::Fpga::Arria10 ? "A10" : "S10",
                  mvp(a.almPercent, row.alm), mvp(a.regsK, row.regsK),
                  mvp(a.bramPercent, row.bram), mvp(a.dspPercent, row.dsp),
                  mvp(a.fmaxMhz, row.fmax)});
    }
    t.notes.push_back("(A10 rows calibrated; the S10 row is rescaled by "
                      "device capacity)");
    return t;
}

ReportTable
table5Report()
{
    struct PaperRow
    {
        uint32_t ports;
        double lut, regs, bram, fmax;
    };
    const PaperRow paper[] = {
        {1, 10747, 13238, 72, 253},
        {2, 11722, 13650, 72, 250},
        {4, 13516, 14928, 72, 244},
    };
    ReportTable t;
    t.title = "Table 5: 4-bank D$ synthesis (model vs paper)";
    t.columns = {"ports", "LUT (mdl/paper)", "Regs (mdl/paper)",
                 "BRAM (m/p)", "fmax (m/p)"};
    double lut1 = 0.0;
    for (const PaperRow& row : paper) {
        area::CacheArea a = area::cacheArea(4, row.ports, 16384);
        if (row.ports == 1)
            lut1 = a.luts;
        t.addRow({std::to_string(row.ports), mvp(a.luts, row.lut),
                  mvp(a.regs, row.regs), mvp(a.brams, row.bram),
                  mvp(a.fmaxMhz, row.fmax)});
    }
    area::CacheArea a2 = area::cacheArea(4, 2, 16384);
    area::CacheArea a4 = area::cacheArea(4, 4, 16384);
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "LUT delta: 2-port %+.1f%% (paper +9%%), 4-port %+.1f%% "
                  "(paper +25%%)",
                  100.0 * (a2.luts / lut1 - 1.0),
                  100.0 * (a4.luts / lut1 - 1.0));
    t.notes.push_back(buf);
    return t;
}

ReportTable
fig15Report()
{
    ReportTable t;
    t.title = "Figure 15: area distribution (8-core build)";
    t.columns = {"component", "share", ""};
    double total = 0.0;
    for (const area::AreaSlice& s : area::areaDistribution()) {
        t.addRow({s.component, fmtPct(s.fraction, 1),
                  std::string(
                      static_cast<size_t>(s.fraction * 100.0 + 0.5), '#')});
        total += s.fraction;
    }
    t.addRow({"(total)", fmtPct(total, 1), ""});
    return t;
}

/** Shared shape of the ablation presets: kernels x one swept field. */
SweepSpec
ablationSpec(const std::string& name, const std::string& description,
             const std::vector<std::string>& kernels, Axis axis)
{
    SweepSpec s;
    s.name = name;
    s.description = description;
    s.base = baselineConfig(1);
    s.axes = {Axis::sweep("kernel", kernels), std::move(axis)};
    return s;
}

} // namespace

core::ArchConfig
baselineConfig(uint32_t cores, core::ArchConfig base)
{
    base.numCores = cores;
    if (cores >= 4) {
        base.l2Enabled = true; // clusters attach an optional L2 (§4.1)
        base.coresPerCluster = 4;
    }
    if (cores > 16)
        base.mem.numChannels = 8; // Stratix 10 board (8 banks, §6.5)
    return base;
}

Axis
geometryAxis()
{
    Axis a;
    a.name = "geometry";
    for (const auto& [w, t] : std::initializer_list<std::pair<int, int>>{
             {4, 4}, {2, 8}, {8, 2}, {4, 8}, {8, 4}}) {
        std::string label =
            std::to_string(w) + "W-" + std::to_string(t) + "T";
        a.points.push_back(AxisPoint{
            label,
            {{"numWarps", std::to_string(w)},
             {"numThreads", std::to_string(t)}}});
    }
    return a;
}

const std::vector<std::string>&
fig14Kernels()
{
    static const std::vector<std::string> k = {"sgemm", "vecadd", "sfilter",
                                               "saxpy", "nearn"};
    return k;
}

const std::vector<std::string>&
fig18Kernels()
{
    static const std::vector<std::string> k = {
        "sgemm", "vecadd", "sfilter", "saxpy", "nearn", "gaussian", "bfs"};
    return k;
}

SweepSpec
fig14Spec()
{
    SweepSpec s;
    s.name = "fig14";
    s.description = "IPC of the five core geometries on five kernels";
    s.base = baselineConfig(1);
    s.axes = {Axis::sweep("kernel", fig14Kernels()), geometryAxis()};
    return s;
}

SweepSpec
fig18Spec()
{
    SweepSpec s;
    s.name = "fig18";
    s.description = "IPC scaling with core count (1-16), seven kernels";
    s.axes.push_back(Axis::sweep("kernel", fig18Kernels()));
    Axis cores;
    cores.name = "cores";
    for (uint32_t c : {1u, 2u, 4u, 8u, 16u}) {
        // Scale the problem with the machine so every core has work.
        cores.points.push_back(AxisPoint{
            std::to_string(c),
            {{"cores", std::to_string(c)},
             {"scale", c >= 4 ? "2" : "1"}}});
    }
    s.axes.push_back(std::move(cores));
    return s;
}

SweepSpec
fig19Spec()
{
    SweepSpec s;
    s.name = "fig19";
    s.description = "D$ bank utilization and IPC at 1/2/4 virtual ports";
    s.base = baselineConfig(1);
    s.axes = {Axis::sweep("kernel", fig14Kernels()),
              Axis::sweepU32("dcachePorts", {1, 2, 4})};
    return s;
}

SweepSpec
fig20Spec(uint32_t size)
{
    SweepSpec s;
    s.name = "fig20";
    s.description = "HW vs SW texture filtering at 1/2/4/8 cores";
    s.baseWorkload.kind = WorkloadSpec::Kind::Texture;
    s.baseWorkload.texSize = size;
    s.axes = {Axis::sweepU32("cores", {1, 2, 4, 8}),
              Axis::sweep("texFilter", {"point", "bilinear", "trilinear"}),
              Axis{"path",
                   {AxisPoint{"sw", {{"texHw", "0"}}},
                    AxisPoint{"hw", {{"texHw", "1"}}}}}};
    return s;
}

SweepSpec
perfSmokeSpec()
{
    SweepSpec s;
    s.name = "perf_smoke";
    s.description =
        "CI perf-trajectory smoke: 3 kernels x {1, 2} cores, test-sized";
    s.base = baselineConfig(1);
    s.axes = {Axis::sweep("kernel", {"vecadd", "saxpy", "sgemm"}),
              Axis::sweep("cores", {"1", "2"})};
    return s;
}

SweepSpec
asmSmokeSpec()
{
    SweepSpec s;
    s.name = "asm_smoke";
    s.description =
        "assembly-toolchain smoke: the seven .s kernel twins through "
        "the object pipeline at {1, 2} cores";
    s.base = baselineConfig(1);
    Axis k;
    k.name = "kernel";
    for (const char* name : {"vecadd", "saxpy", "sgemm", "sfilter",
                             "nearn", "gaussian", "bfs"})
        k.points.push_back(AxisPoint{
            name,
            {{"kernel", name},
             {"program", std::string("examples/kernels/") + name + ".s"}}});
    s.axes = {std::move(k), Axis::sweep("cores", {"1", "2"})};
    return s;
}

SweepSpec
workloadZooSpec()
{
    SweepSpec s;
    s.name = "workload_zoo";
    s.description =
        "harness-free .s workload zoo: every self-checking guest "
        "program at {1, 2} cores";
    s.base = baselineConfig(1);
    Axis w;
    w.name = "kernel";
    for (const char* name : {"bitonic", "reduce_tree", "histogram",
                             "stress_barrier", "stress_diverge",
                             "stress_bank"})
        w.points.push_back(AxisPoint{
            name,
            {{"kernel", name},
             {"program", std::string("examples/kernels/") + name + ".s"},
             {"check", "selfcheck"}}});
    s.axes = {std::move(w), Axis::sweep("cores", {"1", "2"})};
    return s;
}

SweepSpec
faultSmokeSpec()
{
    SweepSpec s;
    s.name = "fault_smoke";
    s.description =
        "fault-injection smoke: seeded bit flips into self-checking "
        "guests (plus the non-terminating hang guest), eight seeds, "
        "classified as masked / sdc / detected / hang";
    s.base = baselineConfig(1);
    // Four flips per run, fired inside the first 4000 cycles so every
    // event lands while the guest is still running (a single flip in
    // the default 64K window almost always misses the run or a dead
    // register — all-masked smoke tells CI nothing). The watchdog
    // turns the wedged hang guest into a `timeout` row in well under a
    // second instead of the runtime's 400M-cycle budget.
    s.baseWorkload.faults.count = 4;
    s.baseWorkload.faults.window = 4000;
    s.baseWorkload.faults.watchdog = 100000;
    Axis w;
    w.name = "kernel";
    for (const char* name : {"bitonic", "reduce_tree", "hang"})
        w.points.push_back(AxisPoint{
            name,
            {{"kernel", name},
             {"program", std::string("examples/kernels/") + name + ".s"},
             {"check", "selfcheck"}}});
    Axis seeds;
    seeds.name = "seed";
    for (uint32_t seed = 1; seed <= 8; ++seed)
        seeds.points.push_back(
            AxisPoint{"s" + std::to_string(seed),
                      {{"faults.seed", std::to_string(seed)}}});
    s.axes = {std::move(w), std::move(seeds)};
    return s;
}

ReportTable
faultClassificationReport(const CampaignResult& r)
{
    // Classification from the (status, ok) pair (docs/ROBUSTNESS.md):
    // masked   — the run completed and still verified;
    // sdc      — completed but verification mismatched (silent data
    //            corruption);
    // detected — the machine or the guest caught it (guest trap or
    //            self-check FAIL);
    // hang     — the watchdog expired (timeout).
    ReportTable t;
    t.title = r.name + ": fault classification";
    t.columns = {"kernel", "masked", "sdc",  "detected",
                 "hang",   "other",  "runs"};
    std::vector<std::string> rows;
    for (const RunRecord& rec : r.records) {
        const std::string& row = rec.spec.coords[0].second;
        if (std::find(rows.begin(), rows.end(), row) == rows.end())
            rows.push_back(row);
    }
    for (const std::string& row : rows) {
        uint64_t masked = 0, sdc = 0, detected = 0, hang = 0, other = 0,
                 total = 0;
        for (const RunRecord& rec : r.records) {
            if (rec.spec.coords[0].second != row)
                continue;
            ++total;
            const runtime::RunResult& res = rec.result;
            if (res.ok)
                ++masked;
            else if (res.status == RunStatus::Ok)
                ++sdc;
            else if (res.status == RunStatus::GuestTrap ||
                     res.status == RunStatus::SelfcheckFail)
                ++detected;
            else if (res.status == RunStatus::Timeout)
                ++hang;
            else
                ++other;
        }
        t.addRow({row, std::to_string(masked), std::to_string(sdc),
                  std::to_string(detected), std::to_string(hang),
                  std::to_string(other), std::to_string(total)});
    }
    return t;
}

SweepSpec
fig21Spec(bool paperSize)
{
    const uint32_t geo = paperSize ? 16 : 8;
    SweepSpec s;
    s.name = "fig21";
    s.description = "IPC vs board-memory latency and bandwidth";
    s.base = baselineConfig(geo);
    s.base.numWarps = geo;
    s.base.numThreads = geo;
    s.baseWorkload.scale = 2;
    Axis bw;
    bw.name = "bandwidth";
    for (uint32_t m : {1u, 2u, 4u})
        bw.points.push_back(
            AxisPoint{"x" + std::to_string(m),
                      {{"mem.numChannels", std::to_string(2 * m)}}});
    s.axes = {Axis::sweep("kernel", {"saxpy", "sgemm"}),
              Axis::sweepU32("mem.latency", {25, 50, 100, 200, 400}),
              std::move(bw)};
    return s;
}

ReportTable
pivotIpc(const CampaignResult& r)
{
    if (r.axisNames.size() != 2)
        fatal("pivotIpc: campaign '", r.name, "' has ",
              r.axisNames.size(), " axes, need exactly 2");
    ReportTable t;
    t.title = r.name + ": IPC";
    t.columns = {r.axisNames[0] + " \\ " + r.axisNames[1]};
    std::vector<std::string> rowLabels;
    for (const RunRecord& rec : r.records) {
        const std::string& row = rec.spec.coords[0].second;
        const std::string& col = rec.spec.coords[1].second;
        if (rowLabels.empty() || rowLabels.back() != row)
            if (std::find(rowLabels.begin(), rowLabels.end(), row) ==
                rowLabels.end())
                rowLabels.push_back(row);
        if (rowLabels.size() == 1)
            t.columns.push_back(col);
    }
    for (const std::string& row : rowLabels) {
        std::vector<std::string> cells = {row};
        for (size_t c = 1; c < t.columns.size(); ++c)
            cells.push_back(
                fmtF(r.at({row, t.columns[c]}).result.ipc, 3));
        t.addRow(std::move(cells));
    }
    return t;
}

namespace {

/** Fatal when a preset that takes no parameters receives one. */
void
requireNoArgs(const std::string& preset, const PresetArgs& args)
{
    if (!args.empty())
        fatal("preset '", preset, "' takes no --arg '", args[0].first,
              "'");
}


} // namespace

const std::vector<Preset>&
presets()
{
    static const std::vector<Preset> all = [] {
        std::vector<Preset> p;

        // Wrap an argument-less builder with the no-args check.
        auto sweepPreset =
            [&](std::function<SweepSpec()> build,
                std::function<ReportTable(const CampaignResult&)> report) {
                SweepSpec probe = build();
                std::string name = probe.name;
                p.push_back(Preset{
                    name, probe.description,
                    [name, build = std::move(build)](
                        const PresetArgs& args) {
                        requireNoArgs(name, args);
                        return build();
                    },
                    nullptr, std::move(report)});
            };
        auto paramPreset =
            [&](std::function<SweepSpec(const PresetArgs&)> build,
                std::function<ReportTable(const CampaignResult&)> report) {
                SweepSpec probe = build({});
                p.push_back(Preset{probe.name, probe.description,
                                   std::move(build), nullptr,
                                   std::move(report)});
            };
        auto tablePreset = [&](const std::string& name,
                               const std::string& description,
                               std::function<ReportTable()> build) {
            p.push_back(Preset{name, description, nullptr,
                               std::move(build), nullptr});
        };

        sweepPreset([] { return fig14Spec(); }, fig14Report);
        tablePreset("fig15",
                    "per-component area distribution of the 8-core build",
                    fig15Report);
        sweepPreset([] { return fig18Spec(); }, fig18Report);
        sweepPreset([] { return fig19Spec(); }, fig19Report);
        paramPreset(
            [](const PresetArgs& args) {
                uint32_t size = 64;
                for (const auto& [k, v] : args) {
                    if (k == "size")
                        size = parseU32Value("fig20 --arg size", v);
                    else
                        fatal("preset 'fig20' takes no --arg '", k, "'");
                }
                return fig20Spec(size);
            },
            fig20Report);
        paramPreset(
            [](const PresetArgs& args) {
                bool paper = false;
                for (const auto& [k, v] : args) {
                    if (k == "paper")
                        paper = parseBoolValue("fig21 --arg paper", v);
                    else
                        fatal("preset 'fig21' takes no --arg '", k, "'");
                }
                return fig21Spec(paper);
            },
            fig21Report);
        tablePreset("table3", "core synthesis, five geometries (area model)",
                    table3Report);
        tablePreset("table4", "whole-device synthesis, 1-32 cores (area "
                              "model)",
                    table4Report);
        tablePreset("table5", "virtually multi-ported D$ synthesis (area "
                              "model)",
                    table5Report);

        sweepPreset(
            [] {
                return ablationSpec(
                    "ablation_mshr",
                    "non-blocking depth: MSHR entries per bank",
                    {"saxpy", "sgemm"},
                    Axis::sweepU32("mshrEntries", {1, 2, 4, 8, 16}));
            },
            pivotIpc);
        sweepPreset(
            [] {
                return ablationSpec("ablation_banks",
                                    "D$ bank count at 1 virtual port",
                                    {"saxpy", "sgemm"},
                                    Axis::sweepU32("dcacheBanks",
                                                   {1, 2, 4, 8}));
            },
            pivotIpc);
        sweepPreset(
            [] {
                return ablationSpec(
                    "ablation_linesize", "cache/memory line size",
                    {"saxpy", "vecadd"},
                    Axis::sweepU32("lineSize", {16, 32, 64, 128}));
            },
            pivotIpc);
        sweepPreset(
            [] {
                return ablationSpec("ablation_ibuffer",
                                    "instruction-buffer depth",
                                    {"sgemm", "saxpy"},
                                    Axis::sweepU32("ibufferDepth",
                                                   {1, 2, 4, 8}));
            },
            pivotIpc);
        sweepPreset(
            [] {
                return ablationSpec(
                    "ablation_lsu",
                    "LSU depth (in-flight warp memory ops)",
                    {"saxpy", "vecadd"},
                    Axis::sweepU32("lsuDepth", {1, 2, 4, 8}));
            },
            pivotIpc);
        sweepPreset(
            [] {
                SweepSpec s = ablationSpec(
                    "ablation_sched",
                    "wavefront scheduling policy at 8 wavefronts",
                    {"sgemm", "saxpy", "nearn", "bfs"},
                    Axis::sweep("schedPolicy",
                                {"hierarchical", "roundrobin"}));
                s.base.numWarps = 8; // policy differences show with
                                     // more wavefronts
                return s;
            },
            pivotIpc);
        sweepPreset(
            [] {
                return ablationSpec(
                    "ablation_fsqrt",
                    "fsqrt latency sensitivity (nearn, §6.2.3)",
                    {"nearn", "saxpy"},
                    Axis::sweepU32("lat.fsqrt", {4, 12, 24, 48}));
            },
            pivotIpc);

        sweepPreset([] { return perfSmokeSpec(); }, pivotIpc);
        sweepPreset([] { return asmSmokeSpec(); }, pivotIpc);
        sweepPreset([] { return workloadZooSpec(); }, pivotIpc);
        sweepPreset([] { return faultSmokeSpec(); },
                    faultClassificationReport);

        return p;
    }();
    return all;
}

const Preset*
findPreset(const std::string& name)
{
    for (const Preset& p : presets())
        if (p.name == name)
            return &p;
    // Accept the long bench-harness names as aliases: "fig18_scaling" is
    // the fig18 preset, "table3_core_area" is table3, and so on. Only
    // figN_*/tableN_* are shortened — ablation_* presets keep their
    // underscore names.
    if (name.rfind("fig", 0) == 0 || name.rfind("table", 0) == 0) {
        size_t us = name.find('_');
        if (us != std::string::npos)
            return findPreset(name.substr(0, us));
    }
    return nullptr;
}

int
runSpecMain(const SweepSpec& spec,
            const std::function<ReportTable(const CampaignResult&)>& report)
{
    try {
        CampaignOptions opts;
        opts.jobs = 0; // host hardware threads
        if (const char* env = std::getenv("VORTEX_SWEEP_JOBS"))
            opts.jobs = parseU32Value("VORTEX_SWEEP_JOBS", env);
        CampaignResult result = Campaign(opts).run(spec);
        if (report)
            report(result).print(std::cout);
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}

int
runPresetMain(const std::string& name, const PresetArgs& args)
{
    const Preset* p = findPreset(name);
    if (!p) {
        std::fprintf(stderr, "unknown preset '%s'\n", name.c_str());
        return 2;
    }
    try {
        if (p->table) {
            requireNoArgs(name, args);
            p->table().print(std::cout);
            return 0;
        }
        return runSpecMain(p->sweep(args), p->report);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}

} // namespace vortex::sweep
