/**
 * @file
 * Campaign execution: job pool, device-stat flattening, the result
 * cache, and CSV/JSON emission.
 */

#include "sweep/campaign.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>

#include "common/log.h"
#include "core/processor.h"
#include "mem/cache.h"
#include "mem/memsim.h"
#include "mem/sharedmem.h"
#include "runtime/device.h"
#include "sweep/report.h"
#include "tex/texunit.h"

namespace vortex::sweep {

namespace {

constexpr const char* kCacheMagic = "vortex-sweep-cache v1";

/** Flatten @p group into @p flat under "<prefix>.<key>" names. */
void
flatten(StatGroup& flat, const std::string& prefix, const StatGroup& group)
{
    for (const auto& [k, v] : group.all())
        flat.counter(prefix + "." + k) += v;
}

/** Mirror of Processor::ipc() so cache-restored records reproduce the
 *  exact double a fresh run reports. */
double
ipcOf(uint64_t threadInstrs, uint64_t cycles)
{
    return cycles == 0 ? 0.0
                       : static_cast<double>(threadInstrs) /
                             static_cast<double>(cycles);
}

/** Shortest round-trippable formatting for the JSON doubles. */
std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

double
RunRecord::dcacheBankUtilization() const
{
    uint64_t accepted = stats.get("dcache.sel_accepted");
    uint64_t conflicts = stats.get("dcache.sel_conflicts");
    uint64_t total = accepted + conflicts;
    return total == 0 ? 1.0 : static_cast<double>(accepted) / total;
}

const RunRecord&
CampaignResult::at(const std::vector<std::string>& labels) const
{
    for (const RunRecord& r : records) {
        if (r.spec.coords.size() != labels.size())
            continue;
        bool match = true;
        for (size_t i = 0; i < labels.size(); ++i)
            if (r.spec.coords[i].second != labels[i]) {
                match = false;
                break;
            }
        if (match)
            return r;
    }
    std::string want;
    for (const std::string& l : labels)
        want += (want.empty() ? "" : "/") + l;
    fatal("campaign '", name, "': no run at coordinates '", want, "'");
}

void
CampaignResult::writeCsv(std::ostream& os) const
{
    // Stat columns: the union of counter keys over all records, in
    // first-seen (insertion) order — stable because records are in
    // matrix order regardless of job count or cache hits.
    StatGroup keyOrder;
    for (const RunRecord& r : records)
        for (const auto& [k, v] : r.stats.all()) {
            (void)v;
            keyOrder.counter(k);
        }

    for (const std::string& a : axisNames)
        os << csvCell(a) << ",";
    os << "id,hash,ok,cycles,thread_instrs,ipc";
    for (const auto& [k, v] : keyOrder.all()) {
        (void)v;
        os << "," << csvCell(k);
    }
    os << "\n";

    for (const RunRecord& r : records) {
        for (const auto& [axis, label] : r.spec.coords) {
            (void)axis;
            os << csvCell(label) << ",";
        }
        os << csvCell(r.spec.id()) << "," << r.spec.contentHash() << ","
           << (r.result.ok ? 1 : 0) << "," << r.result.cycles << ","
           << r.result.threadInstrs << "," << fmtF(r.result.ipc, 6);
        for (const auto& [k, v] : keyOrder.all()) {
            (void)v;
            os << "," << r.stats.get(k);
        }
        os << "\n";
    }
}

void
CampaignResult::writeJson(std::ostream& os) const
{
    os << "{\n  \"campaign\": \"" << jsonEscape(name) << "\",\n";
    os << "  \"axes\": [";
    for (size_t i = 0; i < axisNames.size(); ++i)
        os << (i ? ", " : "") << "\"" << jsonEscape(axisNames[i]) << "\"";
    os << "],\n  \"runs\": [\n";
    for (size_t i = 0; i < records.size(); ++i) {
        const RunRecord& r = records[i];
        os << "    {\"id\": \"" << jsonEscape(r.spec.id())
           << "\", \"hash\": \"" << r.spec.contentHash()
           << "\", \"coords\": {";
        for (size_t c = 0; c < r.spec.coords.size(); ++c)
            os << (c ? ", " : "") << "\""
               << jsonEscape(r.spec.coords[c].first) << "\": \""
               << jsonEscape(r.spec.coords[c].second) << "\"";
        // No execution metadata (fromCache, hostSeconds) here: JSON, like
        // CSV, is byte-identical across job counts and cache states.
        os << "}, \"workload\": \"" << jsonEscape(r.spec.workload.describe())
           << "\", \"ok\": " << (r.result.ok ? "true" : "false")
           << ", \"cycles\": " << r.result.cycles
           << ", \"thread_instrs\": " << r.result.threadInstrs
           << ", \"ipc\": " << fmtDouble(r.result.ipc) << ", \"stats\": {";
        bool first = true;
        for (const auto& [k, v] : r.stats.all()) {
            os << (first ? "" : ", ") << "\"" << jsonEscape(k)
               << "\": " << v;
            first = false;
        }
        os << "}}" << (i + 1 < records.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

Campaign::Campaign(CampaignOptions opts) : opts_(std::move(opts))
{
    if (opts_.jobs == 0) {
        unsigned hw = std::thread::hardware_concurrency();
        opts_.jobs = hw == 0 ? 1 : hw;
    }
}

RunRecord
Campaign::executeOne(const RunSpec& spec) const
{
    RunRecord rec;
    rec.spec = spec;

    auto t0 = std::chrono::steady_clock::now();
    runtime::Device dev(spec.config);
    rec.result = spec.workload.run(dev);
    auto t1 = std::chrono::steady_clock::now();
    rec.hostSeconds = std::chrono::duration<double>(t1 - t0).count();

    // Flatten the device's component counters in a fixed hierarchy order
    // (core-private units first, then the shared levels outward).
    core::Processor& proc = dev.processor();
    StatGroup cores, icache, dcache, smem, tex;
    for (size_t i = 0; i < proc.numCores(); ++i) {
        core::Core& c = proc.core(i);
        cores.add(c.stats());
        icache.add(c.icache().stats());
        dcache.add(c.dcache().stats());
        smem.add(c.sharedMem().stats());
        if (c.texUnit())
            tex.add(c.texUnit()->stats());
    }
    flatten(rec.stats, "core", cores);
    flatten(rec.stats, "icache", icache);
    flatten(rec.stats, "dcache", dcache);
    flatten(rec.stats, "smem", smem);
    flatten(rec.stats, "tex", tex);
    StatGroup l2;
    for (uint32_t cl = 0; cl < spec.config.numClusters(); ++cl)
        if (mem::Cache* c = proc.l2(cl))
            l2.add(c->stats());
    flatten(rec.stats, "l2", l2);
    if (mem::Cache* c = proc.l3())
        flatten(rec.stats, "l3", c->stats());
    flatten(rec.stats, "mem", proc.memSim().stats());
    return rec;
}

std::string
Campaign::cachePath(const std::string& hash) const
{
    return opts_.cacheDir + "/" + hash + ".run";
}

bool
Campaign::tryLoadCached(const RunSpec& spec, RunRecord& out) const
{
    if (opts_.cacheDir.empty())
        return false;
    std::ifstream in(cachePath(spec.contentHash()));
    if (!in)
        return false;

    std::string line;
    if (!std::getline(in, line) || line != kCacheMagic)
        return false;

    RunRecord rec;
    rec.spec = spec;
    rec.fromCache = true;
    rec.result.ok = true;
    bool complete = false;
    while (std::getline(in, line)) {
        std::istringstream ls(line);
        std::string tag;
        ls >> tag;
        if (tag == "hash") {
            std::string h;
            ls >> h;
            if (h != spec.contentHash())
                return false; // foreign entry (renamed file?)
        } else if (tag == "cycles") {
            ls >> rec.result.cycles;
        } else if (tag == "thread_instrs") {
            ls >> rec.result.threadInstrs;
        } else if (tag == "stat") {
            std::string key;
            uint64_t value = 0;
            ls >> key >> value;
            rec.stats.counter(key) = value;
        } else if (tag == "end") {
            complete = true;
        }
    }
    if (!complete)
        return false; // truncated write
    rec.result.ipc = ipcOf(rec.result.threadInstrs, rec.result.cycles);
    out = std::move(rec);
    return true;
}

void
Campaign::storeCached(const RunRecord& record) const
{
    if (opts_.cacheDir.empty() || !record.result.ok)
        return;
    std::error_code ec;
    std::filesystem::create_directories(opts_.cacheDir, ec);

    const std::string hash = record.spec.contentHash();
    const std::string path = cachePath(hash);
    const std::string tmp =
        path + ".tmp." +
        std::to_string(
            std::hash<std::thread::id>{}(std::this_thread::get_id()));
    {
        std::ofstream outf(tmp, std::ios::trunc);
        if (!outf)
            return; // cache is best-effort; the run still succeeded
        outf << kCacheMagic << "\n";
        outf << "hash " << hash << "\n";
        outf << "id " << record.spec.id() << "\n";
        outf << "cycles " << record.result.cycles << "\n";
        outf << "thread_instrs " << record.result.threadInstrs << "\n";
        for (const auto& [k, v] : record.stats.all())
            outf << "stat " << k << " " << v << "\n";
        outf << "end\n";
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec)
        std::filesystem::remove(tmp, ec);
}

CampaignResult
Campaign::run(const SweepSpec& spec)
{
    std::vector<RunSpec> runs = spec.expand();

    CampaignResult result;
    result.name = spec.name;
    for (const Axis& a : spec.axes)
        result.axisNames.push_back(a.name);
    result.records.resize(runs.size());

    std::atomic<size_t> cursor{0};
    std::atomic<uint32_t> hits{0}, misses{0};
    std::vector<std::exception_ptr> errors(runs.size());
    std::mutex io;

    auto worker = [&] {
        while (true) {
            size_t i = cursor.fetch_add(1);
            if (i >= runs.size())
                return;
            try {
                RunRecord rec;
                if (tryLoadCached(runs[i], rec)) {
                    ++hits;
                } else {
                    rec = executeOne(runs[i]);
                    if (!rec.result.ok)
                        fatal("campaign '", spec.name, "' run '",
                              runs[i].id(), "' failed verification: ",
                              rec.result.error);
                    storeCached(rec);
                    ++misses;
                }
                if (opts_.verbose) {
                    std::lock_guard<std::mutex> lk(io);
                    std::fprintf(stderr,
                                 "[%zu/%zu] %-28s %s cycles=%llu "
                                 "ipc=%.3f%s\n",
                                 i + 1, runs.size(), rec.spec.id().c_str(),
                                 rec.spec.workload.describe().c_str(),
                                 static_cast<unsigned long long>(
                                     rec.result.cycles),
                                 rec.result.ipc,
                                 rec.fromCache ? " (cached)" : "");
                }
                result.records[i] = std::move(rec);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        }
    };

    uint32_t nworkers = static_cast<uint32_t>(
        std::min<size_t>(opts_.jobs, std::max<size_t>(runs.size(), 1)));
    if (nworkers <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        for (uint32_t t = 0; t < nworkers; ++t)
            pool.emplace_back(worker);
        for (std::thread& t : pool)
            t.join();
    }

    // Deterministic error reporting: the lowest-index failure wins, no
    // matter which worker hit it first.
    for (std::exception_ptr& e : errors)
        if (e)
            std::rethrow_exception(e);

    result.cacheHits = hits;
    result.cacheMisses = misses;
    return result;
}

} // namespace vortex::sweep
