/**
 * @file
 * Campaign execution: job pool, device-stat flattening, the result
 * cache, and CSV/JSON emission.
 */

#include "sweep/campaign.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <exception>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>

#include "analysis/analysis.h"
#include "common/log.h"
#include "core/processor.h"
#include "kernels/kernels.h"
#include "runtime/device.h"
#include "sweep/report.h"

namespace vortex::sweep {

namespace {

// v2: "campaign" provenance line + the time-series block. v1 entries
// fail the magic check and simply miss (the run is re-simulated).
constexpr const char* kCacheMagic = "vortex-sweep-cache v2";

/** Mirror of Processor::ipc() so cache-restored records reproduce the
 *  exact double a fresh run reports. */
double
ipcOf(uint64_t threadInstrs, uint64_t cycles)
{
    return cycles == 0 ? 0.0
                       : static_cast<double>(threadInstrs) /
                             static_cast<double>(cycles);
}

/** Shortest round-trippable formatting for the JSON doubles. */
std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

double
estimateRunCost(const RunSpec& spec)
{
    const core::ArchConfig& c = spec.config;
    const WorkloadSpec& w = spec.workload;

    // Problem work. The weights are crude per-kernel relative costs
    // (sgemm is O(n^3) on the same n, bfs touches little data); they
    // only need to rank runs, not predict seconds.
    double work = 1.0;
    if (w.kind == WorkloadSpec::Kind::Rodinia) {
        double weight = 1.0;
        if (w.kernel == "sgemm")
            weight = 8.0;
        else if (w.kernel == "gaussian")
            weight = 6.0;
        else if (w.kernel == "sfilter")
            weight = 4.0;
        else if (w.kernel == "nearn")
            weight = 3.0;
        else if (w.kernel == "bfs")
            weight = 2.0;
        double s = static_cast<double>(w.scale);
        work = weight * s * s;
    } else {
        double area = static_cast<double>(w.texSize) *
                      static_cast<double>(w.texSize) / (64.0 * 64.0);
        double filter =
            w.texFilter == runtime::TexFilterMode::Trilinear  ? 3.0
            : w.texFilter == runtime::TexFilterMode::Bilinear ? 2.0
                                                              : 1.0;
        // The software sampler executes many more instructions per texel
        // than the hardware `tex` path.
        work = area * filter * (w.texHw ? 1.0 : 4.0);
    }

    // Host cost grows with the simulated machine: every core ticked
    // every cycle, wider cores emulate more lanes per instruction.
    double machine = static_cast<double>(c.numCores) *
                     static_cast<double>(c.numWarps) *
                     static_cast<double>(c.numThreads);
    return work * (1.0 + machine / 16.0);
}

double
cachedHostSeconds(const std::string& dir, const std::string& hash)
{
    std::ifstream in(dir + "/" + hash + ".run");
    std::string line;
    if (!in || !std::getline(in, line) || line != kCacheMagic)
        return -1.0;
    while (std::getline(in, line)) {
        std::istringstream ls(line);
        std::string tag;
        ls >> tag;
        if (tag == "host_seconds") {
            double s = 0.0;
            ls >> s;
            return s;
        }
        if (tag == "cycles")
            break; // provenance lines precede the payload
    }
    // A valid entry that predates the host_seconds line: still a hit —
    // report "recorded cost unknown", not "absent", so the scheduler
    // prices it like any other hit.
    return 0.0;
}

double
RunRecord::dcacheBankUtilization() const
{
    uint64_t accepted = stats.get("dcache.sel_accepted");
    uint64_t conflicts = stats.get("dcache.sel_conflicts");
    uint64_t total = accepted + conflicts;
    return total == 0 ? 1.0 : static_cast<double>(accepted) / total;
}

const RunRecord&
CampaignResult::at(const std::vector<std::string>& labels) const
{
    for (const RunRecord& r : records) {
        if (r.spec.coords.size() != labels.size())
            continue;
        bool match = true;
        for (size_t i = 0; i < labels.size(); ++i)
            if (r.spec.coords[i].second != labels[i]) {
                match = false;
                break;
            }
        if (match)
            return r;
    }
    std::string want;
    for (const std::string& l : labels)
        want += (want.empty() ? "" : "/") + l;
    fatal("campaign '", name, "': no run at coordinates '", want, "'");
}

void
CampaignResult::writeCsv(std::ostream& os) const
{
    // Stat columns: the union of counter keys over all records, in
    // first-seen (insertion) order — stable because records are in
    // matrix order regardless of job count or cache hits.
    StatGroup keyOrder;
    for (const RunRecord& r : records)
        for (const auto& [k, v] : r.stats.all()) {
            (void)v;
            keyOrder.counter(k);
        }

    for (const std::string& a : axisNames)
        os << csvCell(a) << ",";
    os << "id,hash,ok,cycles,thread_instrs,ipc";
    for (const auto& [k, v] : keyOrder.all()) {
        (void)v;
        os << "," << csvCell(k);
    }
    os << "\n";

    for (const RunRecord& r : records) {
        for (const auto& [axis, label] : r.spec.coords) {
            (void)axis;
            os << csvCell(label) << ",";
        }
        os << csvCell(r.spec.id()) << "," << r.spec.contentHash() << ","
           << (r.result.ok ? 1 : 0) << "," << r.result.cycles << ","
           << r.result.threadInstrs << "," << fmtF(r.result.ipc, 6);
        for (const auto& [k, v] : keyOrder.all()) {
            (void)v;
            os << "," << r.stats.get(k);
        }
        os << "\n";
    }
}

void
CampaignResult::writeJson(std::ostream& os) const
{
    os << "{\n  \"campaign\": \"" << jsonEscape(name) << "\",\n";
    os << "  \"axes\": [";
    for (size_t i = 0; i < axisNames.size(); ++i)
        os << (i ? ", " : "") << "\"" << jsonEscape(axisNames[i]) << "\"";
    os << "],\n  \"runs\": [\n";
    for (size_t i = 0; i < records.size(); ++i) {
        const RunRecord& r = records[i];
        os << "    {\"id\": \"" << jsonEscape(r.spec.id())
           << "\", \"hash\": \"" << r.spec.contentHash()
           << "\", \"coords\": {";
        for (size_t c = 0; c < r.spec.coords.size(); ++c)
            os << (c ? ", " : "") << "\""
               << jsonEscape(r.spec.coords[c].first) << "\": \""
               << jsonEscape(r.spec.coords[c].second) << "\"";
        // No execution metadata (fromCache, hostSeconds) here: JSON, like
        // CSV, is byte-identical across job counts and cache states.
        os << "}, \"workload\": \"" << jsonEscape(r.spec.workload.describe())
           << "\", \"ok\": " << (r.result.ok ? "true" : "false")
           << ", \"cycles\": " << r.result.cycles
           << ", \"thread_instrs\": " << r.result.threadInstrs
           << ", \"ipc\": " << fmtDouble(r.result.ipc) << ", \"stats\": {";
        bool first = true;
        for (const auto& [k, v] : r.stats.all()) {
            os << (first ? "" : ", ") << "\"" << jsonEscape(k)
               << "\": " << v;
            first = false;
        }
        os << "}}" << (i + 1 < records.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

void
CampaignResult::writeTimeSeriesJson(std::ostream& os) const
{
    os << "{\n  \"campaign\": \"" << jsonEscape(name) << "\",\n";
    os << "  \"axes\": [";
    for (size_t i = 0; i < axisNames.size(); ++i)
        os << (i ? ", " : "") << "\"" << jsonEscape(axisNames[i]) << "\"";
    os << "],\n  \"runs\": [\n";
    for (size_t i = 0; i < records.size(); ++i) {
        const RunRecord& r = records[i];
        os << "    {\"id\": \"" << jsonEscape(r.spec.id())
           << "\", \"hash\": \"" << r.spec.contentHash()
           << "\", \"coords\": {";
        for (size_t c = 0; c < r.spec.coords.size(); ++c)
            os << (c ? ", " : "") << "\""
               << jsonEscape(r.spec.coords[c].first) << "\": \""
               << jsonEscape(r.spec.coords[c].second) << "\"";
        os << "},\n     \"interval\": " << r.series.interval
           << ", \"sample_cycles\": [";
        for (size_t s = 0; s < r.series.sampleCycles.size(); ++s)
            os << (s ? ", " : "") << r.series.sampleCycles[s];
        os << "],\n     \"counters\": {";
        for (size_t k = 0; k < r.series.keys.size(); ++k) {
            os << (k ? ", " : "") << "\"" << jsonEscape(r.series.keys[k])
               << "\": [";
            for (size_t s = 0; s < r.series.deltas[k].size(); ++s)
                os << (s ? ", " : "") << r.series.deltas[k][s];
            os << "]";
        }
        os << "}}" << (i + 1 < records.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

void
CampaignResult::writeBenchJson(std::ostream& os) const
{
    // The trajectory headline: enough to spot a simulator perf or model
    // regression at a glance, small enough to diff across CI runs.
    static const char* kHeadlineCounters[] = {
        "core.thread_instrs", "core.retired",      "icache.core_reads",
        "dcache.core_reads",  "dcache.read_hits",  "dcache.read_misses",
        "mem.bytes",
    };
    double total = 0.0;
    for (const RunRecord& r : records)
        total += r.hostSeconds;
    os << "{\n  \"campaign\": \"" << jsonEscape(name) << "\",\n";
    os << "  \"total_host_seconds\": " << fmtDouble(total) << ",\n";
    os << "  \"runs\": [\n";
    for (size_t i = 0; i < records.size(); ++i) {
        const RunRecord& r = records[i];
        os << "    {\"id\": \"" << jsonEscape(r.spec.id())
           << "\", \"hash\": \"" << r.spec.contentHash()
           << "\", \"from_cache\": " << (r.fromCache ? "true" : "false")
           << ", \"host_seconds\": " << fmtDouble(r.hostSeconds)
           << ",\n     \"cycles\": " << r.result.cycles
           << ", \"thread_instrs\": " << r.result.threadInstrs
           << ", \"ipc\": " << fmtDouble(r.result.ipc) << ", \"stats\": {";
        bool first = true;
        for (const char* k : kHeadlineCounters) {
            os << (first ? "" : ", ") << "\"" << k
               << "\": " << r.stats.get(k);
            first = false;
        }
        os << "}}" << (i + 1 < records.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

Campaign::Campaign(CampaignOptions opts) : opts_(std::move(opts))
{
    if (opts_.jobs == 0) {
        unsigned hw = std::thread::hardware_concurrency();
        opts_.jobs = hw == 0 ? 1 : hw;
    }
}

RunRecord
Campaign::executeOne(const RunSpec& spec) const
{
    RunRecord rec;
    rec.spec = spec;

    auto t0 = std::chrono::steady_clock::now();
    runtime::Device dev(spec.config);
    rec.result = spec.workload.run(dev);
    auto t1 = std::chrono::steady_clock::now();
    rec.hostSeconds = std::chrono::duration<double>(t1 - t0).count();

    dev.processor().collectStats(rec.stats);
    rec.series = dev.processor().timeSeries();
    return rec;
}

std::string
Campaign::cachePath(const std::string& hash) const
{
    return opts_.cacheDir + "/" + hash + ".run";
}

bool
Campaign::tryLoadCached(const RunSpec& spec, RunRecord& out) const
{
    if (opts_.cacheDir.empty())
        return false;
    std::ifstream in(cachePath(spec.contentHash()));
    if (!in)
        return false;

    std::string line;
    if (!std::getline(in, line) || line != kCacheMagic)
        return false;

    RunRecord rec;
    rec.spec = spec;
    rec.fromCache = true;
    rec.result.ok = true;
    bool complete = false;
    while (std::getline(in, line)) {
        std::istringstream ls(line);
        std::string tag;
        ls >> tag;
        if (tag == "hash") {
            std::string h;
            ls >> h;
            if (h != spec.contentHash())
                return false; // foreign entry (renamed file?)
        } else if (tag == "cycles") {
            ls >> rec.result.cycles;
        } else if (tag == "thread_instrs") {
            ls >> rec.result.threadInstrs;
        } else if (tag == "stat") {
            std::string key;
            uint64_t value = 0;
            ls >> key >> value;
            rec.stats.counter(key) = value;
        } else if (tag == "sample_interval") {
            ls >> rec.series.interval;
        } else if (tag == "sample_cycles") {
            uint64_t c = 0;
            while (ls >> c)
                rec.series.sampleCycles.push_back(c);
        } else if (tag == "series") {
            std::string key;
            ls >> key;
            rec.series.keys.push_back(key);
            rec.series.deltas.emplace_back();
            uint64_t d = 0;
            while (ls >> d)
                rec.series.deltas.back().push_back(d);
        } else if (tag == "end") {
            complete = true;
        }
    }
    if (!complete)
        return false; // truncated write
    // A well-formed series is rectangular: every delta row as long as the
    // cycle-stamp vector. Treat anything else as corruption -> miss.
    for (const auto& row : rec.series.deltas)
        if (row.size() != rec.series.numSamples())
            return false;
    rec.result.ipc = ipcOf(rec.result.threadInstrs, rec.result.cycles);
    out = std::move(rec);
    return true;
}

void
Campaign::storeCached(const RunRecord& record,
                      const std::string& campaignName) const
{
    if (opts_.cacheDir.empty() || !record.result.ok)
        return;
    std::error_code ec;
    std::filesystem::create_directories(opts_.cacheDir, ec);

    const std::string hash = record.spec.contentHash();
    const std::string path = cachePath(hash);
    const std::string tmp =
        path + ".tmp." +
        std::to_string(
            std::hash<std::thread::id>{}(std::this_thread::get_id()));
    {
        std::ofstream outf(tmp, std::ios::trunc);
        if (!outf)
            return; // cache is best-effort; the run still succeeded
        outf << kCacheMagic << "\n";
        outf << "hash " << hash << "\n";
        outf << "id " << record.spec.id() << "\n";
        outf << "campaign " << campaignName << "\n";
        // Provenance, not payload: what the simulation cost this host.
        // Readers that predate the tag ignore it (unknown-tag rule), so
        // the cache format stays v2.
        outf << "host_seconds " << fmtDouble(record.hostSeconds) << "\n";
        outf << "cycles " << record.result.cycles << "\n";
        outf << "thread_instrs " << record.result.threadInstrs << "\n";
        for (const auto& [k, v] : record.stats.all())
            outf << "stat " << k << " " << v << "\n";
        if (record.series.interval != 0) {
            outf << "sample_interval " << record.series.interval << "\n";
            outf << "sample_cycles";
            for (uint64_t c : record.series.sampleCycles)
                outf << " " << c;
            outf << "\n";
            for (size_t k = 0; k < record.series.keys.size(); ++k) {
                outf << "series " << record.series.keys[k];
                for (uint64_t d : record.series.deltas[k])
                    outf << " " << d;
                outf << "\n";
            }
        }
        outf << "end\n";
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec)
        std::filesystem::remove(tmp, ec);
}

/**
 * Statically verify every distinct (kernel, machine) pair of @p runs.
 * Fatal on the first program with analysis errors, after printing its
 * full diagnostic list to stderr.
 */
static void
verifyRuns(const std::string& campaignName,
           const std::vector<RunSpec>& runs)
{
    std::set<std::string> seen;
    for (const RunSpec& run : runs) {
        std::string kernelName = workloadKernelName(run.workload);
        std::string unitName = kernelName;
        std::string source;
        if (!run.workload.program.empty()) {
            // A `program =` workload runs the file's source, not the
            // registry kernel — verify what will actually execute.
            unitName = run.workload.program;
            source = run.workload.programSource;
        } else {
            const char* s = kernels::kernelSource(kernelName);
            if (s == nullptr)
                fatal("campaign '", campaignName, "': unknown kernel '",
                      kernelName, "' cannot be verified");
            source = s;
        }
        std::ostringstream key;
        key << unitName << '/' << run.config.numThreads << 't'
            << run.config.numWarps << 'w' << run.config.numCores << 'c'
            << run.config.smemSize << 's' << run.config.startPC;
        if (!seen.insert(key.str()).second)
            continue;
        isa::Assembler assembler(run.config.startPC);
        isa::Program program = assembler.assembleUnits(
            {{"<runtime>", kernels::runtimeSource()},
             {unitName, source}});
        analysis::Report report = analysis::analyze(
            program, runtime::analyzerOptions(run.config, program));
        if (report.errors() == 0)
            continue;
        std::ostringstream diag;
        report.print(diag, &program);
        std::fputs(diag.str().c_str(), stderr);
        fatal("campaign '", campaignName, "' kernel '", unitName,
              "' failed static verification with ", report.errors(),
              " error(s) (run '", run.id(), "')");
    }
}

CampaignResult
Campaign::run(const SweepSpec& spec)
{
    std::vector<RunSpec> runs = spec.expand();
    if (opts_.verify)
        verifyRuns(spec.name, runs);

    CampaignResult result;
    result.name = spec.name;
    for (const Axis& a : spec.axes)
        result.axisNames.push_back(a.name);
    result.records.resize(runs.size());

    // Claim order. LPT (longest processing time first) shortens the
    // critical path at high job counts: the most expensive simulations
    // start immediately instead of landing on a nearly-drained pool.
    // Scheduling only — records are stored at their matrix index and
    // emitted in matrix order, so output bytes cannot depend on it.
    // Costs: a run already in the result cache restores in microseconds
    // (price ~0, claimed last); everything else gets the deterministic
    // estimateRunCost heuristic. Sort is stable with an index tiebreak,
    // so the order is identical on every host.
    std::vector<double> costs(runs.size());
    for (size_t i = 0; i < runs.size(); ++i) {
        bool cached = !opts_.cacheDir.empty() &&
                      cachedHostSeconds(opts_.cacheDir,
                                        runs[i].contentHash()) >= 0.0;
        costs[i] = cached ? 0.0 : estimateRunCost(runs[i]);
    }
    std::vector<size_t> order(runs.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    if (opts_.lpt)
        std::stable_sort(order.begin(), order.end(),
                         [&](size_t a, size_t b) {
                             return costs[a] > costs[b];
                         });
    double totalCost = 0.0;
    for (double c : costs)
        totalCost += c;

    std::atomic<size_t> cursor{0};
    std::atomic<uint32_t> hits{0}, misses{0};
    std::vector<std::exception_ptr> errors(runs.size());
    std::mutex io;
    size_t doneCount = 0;    // guarded by io
    double doneCost = 0.0;   // guarded by io
    const auto wallStart = std::chrono::steady_clock::now();

    auto worker = [&] {
        while (true) {
            size_t slot = cursor.fetch_add(1);
            if (slot >= order.size())
                return;
            size_t i = order[slot];
            try {
                RunRecord rec;
                if (tryLoadCached(runs[i], rec)) {
                    ++hits;
                } else {
                    rec = executeOne(runs[i]);
                    if (!rec.result.ok)
                        fatal("campaign '", spec.name, "' run '",
                              runs[i].id(), "' failed verification: ",
                              rec.result.error);
                    storeCached(rec, spec.name);
                    ++misses;
                }
                if (opts_.verbose || opts_.progress) {
                    std::lock_guard<std::mutex> lk(io);
                    ++doneCount;
                    doneCost += costs[i];
                    std::string eta;
                    if (opts_.progress) {
                        double elapsed =
                            std::chrono::duration<double>(
                                std::chrono::steady_clock::now() -
                                wallStart)
                                .count();
                        char buf[64];
                        // Extrapolate from estimate units actually
                        // retired so far; until a costed run finishes
                        // there is nothing to extrapolate from.
                        if (doneCost > 0.0 && totalCost > doneCost)
                            std::snprintf(buf, sizeof(buf),
                                          " elapsed=%.1fs eta=%.1fs",
                                          elapsed,
                                          elapsed * (totalCost - doneCost) /
                                              doneCost);
                        else
                            std::snprintf(buf, sizeof(buf),
                                          " elapsed=%.1fs", elapsed);
                        eta = buf;
                    }
                    std::fprintf(stderr,
                                 "[%zu/%zu] %-28s %s cycles=%llu "
                                 "ipc=%.3f%s%s\n",
                                 doneCount, runs.size(),
                                 rec.spec.id().c_str(),
                                 rec.spec.workload.describe().c_str(),
                                 static_cast<unsigned long long>(
                                     rec.result.cycles),
                                 rec.result.ipc,
                                 rec.fromCache ? " (cached)" : "",
                                 eta.c_str());
                }
                result.records[i] = std::move(rec);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        }
    };

    uint32_t nworkers = static_cast<uint32_t>(
        std::min<size_t>(opts_.jobs, std::max<size_t>(runs.size(), 1)));
    if (nworkers <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        for (uint32_t t = 0; t < nworkers; ++t)
            pool.emplace_back(worker);
        for (std::thread& t : pool)
            t.join();
    }

    // Deterministic error reporting: the lowest-index failure wins, no
    // matter which worker hit it first.
    for (std::exception_ptr& e : errors)
        if (e)
            std::rethrow_exception(e);

    result.cacheHits = hits;
    result.cacheMisses = misses;
    // Keep the cache's manifest in sync with what is now on disk.
    if (!opts_.cacheDir.empty())
        writeCacheManifest(opts_.cacheDir);
    return result;
}

namespace {

/** @p path's mtime as seconds since the Unix epoch (0 on error). */
int64_t
mtimeSeconds(const std::filesystem::path& path)
{
    std::error_code ec;
    auto ftime = std::filesystem::last_write_time(path, ec);
    if (ec)
        return 0;
    // Portable file_clock -> system_clock conversion (no C++20
    // clock_cast dependency): rebase through the two clocks' "now".
    auto sys = std::chrono::time_point_cast<std::chrono::seconds>(
        ftime - std::filesystem::file_time_type::clock::now() +
        std::chrono::system_clock::now());
    return sys.time_since_epoch().count();
}

/** @p epochSeconds as "YYYY-MM-DDThh:mm:ssZ". */
std::string
isoUtc(int64_t epochSeconds)
{
    std::time_t t = static_cast<std::time_t>(epochSeconds);
    std::tm tm{};
    gmtime_r(&t, &tm);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
    return buf;
}

} // namespace

std::vector<CacheEntryInfo>
listCache(const std::string& dir)
{
    std::vector<CacheEntryInfo> entries;
    std::error_code ec;
    for (const auto& de :
         std::filesystem::directory_iterator(dir, ec)) {
        if (!de.is_regular_file() || de.path().extension() != ".run")
            continue;
        std::ifstream in(de.path());
        std::string line;
        if (!in || !std::getline(in, line) || line != kCacheMagic)
            continue; // stale-format or foreign file; not an entry
        CacheEntryInfo info;
        info.hash = de.path().stem().string();
        info.mtime = mtimeSeconds(de.path());
        while (std::getline(in, line)) {
            std::istringstream ls(line);
            std::string tag;
            ls >> tag;
            if (tag == "id")
                std::getline(ls >> std::ws, info.id);
            else if (tag == "campaign")
                std::getline(ls >> std::ws, info.campaign);
            else if (tag == "cycles")
                break; // provenance lines precede the payload
        }
        entries.push_back(std::move(info));
    }
    std::sort(entries.begin(), entries.end(),
              [](const CacheEntryInfo& a, const CacheEntryInfo& b) {
                  return a.hash < b.hash;
              });
    return entries;
}

void
writeCacheManifest(const std::string& dir)
{
    std::vector<CacheEntryInfo> entries = listCache(dir);
    // Unlike cache entries (same hash -> same bytes), two processes'
    // manifests can genuinely differ mid-churn, so the temp name must be
    // unique across processes, not just threads.
    const std::string path = dir + "/manifest.json";
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid()) + "." +
        std::to_string(
            std::hash<std::thread::id>{}(std::this_thread::get_id()));
    {
        std::ofstream os(tmp, std::ios::trunc);
        if (!os)
            return; // the manifest is best-effort metadata
        os << "{\n  \"entries\": [\n";
        for (size_t i = 0; i < entries.size(); ++i) {
            const CacheEntryInfo& e = entries[i];
            os << "    {\"hash\": \"" << jsonEscape(e.hash)
               << "\", \"id\": \"" << jsonEscape(e.id)
               << "\", \"campaign\": \"" << jsonEscape(e.campaign)
               << "\", \"written\": \"" << isoUtc(e.mtime) << "\"}"
               << (i + 1 < entries.size() ? "," : "") << "\n";
        }
        os << "  ]\n}\n";
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec)
        std::filesystem::remove(tmp, ec);
}

size_t
pruneCache(const std::string& dir, double olderThanDays)
{
    const int64_t cutoff =
        olderThanDays < 0.0
            ? INT64_MAX // prune everything
            : std::chrono::duration_cast<std::chrono::seconds>(
                  std::chrono::system_clock::now().time_since_epoch())
                      .count() -
                  static_cast<int64_t>(olderThanDays * 86400.0);
    size_t removed = 0;
    std::error_code ec;
    for (const auto& de :
         std::filesystem::directory_iterator(dir, ec)) {
        if (!de.is_regular_file())
            continue;
        const std::string fname = de.path().filename().string();
        // Sweep leftover temp files from interrupted writes regardless
        // of age; they are never valid entries.
        if (fname.find(".run.tmp.") != std::string::npos ||
            fname.find("manifest.json.tmp.") != std::string::npos) {
            std::filesystem::remove(de.path(), ec);
            continue;
        }
        if (de.path().extension() != ".run")
            continue;
        if (mtimeSeconds(de.path()) <= cutoff) {
            std::filesystem::remove(de.path(), ec);
            if (!ec)
                ++removed;
        }
    }
    writeCacheManifest(dir);
    return removed;
}

} // namespace vortex::sweep
