/**
 * @file
 * Campaign execution: job pool, shard slicing, the cost model, and
 * CSV/JSON emission. Cache entry I/O lives in sweep/cache.cpp.
 */

#include "sweep/campaign.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>

#include "analysis/analysis.h"
#include "common/log.h"
#include "common/outcome.h"
#include "core/processor.h"
#include "kernels/kernels.h"
#include "runtime/device.h"
#include "sweep/cache.h"
#include "sweep/report.h"

namespace vortex::sweep {

namespace {

/** Shortest round-trippable formatting for the JSON doubles. */
std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

double
estimateRunCost(const RunSpec& spec)
{
    const core::ArchConfig& c = spec.config;
    const WorkloadSpec& w = spec.workload;

    // Problem work. The weights are crude per-kernel relative costs
    // (sgemm is O(n^3) on the same n, bfs touches little data); they
    // only need to rank runs, not predict seconds.
    double work = 1.0;
    if (w.kind == WorkloadSpec::Kind::Rodinia) {
        double weight = 1.0;
        if (w.kernel == "sgemm")
            weight = 8.0;
        else if (w.kernel == "gaussian")
            weight = 6.0;
        else if (w.kernel == "sfilter")
            weight = 4.0;
        else if (w.kernel == "nearn")
            weight = 3.0;
        else if (w.kernel == "bfs")
            weight = 2.0;
        double s = static_cast<double>(w.scale);
        work = weight * s * s;
    } else {
        double area = static_cast<double>(w.texSize) *
                      static_cast<double>(w.texSize) / (64.0 * 64.0);
        double filter =
            w.texFilter == runtime::TexFilterMode::Trilinear  ? 3.0
            : w.texFilter == runtime::TexFilterMode::Bilinear ? 2.0
                                                              : 1.0;
        // The software sampler executes many more instructions per texel
        // than the hardware `tex` path.
        work = area * filter * (w.texHw ? 1.0 : 4.0);
    }

    // Host cost grows with the simulated machine: every core ticked
    // every cycle, wider cores emulate more lanes per instruction.
    double machine = static_cast<double>(c.numCores) *
                     static_cast<double>(c.numWarps) *
                     static_cast<double>(c.numThreads);
    return work * (1.0 + machine / 16.0);
}

CostModel
CostModel::fromCache(const CacheStore& store)
{
    CostModel model;
    // Per-kernel (host-seconds, estimate-units) accumulators, ordered
    // by first appearance in the hash-sorted entry list — deterministic
    // for a given set of entries.
    std::vector<std::pair<std::string, std::pair<double, double>>> acc;
    double totalSec = 0.0, totalUnits = 0.0;
    for (const CacheEntryInfo& e : store.entries()) {
        // Only entries with full provenance calibrate: a measured
        // wall-clock, a kernel name, and a positive static estimate.
        // (Cache-restored re-stores never happen — hits are not
        // rewritten — so host_seconds is always a real measurement.)
        if (e.kernel.empty() || e.estUnits <= 0.0 || e.hostSeconds <= 0.0)
            continue;
        auto it = std::find_if(acc.begin(), acc.end(),
                               [&](const auto& kv) {
                                   return kv.first == e.kernel;
                               });
        if (it == acc.end()) {
            acc.push_back({e.kernel, {0.0, 0.0}});
            it = acc.end() - 1;
        }
        it->second.first += e.hostSeconds;
        it->second.second += e.estUnits;
        totalSec += e.hostSeconds;
        totalUnits += e.estUnits;
        ++model.samples_;
    }
    for (const auto& [kernel, sums] : acc)
        if (sums.second > 0.0)
            model.kernelScale_.push_back(
                {kernel, sums.first / sums.second});
    if (totalUnits > 0.0)
        model.globalScale_ = totalSec / totalUnits;
    return model;
}

double
CostModel::cost(const RunSpec& spec) const
{
    double base = estimateRunCost(spec);
    const std::string kernel = workloadKernelName(spec.workload);
    for (const auto& [name, scale] : kernelScale_)
        if (name == kernel)
            return base * scale;
    // Unseen kernel: the global factor keeps its cost in the same
    // (seconds) unit system as the calibrated kernels, so LPT still
    // ranks mixed matrices sensibly; with no data at all, every run is
    // priced in raw static units — consistent again.
    return globalScale_ > 0.0 ? base * globalScale_ : base;
}

std::vector<uint32_t>
shardAssignment(const std::vector<RunSpec>& runs, uint32_t shardCount)
{
    if (shardCount == 0)
        fatal("shardAssignment: shard count must be >= 1");
    // Greedy LPT bin-packing over the *static* cost heuristic (see the
    // header for why it must not be cache-calibrated): heaviest run
    // first onto the least-loaded shard, ties broken toward the lower
    // index on both sides. Stable and host-independent.
    std::vector<size_t> order(runs.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::vector<double> costs(runs.size());
    for (size_t i = 0; i < runs.size(); ++i)
        costs[i] = estimateRunCost(runs[i]);
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) {
                         return costs[a] > costs[b];
                     });
    std::vector<uint32_t> shardOf(runs.size(), 0);
    std::vector<double> load(shardCount, 0.0);
    for (size_t i : order) {
        uint32_t best = 0;
        for (uint32_t s = 1; s < shardCount; ++s)
            if (load[s] < load[best])
                best = s;
        shardOf[i] = best;
        load[best] += costs[i];
    }
    return shardOf;
}

double
RunRecord::dcacheBankUtilization() const
{
    uint64_t accepted = stats.get("dcache.sel_accepted");
    uint64_t conflicts = stats.get("dcache.sel_conflicts");
    uint64_t total = accepted + conflicts;
    return total == 0 ? 1.0 : static_cast<double>(accepted) / total;
}

uint32_t
CampaignResult::failures() const
{
    uint32_t n = 0;
    for (const RunRecord& r : records)
        if (!r.result.ok)
            ++n;
    return n;
}

const RunRecord&
CampaignResult::at(const std::vector<std::string>& labels) const
{
    for (const RunRecord& r : records) {
        if (r.spec.coords.size() != labels.size())
            continue;
        bool match = true;
        for (size_t i = 0; i < labels.size(); ++i)
            if (r.spec.coords[i].second != labels[i]) {
                match = false;
                break;
            }
        if (match)
            return r;
    }
    std::string want;
    for (const std::string& l : labels)
        want += (want.empty() ? "" : "/") + l;
    fatal("campaign '", name, "': no run at coordinates '", want, "'");
}

void
CampaignResult::writeCsv(std::ostream& os) const
{
    // Stat columns: the union of counter keys over all records, in
    // first-seen (insertion) order — stable because records are in
    // matrix order regardless of job count or cache hits.
    StatGroup keyOrder;
    for (const RunRecord& r : records)
        for (const auto& [k, v] : r.stats.all()) {
            (void)v;
            keyOrder.counter(k);
        }

    for (const std::string& a : axisNames)
        os << csvCell(a) << ",";
    os << "id,hash,ok,status,cycles,thread_instrs,ipc";
    for (const auto& [k, v] : keyOrder.all()) {
        (void)v;
        os << "," << csvCell(k);
    }
    os << "\n";

    for (const RunRecord& r : records) {
        for (const auto& [axis, label] : r.spec.coords) {
            (void)axis;
            os << csvCell(label) << ",";
        }
        os << csvCell(r.spec.id()) << "," << r.spec.contentHash() << ","
           << (r.result.ok ? 1 : 0) << ","
           << statusName(r.result.status) << "," << r.result.cycles << ","
           << r.result.threadInstrs << "," << fmtF(r.result.ipc, 6);
        for (const auto& [k, v] : keyOrder.all()) {
            (void)v;
            os << "," << r.stats.get(k);
        }
        os << "\n";
    }
}

void
CampaignResult::writeJson(std::ostream& os) const
{
    os << "{\n  \"campaign\": \"" << jsonEscape(name) << "\",\n";
    os << "  \"axes\": [";
    for (size_t i = 0; i < axisNames.size(); ++i)
        os << (i ? ", " : "") << "\"" << jsonEscape(axisNames[i]) << "\"";
    os << "],\n  \"runs\": [\n";
    for (size_t i = 0; i < records.size(); ++i) {
        const RunRecord& r = records[i];
        os << "    {\"id\": \"" << jsonEscape(r.spec.id())
           << "\", \"hash\": \"" << r.spec.contentHash()
           << "\", \"coords\": {";
        for (size_t c = 0; c < r.spec.coords.size(); ++c)
            os << (c ? ", " : "") << "\""
               << jsonEscape(r.spec.coords[c].first) << "\": \""
               << jsonEscape(r.spec.coords[c].second) << "\"";
        // No execution metadata (fromCache, hostSeconds) here: JSON, like
        // CSV, is byte-identical across job counts and cache states.
        os << "}, \"workload\": \"" << jsonEscape(r.spec.workload.describe())
           << "\", \"ok\": " << (r.result.ok ? "true" : "false")
           << ", \"status\": \"" << statusName(r.result.status) << "\""
           << ", \"cycles\": " << r.result.cycles
           << ", \"thread_instrs\": " << r.result.threadInstrs
           << ", \"ipc\": " << fmtDouble(r.result.ipc) << ", \"stats\": {";
        bool first = true;
        for (const auto& [k, v] : r.stats.all()) {
            os << (first ? "" : ", ") << "\"" << jsonEscape(k)
               << "\": " << v;
            first = false;
        }
        os << "}}" << (i + 1 < records.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

void
CampaignResult::writeTimeSeriesJson(std::ostream& os) const
{
    os << "{\n  \"campaign\": \"" << jsonEscape(name) << "\",\n";
    os << "  \"axes\": [";
    for (size_t i = 0; i < axisNames.size(); ++i)
        os << (i ? ", " : "") << "\"" << jsonEscape(axisNames[i]) << "\"";
    os << "],\n  \"runs\": [\n";
    for (size_t i = 0; i < records.size(); ++i) {
        const RunRecord& r = records[i];
        os << "    {\"id\": \"" << jsonEscape(r.spec.id())
           << "\", \"hash\": \"" << r.spec.contentHash()
           << "\", \"coords\": {";
        for (size_t c = 0; c < r.spec.coords.size(); ++c)
            os << (c ? ", " : "") << "\""
               << jsonEscape(r.spec.coords[c].first) << "\": \""
               << jsonEscape(r.spec.coords[c].second) << "\"";
        os << "},\n     \"interval\": " << r.series.interval
           << ", \"sample_cycles\": [";
        for (size_t s = 0; s < r.series.sampleCycles.size(); ++s)
            os << (s ? ", " : "") << r.series.sampleCycles[s];
        os << "],\n     \"counters\": {";
        for (size_t k = 0; k < r.series.keys.size(); ++k) {
            os << (k ? ", " : "") << "\"" << jsonEscape(r.series.keys[k])
               << "\": [";
            for (size_t s = 0; s < r.series.deltas[k].size(); ++s)
                os << (s ? ", " : "") << r.series.deltas[k][s];
            os << "]";
        }
        os << "}}" << (i + 1 < records.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

void
CampaignResult::writeBenchJson(std::ostream& os) const
{
    // The trajectory headline: enough to spot a simulator perf or model
    // regression at a glance, small enough to diff across CI runs.
    static const char* kHeadlineCounters[] = {
        "core.thread_instrs", "core.retired",      "icache.core_reads",
        "dcache.core_reads",  "dcache.read_hits",  "dcache.read_misses",
        "mem.bytes",
    };
    double total = 0.0;
    for (const RunRecord& r : records)
        total += r.hostSeconds;
    os << "{\n  \"campaign\": \"" << jsonEscape(name) << "\",\n";
    os << "  \"total_host_seconds\": " << fmtDouble(total) << ",\n";
    os << "  \"runs\": [\n";
    for (size_t i = 0; i < records.size(); ++i) {
        const RunRecord& r = records[i];
        os << "    {\"id\": \"" << jsonEscape(r.spec.id())
           << "\", \"hash\": \"" << r.spec.contentHash()
           << "\", \"from_cache\": " << (r.fromCache ? "true" : "false")
           << ", \"host_seconds\": " << fmtDouble(r.hostSeconds)
           << ",\n     \"cycles\": " << r.result.cycles
           << ", \"thread_instrs\": " << r.result.threadInstrs
           << ", \"ipc\": " << fmtDouble(r.result.ipc) << ", \"stats\": {";
        bool first = true;
        for (const char* k : kHeadlineCounters) {
            os << (first ? "" : ", ") << "\"" << k
               << "\": " << r.stats.get(k);
            first = false;
        }
        os << "}}" << (i + 1 < records.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

Campaign::Campaign(CampaignOptions opts) : opts_(std::move(opts))
{
    if (opts_.jobs == 0) {
        unsigned hw = std::thread::hardware_concurrency();
        opts_.jobs = hw == 0 ? 1 : hw;
    }
}

RunRecord
executeRun(const RunSpec& spec, std::function<bool()> abortCheck)
{
    RunRecord rec;
    rec.spec = spec;

    auto t0 = std::chrono::steady_clock::now();
    runtime::Device dev(spec.config);
    if (abortCheck)
        dev.processor().setAbortCheck(std::move(abortCheck));
    rec.result = spec.workload.run(dev);
    auto t1 = std::chrono::steady_clock::now();
    rec.hostSeconds = std::chrono::duration<double>(t1 - t0).count();

    dev.processor().collectStats(rec.stats);
    rec.series = dev.processor().timeSeries();
    return rec;
}

/**
 * Statically verify every distinct (kernel, machine) pair of @p runs.
 * Fatal on the first program with analysis errors, after printing its
 * full diagnostic list to stderr.
 */
static void
verifyRuns(const std::string& campaignName,
           const std::vector<RunSpec>& runs)
{
    std::set<std::string> seen;
    for (const RunSpec& run : runs) {
        std::string kernelName = workloadKernelName(run.workload);
        std::string unitName = kernelName;
        std::string source;
        if (!run.workload.program.empty()) {
            // A `program =` workload runs the file's source, not the
            // registry kernel — verify what will actually execute.
            unitName = run.workload.program;
            source = run.workload.programSource;
        } else {
            const char* s = kernels::kernelSource(kernelName);
            if (s == nullptr)
                fatal("campaign '", campaignName, "': unknown kernel '",
                      kernelName, "' cannot be verified");
            source = s;
        }
        std::ostringstream key;
        key << unitName << '/' << run.config.numThreads << 't'
            << run.config.numWarps << 'w' << run.config.numCores << 'c'
            << run.config.smemSize << 's' << run.config.startPC;
        if (!seen.insert(key.str()).second)
            continue;
        isa::Assembler assembler(run.config.startPC);
        isa::Program program = assembler.assembleUnits(
            {{"<runtime>", kernels::runtimeSource()},
             {unitName, source}});
        analysis::Report report = analysis::analyze(
            program, runtime::analyzerOptions(run.config, program));
        if (report.errors() == 0)
            continue;
        std::ostringstream diag;
        report.print(diag, &program);
        std::fputs(diag.str().c_str(), stderr);
        fatal("campaign '", campaignName, "' kernel '", unitName,
              "' failed static verification with ", report.errors(),
              " error(s) (run '", run.id(), "')");
    }
}

CampaignResult
Campaign::run(const SweepSpec& spec)
{
    std::vector<RunSpec> runs = spec.expand();
    if (opts_.verify)
        verifyRuns(spec.name, runs);

    // Fabric sharding: keep only this shard's slice of the matrix. The
    // assignment is a pure function of the expanded runs (static cost
    // heuristic), so N hosts given i/N for i = 0..N-1 execute disjoint
    // slices whose union is the full matrix.
    if (opts_.shardCount > 1) {
        if (opts_.shardIndex >= opts_.shardCount)
            fatal("campaign '", spec.name, "': shard index ",
                  opts_.shardIndex, " out of range for ",
                  opts_.shardCount, " shards");
        std::vector<uint32_t> shardOf =
            shardAssignment(runs, opts_.shardCount);
        std::vector<RunSpec> mine;
        for (size_t i = 0; i < runs.size(); ++i)
            if (shardOf[i] == opts_.shardIndex)
                mine.push_back(std::move(runs[i]));
        runs = std::move(mine);
    } else if (opts_.shardCount == 1 && opts_.shardIndex != 0) {
        fatal("campaign '", spec.name, "': shard index ",
              opts_.shardIndex, " out of range for 1 shard");
    }

    CampaignResult result;
    result.name = spec.name;
    for (const Axis& a : spec.axes)
        result.axisNames.push_back(a.name);
    result.records.resize(runs.size());

    // Claim order. LPT (longest processing time first) shortens the
    // critical path at high job counts: the most expensive simulations
    // start immediately instead of landing on a nearly-drained pool.
    // Scheduling only — records are stored at their matrix index and
    // emitted in matrix order, so output bytes cannot depend on it.
    // Costs: a run already in the result cache restores in microseconds
    // (price ~0, claimed last); everything else is priced by the cost
    // model — calibrated from the cache's recorded host_seconds
    // provenance when data exists, the static estimateRunCost heuristic
    // otherwise. Sort is stable with an index tiebreak.
    CacheStore cache(opts_.cacheDir);
    CostModel model =
        cache.enabled() ? CostModel::fromCache(cache) : CostModel();
    std::vector<double> costs(runs.size());
    for (size_t i = 0; i < runs.size(); ++i) {
        bool cached =
            cache.recordedHostSeconds(runs[i].contentHash()) >= 0.0;
        costs[i] = cached ? 0.0 : model.cost(runs[i]);
    }
    std::vector<size_t> order(runs.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    if (opts_.lpt)
        std::stable_sort(order.begin(), order.end(),
                         [&](size_t a, size_t b) {
                             return costs[a] > costs[b];
                         });
    double totalCost = 0.0;
    for (double c : costs)
        totalCost += c;

    std::atomic<size_t> cursor{0};
    std::atomic<uint32_t> hits{0}, misses{0};
    std::vector<std::exception_ptr> errors(runs.size());
    std::mutex io;
    size_t doneCount = 0;    // guarded by io
    double doneCost = 0.0;   // guarded by io
    const auto wallStart = std::chrono::steady_clock::now();

    auto worker = [&] {
        while (true) {
            size_t slot = cursor.fetch_add(1);
            if (slot >= order.size())
                return;
            size_t i = order[slot];
            try {
                RunRecord rec;
                if (cache.load(runs[i], rec)) {
                    ++hits;
                } else {
                    rec = executeRun(runs[i]);
                    if (!rec.result.ok && opts_.failFast)
                        fatal("campaign '", spec.name, "' run '",
                              runs[i].id(), "' failed (",
                              statusName(rec.result.status),
                              "): ", rec.result.error);
                    // Only verified runs enter the cache: a failed run
                    // is re-executed by the next campaign, so cache
                    // state can never mask — or resurrect — a failure,
                    // and warm-vs-cold output bytes stay identical.
                    if (rec.result.ok)
                        cache.store(rec, spec.name);
                    ++misses;
                }
                if (opts_.verbose || opts_.progress) {
                    std::lock_guard<std::mutex> lk(io);
                    ++doneCount;
                    doneCost += costs[i];
                    std::string eta;
                    if (opts_.progress) {
                        double elapsed =
                            std::chrono::duration<double>(
                                std::chrono::steady_clock::now() -
                                wallStart)
                                .count();
                        char buf[64];
                        // Extrapolate from estimate units actually
                        // retired so far; until a costed run finishes
                        // there is nothing to extrapolate from.
                        if (doneCost > 0.0 && totalCost > doneCost)
                            std::snprintf(buf, sizeof(buf),
                                          " elapsed=%.1fs eta=%.1fs",
                                          elapsed,
                                          elapsed * (totalCost - doneCost) /
                                              doneCost);
                        else
                            std::snprintf(buf, sizeof(buf),
                                          " elapsed=%.1fs", elapsed);
                        eta = buf;
                    }
                    std::string failNote;
                    if (!rec.result.ok)
                        failNote = std::string(" FAILED (") +
                                   statusName(rec.result.status) + ")";
                    std::fprintf(stderr,
                                 "[%zu/%zu] %-28s %s cycles=%llu "
                                 "ipc=%.3f%s%s%s\n",
                                 doneCount, runs.size(),
                                 rec.spec.id().c_str(),
                                 rec.spec.workload.describe().c_str(),
                                 static_cast<unsigned long long>(
                                     rec.result.cycles),
                                 rec.result.ipc,
                                 rec.fromCache ? " (cached)" : "",
                                 failNote.c_str(), eta.c_str());
                }
                result.records[i] = std::move(rec);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        }
    };

    uint32_t nworkers = static_cast<uint32_t>(
        std::min<size_t>(opts_.jobs, std::max<size_t>(runs.size(), 1)));
    if (nworkers <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        for (uint32_t t = 0; t < nworkers; ++t)
            pool.emplace_back(worker);
        for (std::thread& t : pool)
            t.join();
    }

    // Deterministic error reporting: the lowest-index failure wins, no
    // matter which worker hit it first.
    for (std::exception_ptr& e : errors)
        if (e)
            std::rethrow_exception(e);

    result.cacheHits = hits;
    result.cacheMisses = misses;
    // Keep the cache's manifest in sync with what is now on disk.
    if (cache.enabled())
        cache.writeManifest();
    return result;
}

} // namespace vortex::sweep
