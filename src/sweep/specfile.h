/**
 * @file
 * Versionable sweep-spec files: parse and serialize a full SweepSpec as a
 * document, so a campaign is a checked-in artifact instead of a command
 * line.
 *
 * Two input syntaxes share one schema (docs/SWEEP_SPECS.md is the format
 * reference):
 *
 *  - a dependency-free TOML subset — comments, `key = value` pairs
 *    (strings, integers, booleans), dotted keys (`set.kernel = "sgemm"`),
 *    `[table]` and `[[array-of-tables]]` headers — which covers every
 *    construct the schema needs;
 *  - standard JSON, detected by a leading `{`, for machine-generated
 *    specs.
 *
 * Both parsers produce the same document tree and report malformed input
 * through SpecParseError with `file:line:col` positions, so a typo in a
 * checked-in spec points at the offending character, not at a failed
 * campaign.
 *
 * Serialization (writeSpecToml) is canonical and self-contained: every
 * base machine and workload field is written explicitly (not just the
 * fields that differ from today's defaults), so a spec file pins the
 * machine even if ArchConfig defaults drift later. `vortex_sweep
 * --dump-spec` uses it to export any preset; the shipped TOML files
 * under examples/specs/ are exactly these dumps, and CI re-dumps and
 * diffs them so the registry and the documents cannot drift apart
 * (tests/test_specfile.cpp pins content-hash equality of the round trip).
 */

#pragma once

#include <ostream>
#include <stdexcept>
#include <string>

#include "sweep/spec.h"

namespace vortex::sweep {

/** Malformed spec-file input. what() carries the full diagnostic;
 *  file/line/column locate the first offending character (column 0 when
 *  the error spans a whole construct, e.g. a missing required key). */
class SpecParseError : public std::runtime_error
{
  public:
    /** Build the diagnostic "file:line:col: message" (line/col omitted
     *  when 0). */
    SpecParseError(std::string file, size_t line, size_t column,
                   const std::string& message);

    /** The file name (or pseudo-name) the text came from. */
    const std::string& file() const { return file_; }
    /** 1-based line of the error; 0 when the position is unknown. */
    size_t line() const { return line_; }
    /** 1-based column of the error; 0 when the position is unknown. */
    size_t column() const { return column_; }

  private:
    std::string file_; ///< input name used in the diagnostic
    size_t line_;      ///< 1-based error line (0 = unknown)
    size_t column_;    ///< 1-based error column (0 = unknown)
};

/**
 * Parse spec text in either supported syntax (JSON when the first
 * non-whitespace character is `{`, the TOML subset otherwise) into a
 * SweepSpec. Field names and values are validated through the same
 * registry as `--set`/`--axis` (applyField), so a spec file can express
 * exactly what the CLI can.
 *
 * @param text     the document content
 * @param filename name used in diagnostics (e.g. the path, or "<string>")
 * @throws SpecParseError on malformed syntax, unknown keys, unknown
 *         field names, or type mismatches — always with line/column.
 */
SweepSpec parseSpecText(const std::string& text,
                        const std::string& filename = "<string>");

/** parseSpecText over the content of @p path; fatal when the file cannot
 *  be read. */
SweepSpec parseSpecFile(const std::string& path);

/**
 * Serialize @p spec as a canonical, self-contained TOML document:
 * header (`spec`/`name`/`description`), the full `[base]` machine (every
 * registry config field, in registry order), the `[workload]` block, and
 * one `[[axes]]` / `[[axes.points]]` pair per axis point. The output
 * parses back (parseSpecText) to a spec whose expanded run matrix is
 * content-hash-identical to @p spec's — the round trip CI and the tests
 * rely on.
 *
 * Derived fields ("cores") are never emitted: the concrete fields they
 * assign are. Note lineSize is written once and re-applies to both the
 * cache and board-memory line size, matching the field registry.
 */
void writeSpecToml(const SweepSpec& spec, std::ostream& os);

/** writeSpecToml rendered to a string (convenience for tests/tools). */
std::string specToToml(const SweepSpec& spec);

} // namespace vortex::sweep
