/**
 * @file
 * Campaign-fabric service implementation: AF_UNIX NDJSON server, the
 * in-flight dedup machinery, and the blocking submit/shutdown clients.
 * See fabric.h for the dedup contract and docs/FABRIC.md for the wire
 * protocol.
 */

#include "sweep/fabric.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <vector>

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/log.h"
#include "common/outcome.h"
#include "sweep/cache.h"
#include "sweep/campaign.h"
#include "sweep/report.h"
#include "sweep/specfile.h"

namespace vortex::sweep {

namespace {

/** %.17g (shortest round-trip-safe) double text, matching the cache
 *  entry format. */
std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

//
// Socket plumbing.
//

/**
 * Connect a stream socket to @p path, retrying transient failures
 * (service not yet bound, socket file not yet created, backlog full)
 * with capped exponential backoff — 50 ms doubling to a 1 s cap — for
 * up to @p retrySeconds. Fatal when the service stays unreachable.
 */
int
connectTo(const std::string& path, double retrySeconds = 2.0)
{
    sockaddr_un addr{};
    if (path.size() >= sizeof(addr.sun_path))
        fatal("socket path too long: ", path);
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(retrySeconds));
    auto backoff = std::chrono::milliseconds(50);
    for (;;) {
        int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            fatal("socket(): ", std::strerror(errno));
        if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) == 0)
            return fd;
        int err = errno;
        ::close(fd);
        // Only errors a starting (or briefly overloaded) service can
        // recover from are worth retrying; anything else is permanent.
        bool transient = err == ECONNREFUSED || err == ENOENT ||
                         err == EAGAIN || err == EINTR;
        if (!transient || std::chrono::steady_clock::now() + backoff >
                              deadline)
            fatal("cannot reach service at ", path, ": ",
                  std::strerror(err));
        std::this_thread::sleep_for(backoff);
        backoff = std::min(backoff * 2, std::chrono::milliseconds(1000));
    }
}

/** Send @p line plus a terminating newline; false on a dead peer. */
bool
sendLine(int fd, const std::string& line)
{
    std::string out = line + "\n";
    size_t sent = 0;
    while (sent < out.size()) {
        ssize_t n = ::send(fd, out.data() + sent, out.size() - sent,
                           MSG_NOSIGNAL);
        if (n <= 0)
            return false;
        sent += static_cast<size_t>(n);
    }
    return true;
}

/** Pull one '\n'-terminated line out of @p carry, recv()ing as needed.
 *  False on EOF / error with no complete line buffered. */
bool
readLine(int fd, std::string& carry, std::string& line)
{
    for (;;) {
        size_t nl = carry.find('\n');
        if (nl != std::string::npos) {
            line = carry.substr(0, nl);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            carry.erase(0, nl + 1);
            return true;
        }
        char tmp[4096];
        ssize_t n = ::recv(fd, tmp, sizeof(tmp), 0);
        if (n <= 0)
            return false;
        carry.append(tmp, static_cast<size_t>(n));
    }
}

//
// Request lines are flat JSON objects with string values; this minimal
// parser is the exact inverse of jsonEscape (sweep/report.h), which
// both ends use to produce lines.
//

struct JsonField
{
    std::string key;
    std::string value;
};

bool
jsonUnescape(const std::string& in, size_t& i, std::string& out,
             std::string& err)
{
    // i points at the opening quote.
    ++i;
    out.clear();
    while (i < in.size() && in[i] != '"') {
        char c = in[i];
        if (c != '\\') {
            out += c;
            ++i;
            continue;
        }
        if (++i >= in.size())
            break;
        switch (in[i]) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
            if (i + 4 >= in.size()) {
                err = "truncated \\u escape";
                return false;
            }
            unsigned code = 0;
            for (int k = 0; k < 4; ++k) {
                char h = in[++i];
                code <<= 4;
                if (h >= '0' && h <= '9')
                    code |= static_cast<unsigned>(h - '0');
                else if (h >= 'a' && h <= 'f')
                    code |= static_cast<unsigned>(h - 'a' + 10);
                else if (h >= 'A' && h <= 'F')
                    code |= static_cast<unsigned>(h - 'A' + 10);
                else {
                    err = "bad \\u escape";
                    return false;
                }
            }
            if (code > 0x7f) {
                err = "non-ASCII \\u escape unsupported";
                return false;
            }
            out += static_cast<char>(code);
            break;
        }
        default:
            err = std::string("unknown escape \\") + in[i];
            return false;
        }
        ++i;
    }
    if (i >= in.size()) {
        err = "unterminated string";
        return false;
    }
    ++i; // closing quote
    return true;
}

/** Parse a flat {"k": "v", ...} object (string or bare-token values)
 *  into ordered fields. */
bool
parseJsonLine(const std::string& in, std::vector<JsonField>& out,
              std::string& err)
{
    out.clear();
    size_t i = 0;
    auto skipWs = [&] {
        while (i < in.size() && (in[i] == ' ' || in[i] == '\t'))
            ++i;
    };
    skipWs();
    if (i >= in.size() || in[i] != '{') {
        err = "expected '{'";
        return false;
    }
    ++i;
    skipWs();
    if (i < in.size() && in[i] == '}')
        return true;
    for (;;) {
        skipWs();
        if (i >= in.size() || in[i] != '"') {
            err = "expected key string";
            return false;
        }
        JsonField f;
        if (!jsonUnescape(in, i, f.key, err))
            return false;
        skipWs();
        if (i >= in.size() || in[i] != ':') {
            err = "expected ':'";
            return false;
        }
        ++i;
        skipWs();
        if (i < in.size() && in[i] == '"') {
            if (!jsonUnescape(in, i, f.value, err))
                return false;
        } else {
            size_t start = i;
            while (i < in.size() && in[i] != ',' && in[i] != '}')
                ++i;
            f.value = in.substr(start, i - start);
            while (!f.value.empty() &&
                   (f.value.back() == ' ' || f.value.back() == '\t'))
                f.value.pop_back();
            if (f.value.empty()) {
                err = "empty value";
                return false;
            }
        }
        out.push_back(std::move(f));
        skipWs();
        if (i < in.size() && in[i] == ',') {
            ++i;
            continue;
        }
        if (i < in.size() && in[i] == '}')
            return true;
        err = "expected ',' or '}'";
        return false;
    }
}

const std::string*
findField(const std::vector<JsonField>& fields, const std::string& key)
{
    for (const JsonField& f : fields)
        if (f.key == key)
            return &f.value;
    return nullptr;
}

/** Bounded counting semaphore (kept local: <semaphore> needs nothing
 *  this 20-liner doesn't provide). */
class SimSlots
{
  public:
    explicit SimSlots(uint32_t n) : count_(n) {}

    void acquire()
    {
        std::unique_lock<std::mutex> lk(m_);
        cv_.wait(lk, [&] { return count_ > 0; });
        --count_;
    }

    void release()
    {
        {
            std::lock_guard<std::mutex> lk(m_);
            ++count_;
        }
        cv_.notify_one();
    }

  private:
    std::mutex m_;
    std::condition_variable cv_;
    uint32_t count_;
};

} // namespace

//
// Service.
//

struct Service::Impl
{
    ServiceOptions opts;
    CacheStore cache;

    std::atomic<int> listenFd{-1}; ///< written by stop() while acceptLoop reads
    std::atomic<bool> running{false};
    std::atomic<bool> stopping{false};
    std::atomic<bool> shutdownRequested{false};
    std::thread acceptThread;

    std::mutex clientsMu;           ///< guards clientThreads/clientFds
    std::vector<std::thread> clientThreads;
    std::vector<int> clientFds;     ///< fds of live client connections

    /** A run being simulated right now; identical submissions block on
     *  cv instead of simulating again. */
    struct Inflight
    {
        std::mutex m;
        std::condition_variable cv;
        bool done = false;
        RunRecord rec;
    };

    std::mutex stateMu; ///< guards inflight/memo/stats
    std::unordered_map<std::string, std::shared_ptr<Inflight>> inflight;
    std::unordered_map<std::string, RunRecord> memo; ///< completed ok runs
    ServiceStats stats;

    SimSlots simSlots;

    explicit Impl(ServiceOptions o)
        : opts(std::move(o)),
          cache(opts.cacheDir),
          simSlots(opts.jobs ? opts.jobs
                             : std::max(1u, std::thread::hardware_concurrency()))
    {
    }

    /** Where one run's record came from (the dedup resolution order in
     *  fabric.h's file comment). */
    enum class Origin
    {
        Memo,
        Cache,
        Dedup,
        Simulated,
    };

    static const char* originName(Origin o)
    {
        switch (o) {
        case Origin::Memo: return "memo";
        case Origin::Cache: return "cache";
        case Origin::Dedup: return "dedup";
        default: return "simulated";
        }
    }

    /** Resolve one run through memo -> disk cache -> in-flight join ->
     *  fresh simulation. Thread-safe; called by submission workers. */
    RunRecord resolveRun(const RunSpec& spec, const std::string& campaignName,
                         Origin& origin)
    {
        const std::string hash = spec.contentHash();
        std::shared_ptr<Inflight> mine;
        std::shared_ptr<Inflight> theirs;
        {
            std::lock_guard<std::mutex> lk(stateMu);
            auto mit = memo.find(hash);
            if (mit != memo.end()) {
                ++stats.memoHits;
                origin = Origin::Memo;
                RunRecord rec = mit->second;
                rec.spec = spec; // same content hash, caller's coordinates
                rec.fromCache = true;
                rec.hostSeconds = 0.0;
                return rec;
            }
            auto iit = inflight.find(hash);
            if (iit != inflight.end()) {
                theirs = iit->second;
                ++stats.dedupJoins;
            } else {
                mine = std::make_shared<Inflight>();
                inflight.emplace(hash, mine);
            }
        }
        if (theirs) {
            std::unique_lock<std::mutex> lk(theirs->m);
            theirs->cv.wait(lk, [&] { return theirs->done; });
            origin = Origin::Dedup;
            RunRecord rec = theirs->rec;
            rec.spec = spec;
            return rec;
        }

        // This thread owns the simulation for `hash`. Every path below
        // must still publish a record — waiters joined on `mine` block
        // until it is signaled — so any escaping exception (a simulator
        // bug included) becomes a host_error record rather than a dead
        // daemon with deadlocked clients.
        RunRecord rec;
        try {
            if (cache.enabled() && cache.load(spec, rec)) {
                origin = Origin::Cache;
                std::lock_guard<std::mutex> lk(stateMu);
                ++stats.cacheHits;
            } else {
                std::function<bool()> abortCheck;
                if (opts.runDeadlineSeconds) {
                    auto deadline =
                        std::chrono::steady_clock::now() +
                        std::chrono::seconds(opts.runDeadlineSeconds);
                    abortCheck = [deadline] {
                        return std::chrono::steady_clock::now() >= deadline;
                    };
                }
                simSlots.acquire();
                try {
                    rec = executeRun(spec, std::move(abortCheck));
                } catch (...) {
                    simSlots.release();
                    throw;
                }
                simSlots.release();
                origin = Origin::Simulated;
                if (rec.result.ok && cache.enabled())
                    cache.store(rec, campaignName);
                std::lock_guard<std::mutex> lk(stateMu);
                ++stats.simulated;
            }
        } catch (const std::exception& e) {
            origin = Origin::Simulated;
            rec = RunRecord();
            rec.spec = spec;
            rec.result.ok = false;
            rec.result.status = RunStatus::HostError;
            rec.result.error = e.what();
            std::lock_guard<std::mutex> lk(stateMu);
            ++stats.simulated;
        }
        {
            std::lock_guard<std::mutex> lk(stateMu);
            if (rec.result.ok)
                memo.emplace(hash, rec);
            inflight.erase(hash);
        }
        {
            std::lock_guard<std::mutex> lk(mine->m);
            mine->rec = rec;
            mine->done = true;
        }
        mine->cv.notify_all();
        return rec;
    }

    /** Serve one `submit` request: expand, schedule LPT, resolve every
     *  run, stream events. @p writeMu serializes lines to @p fd. */
    void handleSubmit(int fd, std::mutex& writeMu,
                      const std::vector<JsonField>& fields)
    {
        auto emit = [&](const std::string& line) {
            std::lock_guard<std::mutex> lk(writeMu);
            return sendLine(fd, line);
        };
        auto emitError = [&](const std::string& msg) {
            {
                std::lock_guard<std::mutex> lk(stateMu);
                ++stats.errors;
            }
            emit(std::string("{\"event\": \"error\", \"message\": \"") +
                 jsonEscape(msg) + "\"}");
        };

        const std::string* specText = findField(fields, "spec");
        if (!specText) {
            emitError("submit request is missing the \"spec\" field");
            return;
        }
        SweepSpec spec;
        try {
            spec = parseSpecText(*specText, "<submission>");
        } catch (const SpecParseError& e) {
            emitError(e.what());
            return;
        } catch (const FatalError& e) {
            emitError(e.what());
            return;
        }
        if (const std::string* name = findField(fields, "name"))
            if (!name->empty())
                spec.name = *name;

        std::vector<RunSpec> runs;
        try {
            runs = spec.expand();
            if (spec.shardCount > 1) {
                std::vector<uint32_t> shardOf =
                    shardAssignment(runs, spec.shardCount);
                std::vector<RunSpec> mine;
                for (size_t i = 0; i < runs.size(); ++i)
                    if (shardOf[i] == spec.shardIndex)
                        mine.push_back(std::move(runs[i]));
                runs = std::move(mine);
            }
        } catch (const FatalError& e) {
            emitError(e.what());
            return;
        }
        {
            std::lock_guard<std::mutex> lk(stateMu);
            ++stats.submissions;
            stats.runsRequested += runs.size();
        }
        if (opts.verbose)
            inform("[fabric] submit ", spec.name, ": ", runs.size(), " runs");
        emit(std::string("{\"event\": \"accepted\", \"campaign\": \"") +
             jsonEscape(spec.name) + "\", \"runs\": " +
             std::to_string(runs.size()) + "}");

        // LPT claim order over the calibrated cost model (scheduling
        // only: events still carry matrix indices).
        CostModel model =
            cache.enabled() ? CostModel::fromCache(cache) : CostModel();
        std::vector<size_t> order(runs.size());
        for (size_t i = 0; i < order.size(); ++i)
            order[i] = i;
        std::vector<double> costs(runs.size());
        for (size_t i = 0; i < runs.size(); ++i)
            costs[i] = model.cost(runs[i]);
        std::stable_sort(order.begin(), order.end(),
                         [&](size_t a, size_t b) { return costs[a] > costs[b]; });

        uint64_t nSimulated = 0;
        uint64_t nCacheHits = 0;
        uint64_t nDedup = 0;
        std::string firstError;
        size_t firstErrorIndex = runs.size();
        std::mutex subMu; // guards the submission-local counters above

        std::atomic<size_t> cursor{0};
        uint32_t workers = opts.jobs ? opts.jobs
                                     : std::max(1u, std::thread::hardware_concurrency());
        workers = static_cast<uint32_t>(
            std::min<size_t>(workers, std::max<size_t>(runs.size(), 1)));
        auto work = [&] {
            for (;;) {
                size_t slot = cursor.fetch_add(1);
                if (slot >= order.size())
                    return;
                size_t i = order[slot];
                Origin origin = Origin::Simulated;
                RunRecord rec = resolveRun(runs[i], spec.name, origin);
                {
                    std::lock_guard<std::mutex> lk(subMu);
                    switch (origin) {
                    case Origin::Memo:
                    case Origin::Cache: ++nCacheHits; break;
                    case Origin::Dedup: ++nDedup; break;
                    case Origin::Simulated: ++nSimulated; break;
                    }
                    if (!rec.result.ok && i < firstErrorIndex) {
                        firstErrorIndex = i;
                        firstError = "run " + rec.spec.id() + " failed (" +
                                     statusName(rec.result.status) +
                                     "): " + rec.result.error;
                    }
                }
                std::ostringstream ev;
                ev << "{\"event\": \"run\", \"index\": " << i
                   << ", \"id\": \"" << jsonEscape(rec.spec.id())
                   << "\", \"hash\": \"" << rec.spec.contentHash()
                   << "\", \"source\": \"" << originName(origin)
                   << "\", \"ok\": " << (rec.result.ok ? "true" : "false")
                   << ", \"status\": \"" << statusName(rec.result.status)
                   << "\", \"cycles\": " << rec.result.cycles
                   << ", \"thread_instrs\": " << rec.result.threadInstrs
                   << ", \"ipc\": " << fmtDouble(rec.result.ipc) << "}";
                emit(ev.str());
                if (opts.verbose)
                    inform("[fabric]   ", rec.spec.id(), " <- ",
                           originName(origin));
            }
        };
        if (workers <= 1 || runs.size() <= 1) {
            work();
        } else {
            std::vector<std::thread> pool;
            for (uint32_t w = 0; w < workers; ++w)
                pool.emplace_back(work);
            for (std::thread& t : pool)
                t.join();
        }

        if (cache.enabled())
            cache.writeManifest();
        if (!firstError.empty()) {
            emitError(firstError);
            return;
        }
        std::ostringstream done;
        done << "{\"event\": \"done\", \"campaign\": \""
             << jsonEscape(spec.name) << "\", \"runs\": " << runs.size()
             << ", \"simulated\": " << nSimulated
             << ", \"cache_hits\": " << nCacheHits
             << ", \"dedup_joins\": " << nDedup << "}";
        emit(done.str());
    }

    /** Per-connection request loop. */
    void clientLoop(int fd)
    {
        std::mutex writeMu;
        std::string carry;
        std::string line;
        while (!stopping.load() && readLine(fd, carry, line)) {
            if (line.empty())
                continue;
            std::vector<JsonField> fields;
            std::string err;
            if (!parseJsonLine(line, fields, err)) {
                std::lock_guard<std::mutex> lk(writeMu);
                sendLine(fd, std::string("{\"event\": \"error\", \"message\": "
                                         "\"bad request: ") +
                                 jsonEscape(err) + "\"}");
                continue;
            }
            const std::string* op = findField(fields, "op");
            if (!op) {
                std::lock_guard<std::mutex> lk(writeMu);
                sendLine(fd, "{\"event\": \"error\", \"message\": "
                             "\"request is missing the \\\"op\\\" field\"}");
                continue;
            }
            if (*op == "ping") {
                std::lock_guard<std::mutex> lk(writeMu);
                sendLine(fd, "{\"event\": \"pong\"}");
            } else if (*op == "status") {
                ServiceStats s;
                size_t nInflight;
                {
                    std::lock_guard<std::mutex> lk(stateMu);
                    s = stats;
                    nInflight = inflight.size();
                }
                std::ostringstream ev;
                ev << "{\"event\": \"status\", \"submissions\": "
                   << s.submissions << ", \"runs_requested\": "
                   << s.runsRequested << ", \"simulated\": " << s.simulated
                   << ", \"cache_hits\": " << s.cacheHits
                   << ", \"memo_hits\": " << s.memoHits
                   << ", \"dedup_joins\": " << s.dedupJoins
                   << ", \"errors\": " << s.errors
                   << ", \"inflight\": " << nInflight << "}";
                std::lock_guard<std::mutex> lk(writeMu);
                sendLine(fd, ev.str());
            } else if (*op == "submit") {
                handleSubmit(fd, writeMu, fields);
            } else if (*op == "shutdown") {
                // Raise the flag before acknowledging so a client that
                // received "bye" is guaranteed to observe it.
                shutdownRequested.store(true);
                {
                    std::lock_guard<std::mutex> lk(writeMu);
                    sendLine(fd, "{\"event\": \"bye\"}");
                }
                break;
            } else {
                std::lock_guard<std::mutex> lk(writeMu);
                sendLine(fd, std::string("{\"event\": \"error\", \"message\": "
                                         "\"unknown op \\\"") +
                                 jsonEscape(*op) + "\\\"\"}");
            }
        }
        {
            std::lock_guard<std::mutex> lk(clientsMu);
            clientFds.erase(std::remove(clientFds.begin(), clientFds.end(), fd),
                            clientFds.end());
            ::close(fd);
        }
    }

    void acceptLoop()
    {
        for (;;) {
            int lfd = listenFd.load();
            if (lfd < 0)
                return;
            int fd = ::accept(lfd, nullptr, nullptr);
            if (fd < 0) {
                if (stopping.load() || errno != EINTR)
                    return;
                continue;
            }
            if (stopping.load()) {
                ::close(fd);
                return;
            }
            std::lock_guard<std::mutex> lk(clientsMu);
            clientFds.push_back(fd);
            clientThreads.emplace_back([this, fd] { clientLoop(fd); });
        }
    }
};

Service::Service(ServiceOptions opts)
    : impl_(std::make_unique<Impl>(std::move(opts)))
{
}

Service::~Service()
{
    stop();
}

void
Service::start()
{
    Impl& im = *impl_;
    if (im.running.load())
        fatal("service already started");
    const std::string& path = im.opts.socketPath;
    if (path.empty())
        fatal("service needs a socket path");

    sockaddr_un addr{};
    if (path.size() >= sizeof(addr.sun_path))
        fatal("socket path too long: ", path);
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        fatal("socket(): ", std::strerror(errno));
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        if (errno == EADDRINUSE) {
            // A stale socket file from a dead service is fine to evict;
            // a live service is not.
            int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
            bool live = probe >= 0 &&
                        ::connect(probe, reinterpret_cast<sockaddr*>(&addr),
                                  sizeof(addr)) == 0;
            if (probe >= 0)
                ::close(probe);
            if (live) {
                ::close(fd);
                fatal("a service is already listening on ", path);
            }
            ::unlink(path.c_str());
            if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
                0) {
                int err = errno;
                ::close(fd);
                fatal("bind(", path, "): ", std::strerror(err));
            }
        } else {
            int err = errno;
            ::close(fd);
            fatal("bind(", path, "): ", std::strerror(err));
        }
    }
    if (::listen(fd, 64) != 0) {
        int err = errno;
        ::close(fd);
        ::unlink(path.c_str());
        fatal("listen(", path, "): ", std::strerror(err));
    }
    im.listenFd = fd;
    im.stopping.store(false);
    im.running.store(true);
    im.acceptThread = std::thread([&im] { im.acceptLoop(); });
    if (im.opts.verbose)
        inform("[fabric] listening on ", path);
}

void
Service::stop()
{
    Impl& im = *impl_;
    if (!im.running.exchange(false))
        return;
    im.stopping.store(true);
    int lfd = im.listenFd.exchange(-1);
    if (lfd >= 0) {
        ::shutdown(lfd, SHUT_RDWR);
        ::close(lfd);
    }
    if (im.acceptThread.joinable())
        im.acceptThread.join();
    {
        // Wake blocked client reads; each thread closes its own fd.
        std::lock_guard<std::mutex> lk(im.clientsMu);
        for (int fd : im.clientFds)
            ::shutdown(fd, SHUT_RDWR);
    }
    // clientThreads only grows under clientsMu and no thread appends
    // after stopping, so the snapshot below is complete.
    std::vector<std::thread> threads;
    {
        std::lock_guard<std::mutex> lk(im.clientsMu);
        threads.swap(im.clientThreads);
    }
    for (std::thread& t : threads)
        if (t.joinable())
            t.join();
    ::unlink(im.opts.socketPath.c_str());
    if (im.opts.verbose)
        inform("[fabric] stopped");
}

bool
Service::running() const
{
    return impl_->running.load();
}

const std::string&
Service::socketPath() const
{
    return impl_->opts.socketPath;
}

ServiceStats
Service::stats() const
{
    std::lock_guard<std::mutex> lk(impl_->stateMu);
    return impl_->stats;
}

//
// Clients.
//

SubmitResult
submitSpecText(const std::string& socketPath, const std::string& specText,
               const std::string& campaignName, std::ostream* echo,
               uint32_t timeoutSeconds)
{
    int fd = connectTo(socketPath);
    if (timeoutSeconds) {
        // Bound every blocking recv: a hung or wedged service turns
        // into a timed-out submission instead of a stuck client.
        timeval tv{};
        tv.tv_sec = timeoutSeconds;
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    }
    std::string req = std::string("{\"op\": \"submit\", \"spec\": \"") +
                      jsonEscape(specText) + "\"";
    if (!campaignName.empty())
        req += std::string(", \"name\": \"") + jsonEscape(campaignName) + "\"";
    req += "}";
    if (!sendLine(fd, req)) {
        ::close(fd);
        fatal("service at ", socketPath, " dropped the connection");
    }

    SubmitResult result;
    auto numField = [](const std::vector<JsonField>& fields, const char* key,
                       uint64_t& out) {
        if (const std::string* v = findField(fields, key))
            out = std::strtoull(v->c_str(), nullptr, 10);
    };
    std::string carry;
    std::string line;
    bool finished = false;
    while (!finished && readLine(fd, carry, line)) {
        if (line.empty())
            continue;
        result.events.push_back(line);
        if (echo)
            *echo << line << "\n";
        std::vector<JsonField> fields;
        std::string err;
        if (!parseJsonLine(line, fields, err))
            continue; // tolerate unknown/garbled lines; wait for done/error
        const std::string* ev = findField(fields, "event");
        if (!ev)
            continue;
        if (*ev == "accepted") {
            if (const std::string* name = findField(fields, "campaign"))
                result.campaign = *name;
            numField(fields, "runs", result.runs);
        } else if (*ev == "done") {
            result.ok = true;
            numField(fields, "runs", result.runs);
            numField(fields, "simulated", result.simulated);
            numField(fields, "cache_hits", result.cacheHits);
            numField(fields, "dedup_joins", result.dedupJoins);
            finished = true;
        } else if (*ev == "error") {
            result.ok = false;
            if (const std::string* msg = findField(fields, "message"))
                result.error = *msg;
            else
                result.error = "service reported an error";
            finished = true;
        }
    }
    int readErr = errno;
    ::close(fd);
    if (!finished) {
        result.ok = false;
        if (result.error.empty()) {
            if (timeoutSeconds &&
                (readErr == EAGAIN || readErr == EWOULDBLOCK))
                result.error = "timed out after " +
                               std::to_string(timeoutSeconds) +
                               "s waiting for the service";
            else
                result.error = "connection closed before a done/error event";
        }
    }
    return result;
}

void
requestShutdown(const std::string& socketPath)
{
    int fd = connectTo(socketPath);
    if (!sendLine(fd, "{\"op\": \"shutdown\"}")) {
        ::close(fd);
        fatal("service at ", socketPath, " dropped the connection");
    }
    std::string carry;
    std::string line;
    while (readLine(fd, carry, line)) {
        if (line.find("\"bye\"") != std::string::npos)
            break;
    }
    ::close(fd);
}

int
serveMain(const ServiceOptions& opts)
{
    // Handle SIGINT/SIGTERM by polling sigtimedwait so both a signal and
    // a client {"op": "shutdown"} unwind through the same clean stop().
    sigset_t mask;
    sigemptyset(&mask);
    sigaddset(&mask, SIGINT);
    sigaddset(&mask, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &mask, nullptr);

    Service service(opts);
    try {
        service.start();
    } catch (const FatalError& e) {
        inform(e.what());
        return 1;
    }
    inform("vortex_sweep service listening on ", opts.socketPath,
           opts.cacheDir.empty() ? "" : (" (cache: " + opts.cacheDir + ")"));

    timespec tick{};
    tick.tv_nsec = 200 * 1000 * 1000; // 200 ms between shutdown checks
    for (;;) {
        int sig = sigtimedwait(&mask, nullptr, &tick);
        if (sig == SIGINT || sig == SIGTERM) {
            inform("[fabric] signal received, shutting down");
            break;
        }
        if (service.shutdownRequestedByClient()) {
            inform("[fabric] client shutdown request, shutting down");
            break;
        }
    }
    service.stop();
    ServiceStats s = service.stats();
    inform("[fabric] served ", s.submissions, " submissions, ",
           s.runsRequested, " runs (", s.simulated, " simulated, ",
           s.cacheHits + s.memoHits, " cache/memo hits, ", s.dedupJoins,
           " dedup joins)");
    return 0;
}

bool
Service::shutdownRequestedByClient() const
{
    return impl_->shutdownRequested.load();
}

} // namespace vortex::sweep
