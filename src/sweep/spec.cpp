/**
 * @file
 * Sweep-spec expansion, the named-field registry, and canonical
 * serialization/hashing of resolved runs.
 */

#include "sweep/spec.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/log.h"
#include "runtime/device.h"
#include "sweep/presets.h"

namespace vortex::sweep {

uint32_t
parseU32Value(const std::string& what, const std::string& value)
{
    try {
        size_t pos = 0;
        unsigned long v = std::stoul(value, &pos);
        if (pos != value.size() || v > UINT32_MAX)
            throw std::invalid_argument(value);
        return static_cast<uint32_t>(v);
    } catch (const std::exception&) {
        fatal(what, ": cannot parse '", value,
              "' as an unsigned integer");
    }
}

bool
parseBoolValue(const std::string& what, const std::string& value)
{
    if (value == "0" || value == "false" || value == "off")
        return false;
    if (value == "1" || value == "true" || value == "on")
        return true;
    fatal(what, ": cannot parse '", value,
          "' as a boolean (use 0/1/true/false/on/off)");
}

void
parseShardValue(const std::string& what, const std::string& value,
                uint32_t& index, uint32_t& count)
{
    size_t slash = value.find('/');
    if (slash == std::string::npos || slash == 0 ||
        slash + 1 >= value.size())
        fatal(what, ": expected I/N (shard I of N, 0-based), got '",
              value, "'");
    index = parseU32Value(what, value.substr(0, slash));
    count = parseU32Value(what, value.substr(slash + 1));
    if (count == 0)
        fatal(what, ": shard count must be >= 1 (got '", value, "')");
    if (index >= count)
        fatal(what, ": shard index ", index, " out of range for ", count,
              " shard", count == 1 ? "" : "s");
}

namespace {

uint32_t
parseU32(const std::string& name, const std::string& value)
{
    return parseU32Value("sweep field '" + name + "'", value);
}

bool
parseBool(const std::string& name, const std::string& value)
{
    return parseBoolValue("sweep field '" + name + "'", value);
}

/** Strict uint64 parse for the 64-bit fields (sampleInterval-style). */
uint64_t
parseU64(const std::string& name, const std::string& value)
{
    try {
        size_t pos = 0;
        uint64_t v = std::stoull(value, &pos);
        if (pos != value.size())
            throw std::invalid_argument(value);
        return v;
    } catch (const std::exception&) {
        fatal("sweep field '", name, "': cannot parse '", value,
              "' as an unsigned integer");
    }
}

core::SchedPolicy
parseSchedPolicy(const std::string& value)
{
    if (value == "hierarchical")
        return core::SchedPolicy::Hierarchical;
    if (value == "roundrobin" || value == "round-robin")
        return core::SchedPolicy::RoundRobin;
    fatal("sweep field 'schedPolicy': unknown policy '", value,
          "' (hierarchical | roundrobin)");
}

runtime::TexFilterMode
parseTexFilter(const std::string& value)
{
    if (value == "point")
        return runtime::TexFilterMode::Point;
    if (value == "bilinear")
        return runtime::TexFilterMode::Bilinear;
    if (value == "trilinear")
        return runtime::TexFilterMode::Trilinear;
    fatal("sweep field 'texFilter': unknown mode '", value,
          "' (point | bilinear | trilinear)");
}

/** One entry of the field registry: name -> assignment function. */
struct FieldDef
{
    const char* name;
    const char* help;
    void (*apply)(core::ArchConfig&, WorkloadSpec&, const std::string&);
};

#define VORTEX_U32_FIELD(field, help)                                       \
    {#field, help,                                                          \
     [](core::ArchConfig& c, WorkloadSpec&, const std::string& v) {         \
         c.field = parseU32(#field, v);                                     \
     }}
#define VORTEX_BOOL_FIELD(field, help)                                      \
    {#field, help,                                                          \
     [](core::ArchConfig& c, WorkloadSpec&, const std::string& v) {         \
         c.field = parseBool(#field, v);                                    \
     }}

const FieldDef kFields[] = {
    // SIMT geometry.
    VORTEX_U32_FIELD(numThreads, "threads per wavefront"),
    VORTEX_U32_FIELD(numWarps, "wavefronts per core"),
    VORTEX_U32_FIELD(numCores, "core count (raw; see also 'cores')"),
    VORTEX_U32_FIELD(coresPerCluster, "cores sharing one L2 cluster"),
    {"cores", "core count with the paper's scaling rules (L2 from 4 "
              "cores, 8-channel board above 16)",
     [](core::ArchConfig& c, WorkloadSpec&, const std::string& v) {
         c = baselineConfig(parseU32("cores", v), c);
     }},

    // Pipeline.
    VORTEX_U32_FIELD(ibufferDepth, "instruction-buffer depth"),
    VORTEX_U32_FIELD(lsuDepth, "in-flight warp memory ops per core"),
    {"schedPolicy", "wavefront scheduling (hierarchical | roundrobin)",
     [](core::ArchConfig& c, WorkloadSpec&, const std::string& v) {
         c.schedPolicy = parseSchedPolicy(v);
     }},
    VORTEX_U32_FIELD(lat.alu, "ALU latency (cycles)"),
    VORTEX_U32_FIELD(lat.mul, "integer-multiply latency"),
    VORTEX_U32_FIELD(lat.div, "integer-divide latency"),
    VORTEX_U32_FIELD(lat.fpu, "FP add/mul/fma latency"),
    VORTEX_U32_FIELD(lat.fcvt, "FP convert/move/compare latency"),
    VORTEX_U32_FIELD(lat.fdiv, "FP divide latency"),
    VORTEX_U32_FIELD(lat.fsqrt, "FP square-root latency"),
    VORTEX_U32_FIELD(lat.sfu, "SFU latency"),

    // L1 caches.
    {"lineSize", "cache AND board-memory line size (bytes)",
     [](core::ArchConfig& c, WorkloadSpec&, const std::string& v) {
         c.lineSize = parseU32("lineSize", v);
         c.mem.lineSize = c.lineSize;
     }},
    VORTEX_U32_FIELD(icacheSize, "L1I size (bytes)"),
    VORTEX_U32_FIELD(icacheWays, "L1I associativity"),
    VORTEX_U32_FIELD(dcacheSize, "L1D size (bytes)"),
    VORTEX_U32_FIELD(dcacheWays, "L1D associativity"),
    VORTEX_U32_FIELD(dcacheBanks, "L1D bank count"),
    VORTEX_U32_FIELD(dcachePorts, "L1D virtual ports per bank (Fig. 19)"),
    VORTEX_U32_FIELD(mshrEntries, "MSHR entries per bank"),

    // Shared memory.
    VORTEX_U32_FIELD(smemSize, "per-core scratchpad size (bytes)"),
    VORTEX_U32_FIELD(smemLatency, "scratchpad latency (cycles)"),

    // Optional cache hierarchy.
    VORTEX_BOOL_FIELD(l2Enabled, "attach a per-cluster L2"),
    VORTEX_U32_FIELD(l2Size, "L2 size (bytes)"),
    VORTEX_U32_FIELD(l2Banks, "L2 bank count"),
    VORTEX_U32_FIELD(l2Ways, "L2 associativity"),
    VORTEX_BOOL_FIELD(l3Enabled, "attach a device-level L3"),
    VORTEX_U32_FIELD(l3Size, "L3 size (bytes)"),
    VORTEX_U32_FIELD(l3Banks, "L3 bank count"),
    VORTEX_U32_FIELD(l3Ways, "L3 associativity"),

    // Board memory.
    VORTEX_U32_FIELD(mem.latency, "board-memory latency (cycles)"),
    VORTEX_U32_FIELD(mem.busWidth, "bytes per channel per cycle"),
    VORTEX_U32_FIELD(mem.numChannels, "independent memory channels"),
    VORTEX_U32_FIELD(mem.queueDepth, "memory input-queue depth"),

    // Texture + host backend.
    VORTEX_BOOL_FIELD(texEnabled, "build the per-core texture units"),
    VORTEX_BOOL_FIELD(parallelTick, "tick cores on a host thread pool"),
    VORTEX_U32_FIELD(tickThreads, "pool size (0 = host CPUs)"),

    // Observability. The config field is 64-bit; parse it as such.
    {"sampleInterval", "cycles between counter snapshots (0 = off)",
     [](core::ArchConfig& c, WorkloadSpec&, const std::string& v) {
         try {
             size_t pos = 0;
             c.sampleInterval = std::stoull(v, &pos);
             if (pos != v.size())
                 throw std::invalid_argument(v);
         } catch (const std::exception&) {
             fatal("sweep field 'sampleInterval': cannot parse '", v,
                   "' as an unsigned integer");
         }
     }},

    // Workload selection.
    {"workload", "workload family (rodinia | texture)",
     [](core::ArchConfig&, WorkloadSpec& w, const std::string& v) {
         if (v == "rodinia")
             w.kind = WorkloadSpec::Kind::Rodinia;
         else if (v == "texture")
             w.kind = WorkloadSpec::Kind::Texture;
         else
             fatal("sweep field 'workload': unknown family '", v,
                   "' (rodinia | texture)");
     }},
    {"kernel", "Rodinia kernel name (implies workload=rodinia)",
     [](core::ArchConfig&, WorkloadSpec& w, const std::string& v) {
         w.kind = WorkloadSpec::Kind::Rodinia;
         w.kernel = v;
     }},
    {"scale", "Rodinia problem-size multiplier",
     [](core::ArchConfig&, WorkloadSpec& w, const std::string& v) {
         w.scale = parseU32("scale", v);
     }},
    {"texFilter", "texture filtering (point | bilinear | trilinear; "
                  "implies workload=texture)",
     [](core::ArchConfig&, WorkloadSpec& w, const std::string& v) {
         w.kind = WorkloadSpec::Kind::Texture;
         w.texFilter = parseTexFilter(v);
     }},
    {"texHw", "1 = hardware `tex` instruction, 0 = software sampler",
     [](core::ArchConfig&, WorkloadSpec& w, const std::string& v) {
         w.texHw = parseBool("texHw", v);
     }},
    {"texSize", "square texture/render-target size (power of two)",
     [](core::ArchConfig&, WorkloadSpec& w, const std::string& v) {
         w.texSize = parseU32("texSize", v);
     }},
    {"program", "assembly file run through the object pipeline instead "
                "of the kernel's built-in source (kernel still selects "
                "the argument/verification harness)",
     [](core::ArchConfig&, WorkloadSpec& w, const std::string& v) {
         w.program = v;
         w.programSource = loadProgramSource(v);
     }},
    {"check", "harness-free result check for program workloads "
              "(selfcheck | memcmp:ADDR:LEN:FNV)",
     [](core::ArchConfig&, WorkloadSpec& w, const std::string& v) {
         // Validate eagerly so spec files report malformed values with
         // file:line:col; the raw text is what gets hashed/serialized.
         parseCheckValue("sweep field 'check'", v);
         w.check = v;
     }},

    // Fault injection (docs/ROBUSTNESS.md; [faults] in spec files).
    {"faults.seed", "fault-injection PRNG seed selecting the upsets",
     [](core::ArchConfig&, WorkloadSpec& w, const std::string& v) {
         w.faults.seed = parseU64("faults.seed", v);
     }},
    {"faults.count", "single-bit upsets to inject (0 = off)",
     [](core::ArchConfig&, WorkloadSpec& w, const std::string& v) {
         w.faults.count = parseU32("faults.count", v);
     }},
    {"faults.window", "trigger-cycle window for injections (0 = default)",
     [](core::ArchConfig&, WorkloadSpec& w, const std::string& v) {
         w.faults.window = parseU64("faults.window", v);
     }},
    {"faults.watchdog", "cycle watchdog override for hang detection "
                        "(0 = runner default)",
     [](core::ArchConfig&, WorkloadSpec& w, const std::string& v) {
         w.faults.watchdog = parseU64("faults.watchdog", v);
     }},
};

#undef VORTEX_U32_FIELD
#undef VORTEX_BOOL_FIELD

/** FNV-1a 64-bit. */
uint64_t
fnv1a(const std::string& s)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace

std::string
resolveProgramPath(const std::string& path)
{
    auto exists = [](const std::string& p) {
        return static_cast<bool>(std::ifstream(p));
    };
    if (exists(path))
        return path;
    if (const char* env = std::getenv("VORTEX_PROGRAM_PATH")) {
        std::string prefixes = env;
        size_t start = 0;
        while (start <= prefixes.size()) {
            size_t colon = prefixes.find(':', start);
            std::string prefix =
                prefixes.substr(start, colon == std::string::npos
                                           ? std::string::npos
                                           : colon - start);
            if (!prefix.empty()) {
                std::string candidate = prefix + "/" + path;
                if (exists(candidate))
                    return candidate;
            }
            if (colon == std::string::npos)
                break;
            start = colon + 1;
        }
    }
    return path;
}

namespace {

/** Strict hex parse (optional 0x prefix, whole string must consume);
 *  fatal on failure, naming @p what. */
uint64_t
parseHexValue(const std::string& what, const std::string& value)
{
    std::string digits = value;
    if (digits.size() > 2 && digits[0] == '0' &&
        (digits[1] == 'x' || digits[1] == 'X'))
        digits = digits.substr(2);
    if (digits.empty() || digits.size() > 16)
        fatal(what, ": cannot parse '", value, "' as a hex number");
    uint64_t v = 0;
    for (char c : digits) {
        int d;
        if (c >= '0' && c <= '9')
            d = c - '0';
        else if (c >= 'a' && c <= 'f')
            d = c - 'a' + 10;
        else if (c >= 'A' && c <= 'F')
            d = c - 'A' + 10;
        else
            fatal(what, ": cannot parse '", value, "' as a hex number");
        v = (v << 4) | static_cast<uint64_t>(d);
    }
    return v;
}

} // namespace

CheckSpec
parseCheckValue(const std::string& what, const std::string& value)
{
    CheckSpec spec;
    if (value.empty())
        return spec;
    if (value == "selfcheck") {
        spec.kind = CheckSpec::Kind::Self;
        return spec;
    }
    const std::string prefix = "memcmp:";
    if (value.rfind(prefix, 0) == 0) {
        std::string rest = value.substr(prefix.size());
        size_t c1 = rest.find(':');
        size_t c2 = c1 == std::string::npos ? std::string::npos
                                            : rest.find(':', c1 + 1);
        if (c1 == std::string::npos || c2 == std::string::npos ||
            rest.find(':', c2 + 1) != std::string::npos)
            fatal(what, ": '", value,
                  "' is not of the form memcmp:ADDR:LEN:FNV");
        spec.kind = CheckSpec::Kind::Memcmp;
        uint64_t addr = parseHexValue(what, rest.substr(0, c1));
        uint64_t len = parseHexValue(what, rest.substr(c1 + 1,
                                                       c2 - c1 - 1));
        if (addr > UINT32_MAX || len > UINT32_MAX)
            fatal(what, ": '", value,
                  "' ADDR/LEN exceed the 32-bit address space");
        spec.addr = static_cast<Addr>(addr);
        spec.len = static_cast<uint32_t>(len);
        spec.fnv = parseHexValue(what, rest.substr(c2 + 1));
        return spec;
    }
    fatal(what, ": unknown check '", value,
          "' (selfcheck | memcmp:ADDR:LEN:FNV)");
}

std::string
loadProgramSource(const std::string& path)
{
    std::string resolved = resolveProgramPath(path);
    std::ifstream in(resolved, std::ios::binary);
    if (!in)
        fatal("cannot open program file '", path,
              "' (also searched $VORTEX_PROGRAM_PATH prefixes)");
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

const char*
schedPolicyName(core::SchedPolicy p)
{
    return p == core::SchedPolicy::RoundRobin ? "roundrobin"
                                              : "hierarchical";
}

const char*
texFilterName(runtime::TexFilterMode m)
{
    switch (m) {
    case runtime::TexFilterMode::Point:
        return "point";
    case runtime::TexFilterMode::Bilinear:
        return "bilinear";
    case runtime::TexFilterMode::Trilinear:
        return "trilinear";
    }
    return "?";
}

std::string
workloadKernelName(const WorkloadSpec& w)
{
    if (w.kind == WorkloadSpec::Kind::Rodinia)
        return w.kernel;
    return std::string("tex_") + texFilterName(w.texFilter) +
           (w.texHw ? "_hw" : "_sw");
}

std::string
WorkloadSpec::describe() const
{
    std::ostringstream os;
    if (kind == Kind::Rodinia) {
        os << kernel;
        if (scale != 1)
            os << " x" << scale;
    } else {
        os << "texture " << texFilterName(texFilter)
           << (texHw ? " hw " : " sw ") << texSize;
    }
    if (!program.empty())
        os << " @" << program;
    if (!check.empty())
        os << " [" << check << "]";
    return os.str();
}

namespace {

/** Failed RunResult of class @p status, with whatever counters the
 *  device accumulated before the run ended. */
runtime::RunResult
failedResult(runtime::Device& dev, RunStatus status,
             const std::string& what)
{
    runtime::RunResult r;
    r.ok = false;
    r.status = status;
    r.error = what;
    r.cycles = dev.processor().cycles();
    r.threadInstrs = dev.processor().threadInstrs();
    r.ipc = dev.processor().ipc();
    return r;
}

/** Memory-word upsets target this many words from startPC — enough to
 *  cover the image (code + data) of every shipped guest program. */
constexpr uint32_t kFaultMemWords = 0x4000 / 4;

} // namespace

runtime::RunResult
WorkloadSpec::run(runtime::Device& dev) const
{
    try {
        if (faults.watchdog)
            dev.setCycleLimit(faults.watchdog);
        if (faults.count)
            faults::FaultInjector::install(
                faults, dev.processor(), dev.processor().config().startPC,
                kFaultMemWords);
        if (!program.empty())
            dev.setKernelOverride(programSource, program);
        if (!check.empty()) {
            // Harness-free path: the guest program is the workload.
            if (program.empty())
                fatal("workload check '", check,
                      "' requires a program file ([workload] program = "
                      "...)");
            CheckSpec c = parseCheckValue("workload check", check);
            if (c.kind == CheckSpec::Kind::Self)
                return runtime::runSelfCheck(dev);
            return runtime::runMemcmp(dev, c.addr, c.len, c.fnv);
        }
        if (kind == Kind::Rodinia)
            return runtime::runRodinia(dev, kernel, scale);
        return runtime::runTexture(dev, texFilter, texHw, texSize);
    } catch (const SimError& e) {
        // Structured run-path failure (watchdog, guest trap): one failed
        // row, not a campaign abort (docs/ROBUSTNESS.md).
        return failedResult(dev, e.status(), e.what());
    } catch (const FatalError& e) {
        // Anything else fatal on the run path is a host-side error.
        return failedResult(dev, RunStatus::HostError, e.what());
    }
}

Axis
Axis::sweep(const std::string& field, const std::vector<std::string>& values)
{
    Axis a;
    a.name = field;
    for (const std::string& v : values)
        a.points.push_back(AxisPoint{v, {{field, v}}});
    return a;
}

Axis
Axis::sweepU32(const std::string& field, const std::vector<uint32_t>& values)
{
    std::vector<std::string> vs;
    for (uint32_t v : values)
        vs.push_back(std::to_string(v));
    return sweep(field, vs);
}

std::string
RunSpec::id() const
{
    std::string s;
    for (const auto& [axis, label] : coords) {
        (void)axis;
        if (!s.empty())
            s += '/';
        s += label;
    }
    return s.empty() ? workload.describe() : s;
}

std::string
RunSpec::canonical() const
{
    // Serialize EVERY field. When ArchConfig or WorkloadSpec grows a knob,
    // add it here (and bump the version tag if an old serialization would
    // be ambiguous) — tests/test_sweep.cpp guards the differentiation
    // property for the swept fields.
    const core::ArchConfig& c = config;
    const WorkloadSpec& w = workload;
    std::ostringstream os;
    os << "vortex-run v2\n"; // v2: added sampleInterval
    os << "numThreads = " << c.numThreads << "\n"
       << "numWarps = " << c.numWarps << "\n"
       << "numCores = " << c.numCores << "\n"
       << "coresPerCluster = " << c.coresPerCluster << "\n"
       << "ibufferDepth = " << c.ibufferDepth << "\n"
       << "lsuDepth = " << c.lsuDepth << "\n"
       << "schedPolicy = " << schedPolicyName(c.schedPolicy) << "\n"
       << "lat.alu = " << c.lat.alu << "\n"
       << "lat.mul = " << c.lat.mul << "\n"
       << "lat.div = " << c.lat.div << "\n"
       << "lat.fpu = " << c.lat.fpu << "\n"
       << "lat.fcvt = " << c.lat.fcvt << "\n"
       << "lat.fdiv = " << c.lat.fdiv << "\n"
       << "lat.fsqrt = " << c.lat.fsqrt << "\n"
       << "lat.sfu = " << c.lat.sfu << "\n"
       << "lineSize = " << c.lineSize << "\n"
       << "icacheSize = " << c.icacheSize << "\n"
       << "icacheWays = " << c.icacheWays << "\n"
       << "dcacheSize = " << c.dcacheSize << "\n"
       << "dcacheWays = " << c.dcacheWays << "\n"
       << "dcacheBanks = " << c.dcacheBanks << "\n"
       << "dcachePorts = " << c.dcachePorts << "\n"
       << "mshrEntries = " << c.mshrEntries << "\n"
       << "smemSize = " << c.smemSize << "\n"
       << "smemLatency = " << c.smemLatency << "\n"
       << "l2Enabled = " << c.l2Enabled << "\n"
       << "l2Size = " << c.l2Size << "\n"
       << "l2Banks = " << c.l2Banks << "\n"
       << "l2Ways = " << c.l2Ways << "\n"
       << "l3Enabled = " << c.l3Enabled << "\n"
       << "l3Size = " << c.l3Size << "\n"
       << "l3Banks = " << c.l3Banks << "\n"
       << "l3Ways = " << c.l3Ways << "\n"
       << "mem.latency = " << c.mem.latency << "\n"
       << "mem.lineSize = " << c.mem.lineSize << "\n"
       << "mem.busWidth = " << c.mem.busWidth << "\n"
       << "mem.numChannels = " << c.mem.numChannels << "\n"
       << "mem.queueDepth = " << c.mem.queueDepth << "\n"
       << "texEnabled = " << c.texEnabled << "\n"
       << "startPC = " << c.startPC << "\n"
       << "smemBase = " << c.smemBase << "\n"
       << "sampleInterval = " << c.sampleInterval << "\n";
    // parallelTick / tickThreads are deliberately EXCLUDED: the backends
    // are bit-identical (core/tick_engine.h), so a cached serial result is
    // valid for a parallel-backend run of the same machine and vice versa.
    // sampleInterval IS included even though it cannot change simulation
    // results: a cached record must carry the time series the request
    // asks for, and the series shape depends on the interval.
    os << "workload = "
       << (w.kind == WorkloadSpec::Kind::Rodinia ? "rodinia" : "texture")
       << "\n";
    if (w.kind == WorkloadSpec::Kind::Rodinia)
        os << "kernel = " << w.kernel << "\n"
           << "scale = " << w.scale << "\n";
    else
        os << "texFilter = " << texFilterName(w.texFilter) << "\n"
           << "texHw = " << w.texHw << "\n"
           << "texSize = " << w.texSize << "\n";
    if (!w.program.empty()) {
        // The cache key must change when the FILE CONTENT changes, not
        // just the path — hash the loaded source into the preimage.
        char fnv[17];
        std::snprintf(fnv, sizeof(fnv), "%016llx",
                      static_cast<unsigned long long>(
                          fnv1a(w.programSource)));
        os << "program = " << w.program << "\n"
           << "program.fnv = " << fnv << "\n";
    }
    if (!w.check.empty())
        os << "check = " << w.check << "\n";
    // Fault-injection fields, only when set: a clean run's preimage (and
    // so its cache key) is byte-identical to pre-faults versions, while
    // every distinct injection gets its own key. The watchdog is
    // included because it changes what a long run *returns* (timeout),
    // even though it cannot change a completing run's results.
    if (w.faults.any())
        os << "faults.seed = " << w.faults.seed << "\n"
           << "faults.count = " << w.faults.count << "\n"
           << "faults.window = " << w.faults.window << "\n"
           << "faults.watchdog = " << w.faults.watchdog << "\n";
    return os.str();
}

std::string
RunSpec::contentHash() const
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(fnv1a(canonical())));
    return buf;
}

size_t
SweepSpec::runCount() const
{
    size_t n = 1;
    for (const Axis& a : axes)
        n *= a.points.size();
    return n;
}

std::vector<RunSpec>
SweepSpec::expand() const
{
    for (const Axis& a : axes)
        if (a.points.empty())
            fatal("sweep '", name, "': axis '", a.name, "' has no points");

    std::vector<RunSpec> runs;
    runs.reserve(runCount());
    std::vector<size_t> idx(axes.size(), 0);
    while (true) {
        RunSpec r;
        r.config = base;
        r.workload = baseWorkload;
        for (size_t a = 0; a < axes.size(); ++a) {
            const AxisPoint& p = axes[a].points[idx[a]];
            r.coords.emplace_back(axes[a].name, p.label);
            for (const auto& [field, value] : p.sets)
                if (!applyField(r.config, r.workload, field, value))
                    fatal("sweep '", name, "': axis '", axes[a].name,
                          "' point '", p.label, "': unknown field '",
                          field, "'");
        }
        runs.push_back(std::move(r));

        // Row-major increment: the last axis varies fastest.
        size_t a = axes.size();
        while (a > 0) {
            --a;
            if (++idx[a] < axes[a].points.size())
                break;
            idx[a] = 0;
            if (a == 0)
                return runs;
        }
        if (axes.empty())
            return runs;
    }
}

bool
applyField(core::ArchConfig& cfg, WorkloadSpec& wl, const std::string& name,
           const std::string& value)
{
    for (const FieldDef& f : kFields) {
        if (name == f.name) {
            f.apply(cfg, wl, value);
            return true;
        }
    }
    return false;
}

const std::vector<FieldInfo>&
sweepableFields()
{
    static const std::vector<FieldInfo> infos = [] {
        std::vector<FieldInfo> v;
        for (const FieldDef& f : kFields)
            v.push_back(FieldInfo{f.name, f.help});
        return v;
    }();
    return infos;
}

} // namespace vortex::sweep
