/**
 * @file
 * CacheStore implementation: v2 entry I/O, the manifest, pruning, and
 * cross-directory merge. See cache.h for the on-disk format.
 */

#include "sweep/cache.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/log.h"
#include "sweep/report.h"

namespace vortex::sweep {

namespace {

// v2: "campaign" provenance line + the time-series block. v1 entries
// fail the magic check and simply miss (the run is re-simulated).
// Provenance lines added since (host_seconds, kernel, est_units) ride
// the unknown-tag rule and do not bump the version.
constexpr const char* kCacheMagic = "vortex-sweep-cache v2";

/** Mirror of Processor::ipc() so cache-restored records reproduce the
 *  exact double a fresh run reports. */
double
ipcOf(uint64_t threadInstrs, uint64_t cycles)
{
    return cycles == 0 ? 0.0
                       : static_cast<double>(threadInstrs) /
                             static_cast<double>(cycles);
}

/** Shortest round-trippable formatting for stored doubles. */
std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/** A per-thread-unique temp-file suffix (rename is the commit point). */
std::string
tmpSuffix()
{
    return ".tmp." + std::to_string(::getpid()) + "." +
           std::to_string(
               std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

/** @p path's mtime as seconds since the Unix epoch (0 on error). */
int64_t
mtimeSeconds(const std::filesystem::path& path)
{
    std::error_code ec;
    auto ftime = std::filesystem::last_write_time(path, ec);
    if (ec)
        return 0;
    // Portable file_clock -> system_clock conversion (no C++20
    // clock_cast dependency): rebase through the two clocks' "now".
    auto sys = std::chrono::time_point_cast<std::chrono::seconds>(
        ftime - std::filesystem::file_time_type::clock::now() +
        std::chrono::system_clock::now());
    return sys.time_since_epoch().count();
}

/** @p epochSeconds as "YYYY-MM-DDThh:mm:ssZ". */
std::string
isoUtc(int64_t epochSeconds)
{
    std::time_t t = static_cast<std::time_t>(epochSeconds);
    std::tm tm{};
    gmtime_r(&t, &tm);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
    return buf;
}

/**
 * Validate one on-disk entry file for merging: correct magic, a `hash`
 * provenance line equal to @p expectHash (the file's basename), and a
 * complete `end`-terminated payload. Returns false on any defect.
 */
bool
validEntryFile(const std::filesystem::path& path,
               const std::string& expectHash)
{
    std::ifstream in(path);
    std::string line;
    if (!in || !std::getline(in, line) || line != kCacheMagic)
        return false;
    bool hashOk = false, complete = false;
    while (std::getline(in, line)) {
        std::istringstream ls(line);
        std::string tag;
        ls >> tag;
        if (tag == "hash") {
            std::string h;
            ls >> h;
            hashOk = (h == expectHash);
        } else if (tag == "end") {
            complete = true;
        }
    }
    return hashOk && complete;
}

} // namespace

std::string
CacheStore::entryPath(const std::string& hash) const
{
    return dir_ + "/" + hash + ".run";
}

bool
CacheStore::contains(const std::string& hash) const
{
    if (!enabled())
        return false;
    std::ifstream in(entryPath(hash));
    std::string line;
    return in && std::getline(in, line) && line == kCacheMagic;
}

double
CacheStore::recordedHostSeconds(const std::string& hash) const
{
    if (!enabled())
        return -1.0;
    std::ifstream in(entryPath(hash));
    std::string line;
    if (!in || !std::getline(in, line) || line != kCacheMagic)
        return -1.0;
    while (std::getline(in, line)) {
        std::istringstream ls(line);
        std::string tag;
        ls >> tag;
        if (tag == "host_seconds") {
            double s = 0.0;
            ls >> s;
            return s;
        }
        if (tag == "cycles")
            break; // provenance lines precede the payload
    }
    // A valid entry that predates the host_seconds line: still a hit —
    // report "recorded cost unknown", not "absent", so the scheduler
    // prices it like any other hit.
    return 0.0;
}

bool
CacheStore::load(const RunSpec& spec, RunRecord& out) const
{
    if (!enabled())
        return false;
    std::ifstream in(entryPath(spec.contentHash()));
    if (!in)
        return false;

    std::string line;
    if (!std::getline(in, line) || line != kCacheMagic)
        return false;

    RunRecord rec;
    rec.spec = spec;
    rec.fromCache = true;
    rec.result.ok = true;
    bool complete = false;
    while (std::getline(in, line)) {
        std::istringstream ls(line);
        std::string tag;
        ls >> tag;
        if (tag == "hash") {
            std::string h;
            ls >> h;
            if (h != spec.contentHash())
                return false; // foreign entry (renamed file?)
        } else if (tag == "cycles") {
            ls >> rec.result.cycles;
        } else if (tag == "thread_instrs") {
            ls >> rec.result.threadInstrs;
        } else if (tag == "stat") {
            std::string key;
            uint64_t value = 0;
            ls >> key >> value;
            rec.stats.counter(key) = value;
        } else if (tag == "sample_interval") {
            ls >> rec.series.interval;
        } else if (tag == "sample_cycles") {
            uint64_t c = 0;
            while (ls >> c)
                rec.series.sampleCycles.push_back(c);
        } else if (tag == "series") {
            std::string key;
            ls >> key;
            rec.series.keys.push_back(key);
            rec.series.deltas.emplace_back();
            uint64_t d = 0;
            while (ls >> d)
                rec.series.deltas.back().push_back(d);
        } else if (tag == "end") {
            complete = true;
        }
    }
    if (!complete)
        return false; // truncated write
    // A well-formed series is rectangular: every delta row as long as the
    // cycle-stamp vector. Treat anything else as corruption -> miss.
    for (const auto& row : rec.series.deltas)
        if (row.size() != rec.series.numSamples())
            return false;
    rec.result.ipc = ipcOf(rec.result.threadInstrs, rec.result.cycles);
    out = std::move(rec);
    return true;
}

void
CacheStore::store(const RunRecord& record,
                  const std::string& campaignName) const
{
    if (!enabled() || !record.result.ok)
        return;
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);

    const std::string hash = record.spec.contentHash();
    const std::string path = entryPath(hash);
    const std::string tmp = path + tmpSuffix();
    {
        std::ofstream outf(tmp, std::ios::trunc);
        if (!outf)
            return; // cache is best-effort; the run still succeeded
        outf << kCacheMagic << "\n";
        outf << "hash " << hash << "\n";
        outf << "id " << record.spec.id() << "\n";
        outf << "campaign " << campaignName << "\n";
        // Provenance, not payload: what the simulation cost this host
        // (host_seconds), which registry kernel it ran, and the static
        // cost estimate at store time — together the calibration data
        // of CostModel::fromCache. Readers that predate a tag ignore it
        // (unknown-tag rule), so the cache format stays v2.
        outf << "host_seconds " << fmtDouble(record.hostSeconds) << "\n";
        outf << "kernel " << workloadKernelName(record.spec.workload)
             << "\n";
        outf << "est_units " << fmtDouble(estimateRunCost(record.spec))
             << "\n";
        outf << "cycles " << record.result.cycles << "\n";
        outf << "thread_instrs " << record.result.threadInstrs << "\n";
        for (const auto& [k, v] : record.stats.all())
            outf << "stat " << k << " " << v << "\n";
        if (record.series.interval != 0) {
            outf << "sample_interval " << record.series.interval << "\n";
            outf << "sample_cycles";
            for (uint64_t c : record.series.sampleCycles)
                outf << " " << c;
            outf << "\n";
            for (size_t k = 0; k < record.series.keys.size(); ++k) {
                outf << "series " << record.series.keys[k];
                for (uint64_t d : record.series.deltas[k])
                    outf << " " << d;
                outf << "\n";
            }
        }
        outf << "end\n";
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec)
        std::filesystem::remove(tmp, ec);
}

std::vector<CacheEntryInfo>
CacheStore::entries() const
{
    std::vector<CacheEntryInfo> out;
    if (!enabled())
        return out;
    std::error_code ec;
    for (const auto& de :
         std::filesystem::directory_iterator(dir_, ec)) {
        if (!de.is_regular_file() || de.path().extension() != ".run")
            continue;
        // Same gate as load()/mergeFrom(): magic, hash matching the file
        // name, and a complete `end`-terminated payload — a torn entry
        // from a crash mid-write is invisible here too, not just a miss.
        if (!validEntryFile(de.path().string(), de.path().stem().string()))
            continue;
        std::ifstream in(de.path());
        std::string line;
        if (!in || !std::getline(in, line) || line != kCacheMagic)
            continue; // stale-format or foreign file; not an entry
        CacheEntryInfo info;
        info.hash = de.path().stem().string();
        info.mtime = mtimeSeconds(de.path());
        while (std::getline(in, line)) {
            std::istringstream ls(line);
            std::string tag;
            ls >> tag;
            if (tag == "id")
                std::getline(ls >> std::ws, info.id);
            else if (tag == "campaign")
                std::getline(ls >> std::ws, info.campaign);
            else if (tag == "host_seconds")
                ls >> info.hostSeconds;
            else if (tag == "kernel")
                ls >> info.kernel;
            else if (tag == "est_units")
                ls >> info.estUnits;
            else if (tag == "cycles")
                break; // provenance lines precede the payload
        }
        out.push_back(std::move(info));
    }
    std::sort(out.begin(), out.end(),
              [](const CacheEntryInfo& a, const CacheEntryInfo& b) {
                  return a.hash < b.hash;
              });
    return out;
}

void
CacheStore::writeManifest() const
{
    if (!enabled())
        return;
    std::vector<CacheEntryInfo> list = entries();
    // Unlike cache entries (same hash -> same bytes), two processes'
    // manifests can genuinely differ mid-churn, so the temp name must be
    // unique across processes, not just threads.
    const std::string path = dir_ + "/manifest.json";
    const std::string tmp = path + tmpSuffix();
    {
        std::ofstream os(tmp, std::ios::trunc);
        if (!os)
            return; // the manifest is best-effort metadata
        os << "{\n  \"entries\": [\n";
        for (size_t i = 0; i < list.size(); ++i) {
            const CacheEntryInfo& e = list[i];
            os << "    {\"hash\": \"" << jsonEscape(e.hash)
               << "\", \"id\": \"" << jsonEscape(e.id)
               << "\", \"campaign\": \"" << jsonEscape(e.campaign)
               << "\", \"written\": \"" << isoUtc(e.mtime) << "\"}"
               << (i + 1 < list.size() ? "," : "") << "\n";
        }
        os << "  ]\n}\n";
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec)
        std::filesystem::remove(tmp, ec);
}

size_t
CacheStore::prune(double olderThanDays) const
{
    if (!enabled())
        return 0;
    const int64_t cutoff =
        olderThanDays < 0.0
            ? INT64_MAX // prune everything
            : std::chrono::duration_cast<std::chrono::seconds>(
                  std::chrono::system_clock::now().time_since_epoch())
                      .count() -
                  static_cast<int64_t>(olderThanDays * 86400.0);
    size_t removed = 0;
    std::error_code ec;
    for (const auto& de :
         std::filesystem::directory_iterator(dir_, ec)) {
        if (!de.is_regular_file())
            continue;
        const std::string fname = de.path().filename().string();
        // Sweep leftover temp files from interrupted writes regardless
        // of age; they are never valid entries.
        if (fname.find(".run.tmp.") != std::string::npos ||
            fname.find("manifest.json.tmp.") != std::string::npos) {
            std::filesystem::remove(de.path(), ec);
            continue;
        }
        if (de.path().extension() != ".run")
            continue;
        // Torn entries (bad magic, wrong hash, missing `end`) are swept
        // regardless of age: load() and mergeFrom() already refuse
        // them, so they are dead weight a crash left behind.
        if (!validEntryFile(de.path(), de.path().stem().string())) {
            std::filesystem::remove(de.path(), ec);
            if (!ec)
                ++removed;
            continue;
        }
        if (mtimeSeconds(de.path()) <= cutoff) {
            std::filesystem::remove(de.path(), ec);
            if (!ec)
                ++removed;
        }
    }
    writeManifest();
    return removed;
}

CacheMergeStats
CacheStore::mergeFrom(const std::string& srcDir) const
{
    if (!enabled())
        fatal("cache merge: destination store is disabled (no directory)");
    std::error_code ec;
    if (!std::filesystem::is_directory(srcDir, ec))
        fatal("cache merge: source '", srcDir, "' is not a directory");
    if (std::filesystem::weakly_canonical(srcDir, ec) ==
        std::filesystem::weakly_canonical(dir_, ec))
        fatal("cache merge: source and destination are the same "
              "directory '", dir_, "'");
    std::filesystem::create_directories(dir_, ec);

    CacheMergeStats stats;
    // Deterministic import order (directory iteration order is not).
    std::vector<std::filesystem::path> files;
    for (const auto& de :
         std::filesystem::directory_iterator(srcDir, ec)) {
        if (de.is_regular_file() && de.path().extension() == ".run")
            files.push_back(de.path());
    }
    std::sort(files.begin(), files.end());

    for (const std::filesystem::path& src : files) {
        const std::string hash = src.stem().string();
        if (!validEntryFile(src, hash)) {
            warn("cache merge: rejecting invalid entry ", src.string());
            ++stats.rejected;
            continue;
        }
        if (contains(hash)) {
            // Content-addressed: an existing entry for this hash
            // describes the same simulation; keep the local bytes.
            ++stats.skipped;
            continue;
        }
        const std::string dst = entryPath(hash);
        const std::string tmp = dst + tmpSuffix();
        std::filesystem::copy_file(
            src, tmp, std::filesystem::copy_options::overwrite_existing,
            ec);
        if (ec) {
            warn("cache merge: cannot copy ", src.string(), ": ",
                 ec.message());
            ++stats.rejected;
            continue;
        }
        std::filesystem::rename(tmp, dst, ec);
        if (ec) {
            std::filesystem::remove(tmp, ec);
            warn("cache merge: cannot commit ", dst, ": ", ec.message());
            ++stats.rejected;
            continue;
        }
        ++stats.imported;
    }
    writeManifest();
    return stats;
}

} // namespace vortex::sweep
