/**
 * @file
 * CacheStore — the campaign result cache as an object.
 *
 * One CacheStore owns one cache directory: entry I/O (load/store of
 * RunRecords keyed by RunSpec::contentHash), the manifest, pruning, and
 * — the fabric primitive — merge/import of entries from other cache
 * directories. It absorbs the free-function cache API that used to live
 * in campaign.h (removed after one release of deprecated forwarding
 * shims) and the ad-hoc read/write paths that used to live inside
 * Campaign.
 *
 * On-disk format (unchanged from the free-function era — v2, one
 * `<hash>.run` text file per entry plus `manifest.json`):
 *
 *     vortex-sweep-cache v2
 *     hash <contentHash>            # provenance lines ...
 *     id <run id>
 *     campaign <campaign name>
 *     host_seconds <double>
 *     kernel <registry kernel name>  # since PR 8; older entries lack it
 *     est_units <double>             # static estimateRunCost at store time
 *     cycles <n>                     # ... payload lines
 *     thread_instrs <n>
 *     stat <key> <value>
 *     sample_interval / sample_cycles / series ...   # when sampled
 *     end
 *
 * Readers skip unknown tags, so adding provenance lines (host_seconds in
 * PR 4, kernel/est_units in PR 8) never bumps the version: old binaries
 * still hit on new entries and vice versa. Entries are content-addressed
 * — the same hash always describes the same simulation — which is what
 * makes cache directories *mergeable artifacts*: shipping shard caches
 * between hosts and merging them (mergeFrom) reconstructs exactly the
 * records a single host would have produced.
 *
 * All writes are atomic (temp file + rename), so concurrent campaigns —
 * or a campaign and a merge — may share a directory.
 */

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sweep/campaign.h"

namespace vortex::sweep {

/** Outcome of one CacheStore::mergeFrom call. */
struct CacheMergeStats
{
    size_t imported = 0; ///< entries copied into the destination
    size_t skipped = 0;  ///< already present (same content hash)
    size_t rejected = 0; ///< invalid entries refused (bad magic, foreign
                         ///< hash line, or truncated payload)
};

/**
 * The campaign result cache as an object: owns a directory of
 * content-addressed run entries. A default-constructed (or empty-dir)
 * store is disabled: loads miss, stores are no-ops, maintenance is a
 * no-op. Copyable; holds no open handles between calls.
 */
class CacheStore
{
  public:
    /** A disabled store (no directory). */
    CacheStore() = default;

    /** A store over @p dir (created lazily on first write); an empty
     *  @p dir makes a disabled store. */
    explicit CacheStore(std::string dir) : dir_(std::move(dir)) {}

    /** Whether this store has a directory at all. */
    bool enabled() const { return !dir_.empty(); }

    /** The cache directory ("" when disabled). */
    const std::string& dir() const { return dir_; }

    /** Path of the entry file for @p hash (meaningless when disabled). */
    std::string entryPath(const std::string& hash) const;

    /**
     * Restore the cached record for @p spec into @p out.
     * @return true on a hit: a complete, well-formed entry whose
     *         recorded hash matches @p spec's content hash. Any defect
     *         (missing, truncated, foreign, corrupt series) is a miss,
     *         never an error — the run is simply re-simulated.
     */
    bool load(const RunSpec& spec, RunRecord& out) const;

    /**
     * Store @p record under its spec's content hash, tagged with
     * @p campaignName and the run's provenance (host_seconds, kernel,
     * est_units — the cost-model calibration inputs). Only verified
     * (ok) records are stored; writes are atomic and best-effort (a
     * failed write never fails the campaign). No-op when disabled.
     */
    void store(const RunRecord& record,
               const std::string& campaignName) const;

    /** Whether a valid entry for @p hash exists (magic check only — the
     *  cheap scheduler probe; load() still arbitrates hits). */
    bool contains(const std::string& hash) const;

    /**
     * The simulation wall-clock seconds recorded for @p hash: negative
     * when no valid entry exists, 0 for an entry predating the
     * host_seconds provenance line. A non-negative return means load()
     * will restore the run, so the scheduler prices it at (nearly)
     * zero.
     */
    double recordedHostSeconds(const std::string& hash) const;

    /** All valid entries, sorted by hash (empty when the directory is
     *  missing or the store is disabled). */
    std::vector<CacheEntryInfo> entries() const;

    /**
     * Rewrite `manifest.json` from the entries on disk: one object per
     * cached record (hash, run id, campaign, ISO-8601 UTC timestamp).
     * Atomic and self-healing — it reflects whatever entries exist,
     * including ones written by other campaigns or merged from other
     * hosts. Campaign::run refreshes it after every cached campaign.
     */
    void writeManifest() const;

    /**
     * Delete cached records: all of them, or with @p olderThanDays >= 0
     * only those whose mtime is older than that many days. Torn entries
     * — bad magic, hash not matching the file name, missing `end`
     * terminator (a crash mid-write) — are swept regardless of age, as
     * are leftover temp files; the manifest is rewritten at the end.
     * @return the number of records removed.
     */
    size_t prune(double olderThanDays = -1.0) const;

    /**
     * Import every valid entry of @p srcDir into this store — the
     * fabric's "ship cache dirs, not CSVs" primitive. Each source entry
     * is validated (magic line, `hash` provenance line matching the
     * file name, complete `end`-terminated payload) and copied
     * byte-for-byte via temp file + rename; entries whose hash already
     * exists here are skipped (content-addressed: same hash, same
     * simulation). Invalid entries are rejected, counted, and reported
     * on stderr — never imported. The manifest is rewritten once at
     * the end, so a crash mid-merge leaves a valid store.
     *
     * Merging the caches of shards 0..N-1 of a campaign and re-running
     * the full spec against the merged store is a 100%-hit, byte-
     * identical reconstruction of the single-host outputs (pinned by
     * tests/test_fabric.cpp and the CI `fabric` job).
     *
     * Fatal when @p srcDir does not exist or this store is disabled.
     */
    CacheMergeStats mergeFrom(const std::string& srcDir) const;

  private:
    std::string dir_; ///< cache directory ("" = disabled)
};

} // namespace vortex::sweep
