/**
 * @file
 * Built-in campaign presets: one per paper figure/table plus the cache
 * and pipeline ablations. Each preset either expands to a SweepSpec
 * (simulation campaigns — Figs. 14/18/19/20/21, ablations) or produces a
 * ReportTable directly (the synthesis/area tables 3-5 and Fig. 15, which
 * evaluate the calibrated area model without running the simulator).
 *
 * The bench/ harnesses and the `vortex_sweep` CLI are both thin clients
 * of this registry, so "run one figure" and "run any campaign" share a
 * single definition of every experiment.
 */

#pragma once

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "sweep/campaign.h"
#include "sweep/report.h"
#include "sweep/spec.h"

namespace vortex::sweep {

/**
 * Baseline machine builder: the paper's 4W-4T core (§6.2.1), scaled to
 * @p cores with the evaluation's machine rules — clusters attach an L2
 * from 4 cores (§4.1) and the board becomes the 8-channel Stratix 10
 * above 16 cores (§6.5). Scaling starts from @p base so axis assignments
 * made before a "cores" assignment survive it.
 */
core::ArchConfig baselineConfig(uint32_t cores = 1,
                                core::ArchConfig base = {});

/** The five §6.2.1 design-space geometry labels of Table 3 / Fig. 14
 *  ("4W-4T", ...), as a geometry axis over numWarps/numThreads. */
Axis geometryAxis();

/** The five Rodinia kernels plotted in Fig. 14 / Fig. 19. */
const std::vector<std::string>& fig14Kernels();

/** All seven Rodinia kernels of the scaling study (Fig. 18). */
const std::vector<std::string>& fig18Kernels();

//
// Spec builders (parameterized; the registry uses the defaults).
//
SweepSpec fig14Spec(); ///< IPC of the five core geometries x five kernels
SweepSpec fig18Spec(); ///< IPC vs core count (1-16), all seven kernels
SweepSpec fig19Spec(); ///< D$ virtual ports: bank utilization and IPC
SweepSpec fig20Spec(uint32_t size = 64); ///< HW vs SW texture filtering
SweepSpec fig21Spec(bool paperSize = false); ///< memory latency/bandwidth

/** The pinned CI perf-trajectory campaign: three kernels x {1, 2} cores,
 *  test-sized, small enough for every PR. CI runs it with sampling on
 *  and records its `--bench-json` output as the bench trajectory point
 *  (see .github/workflows/ci.yml, job `perf-smoke`). */
SweepSpec perfSmokeSpec();

/** The assembly-toolchain smoke campaign: the seven checked-in `.s`
 *  kernel twins (examples/kernels/) run through the full
 *  assemble -> object -> load pipeline at {1, 2} cores. Each point
 *  must produce the same cycles/instrs as the built-in kernel it
 *  twins; CI runs it from the dumped spec file
 *  (examples/specs/asm_smoke.toml). */
SweepSpec asmSmokeSpec();

/** The harness-free workload-zoo campaign: every `.s`-only workload
 *  (examples/kernels/ programs with no C++ twin) run through the
 *  object pipeline at {1, 2} cores with `check = "selfcheck"` — the
 *  guest verifies its own results through the self-check mailbox
 *  (docs/TOOLCHAIN.md), zero per-workload C++ harness code. CI runs it
 *  from the dumped spec file (examples/specs/workload_zoo.toml). */
SweepSpec workloadZooSpec();

/** The fault-injection smoke campaign: three `.s` guests (bitonic,
 *  reduce_tree, and the non-terminating hang fixture) x eight seeds,
 *  four seeded bit flips per run in a 4000-cycle window with a
 *  100K-cycle watchdog (`[faults]`; docs/ROBUSTNESS.md). Runs are
 *  classified masked / sdc / detected / hang from their (status, ok)
 *  pair by faultClassificationReport(). Deterministic: the same seed
 *  produces byte-identical campaign CSV for any job count, tick
 *  backend, or cache state. CI runs it from the dumped spec file
 *  (examples/specs/fault_smoke.toml, job `fault-matrix`). */
SweepSpec faultSmokeSpec();

/** The fault_smoke report: per-kernel counts of masked / sdc /
 *  detected / hang (see faultSmokeSpec and docs/ROBUSTNESS.md). */
ReportTable faultClassificationReport(const CampaignResult& r);

/** Preset parameters as (key, value) pairs (`--arg size=128`). */
using PresetArgs = std::vector<std::pair<std::string, std::string>>;

/** One runnable experiment in the preset registry. Exactly one of
 *  `sweep` / `table` is set. */
struct Preset
{
    std::string name;        ///< CLI name (e.g. "fig18")
    std::string description; ///< one-liner for --list / the README table
    /** Builds the campaign spec (simulation presets). Fatal on an
     *  argument the preset does not take (fig20: size=N;
     *  fig21: paper=0/1; the rest take none). */
    std::function<SweepSpec(const PresetArgs&)> sweep;
    /** Builds the finished table (area/synthesis presets; take no
     *  arguments). */
    std::function<ReportTable()> table;
    /** Renders the figure-shaped human report from campaign results
     *  (simulation presets only). */
    std::function<ReportTable(const CampaignResult&)> report;
};

/** Every built-in preset, in paper order. */
const std::vector<Preset>& presets();

/** Registry lookup; nullptr when @p name is unknown. The long
 *  bench-harness names are accepted as aliases ("fig18_scaling" ->
 *  "fig18", "table3_core_area" -> "table3", ...). */
const Preset* findPreset(const std::string& name);

/**
 * Generic two-axis IPC pivot: rows = first-axis labels, columns =
 * second-axis labels. The report shape of the ablation presets and the
 * fallback for ad-hoc CLI sweeps with two axes.
 */
ReportTable pivotIpc(const CampaignResult& result);

/**
 * Run preset @p name and print its report to stdout — the whole body of
 * a bench/ harness. The job count comes from the VORTEX_SWEEP_JOBS
 * environment variable (default: host hardware threads); results are
 * identical for any job count.
 * @return a process exit code (0 on success).
 */
int runPresetMain(const std::string& name, const PresetArgs& args = {});

/** runPresetMain for an already-built spec (ad-hoc sweeps); @p report
 *  renders the figure, nullptr prints no report. */
int runSpecMain(const SweepSpec& spec,
                const std::function<ReportTable(const CampaignResult&)>&
                    report);

} // namespace vortex::sweep
