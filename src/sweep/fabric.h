/**
 * @file
 * The campaign fabric's submission service: a long-running daemon that
 * accepts sweep-spec submissions from concurrent clients over a local
 * (AF_UNIX) stream socket, deduplicates identical (config, workload)
 * runs through the content-hash cache, schedules with the LPT cost
 * model, and streams per-run progress and results back as
 * newline-delimited JSON. docs/FABRIC.md is the wire-protocol and
 * workflow reference.
 *
 * Dedup semantics (the "N identical submissions -> 1 simulation"
 * contract): a run is identified by RunSpec::contentHash(). A submitted
 * run is served, in order of preference, from
 *
 *   1. the service's in-memory memo of completed runs,
 *   2. the on-disk CacheStore (when the service was given a cache dir),
 *   3. an identical run already *in flight* for another client — the
 *      submission blocks until that single simulation finishes and
 *      shares its record,
 *   4. a fresh simulation (which then populates memo and cache).
 *
 * Only path 4 simulates, so any number of concurrent or sequential
 * identical submissions cost one simulation. Concurrent distinct
 * simulations across all clients are bounded by ServiceOptions::jobs.
 *
 * Results streamed to one client are the same verified records a local
 * Campaign would produce; every run event carries the run's structured
 * `status` (docs/ROBUSTNESS.md). A submission whose spec text does not
 * parse gets an `error` event immediately; one with failed runs streams
 * each failure's status and ends with an `error` event naming the first
 * — the service never reports results from a wrong simulation, and a
 * poisoned submission never takes the daemon (or other clients) down.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace vortex::sweep {

/** How a Service listens, caches, and bounds concurrency. */
struct ServiceOptions
{
    /** Filesystem path of the AF_UNIX stream socket to listen on
     *  (created on start(), unlinked on stop()). */
    std::string socketPath;
    /** Result-cache directory shared with batch campaigns; "" serves
     *  without an on-disk cache (in-memory memo only). */
    std::string cacheDir;
    /** Maximum concurrent simulations across all clients
     *  (0 = host hardware threads). */
    uint32_t jobs = 1;
    /** Per-event log lines on stderr. */
    bool verbose = false;
    /**
     * Per-simulation wall-clock deadline in seconds (`serve --deadline`;
     * 0 = none). A simulation that exceeds it is aborted and reported
     * as a RunStatus::Timeout run event — the service's watchdog
     * against a hanging guest monopolizing a job slot forever. Aborted
     * runs are failures and are never cached, so the wall-clock
     * nondeterminism cannot leak into byte-stable outputs
     * (docs/ROBUSTNESS.md).
     */
    uint32_t runDeadlineSeconds = 0;
};

/** Lifetime accounting of one Service (see stats()). */
struct ServiceStats
{
    uint64_t submissions = 0;   ///< submit requests accepted
    uint64_t runsRequested = 0; ///< matrix runs over all submissions
    uint64_t simulated = 0;     ///< runs actually simulated
    uint64_t cacheHits = 0;     ///< runs served from the on-disk cache
    uint64_t memoHits = 0;      ///< runs served from the in-memory memo
    uint64_t dedupJoins = 0;    ///< runs that joined an in-flight twin
    uint64_t errors = 0;        ///< submissions answered with an error
};

/**
 * The campaign submission service (see the file comment for the dedup
 * contract and docs/FABRIC.md for the wire protocol). start() binds the
 * socket and returns; clients are served on background threads until
 * stop() — or until a client sends `{"op": "shutdown"}`. Not copyable.
 */
class Service
{
  public:
    /** Configure a service (no sockets touched until start()). */
    explicit Service(ServiceOptions opts);
    /** stop()s if still running. */
    ~Service();

    Service(const Service&) = delete;            ///< not copyable
    Service& operator=(const Service&) = delete; ///< not copyable

    /** Bind + listen on ServiceOptions::socketPath and spawn the accept
     *  loop. Fatal when the socket cannot be created (e.g. the path is
     *  taken by a live service). */
    void start();

    /** Stop accepting, disconnect clients, join every service thread,
     *  and unlink the socket. Idempotent. In-flight simulations finish
     *  first (their results still land in the cache). */
    void stop();

    /** Whether start() has run and stop() has not. */
    bool running() const;

    /** The socket path clients connect to. */
    const std::string& socketPath() const;

    /** Snapshot of the lifetime accounting (thread-safe). */
    ServiceStats stats() const;

    /** Whether a client sent `{"op": "shutdown"}`. serveMain() polls
     *  this to turn a client request into a clean stop(). */
    bool shutdownRequestedByClient() const;

  private:
    struct Impl;                 ///< socket/thread state (fabric.cpp)
    std::unique_ptr<Impl> impl_; ///< pimpl: keeps socket headers out
};

/** What one client submission came back with. */
struct SubmitResult
{
    bool ok = false;      ///< true when a `done` event arrived
    std::string error;    ///< the `error` event's message when !ok
    std::string campaign; ///< campaign name echoed by the service
    uint64_t runs = 0;      ///< matrix size of the submission
    uint64_t simulated = 0; ///< runs the service had to simulate
    uint64_t cacheHits = 0; ///< runs served from cache (disk or memo)
    uint64_t dedupJoins = 0;///< runs that joined an in-flight twin
    /** Every NDJSON line the service streamed back, in arrival order
     *  (accepted / run / done / error events). */
    std::vector<std::string> events;
};

/**
 * Submit sweep-spec text (TOML or JSON, exactly a `--spec` file's
 * content) to the service at @p socketPath and block until the final
 * `done`/`error` event. @p campaignName overrides the spec's name when
 * non-empty. When @p echo is non-null every received event line is
 * copied to it as it arrives (the CLI streams them to stdout).
 *
 * Connecting retries with capped exponential backoff for a couple of
 * seconds (a service still binding its socket is reached on a later
 * attempt); fatal when the socket stays unreachable. A nonzero
 * @p timeoutSeconds bounds how long the client waits for each event
 * line (`submit --timeout`): when it elapses the result comes back
 * !ok with a timeout message instead of blocking forever on a hung
 * service.
 */
SubmitResult submitSpecText(const std::string& socketPath,
                            const std::string& specText,
                            const std::string& campaignName = "",
                            std::ostream* echo = nullptr,
                            uint32_t timeoutSeconds = 0);

/** Ask the service at @p socketPath to shut down (`{"op":"shutdown"}`).
 *  Returns once the service acknowledges. Connection attempts retry
 *  with backoff like submitSpecText; fatal when unreachable. */
void requestShutdown(const std::string& socketPath);

/**
 * Run a Service in the foreground until SIGINT/SIGTERM (or a client
 * shutdown request): the body of `vortex_sweep serve`.
 * @return a process exit code (0 on clean shutdown).
 */
int serveMain(const ServiceOptions& opts);

} // namespace vortex::sweep
