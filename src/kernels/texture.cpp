/**
 * @file
 * Texture benchmark kernels (paper §6.4, Figure 20): render a source
 * texture into an equally sized RGBA8 render target.
 *
 * HW variants configure the texture stage via CSRs exactly as the paper's
 * Figure 13 sample and sample with the `tex` instruction; trilinear is the
 * Algorithm 1 pseudo-instruction (two `tex` lookups blended by the LOD
 * fraction). SW variants implement point/bilinear/trilinear sampling in
 * plain RISC-V code over an RGBA8 power-of-two REPEAT-wrapped texture —
 * the software-rendering baseline the paper compares against.
 */

#include <string>

#include "kernels/kernels.h"

namespace vortex::kernels {

namespace {

/** Shared prologue: main() configures texture stage 0 from the argument
 *  block (Fig. 13) and spawns one task per destination pixel. */
constexpr const char* kTexMain = R"(
.equ TEX_ADDR,   0x7C0
.equ TEX_MIPOFF, 0x7C1
.equ TEX_WIDTH,  0x7C2
.equ TEX_HEIGHT, 0x7C3
.equ TEX_FORMAT, 0x7C4
.equ TEX_WRAP,   0x7C5
.equ TEX_FILTER, 0x7C6
.equ TEX_LODS,   0x7C7

main:
    addi sp, sp, -16
    sw ra, 12(sp)
    # configure texture unit (paper Fig. 13 lines 3-9)
    lw t0, 12(a0)
    csrw TEX_ADDR, t0
    csrw TEX_MIPOFF, zero
    lw t0, 16(a0)
    csrw TEX_WIDTH, t0
    lw t0, 20(a0)
    csrw TEX_HEIGHT, t0
    lw t0, 24(a0)
    csrw TEX_FORMAT, t0
    lw t0, 32(a0)
    csrw TEX_WRAP, t0
    lw t0, 28(a0)
    csrw TEX_FILTER, t0
    lw t0, 36(a0)
    csrw TEX_LODS, t0
    # launch rendering tasks (Fig. 13 line 19)
    mv a2, a0
    lw t0, 0(a2)
    lw t1, 4(a2)
    mul a0, t0, t1
    la a1, tex_task
    call spawn_tasks
    lw ra, 12(sp)
    addi sp, sp, 16
    ret

# __uv: compute normalized texel center coordinates for pixel a0.
# In:  a0 = pixel index, a1 = args.  Out: fa0 = u, fa1 = v, t1 = x, t2 = y.
# Clobbers t0, t3, ft6, ft7.
__uv:
    lw t0, 0(a1)              # dstW
    remu t1, a0, t0           # x
    divu t2, a0, t0           # y
    la t3, .Luv_half
    flw ft6, 0(t3)
    fcvt.s.wu fa0, t1
    fadd.s fa0, fa0, ft6
    flw ft7, 44(a1)           # deltaX = 1/dstW
    fmul.s fa0, fa0, ft7      # u = (x+0.5)/dstW
    fcvt.s.wu fa1, t2
    fadd.s fa1, fa1, ft6
    flw ft7, 48(a1)           # deltaY
    fmul.s fa1, fa1, ft7      # v
    jr t6
.align 2
.Luv_half: .float 0.5
)";

/** Software bilinear sampler over an RGBA8 power-of-two REPEAT texture.
 *  In: fa0 = u, fa1 = v, a2 = mip base address, a3 = width log2,
 *      a4 = height log2. Out: a0 = packed RGBA8. Link register: t6.
 *  Clobbers t0-t5, a5-a7, ft0-ft3. */
constexpr const char* kSwBilinear = R"(
__sw_bilinear:
    # scaled u: su = u*W - 0.5 + W  (bias keeps it positive for truncation)
    li t0, 1
    sll t0, t0, a3            # W
    fcvt.s.wu ft0, t0
    fmul.s ft1, fa0, ft0
    la t1, .Lsb_half
    flw ft2, 0(t1)
    fsub.s ft1, ft1, ft2
    fadd.s ft1, ft1, ft0      # su + W
    fcvt.wu.s t2, ft1         # floor (positive)
    # fx = 8-bit fraction
    fcvt.s.wu ft3, t2
    fsub.s ft1, ft1, ft3
    la t1, .Lsb_256
    flw ft3, 0(t1)
    fmul.s ft1, ft1, ft3
    fcvt.wu.s t3, ft1
    andi t3, t3, 255          # fx
    # x0/x1 wrapped
    addi t1, t0, -1           # W-1 mask
    and a5, t2, t1            # x0
    addi t2, t2, 1
    and a6, t2, t1            # x1
    # scaled v
    li t0, 1
    sll t0, t0, a4            # H
    fcvt.s.wu ft0, t0
    fmul.s ft1, fa1, ft0
    la t1, .Lsb_half
    flw ft2, 0(t1)
    fsub.s ft1, ft1, ft2
    fadd.s ft1, ft1, ft0
    fcvt.wu.s t2, ft1
    fcvt.s.wu ft3, t2
    fsub.s ft1, ft1, ft3
    la t1, .Lsb_256
    flw ft3, 0(t1)
    fmul.s ft1, ft1, ft3
    fcvt.wu.s t4, ft1
    andi t4, t4, 255          # fy
    addi t1, t0, -1
    and a7, t2, t1            # y0
    addi t2, t2, 1
    and t5, t2, t1            # y1
    # fetch 4 texels: addr = base + ((y<<wlog2) + x) * 4
    sll t0, a7, a3
    add t0, t0, a5
    slli t0, t0, 2
    add t0, t0, a2
    lw t0, 0(t0)              # c00
    sll t1, a7, a3
    add t1, t1, a6
    slli t1, t1, 2
    add t1, t1, a2
    lw t1, 0(t1)              # c10
    sll t2, t5, a3
    add t2, t2, a5
    slli t2, t2, 2
    add t2, t2, a2
    lw t2, 0(t2)              # c01
    sll a5, t5, a3
    add a5, a5, a6
    slli a5, a5, 2
    add a5, a5, a2
    lw a5, 0(a5)              # c11
    # horizontal lerps with fx, then vertical with fy, channel by channel.
    # a0 accumulates the packed result; a6/a7/t5 are scratch.
    li a0, 0
    li a7, 0                  # channel shift
.Lsb_chan:
    srl t5, t0, a7
    andi t5, t5, 255          # c00.ch
    srl a6, t1, a7
    andi a6, a6, 255          # c10.ch
    sub a6, a6, t5
    mul a6, a6, t3
    srai a6, a6, 8
    add t5, t5, a6            # top = c00 + ((c10-c00)*fx >> 8)
    srl a6, t2, a7
    andi a6, a6, 255          # c01.ch
    mv tp, a6                 # tp (x4) is free scratch in this runtime
    srl a6, a5, a7
    andi a6, a6, 255          # c11.ch
    sub a6, a6, tp
    mul a6, a6, t3
    srai a6, a6, 8
    add a6, a6, tp            # bot
    sub a6, a6, t5
    mul a6, a6, t4
    srai a6, a6, 8
    add t5, t5, a6            # ch = top + ((bot-top)*fy >> 8)
    sll t5, t5, a7
    or a0, a0, t5
    addi a7, a7, 8
    slti t5, a7, 32
    bnez t5, .Lsb_chan
    jr t6
.align 2
.Lsb_half: .float 0.5
.Lsb_256: .float 256.0
)";

} // namespace

const char*
texPointHw()
{
    static const std::string source = std::string(kTexMain) + R"(
tex_task:                     # a0 = pixel index, a1 = args
    addi sp, sp, -16
    sw ra, 12(sp)
    sw a0, 8(sp)
    jal t6, __uv
    fmv.w.x ft4, zero         # lod 0
    vx_tex t4, fa0, fa1, ft4
    lw a0, 8(sp)
    lw t5, 8(a1)              # dst
    slli t0, a0, 2
    add t5, t5, t0
    sw t4, 0(t5)
    lw ra, 12(sp)
    addi sp, sp, 16
    ret
)";
    return source.c_str();
}

const char*
texBilinearHw()
{
    // Identical task to point sampling: the filter mode is texture state
    // (CSR), not an instruction field.
    return texPointHw();
}

const char*
texTrilinearHw()
{
    static const std::string source = std::string(kTexMain) + R"(
# Trilinear pseudo-instruction (paper Algorithm 1): two bilinear `tex`
# lookups on adjacent mip levels, blended by the fractional LOD in software.
tex_task:                     # a0 = pixel index, a1 = args
    addi sp, sp, -16
    sw ra, 12(sp)
    sw a0, 8(sp)
    jal t6, __uv
    flw ft4, 40(a1)           # lod (float)
    fcvt.wu.s t0, ft4         # floor(lod)  (lod >= 0)
    fcvt.s.wu ft5, t0
    fsub.s ft5, ft4, ft5      # frac
    la t1, .Ltt_256
    flw ft6, 0(t1)
    fmul.s ft5, ft5, ft6
    fcvt.wu.s a2, ft5
    andi a2, a2, 255          # frac8
    fcvt.s.wu ft6, t0
    vx_tex t4, fa0, fa1, ft6  # a = tex(u, v, lod)
    addi t0, t0, 1
    fcvt.s.wu ft6, t0
    vx_tex t5, fa0, fa1, ft6  # b = tex(u, v, lod+1)
    # color = a + (b-a)*frac8/256, per channel
    li a3, 0                  # result
    li a4, 0                  # shift
.Ltt_chan:
    srl t0, t4, a4
    andi t0, t0, 255
    srl t1, t5, a4
    andi t1, t1, 255
    sub t1, t1, t0
    mul t1, t1, a2
    srai t1, t1, 8
    add t0, t0, t1
    sll t0, t0, a4
    or a3, a3, t0
    addi a4, a4, 8
    slti t0, a4, 32
    bnez t0, .Ltt_chan
    lw a0, 8(sp)
    lw t5, 8(a1)
    slli t0, a0, 2
    add t5, t5, t0
    sw a3, 0(t5)
    lw ra, 12(sp)
    addi sp, sp, 16
    ret
.align 2
.Ltt_256: .float 256.0
)";
    return source.c_str();
}

const char*
texPointSw()
{
    static const std::string source = std::string(kTexMain) + R"(
# Software point sampling: one wrapped texel load per pixel ("a simple
# copy operation" for RGBA8, §6.4).
tex_task:                     # a0 = pixel index, a1 = args
    addi sp, sp, -16
    sw ra, 12(sp)
    sw a0, 8(sp)
    jal t6, __uv
    lw a3, 16(a1)             # width log2
    lw a4, 20(a1)             # height log2
    lw a2, 12(a1)             # texture base
    # x = (int)(u*W) & (W-1)
    li t0, 1
    sll t0, t0, a3
    fcvt.s.wu ft0, t0
    fmul.s ft0, fa0, ft0
    fcvt.wu.s t1, ft0
    addi t0, t0, -1
    and t1, t1, t0
    # y = (int)(v*H) & (H-1)
    li t0, 1
    sll t0, t0, a4
    fcvt.s.wu ft0, t0
    fmul.s ft0, fa1, ft0
    fcvt.wu.s t2, ft0
    addi t0, t0, -1
    and t2, t2, t0
    sll t2, t2, a3
    add t2, t2, t1
    slli t2, t2, 2
    add t2, t2, a2
    lw t4, 0(t2)
    lw a0, 8(sp)
    lw t5, 8(a1)
    slli t0, a0, 2
    add t5, t5, t0
    sw t4, 0(t5)
    lw ra, 12(sp)
    addi sp, sp, 16
    ret
)";
    return source.c_str();
}

const char*
texBilinearSw()
{
    static const std::string source = std::string(kTexMain) +
                                      std::string(kSwBilinear) + R"(
tex_task:                     # a0 = pixel index, a1 = args
    addi sp, sp, -16
    sw ra, 12(sp)
    sw a0, 8(sp)
    jal t6, __uv
    lw a2, 12(a1)             # mip 0 base
    lw a3, 16(a1)
    lw a4, 20(a1)
    jal t6, __sw_bilinear
    mv t4, a0
    lw a0, 8(sp)
    lw t5, 8(a1)
    slli t0, a0, 2
    add t5, t5, t0
    sw t4, 0(t5)
    lw ra, 12(sp)
    addi sp, sp, 16
    ret
)";
    return source.c_str();
}

const char*
texTrilinearSw()
{
    static const std::string source = std::string(kTexMain) +
                                      std::string(kSwBilinear) + R"(
# Software trilinear: two software bilinear samples on adjacent mip levels
# (contiguous chain) blended by the LOD fraction. Intermediate state lives
# on the per-thread stack: task functions must not clobber s3-s7/s10
# (runtime registers).
tex_task:                     # a0 = pixel index, a1 = args
    addi sp, sp, -32
    sw ra, 28(sp)
    sw a0, 24(sp)
    jal t6, __uv
    fsw fa0, 20(sp)           # u
    fsw fa1, 16(sp)           # v
    # lod0 and 8-bit fraction
    flw ft4, 40(a1)
    fcvt.wu.s t2, ft4
    sw t2, 4(sp)              # lod0
    fcvt.s.wu ft5, t2
    fsub.s ft5, ft4, ft5
    la t1, .Lt3_256
    flw ft6, 0(t1)
    fmul.s ft5, ft5, ft6
    fcvt.wu.s t3, ft5
    andi t3, t3, 255
    sw t3, 12(sp)             # frac8
    # walk the contiguous mip chain down to level lod0
    lw a3, 16(a1)             # width log2
    lw a4, 20(a1)             # height log2
    lw a2, 12(a1)             # chain base
    lw t2, 4(sp)
.Lt3_seek0:
    beqz t2, .Lt3_have0
    add t0, a3, a4
    li t1, 1
    sll t1, t1, t0
    slli t1, t1, 2
    add a2, a2, t1
    addi a3, a3, -1
    addi a4, a4, -1
    addi t2, t2, -1
    j .Lt3_seek0
.Lt3_have0:
    # __sw_bilinear preserves a2/a3/a4 (reads only)
    jal t6, __sw_bilinear
    sw a0, 8(sp)              # color a
    add t0, a3, a4
    li t1, 1
    sll t1, t1, t0
    slli t1, t1, 2
    add a2, a2, t1
    addi a3, a3, -1
    addi a4, a4, -1
    flw fa0, 20(sp)
    flw fa1, 16(sp)
    jal t6, __sw_bilinear     # a0 = color b
    mv t4, a0
    lw t5, 8(sp)              # color a
    lw t3, 12(sp)             # frac8
    # blend per channel
    li a3, 0
    li a4, 0
.Lt3_chan:
    srl t0, t5, a4
    andi t0, t0, 255
    srl t1, t4, a4
    andi t1, t1, 255
    sub t1, t1, t0
    mul t1, t1, t3
    srai t1, t1, 8
    add t0, t0, t1
    sll t0, t0, a4
    or a3, a3, t0
    addi a4, a4, 8
    slti t0, a4, 32
    bnez t0, .Lt3_chan
    lw a0, 24(sp)
    lw t5, 8(a1)
    slli t0, a0, 2
    add t5, t5, t0
    sw a3, 0(t5)
    lw ra, 28(sp)
    addi sp, sp, 32
    ret
.align 2
.Lt3_256: .float 256.0
)";
    return source.c_str();
}

} // namespace vortex::kernels
