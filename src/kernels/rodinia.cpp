/**
 * @file
 * The Rodinia-subset benchmark kernels of paper §6.1, hand-written in
 * RISC-V assembly against the native runtime (spawn_tasks). Argument
 * layouts are defined in runtime/kargs.h.
 */

#include "kernels/kernels.h"

namespace vortex::kernels {

const char*
vecadd()
{
    return R"(
# vecadd: c[i] = a[i] + b[i] (int32). Compute-bound group.
main:
    addi sp, sp, -16
    sw ra, 12(sp)
    mv a2, a0
    lw a0, 0(a2)              # n tasks
    la a1, vecadd_task
    call spawn_tasks
    lw ra, 12(sp)
    addi sp, sp, 16
    ret

vecadd_task:                  # a0 = i, a1 = args
    lw t1, 4(a1)              # a
    lw t2, 8(a1)              # b
    lw t3, 12(a1)             # c
    slli t4, a0, 2
    add t1, t1, t4
    add t2, t2, t4
    add t3, t3, t4
    lw t5, 0(t1)
    lw t6, 0(t2)
    add t5, t5, t6
    sw t5, 0(t3)
    ret
)";
}

const char*
saxpy()
{
    return R"(
# saxpy: y[i] = a*x[i] + y[i] (float). Memory-bound group.
main:
    addi sp, sp, -16
    sw ra, 12(sp)
    mv a2, a0
    lw a0, 0(a2)
    la a1, saxpy_task
    call spawn_tasks
    lw ra, 12(sp)
    addi sp, sp, 16
    ret

saxpy_task:                   # a0 = i, a1 = args
    flw ft0, 4(a1)            # a
    lw t1, 8(a1)              # x
    lw t2, 12(a1)             # y
    slli t3, a0, 2
    add t1, t1, t3
    add t2, t2, t3
    flw ft1, 0(t1)
    flw ft2, 0(t2)
    fmadd.s ft2, ft0, ft1, ft2
    fsw ft2, 0(t2)
    ret
)";
}

const char*
sgemm()
{
    return R"(
# sgemm: C = A*B, n x n row-major float; one task per output cell.
main:
    addi sp, sp, -16
    sw ra, 12(sp)
    mv a2, a0
    lw t0, 0(a2)              # n
    mul a0, t0, t0            # n^2 tasks
    la a1, sgemm_task
    call spawn_tasks
    lw ra, 12(sp)
    addi sp, sp, 16
    ret

sgemm_task:                   # a0 = cell index, a1 = args
    lw t0, 0(a1)              # n
    lw t1, 4(a1)              # A
    lw t2, 8(a1)              # B
    lw t3, 12(a1)             # C
    divu t4, a0, t0           # row
    remu t5, a0, t0           # col
    mul t6, t4, t0
    slli t6, t6, 2
    add t1, t1, t6            # &A[row][0]
    slli t6, t5, 2
    add t2, t2, t6            # &B[0][col]
    slli a4, t0, 2            # B row stride in bytes
    fmv.w.x ft0, zero         # acc
    mv a5, t0
.Lsg_loop:
    flw ft1, 0(t1)
    flw ft2, 0(t2)
    fmadd.s ft0, ft1, ft2, ft0
    addi t1, t1, 4
    add t2, t2, a4
    addi a5, a5, -1
    bnez a5, .Lsg_loop
    slli t6, a0, 2
    add t3, t3, t6
    fsw ft0, 0(t3)
    ret
)";
}

const char*
sfilter()
{
    return R"(
# sfilter: 3x3 binomial blur (1 2 1; 2 4 2; 1 2 1)/16 on a float image,
# edge-clamped with branchless index arithmetic; one task per pixel.
main:
    addi sp, sp, -16
    sw ra, 12(sp)
    mv a2, a0
    lw t0, 0(a2)
    lw t1, 4(a2)
    mul a0, t0, t1            # width*height tasks
    la a1, sfilter_task
    call spawn_tasks
    lw ra, 12(sp)
    addi sp, sp, 16
    ret

sfilter_task:                 # a0 = pixel index, a1 = args
    lw t0, 0(a1)              # w
    lw t1, 4(a1)              # h
    lw t2, 8(a1)              # src
    lw t3, 12(a1)             # dst
    remu t4, a0, t0           # x
    divu t5, a0, t0           # y
    # xm = max(x-1, 0)
    addi t6, t4, -1
    srai a2, t6, 31
    xori a2, a2, -1
    and t6, t6, a2
    # xp = min(x+1, w-1)
    addi a3, t4, 1
    addi a4, t0, -1
    slt a5, a3, t0
    addi a5, a5, -1           # 0 in-range, -1 past the edge
    sub a6, a4, a3
    and a6, a6, a5
    add a3, a3, a6
    # ym = max(y-1, 0)
    addi a7, t5, -1
    srai a5, a7, 31
    xori a5, a5, -1
    and a7, a7, a5
    # yp = min(y+1, h-1)
    addi a2, t5, 1
    addi a5, t1, -1
    slt a4, a2, t1
    addi a4, a4, -1
    sub a5, a5, a2
    and a5, a5, a4
    add a2, a2, a5
    # row base pointers (bytes)
    mul a4, a7, t0
    slli a4, a4, 2
    add a4, a4, t2            # row ym
    mul a5, t5, t0
    slli a5, a5, 2
    add a5, a5, t2            # row y
    mul a6, a2, t0
    slli a6, a6, 2
    add a6, a6, t2            # row yp
    # column byte offsets
    slli t6, t6, 2            # xm
    slli t4, t4, 2            # x
    slli a3, a3, 2            # xp
    # 9 taps
    add t1, a4, t6
    flw ft0, 0(t1)
    add t1, a4, t4
    flw ft1, 0(t1)
    add t1, a4, a3
    flw ft2, 0(t1)
    add t1, a5, t6
    flw ft3, 0(t1)
    add t1, a5, t4
    flw ft4, 0(t1)
    add t1, a5, a3
    flw ft5, 0(t1)
    add t1, a6, t6
    flw ft6, 0(t1)
    add t1, a6, t4
    flw ft7, 0(t1)
    add t1, a6, a3
    flw fa0, 0(t1)
    # corners + 2*edges + 4*center, then /16
    fadd.s ft0, ft0, ft2
    fadd.s ft0, ft0, ft6
    fadd.s ft0, ft0, fa0
    fadd.s ft1, ft1, ft3
    fadd.s ft1, ft1, ft5
    fadd.s ft1, ft1, ft7
    la t1, .Lsf_two
    flw fa1, 0(t1)
    fmadd.s ft0, ft1, fa1, ft0
    la t1, .Lsf_four
    flw fa1, 0(t1)
    fmadd.s ft0, ft4, fa1, ft0
    la t1, .Lsf_sixteenth
    flw fa1, 0(t1)
    fmul.s ft0, ft0, fa1
    slli t1, a0, 2
    add t1, t1, t3
    fsw ft0, 0(t1)
    ret
.align 2
.Lsf_two: .float 2.0
.Lsf_four: .float 4.0
.Lsf_sixteenth: .float 0.0625
)";
}

const char*
nearn()
{
    return R"(
# nearn: dist[i] = sqrt((lat_i-lat)^2 + (lng_i-lng)^2); the host scans for
# the minimum, as in Rodinia NN. The fsqrt makes this long-latency bound.
main:
    addi sp, sp, -16
    sw ra, 12(sp)
    mv a2, a0
    lw a0, 0(a2)
    la a1, nearn_task
    call spawn_tasks
    lw ra, 12(sp)
    addi sp, sp, 16
    ret

nearn_task:                   # a0 = i, a1 = args
    lw t1, 12(a1)             # points
    lw t2, 16(a1)             # dist
    slli t3, a0, 3
    add t1, t1, t3
    flw ft0, 0(t1)            # lat_i
    flw ft1, 4(t1)            # lng_i
    flw ft2, 4(a1)            # lat
    flw ft3, 8(a1)            # lng
    fsub.s ft0, ft0, ft2
    fsub.s ft1, ft1, ft3
    fmul.s ft0, ft0, ft0
    fmadd.s ft0, ft1, ft1, ft0
    fsqrt.s ft0, ft0
    slli t3, a0, 2
    add t2, t2, t3
    fsw ft0, 0(t2)
    ret
)";
}

const char*
gaussian()
{
    return R"(
# gaussian: elimination to upper-triangular form. Each step k runs the
# Rodinia Fan1 (multipliers) and Fan2 (row updates) kernels, with global
# barriers keeping the cores in lockstep between phases.
main:
    addi sp, sp, -16
    sw ra, 12(sp)
    sw s0, 8(sp)
    sw s1, 4(sp)
    mv s0, a0
    li s1, 0                  # k
.Lga_kloop:
    lw t0, 0(s0)              # n
    addi t0, t0, -1
    bge s1, t0, .Lga_done
    sw s1, 16(s0)             # publish k (same value from every core)
    call global_barrier
    # Fan1: m[i] = A[i][k] / A[k][k] for i in (k, n)
    lw t0, 0(s0)
    sub a0, t0, s1
    addi a0, a0, -1
    la a1, gaussian_fan1
    mv a2, s0
    call spawn_tasks
    call global_barrier
    # Fan2: A[i][j] -= m[i]*A[k][j] for i in (k, n), all j
    lw t0, 0(s0)
    sub t1, t0, s1
    addi t1, t1, -1
    mul a0, t1, t0
    la a1, gaussian_fan2
    mv a2, s0
    call spawn_tasks
    call global_barrier
    addi s1, s1, 1
    j .Lga_kloop
.Lga_done:
    lw ra, 12(sp)
    lw s0, 8(sp)
    lw s1, 4(sp)
    addi sp, sp, 16
    ret

gaussian_fan1:                # a0 = idx, row i = k+1+idx
    lw t0, 0(a1)              # n
    lw t1, 4(a1)              # A
    lw t2, 12(a1)             # m
    lw t3, 16(a1)             # k
    addi t4, t3, 1
    add t4, t4, a0            # i
    mul t5, t4, t0
    add t5, t5, t3
    slli t5, t5, 2
    add t5, t5, t1
    flw ft0, 0(t5)            # A[i][k]
    mul t5, t3, t0
    add t5, t5, t3
    slli t5, t5, 2
    add t5, t5, t1
    flw ft1, 0(t5)            # A[k][k]
    fdiv.s ft0, ft0, ft1
    slli t5, t4, 2
    add t5, t5, t2
    fsw ft0, 0(t5)
    ret

gaussian_fan2:                # a0 = t; i = k+1+t/n, j = t%n
    lw t0, 0(a1)
    lw t1, 4(a1)
    lw t2, 12(a1)
    lw t3, 16(a1)
    divu t4, a0, t0
    remu t5, a0, t0           # j
    addi t4, t4, 1
    add t4, t4, t3            # i
    slli t6, t4, 2
    add t6, t6, t2
    flw ft0, 0(t6)            # m[i]
    mul t6, t3, t0
    add t6, t6, t5
    slli t6, t6, 2
    add t6, t6, t1
    flw ft1, 0(t6)            # A[k][j]
    mul t6, t4, t0
    add t6, t6, t5
    slli t6, t6, 2
    add t6, t6, t1
    flw ft2, 0(t6)            # A[i][j]
    fnmsub.s ft2, ft0, ft1, ft2
    fsw ft2, 0(t6)
    ret
)";
}

const char*
bfs()
{
    return R"(
# bfs: level-synchronous frontier BFS over a CSR graph. Nested split/join
# handles the three divergence levels (frontier membership, edge bound,
# unvisited neighbor). Cores synchronize per level with global barriers.
main:
    addi sp, sp, -16
    sw ra, 12(sp)
    sw s0, 8(sp)
    sw s1, 4(sp)
    sw s2, 0(sp)
    mv s0, a0
    li s1, 0                  # current level
.Lbf_level:
    sw s1, 24(s0)             # publish curLevel (same from every core)
    csrr t0, 0xCC2
    bnez t0, .Lbf_noreset
    lw t1, 20(s0)
    sw zero, 0(t1)            # core 0 clears the changed flag
.Lbf_noreset:
    call global_barrier
    lw a0, 0(s0)
    la a1, bfs_step
    mv a2, s0
    call spawn_tasks
    call global_barrier
    lw t1, 20(s0)
    lw t1, 0(t1)
    mv s2, t1
    # Every core must sample `changed` before core 0 clears it for the
    # next level — a third barrier closes that race.
    call global_barrier
    mv t1, s2
    addi s1, s1, 1
    bnez t1, .Lbf_level
    lw ra, 12(sp)
    lw s0, 8(sp)
    lw s1, 4(sp)
    lw s2, 0(sp)
    addi sp, sp, 16
    ret

bfs_step:                     # a0 = node id, a1 = args
    lw t0, 16(a1)             # levels
    slli t1, a0, 2
    add t1, t1, t0
    lw t2, 0(t1)              # levels[i]
    lw t3, 24(a1)             # curLevel
    xor t4, t2, t3
    seqz t4, t4               # on the frontier?
    vx_split t4
    beqz t4, .Lbf_nowork
    lw t5, 8(a1)              # rowPtr
    slli t6, a0, 2
    add t5, t5, t6
    lw a3, 0(t5)              # edge start
    lw a4, 4(t5)              # edge end
    lw a5, 12(a1)             # colIdx
    lw a6, 4(a1)              # maxDegree (uniform edge-loop bound)
    li a7, 0
.Lbf_edges:
    bge a7, a6, .Lbf_nowork
    add t5, a3, a7
    slt t6, t5, a4            # edge within this node's range?
    vx_split t6
    beqz t6, .Lbf_eskip
    slli t5, t5, 2
    add t5, t5, a5
    lw t5, 0(t5)              # neighbor j
    slli t5, t5, 2
    add t5, t5, t0            # &levels[j]
    lw t6, 0(t5)
    addi t6, t6, 1
    seqz t6, t6               # unvisited (level == -1)?
    vx_split t6
    beqz t6, .Lbf_nskip
    lw t6, 24(a1)
    addi t6, t6, 1
    sw t6, 0(t5)              # levels[j] = curLevel + 1
    lw t5, 20(a1)
    li t6, 1
    sw t6, 0(t5)              # changed = 1
.Lbf_nskip:
    vx_join
.Lbf_eskip:
    vx_join
    addi a7, a7, 1
    j .Lbf_edges
.Lbf_nowork:
    vx_join
    ret
)";
}

} // namespace vortex::kernels
