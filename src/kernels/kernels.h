/**
 * @file
 * Embedded RISC-V assembly sources: the Vortex native runtime (crt0 +
 * spawn_tasks, §5.3) and the benchmark kernels used throughout the paper's
 * evaluation — the Rodinia subset of §6.1 (compute-bound: sgemm, vecadd,
 * sfilter; memory-bound: saxpy, nearn, gaussian, bfs) and the texture
 * benchmarks of §6.4 (point/bilinear/trilinear, each with a hardware `tex`
 * variant and a pure-software variant).
 *
 * Every kernel is assembled together with the runtime by
 * runtime::Device::uploadKernel, producing the flat binary the simulator
 * fetches and decodes — the ISA-level equivalent of the POCL pipeline
 * output (DESIGN.md substitution #3).
 */

#pragma once

#include <string>
#include <vector>

namespace vortex::kernels {

/** crt0 + per-thread stack setup + spawn_tasks (wspawn/tmc/bar based). */
const char* runtimeSource();

//
// Rodinia subset (§6.1). Argument layouts in runtime/kargs.h.
//
const char* vecadd();   ///< c[i] = a[i] + b[i] (int)       — compute group
const char* saxpy();    ///< y[i] = a*x[i] + y[i] (float)   — memory group
const char* sgemm();    ///< C = A*B (float, task per cell) — compute group
const char* sfilter();  ///< 3x3 blur stencil (float)       — compute group
const char* nearn();    ///< euclidean distances (fsqrt)    — memory group
const char* gaussian(); ///< gaussian elimination           — memory group
const char* bfs();      ///< frontier BFS                   — memory group

//
// Texture benchmarks (§6.4, Fig. 20): render a source texture to a
// destination target of the same size. HW variants use the `tex`
// instruction; SW variants implement the sampler in plain RISC-V code
// (the paper's software-rendering baseline).
//
const char* texPointHw();
const char* texBilinearHw();
const char* texTrilinearHw();
const char* texPointSw();
const char* texBilinearSw();
const char* texTrilinearSw();

//
// Registry: every shipped kernel by name, for tools that enumerate or
// look up kernels generically (vortex_verify, sweep pre-run checks).
//
struct NamedKernel
{
    const char* name;        ///< stable lookup name, e.g. "tex_point_hw"
    const char* (*source)(); ///< the kernel's assembly source
};

/** All shipped kernels in stable (documentation) order. */
const std::vector<NamedKernel>& allKernels();

/** Source of the kernel called @p name, or nullptr when unknown. */
const char* kernelSource(const std::string& name);

} // namespace vortex::kernels
