/**
 * @file
 * The Vortex native runtime (paper §5.3) in RISC-V assembly: crt0 with
 * per-thread stack setup, the core-local control block in scratchpad
 * memory, and spawn_tasks — the pocl_spawn equivalent that distributes
 * task ids across every hardware thread of every core using wspawn, tmc,
 * split/join, and a local barrier.
 *
 * Register conventions inside the runtime:
 *  - t6 is the link register for the leaf helpers (__set_sp, __smem_base)
 *    so they can run before a stack exists;
 *  - s10 preserves the caller's ra across spawn_tasks (the stack pointer is
 *    re-derived when the thread mask widens, so ra cannot live on the
 *    stack there);
 *  - task functions receive (a0 = task id, a1 = user argument) and may
 *    clobber t- and a-registers; s-registers they use must be saved.
 */

#include "kernels/kernels.h"

namespace vortex::kernels {

const char*
runtimeSource()
{
    return R"(
# ---------------------------------------------------------------- runtime.s
.equ CSR_TID,   0xCC0
.equ CSR_WID,   0xCC1
.equ CSR_CID,   0xCC2
.equ CSR_NT,    0xFC0
.equ CSR_NW,    0xFC1
.equ CSR_NC,    0xFC2
.equ ARG_ADDR,  0x10000
.equ STACK_BASE, 0xFEFF0000
.equ STACK_LOG2, 12
.equ SMEM_BASE, 0xFF000000
.equ SMEM_STRIDE_LOG2, 16

# Entry point: every core starts wavefront 0 / thread 0 here.
_start:
    jal t6, __set_sp
    li a0, ARG_ADDR
    call main
    li t0, 0
    vx_tmc t0                 # retire this wavefront

# __set_sp: per-thread stack pointer from the SIMT identification CSRs.
# sp = STACK_BASE - ((((cid*NW)+wid)*NT)+tid) << STACK_LOG2
# Leaf helper: link in t6, clobbers t0/t1.
__set_sp:
    csrr t0, CSR_CID
    csrr t1, CSR_NW
    mul t0, t0, t1
    csrr t1, CSR_WID
    add t0, t0, t1
    csrr t1, CSR_NT
    mul t0, t0, t1
    csrr t1, CSR_TID
    add t0, t0, t1
    slli t0, t0, STACK_LOG2
    li sp, STACK_BASE
    sub sp, sp, t0
    jr t6

# __smem_base: t2 = this core's scratchpad window.
# Leaf helper: link in t6, clobbers t0.
__smem_base:
    csrr t0, CSR_CID
    slli t0, t0, SMEM_STRIDE_LOG2
    li t2, SMEM_BASE
    add t2, t2, t0
    jr t6

# spawn_tasks(a0 = num_tasks, a1 = func, a2 = arg)
# Runs func(id, arg) for id = 0..num_tasks-1 distributed over all hardware
# threads of all cores (this core contributes its slice). Returns with a
# single active thread, after all wavefronts of this core synchronized.
spawn_tasks:
    mv s10, ra
    # Publish the control block to the core-local scratchpad so spawned
    # wavefronts (which start with cleared registers) can pick it up.
    jal t6, __smem_base
    sw a0, 0(t2)
    sw a1, 4(t2)
    sw a2, 8(t2)
    # Activate all wavefronts of this core at __spawn_entry.
    csrr t0, CSR_NW
    la t1, __spawn_entry
    vx_wspawn t0, t1
    # Wavefront 0 joins the work with all threads enabled. Only the newly
    # woken threads get a fresh stack pointer — thread 0 must keep its
    # current frame (main's frame lives on its stack).
    csrr t0, CSR_NT
    vx_tmc t0
    csrr t0, CSR_TID
    snez t0, t0
    vx_split t0
    beqz t0, .Lst_spdone
    jal t6, __set_sp
.Lst_spdone:
    vx_join
    jal t6, __smem_base
    lw a0, 0(t2)
    lw a1, 4(t2)
    lw a2, 8(t2)
    call __spawn_work
    # Synchronize every wavefront of this core.
    li t0, 0
    csrr t1, CSR_NW
    vx_bar t0, t1
    # Back to a single thread for the sequential epilogue.
    li t0, 1
    vx_tmc t0
    mv ra, s10
    ret

# Spawned wavefronts start here with thread 0 active and cleared registers.
__spawn_entry:
    csrr t0, CSR_NT
    vx_tmc t0
    jal t6, __set_sp
    jal t6, __smem_base
    lw a0, 0(t2)
    lw a1, 4(t2)
    lw a2, 8(t2)
    call __spawn_work
    li t0, 0
    csrr t1, CSR_NW
    vx_bar t0, t1
    li t0, 0
    vx_tmc t0                 # spawned wavefront retires

# __spawn_work(a0 = num_tasks, a1 = func, a2 = arg)
# Grid-stride loop over global thread ids; the tail is handled with
# split/join so partially-active iterations stay SIMT-safe.
__spawn_work:
    addi sp, sp, -32
    sw ra, 28(sp)
    sw s3, 24(sp)
    sw s4, 20(sp)
    sw s5, 16(sp)
    sw s6, 12(sp)
    sw s7, 8(sp)
    mv s7, a0                 # num_tasks
    mv s5, a1                 # func
    mv s6, a2                 # arg
    # s3 = global thread id
    csrr t0, CSR_CID
    csrr t1, CSR_NW
    mul t0, t0, t1
    csrr t1, CSR_WID
    add t0, t0, t1
    csrr t1, CSR_NT
    mul t0, t0, t1
    csrr t1, CSR_TID
    add s3, t0, t1
    # s4 = total hardware threads = NC * NW * NT
    csrr t0, CSR_NC
    csrr t1, CSR_NW
    mul t0, t0, t1
    csrr t1, CSR_NT
    mul s4, t0, t1
.Lsw_loop:
    # Lane 0 holds the smallest id of this wavefront, so a uniform branch
    # on it is a safe loop exit.
    bge s3, s7, .Lsw_done
    slt t0, s3, s7
    vx_split t0
    beqz t0, .Lsw_skip
    mv a0, s3
    mv a1, s6
    jalr s5
.Lsw_skip:
    vx_join
    add s3, s3, s4
    j .Lsw_loop
.Lsw_done:
    lw ra, 28(sp)
    lw s3, 24(sp)
    lw s4, 20(sp)
    lw s5, 16(sp)
    lw s6, 12(sp)
    lw s7, 8(sp)
    addi sp, sp, 32
    ret

# global_barrier: synchronize wavefront 0 of every core (used by iterative
# kernels between phases). Clobbers t0/t1.
global_barrier:
    li t0, 1
    slli t0, t0, 31           # global-scope bit
    ori t0, t0, 1             # barrier id 1
    csrr t1, CSR_NC           # one wavefront arrives per core
    vx_bar t0, t1
    ret
# --------------------------------------------------------------------------
)";
}

} // namespace vortex::kernels
