/**
 * @file
 * Name-indexed registry of every shipped kernel (see kernels.h).
 */

#include "kernels/kernels.h"

namespace vortex::kernels {

const std::vector<NamedKernel>&
allKernels()
{
    static const std::vector<NamedKernel> kKernels = {
        {"vecadd", vecadd},
        {"saxpy", saxpy},
        {"sgemm", sgemm},
        {"sfilter", sfilter},
        {"nearn", nearn},
        {"gaussian", gaussian},
        {"bfs", bfs},
        {"tex_point_hw", texPointHw},
        {"tex_bilinear_hw", texBilinearHw},
        {"tex_trilinear_hw", texTrilinearHw},
        {"tex_point_sw", texPointSw},
        {"tex_bilinear_sw", texBilinearSw},
        {"tex_trilinear_sw", texTrilinearSw},
    };
    return kKernels;
}

const char*
kernelSource(const std::string& name)
{
    for (const NamedKernel& k : allKernels())
        if (name == k.name)
            return k.source();
    return nullptr;
}

} // namespace vortex::kernels
