/**
 * @file
 * Fault-plan generation and application.
 */

#include "faults/fault.h"

#include <algorithm>
#include <memory>

#include "common/rng.h"
#include "core/processor.h"

namespace vortex::faults {

FaultPlan
FaultPlan::generate(const FaultSpec& spec, const core::ArchConfig& config,
                    Addr memBase, uint32_t memWords)
{
    FaultPlan plan;
    plan.events.reserve(spec.count);
    Xorshift rng(spec.seed);
    const uint64_t window = spec.window ? spec.window : kDefaultWindow;
    for (uint32_t i = 0; i < spec.count; ++i) {
        FaultEvent e;
        // Consume the PRNG identically for both kinds so each event's
        // draw count is fixed and plans stay stable if a kind is added.
        e.cycle = 1 + rng.next() % window;
        e.kind = (rng.next() & 1) ? FaultEvent::Kind::MemoryWord
                                  : FaultEvent::Kind::RegisterBit;
        e.core = rng.nextBounded(config.numCores);
        e.warp = rng.nextBounded(config.numWarps);
        e.lane = rng.nextBounded(config.numThreads);
        e.reg = 1 + rng.nextBounded(31); // x0 stays architecturally zero
        e.addr = memBase + 4u * rng.nextBounded(memWords ? memWords : 1);
        e.bit = rng.nextBounded(32);
        plan.events.push_back(e);
    }
    std::stable_sort(plan.events.begin(), plan.events.end(),
                     [](const FaultEvent& a, const FaultEvent& b) {
                         return a.cycle < b.cycle;
                     });
    return plan;
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

void
FaultInjector::onTick(core::Processor& proc, Cycle now)
{
    while (next_ < plan_.events.size() &&
           plan_.events[next_].cycle <= now) {
        const FaultEvent& e = plan_.events[next_++];
        const uint32_t mask = 1u << e.bit;
        if (e.kind == FaultEvent::Kind::RegisterBit) {
            core::Warp& w = proc.core(e.core).warp(e.warp);
            w.iregs[e.lane][e.reg] ^= mask;
        } else {
            // Ram::write32 bumps the code-write epoch when the word lies
            // on a decoded-from page, so a flip into code re-decodes (and
            // may legitimately trap on the corrupted instruction).
            mem::Ram& ram = proc.ram();
            ram.write32(e.addr, ram.read32(e.addr) ^ mask);
        }
    }
}

void
FaultInjector::install(const FaultSpec& spec, core::Processor& proc,
                       Addr memBase, uint32_t memWords)
{
    if (spec.count == 0)
        return;
    auto injector = std::make_shared<FaultInjector>(
        FaultPlan::generate(spec, proc.config(), memBase, memWords));
    proc.setFaultHook([injector](core::Processor& p, Cycle now) {
        injector->onTick(p, now);
    });
}

} // namespace vortex::faults
