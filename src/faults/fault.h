/**
 * @file
 * Deterministic fault injection (docs/ROBUSTNESS.md): a seeded FaultPlan
 * of single-bit upsets — register-bit flips and memory-word flips — in
 * the tradition of the GPU injection studies (SASSIFI, NVBitFI), applied
 * through the Processor's per-cycle fault hook.
 *
 * Determinism contract: the plan is a pure function of (FaultSpec,
 * machine geometry, memory window), generated from the fixed-seed
 * Xorshift PRNG, and each event fires at an exact trigger cycle inside
 * Processor::tick() — after the cross-core commit phase, on the main
 * thread — so an injected campaign is bit-identical across tick
 * backends, --jobs counts, and cache states.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "core/config.h"

namespace vortex::core {
class Processor;
}

namespace vortex::faults {

/**
 * Fault-injection parameters of one run (`[faults]` spec section /
 * `--faults seed=N,count=K`). All-zero means injection is off; the
 * fields enter RunSpec::canonical(), so faulted runs never collide with
 * clean runs in the content-hash cache.
 */
struct FaultSpec
{
    uint64_t seed = 0;     ///< PRNG seed selecting the injection
    uint32_t count = 0;    ///< upsets to inject (0 = injection off)
    /** Trigger-cycle window: events fire uniformly in [1, window]
     *  (0 = the kDefaultWindow). Events past the end of a short run
     *  never fire — a masked injection. */
    uint64_t window = 0;
    /** Cycle watchdog for the run (0 = the runner's default budget);
     *  bounds hang detection so a fault-induced livelock classifies as
     *  `timeout` in CI time rather than geological time. */
    uint64_t watchdog = 0;

    /** Any field set (== the spec serializes a [faults] section). */
    bool
    any() const
    {
        return seed != 0 || count != 0 || window != 0 || watchdog != 0;
    }
};

/** Default trigger-cycle window when FaultSpec::window is 0. */
constexpr uint64_t kDefaultWindow = 65536;

/** One planned single-bit upset. */
struct FaultEvent
{
    /** Upset target class. */
    enum class Kind
    {
        RegisterBit, ///< flip one bit of an integer register
        MemoryWord,  ///< flip one bit of a device-memory word
    };

    uint64_t cycle = 0; ///< trigger cycle (fires when tick == cycle)
    Kind kind = Kind::RegisterBit;
    uint32_t core = 0;  ///< target core (RegisterBit)
    uint32_t warp = 0;  ///< target wavefront (RegisterBit)
    uint32_t lane = 0;  ///< target thread lane (RegisterBit)
    uint32_t reg = 0;   ///< integer register 1..31 (x0 stays hardwired)
    Addr addr = 0;      ///< word-aligned target address (MemoryWord)
    uint32_t bit = 0;   ///< bit to flip, 0..31
};

/** The ordered injection schedule of one run. */
struct FaultPlan
{
    std::vector<FaultEvent> events; ///< sorted by trigger cycle

    /**
     * Expand @p spec into a concrete schedule for the machine @p config,
     * with memory-word upsets targeting the @p memWords words starting
     * at @p memBase (the caller points this at the guest image so flips
     * can hit code and data). Pure and deterministic: same inputs, same
     * plan, on any host.
     */
    static FaultPlan generate(const FaultSpec& spec,
                              const core::ArchConfig& config, Addr memBase,
                              uint32_t memWords);
};

/**
 * Applies a FaultPlan through Processor::setFaultHook. Keep the injector
 * alive for the whole run (the hook holds a reference); install() wires
 * a shared_ptr-owning closure so lifetime is automatic.
 */
class FaultInjector
{
  public:
    /** An injector that will apply @p plan. */
    explicit FaultInjector(FaultPlan plan);

    /** The per-cycle hook body: apply every event due at @p now. */
    void onTick(core::Processor& proc, Cycle now);

    /** Events applied so far (events past run end stay unapplied). */
    size_t applied() const { return next_; }

    /** Generate the plan for @p spec and install a self-owning hook on
     *  @p proc (no-op when spec.count is 0). */
    static void install(const FaultSpec& spec, core::Processor& proc,
                        Addr memBase, uint32_t memWords);

  private:
    FaultPlan plan_;
    size_t next_ = 0; ///< first not-yet-applied event
};

} // namespace vortex::faults
