/**
 * @file
 * Static analysis of decoded guest code images.
 *
 * The analyzer recovers a control-flow graph from an assembled program
 * (see cfg.h) and runs a pass pipeline that proves — or refutes — the
 * invariants the simulator otherwise only checks by running the program:
 *
 *  - **ipdom.balance** — `split`/`join` pairing verified along every
 *    static path with a symbolic divergence depth, mirroring the
 *    hardware IPDOM stack semantics of core/ipdom.h: a `join` at depth
 *    zero, paths merging at different depths, and a return or halt with
 *    open splits are all errors.
 *  - **barrier.divergence** — a `bar` reachable at nonzero divergence
 *    depth deadlocks the wavefront (it arrives once per replayed path);
 *    calls that transitively reach a `bar` from inside a split region
 *    are reported at the call site.
 *  - **reg.undef / reg.maybe-undef** — forward use-before-def dataflow
 *    over caller-saved registers, seeded with the ABI/kargs register
 *    state at each entry kind (warp entries start cleared; task
 *    functions receive the standard argument registers) and composed
 *    across calls with per-function must-write summaries.
 *  - **mem.bounds / mem.align / mem.code-write** — loads and stores
 *    whose effective address constant-folds are checked against the
 *    configured device memory map and their natural alignment.
 *  - **structure.* / wspawn.budget / tmc.budget / barrier.count** —
 *    jump targets inside the segment, no fall-through off its end,
 *    decodable reachable instructions, and statically-known `wspawn` /
 *    `tmc` / `bar` operands within the configured machine budgets.
 *
 * The analysis is conservative where the guest program is dynamic: only
 * statically-resolvable operands are checked, indirect calls are
 * over-approximated by the set of address-taken code entries, and every
 * diagnostic carries the pc it is anchored to so a report stays useful
 * as assembler input moves.
 */

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.h"
#include "isa/assembler.h"

namespace vortex::analysis {

/** How severe a diagnostic is. Only errors reject a program. */
enum class Severity : uint8_t
{
    Info,    ///< advisory observation (never gates)
    Warning, ///< suspicious but not provably fatal
    Error,   ///< proven violation of a machine invariant
};

/** Canonical lowercase name of a severity ("error", "warning", "info"). */
const char* severityName(Severity s);

/** One finding, anchored to the program counter that violates a check. */
struct Diagnostic
{
    Severity severity = Severity::Error; ///< how bad it is
    Addr pc = 0;          ///< anchor pc (0 when not instruction-anchored)
    std::string check;    ///< check id, e.g. "ipdom.balance"
    std::string message;  ///< human-readable explanation

    /** Ordering for deterministic reports: by pc, then severity
     *  (errors first), then check id and message text. */
    bool operator<(const Diagnostic& o) const;
    /** Equality over all fields (used to dedupe overlapping analyses). */
    bool operator==(const Diagnostic& o) const;
};

/** One contiguous region of the device memory map. */
struct MemRegion
{
    std::string name;     ///< human-readable region name ("heap", ...)
    Addr base = 0;        ///< first byte address
    uint64_t size = 0;    ///< region length in bytes
    bool writable = true; ///< stores allowed (code segments are not)

    /** True when [addr, addr+len) lies inside this region. */
    bool contains(Addr addr, uint32_t len) const;
};

/** The device memory map statically-resolved accesses are checked
 *  against. An empty map disables the bounds pass. */
struct MemMap
{
    std::vector<MemRegion> regions; ///< the mapped windows, any order

    /** Region containing [addr, addr+len), or nullptr. */
    const MemRegion* find(Addr addr, uint32_t len) const;
};

/** Machine budgets and policy knobs the passes check operands against.
 *  Defaults mirror the baseline ArchConfig; build one from a config
 *  with optionsFor(). */
struct AnalyzerOptions
{
    uint32_t numThreads = 4;     ///< threads per wavefront (tmc budget)
    uint32_t numWarps = 4;       ///< wavefronts per core (wspawn budget)
    uint32_t numCores = 1;       ///< cores (global barrier budget)
    uint32_t ipdomCapacity = 16; ///< IPDOM stack entries (2 per split)
    MemMap memMap;               ///< memory map ({} = skip bounds pass)
};

/** The outcome of analyzing one program. */
struct Report
{
    std::vector<Diagnostic> diagnostics; ///< sorted, deduped findings
    size_t functionCount = 0;    ///< functions discovered in the CFG
    size_t instructionCount = 0; ///< reachable instructions decoded

    /**
     * Check ids this analysis actually *evaluated* against the program
     * (sorted, unique) — not just the ones that fired. A check is
     * exercised when the analyzer reached one of its decision points
     * with enough static information to judge it (e.g. "mem.bounds"
     * appears only when some access's address constant-folded). The
     * fuzzer's corpus-coverage metric aggregates this set.
     */
    std::vector<std::string> exercisedChecks;

    /** Number of diagnostics at @p s. */
    size_t count(Severity s) const;
    size_t errors() const { return count(Severity::Error); }     ///< error count
    size_t warnings() const { return count(Severity::Warning); } ///< warning count

    /** A verified program: no errors and no warnings. */
    bool clean() const { return errors() == 0 && warnings() == 0; }

    /**
     * Print `pc: severity: message [check]` lines to @p os. When
     * @p program is given, each instruction-anchored diagnostic is
     * followed by its disassembled context (the enclosing function name
     * and the neighbouring instructions, the anchor marked with '>').
     */
    void print(std::ostream& os, const isa::Program* program = nullptr) const;

    /** Machine-readable JSON: program geometry, severity totals, and
     *  one record per diagnostic. Stable field order. */
    void writeJson(std::ostream& os, const isa::Program* program = nullptr) const;
};

/**
 * Analyze @p program against the machine described by @p opts and
 * return every finding. Pure function of its inputs: the report is
 * deterministic and the program is never executed.
 */
Report analyze(const isa::Program& program, const AnalyzerOptions& opts);

} // namespace vortex::analysis
