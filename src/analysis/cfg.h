/**
 * @file
 * Control-flow-graph recovery over decoded guest code images.
 *
 * Recovery is recursive-descent from the known entry points (the
 * program entry, call targets, statically-resolved `wspawn` targets,
 * and address-taken code labels): only bytes reachable through decoded
 * control flow are treated as instructions, so data embedded in the
 * code segment (`.float` constant pools and the like) is never
 * misdecoded. Each function gets its own basic-block map; blocks are
 * split when a later-discovered branch targets their interior.
 *
 * Structural violations found while decoding — branch targets outside
 * the segment or misaligned, invalid encodings on reachable paths,
 * fall-through past the end of the image — are reported through the
 * shared Diagnostic list (see analysis.h).
 */

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/analysis.h"
#include "isa/isa.h"

namespace vortex::analysis {

/** One decoded instruction with its location. */
struct CfgInstr
{
    Addr pc = 0;    ///< instruction address
    isa::Instr in;  ///< decoded form
};

/** How a basic block hands control onward. */
enum class TermKind : uint8_t
{
    Fall,         ///< falls through to the next block
    Jump,         ///< unconditional in-function jump (`j`)
    Branch,       ///< conditional branch: taken + fall-through edges
    Call,         ///< direct call; resumes at the next instruction
    IndirectCall, ///< `jalr rd!=x0`; resumes at the next instruction
    Return,       ///< `jalr x0` through a link register
    Halt,         ///< warp retirement (`ecall`, `ebreak`, `tmc 0`)
    Broken,       ///< decoding stopped (invalid encoding / off the end)
};

/** A maximal straight-line run of instructions. */
struct BasicBlock
{
    Addr start = 0;               ///< address of the first instruction
    std::vector<CfgInstr> instrs; ///< the instructions, in address order
    TermKind term = TermKind::Fall; ///< how the block ends
    std::vector<Addr> succs;      ///< in-function successor block starts
    Addr callee = 0;              ///< direct-call target (TermKind::Call)

    /** Address one past the last instruction. */
    Addr end() const;
};

/** Why a function entry exists — this decides the register seeding of
 *  the use-before-def pass. */
enum class EntryKind : uint8_t
{
    WarpEntry,    ///< program entry / `wspawn` target: registers cleared
    Called,       ///< reached by direct calls: seeded from the call sites
    AddressTaken, ///< escaped function pointer: standard ABI seeding
};

/** One recovered function: the blocks reachable from its entry through
 *  non-call edges. */
struct Function
{
    Addr entry = 0;            ///< entry address
    std::string name;          ///< nearest symbol name ("pc 0x..." if none)
    EntryKind kind = EntryKind::Called; ///< how this entry was discovered
    std::map<Addr, BasicBlock> blocks;  ///< blocks keyed by start address
    /** Map from every instruction pc to its block start (for splitting
     *  and predecessor lookups). */
    std::map<Addr, Addr> blockOf;
};

/**
 * Decode helper over a flat program image: pc-addressed 32-bit fetch
 * plus validity checks shared by the CFG builder and the passes.
 */
class CodeImage
{
  public:
    /** Wrap @p program (borrowed; must outlive this object). */
    explicit CodeImage(const isa::Program& program);

    Addr base() const { return base_; }   ///< first mapped address
    Addr end() const { return end_; }     ///< one past the last byte
    /** One past the last executable byte (Program::execEnd, or end()
     *  when the program does not record it). Data sections beyond this
     *  are never treated as decodable code. */
    Addr execEnd() const { return execEnd_; }
    const isa::Program& program() const { return *program_; } ///< wrapped program

    /** True when @p pc is 4-aligned and inside the executable bytes. */
    bool validPc(Addr pc) const;
    /** Raw 32-bit word at @p pc (validPc required). */
    uint32_t word(Addr pc) const;
    /** Decode at @p pc; kind == Invalid when undecodable. */
    isa::Instr decode(Addr pc) const;

    /** Name of the symbol at or nearest below @p pc, or "pc 0x...". */
    std::string symbolFor(Addr pc) const;

  private:
    const isa::Program* program_;
    Addr base_, end_, execEnd_;
};

/**
 * Build the function rooted at @p entry. Structural diagnostics are
 * appended to @p diags; the returned function always has at least one
 * (possibly Broken) block when the entry itself is valid.
 */
Function buildFunction(const CodeImage& image, Addr entry, EntryKind kind,
                       std::vector<Diagnostic>& diags);

/** Block-local backward scan: the constant value of integer register
 *  @p reg going *into* instruction @p at of @p block, if a preceding
 *  `li`/`lui` chain in the same block pins it. @return true and sets
 *  @p value on success. Used to classify `tmc 0` halts during CFG
 *  construction, before the dataflow constant pass exists. */
bool blockLocalConst(const BasicBlock& block, size_t at, uint32_t reg,
                     uint32_t& value);

} // namespace vortex::analysis
